(** Network addresses of the simulated cloud's participants. *)

type t =
  | Vm of int  (** A guest VM, by logical VM id (shared by its replicas). *)
  | Vmm of int  (** The VMM / device models on a physical machine. *)
  | Host of int  (** An external host (client, observer). *)
  | Ingress  (** The ingress node replicating inbound guest traffic. *)
  | Egress  (** The egress node enforcing median output timing. *)
  | Broadcast_addr  (** Subnet broadcast (e.g. ARP background noise). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
