module Time = Sw_sim.Time
module Engine = Sw_sim.Engine

type Packet.payload +=
  | Mcast_data of { group : int; mseq : int; inner : Packet.payload }
  | Mcast_nak of { group : int; origin : Address.t; from_mseq : int; to_mseq : int }
  | Mcast_heartbeat of { group : int; last_mseq : int }

let is_mcast (pkt : Packet.t) =
  match pkt.payload with
  | Mcast_data _ | Mcast_nak _ | Mcast_heartbeat _ -> true
  | _ -> false

let group_of_packet (pkt : Packet.t) =
  match pkt.payload with
  | Mcast_data { group; _ } | Mcast_nak { group; _ } | Mcast_heartbeat { group; _ }
    ->
      Some group
  | _ -> None

type group = {
  network : Network.t;
  group_id : int;
  members : Address.t list;
  nak_delay : Time.t;
  nak_retries : int;
  heartbeat : Time.t option;
}

(* Per-sender receive state at one endpoint. NAK recovery is a bounded
   retry loop: one outstanding cycle per sender, exponential backoff between
   attempts, and after [nak_retries] re-sends of the same leading gap the
   gap is abandoned (skipped over) so a permanently lost packet cannot stall
   the receiver forever. *)
type rx = {
  mutable next_expected : int;
  buffered : (int, Packet.t) Hashtbl.t;
  mutable nak_attempt : int;  (** 0 = no cycle outstanding; else attempt #. *)
  mutable nak_at : int;  (** [next_expected] when the current gap was first NAKed. *)
  mutable nak_through : int;  (** Highest mseq known to exist from this sender. *)
}

type endpoint = {
  g : group;
  self : Address.t;
  transmit : Packet.t -> unit;
  deliver : Packet.t -> unit;
  (* Sent history for retransmission, keyed by mseq. *)
  history : (int, Packet.t) Hashtbl.t;
  mutable next_mseq : int;
  rx_states : (Address.t, rx) Hashtbl.t;
  mutable partitioned : bool;
  (* Metric paths key on the member's address, not the group id: group ids
     come from a cross-domain atomic counter, so using them would make
     snapshot contents depend on worker scheduling. *)
  m_retransmissions : Sw_obs.Registry.Counter.t;
  m_naks : Sw_obs.Registry.Counter.t;
  m_abandoned : Sw_obs.Registry.Counter.t;
  m_partition_drops : Sw_obs.Registry.Counter.t;
}

(* Atomic: clouds on different domains allocate groups concurrently, and a
   plain [ref] incr could hand two groups the same id. Ids only need to be
   distinct, so cross-domain allocation order doesn't affect determinism. *)
let group_counter = Atomic.make 0

let group network ~members ?(nak_delay = Time.us 200) ?(nak_retries = 5)
    ?heartbeat () =
  if List.length members < 2 then invalid_arg "Multicast.group: need >= 2 members";
  if nak_retries < 1 then invalid_arg "Multicast.group: nak_retries must be >= 1";
  { network;
    group_id = 1 + Atomic.fetch_and_add group_counter 1;
    members; nak_delay; nak_retries; heartbeat }

let group_id g = g.group_id

let peers e = List.filter (fun a -> not (Address.equal a e.self)) e.g.members

(* All outgoing traffic funnels through here so a partition window can cut
   the endpoint off in one place. *)
let xmit e pkt =
  if e.partitioned then Sw_obs.Registry.Counter.incr e.m_partition_drops
  else e.transmit pkt

let send_to e ~dst ~size payload =
  let pkt =
    Packet.make ~src:e.self ~dst ~size ~seq:(Network.fresh_seq e.g.network) payload
  in
  xmit e pkt

let start_heartbeat e period =
  let engine = Network.engine e.g.network in
  let rec tick () =
    ignore
      (Engine.schedule_after engine period (fun () ->
           if e.next_mseq > 0 then
             List.iter
               (fun dst ->
                 send_to e ~dst ~size:64
                   (Mcast_heartbeat { group = e.g.group_id; last_mseq = e.next_mseq - 1 }))
               (peers e);
           tick ()))
  in
  tick ()

let endpoint g ~self ?transmit ~deliver () =
  if not (List.exists (Address.equal self) g.members) then
    invalid_arg "Multicast.endpoint: self not a group member";
  let transmit =
    match transmit with Some f -> f | None -> Network.send g.network
  in
  let metrics = Engine.metrics (Network.engine g.network) in
  let addr = Address.to_string self in
  let e =
    {
      g;
      self;
      transmit;
      deliver;
      history = Hashtbl.create 64;
      next_mseq = 0;
      rx_states = Hashtbl.create 8;
      partitioned = false;
      m_retransmissions =
        Sw_obs.Registry.counter metrics
          (Printf.sprintf "net.mcast.%s.retransmissions" addr);
      m_naks =
        Sw_obs.Registry.counter metrics
          (Printf.sprintf "net.mcast.%s.naks" addr);
      m_abandoned =
        Sw_obs.Registry.counter metrics
          (Printf.sprintf "net.mcast.%s.gaps_abandoned" addr);
      m_partition_drops =
        Sw_obs.Registry.counter metrics
          (Printf.sprintf "net.mcast.%s.partition_drops" addr);
    }
  in
  Option.iter (start_heartbeat e) g.heartbeat;
  e

let publish e ~size payload =
  let mseq = e.next_mseq in
  e.next_mseq <- mseq + 1;
  let wrapped = Mcast_data { group = e.g.group_id; mseq; inner = payload } in
  List.iter
    (fun dst ->
      let pkt =
        Packet.make ~src:e.self ~dst ~size ~seq:(Network.fresh_seq e.g.network)
          wrapped
      in
      Hashtbl.replace e.history mseq pkt;
      xmit e pkt)
    (peers e)

let rx_state e origin =
  match Hashtbl.find_opt e.rx_states origin with
  | Some rx -> rx
  | None ->
      let rx =
        { next_expected = 0; buffered = Hashtbl.create 8;
          nak_attempt = 0; nak_at = 0; nak_through = -1 }
      in
      Hashtbl.add e.rx_states origin rx;
      rx

(* Deliver any in-order buffered packets for this sender. *)
let rec flush e rx =
  match Hashtbl.find_opt rx.buffered rx.next_expected with
  | None -> ()
  | Some pkt ->
      Hashtbl.remove rx.buffered rx.next_expected;
      rx.next_expected <- rx.next_expected + 1;
      e.deliver pkt;
      flush e rx

(* Give up on the leading gap: skip [next_expected] forward to the smallest
   buffered mseq (or just past the known high-water mark if nothing is
   buffered) and flush. Late retransmissions of the skipped mseqs then land
   in the ordinary duplicate path. *)
let abandon_gap e rx =
  Sw_obs.Registry.Counter.incr e.m_abandoned;
  let smallest =
    Hashtbl.fold
      (fun mseq _ acc ->
        match acc with Some m when m <= mseq -> acc | _ -> Some mseq)
      rx.buffered None
  in
  (match smallest with
  | Some m -> rx.next_expected <- m
  | None -> rx.next_expected <- rx.nak_through + 1);
  flush e rx

(* One NAK cycle per sender: attempt [k] fires after nak_delay * 2^(k-1).
   Filling the gap before the timer fires parks the cycle; filling it
   partially (the leading edge advanced) resets the retry budget for the new
   leading gap. After [nak_retries] re-sends with no progress the gap is
   abandoned rather than retried forever. *)
let rec nak_cycle e origin rx =
  let engine = Network.engine e.g.network in
  let delay = Time.mul_int e.g.nak_delay (1 lsl min (rx.nak_attempt - 1) 16) in
  ignore
    (Engine.schedule_after engine delay (fun () ->
         if rx.next_expected > rx.nak_through then rx.nak_attempt <- 0
         else begin
           if rx.next_expected > rx.nak_at then begin
             rx.nak_at <- rx.next_expected;
             rx.nak_attempt <- 1
           end;
           if rx.nak_attempt > e.g.nak_retries then begin
             abandon_gap e rx;
             if rx.next_expected <= rx.nak_through then begin
               rx.nak_attempt <- 1;
               rx.nak_at <- rx.next_expected;
               nak_cycle e origin rx
             end
             else rx.nak_attempt <- 0
           end
           else begin
             Sw_obs.Registry.Counter.incr e.m_naks;
             send_to e ~dst:origin ~size:64
               (Mcast_nak
                  {
                    group = e.g.group_id;
                    origin;
                    from_mseq = rx.next_expected;
                    to_mseq = rx.nak_through;
                  });
             rx.nak_attempt <- rx.nak_attempt + 1;
             nak_cycle e origin rx
           end
         end))

let request_missing e origin rx ~through =
  if through > rx.nak_through then rx.nak_through <- through;
  if rx.nak_attempt = 0 && rx.next_expected <= rx.nak_through then begin
    rx.nak_attempt <- 1;
    rx.nak_at <- rx.next_expected;
    nak_cycle e origin rx
  end

let unwrap_data (pkt : Packet.t) ~mseq ~inner =
  { pkt with Packet.payload = inner; seq = mseq }

let handle e (pkt : Packet.t) =
  if e.partitioned then Sw_obs.Registry.Counter.incr e.m_partition_drops
  else
  match pkt.payload with
  | Mcast_data { group; mseq; inner } ->
      if group <> e.g.group_id then ()
      else begin
        let rx = rx_state e pkt.src in
        if mseq < rx.next_expected then () (* duplicate *)
        else begin
          Hashtbl.replace rx.buffered mseq (unwrap_data pkt ~mseq ~inner);
          if mseq > rx.next_expected then
            request_missing e pkt.src rx ~through:(mseq - 1);
          flush e rx
        end
      end
  | Mcast_nak { group; from_mseq; to_mseq; _ } ->
      if group <> e.g.group_id then ()
      else
        for mseq = from_mseq to to_mseq do
          match Hashtbl.find_opt e.history mseq with
          | None -> ()
          | Some original ->
              Sw_obs.Registry.Counter.incr e.m_retransmissions;
              let pkt' =
                Packet.make ~src:e.self ~dst:pkt.src ~size:original.Packet.size
                  ~seq:(Network.fresh_seq e.g.network) original.Packet.payload
              in
              xmit e pkt'
        done
  | Mcast_heartbeat { group; last_mseq } ->
      if group <> e.g.group_id then ()
      else begin
        let rx = rx_state e pkt.src in
        if last_mseq >= rx.next_expected then
          request_missing e pkt.src rx ~through:last_mseq
      end
  | _ -> invalid_arg "Multicast.handle: not a multicast packet"

let retransmissions e = Sw_obs.Registry.Counter.value e.m_retransmissions
let naks_sent e = Sw_obs.Registry.Counter.value e.m_naks
let gaps_abandoned e = Sw_obs.Registry.Counter.value e.m_abandoned
let partition_drops e = Sw_obs.Registry.Counter.value e.m_partition_drops
let set_partitioned e on = e.partitioned <- on
let partitioned e = e.partitioned

let () =
  List.iter Sw_sim.Graft.register
    [
      [%extension_constructor Mcast_data];
      [%extension_constructor Mcast_nak];
      [%extension_constructor Mcast_heartbeat];
    ]

let rec reserve_group_ids n =
  let cur = Atomic.get group_counter in
  if cur < n && not (Atomic.compare_and_set group_counter cur n) then
    reserve_group_ids n
