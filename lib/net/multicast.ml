module Time = Sw_sim.Time
module Engine = Sw_sim.Engine

type Packet.payload +=
  | Mcast_data of { group : int; mseq : int; inner : Packet.payload }
  | Mcast_nak of { group : int; origin : Address.t; from_mseq : int; to_mseq : int }
  | Mcast_heartbeat of { group : int; last_mseq : int }

let is_mcast (pkt : Packet.t) =
  match pkt.payload with
  | Mcast_data _ | Mcast_nak _ | Mcast_heartbeat _ -> true
  | _ -> false

let group_of_packet (pkt : Packet.t) =
  match pkt.payload with
  | Mcast_data { group; _ } | Mcast_nak { group; _ } | Mcast_heartbeat { group; _ }
    ->
      Some group
  | _ -> None

type group = {
  network : Network.t;
  group_id : int;
  members : Address.t list;
  nak_delay : Time.t;
  heartbeat : Time.t option;
}

(* Per-sender receive state at one endpoint. *)
type rx = {
  mutable next_expected : int;
  buffered : (int, Packet.t) Hashtbl.t;
  mutable nak_pending : bool;
}

type endpoint = {
  g : group;
  self : Address.t;
  transmit : Packet.t -> unit;
  deliver : Packet.t -> unit;
  (* Sent history for retransmission, keyed by mseq. *)
  history : (int, Packet.t) Hashtbl.t;
  mutable next_mseq : int;
  rx_states : (Address.t, rx) Hashtbl.t;
  (* Metric paths key on the member's address, not the group id: group ids
     come from a cross-domain atomic counter, so using them would make
     snapshot contents depend on worker scheduling. *)
  m_retransmissions : Sw_obs.Registry.Counter.t;
  m_naks : Sw_obs.Registry.Counter.t;
}

(* Atomic: clouds on different domains allocate groups concurrently, and a
   plain [ref] incr could hand two groups the same id. Ids only need to be
   distinct, so cross-domain allocation order doesn't affect determinism. *)
let group_counter = Atomic.make 0

let group network ~members ?(nak_delay = Time.us 200) ?heartbeat () =
  if List.length members < 2 then invalid_arg "Multicast.group: need >= 2 members";
  { network;
    group_id = 1 + Atomic.fetch_and_add group_counter 1;
    members; nak_delay; heartbeat }

let group_id g = g.group_id

let peers e = List.filter (fun a -> not (Address.equal a e.self)) e.g.members

let send_to e ~dst ~size payload =
  let pkt =
    Packet.make ~src:e.self ~dst ~size ~seq:(Network.fresh_seq e.g.network) payload
  in
  e.transmit pkt

let start_heartbeat e period =
  let engine = Network.engine e.g.network in
  let rec tick () =
    ignore
      (Engine.schedule_after engine period (fun () ->
           if e.next_mseq > 0 then
             List.iter
               (fun dst ->
                 send_to e ~dst ~size:64
                   (Mcast_heartbeat { group = e.g.group_id; last_mseq = e.next_mseq - 1 }))
               (peers e);
           tick ()))
  in
  tick ()

let endpoint g ~self ?transmit ~deliver () =
  if not (List.exists (Address.equal self) g.members) then
    invalid_arg "Multicast.endpoint: self not a group member";
  let transmit =
    match transmit with Some f -> f | None -> Network.send g.network
  in
  let metrics = Engine.metrics (Network.engine g.network) in
  let addr = Address.to_string self in
  let e =
    {
      g;
      self;
      transmit;
      deliver;
      history = Hashtbl.create 64;
      next_mseq = 0;
      rx_states = Hashtbl.create 8;
      m_retransmissions =
        Sw_obs.Registry.counter metrics
          (Printf.sprintf "net.mcast.%s.retransmissions" addr);
      m_naks =
        Sw_obs.Registry.counter metrics
          (Printf.sprintf "net.mcast.%s.naks" addr);
    }
  in
  Option.iter (start_heartbeat e) g.heartbeat;
  e

let publish e ~size payload =
  let mseq = e.next_mseq in
  e.next_mseq <- mseq + 1;
  let wrapped = Mcast_data { group = e.g.group_id; mseq; inner = payload } in
  List.iter
    (fun dst ->
      let pkt =
        Packet.make ~src:e.self ~dst ~size ~seq:(Network.fresh_seq e.g.network)
          wrapped
      in
      Hashtbl.replace e.history mseq pkt;
      e.transmit pkt)
    (peers e)

let rx_state e origin =
  match Hashtbl.find_opt e.rx_states origin with
  | Some rx -> rx
  | None ->
      let rx = { next_expected = 0; buffered = Hashtbl.create 8; nak_pending = false } in
      Hashtbl.add e.rx_states origin rx;
      rx

(* Deliver any in-order buffered packets for this sender. *)
let rec flush e rx =
  match Hashtbl.find_opt rx.buffered rx.next_expected with
  | None -> ()
  | Some pkt ->
      Hashtbl.remove rx.buffered rx.next_expected;
      rx.next_expected <- rx.next_expected + 1;
      e.deliver pkt;
      flush e rx

let request_missing e origin rx ~through =
  if (not rx.nak_pending) && rx.next_expected <= through then begin
    rx.nak_pending <- true;
    let engine = Network.engine e.g.network in
    ignore
      (Engine.schedule_after engine e.g.nak_delay (fun () ->
           rx.nak_pending <- false;
           (* Re-check: the gap may have been filled meanwhile. *)
           if rx.next_expected <= through then begin
             Sw_obs.Registry.Counter.incr e.m_naks;
             send_to e ~dst:origin ~size:64
               (Mcast_nak
                  {
                    group = e.g.group_id;
                    origin;
                    from_mseq = rx.next_expected;
                    to_mseq = through;
                  })
           end))
  end

let unwrap_data (pkt : Packet.t) ~mseq ~inner =
  { pkt with Packet.payload = inner; seq = mseq }

let handle e (pkt : Packet.t) =
  match pkt.payload with
  | Mcast_data { group; mseq; inner } ->
      if group <> e.g.group_id then ()
      else begin
        let rx = rx_state e pkt.src in
        if mseq < rx.next_expected then () (* duplicate *)
        else begin
          Hashtbl.replace rx.buffered mseq (unwrap_data pkt ~mseq ~inner);
          if mseq > rx.next_expected then
            request_missing e pkt.src rx ~through:(mseq - 1);
          flush e rx
        end
      end
  | Mcast_nak { group; from_mseq; to_mseq; _ } ->
      if group <> e.g.group_id then ()
      else
        for mseq = from_mseq to to_mseq do
          match Hashtbl.find_opt e.history mseq with
          | None -> ()
          | Some original ->
              Sw_obs.Registry.Counter.incr e.m_retransmissions;
              let pkt' =
                Packet.make ~src:e.self ~dst:pkt.src ~size:original.Packet.size
                  ~seq:(Network.fresh_seq e.g.network) original.Packet.payload
              in
              e.transmit pkt'
        done
  | Mcast_heartbeat { group; last_mseq } ->
      if group <> e.g.group_id then ()
      else begin
        let rx = rx_state e pkt.src in
        if last_mseq >= rx.next_expected then
          request_missing e pkt.src rx ~through:last_mseq
      end
  | _ -> invalid_arg "Multicast.handle: not a multicast packet"

let retransmissions e = Sw_obs.Registry.Counter.value e.m_retransmissions
let naks_sent e = Sw_obs.Registry.Counter.value e.m_naks
