(** Network packets.

    The payload is an extensible variant: infrastructure cases are declared
    here, applications (HTTP, NFS, ...) add their own. Payloads must be
    immutable values so that replicated copies stay identical. *)

type payload = ..

type t = {
  src : Address.t;
  dst : Address.t;
  size : int;  (** Wire size in bytes, headers included. *)
  seq : int;  (** Per-sender sequence number (see {!val-seq}). *)
  payload : payload;
}

type payload +=
  | Empty
  | Guest_bound of { vm : int; ingress_seq : int; inner : t }
      (** An inbound guest packet, replicated by the ingress to each replica's
          VMM. [ingress_seq] identifies the packet consistently across the
          copies so the VMMs can match proposals. *)
  | Proposal of { vm : int; ingress_seq : int; proposer : int; virt : Sw_sim.Time.t }
      (** A VMM's proposed virtual delivery time for an inbound packet. *)
  | Egress_tunnel of { vm : int; replica : int; inner : t }
      (** A guest output packet tunnelled to the egress node. *)
  | Epoch_report of { vm : int; replica : int; epoch : int; d : Sw_sim.Time.t; r : Sw_sim.Time.t }
      (** Per-epoch (duration, real time) report for virtual-time resync. *)
  | Background of int  (** Subnet broadcast noise (ARP-like). *)

(** [make ~src ~dst ~size ~seq payload]. [size] must be positive. *)
val make : src:Address.t -> dst:Address.t -> size:int -> seq:int -> payload -> t

val pp : Format.formatter -> t -> unit
