(** Reliable NAK-based multicast — a stand-in for OpenPGM (RFC 3208), which
    the paper uses to replicate inbound packets and to exchange delivery-time
    proposals among the VMMs hosting a guest's replicas.

    Each member owns an {!endpoint}. Data published by one member reaches
    every other member exactly once and in per-sender order; gaps detected by
    a receiver trigger negative acknowledgements and retransmission. Optional
    heartbeats recover tail losses. *)

type endpoint

type group

(** [group network ~members ?nak_delay ?nak_retries ?heartbeat ()] declares a
    group over the given member addresses. [nak_delay] (default 200 us) is how
    long a receiver waits before NAKing a detected gap; retries of the same
    gap back off exponentially ([nak_delay * 2^(k-1)] before attempt [k]) and
    after [nak_retries] (default 5) unanswered NAKs the gap is abandoned —
    the receiver skips past it rather than stalling forever, counted in
    [net.mcast.<addr>.gaps_abandoned]. [heartbeat] (default none) enables
    periodic sender heartbeats with that period. *)
val group :
  Network.t ->
  members:Address.t list ->
  ?nak_delay:Sw_sim.Time.t ->
  ?nak_retries:int ->
  ?heartbeat:Sw_sim.Time.t ->
  unit ->
  group

(** The group's identifier (carried by every protocol packet, so owners of
    several endpoints can route incoming packets — see {!group_of_packet}). *)
val group_id : group -> int

(** [endpoint g ~self ?transmit ~deliver ()] creates the member endpoint for
    address [self] (which must be in the group's member list). [deliver] is
    invoked for each published payload, in per-sender order. [transmit]
    overrides how protocol packets enter the network (default
    [Network.send]); a VMM passes its machine's NIC-transmit so multicast
    traffic pays the same serialisation as everything else. *)
val endpoint :
  group ->
  self:Address.t ->
  ?transmit:(Packet.t -> unit) ->
  deliver:(Packet.t -> unit) ->
  unit ->
  endpoint

(** [publish e ~size payload] multicasts [payload] to all other members.
    The delivered packets have [src = self] and the given payload. *)
val publish : endpoint -> size:int -> Packet.payload -> unit

(** [handle e pkt] must be called by the owner's network handler for every
    incoming multicast packet (recognisable via {!is_mcast}); non-multicast
    packets are rejected with [Invalid_argument]. *)
val handle : endpoint -> Packet.t -> unit

(** Whether a packet belongs to the multicast protocol. *)
val is_mcast : Packet.t -> bool

(** The group id of a multicast protocol packet, if it is one. *)
val group_of_packet : Packet.t -> int option

(** Number of retransmissions this endpoint has served (test observability). *)
val retransmissions : endpoint -> int

(** Number of NAKs this endpoint has sent. *)
val naks_sent : endpoint -> int

(** Number of gaps this endpoint has abandoned after exhausting NAK retries. *)
val gaps_abandoned : endpoint -> int

(** [set_partitioned e on] cuts the endpoint off from the group (fault
    injection): while set, every outgoing protocol packet and every incoming
    [handle]d packet is dropped and counted in
    [net.mcast.<addr>.partition_drops]. NAK recovery repairs the backlog once
    the partition heals (tail losses need the group heartbeat). *)
val set_partitioned : endpoint -> bool -> unit

val partitioned : endpoint -> bool

(** Packets dropped at this endpoint by a partition window. *)
val partition_drops : endpoint -> int

(** [reserve_group_ids n] advances the global group-id allocator so every
    future group id is [> n]. Called after a checkpoint restore with the
    highest restored id: the allocator is process-global and not part of
    any marshaled graph, so a freshly started process would otherwise
    re-issue ids already taken by restored groups. *)
val reserve_group_ids : int -> unit
