type t =
  | Vm of int
  | Vmm of int
  | Host of int
  | Ingress
  | Egress
  | Broadcast_addr

let equal = Stdlib.( = )
let compare = Stdlib.compare
let hash = Hashtbl.hash

let pp fmt = function
  | Vm i -> Format.fprintf fmt "vm%d" i
  | Vmm i -> Format.fprintf fmt "vmm%d" i
  | Host i -> Format.fprintf fmt "host%d" i
  | Ingress -> Format.pp_print_string fmt "ingress"
  | Egress -> Format.pp_print_string fmt "egress"
  | Broadcast_addr -> Format.pp_print_string fmt "broadcast"

let to_string t = Format.asprintf "%a" pp t
