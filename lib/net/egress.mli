(** The egress node (paper Sec. VI): receives each output packet tunnelled
    from every replica of a guest VM and forwards it to its real destination
    upon the arrival of the copy exhibiting the median output timing (the
    2nd of 3 copies; generally the (m+1)/2-th of m). *)

type t

(** Creates the node and registers it at {!Address.Egress}.

    Memory note: a packet's vote entry is retired when all m copies have
    arrived. With [vote_expiry] set, an entry is additionally retired
    [vote_expiry] after its first copy created it, whether or not it ever
    reached the release rank — so under sustained tunnel loss or a crashed
    replica the vote table holds only the entries younger than the expiry
    span; retirements are counted in [net.egress.expired_votes]. Without it
    (the default), incomplete entries accumulate for the lifetime of the run
    (the tunnels are reliable in the paper — TCP — so loss there is an
    experiment-only condition). *)
val create : ?vote_expiry:Sw_sim.Time.t -> Network.t -> t

(** [register_vm t ~vm ~replicas] declares the replica count of [vm]
    (odd). *)
val register_vm : t -> vm:int -> replicas:int -> unit

(** [set_replicas t ~vm ~replicas] changes the voting population of an
    already-registered VM — called when its replica group degrades to a
    smaller quorum (or recovers). Entries already released under the old
    population are left to complete or expire. *)
val set_replicas : t -> vm:int -> replicas:int -> unit

(** Number of in-flight vote entries held for [vm] (test observability —
    the boundedness property under loss asserts on this). *)
val pending_votes : t -> vm:int -> int

val unregister_vm : t -> vm:int -> unit

(** Packets forwarded to their destinations so far. *)
val forwarded : t -> int

(** Copies received from VMs the egress does not know. *)
val dropped : t -> int

(** Output-vote failures: a copy of some packet disagreed with the copy the
    egress already held for the same sequence number. Deterministic replicas
    always emit identical packets, so a mismatch exposes replica-state
    divergence (the vote of Sec. II / the deterministic-output property of
    Sec. VI). *)
val mismatches : t -> int

(** Vote entries retired by the [vote_expiry] timeout before all copies
    arrived. *)
val expired_votes : t -> int

(** [on_forward t f] installs a tap invoked with (vm, packet, real release
    time) at each forward — used by external-observer experiments. *)
val on_forward : t -> (vm:int -> Packet.t -> Sw_sim.Time.t -> unit) -> unit

(** Attach a trace sink: each median-timed release emits
    {!Sw_obs.Event.Egress_released} when the sink is enabled. *)
val set_trace : t -> Sw_obs.Trace.t -> unit
