(** The egress node (paper Sec. VI): receives each output packet tunnelled
    from every replica of a guest VM and forwards it to its real destination
    upon the arrival of the copy exhibiting the median output timing (the
    2nd of 3 copies; generally the (m+1)/2-th of m). *)

type t

(** Creates the node and registers it at {!Address.Egress}.

    Memory note: a packet's vote entry is retired when all m copies have
    arrived; under sustained tunnel loss the entries of incomplete packets
    accumulate for the lifetime of the run (the tunnels are reliable in the
    paper — TCP — so loss there is an experiment-only condition). *)
val create : Network.t -> t

(** [register_vm t ~vm ~replicas] declares the replica count of [vm]
    (odd). *)
val register_vm : t -> vm:int -> replicas:int -> unit

val unregister_vm : t -> vm:int -> unit

(** Packets forwarded to their destinations so far. *)
val forwarded : t -> int

(** Copies received from VMs the egress does not know. *)
val dropped : t -> int

(** Output-vote failures: a copy of some packet disagreed with the copy the
    egress already held for the same sequence number. Deterministic replicas
    always emit identical packets, so a mismatch exposes replica-state
    divergence (the vote of Sec. II / the deterministic-output property of
    Sec. VI). *)
val mismatches : t -> int

(** [on_forward t f] installs a tap invoked with (vm, packet, real release
    time) at each forward — used by external-observer experiments. *)
val on_forward : t -> (vm:int -> Packet.t -> Sw_sim.Time.t -> unit) -> unit
