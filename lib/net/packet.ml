type payload = ..

type t = {
  src : Address.t;
  dst : Address.t;
  size : int;
  seq : int;
  payload : payload;
}

type payload +=
  | Empty
  | Guest_bound of { vm : int; ingress_seq : int; inner : t }
  | Proposal of { vm : int; ingress_seq : int; proposer : int; virt : Sw_sim.Time.t }
  | Egress_tunnel of { vm : int; replica : int; inner : t }
  | Epoch_report of { vm : int; replica : int; epoch : int; d : Sw_sim.Time.t; r : Sw_sim.Time.t }
  | Background of int

let make ~src ~dst ~size ~seq payload =
  if size <= 0 then invalid_arg "Packet.make: size must be positive";
  { src; dst; size; seq; payload }

let pp fmt t =
  Format.fprintf fmt "%a->%a #%d (%dB)" Address.pp t.src Address.pp t.dst t.seq
    t.size

(* Checkpoint support: extension constructors must be re-grafted after
   Marshal restore (see Sw_sim.Graft); every [payload +=] site registers
   its constructors at initialisation time. *)
let () =
  List.iter Sw_sim.Graft.register
    [
      [%extension_constructor Empty];
      [%extension_constructor Guest_bound];
      [%extension_constructor Proposal];
      [%extension_constructor Egress_tunnel];
      [%extension_constructor Epoch_report];
      [%extension_constructor Background];
    ]
