(** The simulated network fabric.

    Nodes register a delivery handler for their address; [send] routes a
    packet to the handler of its (possibly rerouted) destination after a
    per-link serialisation + propagation delay. Per-(src, dst) packet
    counters support the packets-per-operation measurements of Fig. 6(b). *)

type link_params = {
  latency : Sw_sim.Time.t;  (** Propagation delay. *)
  jitter : Sw_sim.Time.t;  (** Uniform extra delay in [[0, jitter]]. *)
  bandwidth_bps : int;  (** Serialisation rate; [0] means infinite. *)
  loss : float;  (** Per-packet drop probability in [[0, 1)]. *)
}

val lan : link_params
(** 100 us latency, 20 us jitter, 1 Gb/s, no loss — cloud-internal default. *)

val wan : link_params
(** 2 ms latency, 300 us jitter, 100 Mb/s, no loss — client access link. *)

type t

(** [create ?stream_seed engine ~default] builds a fabric on [engine].

    Without [stream_seed] (the legacy mode), loss and jitter draw from one
    generator shared by every link, in global delivery order — fine for a
    single engine, where that order is itself deterministic. With
    [stream_seed] (sharded runs), each directed (src, dst) pair draws from
    its own stream derived from [(stream_seed, src, dst)]
    ({!Sw_sim.Prng.derive}): the draw order seen by any one link depends
    only on that link's own traffic, so the draws are independent of how
    machines are partitioned into shards. *)
val create : ?stream_seed:int64 -> Sw_sim.Engine.t -> default:link_params -> t

val engine : t -> Sw_sim.Engine.t

(** Deterministic per-network sequence numbers for infrastructure senders.
    Guests must instead number packets from their own deterministic state. *)
val fresh_seq : t -> int

(** [register t addr handler] sets the delivery handler; re-registering
    replaces it. *)
val register : t -> Address.t -> (Packet.t -> unit) -> unit

val registered : t -> Address.t -> bool

(** [set_route t ~dst ~via] delivers packets addressed to [dst] to [via]'s
    handler instead (e.g. [Vm v] routed via [Ingress]). The packet's [dst]
    field is left untouched. *)
val set_route : t -> dst:Address.t -> via:Address.t -> unit

val clear_route : t -> dst:Address.t -> unit

(** [set_link t ~src ~dst params] overrides the parameters of the directed
    link [src -> dst]. *)
val set_link : t -> src:Address.t -> dst:Address.t -> link_params -> unit

(** [set_node_link t addr params] sets the default for any link touching
    [addr] (e.g. a client host's access link). Exact pair overrides from
    {!set_link} take precedence; the delivery target's node override beats
    the source's. *)
val set_node_link : t -> Address.t -> link_params -> unit

(** A fault-injection perturbation applied on top of a link's own
    parameters: an independent extra drop probability and additional
    propagation delay. Installed/cleared at simulated instants by the
    [sw_fault] injector; with no disturbance installed the delivery path is
    bit-identical to a fault-free build (no extra RNG draws). *)
type disturbance = { extra_loss : float; extra_latency : Sw_sim.Time.t }

(** [combine_disturbance a b] stacks two disturbances: losses compose as
    independent drops, latencies add. *)
val combine_disturbance : disturbance -> disturbance -> disturbance

(** [set_fault_all t d] installs (or with [None] clears) a fabric-wide
    disturbance affecting every delivery. *)
val set_fault_all : t -> disturbance option -> unit

(** [set_fault_to t addr d] installs (or clears) a disturbance on every
    delivery whose effective target is [addr] — e.g. [Address.Egress] to
    model output-tunnel drops, or a VMM address to degrade one machine's
    inbound connectivity. Composes with the fabric-wide disturbance. *)
val set_fault_to : t -> Address.t -> disturbance option -> unit

(** Packets dropped by an injected disturbance ([net.fault.lost]), counted
    separately from organic link loss so experiments can tell them apart. *)
val fault_lost : t -> int

(** [set_remote t ~shard ~locate ~post] marks this network as shard
    [shard] of a partitioned cloud. [locate a] names the shard owning
    delivery target [a] (per-shard addresses — Ingress, Egress — must map
    to [shard] on every network). When a delivery's effective target is
    owned by another shard, the sending network still computes the arrival
    instant exactly as for a local delivery — same link state, same FIFO,
    same loss/jitter draws — and then hands [(dst shard, arrival, target,
    packet)] to [post] (the conductor mailbox) instead of scheduling
    locally. *)
val set_remote :
  t ->
  shard:int ->
  locate:(Address.t -> int) ->
  post:(dst:int -> at:Sw_sim.Time.t -> target:Address.t -> Packet.t -> unit) ->
  unit

(** [inject t ~target pkt] delivers [pkt] to [target]'s handler at the
    current instant, with delivery-side accounting ([net.delivered], the
    pair counter) — the receiving half of a cross-shard hop, called inside
    the conductor-injected event at the precomputed arrival time. Targets
    without a handler count as undeliverable. *)
val inject : t -> target:Address.t -> Packet.t -> unit

(** Minimum propagation latency over the default and every installed
    override — this network's contribution to a global-minimum conductor
    lookahead. *)
val min_latency : t -> Sw_sim.Time.t

(** [min_latency_to t ~locate ~self ~shards] refines {!min_latency} per
    destination shard: element [d] is the smallest propagation latency any
    hop from this network (shard [self]) into shard [d] could see, i.e.
    this network's row of a conductor's lookahead matrix. Overrides whose
    delivery target locates to [self] are intra-shard and excluded (a
    node override on one of [self]'s own nodes still applies source-side,
    to every destination); element [self] is the plain default. *)
val min_latency_to :
  t -> locate:(Address.t -> int) -> self:int -> shards:int -> Sw_sim.Time.t array

(** [send t pkt] delivers [pkt] (unless lost) after the link delay. Packets
    to {!Address.Broadcast_addr} go to every registered handler except the
    sender's. Packets whose effective destination has no handler are counted
    as undeliverable and dropped. *)
val send : t -> Packet.t -> unit

(** Delivered-packet count for the directed pair, since the last reset.
    Counts use the packet's original [src]/[dst] fields. *)
val count : t -> src:Address.t -> dst:Address.t -> int

(** [pair_metric ~src ~dst] is the registry path the pair's delivered-packet
    counter lives under ([net.link.<src>.<dst>.delivered]), for reading the
    same count out of a metrics snapshot. *)
val pair_metric : src:Address.t -> dst:Address.t -> string

(** Total delivered packets since the last reset. *)
val delivered : t -> int

val undeliverable : t -> int
val lost : t -> int
val reset_counters : t -> unit
