type vm_entry = {
  mutable replica_vmms : Address.t list;
  mutable next_ingress_seq : int;
  channel : Multicast.endpoint option;
}

type t = {
  network : Network.t;
  vms : (int, vm_entry) Hashtbl.t;
  mcast_routes : (int, Multicast.endpoint) Hashtbl.t;
  m_dropped : Sw_obs.Registry.Counter.t;
  m_replicated : Sw_obs.Registry.Counter.t;
  mutable trace : Sw_obs.Trace.t option;
}

let handle t (pkt : Packet.t) =
  if Multicast.is_mcast pkt then begin
    (* NAKs from the replica VMMs (and their group traffic, which the
       ingress ignores at delivery) route to the per-VM endpoint. *)
    match Multicast.group_of_packet pkt with
    | Some gid -> (
        match Hashtbl.find_opt t.mcast_routes gid with
        | Some ep -> Multicast.handle ep pkt
        | None -> Sw_obs.Registry.Counter.incr t.m_dropped)
    | None -> Sw_obs.Registry.Counter.incr t.m_dropped
  end
  else
    match pkt.Packet.dst with
    | Address.Vm vm -> (
        match Hashtbl.find_opt t.vms vm with
        | None -> Sw_obs.Registry.Counter.incr t.m_dropped
        | Some entry -> (
            let ingress_seq = entry.next_ingress_seq in
            entry.next_ingress_seq <- ingress_seq + 1;
            Sw_obs.Registry.Counter.incr t.m_replicated;
            if Sw_obs.Trace.active t.trace then
              Sw_obs.Trace.emit (Option.get t.trace)
                ~at_ns:(Sw_sim.Engine.now (Network.engine t.network))
                (Sw_obs.Event.Ingress_replicated
                   {
                     vm;
                     ingress_seq;
                     copies = List.length entry.replica_vmms;
                     size = pkt.Packet.size;
                   });
            let payload = Packet.Guest_bound { vm; ingress_seq; inner = pkt } in
            match entry.channel with
            | Some ep -> Multicast.publish ep ~size:pkt.Packet.size payload
            | None ->
                List.iter
                  (fun vmm ->
                    let copy =
                      Packet.make ~src:Address.Ingress ~dst:vmm
                        ~size:pkt.Packet.size
                        ~seq:(Network.fresh_seq t.network)
                        payload
                    in
                    Network.send t.network copy)
                  entry.replica_vmms))
    | _ -> Sw_obs.Registry.Counter.incr t.m_dropped

let create network =
  let metrics = Sw_sim.Engine.metrics (Network.engine network) in
  let t =
    {
      network;
      vms = Hashtbl.create 16;
      mcast_routes = Hashtbl.create 16;
      m_dropped = Sw_obs.Registry.counter metrics "net.ingress.dropped";
      m_replicated = Sw_obs.Registry.counter metrics "net.ingress.replicated";
      trace = None;
    }
  in
  Network.register network Address.Ingress (handle t);
  t

let set_trace t tr = t.trace <- Some tr

let register_vm ?channel t ~vm ~replica_vmms =
  if replica_vmms = [] then invalid_arg "Ingress.register_vm: no replicas";
  let endpoint =
    Option.map
      (fun g ->
        (* The ingress delivers nothing itself: VMM coordination traffic on
           the shared group is irrelevant to it. *)
        let ep = Multicast.endpoint g ~self:Address.Ingress ~deliver:(fun _ -> ()) () in
        Hashtbl.replace t.mcast_routes (Multicast.group_id g) ep;
        ep)
      channel
  in
  Hashtbl.replace t.vms vm
    { replica_vmms; next_ingress_seq = 0; channel = endpoint };
  Network.set_route t.network ~dst:(Address.Vm vm) ~via:Address.Ingress

(* Degradation support for unicast mode: stop copying to ejected VMMs (on a
   multicast channel copies keep flowing group-wide; dead members just never
   read them). *)
let set_replica_vmms t ~vm ~replica_vmms =
  if replica_vmms = [] then invalid_arg "Ingress.set_replica_vmms: no replicas";
  match Hashtbl.find_opt t.vms vm with
  | None -> invalid_arg "Ingress.set_replica_vmms: unknown vm"
  | Some entry -> entry.replica_vmms <- replica_vmms

let unregister_vm t ~vm =
  Hashtbl.remove t.vms vm;
  Network.clear_route t.network ~dst:(Address.Vm vm)

let dropped t = Sw_obs.Registry.Counter.value t.m_dropped
let replicated t = Sw_obs.Registry.Counter.value t.m_replicated

let max_mcast_group t =
  Hashtbl.fold (fun gid _ acc -> Stdlib.max gid acc) t.mcast_routes 0
