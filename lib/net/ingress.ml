type vm_entry = {
  replica_vmms : Address.t list;
  mutable next_ingress_seq : int;
  channel : Multicast.endpoint option;
}

type t = {
  network : Network.t;
  vms : (int, vm_entry) Hashtbl.t;
  mcast_routes : (int, Multicast.endpoint) Hashtbl.t;
  mutable dropped : int;
  mutable replicated : int;
}

let handle t (pkt : Packet.t) =
  if Multicast.is_mcast pkt then begin
    (* NAKs from the replica VMMs (and their group traffic, which the
       ingress ignores at delivery) route to the per-VM endpoint. *)
    match Multicast.group_of_packet pkt with
    | Some gid -> (
        match Hashtbl.find_opt t.mcast_routes gid with
        | Some ep -> Multicast.handle ep pkt
        | None -> t.dropped <- t.dropped + 1)
    | None -> t.dropped <- t.dropped + 1
  end
  else
    match pkt.Packet.dst with
    | Address.Vm vm -> (
        match Hashtbl.find_opt t.vms vm with
        | None -> t.dropped <- t.dropped + 1
        | Some entry -> (
            let ingress_seq = entry.next_ingress_seq in
            entry.next_ingress_seq <- ingress_seq + 1;
            t.replicated <- t.replicated + 1;
            let payload = Packet.Guest_bound { vm; ingress_seq; inner = pkt } in
            match entry.channel with
            | Some ep -> Multicast.publish ep ~size:pkt.Packet.size payload
            | None ->
                List.iter
                  (fun vmm ->
                    let copy =
                      Packet.make ~src:Address.Ingress ~dst:vmm
                        ~size:pkt.Packet.size
                        ~seq:(Network.fresh_seq t.network)
                        payload
                    in
                    Network.send t.network copy)
                  entry.replica_vmms))
    | _ -> t.dropped <- t.dropped + 1

let create network =
  let t =
    {
      network;
      vms = Hashtbl.create 16;
      mcast_routes = Hashtbl.create 16;
      dropped = 0;
      replicated = 0;
    }
  in
  Network.register network Address.Ingress (handle t);
  t

let register_vm ?channel t ~vm ~replica_vmms =
  if replica_vmms = [] then invalid_arg "Ingress.register_vm: no replicas";
  let endpoint =
    Option.map
      (fun g ->
        (* The ingress delivers nothing itself: VMM coordination traffic on
           the shared group is irrelevant to it. *)
        let ep = Multicast.endpoint g ~self:Address.Ingress ~deliver:(fun _ -> ()) () in
        Hashtbl.replace t.mcast_routes (Multicast.group_id g) ep;
        ep)
      channel
  in
  Hashtbl.replace t.vms vm
    { replica_vmms; next_ingress_seq = 0; channel = endpoint };
  Network.set_route t.network ~dst:(Address.Vm vm) ~via:Address.Ingress

let unregister_vm t ~vm =
  Hashtbl.remove t.vms vm;
  Network.clear_route t.network ~dst:(Address.Vm vm)

let dropped t = t.dropped
let replicated t = t.replicated
