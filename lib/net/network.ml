module Time = Sw_sim.Time
module Engine = Sw_sim.Engine
module Registry = Sw_obs.Registry

type link_params = {
  latency : Time.t;
  jitter : Time.t;
  bandwidth_bps : int;
  loss : float;
}

let lan =
  { latency = Time.us 100; jitter = Time.us 20; bandwidth_bps = 1_000_000_000; loss = 0. }

let wan =
  { latency = Time.ms 2; jitter = Time.us 300; bandwidth_bps = 100_000_000; loss = 0. }

type link_state = {
  params : link_params;
  rng : Sw_sim.Prng.t;
      (* Loss/jitter stream. Legacy mode: the network's shared generator
         (draw order = global delivery order). Keyed mode (sharded runs):
         a per-directed-pair stream derived from (seed, src, dst), whose
         draw order depends only on that pair's own traffic. *)
  mutable busy_until : Time.t;
  mutable last_arrival : Time.t;
}

type disturbance = { extra_loss : float; extra_latency : Time.t }

let combine_disturbance a b =
  {
    extra_loss = 1. -. ((1. -. a.extra_loss) *. (1. -. b.extra_loss));
    extra_latency = Time.add a.extra_latency b.extra_latency;
  }

module Addr_pair = struct
  type t = Address.t * Address.t

  let equal (a1, b1) (a2, b2) = Address.equal a1 a2 && Address.equal b1 b2
  let hash = Hashtbl.hash
end

module Pair_tbl = Hashtbl.Make (Addr_pair)

module Addr_tbl = Hashtbl.Make (struct
  type t = Address.t

  let equal = Address.equal
  let hash = Address.hash
end)

(* Stable int64 identity for stream keying: variant tag in the low bits,
   id above. Never hashed — collisions would silently correlate streams. *)
let addr_key = function
  | Address.Vm i -> Int64.of_int ((i lsl 3) lor 1)
  | Address.Vmm i -> Int64.of_int ((i lsl 3) lor 2)
  | Address.Host i -> Int64.of_int ((i lsl 3) lor 3)
  | Address.Ingress -> 4L
  | Address.Egress -> 5L
  | Address.Broadcast_addr -> 6L

type remote = {
  locate : Address.t -> int;
      (* Owning shard of a delivery target; targets this network answers
         for (its own machines, its Ingress/Egress) map to [shard]. *)
  shard : int;
  post : dst:int -> at:Time.t -> target:Address.t -> Packet.t -> unit;
}

type t = {
  engine : Engine.t;
  default : link_params;
  stream_seed : int64 option;  (* [Some s]: keyed per-link streams *)
  mutable remote : remote option;
  rng : Sw_sim.Prng.t;
  handlers : (Packet.t -> unit) Addr_tbl.t;
  routes : Address.t Addr_tbl.t;
  link_overrides : link_params Pair_tbl.t;
  node_overrides : link_params Addr_tbl.t;
  link_states : link_state Pair_tbl.t;
  counters : Registry.Counter.t Pair_tbl.t;
  mutable seq : int;
  (* Fault-injection state: an optional fabric-wide disturbance plus
     per-delivery-target disturbances, applied on top of the link's own
     parameters. Installed and cleared by sw_fault; [None]/empty costs one
     branch and zero extra RNG draws, so fault-free runs are bit-identical
     to pre-fault builds. *)
  mutable fault_all : disturbance option;
  fault_to : disturbance Addr_tbl.t;
  m_delivered : Registry.Counter.t;
  m_undeliverable : Registry.Counter.t;
  m_lost : Registry.Counter.t;
  m_fault_lost : Registry.Counter.t;
  p_deliver : Sw_obs.Profile.timer;
}

let pair_metric ~src ~dst =
  Printf.sprintf "net.link.%s.%s.delivered" (Address.to_string src)
    (Address.to_string dst)

let create ?stream_seed engine ~default =
  let metrics = Engine.metrics engine in
  {
    engine;
    default;
    stream_seed;
    remote = None;
    rng = Engine.rng engine;
    handlers = Addr_tbl.create 64;
    routes = Addr_tbl.create 16;
    link_overrides = Pair_tbl.create 64;
    node_overrides = Addr_tbl.create 16;
    link_states = Pair_tbl.create 64;
    counters = Pair_tbl.create 64;
    seq = 0;
    fault_all = None;
    fault_to = Addr_tbl.create 4;
    m_delivered = Registry.counter metrics "net.delivered";
    m_undeliverable = Registry.counter metrics "net.undeliverable";
    m_lost = Registry.counter metrics "net.lost";
    m_fault_lost = Registry.counter metrics "net.fault.lost";
    p_deliver = Sw_obs.Profile.timer (Engine.profile engine) "net.deliver";
  }

let engine t = t.engine

let fresh_seq t =
  t.seq <- t.seq + 1;
  t.seq

let register t addr handler = Addr_tbl.replace t.handlers addr handler
let registered t addr = Addr_tbl.mem t.handlers addr
let set_route t ~dst ~via = Addr_tbl.replace t.routes dst via
let clear_route t ~dst = Addr_tbl.remove t.routes dst

let set_link t ~src ~dst params =
  Pair_tbl.replace t.link_overrides (src, dst) params

let set_node_link t addr params = Addr_tbl.replace t.node_overrides addr params

let set_fault_all t d = t.fault_all <- d

let set_fault_to t addr = function
  | Some d -> Addr_tbl.replace t.fault_to addr d
  | None -> Addr_tbl.remove t.fault_to addr

let disturbance_for t target =
  match (t.fault_all, Addr_tbl.find_opt t.fault_to target) with
  | None, None -> None
  | (Some _ as d), None | None, (Some _ as d) -> d
  | Some a, Some b -> Some (combine_disturbance a b)

let link_state t pair =
  match Pair_tbl.find_opt t.link_states pair with
  | Some s -> s
  | None ->
      let params =
        match Pair_tbl.find_opt t.link_overrides pair with
        | Some p -> p
        | None -> (
            let src, dst = pair in
            match Addr_tbl.find_opt t.node_overrides dst with
            | Some p -> p
            | None -> (
                match Addr_tbl.find_opt t.node_overrides src with
                | Some p -> p
                | None -> t.default))
      in
      let rng =
        match t.stream_seed with
        | None -> t.rng
        | Some seed ->
            let src, dst = pair in
            Sw_sim.Prng.derive ~seed [ 0x1147L; addr_key src; addr_key dst ]
      in
      let s = { params; rng; busy_until = Time.zero; last_arrival = Time.zero } in
      Pair_tbl.add t.link_states pair s;
      s

let pair_counter t ((src, dst) as pair) =
  match Pair_tbl.find_opt t.counters pair with
  | Some c -> c
  | None ->
      let c = Registry.counter (Engine.metrics t.engine) (pair_metric ~src ~dst) in
      Pair_tbl.add t.counters pair c;
      c

(* Hand a packet to its target's handler at the current instant, with the
   delivery-side accounting. Local deliveries reach this inside their
   "net.deliver" event; cross-shard packets reach it on the owning shard's
   engine inside the "xshard" event the conductor injected at the arrival
   instant the *sending* network computed. *)
let inject t ~target (pkt : Packet.t) =
  (* A cross-shard target arrives unresolved (the sender's shard has no
     routes for remote addresses); apply this fabric's own routing — e.g.
     [Vm v -> Ingress] — before the handler lookup, as [send] would. *)
  let target =
    match Addr_tbl.find_opt t.routes target with Some via -> via | None -> target
  in
  match Addr_tbl.find_opt t.handlers target with
  | None -> Registry.Counter.incr t.m_undeliverable
  | Some handler ->
      Registry.Counter.incr t.m_delivered;
      Registry.Counter.incr (pair_counter t (pkt.src, pkt.dst));
      Sw_obs.Profile.time
        (Engine.profile t.engine)
        t.p_deliver
        (fun () -> handler pkt)

let deliver_via t ~target (pkt : Packet.t) =
  let state = link_state t (pkt.src, target) in
  let p = state.params in
  let dist = disturbance_for t target in
  if p.loss > 0. && Sw_sim.Prng.float state.rng < p.loss then
    Registry.Counter.incr t.m_lost
  else if
    match dist with
    | Some d when d.extra_loss > 0. -> Sw_sim.Prng.float state.rng < d.extra_loss
    | _ -> false
  then Registry.Counter.incr t.m_fault_lost
  else begin
    let now = Engine.now t.engine in
    let serialisation =
      if p.bandwidth_bps <= 0 then Time.zero
      else
        Time.ns
          (int_of_float
             (Float.round (float_of_int (pkt.size * 8) *. 1e9 /. float_of_int p.bandwidth_bps)))
    in
    let depart = Time.add (Time.max now state.busy_until) serialisation in
    state.busy_until <- depart;
    let jitter =
      if Time.equal p.jitter Time.zero then Time.zero
      else Time.ns (Sw_sim.Prng.int state.rng (1 + Int64.to_int p.jitter))
    in
    let extra_latency =
      match dist with Some d -> d.extra_latency | None -> Time.zero
    in
    (* A link is one physical pipe: deliveries are FIFO, so jitter may delay
       but never reorder packets within a pair. *)
    let arrive =
      Time.max state.last_arrival
        (Time.add depart (Time.add p.latency (Time.add jitter extra_latency)))
    in
    state.last_arrival <- arrive;
    (* The sender owns the link end to end — queueing, loss, jitter, FIFO —
       so a cross-shard hop changes only where the handler runs, never the
       arrival instant. *)
    match t.remote with
    | Some r when r.locate target <> r.shard ->
        r.post ~dst:(r.locate target) ~at:arrive ~target pkt
    | _ -> (
        match Addr_tbl.find_opt t.handlers target with
        | None -> Registry.Counter.incr t.m_undeliverable
        | Some handler ->
            ignore
              (Engine.schedule_at ~kind:"net.deliver" t.engine arrive (fun () ->
                   Registry.Counter.incr t.m_delivered;
                   Registry.Counter.incr (pair_counter t (pkt.src, pkt.dst));
                   Sw_obs.Profile.time
                     (Engine.profile t.engine)
                     t.p_deliver
                     (fun () -> handler pkt))))
  end

let set_remote t ~shard ~locate ~post =
  t.remote <- Some { shard; locate; post }

let min_latency t =
  let best = ref t.default.latency in
  let consider p = if Time.(p.latency < !best) then best := p.latency in
  Pair_tbl.iter (fun _ p -> consider p) t.link_overrides;
  Addr_tbl.iter (fun _ p -> consider p) t.node_overrides;
  !best

(* Per-destination-shard latency floors, for a conductor's lookahead
   matrix. A hop from this network into shard [d <> self] can only be
   priced by the default, a pair override whose delivery target locates to
   [d], a node override on a target in [d], or a node override on one of
   this shard's own nodes (src side — it can price a hop to any shard).
   Overrides on intra-shard pairs — targets locating to [self] — never
   carry cross-shard traffic and are excluded, which is the whole point:
   a fast rack-local link must not shrink every pair's window. Jitter,
   serialization, FIFO ordering, and fault disturbances only add delay, so
   the propagation latency is a sound lower bound. *)
let min_latency_to t ~locate ~self ~shards =
  let floor = Array.make shards t.default.latency in
  let src_floor = ref t.default.latency in
  Addr_tbl.iter
    (fun addr p ->
      let sh = locate addr in
      if sh = self then begin
        if Time.(p.latency < !src_floor) then src_floor := p.latency
      end
      else if Time.(p.latency < floor.(sh)) then floor.(sh) <- p.latency)
    t.node_overrides;
  Pair_tbl.iter
    (fun (_, dst) p ->
      let sh = locate dst in
      if sh <> self && Time.(p.latency < floor.(sh)) then
        floor.(sh) <- p.latency)
    t.link_overrides;
  Array.iteri
    (fun d v -> if d <> self && Time.(!src_floor < v) then floor.(d) <- !src_floor)
    floor;
  floor

let send t (pkt : Packet.t) =
  match pkt.dst with
  | Address.Broadcast_addr ->
      Addr_tbl.iter
        (fun addr _ ->
          if not (Address.equal addr pkt.src) then deliver_via t ~target:addr pkt)
        t.handlers
  | dst ->
      let target =
        match Addr_tbl.find_opt t.routes dst with Some via -> via | None -> dst
      in
      deliver_via t ~target pkt

let count t ~src ~dst =
  match Pair_tbl.find_opt t.counters (src, dst) with
  | Some c -> Registry.Counter.value c
  | None -> 0

let delivered t = Registry.Counter.value t.m_delivered
let undeliverable t = Registry.Counter.value t.m_undeliverable
let lost t = Registry.Counter.value t.m_lost
let fault_lost t = Registry.Counter.value t.m_fault_lost

let reset_counters t =
  (* Reset handles in place: the registry keeps the same counter cells, so
     cached handles and future snapshots stay coherent. *)
  Pair_tbl.iter (fun _ c -> Registry.Counter.reset c) t.counters;
  Registry.Counter.reset t.m_delivered;
  Registry.Counter.reset t.m_undeliverable;
  Registry.Counter.reset t.m_lost;
  Registry.Counter.reset t.m_fault_lost
