type vm_entry = {
  mutable replicas : int;
  (* Copies received so far and a structural digest of the first copy,
     keyed by the guest's deterministic packet sequence number. *)
  pending : (int, int * int) Hashtbl.t;
}

type t = {
  network : Network.t;
  vms : (int, vm_entry) Hashtbl.t;
  vote_expiry : Sw_sim.Time.t option;
  m_forwarded : Sw_obs.Registry.Counter.t;
  m_dropped : Sw_obs.Registry.Counter.t;
  m_mismatches : Sw_obs.Registry.Counter.t;
  m_expired : Sw_obs.Registry.Counter.t;
  mutable tap : (vm:int -> Packet.t -> Sw_sim.Time.t -> unit) option;
  mutable trace : Sw_obs.Trace.t option;
}

(* Copies beyond the (m+1)/2-th only serve to retire the vote entry. The
   expiry timer is armed when the first copy creates the entry, so an entry
   that never completes — tail copies lost to tunnel faults, or a crashed
   replica that never sends them, or one that never even releases — is
   reclaimed after [vote_expiry] instead of held for the lifetime of the
   run. *)
let schedule_expiry t entry key =
  match t.vote_expiry with
  | None -> ()
  | Some span ->
      let engine = Network.engine t.network in
      ignore
        (Sw_sim.Engine.schedule_after ~kind:"egress.expire" engine span
           (fun () ->
             if Hashtbl.mem entry.pending key then begin
               Hashtbl.remove entry.pending key;
               Sw_obs.Registry.Counter.incr t.m_expired
             end))

let handle t (pkt : Packet.t) =
  match pkt.Packet.payload with
  | Packet.Egress_tunnel { vm; inner; _ } -> (
      match Hashtbl.find_opt t.vms vm with
      | None -> Sw_obs.Registry.Counter.incr t.m_dropped
      | Some entry ->
          let key = inner.Packet.seq in
          let digest = Hashtbl.hash (inner.Packet.dst, inner.Packet.size, inner.Packet.payload) in
          let seen, first_digest =
            match Hashtbl.find_opt entry.pending key with
            | Some (n, d) -> (n, d)
            | None -> (0, digest)
          in
          (* Output vote: replicas are deterministic, so all copies of one
             sequence number must be structurally identical. *)
          if digest <> first_digest then Sw_obs.Registry.Counter.incr t.m_mismatches;
          let seen = seen + 1 in
          let release_rank = (entry.replicas + 1) / 2 in
          if seen >= entry.replicas then Hashtbl.remove entry.pending key
          else Hashtbl.replace entry.pending key (seen, first_digest);
          if seen = 1 && seen < entry.replicas then
            schedule_expiry t entry key;
          if seen = release_rank then begin
            Sw_obs.Registry.Counter.incr t.m_forwarded;
            if Sw_obs.Trace.active t.trace then
              Sw_obs.Trace.emit (Option.get t.trace)
                ~at_ns:(Sw_sim.Engine.now (Network.engine t.network))
                (Sw_obs.Event.Egress_released
                   { vm; seq = key; rank = release_rank; copies = entry.replicas });
            (match t.tap with
            | Some f -> f ~vm inner (Sw_sim.Engine.now (Network.engine t.network))
            | None -> ());
            Network.send t.network inner
          end)
  | _ -> Sw_obs.Registry.Counter.incr t.m_dropped

let create ?vote_expiry network =
  let metrics = Sw_sim.Engine.metrics (Network.engine network) in
  let t =
    {
      network;
      vms = Hashtbl.create 16;
      vote_expiry;
      m_forwarded = Sw_obs.Registry.counter metrics "net.egress.forwarded";
      m_dropped = Sw_obs.Registry.counter metrics "net.egress.dropped";
      m_mismatches = Sw_obs.Registry.counter metrics "net.egress.mismatches";
      m_expired = Sw_obs.Registry.counter metrics "net.egress.expired_votes";
      tap = None;
      trace = None;
    }
  in
  Network.register network Address.Egress (handle t);
  t

let set_trace t tr = t.trace <- Some tr

let check_replicas ~fn replicas =
  if replicas < 1 || replicas mod 2 = 0 then
    invalid_arg (fn ^ ": replica count must be odd and positive")

let register_vm t ~vm ~replicas =
  check_replicas ~fn:"Egress.register_vm" replicas;
  Hashtbl.replace t.vms vm { replicas; pending = Hashtbl.create 64 }

(* Degradation support: when the replica group ejects members, the egress
   must vote over the new quorum size or it would wait forever for copies
   from dead replicas. Entries created before the change keep whatever
   release decision they already made; incomplete ones fall to the expiry
   sweep. *)
let set_replicas t ~vm ~replicas =
  check_replicas ~fn:"Egress.set_replicas" replicas;
  match Hashtbl.find_opt t.vms vm with
  | None -> invalid_arg "Egress.set_replicas: unknown vm"
  | Some entry -> entry.replicas <- replicas

let pending_votes t ~vm =
  match Hashtbl.find_opt t.vms vm with
  | None -> 0
  | Some entry -> Hashtbl.length entry.pending

let unregister_vm t ~vm = Hashtbl.remove t.vms vm
let forwarded t = Sw_obs.Registry.Counter.value t.m_forwarded
let dropped t = Sw_obs.Registry.Counter.value t.m_dropped
let mismatches t = Sw_obs.Registry.Counter.value t.m_mismatches
let expired_votes t = Sw_obs.Registry.Counter.value t.m_expired
let on_forward t f = t.tap <- Some f
