type vm_entry = {
  replicas : int;
  (* Copies received so far and a structural digest of the first copy,
     keyed by the guest's deterministic packet sequence number. *)
  pending : (int, int * int) Hashtbl.t;
}

type t = {
  network : Network.t;
  vms : (int, vm_entry) Hashtbl.t;
  m_forwarded : Sw_obs.Registry.Counter.t;
  m_dropped : Sw_obs.Registry.Counter.t;
  m_mismatches : Sw_obs.Registry.Counter.t;
  mutable tap : (vm:int -> Packet.t -> Sw_sim.Time.t -> unit) option;
}

let handle t (pkt : Packet.t) =
  match pkt.Packet.payload with
  | Packet.Egress_tunnel { vm; inner; _ } -> (
      match Hashtbl.find_opt t.vms vm with
      | None -> Sw_obs.Registry.Counter.incr t.m_dropped
      | Some entry ->
          let key = inner.Packet.seq in
          let digest = Hashtbl.hash (inner.Packet.dst, inner.Packet.size, inner.Packet.payload) in
          let seen, first_digest =
            match Hashtbl.find_opt entry.pending key with
            | Some (n, d) -> (n, d)
            | None -> (0, digest)
          in
          (* Output vote: replicas are deterministic, so all copies of one
             sequence number must be structurally identical. *)
          if digest <> first_digest then Sw_obs.Registry.Counter.incr t.m_mismatches;
          let seen = seen + 1 in
          let release_rank = (entry.replicas + 1) / 2 in
          if seen >= entry.replicas then Hashtbl.remove entry.pending key
          else Hashtbl.replace entry.pending key (seen, first_digest);
          if seen = release_rank then begin
            Sw_obs.Registry.Counter.incr t.m_forwarded;
            (match t.tap with
            | Some f -> f ~vm inner (Sw_sim.Engine.now (Network.engine t.network))
            | None -> ());
            Network.send t.network inner
          end)
  | _ -> Sw_obs.Registry.Counter.incr t.m_dropped

let create network =
  let metrics = Sw_sim.Engine.metrics (Network.engine network) in
  let t =
    {
      network;
      vms = Hashtbl.create 16;
      m_forwarded = Sw_obs.Registry.counter metrics "net.egress.forwarded";
      m_dropped = Sw_obs.Registry.counter metrics "net.egress.dropped";
      m_mismatches = Sw_obs.Registry.counter metrics "net.egress.mismatches";
      tap = None;
    }
  in
  Network.register network Address.Egress (handle t);
  t

let register_vm t ~vm ~replicas =
  if replicas < 1 || replicas mod 2 = 0 then
    invalid_arg "Egress.register_vm: replica count must be odd and positive";
  Hashtbl.replace t.vms vm { replicas; pending = Hashtbl.create 64 }

let unregister_vm t ~vm = Hashtbl.remove t.vms vm
let forwarded t = Sw_obs.Registry.Counter.value t.m_forwarded
let dropped t = Sw_obs.Registry.Counter.value t.m_dropped
let mismatches t = Sw_obs.Registry.Counter.value t.m_mismatches
let on_forward t f = t.tap <- Some f
