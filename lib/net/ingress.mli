(** The ingress node (paper Sec. V): replicates every packet destined to a
    guest VM to all machines hosting that VM's replicas, stamping a shared
    [ingress_seq] so the VMMs can match delivery-time proposals. *)

type t

(** Creates the node and registers it at {!Address.Ingress}. *)
val create : Network.t -> t

(** [register_vm t ~vm ?channel ~replica_vmms] routes [Address.Vm vm] via
    the ingress and replicates its inbound traffic to the given VMM
    addresses. With [channel] (a PGM-style multicast group whose members are
    the ingress and the replica VMMs) the copies travel reliably over the
    group, as the paper's OpenPGM-based replication does; otherwise they are
    plain unicast copies. *)
val register_vm :
  ?channel:Multicast.group -> t -> vm:int -> replica_vmms:Address.t list -> unit

(** [set_replica_vmms t ~vm ~replica_vmms] replaces the unicast replication
    target list — used when the VM's replica group ejects or reintegrates a
    member. No effect on multicast-channel replication, which is group-wide
    by construction. *)
val set_replica_vmms : t -> vm:int -> replica_vmms:Address.t list -> unit

val unregister_vm : t -> vm:int -> unit

(** Packets arriving for VMs the ingress does not know. *)
val dropped : t -> int

(** Total inbound guest packets replicated. *)
val replicated : t -> int

(** Attach a trace sink: each replication emits
    {!Sw_obs.Event.Ingress_replicated} — the root of a packet's causal
    chain — when the sink is enabled. *)
val set_trace : t -> Sw_obs.Trace.t -> unit

(** Highest multicast group id routed by this ingress (0 when none) — the
    restore path advances the global group-id allocator past it so groups
    created after a checkpoint restore cannot collide with restored ones. *)
val max_mcast_group : t -> int
