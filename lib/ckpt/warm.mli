(** Warm-start cache for expensive scenario builds.

    Building a 10k-host datacenter cloud — tens of thousands of machines,
    replica groups, clients, and flow generators — costs real wall time
    before the first event fires, and a configuration sweep pays it once
    per configuration. This module caches the {e prepared-but-unrun}
    {!Sw_workload.Run.handle} at simulated t=0 as a {!Image} on disk,
    keyed by an opaque [key] string (callers bake in everything that
    shapes the build: scenario digest, shard count, partition, lookahead
    mode). Subsequent runs of the same configuration
    [Cloud.restore] the image instead of rebuilding — the restored handle
    is fully live and byte-equivalent to a cold build, which the
    warm-start smoke pins by diffing their reports.

    Images are same-binary artifacts (Marshal with closures); a cache hit
    from a stale binary fails [Cloud.restore]'s compatibility check and
    falls back to a rebuild transparently. *)

type status =
  | Built  (** Cache miss (or unreadable image): built fresh, image written. *)
  | Restored  (** Cache hit: handle restored from the image. *)

(** Where [load_or_build] keeps the image for [key] inside [dir]. *)
val image_path : dir:string -> key:string -> string

(** [load_or_build ~dir ~key ~seed ~shards ~build] returns a ready-to-run
    handle for the configuration identified by [key]: restored from a
    valid cached image when one exists, otherwise built by [build ()] and
    checkpointed for next time. [seed] and [shards] are recorded in the
    image header for inspection; identity rests on [key] alone. Errors
    only when the cache directory or a fresh image cannot be written. *)
val load_or_build :
  dir:string ->
  key:string ->
  seed:int64 ->
  shards:int ->
  build:(unit -> Sw_workload.Run.handle) ->
  (Sw_workload.Run.handle * status, string) result
