module Run = Sw_workload.Run
module Cloud = Stopwatch.Cloud

type status = Built | Restored

let image_path ~dir ~key =
  Filename.concat dir
    (Printf.sprintf "warm-%s.img" (Digest.to_hex (Digest.string key)))

(* A cached image is advisory: any failure to read or restore it — wrong
   binary, truncation, stale layout — silently falls back to a rebuild,
   which overwrites the carcass. Only a failure to *write* the fresh image
   is an error the caller must see. *)
let load_or_build ~dir ~key ~seed ~shards ~build =
  match Store.ensure_dir dir with
  | Error e -> Error (Image.error_to_string e)
  | Ok () -> (
      let path = image_path ~dir ~key in
      let cached =
        if not (Sys.file_exists path) then None
        else
          match Image.read ~path with
          | Error _ -> None
          | Ok (meta, payload) ->
              if meta.Image.scenario <> key then None
              else begin
                match Cloud.restore payload with
                | Error _ -> None
                | Ok ((_ : Cloud.t), (h : Run.handle)) -> Some h
              end
      in
      match cached with
      | Some h -> Ok (h, Restored)
      | None -> (
          let h = build () in
          let payload = Cloud.checkpoint h.Run.cloud ~extra:h in
          let meta =
            {
              Image.scenario = key;
              seed;
              shards;
              index = 0;
              sim_ns = Sw_sim.Engine.now (Cloud.engine h.Run.cloud);
              fingerprint = Bisect.fingerprint h.Run.cloud;
              payload_digest = Digest.string "";
              payload_len = 0;
            }
          in
          match Image.write ~path meta ~payload with
          | Ok () -> Ok (h, Built)
          | Error e -> Error (Image.error_to_string e)))
