(** Divergence bisection over two checkpoint timelines.

    When two runs that should agree don't — a regression between binaries,
    a nondeterminism bug, shards 1 vs N disagreeing — their soak
    directories hold checkpoints on the {e same} absolute simulated-time
    grid, each stamped with a shard-layout-independent {!fingerprint}.
    {!first_divergence} binary-searches that shared grid for the first
    index whose fingerprints disagree, then narrows the window further:

    - it restores both sides' divergent images and reports exactly which
      (non-[sim.*]) metrics differ and how;
    - when both sides are single-shard and a common ancestor image exists,
      it replays the divergent window on each side with a structured trace
      attached and reports the {e first trace event} where the two
      executions part ways, together with that packet's
      {!Sw_obs.Lineage} causal chain (ingress stamp → proposals → median
      → delivery).

    The search assumes divergence is persistent (fingerprints are
    cumulative metric digests: once two runs disagree they do not
    re-converge), which is what makes binary search sound. *)

(** The shard-layout-independent identity of a cloud's state: the hex
    digest of the canonical JSON export of its metric snapshot with
    [sim.*] (execution-substrate bookkeeping) dropped. Equal fingerprints
    at equal simulated times mean the two clouds are observationally the
    same run, whatever their shard partition. *)
val fingerprint : Stopwatch.Cloud.t -> string

(** One differing metric: name, rendered value on side A, on side B
    ([None] = absent on that side). *)
type metric_diff = string * string option * string option

type divergence = {
  index : int;  (** First checkpoint index whose fingerprints differ. *)
  sim_ns : int64;  (** Simulated time of that checkpoint. *)
  last_common : int option;
      (** Newest index where both sides still agreed; [None] when they
          disagree from the very first shared checkpoint. *)
  metric_diff : metric_diff list;  (** Ascending by name. *)
  first_event :
    (int * Sw_obs.Trace.entry option * Sw_obs.Trace.entry option) option;
      (** [(position, a, b)]: the first position in the replayed divergent
          window where the two traces disagree, with each side's entry at
          that position ([None] = that side's trace ended first). [None]
          when the window could not be replayed (no common ancestor, a
          sharded side, or an unloadable image — the metric diff above
          still stands). *)
  chain : Sw_obs.Lineage.chain option;
      (** Side A's causal chain for the packet behind the first divergent
          event, when the event names one. *)
}

type error =
  | Empty_timeline of string  (** Directory with no readable image. *)
  | No_common_index
      (** The two timelines share no checkpoint index at all. *)
  | Grid_mismatch of { index : int; a_ns : int64; b_ns : int64 }
      (** Same index, different simulated time: the runs were checkpointed
          on different grids and cannot be compared. *)
  | No_divergence of { compared : int }
      (** Every shared checkpoint agrees — the runs are (so far)
          observationally identical. *)
  | Image_error of { path : string; error : Image.error }
  | Unloadable of { path : string; reason : string }

val pp_error : Format.formatter -> error -> unit

(** [first_divergence ~a ~b] bisects the checkpoint directories [a] and
    [b]. Only image {e metadata} is read during the search; payloads are
    restored only for the final window analysis. *)
val first_divergence : a:string -> b:string -> (divergence, error) result

(** Human-oriented rendering of a {!divergence} (multi-line). *)
val pp_divergence : Format.formatter -> divergence -> unit
