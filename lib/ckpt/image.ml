type meta = {
  scenario : string;
  seed : int64;
  shards : int;
  index : int;
  sim_ns : int64;
  fingerprint : string;
  payload_digest : Digest.t;
  payload_len : int;
}

type error =
  | Truncated
  | Bad_magic
  | Version_mismatch of { found : int; expected : int }
  | Corrupt of string
  | Io of string

let pp_error fmt = function
  | Truncated -> Format.fprintf fmt "truncated image"
  | Bad_magic -> Format.fprintf fmt "not a checkpoint image (bad magic)"
  | Version_mismatch { found; expected } ->
      Format.fprintf fmt "image format v%d, this binary reads v%d" found
        expected
  | Corrupt what -> Format.fprintf fmt "corrupt image: %s" what
  | Io msg -> Format.fprintf fmt "io error: %s" msg

let error_to_string e = Format.asprintf "%a" pp_error e

let magic = "SWCKPT"
let version = 1

(* magic + 2 version digits + 8-byte big-endian header length *)
let preamble_len = String.length magic + 2 + 8

let ( let* ) = Result.bind

let write ~path meta ~payload =
  let meta =
    { meta with payload_digest = Digest.string payload;
      payload_len = String.length payload }
  in
  let header = Marshal.to_string meta [] in
  let preamble = Bytes.create preamble_len in
  Bytes.blit_string magic 0 preamble 0 (String.length magic);
  Bytes.blit_string (Printf.sprintf "%02d" version) 0 preamble
    (String.length magic) 2;
  Bytes.set_int64_be preamble (String.length magic + 2)
    (Int64.of_int (String.length header));
  let tmp = path ^ ".tmp" in
  match
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_bytes oc preamble;
        Out_channel.output_string oc header;
        Out_channel.output_string oc payload);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Io msg)

(* Reads the preamble and header; returns the meta and the channel
   positioned at the payload. *)
let read_framing ic =
  let* preamble =
    match really_input_string ic preamble_len with
    | s -> Ok s
    | exception End_of_file -> Error Truncated
  in
  let* () =
    if String.sub preamble 0 (String.length magic) = magic then Ok ()
    else Error Bad_magic
  in
  let* found =
    match int_of_string_opt (String.sub preamble (String.length magic) 2) with
    | Some v -> Ok v
    | None -> Error Bad_magic
  in
  let* () =
    if found = version then Ok ()
    else Error (Version_mismatch { found; expected = version })
  in
  let header_len =
    Int64.to_int
      (Bytes.get_int64_be
         (Bytes.of_string preamble)
         (String.length magic + 2))
  in
  let* () =
    if header_len > 0 && header_len <= 1 lsl 24 then Ok ()
    else Error (Corrupt "implausible header length")
  in
  let* header =
    match really_input_string ic header_len with
    | s -> Ok s
    | exception End_of_file -> Error Truncated
  in
  match (Marshal.from_string header 0 : meta) with
  | meta -> Ok meta
  | exception _ -> Error (Corrupt "unreadable header")

let with_image path f =
  match In_channel.with_open_bin path f with
  | v -> v
  | exception Sys_error msg -> Error (Io msg)

let read_meta ~path = with_image path read_framing

let read ~path =
  with_image path (fun ic ->
      let* meta = read_framing ic in
      let* () =
        if meta.payload_len >= 0 then Ok ()
        else Error (Corrupt "negative payload length")
      in
      let* payload =
        match really_input_string ic meta.payload_len with
        | s -> Ok s
        | exception End_of_file -> Error Truncated
      in
      let* () =
        if Digest.equal (Digest.string payload) meta.payload_digest then Ok ()
        else Error (Corrupt "payload digest mismatch")
      in
      Ok (meta, payload))
