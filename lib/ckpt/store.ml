type entry = { index : int; path : string; meta : Image.meta }

let path dir ~index = Filename.concat dir (Printf.sprintf "ckpt-%06d.img" index)

let ensure_dir dir =
  let rec mk d =
    if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
    else begin
      mk (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ()
    end
  in
  match mk dir with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Image.Io msg)

let index_of_filename name =
  match Scanf.sscanf_opt name "ckpt-%06d.img%!" (fun i -> i) with
  | Some i when name = Printf.sprintf "ckpt-%06d.img" i -> Some i
  | _ -> None

let list dir =
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort String.compare files;
  let entries = ref [] and skipped = ref [] in
  Array.iter
    (fun name ->
      match index_of_filename name with
      | None -> ()
      | Some index -> (
          let path = Filename.concat dir name in
          match Image.read_meta ~path with
          | Ok meta -> entries := { index; path; meta } :: !entries
          | Error e -> skipped := (path, e) :: !skipped))
    files;
  ( List.sort (fun a b -> compare a.index b.index) !entries,
    List.rev !skipped )

let latest_valid dir =
  let entries, skipped = list dir in
  let rejected = ref (List.map (fun (p, e) -> (p, e)) skipped) in
  let rec walk = function
    | [] -> None
    | e :: older -> (
        match Image.read ~path:e.path with
        | Ok (meta, payload) -> Some ({ e with meta }, payload, !rejected)
        | Error err ->
            rejected := (e.path, err) :: !rejected;
            walk older)
  in
  walk (List.rev entries)

let prune dir ~keep =
  let entries, _ = list dir in
  let n = List.length entries in
  if n > keep then
    List.iteri
      (fun i e -> if i < n - keep then try Sys.remove e.path with Sys_error _ -> ())
      entries
