module Time = Sw_sim.Time
module Dsl = Sw_workload.Dsl
module Run = Sw_workload.Run
module Cloud = Stopwatch.Cloud

type event =
  | Resumed of { index : int; sim_ns : int64 }
  | Checkpointed of { index : int; sim_ns : int64; path : string; bytes : int }
  | Skipped_image of { path : string; error : Image.error }
  | Leak_sampled of { index : int; sim_ns : int64; leak : bool }
  | Finished of { sim_ns : int64 }

type error =
  | Wrong_scenario of { image : string; expected : string }
  | Unloadable of { path : string; reason : string }
  | Image_error of Image.error

let pp_error fmt = function
  | Wrong_scenario { image; expected } ->
      Format.fprintf fmt
        "checkpoint directory belongs to scenario %s, not %s" image expected
  | Unloadable { path; reason } ->
      Format.fprintf fmt "cannot load %s in this binary: %s" path reason
  | Image_error e -> Image.pp_error fmt e

type outcome = {
  result : Run.result;
  sim_ns : int64;
  checkpoints_written : int;
  resumed_from : int option;
  images_skipped : int;
  leak_samples : (int64 * Sw_leak.Audit.t) list;
}

exception Killed of { checkpoints : int; sim_ns : int64 }

let effective_shards (w : Dsl.workload) ~shards =
  match w.topology with
  | None -> 1
  | Some topo -> ( match shards with Some s -> s | None -> topo.Dsl.shards)

let scenario_id (scn : Dsl.t) ~shards =
  let w =
    match scn.Dsl.kind with
    | Dsl.Workload w -> w
    | Dsl.Attack _ -> invalid_arg "Soak.scenario_id: scenario is not a workload"
  in
  Printf.sprintf "%s:%s:shards=%d" scn.Dsl.name
    (Digest.to_hex (Digest.string (Dsl.print scn)))
    (effective_shards w ~shards)

let ( let* ) = Result.bind

let now_ns cloud = Sw_sim.Engine.now (Cloud.engine cloud)

let run ~scenario ?shards ~dir ~every ?kill_after ?keep
    ?(on_event = fun (_ : event) -> ()) () =
  let w =
    match scenario.Dsl.kind with
    | Dsl.Workload w -> w
    | Dsl.Attack _ -> invalid_arg "Soak.run: scenario is not a workload"
  in
  if Time.compare every Time.zero <= 0 then
    invalid_arg "Soak.run: checkpoint interval must be positive";
  let sid = scenario_id scenario ~shards in
  let* () =
    Result.map_error (fun e -> Image_error e) (Store.ensure_dir dir)
  in
  (* Recover: newest fully-verified image, or a fresh handle. *)
  let* (handle : Run.handle), first_index, resumed_from, images_skipped =
    match Store.latest_valid dir with
    | None -> Ok (Run.prepare ?shards w, 0, None, 0)
    | Some (entry, payload, rejected) ->
        List.iter
          (fun (path, error) -> on_event (Skipped_image { path; error }))
          rejected;
        if entry.Store.meta.Image.scenario <> sid then
          Error
            (Wrong_scenario
               { image = entry.Store.meta.Image.scenario; expected = sid })
        else begin
          match Cloud.restore payload with
          | Error e ->
              Error
                (Unloadable
                   {
                     path = entry.Store.path;
                     reason = Format.asprintf "%a" Cloud.pp_restore_error e;
                   })
          | Ok ((_cloud : Cloud.t), (h : Run.handle)) ->
              on_event
                (Resumed
                   {
                     index = entry.Store.index;
                     sim_ns = entry.Store.meta.Image.sim_ns;
                   });
              Ok
                ( h,
                  entry.Store.index + 1,
                  Some entry.Store.index,
                  List.length rejected )
        end
  in
  let cloud = handle.Run.cloud in
  let until = handle.Run.until in
  let written = ref 0 in
  let index = ref first_index in
  let leak_samples = ref [] in
  (* One leak sample per checkpoint grid point: a split-half drift audit of
     every observation series accumulated so far. Empty unless the scenario
     set [leak_audit]. Recomputed on resume exactly as in a straight run
     (the series live in the checkpointed cloud), so the outcome stays
     byte-identical across interruptions. *)
  let sample_leak ~grid_index ~sim_ns =
    match handle.Run.observe () with
    | [] -> ()
    | series ->
        let audit =
          Sw_leak.Audit.split_half
            ~label:(Printf.sprintf "soak/%d" grid_index)
            series
        in
        leak_samples := (sim_ns, audit) :: !leak_samples;
        on_event
          (Leak_sampled
             { index = grid_index; sim_ns; leak = Sw_leak.Audit.leak audit })
  in
  (* The checkpoint grid is absolute simulated time (every, 2*every, ...):
     a resumed run schedules the same capture instants as an uninterrupted
     one, so their timelines line up image for image. *)
  let rec drive () =
    let now = now_ns cloud in
    let next_grid =
      Time.mul_int every (Int64.to_int (Int64.div now every) + 1)
    in
    if Time.compare next_grid until >= 0 then Cloud.run cloud ~until
    else begin
      Cloud.run cloud ~until:next_grid;
      let sim_ns = now_ns cloud in
      let payload = Cloud.checkpoint cloud ~extra:handle in
      let path = Store.path dir ~index:!index in
      let meta =
        {
          Image.scenario = sid;
          seed = w.Dsl.seed;
          shards = effective_shards w ~shards;
          index = !index;
          sim_ns;
          fingerprint = Bisect.fingerprint cloud;
          payload_digest = Digest.string "";
          payload_len = 0;
        }
      in
      (match Image.write ~path meta ~payload with
      | Ok () -> ()
      | Error e -> raise (Sys_error (Image.error_to_string e)));
      incr written;
      on_event
        (Checkpointed
           { index = !index; sim_ns; path; bytes = String.length payload });
      sample_leak ~grid_index:!index ~sim_ns;
      incr index;
      (match keep with Some k -> Store.prune dir ~keep:k | None -> ());
      (match kill_after with
      | Some n when !written >= n ->
          raise (Killed { checkpoints = !written; sim_ns })
      | _ -> ());
      drive ()
    end
  in
  drive ();
  let sim_ns = now_ns cloud in
  on_event (Finished { sim_ns });
  Ok
    {
      result = handle.Run.finish ();
      sim_ns;
      checkpoints_written = !written;
      resumed_from;
      images_skipped;
      leak_samples = List.rev !leak_samples;
    }
