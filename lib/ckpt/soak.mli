(** The crash-resumable soak driver: run a [.scn] workload scenario to the
    end, checkpointing the whole simulation on a fixed simulated-time
    schedule, and — when started over a directory that already holds
    checkpoints of the {e same} scenario — resume from the newest image
    that verifies instead of starting over.

    The determinism contract of [Cloud.checkpoint]/[Cloud.restore] makes
    the outcome independent of how often the run was interrupted: a soak
    killed at any point and resumed (any number of times, in any process
    of the same binary) produces a byte-identical {!outcome} report to one
    uninterrupted run — the property [@soak-smoke] machine-checks in CI.

    Recovery rules, in order:
    - images that fail verification ({!Image.read}) are skipped, newest
      first, falling back to the previous one — a crash mid-write or a
      corrupted file costs at most one checkpoint interval of re-simulation;
    - a verified image whose scenario identity (name, compiled-workload
      digest, seed, shard count) differs from the requested one is a hard
      {!error.Wrong_scenario} — silently replaying someone else's state is
      the one thing a soak must never do;
    - a verified image of the right scenario that this binary cannot load
      ([Cloud.restore] failure: other build, unregistered payloads) is
      {!error.Unloadable} — re-simulating from scratch under a different
      binary would masquerade as a resume, so that choice is the
      caller's. *)

type event =
  | Resumed of { index : int; sim_ns : int64 }
  | Checkpointed of { index : int; sim_ns : int64; path : string; bytes : int }
  | Skipped_image of { path : string; error : Image.error }
      (** An unusable newer image was passed over during recovery. *)
  | Leak_sampled of { index : int; sim_ns : int64; leak : bool }
      (** A leak sample was taken at checkpoint grid point [index]
          (scenarios with [leak_audit] only). *)
  | Finished of { sim_ns : int64 }

type error =
  | Wrong_scenario of { image : string; expected : string }
  | Unloadable of { path : string; reason : string }
  | Image_error of Image.error

val pp_error : Format.formatter -> error -> unit

type outcome = {
  result : Sw_workload.Run.result;
  sim_ns : int64;  (** Simulated time at the end of the run. *)
  checkpoints_written : int;  (** By this process. *)
  resumed_from : int option;  (** Checkpoint index, when resuming. *)
  images_skipped : int;  (** Unusable images passed over during recovery. *)
  leak_samples : (int64 * Sw_leak.Audit.t) list;
      (** One split-half drift audit per checkpoint grid point reached by
          this process, oldest first, stamped with the grid instant —
          empty unless the scenario set [leak_audit]. A resumed run
          re-samples only the grid points it itself crosses; the
          checkpointed observation series make each sample identical to
          the straight run's at the same index. *)
}

(** Raised when [kill_after] fires: the driver stops dead — no final
    checkpoint, no report — simulating a crash at a reproducible point.
    The CLI maps it to a distinctive exit code; tests catch it and call
    {!run} again to exercise resumption. *)
exception Killed of { checkpoints : int; sim_ns : int64 }

(** The scenario identity stamped into (and checked against) every image:
    scenario name, digest of the printed scenario, and the effective shard
    count. *)
val scenario_id : Sw_workload.Dsl.t -> shards:int option -> string

(** [run ~scenario ~dir ~every ()] drives [scenario] (which must be a
    [Workload]; [Invalid_argument] otherwise) to completion with a
    checkpoint every [every] of simulated time (the run end is always
    aligned to the scenario's own horizon, not to the grid).

    [shards] overrides the topology block's shard count, exactly like
    [Run.run]. [kill_after n] aborts the process-visible run by raising
    {!Killed} after the [n]-th checkpoint {e written by this process}.
    [keep] prunes the timeline to the newest [keep] images after each
    write (default: keep everything). [on_event] observes progress. *)
val run :
  scenario:Sw_workload.Dsl.t ->
  ?shards:int ->
  dir:string ->
  every:Sw_sim.Time.t ->
  ?kill_after:int ->
  ?keep:int ->
  ?on_event:(event -> unit) ->
  unit ->
  (outcome, error) result
