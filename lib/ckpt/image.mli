(** The on-disk checkpoint image: a versioned, checksummed, atomically
    written container around the [Cloud.checkpoint] bytes.

    Layout (all offsets fixed):
    {v
      bytes 0..5   magic  "SWCKPT"
      bytes 6..7   format version, two ASCII decimal digits
      bytes 8..15  header length, unsigned 64-bit big-endian
      ...          header: Marshal'd {!meta} (plain data, no closures)
      ...          payload: Cloud.checkpoint bytes, [meta.payload_len] long
    v}

    The header carries an MD5 digest of the payload, so {!read} never hands
    back silently corrupted state — a flipped bit anywhere in the payload
    is a {!error.Corrupt}, a short file a {!error.Truncated}, and a file
    from an older (or newer) layout a {!error.Version_mismatch}. Writes go
    through a [.tmp] sibling and a final [rename], so a crash mid-write
    can only ever leave a [.tmp] carcass behind, never a plausible-looking
    half image under the real name. *)

(** Everything knowable about an image without loading (or trusting) its
    payload. *)
type meta = {
  scenario : string;
      (** Identity of the run — scenario name plus the digest of its
          compiled workload, see [Soak.scenario_id]. *)
  seed : int64;
  shards : int;
  index : int;  (** Position in the checkpoint timeline, from 0. *)
  sim_ns : int64;  (** Simulated instant of capture. *)
  fingerprint : string;
      (** Digest of the shard-layout-independent state summary at capture
          ([Bisect.fingerprint]); equal fingerprints at equal indexes mean
          two runs had not yet diverged. *)
  payload_digest : Digest.t;
  payload_len : int;
}

type error =
  | Truncated  (** File shorter than its own framing says. *)
  | Bad_magic  (** Not a checkpoint image at all. *)
  | Version_mismatch of { found : int; expected : int }
  | Corrupt of string  (** Framing intact but content does not check out. *)
  | Io of string  (** The OS said no ([Sys_error] and friends). *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val version : int

(** [write ~path meta ~payload] writes atomically: the image appears under
    [path] complete or not at all. [meta.payload_digest] and
    [meta.payload_len] are recomputed from [payload] — callers cannot
    accidentally write a lying header. *)
val write : path:string -> meta -> payload:string -> (unit, error) result

(** [read ~path] loads and fully verifies an image: framing, version, and
    payload digest. The returned payload is safe to feed to
    [Cloud.restore] (which still enforces same-binary compatibility on its
    own). *)
val read : path:string -> (meta * string, error) result

(** [read_meta ~path] loads and checks the framing only — cheap enough to
    call over a whole timeline; the payload is neither read nor verified. *)
val read_meta : path:string -> (meta, error) result
