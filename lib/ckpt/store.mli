(** A checkpoint timeline: one directory, one image per checkpoint index,
    named [ckpt-NNNNNN.img]. The store never deletes data behind the
    caller's back and treats every file as potentially hostile — anything
    unreadable is reported, not raised. *)

type entry = { index : int; path : string; meta : Image.meta }

(** [path dir ~index] is where the image for [index] lives. *)
val path : string -> index:int -> string

(** [ensure_dir dir] creates [dir] (and parents) if needed. *)
val ensure_dir : string -> (unit, Image.error) result

(** [list dir] enumerates readable images sorted by ascending index,
    pairing each skipped file with why ([Image.read_meta] framing check
    only; payloads are not verified). A missing directory is an empty
    timeline. *)
val list : string -> entry list * (string * Image.error) list

(** [latest_valid dir] finds the newest image whose payload fully verifies
    ({!Image.read}), walking backwards over corrupt/truncated newer ones —
    the soak driver's crash-recovery rule. Returns the entry, its verified
    payload, and the (path, error) pairs of every newer image that was
    rejected on the way. [None] when no image verifies. *)
val latest_valid :
  string -> (entry * string * (string * Image.error) list) option

(** [prune dir ~keep] removes verified-oldest images beyond the newest
    [keep]; files that do not parse as images are left alone. *)
val prune : string -> keep:int -> unit
