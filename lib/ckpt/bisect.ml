module Cloud = Stopwatch.Cloud
module Snapshot = Sw_obs.Snapshot
module Export = Sw_obs.Export
module Trace = Sw_obs.Trace
module Event = Sw_obs.Event
module Lineage = Sw_obs.Lineage

let observational cloud =
  Snapshot.filter (Cloud.metrics_snapshot cloud) ~f:(fun name ->
      not (String.starts_with ~prefix:"sim." name))

let fingerprint cloud =
  Digest.to_hex (Digest.string (Export.to_json_string (observational cloud)))

type metric_diff = string * string option * string option

type divergence = {
  index : int;
  sim_ns : int64;
  last_common : int option;
  metric_diff : metric_diff list;
  first_event :
    (int * Sw_obs.Trace.entry option * Sw_obs.Trace.entry option) option;
  chain : Sw_obs.Lineage.chain option;
}

type error =
  | Empty_timeline of string
  | No_common_index
  | Grid_mismatch of { index : int; a_ns : int64; b_ns : int64 }
  | No_divergence of { compared : int }
  | Image_error of { path : string; error : Image.error }
  | Unloadable of { path : string; reason : string }

let pp_error fmt = function
  | Empty_timeline dir -> Format.fprintf fmt "no readable image in %s" dir
  | No_common_index ->
      Format.fprintf fmt "the two timelines share no checkpoint index"
  | Grid_mismatch { index; a_ns; b_ns } ->
      Format.fprintf fmt
        "checkpoint %d sits at %Ldns on one side, %Ldns on the other: \
         different checkpoint intervals"
        index a_ns b_ns
  | No_divergence { compared } ->
      Format.fprintf fmt "all %d shared checkpoints agree" compared
  | Image_error { path; error } ->
      Format.fprintf fmt "%s: %a" path Image.pp_error error
  | Unloadable { path; reason } ->
      Format.fprintf fmt "cannot restore %s: %s" path reason

let ( let* ) = Result.bind

let load_cloud path =
  let* _meta, payload =
    Result.map_error (fun e -> Image_error { path; error = e })
      (Image.read ~path)
  in
  match Cloud.restore payload with
  | Ok (cloud, _extra) -> Ok cloud
  | Error e ->
      Error
        (Unloadable
           { path; reason = Format.asprintf "%a" Cloud.pp_restore_error e })

let render_data = function
  | Snapshot.Counter n -> string_of_int n
  | Snapshot.Sum x | Snapshot.Gauge x -> Export.float_repr x
  | Snapshot.Histogram h ->
      Printf.sprintf "histogram(count=%d,total=%Ldns)" h.Snapshot.count
        h.Snapshot.total

(* Name-merge two sorted metric lists, keeping only disagreeing names. *)
let diff_snapshots sa sb =
  let rec walk acc la lb =
    match (la, lb) with
    | [], [] -> List.rev acc
    | (n, d) :: la, [] -> walk ((n, Some (render_data d), None) :: acc) la []
    | [], (n, d) :: lb -> walk ((n, None, Some (render_data d)) :: acc) [] lb
    | (na, da) :: la', (nb, db) :: lb' ->
        let c = String.compare na nb in
        if c < 0 then walk ((na, Some (render_data da), None) :: acc) la' lb
        else if c > 0 then
          walk ((nb, None, Some (render_data db)) :: acc) la lb'
        else
          let ra = render_data da and rb = render_data db in
          let acc = if ra = rb then acc else (na, Some ra, Some rb) :: acc in
          walk acc la' lb'
  in
  walk [] (Snapshot.to_list sa) (Snapshot.to_list sb)

(* Replay one side's divergent window under a structured trace. [Ok None]
   when the restored cloud is sharded (traces are single-shard-only). *)
let replay_trace path ~until =
  let* cloud = load_cloud path in
  if Cloud.shard_count cloud > 1 then Ok None
  else begin
    let tr = Trace.create ~capacity:(1 lsl 18) () in
    Cloud.attach_trace cloud tr;
    Trace.enable tr;
    Cloud.run cloud ~until;
    Ok (Some (Trace.entries tr))
  end

let first_trace_mismatch ea eb =
  let rec walk i ea eb =
    match (ea, eb) with
    | [], [] -> None
    | a :: _, [] -> Some (i, Some a, None)
    | [], b :: _ -> Some (i, None, Some b)
    | a :: ea', b :: eb' ->
        if a = b then walk (i + 1) ea' eb' else Some (i, Some a, Some b)
  in
  walk 0 ea eb

(* The (vm, ingress_seq) lineage key an event belongs to, when it names
   one packet's delivery pipeline. *)
let chain_key (e : Trace.entry) =
  match e.Trace.event with
  | Event.Ingress_replicated { vm; ingress_seq; _ }
  | Event.Packet_proposed { vm; ingress_seq; _ }
  | Event.Median_adopted { vm; ingress_seq; _ } ->
      Some (vm, ingress_seq)
  | Event.Packet_delivered { vm; seq; _ } -> Some (vm, seq)
  | _ -> None

let chain_of entries entry =
  match Option.bind entry chain_key with
  | None -> None
  | Some (vm, seq) ->
      List.find_opt
        (fun (c : Lineage.chain) ->
          c.Lineage.vm = vm && c.Lineage.ingress_seq = seq)
        (Lineage.chains (Lineage.of_entries entries))

let timeline dir =
  let entries, _skipped = Store.list dir in
  if entries = [] then Error (Empty_timeline dir)
  else begin
    let tbl = Hashtbl.create (List.length entries) in
    List.iter (fun (e : Store.entry) -> Hashtbl.replace tbl e.index e) entries;
    Ok tbl
  end

let first_divergence ~a ~b =
  let* ta = timeline a in
  let* tb = timeline b in
  let common =
    Hashtbl.fold
      (fun index (ea : Store.entry) acc ->
        match Hashtbl.find_opt tb index with
        | Some eb -> (index, ea, eb) :: acc
        | None -> acc)
      ta []
    |> List.sort (fun (i, _, _) (j, _, _) -> compare i j)
  in
  let* common = if common = [] then Error No_common_index else Ok common in
  let grid =
    List.find_opt
      (fun (_, (ea : Store.entry), (eb : Store.entry)) ->
        ea.meta.Image.sim_ns <> eb.meta.Image.sim_ns)
      common
  in
  let* () =
    match grid with
    | Some (index, ea, eb) ->
        Error
          (Grid_mismatch
             {
               index;
               a_ns = ea.meta.Image.sim_ns;
               b_ns = eb.meta.Image.sim_ns;
             })
    | None -> Ok ()
  in
  let arr = Array.of_list common in
  let differs i =
    let _, (ea : Store.entry), (eb : Store.entry) = arr.(i) in
    ea.meta.Image.fingerprint <> eb.meta.Image.fingerprint
  in
  let n = Array.length arr in
  if not (differs (n - 1)) then Error (No_divergence { compared = n })
  else begin
    (* Persistent divergence makes [differs] monotone over the grid, so
       the first true position binary-searches. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if differs mid then hi := mid else lo := mid + 1
    done;
    let index, (ea : Store.entry), (eb : Store.entry) = arr.(!lo) in
    let last_common =
      if !lo = 0 then None
      else
        let i, _, _ = arr.(!lo - 1) in
        Some i
    in
    let* cloud_a = load_cloud ea.path in
    let* cloud_b = load_cloud eb.path in
    let metric_diff =
      diff_snapshots (observational cloud_a) (observational cloud_b)
    in
    (* Window replay is best-effort: a missing ancestor or a sharded side
       degrades to the metric diff, never to a failed bisection. *)
    let first_event, chain =
      match last_common with
      | None -> (None, None)
      | Some lc ->
          let until = ea.meta.Image.sim_ns in
          let replay dir =
            match replay_trace (Store.path dir ~index:lc) ~until with
            | Ok v -> v
            | Error _ -> None
          in
          ( match (replay a, replay b) with
          | Some entries_a, Some entries_b -> (
              match first_trace_mismatch entries_a entries_b with
              | None -> (None, None)
              | Some (pos, e_a, e_b) ->
                  let key_entry = if e_a <> None then e_a else e_b in
                  (Some (pos, e_a, e_b), chain_of entries_a key_entry))
          | _ -> (None, None) )
    in
    Ok
      {
        index;
        sim_ns = ea.meta.Image.sim_ns;
        last_common;
        metric_diff;
        first_event;
        chain;
      }
  end

let pp_side fmt = function
  | Some v -> Format.pp_print_string fmt v
  | None -> Format.pp_print_string fmt "(absent)"

let pp_entry_opt fmt = function
  | Some e -> Trace.pp_entry fmt e
  | None -> Format.pp_print_string fmt "(trace ended)"

let pp_divergence fmt d =
  Format.fprintf fmt "first divergent checkpoint: #%d at %Ldns" d.index
    d.sim_ns;
  (match d.last_common with
  | Some i -> Format.fprintf fmt " (last agreement: #%d)" i
  | None -> Format.fprintf fmt " (no prior agreement)");
  Format.pp_print_newline fmt ();
  let shown = List.filteri (fun i _ -> i < 20) d.metric_diff in
  List.iter
    (fun (name, va, vb) ->
      Format.fprintf fmt "  %s: A=%a B=%a@." name pp_side va pp_side vb)
    shown;
  let rest = List.length d.metric_diff - List.length shown in
  if rest > 0 then Format.fprintf fmt "  ... and %d more metrics@." rest;
  (match d.first_event with
  | None ->
      Format.fprintf fmt
        "  (window not replayed: no common ancestor or a sharded side)@."
  | Some (pos, ea, eb) ->
      Format.fprintf fmt "  first divergent event (position %d):@." pos;
      Format.fprintf fmt "    A: %a@." pp_entry_opt ea;
      Format.fprintf fmt "    B: %a@." pp_entry_opt eb);
  match d.chain with
  | None -> ()
  | Some c ->
      Format.fprintf fmt
        "  lineage of vm %d seq %d: %d proposals, %d adoptions, %d \
         deliveries@."
        c.Lineage.vm c.Lineage.ingress_seq
        (List.length c.Lineage.proposals)
        (List.length c.Lineage.adoptions)
        (List.length c.Lineage.deliveries)
