module Registry = Sw_obs.Registry
module Report = Sw_runner.Report

type series = { key : string; null : float array; alt : float array }

type finding = {
  f_key : string;
  n_null : int;
  n_alt : int;
  reports : Detector.report list;
  leaking : string list;
}

type t = { label : string; findings : finding list }

let run ?(detectors = Detector.all) ?registry ~label series =
  let bump path n =
    match registry with
    | None -> ()
    | Some reg -> Registry.Counter.add (Registry.counter reg path) n
  in
  bump "leak.detector.series" (List.length series);
  let findings =
    List.map
      (fun s ->
        let reports =
          List.map
            (fun (d : Detector.t) -> d.Detector.verdict ~null:s.null ~alt:s.alt)
            detectors
        in
        bump "leak.detector.verdicts" (List.length reports);
        List.iter
          (fun (r : Detector.report) ->
            if Detector.skipped r then
              bump "leak.detector.samples_dropped"
                (r.Detector.n_null + r.Detector.n_alt))
          reports;
        let leaking =
          List.filter_map
            (fun (r : Detector.report) ->
              if r.Detector.leak then Some r.Detector.detector else None)
            reports
        in
        {
          f_key = s.key;
          n_null = Array.length s.null;
          n_alt = Array.length s.alt;
          reports;
          leaking;
        })
      series
  in
  { label; findings }

let split_half ?detectors ?registry ~label series =
  let halves =
    List.filter_map
      (fun (key, xs) ->
        let n = Array.length xs in
        if n < 2 then None
        else begin
          let h = n / 2 in
          Some { key; null = Array.sub xs 0 h; alt = Array.sub xs h (n - h) }
        end)
      series
  in
  run ?detectors ?registry ~label halves

let attribution t =
  List.filter_map
    (fun f -> if f.leaking = [] then None else Some (f.f_key, f.leaking))
    t.findings

let leak t = List.exists (fun f -> f.leaking <> []) t.findings

let find t key =
  List.find_opt (fun f -> String.equal f.f_key key) t.findings

let report_of_verdict (r : Detector.report) =
  Report.Obj
    [
      ("name", Report.String r.Detector.detector);
      ("statistic", Report.Float r.Detector.statistic);
      ("p_value", Report.Float r.Detector.p_value);
      ("effect", Report.Float r.Detector.effect);
      ("leak", Report.Bool r.Detector.leak);
      ( "observations_needed",
        Report.List
          (List.map
             (fun (c, n) -> Report.List [ Report.Float c; Report.Float n ])
             r.Detector.observations_at) );
    ]

let report_of_finding f =
  Report.Obj
    [
      ("key", Report.String f.f_key);
      ("n_null", Report.Int f.n_null);
      ("n_alt", Report.Int f.n_alt);
      ("leak", Report.Bool (f.leaking <> []));
      ("leaking_detectors", Report.List (List.map (fun d -> Report.String d) f.leaking));
      ("detectors", Report.List (List.map report_of_verdict f.reports));
    ]

let to_report t =
  Report.Obj
    [
      ("label", Report.String t.label);
      ("leak", Report.Bool (leak t));
      ( "attribution",
        Report.List
          (List.map
             (fun (key, ds) ->
               Report.Obj
                 [
                   ("series", Report.String key);
                   ("detectors", Report.List (List.map (fun d -> Report.String d) ds));
                 ])
             (attribution t)) );
      ("series", Report.List (List.map report_of_finding t.findings));
    ]
