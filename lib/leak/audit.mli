(** The audit driver: sweep every {!Detector} over a set of named
    observation series and assemble a deterministic leakage report.

    An audit is generic over where the series came from: the CLI and the
    benches extract them from scenario runs (null = StopWatch on / victim
    absent, alt = StopWatch off / victim present — any two configs), the
    soak driver feeds split-half slices of a live run. Each series key
    conventionally carries its lineage attribution
    (["vm0/median-adoption"], ["attacker/inter-delivery"]), so a leaking
    series names the mechanism that failed to mask it. *)

type series = {
  key : string;
  null : float array;  (** Observations with the secret absent. *)
  alt : float array;  (** Observations with the secret present. *)
}

type finding = {
  f_key : string;
  n_null : int;
  n_alt : int;
  reports : Detector.report list;  (** One per detector, in battery order. *)
  leaking : string list;  (** Names of the detectors that flagged. *)
}

type t = { label : string; findings : finding list }

(** [run ~label series] sweeps [detectors] (default {!Detector.all}) over
    every series, in order. When [registry] is given, bumps the
    [leak.detector.series] / [leak.detector.verdicts] /
    [leak.detector.samples_dropped] counters. *)
val run :
  ?detectors:Detector.t list ->
  ?registry:Sw_obs.Registry.t ->
  label:string ->
  series list ->
  t

(** [split_half ~label series] audits each single series against itself —
    first half as null, second half as alt — the drift probe the soak
    driver samples at every checkpoint grid point. Series shorter than 2
    are dropped. *)
val split_half :
  ?detectors:Detector.t list ->
  ?registry:Sw_obs.Registry.t ->
  label:string ->
  (string * float array) list ->
  t

(** Series that leaked, with the detectors that flagged them. *)
val attribution : t -> (string * string list) list

(** True when any series leaked under any detector. *)
val leak : t -> bool

val find : t -> string -> finding option

(** The ["leakage"] JSON object: label, overall verdict, attribution
    list, and per-series detector reports (p-values, effect sizes,
    observations-needed curves). Byte-stable. *)
val to_report : t -> Sw_runner.Report.t
