(** One interface over every two-sample leak test.

    A detector compares a [null] series (timing observations with the
    secret absent — no co-resident victim, or the masked configuration)
    against an [alt] series (secret present) and reports whether an
    observer could tell them apart: the test statistic, its p-value, an
    effect size, a boolean leak call at the detector's recorded threshold,
    and the observations-needed curve over the paper's confidence grid.

    Five instances cover the repo's battery: Welch's t-test, Cohen's d,
    label mutual information (G-test), two-sample KS, and the chi-square
    distinguisher of Figs. 1(b)/4(b) — the last two being the historical
    [Sw_attack.Distinguisher] computations behind the shared API. *)

type report = {
  detector : string;
  statistic : float;
  p_value : float;  (** [nan] when the series was too short to test. *)
  effect : float;
      (** Detector-native effect size: Cohen's d, MI in bits, the KS
          distance, or the per-observation chi-square divergence. *)
  leak : bool;
  observations_at : (float * float) list;
      (** [(confidence, observations needed)] over {!confidence_grid}. *)
  n_null : int;
  n_alt : int;
}

type t = {
  name : string;
  min_samples : int;
      (** Smallest per-side sample the verdict will test; below it the
          report carries [nan] statistics and [leak = false]. *)
  verdict : null:float array -> alt:float array -> report;
  observations_needed :
    null:float array -> alt:float array -> confidence:float -> float;
      (** Expected observations before the detector distinguishes the two
          sources at [confidence]; [infinity] when it never would. *)
}

(** The paper's confidence grid (0.70 ... 0.95, 0.99), the x-axis of every
    observations-needed curve. *)
val confidence_grid : float list

(** Significance threshold the p-value detectors flag at (0.01). *)
val default_alpha : float

(** [skipped r] is true when the verdict declined to test (series shorter
    than [min_samples]); such reports never flag a leak. *)
val skipped : report -> bool

val welch : ?alpha:float -> unit -> t

(** Flags on effect size alone: |d| >= [threshold] (default 0.5, Cohen's
    "medium"). The p-value reported is Welch's. *)
val cohens_d : ?threshold:float -> unit -> t

val mutual_info : ?alpha:float -> ?bins:int -> unit -> t
val ks : ?alpha:float -> unit -> t

(** Two-sample chi-square homogeneity verdict; its observations-needed
    curve is byte-identical to the historical
    [Sw_attack.Distinguisher.empirical] computation. *)
val chi_square : ?alpha:float -> ?bins:int -> unit -> t

(** The full battery at default thresholds, in report order:
    welch, cohens_d, mutual_info, ks, chi_square. *)
val all : t list
