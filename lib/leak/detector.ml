module Chi_square = Sw_stats.Chi_square
module Ks = Sw_stats.Ks
module Mutual_info = Sw_stats.Mutual_info
module Special = Sw_stats.Special
module Ttest = Sw_stats.Ttest

type report = {
  detector : string;
  statistic : float;
  p_value : float;
  effect : float;
  leak : bool;
  observations_at : (float * float) list;
  n_null : int;
  n_alt : int;
}

type t = {
  name : string;
  min_samples : int;
  verdict : null:float array -> alt:float array -> report;
  observations_needed :
    null:float array -> alt:float array -> confidence:float -> float;
}

let confidence_grid = [ 0.70; 0.75; 0.80; 0.85; 0.90; 0.95; 0.99 ]
let default_alpha = 0.01
let skipped r = Float.is_nan r.p_value

(* A verdict on a series too short for the detector: no statistic, no leak
   call — the audit layer counts these as dropped samples. *)
let undersized name ~null ~alt =
  {
    detector = name;
    statistic = nan;
    p_value = nan;
    effect = nan;
    leak = false;
    observations_at = List.map (fun c -> (c, infinity)) confidence_grid;
    n_null = Array.length null;
    n_alt = Array.length alt;
  }

let curve obs ~null ~alt =
  List.map (fun c -> (c, obs ~null ~alt ~confidence:c)) confidence_grid

(* Samples per side for an observed standardised effect d to clear the
   two-sided normal critical value at [confidence]: n = 2 (z / d)^2. *)
let effect_observations d ~confidence =
  let d = Float.abs d in
  if (not (Float.is_finite d)) || d <= 0. then
    if Float.is_finite d then infinity else 1.
  else begin
    let z = Special.probit ((1. +. confidence) /. 2.) in
    Float.max 1. (2. *. ((z /. d) ** 2.))
  end

let welch_obs ~null ~alt ~confidence =
  if Array.length null < 2 || Array.length alt < 2 then infinity
  else effect_observations (Ttest.cohens_d null alt) ~confidence

let welch ?(alpha = default_alpha) () =
  let min_samples = 8 in
  {
    name = "welch";
    min_samples;
    verdict =
      (fun ~null ~alt ->
        if Array.length null < min_samples || Array.length alt < min_samples
        then undersized "welch" ~null ~alt
        else begin
          let r = Ttest.welch null alt in
          {
            detector = "welch";
            statistic = r.Ttest.t_stat;
            p_value = r.Ttest.p_value;
            effect = Ttest.cohens_d null alt;
            leak = r.Ttest.p_value < alpha;
            observations_at = curve welch_obs ~null ~alt;
            n_null = Array.length null;
            n_alt = Array.length alt;
          }
        end);
    observations_needed = welch_obs;
  }

let cohens_d ?(threshold = 0.5) () =
  let min_samples = 8 in
  {
    name = "cohens_d";
    min_samples;
    verdict =
      (fun ~null ~alt ->
        if Array.length null < min_samples || Array.length alt < min_samples
        then undersized "cohens_d" ~null ~alt
        else begin
          let d = Ttest.cohens_d null alt in
          let r = Ttest.welch null alt in
          {
            detector = "cohens_d";
            statistic = d;
            p_value = r.Ttest.p_value;
            effect = d;
            leak = Float.abs d >= threshold;
            observations_at = curve welch_obs ~null ~alt;
            n_null = Array.length null;
            n_alt = Array.length alt;
          }
        end);
    observations_needed = welch_obs;
  }

let mi_obs ?(bins = Mutual_info.default_bins) () ~null ~alt ~confidence =
  if Array.length null = 0 || Array.length alt = 0 then infinity
  else begin
    let r = Mutual_info.against_labels ~bins ~null ~alt () in
    if r.Mutual_info.plugin_nats <= 0. then infinity
    else begin
      (* G = 2 n * MI (nats) ~ chi-square: observations until the G
         statistic at the observed per-sample information crosses the
         critical value. *)
      let crit =
        Chi_square.critical_value ~df:r.Mutual_info.df ~confidence
      in
      Float.max 1. (crit /. (2. *. r.Mutual_info.plugin_nats))
    end
  end

let mutual_info ?(alpha = default_alpha) ?(bins = Mutual_info.default_bins) () =
  let min_samples = 8 in
  let obs = mi_obs ~bins () in
  {
    name = "mutual_info";
    min_samples;
    verdict =
      (fun ~null ~alt ->
        if Array.length null < min_samples || Array.length alt < min_samples
        then undersized "mutual_info" ~null ~alt
        else begin
          let r = Mutual_info.against_labels ~bins ~null ~alt () in
          {
            detector = "mutual_info";
            statistic = r.Mutual_info.g_stat;
            p_value = r.Mutual_info.p_value;
            effect = r.Mutual_info.mi_bits;
            leak = r.Mutual_info.p_value < alpha;
            observations_at = curve obs ~null ~alt;
            n_null = Array.length null;
            n_alt = Array.length alt;
          }
        end);
    observations_needed = obs;
  }

let ks_obs ~null ~alt ~confidence =
  if Array.length null = 0 || Array.length alt = 0 then
    invalid_arg "Detector.ks: empty sample";
  let d = Ks.two_sample null alt in
  if d <= 0. then infinity
  else begin
    (* One-sample critical value c(alpha) = sqrt(-ln(alpha/2) / 2); reject
       when D_n > c / sqrt(n), so n = (c / D)^2. *)
    let alpha = 1. -. confidence in
    let c = Float.sqrt (-.Float.log (alpha /. 2.) /. 2.) in
    Float.max 1. ((c /. d) ** 2.)
  end

let ks ?(alpha = default_alpha) () =
  let min_samples = 8 in
  {
    name = "ks";
    min_samples;
    verdict =
      (fun ~null ~alt ->
        if Array.length null < min_samples || Array.length alt < min_samples
        then undersized "ks" ~null ~alt
        else begin
          let d = Ks.two_sample null alt in
          let p = Ks.p_value null alt in
          {
            detector = "ks";
            statistic = d;
            p_value = p;
            effect = d;
            leak = p < alpha;
            observations_at = curve ks_obs ~null ~alt;
            n_null = Array.length null;
            n_alt = Array.length alt;
          }
        end);
    observations_needed = ks_obs;
  }

(* The distinguisher's historical computation, verbatim: edges from the
   null sample's quantiles, empirical frequencies on both sides, then the
   noncentrality-based count. *)
let chi_obs ?(bins = 10) () ~null ~alt ~confidence =
  if Array.length null = 0 || Array.length alt = 0 then
    invalid_arg "Detector.chi_square: empty sample";
  let edges = Chi_square.empirical_edges null ~bins in
  let to_probs counts total =
    Array.map (fun c -> c /. float_of_int total) counts
  in
  let null_probs =
    to_probs (Chi_square.bin_counts ~edges null) (Array.length null)
  in
  let alt_probs =
    to_probs (Chi_square.bin_counts ~edges alt) (Array.length alt)
  in
  Chi_square.observations_needed ~null_probs ~alt_probs ~confidence

let chi_square ?(alpha = default_alpha) ?(bins = 10) () =
  let min_samples = 8 in
  let obs = chi_obs ~bins () in
  {
    name = "chi_square";
    min_samples;
    verdict =
      (fun ~null ~alt ->
        if Array.length null < min_samples || Array.length alt < min_samples
        then undersized "chi_square" ~null ~alt
        else begin
          (* Two-sample homogeneity over pooled quantile bins. *)
          let pooled = Array.append null alt in
          let edges = Chi_square.empirical_edges pooled ~bins in
          let o_null = Chi_square.bin_counts ~edges null
          and o_alt = Chi_square.bin_counts ~edges alt in
          let n1 = float_of_int (Array.length null)
          and n2 = float_of_int (Array.length alt) in
          let n = n1 +. n2 in
          let cols = Array.length o_null in
          let col_tot = Array.init cols (fun j -> o_null.(j) +. o_alt.(j)) in
          let expect frac = Array.map (fun c -> c *. frac) col_tot in
          let stat =
            Chi_square.statistic ~expected:(expect (n1 /. n)) ~observed:o_null
            +. Chi_square.statistic ~expected:(expect (n2 /. n))
                 ~observed:o_alt
          in
          let occupied =
            Array.fold_left (fun a c -> if c > 0. then a + 1 else a) 0 col_tot
          in
          let df = max 1 (occupied - 1) in
          let p = 1. -. Chi_square.cdf ~df stat in
          {
            detector = "chi_square";
            statistic = stat;
            p_value = p;
            effect = stat /. n;
            leak = p < alpha;
            observations_at = curve obs ~null ~alt;
            n_null = Array.length null;
            n_alt = Array.length alt;
          }
        end);
    observations_needed = obs;
  }

let all =
  [ welch (); cohens_d (); mutual_info (); ks (); chi_square () ]
