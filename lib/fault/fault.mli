(** Fault primitives — the disturbances a {!Schedule} composes.

    Each primitive maps onto a small hook in the layer that produces the
    behaviour: link disturbances onto {!Sw_net.Network.set_fault_all} /
    [set_fault_to], partitions onto {!Sw_net.Multicast.set_partitioned},
    machine disturbances onto {!Sw_vmm.Machine.stall} / [set_slowdown] /
    [pause_dom0], and crashes onto {!Sw_vmm.Vmm.crash} / [reintegrate]. *)

type t =
  | Link_loss of { target : Sw_net.Address.t option; p : float }
      (** Extra independent drop probability on deliveries — fabric-wide
          ([None]) or only for deliveries targeting one address. *)
  | Link_latency of { target : Sw_net.Address.t option; extra : Sw_sim.Time.t }
      (** Extra propagation delay (latency spike), same targeting. *)
  | Mcast_partition of { vm : int; replica : int }
      (** Cut the replica's PGM endpoint off its group both ways; NAK
          recovery repairs the backlog when the window closes. *)
  | Machine_stall of { machine : int }
      (** Freeze the machine (guest slices, Dom0, NIC, DMA) for the
          window. *)
  | Machine_slowdown of { machine : int; factor : float }
      (** Stretch the machine's guest slices by [factor >= 1] for the
          window; overlapping windows multiply. *)
  | Dom0_pause of { machine : int }
      (** Pause only the machine's Dom0 device-model thread for the
          window. *)
  | Replica_crash of {
      vm : int;
      replica : int;
      restart_after : Sw_sim.Time.t option;
    }
      (** Kill the replica process at the window start; with
          [restart_after], restart and reintegrate it that long after the
          crash (requires [Config.replay_log]). The window span is
          irrelevant. *)

(** Drops on the client → ingress path ([Link_loss] targeting
    {!Sw_net.Address.Ingress}). *)
val ingress_drop : p:float -> t

(** Drops on the replica → egress tunnels ([Link_loss] targeting
    {!Sw_net.Address.Egress}). *)
val egress_drop : p:float -> t

(** Short kind tag for events and reports (e.g. ["link-loss"]). *)
val label : t -> string

(** Rendered target description (e.g. ["net:egress"], ["vm0/r2"],
    ["machine:3"]). *)
val target_string : t -> string

(** Raises [Invalid_argument] on out-of-range parameters. *)
val validate : t -> unit
