module Time = Sw_sim.Time
module Engine = Sw_sim.Engine
module Event = Sw_obs.Event
module Network = Sw_net.Network
module Registry = Sw_obs.Registry

type env = {
  engine : Engine.t;
  network : Network.t;
  machine_of : int -> Sw_vmm.Machine.t option;
  instance_of : vm:int -> replica:int -> Sw_vmm.Vmm.instance option;
  restart : vm:int -> replica:int -> unit;
}

(* Overlap-safe composition state. Each open window contributes one element;
   closing removes that exact element (physical equality) and reapplies the
   combination of whatever is still active, so windows nest and interleave
   freely. *)
type t = {
  env : env;
  mutable trace : Sw_obs.Trace.t option;
  link_faults : (Sw_net.Address.t option, Network.disturbance list ref) Hashtbl.t;
  slowdowns : (int, float list ref) Hashtbl.t;
  partitions : (int * int, int ref) Hashtbl.t;
  m_injected : Registry.Counter.t;
  m_skipped : Registry.Counter.t;
}

let trace_on t = Sw_obs.Trace.active t.trace

let emit t event =
  match t.trace with
  | None -> ()
  | Some tr -> Sw_obs.Trace.emit tr ~at_ns:(Engine.now t.env.engine) event

let emit_injected t fault ~span =
  Registry.Counter.incr t.m_injected;
  if trace_on t then
    emit t
      (Event.Fault_injected
         {
           fault = Fault.label fault;
           target = Fault.target_string fault;
           span_ns = span;
         })

let emit_cleared t fault =
  if trace_on t then
    emit t
      (Event.Fault_cleared
         { fault = Fault.label fault; target = Fault.target_string fault })

let skip t = Registry.Counter.incr t.m_skipped

(* --- Link disturbances ------------------------------------------------- *)

let active_list tbl key =
  match Hashtbl.find_opt tbl key with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.add tbl key l;
      l

let apply_link t key =
  let combined =
    match !(active_list t.link_faults key) with
    | [] -> None
    | d :: rest -> Some (List.fold_left Network.combine_disturbance d rest)
  in
  match key with
  | None -> Network.set_fault_all t.env.network combined
  | Some addr -> Network.set_fault_to t.env.network addr combined

let open_link t key dist ~span fault =
  let l = active_list t.link_faults key in
  l := dist :: !l;
  apply_link t key;
  emit_injected t fault ~span;
  ignore
    (Engine.schedule_after ~kind:"fault.close" t.env.engine span (fun () ->
         l := List.filter (fun d -> d != dist) !l;
         apply_link t key;
         emit_cleared t fault))

(* --- Machine disturbances ---------------------------------------------- *)

let apply_slowdown t mach machine_id =
  let factors = !(active_list t.slowdowns machine_id) in
  Sw_vmm.Machine.set_slowdown mach (List.fold_left ( *. ) 1.0 factors)

(* --- Window dispatch --------------------------------------------------- *)

let open_window t (spec : Schedule.spec) =
  let span = spec.Schedule.span in
  match spec.Schedule.fault with
  | Fault.Link_loss { target; p } ->
      open_link t target
        { Network.extra_loss = p; extra_latency = Time.zero }
        ~span spec.Schedule.fault
  | Fault.Link_latency { target; extra } ->
      open_link t target
        { Network.extra_loss = 0.; extra_latency = extra }
        ~span spec.Schedule.fault
  | Fault.Mcast_partition { vm; replica } -> (
      match t.env.instance_of ~vm ~replica with
      | Some i -> (
          match Sw_vmm.Vmm.channel_endpoint i with
          | Some ep ->
              let count =
                match Hashtbl.find_opt t.partitions (vm, replica) with
                | Some c -> c
                | None ->
                    let c = ref 0 in
                    Hashtbl.add t.partitions (vm, replica) c;
                    c
              in
              incr count;
              Sw_net.Multicast.set_partitioned ep true;
              emit_injected t spec.Schedule.fault ~span;
              ignore
                (Engine.schedule_after ~kind:"fault.close" t.env.engine span
                   (fun () ->
                     decr count;
                     if !count = 0 then Sw_net.Multicast.set_partitioned ep false;
                     emit_cleared t spec.Schedule.fault))
          | None -> skip t)
      | None -> skip t)
  | Fault.Machine_stall { machine } -> (
      match t.env.machine_of machine with
      | Some mach ->
          let until = Time.add (Engine.now t.env.engine) span in
          Sw_vmm.Machine.stall mach ~until;
          emit_injected t spec.Schedule.fault ~span;
          ignore
            (Engine.schedule_after ~kind:"fault.close" t.env.engine span
               (fun () -> emit_cleared t spec.Schedule.fault))
      | None -> skip t)
  | Fault.Machine_slowdown { machine; factor } -> (
      match t.env.machine_of machine with
      | Some mach ->
          let l = active_list t.slowdowns machine in
          l := factor :: !l;
          apply_slowdown t mach machine;
          emit_injected t spec.Schedule.fault ~span;
          ignore
            (Engine.schedule_after ~kind:"fault.close" t.env.engine span
               (fun () ->
                 (l :=
                    match !l with
                    | [] -> []
                    | _ :: _ as fs ->
                        (* Remove one occurrence of this window's factor. *)
                        let removed = ref false in
                        List.filter
                          (fun f ->
                            if (not !removed) && f = factor then begin
                              removed := true;
                              false
                            end
                            else true)
                          fs);
                 apply_slowdown t mach machine;
                 emit_cleared t spec.Schedule.fault))
      | None -> skip t)
  | Fault.Dom0_pause { machine } -> (
      match t.env.machine_of machine with
      | Some mach ->
          let until = Time.add (Engine.now t.env.engine) span in
          Sw_vmm.Machine.pause_dom0 mach ~until;
          emit_injected t spec.Schedule.fault ~span;
          ignore
            (Engine.schedule_after ~kind:"fault.close" t.env.engine span
               (fun () -> emit_cleared t spec.Schedule.fault))
      | None -> skip t)
  | Fault.Replica_crash { vm; replica; restart_after } -> (
      match t.env.instance_of ~vm ~replica with
      | Some i ->
          Sw_vmm.Vmm.crash i;
          emit_injected t spec.Schedule.fault ~span:0L;
          Option.iter
            (fun delay ->
              ignore
                (Engine.schedule_after ~kind:"fault.restart" t.env.engine delay
                   (fun () -> t.env.restart ~vm ~replica)))
            restart_after
      | None -> skip t)

let install ?trace env schedule =
  Schedule.validate schedule;
  let metrics = Engine.metrics env.engine in
  let t =
    {
      env;
      trace;
      link_faults = Hashtbl.create 8;
      slowdowns = Hashtbl.create 4;
      partitions = Hashtbl.create 4;
      m_injected = Registry.counter metrics "fault.injected";
      m_skipped = Registry.counter metrics "fault.skipped";
    }
  in
  List.iter
    (fun (spec : Schedule.spec) ->
      ignore
        (Engine.schedule_at ~kind:"fault.open" env.engine spec.Schedule.at
           (fun () -> open_window t spec)))
    (Schedule.sorted schedule);
  t

let set_trace t tr = t.trace <- Some tr
let injected t = Registry.Counter.value t.m_injected
let skipped t = Registry.Counter.value t.m_skipped
