(** Installs a {!Schedule} against a running deployment.

    The injector is a pure consumer of the engine clock: every window open,
    close, and restart is an ordinary engine event, so fault trajectories
    replay deterministically and compose with the rest of the simulation.
    Overlapping windows on the same target are safe — link disturbances
    combine (independent losses, additive latency), slowdown factors
    multiply, partitions refcount — and each close restores exactly its own
    contribution. *)

type env = {
  engine : Sw_sim.Engine.t;
  network : Sw_net.Network.t;
  machine_of : int -> Sw_vmm.Machine.t option;
      (** Resolve a machine id; [None] counts the window as skipped. *)
  instance_of : vm:int -> replica:int -> Sw_vmm.Vmm.instance option;
      (** Resolve a replica instance; [None] counts the window as skipped. *)
  restart : vm:int -> replica:int -> unit;
      (** Called (as an engine event) [restart_after] after a
          [Replica_crash]; expected to rebuild and reintegrate the
          replica. *)
}

type t

(** [install ?trace env schedule] validates [schedule] and arms every window
    as an engine event. Registers [fault.injected] / [fault.skipped]
    counters on the engine's registry and, when tracing, emits
    [Fault_injected] / [Fault_cleared] events. *)
val install : ?trace:Sw_obs.Trace.t -> env -> Schedule.t -> t

val set_trace : t -> Sw_obs.Trace.t -> unit

(** Windows whose open actually took effect. *)
val injected : t -> int

(** Windows whose target could not be resolved (unknown machine/replica, or
    a partition on a unicast deployment). *)
val skipped : t -> int
