module Time = Sw_sim.Time
module Prng = Sw_sim.Prng

type spec = { at : Time.t; span : Time.t; fault : Fault.t }

type t = spec list

let empty = []

let at ?(span = Time.zero) time fault = { at = time; span; fault }

(* Stable order: (at, label, target) — insertion order breaks remaining
   ties, so equal schedules install identically however they were built. *)
let compare_spec a b =
  match Time.compare a.at b.at with
  | 0 -> (
      match String.compare (Fault.label a.fault) (Fault.label b.fault) with
      | 0 ->
          String.compare
            (Fault.target_string a.fault)
            (Fault.target_string b.fault)
      | c -> c)
  | c -> c

let sorted t = List.stable_sort compare_spec t

let validate t =
  List.iter
    (fun s ->
      if Time.compare s.at Time.zero < 0 then
        invalid_arg "Schedule: negative start";
      if Time.compare s.span Time.zero < 0 then
        invalid_arg "Schedule: negative span";
      Fault.validate s.fault)
    t

(* Seed-derived fault windows: an exponential(mean_gap) renewal process over
   [0, until), each arrival opening a window of exponential(mean_span)
   length whose fault is drawn by [make] from the same generator. The whole
   schedule is computed up front from the seed — the run itself draws
   nothing, so (seed, schedule) fully determine the trajectory. *)
let windows ~seed ~until ~mean_gap ~mean_span ~make =
  if Time.(mean_gap <= Time.zero) then
    invalid_arg "Schedule.windows: mean_gap must be positive";
  if Time.(mean_span <= Time.zero) then
    invalid_arg "Schedule.windows: mean_span must be positive";
  let rng = Prng.create seed in
  let draw_ns mean =
    Int64.of_float (Prng.exponential rng ~rate:(1. /. Int64.to_float mean))
  in
  let rec loop acc now =
    let start = Time.add now (draw_ns mean_gap) in
    if Time.(start >= until) then List.rev acc
    else
      let span = Time.max (Time.ns 1) (draw_ns mean_span) in
      loop ({ at = start; span; fault = make rng } :: acc) start
  in
  let t = loop [] Time.zero in
  validate t;
  t

let specs t = sorted t
