(** Deterministic fault schedules.

    A schedule is a plain list of timed fault windows, fully determined
    before the run starts: the injector draws nothing at run time, so a given
    [(seed, schedule)] pair yields a byte-identical trajectory — including
    under [-j N] parallelism, where each job derives its schedule from its
    own key alone. *)

type spec = {
  at : Sw_sim.Time.t;  (** Window start (simulated instant). *)
  span : Sw_sim.Time.t;  (** Window length; ignored by [Replica_crash]. *)
  fault : Fault.t;
}

type t = spec list

val empty : t

(** [at ?span time fault] builds one window ([span] defaults to zero —
    meaningful for [Replica_crash], whose span is irrelevant). *)
val at : ?span:Sw_sim.Time.t -> Sw_sim.Time.t -> Fault.t -> spec

(** Stable sort by (start, kind label, target) — the order the injector
    installs windows in. *)
val sorted : t -> t

(** [specs t] = [sorted t]. *)
val specs : t -> t

(** Raises [Invalid_argument] on negative instants/spans or invalid fault
    parameters. *)
val validate : t -> unit

(** [windows ~seed ~until ~mean_gap ~mean_span ~make] derives a schedule
    from [seed]: window starts follow an exponential([mean_gap]) renewal
    process on [[0, until)), window lengths are exponential([mean_span]),
    and each window's fault is drawn by [make] from the same generator.
    Pure — equal arguments give equal schedules. *)
val windows :
  seed:int64 ->
  until:Sw_sim.Time.t ->
  mean_gap:Sw_sim.Time.t ->
  mean_span:Sw_sim.Time.t ->
  make:(Sw_sim.Prng.t -> Fault.t) ->
  t
