module Time = Sw_sim.Time

type t =
  | Link_loss of { target : Sw_net.Address.t option; p : float }
  | Link_latency of { target : Sw_net.Address.t option; extra : Time.t }
  | Mcast_partition of { vm : int; replica : int }
  | Machine_stall of { machine : int }
  | Machine_slowdown of { machine : int; factor : float }
  | Dom0_pause of { machine : int }
  | Replica_crash of { vm : int; replica : int; restart_after : Time.t option }

let ingress_drop ~p = Link_loss { target = Some Sw_net.Address.Ingress; p }
let egress_drop ~p = Link_loss { target = Some Sw_net.Address.Egress; p }

let label = function
  | Link_loss _ -> "link-loss"
  | Link_latency _ -> "link-latency"
  | Mcast_partition _ -> "mcast-partition"
  | Machine_stall _ -> "machine-stall"
  | Machine_slowdown _ -> "machine-slowdown"
  | Dom0_pause _ -> "dom0-pause"
  | Replica_crash _ -> "replica-crash"

let target_string = function
  | Link_loss { target = None; _ } | Link_latency { target = None; _ } -> "net"
  | Link_loss { target = Some a; _ } | Link_latency { target = Some a; _ } ->
      "net:" ^ Sw_net.Address.to_string a
  | Mcast_partition { vm; replica } | Replica_crash { vm; replica; _ } ->
      Printf.sprintf "vm%d/r%d" vm replica
  | Machine_stall { machine }
  | Machine_slowdown { machine; _ }
  | Dom0_pause { machine } ->
      Printf.sprintf "machine:%d" machine

let validate = function
  | Link_loss { p; _ } ->
      if p < 0. || p > 1. then invalid_arg "Fault: loss probability not in [0, 1]"
  | Link_latency { extra; _ } ->
      if Time.(extra < Time.zero) then invalid_arg "Fault: negative extra latency"
  | Machine_slowdown { factor; _ } ->
      if factor < 1. then invalid_arg "Fault: slowdown factor must be >= 1"
  | Replica_crash { restart_after = Some d; _ } ->
      if Time.(d <= Time.zero) then
        invalid_arg "Fault: restart_after must be positive"
  | Mcast_partition _ | Machine_stall _ | Dom0_pause _
  | Replica_crash { restart_after = None; _ } ->
      ()
