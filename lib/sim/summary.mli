(** Online summary statistics (Welford's algorithm). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

(** Sample variance (unbiased, n-1 denominator); [0.] for fewer than two
    observations. *)
val variance : t -> float

val stddev : t -> float

(** Raises [Invalid_argument] when empty. *)
val min : t -> float

(** Raises [Invalid_argument] when empty. *)
val max : t -> float

val total : t -> float
val merge : t -> t -> t
val pp : Format.formatter -> t -> unit
