type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted_cache : float array option;
}

let create () = { data = [||]; size = 0; sorted_cache = None }

let add t x =
  let capacity = Array.length t.data in
  if t.size >= capacity then begin
    let data' = Array.make (Stdlib.max 16 (2 * capacity)) 0. in
    Array.blit t.data 0 data' 0 t.size;
    t.data <- data'
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted_cache <- None

let count t = t.size

let mean t =
  if t.size = 0 then 0.
  else begin
    let sum = ref 0. in
    for i = 0 to t.size - 1 do
      sum := !sum +. t.data.(i)
    done;
    !sum /. float_of_int t.size
  end

let stddev t =
  if t.size < 2 then 0.
  else begin
    let m = mean t in
    let sum = ref 0. in
    for i = 0 to t.size - 1 do
      let d = t.data.(i) -. m in
      sum := !sum +. (d *. d)
    done;
    Float.sqrt (!sum /. float_of_int (t.size - 1))
  end

let sorted t =
  match t.sorted_cache with
  | Some a -> a
  | None ->
      let a = Array.sub t.data 0 t.size in
      Array.sort Float.compare a;
      t.sorted_cache <- Some a;
      a

let to_array t = Array.sub t.data 0 t.size

let percentile t p =
  if t.size = 0 then invalid_arg "Samples.percentile: empty";
  if p < 0. || p > 1. then invalid_arg "Samples.percentile: p out of range";
  let a = sorted t in
  let n = Array.length a in
  let pos = p *. float_of_int (n - 1) in
  let i = int_of_float (Float.floor pos) in
  if i >= n - 1 then a.(n - 1)
  else begin
    let frac = pos -. float_of_int i in
    a.(i) +. (frac *. (a.(i + 1) -. a.(i)))
  end

let median t = percentile t 0.5

let histogram t ~bins ~lo ~hi =
  if bins <= 0 then invalid_arg "Samples.histogram: bins must be positive";
  if hi <= lo then invalid_arg "Samples.histogram: empty range";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  for i = 0 to t.size - 1 do
    let b = int_of_float (Float.floor ((t.data.(i) -. lo) /. width)) in
    let b = Stdlib.max 0 (Stdlib.min (bins - 1) b) in
    counts.(b) <- counts.(b) + 1
  done;
  counts

let ecdf t x =
  if t.size = 0 then 0.
  else begin
    let a = sorted t in
    (* Binary search for the number of elements <= x. *)
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if a.(mid) <= x then search (mid + 1) hi else search lo mid
      end
    in
    float_of_int (search 0 (Array.length a)) /. float_of_int (Array.length a)
  end
