type event = { fn : unit -> unit; mutable cancelled : bool }

type event_id = event

type t = {
  mutable now : Time.t;
  heap : event Heap.t;
  mutable seq : int;
  mutable live : int;
  mutable fired : int;
  root_rng : Prng.t;
}

let create ?(seed = 0x5397_BA1DL) () =
  {
    now = Time.zero;
    heap = Heap.create ();
    seq = 0;
    live = 0;
    fired = 0;
    root_rng = Prng.create seed;
  }

let now t = t.now
let rng t = Prng.split t.root_rng

let schedule_at t at fn =
  if Time.(at < t.now) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp at
         Time.pp t.now);
  let ev = { fn; cancelled = false } in
  Heap.push t.heap ~key:at ~seq:t.seq ev;
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  ev

let schedule_after t delay fn =
  if Time.is_negative delay then
    invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t (Time.add t.now delay) fn

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let rec step t =
  match Heap.pop_min t.heap with
  | None -> false
  | Some (at, _, ev) ->
      if ev.cancelled then step t
      else begin
        t.now <- at;
        t.live <- t.live - 1;
        t.fired <- t.fired + 1;
        ev.fn ();
        true
      end

let rec run ?until t =
  match Heap.peek_min t.heap with
  | None ->
      (* The queue drained early; simulated time still passes. *)
      (match until with
      | Some limit when Time.(limit > t.now) -> t.now <- limit
      | _ -> ())
  | Some (at, _, ev) -> (
      if ev.cancelled then begin
        ignore (Heap.pop_min t.heap);
        run ?until t
      end
      else
        match until with
        | Some limit when Time.(at > limit) -> t.now <- limit
        | _ ->
            ignore (step t);
            run ?until t)

let pending t = t.live
let fired t = t.fired
