type event_id = Wheel.handle

type kind_hooks = {
  k_scheduled : Sw_obs.Registry.Counter.t;
  k_delay : Sw_obs.Registry.Histogram.t;
}

type t = {
  mutable now : Time.t;
  wheel : Wheel.t;
  mutable live : int;
  root_rng : Prng.t;
  metrics : Sw_obs.Registry.t;
  m_scheduled : Sw_obs.Registry.Counter.t;
  m_fired : Sw_obs.Registry.Counter.t;
  m_cancelled : Sw_obs.Registry.Counter.t;
  m_depth : Sw_obs.Registry.Gauge.t;
  kinds : (string, kind_hooks) Hashtbl.t;
  profile : Sw_obs.Profile.t;
  p_dispatch : Sw_obs.Profile.timer;
}

let create ?(seed = 0x5397_BA1DL) ?metrics ?profile () =
  let metrics =
    match metrics with Some m -> m | None -> Sw_obs.Registry.create ()
  in
  let profile =
    match profile with Some p -> p | None -> Sw_obs.Profile.create ()
  in
  {
    now = Time.zero;
    wheel = Wheel.create ();
    live = 0;
    root_rng = Prng.create seed;
    metrics;
    m_scheduled = Sw_obs.Registry.counter metrics "sim.events.scheduled";
    m_fired = Sw_obs.Registry.counter metrics "sim.events.fired";
    m_cancelled = Sw_obs.Registry.counter metrics "sim.events.cancelled";
    m_depth = Sw_obs.Registry.gauge metrics "sim.queue.depth";
    kinds = Hashtbl.create 16;
    profile;
    p_dispatch = Sw_obs.Profile.timer profile "engine.dispatch";
  }

let now t = t.now
let rng t = Prng.split t.root_rng
let metrics t = t.metrics
let profile t = t.profile

let kind_hooks t kind =
  match Hashtbl.find_opt t.kinds kind with
  | Some h -> h
  | None ->
      let h =
        {
          k_scheduled =
            Sw_obs.Registry.counter t.metrics
              (Printf.sprintf "sim.events.%s.scheduled" kind);
          k_delay =
            Sw_obs.Registry.histogram t.metrics
              (Printf.sprintf "sim.events.%s.delay_ns" kind);
        }
      in
      Hashtbl.add t.kinds kind h;
      h

let schedule_at ?kind t at fn =
  if Time.(at < t.now) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp at
         Time.pp t.now);
  let id = Wheel.add t.wheel ~key:at fn in
  t.live <- t.live + 1;
  (* One load and one branch when the registry is disabled: no counter
     bumps, no kind-hook lookup, no histogram observation. *)
  if Sw_obs.Registry.enabled t.metrics then begin
    Sw_obs.Registry.Counter.incr t.m_scheduled;
    Sw_obs.Registry.Gauge.observe_int t.m_depth t.live;
    match kind with
    | None -> ()
    | Some kind ->
        let h = kind_hooks t kind in
        Sw_obs.Registry.Counter.incr h.k_scheduled;
        Sw_obs.Registry.Histogram.observe h.k_delay (Time.sub at t.now)
  end;
  id

let schedule_after ?kind t delay fn =
  if Time.is_negative delay then
    invalid_arg "Engine.schedule_after: negative delay";
  schedule_at ?kind t (Time.add t.now delay) fn

let cancel t id =
  (* The wheel refuses stale handles (already fired, already cancelled, or
     recycled), so a late cancel cannot double-decrement [live]. *)
  if Wheel.cancel t.wheel id then begin
    t.live <- t.live - 1;
    if Sw_obs.Registry.enabled t.metrics then begin
      Sw_obs.Registry.Counter.incr t.m_cancelled;
      Sw_obs.Registry.Gauge.observe_int t.m_depth t.live
    end
  end

let step t =
  match Wheel.pop t.wheel with
  | None -> false
  | Some (at, fn) ->
      t.now <- at;
      t.live <- t.live - 1;
      if Sw_obs.Registry.enabled t.metrics then begin
        Sw_obs.Registry.Counter.incr t.m_fired;
        Sw_obs.Registry.Gauge.observe_int t.m_depth t.live
      end;
      Sw_obs.Profile.time t.profile t.p_dispatch fn;
      true

let run ?until t =
  match until with
  | None ->
      let rec go () = if step t then go () in
      go ()
  | Some limit ->
      let rec go () =
        if Wheel.next_at_or_before t.wheel limit then begin
          ignore (step t);
          go ()
        end
      in
      go ();
      (* Bounded runs always land exactly on the limit, including when the
         queue drained early: simulated time still passes. The clock never
         rewinds. Snapping the drained wheel's horizon to the parked clock
         keeps post-barrier scheduling on the O(1) wheel path. *)
      if Time.(limit > t.now) then t.now <- limit;
      Wheel.advance t.wheel t.now

let pending t = t.live
let fired t = Sw_obs.Registry.Counter.value t.m_fired
