type event = { fn : unit -> unit; mutable cancelled : bool }

type event_id = event

type kind_hooks = {
  k_scheduled : Sw_obs.Registry.Counter.t;
  k_delay : Sw_obs.Registry.Histogram.t;
}

type t = {
  mutable now : Time.t;
  heap : event Heap.t;
  mutable seq : int;
  mutable live : int;
  root_rng : Prng.t;
  metrics : Sw_obs.Registry.t;
  m_scheduled : Sw_obs.Registry.Counter.t;
  m_fired : Sw_obs.Registry.Counter.t;
  m_cancelled : Sw_obs.Registry.Counter.t;
  m_depth : Sw_obs.Registry.Gauge.t;
  kinds : (string, kind_hooks) Hashtbl.t;
}

let create ?(seed = 0x5397_BA1DL) ?metrics () =
  let metrics =
    match metrics with Some m -> m | None -> Sw_obs.Registry.create ()
  in
  {
    now = Time.zero;
    heap = Heap.create ();
    seq = 0;
    live = 0;
    root_rng = Prng.create seed;
    metrics;
    m_scheduled = Sw_obs.Registry.counter metrics "sim.events.scheduled";
    m_fired = Sw_obs.Registry.counter metrics "sim.events.fired";
    m_cancelled = Sw_obs.Registry.counter metrics "sim.events.cancelled";
    m_depth = Sw_obs.Registry.gauge metrics "sim.queue.depth";
    kinds = Hashtbl.create 16;
  }

let now t = t.now
let rng t = Prng.split t.root_rng
let metrics t = t.metrics

let kind_hooks t kind =
  match Hashtbl.find_opt t.kinds kind with
  | Some h -> h
  | None ->
      let h =
        {
          k_scheduled =
            Sw_obs.Registry.counter t.metrics
              (Printf.sprintf "sim.events.%s.scheduled" kind);
          k_delay =
            Sw_obs.Registry.histogram t.metrics
              (Printf.sprintf "sim.events.%s.delay_ns" kind);
        }
      in
      Hashtbl.add t.kinds kind h;
      h

let schedule_at ?kind t at fn =
  if Time.(at < t.now) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp at
         Time.pp t.now);
  let ev = { fn; cancelled = false } in
  Heap.push t.heap ~key:at ~seq:t.seq ev;
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  Sw_obs.Registry.Counter.incr t.m_scheduled;
  Sw_obs.Registry.Gauge.observe t.m_depth (float_of_int t.live);
  (match kind with
  | None -> ()
  | Some kind ->
      let h = kind_hooks t kind in
      Sw_obs.Registry.Counter.incr h.k_scheduled;
      Sw_obs.Registry.Histogram.observe h.k_delay (Time.sub at t.now));
  ev

let schedule_after ?kind t delay fn =
  if Time.is_negative delay then
    invalid_arg "Engine.schedule_after: negative delay";
  schedule_at ?kind t (Time.add t.now delay) fn

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1;
    Sw_obs.Registry.Counter.incr t.m_cancelled
  end

let rec step t =
  match Heap.pop_min t.heap with
  | None -> false
  | Some (at, _, ev) ->
      if ev.cancelled then step t
      else begin
        t.now <- at;
        t.live <- t.live - 1;
        Sw_obs.Registry.Counter.incr t.m_fired;
        ev.fn ();
        true
      end

let rec run ?until t =
  match Heap.peek_min t.heap with
  | None ->
      (* The queue drained early; simulated time still passes. *)
      (match until with
      | Some limit when Time.(limit > t.now) -> t.now <- limit
      | _ -> ())
  | Some (at, _, ev) -> (
      if ev.cancelled then begin
        ignore (Heap.pop_min t.heap);
        run ?until t
      end
      else
        match until with
        | Some limit when Time.(at > limit) -> t.now <- limit
        | _ ->
            ignore (step t);
            run ?until t)

let pending t = t.live
let fired t = Sw_obs.Registry.Counter.value t.m_fired
