(* Hierarchical timer wheel + overflow heap over a pool of reusable event
   records. See wheel.mli for the tier layout and the ordering argument.

   Keys are int64 nanoseconds at the interface but native ints inside:
   simulated time is non-negative and bounded by 2^62 ns (~146 years), so
   every key fits an OCaml immediate, and the hot paths run on unboxed
   int compares and shifts instead of allocating Int64 temporaries
   (this build has no flambda to unbox them).

   Invariants, maintained by every operation:

   - [horizon] is a multiple of the level-0 granule. Every pending or
     tombstoned record with [key < horizon] sits in the ready heap; the
     wheel slots and the overflow heap only hold records with
     [key >= horizon].
   - An event files at the finest level [l] whose cursor tick it is within
     [slots] ticks of, so at every level the live ticks span at most one
     rotation: the absolute tick of an occupied slot is recoverable from the
     cursor and the slot index alone.
   - [horizon] never passes the start of a non-empty slot or an overflow
     key without first moving its events into finer levels or the ready
     heap. Slot starts at every level are multiples of the level-0 granule,
     so draining one level-0 slot and advancing [horizon] to its end cannot
     step over a coarser slot's start.

   The ready heap compares [(key, seq)] directly on the pooled records, so
   no ordering responsibility rests on slot chain order — chains are
   prepend-only and cascades may reverse them freely. *)

type ev = {
  mutable key : int;
  mutable seq : int;
  mutable gen : int;
  mutable state : int;
  mutable fn : unit -> unit;
  mutable next : int;  (* slot chain / free list link; -1 terminates *)
}

type handle = int

(* States. [s_free] records are on the free list; [s_cancelled] are lazy
   tombstones awaiting collection. *)
let s_free = 0

let s_pending = 1
let s_cancelled = 2
let dummy_fn () = ()

let slot_bits = 5
let slots = 1 lsl slot_bits
let slot_mask = slots - 1
let g0_bits = 9 (* level-0 granule: 512 ns *)
let levels = 6 (* top level span: 2^(9 + 5*6) ns ~ 550 s *)
let shift l = g0_bits + (slot_bits * l)

type t = {
  mutable slab : ev array;
  mutable slab_len : int;
  mutable free_head : int;
  mutable seq : int;
  mutable stored : int;  (* pending + uncollected tombstones, all tiers *)
  mutable horizon : int;
  slot_head : int array;  (* levels * slots chain heads, -1 = empty *)
  occ : int array;  (* per-level occupancy bitmask over slot indices *)
  mutable ready : int array;  (* binary heap of slab indices *)
  mutable ready_len : int;
  overflow : int Heap.t;
}

let mk_ev () =
  { key = 0; seq = 0; gen = 0; state = s_free; fn = dummy_fn; next = -1 }

let create () =
  {
    slab = [||];
    slab_len = 0;
    free_head = -1;
    seq = 0;
    stored = 0;
    horizon = 0;
    slot_head = Array.make (levels * slots) (-1);
    occ = Array.make levels 0;
    ready = Array.make 64 (-1);
    ready_len = 0;
    overflow = Heap.create ();
  }

let length t = t.stored

(* --- Record pool ------------------------------------------------------- *)

(* Handles pack (generation, slab index); both the index width and the
   generation wrap fit comfortably in OCaml's 63-bit immediates. *)
let idx_bits = 31

let idx_mask = (1 lsl idx_bits) - 1
let gen_mask = (1 lsl 30) - 1
let handle_of i gen = (gen lsl idx_bits) lor i
let index_of h = h land idx_mask
let gen_of h = h lsr idx_bits

let grow t =
  let cap = Array.length t.slab in
  let cap' = Stdlib.max 64 (2 * cap) in
  (* Array.make shares one record across the fresh tail; give every new
     cell (past the first) its own. *)
  let slab' = Array.make cap' (mk_ev ()) in
  Array.blit t.slab 0 slab' 0 cap;
  for i = cap + 1 to cap' - 1 do
    slab'.(i) <- mk_ev ()
  done;
  t.slab <- slab'

let acquire t =
  if t.free_head >= 0 then begin
    let i = t.free_head in
    t.free_head <- t.slab.(i).next;
    i
  end
  else begin
    if t.slab_len >= Array.length t.slab then grow t;
    let i = t.slab_len in
    t.slab_len <- t.slab_len + 1;
    i
  end

(* Recycle a record: bump the generation so outstanding handles go stale,
   drop the closure so it can be collected, and chain onto the free list. *)
let release t i =
  let e = t.slab.(i) in
  e.state <- s_free;
  e.fn <- dummy_fn;
  e.gen <- (e.gen + 1) land gen_mask;
  e.next <- t.free_head;
  t.free_head <- i;
  t.stored <- t.stored - 1

(* --- Ready heap (slab indices ordered by (key, seq)) ------------------- *)

let[@inline] ev_lt slab i j =
  let a = slab.(i) and b = slab.(j) in
  if a.key <> b.key then a.key < b.key else a.seq < b.seq

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if ev_lt t.slab t.ready.(i) t.ready.(p) then begin
      let tmp = t.ready.(i) in
      t.ready.(i) <- t.ready.(p);
      t.ready.(p) <- tmp;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let s = ref i in
  if l < t.ready_len && ev_lt t.slab t.ready.(l) t.ready.(!s) then s := l;
  if r < t.ready_len && ev_lt t.slab t.ready.(r) t.ready.(!s) then s := r;
  if !s <> i then begin
    let tmp = t.ready.(i) in
    t.ready.(i) <- t.ready.(!s);
    t.ready.(!s) <- tmp;
    sift_down t !s
  end

let ready_push t i =
  if t.ready_len >= Array.length t.ready then begin
    let r' = Array.make (2 * t.ready_len) (-1) in
    Array.blit t.ready 0 r' 0 t.ready_len;
    t.ready <- r'
  end;
  t.ready.(t.ready_len) <- i;
  t.ready_len <- t.ready_len + 1;
  sift_up t (t.ready_len - 1)

let ready_pop t =
  let i = t.ready.(0) in
  t.ready_len <- t.ready_len - 1;
  t.ready.(0) <- t.ready.(t.ready_len);
  if t.ready_len > 0 then sift_down t 0;
  i

(* --- Wheel filing ------------------------------------------------------ *)

let slot_insert t l s i =
  let idx = (l lsl slot_bits) lor s in
  t.slab.(i).next <- t.slot_head.(idx);
  t.slot_head.(idx) <- i;
  t.occ.(l) <- t.occ.(l) lor (1 lsl s)

(* File a live record by its key: ready heap when the horizon already
   passed it, else the finest wheel level whose window reaches it, else the
   overflow heap. *)
let insert t i =
  let e = t.slab.(i) in
  let key = e.key in
  if key < t.horizon then ready_push t i
  else begin
    let rec go l =
      if l >= levels then
        Heap.push t.overflow ~key:(Int64.of_int key) ~seq:e.seq i
      else begin
        let sh = shift l in
        let kt = key lsr sh in
        if kt - (t.horizon lsr sh) < slots then
          slot_insert t l (kt land slot_mask) i
        else go (l + 1)
      end
    in
    go 0
  end

(* --- Cursor advance ---------------------------------------------------- *)

(* Trailing-zero count of a non-zero 32-bit mask (de Bruijn multiply). *)
let debruijn =
  [|
    0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13; 23;
    21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9;
  |]

let[@inline] ctz32 m = debruijn.(((m land -m) * 0x077CB531) lsr 27 land 31)

(* Rotate a 32-bit mask right so the cursor's slot lands at bit 0. *)
let[@inline] rotr32 m r = ((m lsr r) lor (m lsl (slots - r))) land 0xFFFFFFFF

(* Start time of the first occupied slot at level [l] — the occupied slot
   whose tick is nearest the cursor going forward; [max_int] when the level
   is empty. The one-rotation invariant makes the reconstruction exact, and
   the slot index is recoverable as [(start lsr shift l) land slot_mask]. *)
let level_candidate t l =
  let m = t.occ.(l) in
  if m = 0 then max_int
  else begin
    let sh = shift l in
    let cursor = t.horizon lsr sh in
    let c = cursor land slot_mask in
    let d = ctz32 (rotr32 m c) in
    (cursor + d) lsl sh
  end

let take_slot t l s =
  let idx = (l lsl slot_bits) lor s in
  let head = t.slot_head.(idx) in
  t.slot_head.(idx) <- -1;
  t.occ.(l) <- t.occ.(l) land lnot (1 lsl s);
  head

(* Move events into the ready heap until it is non-empty or nothing is left
   anywhere. Each round either drains the earliest level-0 slot (advancing
   the horizon past it and sweeping overflow keys the new horizon covers),
   cascades the earliest coarse slot into finer levels, or pulls the next
   overflow event in. Tombstones met along the way are collected. *)
let rec refill t =
  let best_start = ref max_int and best_level = ref (-1) in
  for l = 0 to levels - 1 do
    let start = level_candidate t l in
    (* <=: on equal starts the coarser level must cascade first, since its
       slot covers (a superset of) the finer slot's span. [max_int] can
       never win because a real start fits in 62 bits. *)
    if start <> max_int && start <= !best_start then begin
      best_start := start;
      best_level := l
    end
  done;
  let best_slot =
    if !best_level < 0 then 0
    else (!best_start lsr shift !best_level) land slot_mask
  in
  let ovf_first =
    match Heap.peek_min t.overflow with
    | Some (k, _, _) -> Int64.to_int k < !best_start
    | None -> false
  in
  if ovf_first then begin
    match Heap.pop_min t.overflow with
    | Some (k, _, i) ->
        let k = Int64.to_int k in
        let e = t.slab.(i) in
        if e.state = s_cancelled then begin
          release t i;
          if t.stored > 0 then refill t
        end
        else if k < t.horizon then ready_push t i
        else begin
          (* Jump the cursor to the event's own granule; re-filing then
             lands it at level 0 and the next round drains it. Safe because
             this key is strictly below every occupied slot's start. *)
          t.horizon <- (k lsr g0_bits) lsl g0_bits;
          insert t i;
          refill t
        end
    | None -> assert false
  end
  else if !best_level < 0 then ()
  else if !best_level = 0 then begin
    let rec drain i =
      if i >= 0 then begin
        let e = t.slab.(i) in
        let nx = e.next in
        e.next <- -1;
        if e.state = s_cancelled then release t i else ready_push t i;
        drain nx
      end
    in
    drain (take_slot t 0 best_slot);
    t.horizon <- !best_start + (1 lsl g0_bits);
    (* Overflow keys inside the drained granule belong to this round too. *)
    let rec sweep () =
      match Heap.peek_min t.overflow with
      | Some (k, _, i) when Int64.to_int k < t.horizon ->
          ignore (Heap.pop_min t.overflow);
          if t.slab.(i).state = s_cancelled then release t i
          else ready_push t i;
          sweep ()
      | _ -> ()
    in
    sweep ();
    if t.ready_len = 0 && t.stored > 0 then refill t
  end
  else begin
    (* Cascade: advance the cursor to the coarse slot's start and re-file
       its chain; every event lands at a finer level (or in ready). *)
    t.horizon <- !best_start;
    let rec redist i =
      if i >= 0 then begin
        let e = t.slab.(i) in
        let nx = e.next in
        e.next <- -1;
        if e.state = s_cancelled then release t i else insert t i;
        redist nx
      end
    in
    redist (take_slot t !best_level best_slot);
    if t.stored > 0 then refill t else ()
  end

(* Collect tombstones surfacing at the ready heap's root, then refill if
   the heap ran dry. Post-condition: the root is a live event, or the wheel
   is completely empty. *)
let rec ensure_ready t =
  if t.ready_len > 0 then begin
    let i = t.ready.(0) in
    if t.slab.(i).state = s_cancelled then begin
      ignore (ready_pop t);
      release t i;
      ensure_ready t
    end
  end
  else if t.stored > 0 then begin
    refill t;
    ensure_ready t
  end

(* --- Public API -------------------------------------------------------- *)

let add t ~key fn =
  let i = acquire t in
  let e = t.slab.(i) in
  e.key <- Int64.to_int key;
  e.seq <- t.seq;
  t.seq <- t.seq + 1;
  e.state <- s_pending;
  e.fn <- fn;
  e.next <- -1;
  t.stored <- t.stored + 1;
  insert t i;
  handle_of i e.gen

let cancel t h =
  let i = index_of h in
  if i < t.slab_len then begin
    let e = t.slab.(i) in
    if e.gen = gen_of h && e.state = s_pending then begin
      e.state <- s_cancelled;
      true
    end
    else false
  end
  else false

let advance t now =
  (* Only when fully drained: with events stored, jumping the cursor would
     have to cascade them first, and refill already does that lazily. An
     empty wheel's cursor, however, otherwise stays wherever the last pop
     left it — a run loop that parks the clock far ahead (a shard waiting
     at a barrier) would then file every new event relative to a stale
     horizon and, past the top level's span, spill it into the overflow
     heap. Snapping the horizon to the parked clock keeps barrier-window
     scheduling on the O(1) wheel path. *)
  if t.stored = 0 && t.ready_len = 0 then begin
    let k = Int64.to_int now in
    let h = (k lsr g0_bits) lsl g0_bits in
    if h > t.horizon then t.horizon <- h
  end

let peek_key t =
  ensure_ready t;
  if t.ready_len = 0 then None
  else Some (Int64.of_int t.slab.(t.ready.(0)).key)

let next_at_or_before t limit =
  ensure_ready t;
  t.ready_len > 0 && t.slab.(t.ready.(0)).key <= Int64.to_int limit

let pop t =
  ensure_ready t;
  if t.ready_len = 0 then None
  else begin
    let i = ready_pop t in
    let e = t.slab.(i) in
    let key = e.key and fn = e.fn in
    release t i;
    Some (Int64.of_int key, fn)
  end
