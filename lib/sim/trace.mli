(** Lightweight event tracing.

    A trace is a bounded log of timestamped, labelled messages. Components
    emit into it when tracing is enabled; experiments and tests read it back
    to check protocol behaviour (e.g. the Fig. 2 packet-delivery trace). *)

type t

type entry = { at : Time.t; label : string; message : string }

(** [create ~capacity ()] keeps at most [capacity] most-recent entries
    (default 65536). *)
val create : ?capacity:int -> unit -> t

(** Tracing is disabled by default; emitting to a disabled trace is a cheap
    no-op. *)
val enable : t -> unit

val disable : t -> unit
val enabled : t -> bool
val emit : t -> at:Time.t -> label:string -> string -> unit

(** Entries in emission order (oldest first). *)
val entries : t -> entry list

val clear : t -> unit
val length : t -> int
val pp_entry : Format.formatter -> entry -> unit
