(** Legacy string-message tracing — a thin shim over {!Sw_obs.Trace}.

    New code should emit typed {!Sw_obs.Event.t} values through
    {!Sw_obs.Trace} directly; this module survives so existing call sites and
    tests keep working. [t] {i is} an [Sw_obs.Trace.t], so the same sink can
    be handed to components speaking either API: typed events read back
    through this module are rendered to strings on access, and [emit] here
    stores an {!Sw_obs.Event.Message}.

    @deprecated Use {!Sw_obs.Trace} in new code. *)

type t = Sw_obs.Trace.t

type entry = { at : Time.t; label : string; message : string }

(** [create ~capacity ()] keeps at most [capacity] most-recent entries
    (default 65536); [metrics] forwards to {!Sw_obs.Trace.create}. *)
val create : ?capacity:int -> ?metrics:Sw_obs.Registry.t -> unit -> t

(** Tracing is disabled by default; emitting to a disabled trace is a cheap
    no-op. *)
val enable : t -> unit

val disable : t -> unit
val enabled : t -> bool
val emit : t -> at:Time.t -> label:string -> string -> unit

(** [iter t f] applies [f] to each entry in emission order (oldest first),
    rendering typed events to strings as it goes. *)
val iter : t -> (entry -> unit) -> unit

val fold : ('acc -> entry -> 'acc) -> 'acc -> t -> 'acc

(** Entries in emission order (oldest first); a thin wrapper over {!fold}. *)
val entries : t -> entry list

val clear : t -> unit
val length : t -> int
val pp_entry : Format.formatter -> entry -> unit
