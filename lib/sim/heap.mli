(** Binary min-heap keyed by [(int64, int)] pairs.

    The secondary [int] key gives deterministic FIFO ordering among entries
    that share the same primary key; the simulation engine uses it to make
    same-instant events fire in scheduling order. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push h ~key ~seq v] inserts [v] with primary key [key] and tiebreak
    [seq]. *)
val push : 'a t -> key:int64 -> seq:int -> 'a -> unit

(** [pop_min h] removes and returns the minimum entry, or [None] when the
    heap is empty. *)
val pop_min : 'a t -> (int64 * int * 'a) option

(** [peek_min h] returns the minimum entry without removing it. *)
val peek_min : 'a t -> (int64 * int * 'a) option
