let now_s = Unix.gettimeofday
let elapsed_s t0 = Float.max 0. (now_s () -. t0)

let time f =
  let t0 = now_s () in
  let v = f () in
  (v, elapsed_s t0)
