(** Grafting live extension constructors onto a restored heap graph.

    [Marshal] (even with [Marshal.Closures]) copies the slot block of every
    extension constructor — the [Object_tag] cell carrying the constructor's
    name and id — into the output. After [Marshal.from_string], values built
    from extensible-variant constructors (every [Sw_net.Packet.payload],
    for instance) therefore carry a {e copy} of their constructor slot, and
    pattern matching — which compares slots by physical identity — silently
    stops matching them: a restored in-flight [Egress_tunnel] packet falls
    into every handler's [_ -> drop] branch. This module is the antidote:

    - every module that declares [type Packet.payload += ...] registers its
      constructors here at initialisation time ({!register}), keyed by the
      compiler's fully-qualified constructor name;
    - {!repair} walks a freshly unmarshaled graph and re-points each copied
      slot at the registered live one, after which matching behaves exactly
      as if the value had never left the heap.

    A restored graph containing a slot whose name was never registered
    cannot be fixed — matching it would silently fail — so {!repair}
    reports such names and the caller must treat the restore as failed
    (see [Sw_ckpt.Image]).

    The walk is a whole-graph traversal (cycles and sharing handled via a
    physical-identity visited set); closures are scanned from their
    environment start so code pointers are never interpreted as values.
    Cost is linear in the size of the restored graph — the same graph that
    was just unmarshaled — measured at a few ms per 10^4 nodes. *)

(** [register ec] records a live extension constructor under its
    fully-qualified name (e.g. ["Sw_net__Packet.Egress_tunnel"]).
    Idempotent for the same slot; raises [Invalid_argument] if a
    {e different} slot is already registered under the name (cannot happen
    for compiler-generated names, which include the module path). *)
val register : Obj.Extension_constructor.t -> unit

(** Number of live constructors registered so far. *)
val registered : unit -> int

(** Result of a {!repair} walk. [patched] counts slot pointers re-pointed
    at live constructors; [visited] counts distinct heap blocks walked. *)
type stats = { patched : int; visited : int }

(** [repair root] walks the graph reachable from [root] (normally the
    value just returned by [Marshal.from_string]) and replaces every
    extension-constructor slot with its registered live counterpart.
    [Error names] lists (sorted, deduplicated) fully-qualified slot names
    present in the graph but absent from the registry — the graph was
    produced by a binary linking payload modules this one does not, and
    must not be trusted. The graph is still left fully walked (all
    {e known} slots repaired) when [Error] is returned. *)
val repair : Obj.t -> (stats, string list) result
