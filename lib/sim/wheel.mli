(** Hierarchical timer wheel with a heap overflow tier — the engine's
    scheduling core.

    The structure owns a pool of reusable event records and keeps them in
    three tiers:

    - a {b ready heap}: a small binary heap, ordered by [(key, seq)], holding
      every pending event whose key is below the drained horizon;
    - the {b wheel}: [levels] rings of [2^5] slots each, level [l] covering
      [2^(9 + 5l)] ns per slot, into which near-future events (the
      overwhelming majority: periodic timers, slice ticks, bounded-offset
      deliveries) are filed in O(1);
    - an {b overflow tier}: the existing binary {!Heap}, for the rare events
      beyond the top level's ~550 s span, cascaded back in as the horizon
      approaches them.

    Slots only stage events; everything is funnelled through the ready heap
    before it is handed out, so the firing order is the engine's historical
    contract — strictly nondecreasing [key] with FIFO [seq] tiebreak —
    regardless of which tier an event waited in or how it cascaded.

    Event records are recycled through a free list and addressed by integer
    {!handle}s carrying a generation stamp: scheduling allocates nothing on
    the steady-state path, and a handle whose record has since fired (and
    possibly been reused) is recognised as stale, making late {!cancel}s
    safe no-ops. *)

type t

(** A claim ticket for one scheduled event. Handles are plain immediates
    (no allocation) and become stale once the event fires or its
    cancellation is collected. *)
type handle

val create : unit -> t

(** [add t ~key fn] files [fn] under [key] (an absolute instant in ns,
    assumed [>= ] every key already popped) and returns a handle for
    {!cancel}. Sequence numbers are assigned in call order, so equal keys
    fire FIFO. *)
val add : t -> key:int64 -> (unit -> unit) -> handle

(** [cancel t h] tombstones the event if [h] is still current and pending;
    returns [false] — and changes nothing — when the event already fired,
    was already cancelled, or [h] is stale. Tombstoned records are
    reclaimed lazily as the tiers drain past them. *)
val cancel : t -> handle -> bool

(** [advance t now] snaps the drained horizon up to [now]'s granule when —
    and only when — the wheel holds no records at all; otherwise a no-op.
    The horizon never moves backwards. Run loops call this after parking
    the clock at a limit with nothing left to fire, so that events
    scheduled next (e.g. cross-shard injections after a barrier) are filed
    relative to the parked instant instead of a stale cursor — without
    this, a shard idling across many lookahead windows would eventually
    push every fresh event past the top level's ~550 s span and into the
    overflow heap. (time, seq) order is unaffected: the wheel is empty, so
    there is nothing to reorder against. *)
val advance : t -> int64 -> unit

(** Key of the earliest pending (uncancelled) event, if any. *)
val peek_key : t -> int64 option

(** [next_at_or_before t limit] is [true] when a pending event with
    [key <= limit] exists — an allocation-free [peek_key] for bounded run
    loops. *)
val next_at_or_before : t -> int64 -> bool

(** Pops the earliest pending event as [(key, fn)], recycling its record
    (the handle goes stale before [fn] is even called). *)
val pop : t -> (int64 * (unit -> unit)) option

(** Number of records currently held (pending plus uncollected tombstones);
    [0] means fully drained. *)
val length : t -> int
