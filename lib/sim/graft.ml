let slots : (string, Obj.t) Hashtbl.t = Hashtbl.create 64

let register (ec : Obj.Extension_constructor.t) =
  let name = Obj.Extension_constructor.name ec in
  match Hashtbl.find_opt slots name with
  | Some existing when existing == Obj.repr ec -> ()
  | Some _ -> invalid_arg ("Graft.register: duplicate slot name " ^ name)
  | None -> Hashtbl.add slots name (Obj.repr ec)

let registered () = Hashtbl.length slots

type stats = { patched : int; visited : int }

(* Closinfo word of a closure block (field 1), seen as an OCaml int:
   [arity : 8][start-of-environment : int_size - 8]. *)
let startenv_mask = (1 lsl (Sys.int_size - 8)) - 1
let word_bytes = Sys.word_size / 8

(* Physical-identity visited set, keyed by the block's ADDRESS.
   Hashing *contents* is hopeless here: a restored cloud checkpointed at
   t=0 is millions of physically distinct but bit-identical blocks —
   zeroed boxed Int64 timestamps, [ref 0] counters, fresh per-host
   records — and any content hash piles each such class into one bucket
   chain where [==] fails all the way down, turning the walk quadratic
   (restores that took seconds at 960 hosts ran for tens of minutes at
   10k). The address is the one thing that separates physical twins.

   Getting the address without ever materialising a mis-tagged value:
   box the block in a fresh [ref] and read the pointer word back with
   [Obj.raw_field], which returns it as a well-formed nativeint. (A bare
   [Obj.magic] to [int] leaves a low-bit-0 word posing as an immediate —
   that crashed under GC.) [Obj.raw_field] is an opaque C call, so the
   box cannot be optimised away.

   Address stability: {!repair} promotes the graph with [Gc.minor ()]
   first, and OCaml 5's major heap is non-moving (compaction only happens
   on an explicit [Gc.compact], which the walk never calls) — so keys are
   stable while the table is live.

   The hash must avalanche into the LOW bits: addresses are 8-aligned and
   sequentially allocated, and [Hashtbl] masks the hash with
   [num_buckets - 1], so an unmixed allocation run lands on an arithmetic
   progression of buckets (stride sharing a big power of two with the
   table size — measured chains of 700+ on a 250k-key table). Multiply by
   a large odd constant and fold the high half down. *)
module H = Hashtbl.Make (struct
  type t = nativeint

  let equal = Nativeint.equal

  let hash a =
    let h = Nativeint.to_int a * 0x2545F4914F6CDD1D in
    (h lxor (h lsr 32)) land max_int
end)

let address (v : Obj.t) = Obj.raw_field (Obj.repr (ref v)) 0

(* An extension-constructor slot: [Object_tag] block of exactly two fields,
   a name string and an id int. Real (camlinternalOO) objects carry a class
   block, not a string, in field 0, so they are never mistaken for slots. *)
let is_slot f =
  Obj.tag f = Obj.object_tag
  && Obj.size f = 2
  && (let n = Obj.field f 0 in
      Obj.is_block n && Obj.tag n = Obj.string_tag)
  && Obj.is_int (Obj.field f 1)

let repair root =
  (* Promote the freshly-unmarshaled graph out of the nursery so every
     block the walk keys on sits in the non-moving major heap. *)
  Gc.minor ();
  let visited = H.create 65536 in
  let stack = ref [ root ] in
  let patched = ref 0 in
  let unknown = ref [] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        if Obj.is_block v then begin
          (* An infix pointer aims into the middle of a closure block; the
             enclosing closure is the unit of visiting and scanning. *)
          let v =
            if Obj.tag v = Obj.infix_tag then
              Obj.add_offset v (Int32.of_int (-(Obj.size v * word_bytes)))
            else v
          in
          let a = address v in
          if not (H.mem visited a) then begin
            H.add visited a ();
            let tag = Obj.tag v in
            if tag < Obj.no_scan_tag then begin
              let size = Obj.size v in
              let start =
                if tag = Obj.closure_tag then
                  (Obj.obj (Obj.field v 1) : int) land startenv_mask
                else 0
              in
              for i = start to size - 1 do
                let f = Obj.field v i in
                if Obj.is_block f then
                  if is_slot f then begin
                    let name : string = Obj.obj (Obj.field f 0) in
                    match Hashtbl.find_opt slots name with
                    | Some live ->
                        if f != live then begin
                          Obj.set_field v i live;
                          incr patched
                        end
                    | None -> unknown := name :: !unknown
                  end
                  else if Obj.tag f < Obj.no_scan_tag then
                    (* No-scan leaves (strings, boxed scalars, float
                       arrays) have no fields to walk and cannot be
                       slots — keep them out of the visited set, where
                       they are the bulk of the graph. *)
                    stack := f :: !stack
              done
            end
          end
        end
  done;
  match List.sort_uniq String.compare !unknown with
  | [] -> Ok { patched = !patched; visited = H.length visited }
  | names -> Error names
