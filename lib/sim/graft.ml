let slots : (string, Obj.t) Hashtbl.t = Hashtbl.create 64

let register (ec : Obj.Extension_constructor.t) =
  let name = Obj.Extension_constructor.name ec in
  match Hashtbl.find_opt slots name with
  | Some existing when existing == Obj.repr ec -> ()
  | Some _ -> invalid_arg ("Graft.register: duplicate slot name " ^ name)
  | None -> Hashtbl.add slots name (Obj.repr ec)

let registered () = Hashtbl.length slots

type stats = { patched : int; visited : int }

(* Closinfo word of a closure block (field 1), seen as an OCaml int:
   [arity : 8][start-of-environment : int_size - 8]. *)
let startenv_mask = (1 lsl (Sys.int_size - 8)) - 1
let word_bytes = Sys.word_size / 8

(* Physical-identity visited set. Keys are live values, so the table stays
   correct across GC moves; the hash only reads data that is guaranteed to
   be a value (immediate fields, environment fields of closures) and never
   dereferences a potential code pointer. *)
module H = Hashtbl.Make (struct
  type t = Obj.t

  let equal = ( == )

  let hash o =
    let tag = Obj.tag o in
    if tag = Obj.string_tag then Hashtbl.hash (Obj.obj o : string)
    else if tag = Obj.double_tag then Hashtbl.hash (Obj.obj o : float)
    else begin
      let size = Obj.size o in
      let h = ref (tag lxor (size * 0x9e3779b1)) in
      if tag < Obj.no_scan_tag then begin
        let start =
          if tag = Obj.closure_tag then
            (Obj.obj (Obj.field o 1) : int) land startenv_mask
          else 0
        in
        let stop = min size (start + 4) in
        for i = start to stop - 1 do
          let f = Obj.field o i in
          if Obj.is_int f then h := (!h * 31) + (Obj.obj f : int)
          else begin
            (* One level into child blocks — enough to spread closures that
               share code but capture different records. Children of a
               non-closure parent are genuine values; only their first
               field is inspected, and only when it is an immediate. *)
            let t2 = Obj.tag f in
            let mix =
              if t2 < Obj.no_scan_tag && t2 <> Obj.closure_tag
                 && t2 <> Obj.infix_tag && Obj.size f > 0
              then
                let g = Obj.field f 0 in
                if Obj.is_int g then Obj.obj g else Obj.tag g
              else Obj.size f
            in
            h := (!h * 31) + (t2 * 131) + mix
          end
        done
      end;
      !h land max_int
    end
end)

(* An extension-constructor slot: [Object_tag] block of exactly two fields,
   a name string and an id int. Real (camlinternalOO) objects carry a class
   block, not a string, in field 0, so they are never mistaken for slots. *)
let is_slot f =
  Obj.tag f = Obj.object_tag
  && Obj.size f = 2
  && (let n = Obj.field f 0 in
      Obj.is_block n && Obj.tag n = Obj.string_tag)
  && Obj.is_int (Obj.field f 1)

let repair root =
  let visited = H.create 65536 in
  let stack = ref [ root ] in
  let patched = ref 0 in
  let unknown = ref [] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        if Obj.is_block v then begin
          (* An infix pointer aims into the middle of a closure block; the
             enclosing closure is the unit of visiting and scanning. *)
          let v =
            if Obj.tag v = Obj.infix_tag then
              Obj.add_offset v (Int32.of_int (-(Obj.size v * word_bytes)))
            else v
          in
          if not (H.mem visited v) then begin
            H.add visited v ();
            let tag = Obj.tag v in
            if tag < Obj.no_scan_tag then begin
              let size = Obj.size v in
              let start =
                if tag = Obj.closure_tag then
                  (Obj.obj (Obj.field v 1) : int) land startenv_mask
                else 0
              in
              for i = start to size - 1 do
                let f = Obj.field v i in
                if Obj.is_block f then
                  if is_slot f then begin
                    let name : string = Obj.obj (Obj.field f 0) in
                    match Hashtbl.find_opt slots name with
                    | Some live ->
                        if f != live then begin
                          Obj.set_field v i live;
                          incr patched
                        end
                    | None -> unknown := name :: !unknown
                  end
                  else stack := f :: !stack
              done
            end
          end
        end
  done;
  match List.sort_uniq String.compare !unknown with
  | [] -> Ok { patched = !patched; visited = H.length visited }
  | names -> Error names
