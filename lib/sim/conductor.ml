(* Conservative windowed coordination of per-shard engines. See the .mli
   for the protocol and the determinism argument.

   Synchronisation is one mutex + condvar phase barrier. The main domain
   publishes (epoch, window end) and workers run their shard and report
   back; outbox/inbox arrays are indexed so that each cell has exactly one
   writer per phase, and every cross-phase handoff is ordered by the
   barrier mutex, so there are no data races and — more importantly — no
   scheduling-dependent orders anywhere. *)

type msg = { at : Time.t; src : int; seq : int; fn : unit -> unit }

(* The exchange total order: (arrival, source shard, source sequence).
   Within one source, [seq] is post order; across sources the shard index
   breaks ties at identical nanosecond instants deterministically. *)
let compare_msg a b =
  let c = Time.compare a.at b.at in
  if c <> 0 then c
  else
    let c = compare a.src b.src in
    if c <> 0 then c else compare a.seq b.seq

(* Everything a [t] holds between [run] calls is plain marshalable data —
   engines, boxes, counters, times. The mutex/condvar barrier and its
   bookkeeping live in a [gang] built afresh for each parallel [run] call
   and torn down before it returns, so a quiescent conductor can be
   captured by [Marshal] (checkpointing marshals whole clouds, conductor
   included) without ever reaching an unmarshalable custom block. *)
type t = {
  engines : Engine.t array;
  lookahead : Time.t;
  parallel : bool;
  mutable now : Time.t;  (* start of the current window *)
  mutable window_end : Time.t;
  outbox : msg list array array;  (* outbox.(src).(dst), newest first *)
  post_seq : int array;  (* per-source post counter, source-domain-local *)
  inbox : msg list array;  (* per-destination, sorted, injected at window start *)
  mutable exchanged : int;
}

(* The per-[run] domain gang barrier. *)
type gang = {
  m : Mutex.t;
  cv : Condition.t;
  mutable epoch : int;  (* bumped to release workers into a window *)
  mutable quit : bool;
  mutable arrived : int;  (* workers done with the current window *)
  mutable failed : exn option;  (* first worker failure, re-raised by main *)
}

let create ?(parallel = true) ~lookahead engines =
  let n = Array.length engines in
  if n = 0 then invalid_arg "Conductor.create: no shards";
  if n > 1 && Time.(lookahead <= Time.zero) then
    invalid_arg "Conductor.create: lookahead must be positive";
  {
    engines;
    lookahead;
    parallel;
    now = Time.zero;
    window_end = Time.zero;
    outbox = Array.init n (fun _ -> Array.make n []);
    post_seq = Array.make n 0;
    inbox = Array.make n [];
    exchanged = 0;
  }

let shards t = Array.length t.engines
let exchanged t = t.exchanged

let post t ~src ~dst ~at fn =
  if Time.(at < t.window_end) then
    invalid_arg
      (Format.asprintf
         "Conductor.post: arrival %a is inside the current window (ends %a); \
          lookahead violated"
         Time.pp at Time.pp t.window_end);
  let seq = t.post_seq.(src) in
  t.post_seq.(src) <- seq + 1;
  t.outbox.(src).(dst) <- { at; src; seq; fn } :: t.outbox.(src).(dst)

(* Drive shard [i] through one window: inject the sorted inbox, then run
   the engine to the window end (parking exactly there). *)
let run_shard t i limit =
  let eng = t.engines.(i) in
  List.iter
    (fun m -> ignore (Engine.schedule_at ~kind:"xshard" eng m.at m.fn))
    t.inbox.(i);
  t.inbox.(i) <- [];
  Engine.run ~until:limit eng

(* Move every outbox into its destination inbox, sorted by the exchange
   order. Runs on the main domain while workers are parked at the barrier. *)
let exchange t =
  let n = Array.length t.engines in
  for d = 0 to n - 1 do
    let msgs = ref [] in
    for s = 0 to n - 1 do
      msgs := List.rev_append t.outbox.(s).(d) !msgs;
      t.outbox.(s).(d) <- []
    done;
    match !msgs with
    | [] -> ()
    | l ->
        t.exchanged <- t.exchanged + List.length l;
        t.inbox.(d) <- List.sort compare_msg l
  done

(* Worker for shard [i]: wait for an epoch bump, run the window (or quit),
   report arrival. All conductor fields read outside the mutex are written
   by the main domain before the epoch bump and stable until every worker
   has arrived, so the barrier's lock ordering covers them. The gang is
   fresh for this [run] call with [epoch = 0], and workers are spawned
   before the first bump, so epoch 0 is always the already-seen state. *)
let worker t g i =
  let rec loop seen =
    Mutex.lock g.m;
    while g.epoch = seen && not g.quit do
      Condition.wait g.cv g.m
    done;
    let quit = g.quit and epoch = g.epoch in
    Mutex.unlock g.m;
    if not quit then begin
      (* A failure must still reach the barrier, or the main domain waits
         forever; it is recorded and re-raised over there. *)
      let failure =
        match run_shard t i t.window_end with
        | () -> None
        | exception e -> Some e
      in
      Mutex.lock g.m;
      (match (failure, g.failed) with
      | Some e, None -> g.failed <- Some e
      | _ -> ());
      g.arrived <- g.arrived + 1;
      if g.arrived = Array.length t.engines - 1 then Condition.broadcast g.cv;
      Mutex.unlock g.m;
      if Option.is_none failure then loop epoch
    end
  in
  loop 0

let run_windows t ~until ~each =
  while Time.(t.now < until) do
    let limit = Time.min (Time.add t.now t.lookahead) until in
    t.window_end <- limit;
    each limit;
    exchange t;
    t.now <- limit
  done

let run t ~until =
  let n = Array.length t.engines in
  if n = 1 then begin
    (* One shard: no windows, no barriers — exactly the legacy loop. *)
    Engine.run ~until t.engines.(0);
    t.now <- Time.max t.now until
  end
  else if not t.parallel then
    run_windows t ~until ~each:(fun limit ->
        for i = 0 to n - 1 do
          run_shard t i limit
        done)
  else begin
    let g =
      {
        m = Mutex.create ();
        cv = Condition.create ();
        epoch = 0;
        quit = false;
        arrived = 0;
        failed = None;
      }
    in
    let domains =
      Array.init (n - 1) (fun k -> Domain.spawn (fun () -> worker t g (k + 1)))
    in
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock g.m;
        g.quit <- true;
        Condition.broadcast g.cv;
        Mutex.unlock g.m;
        Array.iter Domain.join domains)
      (fun () ->
        run_windows t ~until ~each:(fun limit ->
            Mutex.lock g.m;
            g.arrived <- 0;
            g.epoch <- g.epoch + 1;
            Condition.broadcast g.cv;
            Mutex.unlock g.m;
            run_shard t 0 limit;
            Mutex.lock g.m;
            while g.arrived < n - 1 do
              Condition.wait g.cv g.m
            done;
            let failed = g.failed in
            Mutex.unlock g.m;
            (* Raising here trips the [finally]: quit is published and the
               surviving workers join before the exception escapes. *)
            match failed with Some e -> raise e | None -> ()))
  end
