(* Conservative windowed coordination of per-shard engines. See the .mli
   for the protocol and the determinism argument.

   The hot path is built around three ideas:

   - A per-shard-pair lookahead matrix: shard [i]'s next window runs to
     [min over j <> i of (horizon j + L(j,i))] (capped at [until]), where
     [L(j,i)] is the smallest latency any link from shard [j] can impose
     on a hop into shard [i]. Well-separated shard pairs contribute wide
     bounds, so shards synchronise at the cadence of their *actual*
     neighbours instead of the global worst case. The uniform-lookahead
     conductor of old is the special case of a constant matrix. Safety:
     a message posted by [j] departs at or after [horizon j], so it
     arrives at or after [horizon j + L(j,i)], which is at or after every
     window end it could be asked to beat. Progress: the least-advanced
     shard's bound strictly exceeds its horizon, so every round moves the
     frontier by at least the smallest matrix entry.

   - A hybrid sense barrier on atomics: the main domain publishes a round
     by bumping the [go] epoch; workers spin briefly on it (with
     [Domain.cpu_relax]) and fall back to a condition variable when the
     window is long or the box is oversubscribed — on a single-core host
     the gang would otherwise spin through its whole timeslice. Arrival
     is a fetch-and-add; the last worker signals the main domain only if
     it is actually asleep. All handoffs are (SC) atomics or mutex-ordered,
     and all non-atomic fields keep exactly one writer per phase.

   - Pooled, allocation-free exchange: outboxes and inboxes are growable
     arrays of mutable message records reused window after window. Each
     per-(src,dst) run is sorted in place (skipped when already sorted,
     the common case — arrivals from one source are mostly monotone) and
     the destination's inbox is filled by a k-way merge of the source
     runs. Field values are copied into destination-owned records: the
     source pool is reused next window, so sharing records would race. *)

type msg = {
  mutable at : Time.t;
  mutable src : int;
  mutable seq : int;
  mutable fn : unit -> unit;
}

let nop () = ()

(* A growable pool of message records; [data] slots beyond [len] are live
   records waiting to be reused. *)
type buf = { mutable data : msg array; mutable len : int }

let fresh_msg () = { at = Time.zero; src = 0; seq = 0; fn = nop }
let buf_make () = { data = [||]; len = 0 }

let buf_reserve b extra =
  let need = b.len + extra in
  let cap = Array.length b.data in
  if need > cap then begin
    let cap' = max need (max 8 (2 * cap)) in
    let data = Array.make cap' (fresh_msg ()) in
    Array.blit b.data 0 data 0 cap;
    for k = max cap 1 to cap' - 1 do
      data.(k) <- fresh_msg ()
    done;
    if cap = 0 then data.(0) <- fresh_msg ();
    b.data <- data
  end

let buf_push b ~at ~src ~seq ~fn =
  buf_reserve b 1;
  let m = b.data.(b.len) in
  m.at <- at;
  m.src <- src;
  m.seq <- seq;
  m.fn <- fn;
  b.len <- b.len + 1

(* The exchange total order: (arrival, source shard, source sequence).
   Within one source, [seq] is post order; across sources the shard index
   breaks ties at identical nanosecond instants deterministically. *)
let before_in_run x y =
  let c = Time.compare x.at y.at in
  c < 0 || (c = 0 && x.seq < y.seq)

(* In-place heapsort of [b.data.(0 .. len-1)] by (at, seq) — (at, seq) is
   unique within a run, so stability is moot. Only called on the rare run
   that arrives out of order. *)
let sort_run b =
  let a = b.data and n = b.len in
  let sift root limit =
    let root = ref root in
    let continue = ref true in
    while !continue do
      let child = (2 * !root) + 1 in
      if child >= limit then continue := false
      else begin
        let child =
          if child + 1 < limit && before_in_run a.(child) a.(child + 1) then
            child + 1
          else child
        in
        if before_in_run a.(!root) a.(child) then begin
          let tmp = a.(!root) in
          a.(!root) <- a.(child);
          a.(child) <- tmp;
          root := child
        end
        else continue := false
      end
    done
  in
  for i = (n / 2) - 1 downto 0 do
    sift i n
  done;
  for last = n - 1 downto 1 do
    let tmp = a.(0) in
    a.(0) <- a.(last);
    a.(last) <- tmp;
    sift 0 last
  done

let run_sorted b =
  let sorted = ref true in
  let k = ref 1 in
  while !sorted && !k < b.len do
    if before_in_run b.data.(!k) b.data.(!k - 1) then sorted := false;
    incr k
  done;
  !sorted

(* Everything a [t] holds between [run] calls is plain marshalable data —
   engines, pools, counters, times, metric handles. The atomic/mutex
   barrier and its bookkeeping live in a [gang] built afresh for each
   parallel [run] call and torn down before it returns, so a quiescent
   conductor can be captured by [Marshal] (checkpointing marshals whole
   clouds, conductor included) without ever reaching an unmarshalable
   custom block. *)
type t = {
  engines : Engine.t array;
  matrix : Time.t array array;  (* matrix.(src).(dst); diagonal unused *)
  parallel : bool;
  horizon : Time.t array;  (* per-shard committed simulation time *)
  window_end : Time.t array;  (* per-shard target of the current round *)
  outbox : buf array array;  (* outbox.(src).(dst) *)
  post_seq : int array;  (* per-source post counter, source-domain-local *)
  inbox : buf array;  (* per-destination, merge-sorted at the barrier *)
  merge_head : int array;  (* scratch cursor per source during the merge *)
  mutable exchanged : int;
  (* sim.shard instruments, registered on shard 0's registry: the sim
     namespace sits outside every byte-compared section, and they are
     written only by the driving domain at the barrier. *)
  m_windows : Sw_obs.Registry.Counter.t;
  m_barrier_wait : Sw_obs.Registry.Histogram.t;
  m_exchanged : Sw_obs.Registry.Counter.t array;  (* flat n*n, src*n + dst *)
}

(* The per-[run] domain gang. [go] counts released rounds (workers run a
   round when [go] moves past what they have seen); [arrived] counts
   workers done with the round; [sleepers]/[main_waiting] tell the other
   side whether a condvar signal is needed at all. *)
type gang = {
  go : int Atomic.t;
  quit : bool Atomic.t;
  arrived : int Atomic.t;
  sleepers : int Atomic.t;
  main_waiting : bool Atomic.t;
  failed : exn option Atomic.t;
  lock : Mutex.t;
  worker_cv : Condition.t;  (* workers sleep here for the next [go] *)
  main_cv : Condition.t;  (* main sleeps here for the last arrival *)
}

(* Spin this many [cpu_relax] rounds before sleeping: long enough to catch
   a same-cadence peer, short enough not to burn a timeslice when the
   shards are imbalanced or the box has fewer cores than shards. *)
let spin_budget = 4096

let create ?(parallel = true) ?matrix ~lookahead engines =
  let n = Array.length engines in
  if n = 0 then invalid_arg "Conductor.create: no shards";
  let matrix =
    match matrix with
    | None ->
        if n > 1 && Time.(lookahead <= Time.zero) then
          invalid_arg "Conductor.create: lookahead must be positive";
        Array.make_matrix n n lookahead
    | Some m ->
        if Array.length m <> n then
          invalid_arg "Conductor.create: lookahead matrix must be n x n";
        Array.init n (fun i ->
            if Array.length m.(i) <> n then
              invalid_arg "Conductor.create: lookahead matrix must be n x n";
            Array.init n (fun j ->
                if i <> j && Time.(m.(i).(j) <= Time.zero) then
                  invalid_arg
                    "Conductor.create: lookahead matrix entries must be \
                     positive off the diagonal";
                m.(i).(j)))
  in
  let registry = Engine.metrics engines.(0) in
  (* Diagonal exchange counters can never tick; park them in a throwaway
     registry so shard 0's snapshots only carry real pairs. *)
  let scratch = Sw_obs.Registry.create () in
  let m_exchanged =
    Array.init (n * n) (fun k ->
        let src = k / n and dst = k mod n in
        if src = dst then Sw_obs.Registry.counter scratch "sim.shard.unused"
        else
          Sw_obs.Registry.counter registry
            (Printf.sprintf "sim.shard.exchanged.s%d.s%d" src dst))
  in
  {
    engines;
    matrix;
    parallel;
    horizon = Array.make n Time.zero;
    window_end = Array.make n Time.zero;
    outbox = Array.init n (fun _ -> Array.init n (fun _ -> buf_make ()));
    post_seq = Array.make n 0;
    inbox = Array.init n (fun _ -> buf_make ());
    merge_head = Array.make n 0;
    exchanged = 0;
    m_windows = Sw_obs.Registry.counter registry "sim.shard.windows";
    m_barrier_wait = Sw_obs.Registry.histogram registry "sim.shard.barrier_wait_ns";
    m_exchanged;
  }

let shards t = Array.length t.engines
let exchanged t = t.exchanged
let lookahead t ~src ~dst = t.matrix.(src).(dst)

let post t ~src ~dst ~at fn =
  if Time.(at < t.window_end.(dst)) then
    invalid_arg
      (Format.asprintf
         "Conductor.post: lookahead violated on shard %d -> shard %d: \
          arrival %a precedes the destination window end %a"
         src dst Time.pp at Time.pp t.window_end.(dst));
  let seq = t.post_seq.(src) in
  t.post_seq.(src) <- seq + 1;
  buf_push t.outbox.(src).(dst) ~at ~src ~seq ~fn

(* Drive shard [i] through one round: inject the merged inbox, then run the
   engine to the round's window end (parking exactly there). Skipped
   entirely when the shard has nothing to do — no injections and no time
   to cover. *)
let run_shard t i =
  let b = t.inbox.(i) in
  let eng = t.engines.(i) in
  if b.len > 0 then begin
    for k = 0 to b.len - 1 do
      let m = b.data.(k) in
      ignore (Engine.schedule_at ~kind:"xshard" eng m.at m.fn);
      m.fn <- nop
    done;
    b.len <- 0;
    Engine.run ~until:t.window_end.(i) eng
  end
  else if Time.(t.window_end.(i) > t.horizon.(i)) then
    Engine.run ~until:t.window_end.(i) eng

(* Merge every source's outbox run into its destination inbox, in the
   exchange total order. Runs on the driving domain while workers are
   parked at the barrier. *)
let exchange t =
  let n = Array.length t.engines in
  for d = 0 to n - 1 do
    let total = ref 0 in
    for s = 0 to n - 1 do
      let run = t.outbox.(s).(d) in
      if run.len > 0 then begin
        if not (run_sorted run) then sort_run run;
        Sw_obs.Registry.Counter.add t.m_exchanged.((s * n) + d) run.len;
        total := !total + run.len
      end;
      t.merge_head.(s) <- 0
    done;
    if !total > 0 then begin
      t.exchanged <- t.exchanged + !total;
      let inbox = t.inbox.(d) in
      buf_reserve inbox !total;
      for _ = 1 to !total do
        (* Smallest (at, src, seq) among the source runs' heads; [src]
           ascending scan breaks at-ties toward the lower shard for free. *)
        let best = ref (-1) in
        for s = 0 to n - 1 do
          let run = t.outbox.(s).(d) in
          if t.merge_head.(s) < run.len then
            if
              !best = -1
              ||
              let m = run.data.(t.merge_head.(s)) in
              Time.(m.at < t.outbox.(!best).(d).data.(t.merge_head.(!best)).at)
            then best := s
        done;
        let s = !best in
        let m = t.outbox.(s).(d).data.(t.merge_head.(s)) in
        t.merge_head.(s) <- t.merge_head.(s) + 1;
        let slot = inbox.data.(inbox.len) in
        slot.at <- m.at;
        slot.src <- m.src;
        slot.seq <- m.seq;
        slot.fn <- m.fn;
        (* Source slots are reused next window; drop the closure now so the
           pool never retains a dead environment. *)
        m.fn <- nop;
        inbox.len <- inbox.len + 1
      done;
      for s = 0 to n - 1 do
        t.outbox.(s).(d).len <- 0
      done
    end
  done

(* Compute the next round's per-shard window ends from the current
   horizons: shard [i] may run to the earliest instant any other shard
   could still reach it, capped at [until]. *)
let plan_round t ~until =
  let n = Array.length t.engines in
  for i = 0 to n - 1 do
    let lim = ref until in
    for j = 0 to n - 1 do
      if j <> i then begin
        let bound = Time.add t.horizon.(j) t.matrix.(j).(i) in
        if Time.(bound < !lim) then lim := bound
      end
    done;
    t.window_end.(i) <- Time.max t.horizon.(i) !lim
  done

let behind t ~until =
  let n = Array.length t.engines in
  let rec go i = i < n && (Time.(t.horizon.(i) < until) || go (i + 1)) in
  go 0

let commit_round t =
  Array.blit t.window_end 0 t.horizon 0 (Array.length t.horizon)

(* Worker for shard [i]: spin (then sleep) for the next [go] epoch, run the
   round, report arrival. All conductor fields read outside the atomics are
   written by the main domain before the [go] bump and stable until every
   worker has arrived, so the epoch handoff publishes them (plain writes
   are visible across an SC-atomic release/acquire pair). *)
let worker t g i =
  let n = Array.length t.engines in
  let await seen =
    let rec spin k =
      let e = Atomic.get g.go in
      if e <> seen then Some e
      else if Atomic.get g.quit then None
      else if k < spin_budget then begin
        Domain.cpu_relax ();
        spin (k + 1)
      end
      else begin
        Mutex.lock g.lock;
        Atomic.incr g.sleepers;
        let rec sleep () =
          let e = Atomic.get g.go in
          if e <> seen then Some e
          else if Atomic.get g.quit then None
          else begin
            Condition.wait g.worker_cv g.lock;
            sleep ()
          end
        in
        let r = sleep () in
        Atomic.decr g.sleepers;
        Mutex.unlock g.lock;
        r
      end
    in
    spin 0
  in
  let rec loop seen =
    match await seen with
    | None -> ()
    | Some epoch ->
        (* A failure must still reach the barrier, or the main domain waits
           forever; it is recorded and re-raised over there. *)
        let failure =
          match run_shard t i with () -> None | exception e -> Some e
        in
        (match failure with
        | Some e -> ignore (Atomic.compare_and_set g.failed None (Some e))
        | None -> ());
        let prior = Atomic.fetch_and_add g.arrived 1 in
        if prior = n - 2 && Atomic.get g.main_waiting then begin
          Mutex.lock g.lock;
          Condition.signal g.main_cv;
          Mutex.unlock g.lock
        end;
        if failure = None then loop epoch
  in
  loop 0

(* Main-domain side of the barrier: spin for the stragglers, then sleep.
   The wait (spin and sleep alike) is the barrier tax the instrumentation
   reports — wall clock, so strictly a [sim.*] metric. *)
let await_workers t g =
  let n = Array.length t.engines in
  let t0 = Wall.now_s () in
  let rec spin k =
    if Atomic.get g.arrived < n - 1 then
      if k < spin_budget then begin
        Domain.cpu_relax ();
        spin (k + 1)
      end
      else begin
        Mutex.lock g.lock;
        Atomic.set g.main_waiting true;
        while Atomic.get g.arrived < n - 1 do
          Condition.wait g.main_cv g.lock
        done;
        Atomic.set g.main_waiting false;
        Mutex.unlock g.lock
      end
  in
  spin 0;
  Sw_obs.Registry.Histogram.observe t.m_barrier_wait
    (Int64.of_float ((Wall.now_s () -. t0) *. 1e9))

let run t ~until =
  let n = Array.length t.engines in
  if n = 1 then begin
    (* One shard: no windows, no barriers — exactly the legacy loop. *)
    Engine.run ~until t.engines.(0);
    t.horizon.(0) <- Time.max t.horizon.(0) until;
    t.window_end.(0) <- t.horizon.(0)
  end
  else if not t.parallel then
    while behind t ~until do
      plan_round t ~until;
      Sw_obs.Registry.Counter.incr t.m_windows;
      for i = 0 to n - 1 do
        run_shard t i
      done;
      exchange t;
      commit_round t
    done
  else begin
    let g =
      {
        go = Atomic.make 0;
        quit = Atomic.make false;
        arrived = Atomic.make 0;
        sleepers = Atomic.make 0;
        main_waiting = Atomic.make false;
        failed = Atomic.make None;
        lock = Mutex.create ();
        worker_cv = Condition.create ();
        main_cv = Condition.create ();
      }
    in
    let domains =
      Array.init (n - 1) (fun k -> Domain.spawn (fun () -> worker t g (k + 1)))
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set g.quit true;
        Mutex.lock g.lock;
        Condition.broadcast g.worker_cv;
        Mutex.unlock g.lock;
        Array.iter Domain.join domains)
      (fun () ->
        while behind t ~until do
          plan_round t ~until;
          Sw_obs.Registry.Counter.incr t.m_windows;
          Atomic.set g.arrived 0;
          Atomic.incr g.go;
          if Atomic.get g.sleepers > 0 then begin
            Mutex.lock g.lock;
            Condition.broadcast g.worker_cv;
            Mutex.unlock g.lock
          end;
          run_shard t 0;
          await_workers t g;
          (* Raising here trips the [finally]: quit is published and the
             surviving workers join before the exception escapes. *)
          (match Atomic.get g.failed with Some e -> raise e | None -> ());
          exchange t;
          commit_round t
        done)
  end
