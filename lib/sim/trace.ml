type entry = { at : Time.t; label : string; message : string }

type t = {
  capacity : int;
  buffer : entry option array;
  mutable next : int;
  mutable count : int;
  mutable enabled : bool;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buffer = Array.make capacity None; next = 0; count = 0; enabled = false }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let enabled t = t.enabled

let emit t ~at ~label message =
  if t.enabled then begin
    t.buffer.(t.next) <- Some { at; label; message };
    t.next <- (t.next + 1) mod t.capacity;
    if t.count < t.capacity then t.count <- t.count + 1
  end

let entries t =
  let start = if t.count < t.capacity then 0 else t.next in
  let rec collect i acc =
    if i >= t.count then List.rev acc
    else
      match t.buffer.((start + i) mod t.capacity) with
      | None -> collect (i + 1) acc
      | Some e -> collect (i + 1) (e :: acc)
  in
  collect 0 []

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.next <- 0;
  t.count <- 0

let length t = t.count

let pp_entry fmt e =
  Format.fprintf fmt "[%a] %-18s %s" Time.pp e.at e.label e.message
