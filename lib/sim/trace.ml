type t = Sw_obs.Trace.t

type entry = { at : Time.t; label : string; message : string }

let create = Sw_obs.Trace.create
let enable = Sw_obs.Trace.enable
let disable = Sw_obs.Trace.disable
let enabled = Sw_obs.Trace.enabled

let emit t ~at ~label message =
  (* [Time.t] is an [int64] of nanoseconds, so [at] is the [at_ns]. *)
  Sw_obs.Trace.emit t ~at_ns:at (Sw_obs.Event.Message { label; text = message })

let entry_of (e : Sw_obs.Trace.entry) =
  match e.Sw_obs.Trace.event with
  | Sw_obs.Event.Message { label; text } ->
      { at = e.Sw_obs.Trace.at_ns; label; message = text }
  | ev ->
      {
        at = e.Sw_obs.Trace.at_ns;
        label = Sw_obs.Event.label ev;
        message = Format.asprintf "%a" Sw_obs.Event.pp ev;
      }

let iter t f = Sw_obs.Trace.iter t (fun e -> f (entry_of e))
let fold f acc t = Sw_obs.Trace.fold (fun acc e -> f acc (entry_of e)) acc t
let entries t = List.rev (fold (fun acc e -> e :: acc) [] t)
let clear = Sw_obs.Trace.clear
let length = Sw_obs.Trace.length

let pp_entry fmt e =
  Format.fprintf fmt "[%a] %-18s %s" Time.pp e.at e.label e.message
