type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next_int64 t }
let copy t = { state = t.state }

(* Key derivation: fold each key into the state through one SplitMix64
   round. Unlike [split] this consumes no draws from any shared stream, so
   derived streams depend only on the (seed, keys) pair — never on the
   order in which other components were constructed. *)
let mix seed key = mix64 (Int64.add (Int64.logxor seed key) golden_gamma)
let derive ~seed keys = { state = List.fold_left mix seed keys }

(* Take the top 53 bits for a uniform double in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let bits = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem bits n64 in
    if Int64.sub bits v > Int64.sub Int64.max_int (Int64.sub n64 1L) then draw ()
    else Int64.to_int v
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L
let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Prng.exponential: rate must be positive";
  let u = 1. -. float t in
  -.Float.log u /. rate

let normal t ~mean ~stddev =
  let u1 = 1. -. float t and u2 = float t in
  let z = Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2) in
  mean +. (stddev *. z)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

type state = int64

let export t = t.state
let import s = { state = s }
let state_to_string = Int64.to_string

let state_of_string s =
  match Int64.of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "Prng.state_of_string: %S is not a state" s)
