(** Discrete-event simulation engine.

    The engine owns the simulated clock and a priority queue of pending
    events. Events scheduled for the same instant fire in the order they were
    scheduled, so runs are deterministic. *)

type t

type event_id

(** [create ~seed ()] makes an engine whose clock starts at {!Time.zero} and
    whose root PRNG is seeded with [seed]. *)
val create : ?seed:int64 -> unit -> t

(** Current simulated time. *)
val now : t -> Time.t

(** [rng t] derives a fresh generator from the engine's root PRNG. Call once
    per stochastic component at setup so later scheduling changes cannot
    perturb the stream assignment. *)
val rng : t -> Prng.t

(** [schedule_at t at f] runs [f] when the clock reaches [at]. Raises
    [Invalid_argument] when [at] is in the past. *)
val schedule_at : t -> Time.t -> (unit -> unit) -> event_id

(** [schedule_after t delay f] runs [f] after [delay] (an instant of
    [now + delay]). Raises [Invalid_argument] for negative delays. *)
val schedule_after : t -> Time.t -> (unit -> unit) -> event_id

(** [cancel t id] prevents the event from firing; cancelling an already-fired
    or already-cancelled event is a no-op. *)
val cancel : t -> event_id -> unit

(** [step t] fires the next event; [false] when no events remain. *)
val step : t -> bool

(** [run ?until t] fires events until the queue drains or the clock would
    pass [until] (events at exactly [until] do fire). *)
val run : ?until:Time.t -> t -> unit

(** Number of pending (uncancelled) events. *)
val pending : t -> int

(** Total events fired since creation. *)
val fired : t -> int
