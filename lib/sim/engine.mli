(** Discrete-event simulation engine.

    The engine owns the simulated clock, the pending-event queue (a
    hierarchical timer wheel with a heap overflow tier — see {!Wheel}), and
    the simulation's metric registry. Events scheduled for the same instant
    fire in the order they were scheduled, so runs are deterministic.

    The engine's own per-event accounting sits behind the registry's
    {!Sw_obs.Registry.enabled} switch: one load and one branch per
    operation when metrics are off. *)

type t

(** Packed immediate identifying one scheduled event; goes stale when the
    event fires, so a late {!cancel} through it is a safe no-op. *)
type event_id

(** [create ~seed ~metrics ()] makes an engine whose clock starts at
    {!Time.zero} and whose root PRNG is seeded with [seed]. The engine
    records its own bookkeeping ([sim.events.*], [sim.queue.depth]) in
    [metrics] (a private registry when omitted) and hands the registry to
    components via {!metrics}. [profile] (a disabled private instance when
    omitted) collects wall-clock self-profiling: the engine times every
    event dispatch under ["engine.dispatch"], and components reached
    through this engine hang their own timers off the same instance via
    {!profile}. *)
val create :
  ?seed:int64 -> ?metrics:Sw_obs.Registry.t -> ?profile:Sw_obs.Profile.t ->
  unit -> t

(** Current simulated time. *)
val now : t -> Time.t

(** [rng t] derives a fresh generator from the engine's root PRNG. Call once
    per stochastic component at setup so later scheduling changes cannot
    perturb the stream assignment. *)
val rng : t -> Prng.t

(** The registry this engine (and every component built on it) records
    into. *)
val metrics : t -> Sw_obs.Registry.t

(** The wall-clock profile this engine times dispatches into; disabled
    unless one was passed to {!create} (or enabled later). *)
val profile : t -> Sw_obs.Profile.t

(** [schedule_at ?kind t at f] runs [f] when the clock reaches [at]. Raises
    [Invalid_argument] when [at] is in the past. When [kind] is given (a
    metric path segment such as ["net.deliver"]) the engine additionally
    counts the event under [sim.events.<kind>.scheduled] and records its
    scheduling delay in the [sim.events.<kind>.delay_ns] histogram. *)
val schedule_at : ?kind:string -> t -> Time.t -> (unit -> unit) -> event_id

(** [schedule_after ?kind t delay f] runs [f] after [delay] (an instant of
    [now + delay]). Raises [Invalid_argument] for negative delays. *)
val schedule_after : ?kind:string -> t -> Time.t -> (unit -> unit) -> event_id

(** [cancel t id] prevents the event from firing; cancelling an already-fired
    or already-cancelled event is a no-op — in particular it never perturbs
    {!pending}. *)
val cancel : t -> event_id -> unit

(** [step t] fires the next event; [false] when no events remain. *)
val step : t -> bool

(** [run ?until t] fires events until the queue drains or the clock would
    pass [until] (events at exactly [until] do fire). With [until] the clock
    then parks exactly at [until], even when the queue drained early; the
    clock never moves backwards. *)
val run : ?until:Time.t -> t -> unit

(** Number of pending (uncancelled) events. *)
val pending : t -> int

(** Total events fired since creation (the [sim.events.fired] counter). *)
val fired : t -> int
