(** Simulated time.

    A value of type {!t} is a count of nanoseconds. The same representation is
    used both for instants (nanoseconds since the start of the simulation) and
    for spans (durations); which one is meant is documented at each use site.
    Virtual time (the per-guest clock of Eqn. 1 in the paper) also uses this
    type: it is a nanosecond-denominated clock, just not synchronised with the
    simulation's real time. *)

type t = int64

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val s : int -> t

(** [of_float_s x] is [x] seconds, rounded to the nearest nanosecond. *)
val of_float_s : float -> t

(** [of_float_ms x] is [x] milliseconds, rounded to the nearest nanosecond. *)
val of_float_ms : float -> t

val to_float_s : t -> float
val to_float_ms : t -> float
val to_float_us : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val mul_int : t -> int -> t
val div_int : t -> int -> t

(** [scale t x] is [t] multiplied by the float [x], rounded. *)
val scale : t -> float -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val is_negative : t -> bool

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

(** Pretty-prints with an adaptive unit, e.g. ["1.500ms"]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
