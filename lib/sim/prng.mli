(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of a simulation draws from its own generator
    obtained via {!split}, so simulations are reproducible bit-for-bit from a
    single seed regardless of event interleaving.

    {b Domain ownership.} Generators are mutable and carry no lock: a [t]
    must be owned by exactly one domain at a time. Sharing one generator
    between domains is a data race and, worse, makes draw order depend on
    scheduling, destroying reproducibility even when the race happens to be
    benign. The supported pattern — the one [Sw_runner] enforces — is to
    derive each parallel job's generator {e before} dispatch (via {!split},
    or {!create} on a seed computed from the job's key alone) and move it to
    the worker domain wholesale. Sibling generators obtained by [split]
    share no state, so concurrent draws from them are race-free and yield
    the same sequences as sequential draws. *)

type t

(** The full state of a generator, as an abstract serializable value:
    checkpointing code captures it with {!export} and rebuilds the stream
    with {!import} instead of reaching into generator internals. A [state]
    is immutable plain data — safe to marshal, hash, compare, or ship
    across domains. The domain-ownership contract above transfers with it:
    {!import} mints a fresh generator owned by the importing domain, and a
    generator restored from the [state] of a live [t] replays exactly the
    draws [t] would have made — use it for replay, not for concurrent
    draws alongside the original. *)
type state

(** [export t] captures [t]'s current position in its stream. [t] is not
    advanced. *)
val export : t -> state

(** [import s] rebuilds a generator at position [s]:
    [import (export t)] draws the same sequence as [t]. *)
val import : state -> t

(** Round-trippable textual form, for embedding states in reports or
    checkpoint metadata. *)
val state_to_string : state -> string

val state_of_string : string -> (state, string) result

val create : int64 -> t

(** [split t] derives an independent generator, advancing [t]. *)
val split : t -> t

(** [copy t] duplicates the generator's current state. *)
val copy : t -> t

(** [mix seed key] folds [key] into [seed] through one SplitMix64 round.
    Pure; used to build stream keys from structured identities. *)
val mix : int64 -> int64 -> int64

(** [derive ~seed keys] builds a generator whose state is a pure function
    of [(seed, keys)]. Unlike {!split} it consumes nothing from a shared
    stream, so the result is independent of construction order — the
    discipline sharded simulations rely on for partition-independent
    draws. *)
val derive : seed:int64 -> int64 list -> t

val next_int64 : t -> int64

(** [float t] draws uniformly from [[0, 1)]. *)
val float : t -> float

(** [int t n] draws uniformly from [[0, n)]. Raises [Invalid_argument] when
    [n <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** [uniform t ~lo ~hi] draws uniformly from [[lo, hi)]. *)
val uniform : t -> lo:float -> hi:float -> float

(** [exponential t ~rate] draws from Exp(rate) (mean [1/rate]). *)
val exponential : t -> rate:float -> float

(** [normal t ~mean ~stddev] draws from a Gaussian (Box–Muller). *)
val normal : t -> mean:float -> stddev:float -> float

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t l] picks a uniformly random element. Raises [Invalid_argument]
    on the empty list. *)
val choose : t -> 'a list -> 'a
