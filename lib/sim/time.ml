type t = int64

let zero = 0L
let ns n = Int64.of_int n
let us n = Int64.mul (Int64.of_int n) 1_000L
let ms n = Int64.mul (Int64.of_int n) 1_000_000L
let s n = Int64.mul (Int64.of_int n) 1_000_000_000L
let of_float_s x = Int64.of_float (Float.round (x *. 1e9))
let of_float_ms x = Int64.of_float (Float.round (x *. 1e6))
let to_float_s t = Int64.to_float t /. 1e9
let to_float_ms t = Int64.to_float t /. 1e6
let to_float_us t = Int64.to_float t /. 1e3
let add = Int64.add
let sub = Int64.sub
let mul_int t n = Int64.mul t (Int64.of_int n)
let div_int t n = Int64.div t (Int64.of_int n)
let scale t x = Int64.of_float (Float.round (Int64.to_float t *. x))
let compare = Int64.compare
let equal = Int64.equal
let min a b = if Int64.compare a b <= 0 then a else b
let max a b = if Int64.compare a b >= 0 then a else b
let is_negative t = Int64.compare t 0L < 0
let ( + ) = add
let ( - ) = sub
let ( < ) a b = Int64.compare a b < 0
let ( <= ) a b = Int64.compare a b <= 0
let ( > ) a b = Int64.compare a b > 0
let ( >= ) a b = Int64.compare a b >= 0

let pp fmt t =
  let f = Int64.to_float t in
  let af = Float.abs f in
  if Stdlib.( < ) af 1e3 then Format.fprintf fmt "%Ldns" t
  else if Stdlib.( < ) af 1e6 then Format.fprintf fmt "%.3fus" (f /. 1e3)
  else if Stdlib.( < ) af 1e9 then Format.fprintf fmt "%.3fms" (f /. 1e6)
  else Format.fprintf fmt "%.3fs" (f /. 1e9)

let to_string t = Format.asprintf "%a" pp t
