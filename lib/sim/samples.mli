(** A growable collection of float observations with order-statistics
    queries. Used to build empirical distributions of observed timings. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val stddev : t -> float

(** [percentile t p] with [p] in [[0, 1]]; linear interpolation between order
    statistics. Raises [Invalid_argument] when empty or [p] out of range. *)
val percentile : t -> float -> float

val median : t -> float

(** Sorted copy of all observations. *)
val sorted : t -> float array

(** Raw copy in insertion order. *)
val to_array : t -> float array

(** [histogram t ~bins ~lo ~hi] counts observations per equal-width bin over
    [[lo, hi]]; values outside are clamped into the end bins. *)
val histogram : t -> bins:int -> lo:float -> hi:float -> int array

(** [ecdf t x] is the fraction of observations [<= x]. *)
val ecdf : t -> float -> float
