(** Wall-clock measurement for benchmarks and the runner.

    [Sys.time] returns process CPU time, which double-counts when work is
    spread across OCaml 5 domains (N busy domains advance it at N seconds
    per second) and undercounts time spent blocked. Everything that reports
    elapsed real time must use this module instead.

    The clock is [Unix.gettimeofday]-based: real time, not strictly
    monotonic under NTP steps. That is the best the preinstalled set offers
    (no [Mtime]); spans measured here are for reporting, never for
    simulation semantics — simulated time lives in {!Time}. *)

(** Current wall-clock time in seconds since the epoch. *)
val now_s : unit -> float

(** [elapsed_s t0] is the wall-clock seconds since [t0 = now_s ()],
    clamped to be non-negative so NTP step-backs never yield a negative
    span. *)
val elapsed_s : float -> float

(** [time f] runs [f ()] and returns its result with the wall-clock
    seconds it took. *)
val time : (unit -> 'a) -> 'a * float
