(** Conservative parallel coordination of several {!Engine}s ("shards").

    A conductor owns an array of engines, one per shard, and drives them in
    lookahead rounds: every shard runs freely (on its own domain when
    [parallel]) up to its own window end, then all shards synchronise at a
    barrier and exchange the timestamped cross-shard messages posted during
    the round.

    {b Lookahead matrix.} The bound is per shard pair: [L(j,i)] is the
    smallest latency any link can impose on a hop from shard [j] into
    shard [i], and shard [i]'s next window runs to
    [min over j <> i of (horizon j + L(j,i))]. A message posted by [j]
    departs at or after [horizon j] and so arrives at or after
    [horizon j + L(j,i)] — never inside a window already running. Shards
    separated by slow links synchronise rarely; only genuinely close pairs
    pay a tight cadence. A uniform matrix (the [~lookahead] scalar)
    recovers the classic global-minimum protocol.

    {b Determinism.} Shard execution within a round touches no state shared
    with other shards; the only inter-shard channel is {!post}. At each
    barrier the conductor merges every destination's inbox in
    [(arrival, source shard, source sequence)] order — a total order — and
    injects in that order at the start of the next round, so the
    destination engine's own [(time, seq)] tiebreak reproduces exactly the
    same firing order whatever the domain scheduling was, and the parallel
    and sequential drivers produce byte-identical simulations.

    {b Domain ownership.} During a round, shard [i]'s engine (and
    everything hanging off it) is owned by the domain driving shard [i];
    [post] may only be called from that domain with [~src:i]. Between
    rounds (and outside {!run}) everything is owned by the caller. The
    worker gang is spawned at the start of each {!run} and joined before it
    returns, so a conductor holds no threads while idle; the barrier is a
    hybrid sense barrier (bounded spin on atomics, then a condvar sleep).

    {b Instrumentation.} Rounds, barrier wait (wall-clock, parallel driver
    only), and per-pair exchanged-message counts are recorded on shard 0's
    registry under [sim.shard.windows], [sim.shard.barrier_wait_ns], and
    [sim.shard.exchanged.s<i>.s<j>] — the [sim.*] namespace every
    byte-comparison already excludes.

    {b Checkpointability.} A quiescent conductor (between {!run} calls) is
    plain marshalable data: the barrier's atomics, mutex and condition
    variables belong to the per-{!run} gang, never to [t], so [Marshal]
    with closures captures a sharded cloud — pending cross-shard inboxes
    included — without meeting an unmarshalable custom block. *)

type t

(** [create ?parallel ?matrix ~lookahead engines] builds a conductor over
    the shards [engines]. [matrix.(j).(i)] bounds hops from shard [j] into
    shard [i] (the diagonal is ignored); without [matrix], a uniform matrix
    is built from the scalar [lookahead]. Off-diagonal entries (or
    [lookahead], when it is the source) must be positive when there is more
    than one shard. [parallel] (default [true]) selects the
    domain-per-shard driver; [false] runs the same windowed protocol
    round-robin on the calling domain — useful for differential tests,
    byte-identical by construction. *)
val create :
  ?parallel:bool ->
  ?matrix:Time.t array array ->
  lookahead:Time.t ->
  Engine.t array ->
  t

val shards : t -> int

(** Cross-shard messages exchanged so far (across all barriers). *)
val exchanged : t -> int

(** The lookahead bound in force for [src -> dst] hops. *)
val lookahead : t -> src:int -> dst:int -> Time.t

(** [post t ~src ~dst ~at fn] queues [fn] for injection into shard [dst]'s
    engine at absolute time [at] (scheduled there under kind ["xshard"]).
    Must be called from shard [src]'s domain, during a round. Raises
    [Invalid_argument] — naming the source shard, destination shard,
    arrival instant, and the destination's window end — when [at] precedes
    the end of the destination's current window: that would violate the
    lookahead contract. *)
val post : t -> src:int -> dst:int -> at:Time.t -> (unit -> unit) -> unit

(** [run t ~until] advances every shard to exactly [until] (each engine
    parks there, as {!Engine.run}), round by round. May be called
    repeatedly; rounds resume where the previous call stopped. *)
val run : t -> until:Time.t -> unit
