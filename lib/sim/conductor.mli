(** Conservative parallel coordination of several {!Engine}s ("shards").

    A conductor owns an array of engines, one per shard, and drives them in
    lockstep lookahead windows: every shard runs freely (on its own domain
    when [parallel]) up to the window end, then all shards synchronise at a
    barrier and exchange the timestamped cross-shard messages posted during
    the window. The lookahead is the minimum latency of any link that can
    carry traffic between shards, so a message posted inside window [W]
    always arrives at or after the start of window [W+1] — no shard can
    receive an event in its past, which is the whole conservative-PDES
    argument.

    {b Determinism.} Shard execution within a window touches no state
    shared with other shards; the only inter-shard channel is {!post}. At
    each barrier the conductor sorts every destination's inbox by
    [(arrival, source shard, source sequence)] — a total order — and
    injects in that order at the start of the next window, so the
    destination engine's own [(time, seq)] tiebreak reproduces exactly the
    same firing order whatever the domain scheduling was, and the parallel
    and sequential drivers produce byte-identical simulations.

    {b Domain ownership.} During a window, shard [i]'s engine (and
    everything hanging off it) is owned by the domain driving shard [i];
    [post] may only be called from that domain with [~src:i]. Between
    windows (and outside {!run}) everything is owned by the caller. The
    worker gang is spawned at the start of each {!run} and joined before it
    returns, so a conductor holds no threads while idle.

    {b Checkpointability.} A quiescent conductor (between {!run} calls) is
    plain marshalable data: the barrier's mutex and condition variable
    belong to the per-{!run} gang, never to [t], so [Marshal] with
    closures captures a sharded cloud — pending cross-shard inboxes
    included — without meeting an unmarshalable custom block. *)

type t

(** [create ?parallel ~lookahead engines] builds a conductor over the
    shards [engines]. [lookahead] (a span) must be positive when there is
    more than one shard. [parallel] (default [true]) selects the
    domain-per-shard driver; [false] runs the same windowed protocol
    round-robin on the calling domain — useful for differential tests,
    byte-identical by construction. *)
val create : ?parallel:bool -> lookahead:Time.t -> Engine.t array -> t

val shards : t -> int

(** Cross-shard messages exchanged so far (across all barriers). *)
val exchanged : t -> int

(** [post t ~src ~dst ~at fn] queues [fn] for injection into shard [dst]'s
    engine at absolute time [at] (scheduled there under kind ["xshard"]).
    Must be called from shard [src]'s domain, during a window. Raises
    [Invalid_argument] when [at] precedes the end of the current window —
    that would violate the lookahead contract. *)
val post : t -> src:int -> dst:int -> at:Time.t -> (unit -> unit) -> unit

(** [run t ~until] advances every shard to exactly [until] (each engine
    parks there, as {!Engine.run}), window by window. May be called
    repeatedly; windows resume where the previous call stopped. *)
val run : t -> until:Time.t -> unit
