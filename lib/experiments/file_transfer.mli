(** Drivers for the Fig. 5 file-retrieval experiments: one client downloading
    files of various sizes from a cloud-resident server, over HTTP/TCP or
    UDP/NAK, under StopWatch or unmodified-Xen baseline. *)

type protocol = Http | Udp

type outcome = {
  elapsed_ms : float;  (** Mean over successful runs. *)
  runs : float list;
  divergences : int;
  failed_runs : Sw_runner.Runner.failure list;
      (** Runs abandoned by the runner (crash or timeout); excluded from
          [elapsed_ms] and [runs] instead of aborting the sweep. *)
  metrics : Sw_obs.Snapshot.t;
      (** Merged metrics snapshot over the successful runs' clouds. *)
}

(** [jobs ?config ?seed ~protocol ~stopwatch ~size_bytes ~runs ()] is the
    replicated measurement as independent runner jobs, one per run, each
    returning [(elapsed_ms, divergences, metrics snapshot)]. Each job's
    cloud seed is fixed
    at construction (derived from [seed] and the run index), so outcomes
    are independent of worker count and dispatch order. *)
val jobs :
  ?config:Sw_vmm.Config.t ->
  ?seed:int64 ->
  protocol:protocol ->
  stopwatch:bool ->
  size_bytes:int ->
  runs:int ->
  unit ->
  (float * int * Sw_obs.Snapshot.t) Sw_runner.Job.t list

(** [collect outcomes] aggregates one replicated measurement. *)
val collect :
  (float * int * Sw_obs.Snapshot.t) Sw_runner.Runner.outcome list -> outcome

(** [run ?config ?seed ?pool ~protocol ~stopwatch ~size_bytes ~runs ()]
    performs [runs] fresh-cloud downloads — in parallel when [pool] is
    given, with identical results either way — and averages. *)
val run :
  ?config:Sw_vmm.Config.t ->
  ?seed:int64 ->
  ?pool:Sw_runner.Pool.t ->
  protocol:protocol ->
  stopwatch:bool ->
  size_bytes:int ->
  runs:int ->
  unit ->
  outcome

(** The paper's file-size sweep: 1 KB to 10 MB, log-spaced. *)
val paper_sizes : int list
