(** Drivers for the Fig. 5 file-retrieval experiments: one client downloading
    files of various sizes from a cloud-resident server, over HTTP/TCP or
    UDP/NAK, under StopWatch or unmodified-Xen baseline. *)

type protocol = Http | Udp

type outcome = {
  elapsed_ms : float;  (** Mean over runs. *)
  runs : float list;
  divergences : int;
}

(** [run ?config ?seed ~protocol ~stopwatch ~size_bytes ~runs ()] performs
    [runs] fresh-cloud downloads and averages. *)
val run :
  ?config:Sw_vmm.Config.t ->
  ?seed:int64 ->
  protocol:protocol ->
  stopwatch:bool ->
  size_bytes:int ->
  runs:int ->
  unit ->
  outcome

(** The paper's file-size sweep: 1 KB to 10 MB, log-spaced. *)
val paper_sizes : int list
