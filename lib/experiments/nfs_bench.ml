module Time = Sw_sim.Time
module Cloud = Stopwatch.Cloud

type outcome = {
  mean_latency_ms : float;
  completed : int;
  issued : int;
  client_to_server_per_op : float;
  server_to_client_per_op : float;
  divergences : int;
  metrics : Sw_obs.Snapshot.t;
}

let paper_rates = [ 25.; 50.; 100.; 200.; 400. ]

let nfs_config = { Sw_vmm.Config.default with Sw_vmm.Config.delta_n = Time.ms 8 }

let default_seed = 0x4F5_1L

let run ?(config = nfs_config) ?(seed = default_seed) ~stopwatch ~rate_per_s ~ops () =
  let cloud = Cloud.create ~config ~seed ~machines:3 () in
  let d =
    if stopwatch then Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:(Sw_apps.Nfs.server ())
    else Cloud.deploy_baseline cloud ~on:0 ~app:(Sw_apps.Nfs.server ())
  in
  let client = Cloud.add_host cloud () in
  let tcp = Sw_apps.Tcp_host.attach client ~config:Sw_apps.Nfs.client_tcp_config () in
  let get =
    Sw_apps.Nfs.run_client tcp ~dst:(Cloud.vm_address d) ~rate_per_s ~procs:5 ~ops
      ~seed ()
  in
  let horizon = Time.of_float_s ((float_of_int ops /. rate_per_s) +. 5.) in
  Cloud.run cloud ~until:horizon;
  let stats = get () in
  let metrics = Cloud.metrics_snapshot cloud in
  let per_op count =
    if stats.Sw_apps.Nfs.completed = 0 then 0.
    else float_of_int count /. float_of_int stats.Sw_apps.Nfs.completed
  in
  (* Per-pair packet counts (Fig. 6(b)) come off the snapshot, the same
     value the runner later merges into the bench report. *)
  let c2s =
    Sw_obs.Snapshot.counter metrics
      (Sw_net.Network.pair_metric
         ~src:(Stopwatch.Host.address client)
         ~dst:(Cloud.vm_address d))
  in
  let s2c =
    Sw_obs.Snapshot.counter metrics
      (Sw_net.Network.pair_metric ~src:(Cloud.vm_address d)
         ~dst:(Stopwatch.Host.address client))
  in
  let l = stats.Sw_apps.Nfs.latencies_ms in
  let mean_latency_ms =
    if Array.length l = 0 then nan
    else Array.fold_left ( +. ) 0. l /. float_of_int (Array.length l)
  in
  {
    mean_latency_ms;
    completed = stats.Sw_apps.Nfs.completed;
    issued = stats.Sw_apps.Nfs.issued;
    client_to_server_per_op = per_op c2s;
    server_to_client_per_op = per_op s2c;
    divergences =
      Sw_obs.Snapshot.counter metrics
        (Printf.sprintf "vm%d.divergences" (Cloud.vm_id d));
    metrics;
  }

let job ?config ?(seed = default_seed) ~stopwatch ~rate_per_s ~ops () =
  let key =
    Printf.sprintf "fig6/%s/rate%g/ops%d"
      (if stopwatch then "sw" else "base")
      rate_per_s ops
  in
  Sw_runner.Job.make ~seed ~key (fun ~seed ->
      run ?config ~seed ~stopwatch ~rate_per_s ~ops ())
