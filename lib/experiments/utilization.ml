module Time = Sw_sim.Time
module Cloud = Stopwatch.Cloud
module Host = Stopwatch.Host

type outcome = {
  vms : int;
  completed_downloads : int;
  mean_latency_ms : float;
  p95_latency_ms : float;
  divergences : int;
}

let run ?config ?(seed = 0x07117AL) ~machines ~capacity ~vms ~file_bytes ~duration
    () =
  let plan =
    match Sw_placement.Placement.theorem2_place ~n:machines ~c:capacity ~k:vms with
    | Ok plan -> plan
    | Error reason -> invalid_arg ("Utilization.run: " ^ reason)
  in
  let cloud = Cloud.create ?config ~seed ~machines () in
  let deployments = Cloud.deploy_plan cloud ~plan ~app:(Sw_apps.Http.server ()) in
  let latencies = Sw_sim.Samples.create () in
  let completed = ref 0 in
  (* One client per VM, downloading the file in a closed loop. *)
  List.iter
    (fun d ->
      let client = Cloud.add_host cloud () in
      let tcp = Sw_apps.Tcp_host.attach client () in
      let rec download () =
        Sw_apps.Http.download tcp ~dst:(Cloud.vm_address d)
          ~file:(Cloud.vm_id d) ~size:file_bytes
          ~on_done:(fun ~elapsed_ms ->
            Sw_sim.Samples.add latencies elapsed_ms;
            incr completed;
            Host.after client (Time.ms 20) download)
          ()
      in
      download ())
    deployments;
  Cloud.run cloud ~until:duration;
  let divergences =
    List.fold_left (fun acc d -> acc + Cloud.divergences d) 0 deployments
  in
  {
    vms;
    completed_downloads = !completed;
    mean_latency_ms = Sw_sim.Samples.mean latencies;
    p95_latency_ms =
      (if Sw_sim.Samples.count latencies = 0 then nan
       else Sw_sim.Samples.percentile latencies 0.95);
    divergences;
  }
