(** Utilisation under load: Sec. VIII's placement bound exercised as a real
    workload, not just combinatorics.

    A cloud of [machines] machines runs [vms] StopWatch guest VMs placed by
    the Theorem 2 construction (three replicas each, pairwise edge-disjoint
    coresidency), every guest serving HTTP; one client per VM downloads a
    file repeatedly for the measurement window. As [vms] approaches the
    Theorem 2 bound the machines fill up (each hosting up to [c] replica
    slices, sharing Dom0/NIC/disk), and the experiment reports how much the
    added coresidency costs — the price of the Θ(cn) utilisation the paper
    claims over one-VM-per-machine isolation. *)

type outcome = {
  vms : int;
  completed_downloads : int;
  mean_latency_ms : float;
  p95_latency_ms : float;
  divergences : int;
}

(** [run ?config ?seed ~machines ~capacity ~vms ~file_bytes ~duration ()].
    Requires [machines = 3 mod 6] and [vms] within the Theorem 2 bound. *)
val run :
  ?config:Sw_vmm.Config.t ->
  ?seed:int64 ->
  machines:int ->
  capacity:int ->
  vms:int ->
  file_bytes:int ->
  duration:Sw_sim.Time.t ->
  unit ->
  outcome
