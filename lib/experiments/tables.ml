let row ~width cells =
  print_string
    (String.concat "  " (List.map (fun c -> Printf.sprintf "%*s" width c) cells));
  print_newline ()

let header ~width cells =
  row ~width cells;
  let dashes = List.map (fun c -> String.make (Stdlib.min width (String.length c + 2)) '-') cells in
  row ~width dashes

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=');
  flush stdout

let subsection title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-');
  flush stdout

let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let f0 x = Printf.sprintf "%.0f" x
