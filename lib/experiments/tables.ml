let row ?(fmt = Format.std_formatter) ~width cells =
  Format.fprintf fmt "%s@."
    (String.concat "  "
       (List.map (fun c -> Printf.sprintf "%*s" width c) cells))

let header ?(fmt = Format.std_formatter) ~width cells =
  row ~fmt ~width cells;
  let dashes =
    List.map
      (fun c -> String.make (Stdlib.min width (String.length c + 2)) '-')
      cells
  in
  row ~fmt ~width dashes

let section ?(fmt = Format.std_formatter) title =
  Format.fprintf fmt "@\n%s@\n%s@." title (String.make (String.length title) '=')

let subsection ?(fmt = Format.std_formatter) title =
  Format.fprintf fmt "@\n%s@\n%s@." title (String.make (String.length title) '-')

let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let f0 x = Printf.sprintf "%.0f" x
