(** Small helpers for printing aligned benchmark tables. *)

(** [row cells] prints one row of fixed-width cells. *)
val row : width:int -> string list -> unit

val header : width:int -> string list -> unit

(** [section title] prints a banner. *)
val section : string -> unit

val subsection : string -> unit

(** Format a float compactly. *)
val f2 : float -> string

val f1 : float -> string
val f0 : float -> string
