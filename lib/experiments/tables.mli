(** Small helpers for printing aligned benchmark tables.

    Every printer takes an optional [?fmt] formatter (default
    [Format.std_formatter]) so tests can capture table output with
    [Format.str_formatter] instead of scraping stdout. *)

(** [row cells] prints one row of fixed-width cells. *)
val row : ?fmt:Format.formatter -> width:int -> string list -> unit

val header : ?fmt:Format.formatter -> width:int -> string list -> unit

(** [section title] prints a banner. *)
val section : ?fmt:Format.formatter -> string -> unit

val subsection : ?fmt:Format.formatter -> string -> unit

(** Format a float compactly. *)
val f2 : float -> string

val f1 : float -> string
val f0 : float -> string
