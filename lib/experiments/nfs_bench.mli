(** Driver for the Fig. 6 NFS experiments: an nhfsstone-style load generator
    (5 client processes, the paper's op mix) against a cloud-resident NFS
    server. *)

type outcome = {
  mean_latency_ms : float;
  completed : int;
  issued : int;
  client_to_server_per_op : float;  (** TCP packets, Fig. 6(b). *)
  server_to_client_per_op : float;
  divergences : int;
  metrics : Sw_obs.Snapshot.t;  (** Full cloud metrics snapshot. *)
}

val run :
  ?config:Sw_vmm.Config.t ->
  ?seed:int64 ->
  stopwatch:bool ->
  rate_per_s:float ->
  ops:int ->
  unit ->
  outcome

(** [job ?config ?seed ~stopwatch ~rate_per_s ~ops ()] is one Fig. 6 point
    as a runner job (seed fixed at construction), so load sweeps can shard
    across a {!Sw_runner.Pool}. *)
val job :
  ?config:Sw_vmm.Config.t ->
  ?seed:int64 ->
  stopwatch:bool ->
  rate_per_s:float ->
  ops:int ->
  unit ->
  outcome Sw_runner.Job.t

(** The paper's offered-load sweep (ops/s). *)
val paper_rates : float list

(** The NFS experiments run with delta_n at the low end of the paper's
    observed 7-12 ms range. *)
val nfs_config : Sw_vmm.Config.t
