module Time = Sw_sim.Time
module Cloud = Stopwatch.Cloud

type outcome = {
  runtime_ms : float;
  disk_interrupts : int;
  delta_d_violations : int;
  divergences : int;
  metrics : Sw_obs.Snapshot.t;
}

let parsec_config = { Sw_vmm.Config.default with Sw_vmm.Config.delta_d = Time.ms 8 }

let default_seed = 0x9A25ECL

let run ?(config = parsec_config) ?(seed = default_seed) ~stopwatch profile =
  let cloud = Cloud.create ~config ~seed ~machines:3 () in
  let collector = Cloud.add_host cloud () in
  let done_at = ref nan in
  Stopwatch.Host.set_handler collector (fun pkt ->
      match pkt.Sw_net.Packet.payload with
      | Sw_apps.Parsec.Job_done _ ->
          if Float.is_nan !done_at then
            done_at := Time.to_float_ms (Stopwatch.Host.now collector)
      | _ -> ());
  let app =
    Sw_apps.Parsec.app profile ~collector:(Stopwatch.Host.address collector)
  in
  let d =
    if stopwatch then Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app
    else Cloud.deploy_baseline cloud ~on:0 ~app
  in
  (* Stop soon after the job reports completion instead of simulating a
     fixed horizon of idle spinning. *)
  let rec advance elapsed_ms =
    if Float.is_nan !done_at && elapsed_ms < 120_000 then begin
      Cloud.run_span cloud (Time.ms 250);
      advance (elapsed_ms + 250)
    end
  in
  advance 0;
  let inst = List.hd (Cloud.replicas d) in
  let metrics = Cloud.metrics_snapshot cloud in
  let prefix = Sw_vmm.Vmm.metric_prefix inst in
  {
    runtime_ms = !done_at;
    disk_interrupts =
      Sw_obs.Snapshot.counter metrics (prefix ^ ".disk_interrupts");
    delta_d_violations =
      Sw_obs.Snapshot.counter metrics (prefix ^ ".delta_d_violations");
    divergences =
      Sw_obs.Snapshot.counter metrics
        (Printf.sprintf "vm%d.divergences" (Cloud.vm_id d));
    metrics;
  }

let job ?config ?(seed = default_seed) ~stopwatch profile =
  let key =
    Printf.sprintf "fig7/%s/%s"
      (if stopwatch then "sw" else "base")
      profile.Sw_apps.Parsec.name
  in
  Sw_runner.Job.make ~seed ~key (fun ~seed ->
      run ?config ~seed ~stopwatch profile)
