module Time = Sw_sim.Time
module Cloud = Stopwatch.Cloud

type protocol = Http | Udp

type outcome = {
  elapsed_ms : float;
  runs : float list;
  divergences : int;
}

let paper_sizes = [ 1_024; 10_240; 102_400; 1_048_576; 10_485_760 ]

let one ?config ~seed ~protocol ~stopwatch ~size_bytes () =
  let cloud = Cloud.create ?config ~seed ~machines:3 () in
  let app =
    match protocol with
    | Http -> Sw_apps.Http.server ()
    | Udp -> Sw_apps.Udp_file.server ()
  in
  let d =
    if stopwatch then Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app
    else Cloud.deploy_baseline cloud ~on:0 ~app
  in
  let client = Cloud.add_host cloud () in
  let result = ref nan in
  (match protocol with
  | Http ->
      let tcp = Sw_apps.Tcp_host.attach client () in
      Sw_apps.Http.download tcp ~dst:(Cloud.vm_address d) ~file:1 ~size:size_bytes
        ~on_done:(fun ~elapsed_ms -> result := elapsed_ms)
        ()
  | Udp ->
      Sw_apps.Udp_file.fetch client ~dst:(Cloud.vm_address d) ~file:1
        ~size:size_bytes
        ~on_done:(fun ~elapsed_ms ~naks:_ -> result := elapsed_ms)
        ());
  (* Run in short spans and stop as soon as the transfer completes, so idle
     guests don't spin through a long fixed horizon. 120 s caps even a 10 MB
     window-limited StopWatch download. *)
  let rec advance elapsed_ms =
    if Float.is_nan !result && elapsed_ms < 120_000 then begin
      Cloud.run_span cloud (Time.ms 250);
      advance (elapsed_ms + 250)
    end
  in
  advance 0;
  (!result, Cloud.divergences d)

let run ?config ?(seed = 0xF16_5L) ~protocol ~stopwatch ~size_bytes ~runs () =
  if runs < 1 then invalid_arg "File_transfer.run: need >= 1 run";
  let results =
    List.init runs (fun i ->
        one ?config
          ~seed:(Int64.add seed (Int64.of_int (i * 7919)))
          ~protocol ~stopwatch ~size_bytes ())
  in
  let times = List.map fst results in
  let divergences = List.fold_left (fun acc (_, d) -> acc + d) 0 results in
  {
    elapsed_ms = List.fold_left ( +. ) 0. times /. float_of_int runs;
    runs = times;
    divergences;
  }
