module Time = Sw_sim.Time
module Cloud = Stopwatch.Cloud
module Job = Sw_runner.Job
module Runner = Sw_runner.Runner

type protocol = Http | Udp

type outcome = {
  elapsed_ms : float;
  runs : float list;
  divergences : int;
  failed_runs : Runner.failure list;
  metrics : Sw_obs.Snapshot.t;
}

let paper_sizes = [ 1_024; 10_240; 102_400; 1_048_576; 10_485_760 ]

let protocol_name = function Http -> "http" | Udp -> "udp"

let one ?config ~seed ~protocol ~stopwatch ~size_bytes () =
  let cloud = Cloud.create ?config ~seed ~machines:3 () in
  let app =
    match protocol with
    | Http -> Sw_apps.Http.server ()
    | Udp -> Sw_apps.Udp_file.server ()
  in
  let d =
    if stopwatch then Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app
    else Cloud.deploy_baseline cloud ~on:0 ~app
  in
  let client = Cloud.add_host cloud () in
  let result = ref nan in
  (match protocol with
  | Http ->
      let tcp = Sw_apps.Tcp_host.attach client () in
      Sw_apps.Http.download tcp ~dst:(Cloud.vm_address d) ~file:1 ~size:size_bytes
        ~on_done:(fun ~elapsed_ms -> result := elapsed_ms)
        ()
  | Udp ->
      Sw_apps.Udp_file.fetch client ~dst:(Cloud.vm_address d) ~file:1
        ~size:size_bytes
        ~on_done:(fun ~elapsed_ms ~naks:_ -> result := elapsed_ms)
        ());
  (* Run in short spans and stop as soon as the transfer completes, so idle
     guests don't spin through a long fixed horizon. 120 s caps even a 10 MB
     window-limited StopWatch download. *)
  let rec advance elapsed_ms =
    if Float.is_nan !result && elapsed_ms < 120_000 then begin
      Cloud.run_span cloud (Time.ms 250);
      advance (elapsed_ms + 250)
    end
  in
  advance 0;
  (!result, Cloud.divergences d, Cloud.metrics_snapshot cloud)

let jobs ?config ?(seed = 0xF16_5L) ~protocol ~stopwatch ~size_bytes ~runs () =
  if runs < 1 then invalid_arg "File_transfer.jobs: need >= 1 run";
  List.init runs (fun i ->
      (* The historical per-run seed scheme, fixed per job before dispatch:
         bit-compatible with the old sequential driver. *)
      let run_seed = Int64.add seed (Int64.of_int (i * 7919)) in
      let key =
        Printf.sprintf "fig5/%s/%s/%dB/run%d" (protocol_name protocol)
          (if stopwatch then "sw" else "base")
          size_bytes i
      in
      Job.make ~seed:run_seed ~key (fun ~seed ->
          one ?config ~seed ~protocol ~stopwatch ~size_bytes ()))

let collect outcomes =
  let results = Runner.successes outcomes in
  let failed_runs = Runner.failures outcomes in
  if results = [] then
    {
      elapsed_ms = nan;
      runs = [];
      divergences = 0;
      failed_runs;
      metrics = Sw_obs.Snapshot.empty;
    }
  else
    let times = List.map (fun (t, _, _) -> t) results in
    let divergences = List.fold_left (fun acc (_, d, _) -> acc + d) 0 results in
    {
      elapsed_ms =
        List.fold_left ( +. ) 0. times /. float_of_int (List.length times);
      runs = times;
      divergences;
      failed_runs;
      metrics =
        Sw_obs.Snapshot.merge_all (List.map (fun (_, _, m) -> m) results);
    }

let run ?config ?seed ?pool ~protocol ~stopwatch ~size_bytes ~runs () =
  collect
    (Runner.map ?pool (jobs ?config ?seed ~protocol ~stopwatch ~size_bytes ~runs ()))
