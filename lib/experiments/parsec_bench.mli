(** Driver for the Fig. 7 PARSEC experiments. *)

type outcome = {
  runtime_ms : float;
  disk_interrupts : int;
  delta_d_violations : int;
  divergences : int;
  metrics : Sw_obs.Snapshot.t;  (** Full cloud metrics snapshot. *)
}

(** Config used by Fig. 7: delta_d at the low end of the paper's 8-15 ms
    range (their disk's maximum observed access time was small for these
    workloads' mostly-small requests). *)
val parsec_config : Sw_vmm.Config.t

val run :
  ?config:Sw_vmm.Config.t ->
  ?seed:int64 ->
  stopwatch:bool ->
  Sw_apps.Parsec.profile ->
  outcome

(** [job ?config ?seed ~stopwatch profile] is one Fig. 7 row as a runner
    job (seed fixed at construction). *)
val job :
  ?config:Sw_vmm.Config.t ->
  ?seed:int64 ->
  stopwatch:bool ->
  Sw_apps.Parsec.profile ->
  outcome Sw_runner.Job.t
