type row = {
  label : string;
  replicas : int;
  colluder : bool;
  observations : (float * float) list;
  divergences : int;
  loaded_replica_share : float;
}

let table ?(duration = Sw_sim.Time.s 40) ?(ping_rate = 40.) ?(seed = 0xC0_11D3L) () =
  let base =
    {
      Scenario.default with
      Scenario.duration;
      ping_rate_per_s = ping_rate;
      seed;
    }
  in
  let detect spec =
    let null = Scenario.run { spec with Scenario.victim = false } in
    let alt = Scenario.run { spec with Scenario.victim = true } in
    (* The shared leak-detector API; same values the bespoke sweep used to
       produce (the chi-square detector carries that exact computation). *)
    let chi = Sw_leak.Detector.chi_square () in
    let observations =
      List.map
        (fun c ->
          ( c,
            chi.Sw_leak.Detector.observations_needed
              ~null:null.Scenario.attacker_inter_delivery_ms
              ~alt:alt.Scenario.attacker_inter_delivery_ms ~confidence:c ))
        Sw_leak.Detector.confidence_grid
    in
    let share =
      match alt.Scenario.median_share with [||] -> nan | a -> a.(0)
    in
    (observations, alt.Scenario.divergences, share)
  in
  List.map
    (fun (label, replicas, colluder) ->
      let spec = Scenario.with_replicas { base with Scenario.colluder } replicas in
      let observations, divergences, loaded_replica_share = detect spec in
      { label; replicas; colluder; observations; divergences; loaded_replica_share })
    [
      ("3 replicas, no colluder", 3, false);
      ("3 replicas, colluder on shared machine", 3, true);
      ("5 replicas, colluder on shared machine", 5, true);
    ]
