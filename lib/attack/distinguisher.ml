module Dist = Sw_stats.Dist
module Chi_square = Sw_stats.Chi_square
module Detector = Sw_leak.Detector

let analytic ~null ~alt ?(bins = 10) ~confidence () =
  let edges = Chi_square.equiprobable_edges null ~bins in
  let null_probs = Chi_square.bin_probs ~edges null.Dist.cdf in
  let alt_probs = Chi_square.bin_probs ~edges alt.Dist.cdf in
  Chi_square.observations_needed ~null_probs ~alt_probs ~confidence

(* The empirical computations live in Sw_leak.Detector now (chi_square and
   ks instances); these wrappers keep the historical entry points — and
   their exact values — for the figure benches. *)
let empirical ~null ~alt ?(bins = 10) ~confidence () =
  if Array.length null = 0 || Array.length alt = 0 then
    invalid_arg "Distinguisher.empirical: empty sample";
  (Detector.chi_square ~bins ()).Detector.observations_needed ~null ~alt
    ~confidence

let confidence_grid = Detector.confidence_grid

let sweep_analytic ~null ~alt ?bins () =
  List.map (fun c -> (c, analytic ~null ~alt ?bins ~confidence:c ())) confidence_grid

let sweep_empirical ~null ~alt ?bins () =
  List.map (fun c -> (c, empirical ~null ~alt ?bins ~confidence:c ())) confidence_grid

let ks_observations_needed ~null ~alt ~confidence =
  if Array.length null = 0 || Array.length alt = 0 then
    invalid_arg "Distinguisher.ks_observations_needed: empty sample";
  (Detector.ks ()).Detector.observations_needed ~null ~alt ~confidence
