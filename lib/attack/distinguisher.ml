module Dist = Sw_stats.Dist
module Chi_square = Sw_stats.Chi_square

let analytic ~null ~alt ?(bins = 10) ~confidence () =
  let edges = Chi_square.equiprobable_edges null ~bins in
  let null_probs = Chi_square.bin_probs ~edges null.Dist.cdf in
  let alt_probs = Chi_square.bin_probs ~edges alt.Dist.cdf in
  Chi_square.observations_needed ~null_probs ~alt_probs ~confidence

let quantile_edges samples ~bins =
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  Array.init (bins - 1) (fun i ->
      let pos = float_of_int (i + 1) /. float_of_int bins *. float_of_int (n - 1) in
      let j = int_of_float (Float.floor pos) in
      if j >= n - 1 then sorted.(n - 1)
      else begin
        let frac = pos -. float_of_int j in
        sorted.(j) +. (frac *. (sorted.(j + 1) -. sorted.(j)))
      end)

let empirical ~null ~alt ?(bins = 10) ~confidence () =
  if Array.length null = 0 || Array.length alt = 0 then
    invalid_arg "Distinguisher.empirical: empty sample";
  let edges = quantile_edges null ~bins in
  let to_probs counts total =
    Array.map (fun c -> c /. float_of_int total) counts
  in
  let null_probs =
    to_probs (Chi_square.bin_counts ~edges null) (Array.length null)
  in
  let alt_probs = to_probs (Chi_square.bin_counts ~edges alt) (Array.length alt) in
  Chi_square.observations_needed ~null_probs ~alt_probs ~confidence

let confidence_grid = [ 0.70; 0.75; 0.80; 0.85; 0.90; 0.95; 0.99 ]

let sweep_analytic ~null ~alt ?bins () =
  List.map (fun c -> (c, analytic ~null ~alt ?bins ~confidence:c ())) confidence_grid

let sweep_empirical ~null ~alt ?bins () =
  List.map (fun c -> (c, empirical ~null ~alt ?bins ~confidence:c ())) confidence_grid

let ks_observations_needed ~null ~alt ~confidence =
  if Array.length null = 0 || Array.length alt = 0 then
    invalid_arg "Distinguisher.ks_observations_needed: empty sample";
  let d = Sw_stats.Ks.two_sample null alt in
  if d <= 0. then infinity
  else begin
    (* One-sample critical value c(alpha) = sqrt(-ln(alpha/2) / 2); reject
       when D_n > c / sqrt(n), so n = (c / D)^2. *)
    let alpha = 1. -. confidence in
    let c = Float.sqrt (-.Float.log (alpha /. 2.) /. 2.) in
    Float.max 1. ((c /. d) ** 2.)
  end
