module Time = Sw_sim.Time
module Address = Sw_net.Address
module Cloud = Stopwatch.Cloud
module Host = Stopwatch.Host
module Probe = Sw_apps.Probe

type spec = {
  config : Sw_vmm.Config.t;
  baseline : bool;
  victim : bool;
  colluder : bool;
  colluder_burst : int;
  ping_rate_per_s : float;
  duration : Time.t;
  seed : int64;
  background_rate_per_s : float;
  faults : Sw_fault.Schedule.t;
  trace : Sw_obs.Trace.t option;
  profile : Sw_obs.Profile.t option;
  shards : int;
}

let default =
  {
    config = Sw_vmm.Config.default;
    baseline = false;
    victim = false;
    colluder = false;
    colluder_burst = 18;
    ping_rate_per_s = 40.;
    duration = Time.s 60;
    seed = 0xA77ACCL;
    background_rate_per_s = 0.;
    faults = Sw_fault.Schedule.empty;
    trace = None;
    profile = None;
    shards = 1;
  }

(* The whole testbed is one partition atom — the attacker shares machine
   m-1 with the victim and machine 0 with the colluder, so no machine
   block boundary can separate the deployments. Any requested shard count
   therefore clamps to 1 instead of tripping the partition rule. *)
let effective_shards spec = if spec.shards > 1 then 1 else max 1 spec.shards

let with_replicas spec m =
  { spec with config = { spec.config with Sw_vmm.Config.replicas = m } }

type result = {
  attacker_inter_delivery_ms : float array;
  observer_inter_arrival_ms : float array;
  deliveries : int;
  divergences : int;
  median_share : float array;
  metrics : Sw_obs.Snapshot.t;
}

(* Machine layout (StopWatch mode, m replicas):
   - attacker on 0 .. m-1
   - victim on m-1 .. 2m-2        (shares exactly machine m-1)
   - colluder on 0, 2m-1 .. 3m-3  (shares exactly machine 0)
   In baseline mode everything lands on machine 0. *)
let run spec =
  let m = spec.config.Sw_vmm.Config.replicas in
  let machines = if spec.baseline then 1 else (3 * m) - 2 in
  let cloud =
    Cloud.create ~config:spec.config ~seed:spec.seed ?profile:spec.profile
      ~machines ~shards:(effective_shards spec) ()
  in
  (* Attach before deploying so the edge nodes and every replica emit into
     the same sink; recording starts immediately. *)
  (match spec.trace with
  | Some tr ->
      Cloud.attach_trace cloud tr;
      Sw_obs.Trace.enable tr
  | None -> ());
  let deploy_guest ~on ~app =
    if spec.baseline then Cloud.deploy_baseline cloud ~on:0 ~app
    else Cloud.deploy cloud ~on ~app
  in
  let pinger = Cloud.add_host cloud () in
  let observer = Cloud.add_host cloud () in
  let victim_sink = Cloud.add_host cloud () in
  let attacker =
    deploy_guest
      ~on:(List.init m (fun i -> i))
      ~app:(Probe.receiver ~echo_to:(Host.address observer) ~echo_every:1 ())
  in
  if spec.victim then begin
    let on = List.init m (fun i -> m - 1 + i) in
    ignore
      (deploy_guest ~on
         ~app:
           (Probe.streamer
              ~sink:(Host.address victim_sink)
              ~period:(Time.ms 5) ~burst:72 ~bytes_per_packet:1400 ~disk_every:2 ()))
  end;
  if spec.colluder then begin
    let on = 0 :: List.init (m - 1) (fun i -> (2 * m) - 1 + i) in
    ignore
      (deploy_guest ~on
         ~app:
           (Probe.load_generator
              ~sink:(Host.address victim_sink)
              ~period:(Time.ms 1) ~burst:spec.colluder_burst ~disk_every:1 ()))
  end;
  if spec.background_rate_per_s > 0. then
    Cloud.start_background cloud ~rate_per_s:spec.background_rate_per_s ();
  if spec.faults <> Sw_fault.Schedule.empty then
    ignore (Cloud.install_faults cloud spec.faults);
  (* Poisson ping stream toward the attacker VM. *)
  let rng = Sw_sim.Prng.create (Int64.add spec.seed 17L) in
  let attacker_addr = Cloud.vm_address attacker in
  let count = ref 0 in
  let rec ping () =
    let gap = Sw_sim.Prng.exponential rng ~rate:spec.ping_rate_per_s in
    Host.after pinger (Time.of_float_s gap) (fun () ->
        incr count;
        Host.send pinger ~dst:attacker_addr ~size:100 (Probe.Probe_ping !count);
        ping ())
  in
  ping ();
  Cloud.run cloud ~until:spec.duration;
  (* All replicas observe identical virtual delivery times; read the one
     coresident with the victim when present, else the first. *)
  let instance =
    let observed_machine = if spec.baseline then 0 else m - 1 in
    match Cloud.replica_on attacker ~machine:observed_machine with
    | Some i -> i
    | None -> List.hd (Cloud.replicas attacker)
  in
  let metrics = Cloud.metrics_snapshot cloud in
  let prefix = Sw_vmm.Vmm.metric_prefix instance in
  let median_share =
    if spec.baseline then [||]
    else begin
      (* Fractional median credits live as [Sum] metrics, one per proposer. *)
      let counts =
        Array.init m (fun k ->
            Sw_obs.Snapshot.sum metrics
              (Printf.sprintf "%s.median.source.r%d" prefix k))
      in
      let total = Array.fold_left ( +. ) 0. counts in
      if total = 0. then counts else Array.map (fun c -> c /. total) counts
    end
  in
  {
    attacker_inter_delivery_ms = Sw_vmm.Vmm.inter_delivery_virts_ms instance;
    observer_inter_arrival_ms = Host.inter_arrival_ms observer;
    deliveries = Sw_obs.Snapshot.counter metrics (prefix ^ ".net_deliveries");
    divergences =
      Sw_obs.Snapshot.counter metrics
        (Printf.sprintf "vm%d.divergences" (Cloud.vm_id attacker));
    median_share;
    metrics;
  }

(* --- Leak-audit observation extraction --------------------------------- *)

let headline_key = "attacker/ping-latency"

(* Successive-difference jitter: the dispersion view of a timing series. A
   contention channel that reshapes a distribution without moving its mean
   (pacing pins the mean of gaps, uniform arrival pins the mean of waits)
   still moves the mean of |x(i+1) - x(i)|, which puts it in reach of the
   location-based detectors. *)
let jitter xs =
  if Array.length xs < 2 then [||]
  else Array.init (Array.length xs - 1) (fun i -> abs_float (xs.(i + 1) -. xs.(i)))

let leak_series spec =
  let tr = Sw_obs.Trace.create () in
  let spec = { spec with trace = Some tr } in
  let r = run spec in
  (* The attacker is deployed first, so its VM id is 0; its ingress-latency
     series is promoted to the headline key (the pinger is the attack
     apparatus's own agent, so send times are known to the attacker even
     though the ingress stamp is not guest-visible). *)
  let lineage =
    List.map
      (fun ((vm, mech), xs) ->
        if vm = 0 && mech = Sw_obs.Lineage.Ingress_latency then
          (headline_key, xs)
        else
          ( Printf.sprintf "vm%d/%s" vm (Sw_obs.Lineage.mechanism_label mech),
            xs ))
      (Sw_obs.Lineage.observations (Sw_obs.Lineage.of_trace tr))
  in
  let jitter_series =
    match List.assoc_opt headline_key lineage with
    | Some lat -> [ ("attacker/ping-jitter", jitter lat) ]
    | None -> []
  in
  (("attacker/inter-delivery", r.attacker_inter_delivery_ms) :: lineage)
  @ jitter_series
