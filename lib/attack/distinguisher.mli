(** The attacker's statistical test: how many timing observations are needed
    to tell "coresident with the victim" from "not coresident", at a given
    confidence — the y-axis of Figs. 1(b), 1(c) and 4(b). *)

(** [analytic ~null ~alt ~bins ~confidence] bins the null distribution into
    [bins] equiprobable bins and returns the expected observation count for a
    chi-square rejection of the null when sampling from [alt]. *)
val analytic :
  null:Sw_stats.Dist.t -> alt:Sw_stats.Dist.t -> ?bins:int -> confidence:float -> unit -> float

(** [empirical ~null ~alt ~bins ~confidence] is the same computation from raw
    samples: bin edges are the null sample's quantiles; bin probabilities are
    the empirical frequencies. Requires both samples non-empty. A thin
    wrapper over [Sw_leak.Detector.chi_square] — new callers should use the
    detector API directly, which also carries verdicts and p-values. *)
val empirical :
  null:float array -> alt:float array -> ?bins:int -> confidence:float -> unit -> float

(** Convenience sweep over the paper's confidence grid
    (0.70, 0.75, ..., 0.95, 0.99). *)
val confidence_grid : float list

val sweep_analytic :
  null:Sw_stats.Dist.t -> alt:Sw_stats.Dist.t -> ?bins:int -> unit -> (float * float) list

val sweep_empirical :
  null:float array -> alt:float array -> ?bins:int -> unit -> (float * float) list

(** Kolmogorov–Smirnov alternative: observations until the two-sample KS
    statistic of an [n]-sample from the alternative exceeds the critical
    value at [confidence] against the null — a cross-check that the defence
    does not merely fool the chi-square binning. Wraps
    [Sw_leak.Detector.ks]. *)
val ks_observations_needed :
  null:float array -> alt:float array -> confidence:float -> float
