(** Full-simulation attack scenarios (paper Secs. V-B and IX; Fig. 4).

    The attacker VM receives a Poisson packet stream from an external pinger
    and observes inter-delivery times on its virtual clock; an external
    observer host receives the attacker's echoes and measures real
    inter-arrival times. A victim VM, when present, shares exactly one
    machine with the attacker and continuously serves a file (disk + NIC +
    device-model CPU load). Optionally a collaborating attacker VM shares a
    different one of the attacker's machines and generates heavy load there
    to marginalise that replica from the median (Sec. IX). *)

type spec = {
  config : Sw_vmm.Config.t;
  baseline : bool;  (** Unmodified Xen instead of StopWatch. *)
  victim : bool;
  colluder : bool;
  colluder_burst : int;
      (** Packets per 1 ms burst the colluder pushes through its machine's
          device models; sized to out-load the victim (Sec. IX). *)
  ping_rate_per_s : float;
  duration : Sw_sim.Time.t;
  seed : int64;
  background_rate_per_s : float;  (** ARP-like broadcast noise; 0 disables. *)
  faults : Sw_fault.Schedule.t;
      (** Deterministic fault schedule installed against the scenario's
          cloud before it runs; {!Sw_fault.Schedule.empty} (the default)
          disables injection entirely. *)
  trace : Sw_obs.Trace.t option;
      (** Cloud-wide trace sink, attached ({!Stopwatch.Cloud.attach_trace})
          and enabled before anything is deployed; [None] (the default)
          records nothing and costs one branch per would-be event. *)
  profile : Sw_obs.Profile.t option;
      (** Wall-clock self-profiling instance handed to the engine; [None]
          (the default) times nothing. *)
  shards : int;
      (** Requested shard count, accepted for DSL/CLI uniformity but
          clamped to 1 (see {!effective_shards}): the attack layout is a
          single partition atom. Default [1]. *)
}

val default : spec

(** The shard count {!run} actually uses — always [1]: attacker, victim,
    and colluder deliberately share machines, so no partition boundary
    can separate their replica groups. *)
val effective_shards : spec -> int

(** [with_replicas spec m] adjusts the attacker/victim replica count
    (Sec. IX's 3-vs-5 comparison). *)
val with_replicas : spec -> int -> spec

type result = {
  attacker_inter_delivery_ms : float array;
      (** Virtual inter-delivery times at the attacker (internal channel). *)
  observer_inter_arrival_ms : float array;
      (** Real inter-arrival times at the external observer. *)
  deliveries : int;
  divergences : int;
  median_share : float array;
      (** Fraction of deliveries whose median adopted each replica's
          proposal; replica 0 is the colluder-loaded machine, replica m-1
          the victim-shared one. Empty in baseline mode. *)
  metrics : Sw_obs.Snapshot.t;
      (** Full metrics snapshot of the scenario's cloud, for export and for
          reading further counters. *)
}

val run : spec -> result

(** Key under which {!leak_series} reports the attacker's end-to-end ping
    latency (ingress stamp → delivery on the guest's virtual clock) — the
    headline attacker-observable series of a leak audit. The pinger is the
    attack apparatus's own agent, so send times are known to the attacker
    even though the ingress stamp is not guest-visible. *)
val headline_key : string

(** Successive-difference jitter [|x(i+1) - x(i)|] — the dispersion view
    of a timing series. A contention channel that reshapes a distribution
    without moving its mean still moves the mean of the jitter, putting it
    in reach of location-based detectors (Welch, Cohen's d). Empty for
    series shorter than 2. *)
val jitter : float array -> float array

(** [leak_series spec] runs the scenario with a trace sink attached and
    distils every leak-audit observation series, keyed for lineage
    attribution: [attacker/inter-delivery] (guest-visible gaps),
    {!headline_key} and its [attacker/ping-jitter] dispersion view, and
    one [vmN/<mechanism>] series per {!Sw_obs.Lineage.mechanism}. Returns
    plain data only, so results marshal across runner domains. *)
val leak_series : spec -> (string * float array) list
