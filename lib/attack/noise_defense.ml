module Dist = Sw_stats.Dist
module Order_stats = Sw_stats.Order_stats

type row = {
  confidence : float;
  observations : float;
  b : float;
  delay_stopwatch : float;
  delay_stopwatch_victim : float;
  delay_noise : float;
  delay_noise_victim : float;
}

(* P(|X1 - X'1| <= d) in closed form for independent exponentials:
   P(X - X' > d) = l'/(l+l') e^(-l d) and symmetrically. *)
let abs_diff_cdf ~lambda ~lambda' d =
  if d < 0. then 0.
  else
    1.
    -. (lambda' /. (lambda +. lambda') *. Float.exp (-.lambda *. d))
    -. (lambda /. (lambda +. lambda') *. Float.exp (-.lambda' *. d))

let delta_n_for ~lambda ~lambda' ~coverage =
  if coverage <= 0. || coverage >= 1. then
    invalid_arg "Noise_defense.delta_n_for: coverage must be in (0, 1)";
  let rec widen hi =
    if abs_diff_cdf ~lambda ~lambda' hi < coverage then widen (hi *. 2.) else hi
  in
  let hi = widen 1. in
  let rec bisect lo hi iter =
    if iter = 0 then (lo +. hi) /. 2.
    else begin
      let mid = (lo +. hi) /. 2. in
      if abs_diff_cdf ~lambda ~lambda' mid < coverage then bisect mid hi (iter - 1)
      else bisect lo mid (iter - 1)
    end
  in
  bisect 0. hi 80

(* Exponential + U(0, b) has the closed-form CDF
   F(z) = min(z,b)/b - e^(-l z) (e^(l min(z,b)) - 1) / (l b). *)
let exp_plus_uniform ~lambda ~b =
  if b <= 0. then Dist.exponential ~rate:lambda
  else begin
    let cdf z =
      if z <= 0. then 0.
      else begin
        let m = Float.min z b in
        (m /. b)
        -. (Float.exp (-.lambda *. z) *. (Float.exp (lambda *. m) -. 1.) /. (lambda *. b))
      end
    in
    {
      Dist.cdf;
      sample =
        (fun rng ->
          Sw_sim.Prng.exponential rng ~rate:lambda +. Sw_sim.Prng.uniform rng ~lo:0. ~hi:b);
      lo = 0.;
      hi = (Float.log 1e6 /. lambda) +. b;
    }
  end

let median_null ~lambda =
  let e = Dist.exponential ~rate:lambda in
  Order_stats.median_dist [| e; e; e |]

let median_victim ~lambda ~lambda' =
  let e = Dist.exponential ~rate:lambda in
  let e' = Dist.exponential ~rate:lambda' in
  Order_stats.median_dist [| e'; e; e |]

let compare ~lambda ~lambda' ?(bins = 10) ?confidences () =
  if lambda <= 0. || lambda' <= 0. then
    invalid_arg "Noise_defense.compare: rates must be positive";
  let confidences =
    match confidences with Some c -> c | None -> [ 0.70; 0.80; 0.90; 0.99 ]
  in
  let delta_n = delta_n_for ~lambda ~lambda' ~coverage:0.9999 in
  let null_sw = median_null ~lambda in
  let alt_sw = median_victim ~lambda ~lambda' in
  let delay_stopwatch = Dist.mean null_sw +. delta_n in
  let delay_stopwatch_victim = Dist.mean alt_sw +. delta_n in
  List.map
    (fun confidence ->
      let observations =
        Distinguisher.analytic ~null:null_sw ~alt:alt_sw ~bins ~confidence ()
      in
      (* The attacker's confidence after n observations under noise bound b:
         find min b such that the noise defence needs >= n observations. *)
      let needs b =
        Distinguisher.analytic
          ~null:(exp_plus_uniform ~lambda ~b)
          ~alt:(exp_plus_uniform ~lambda:lambda' ~b)
          ~bins ~confidence ()
      in
      let rec widen b = if needs b < observations then widen (b *. 2.) else b in
      let hi = widen 1. in
      let rec bisect lo hi iter =
        if iter = 0 then (lo +. hi) /. 2.
        else begin
          let mid = (lo +. hi) /. 2. in
          if needs mid < observations then bisect mid hi (iter - 1)
          else bisect lo mid (iter - 1)
        end
      in
      let b = if needs 0.0 >= observations then 0. else bisect 0. hi 40 in
      {
        confidence;
        observations;
        b;
        delay_stopwatch;
        delay_stopwatch_victim;
        delay_noise = (1. /. lambda) +. (b /. 2.);
        delay_noise_victim = (1. /. lambda') +. (b /. 2.);
      })
    confidences
