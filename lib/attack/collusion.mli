(** Collaborating attacker VMs (paper Sec. IX).

    A second attacker VM shares one machine with one replica of the first
    and generates heavy device-model/disk load there, trying to marginalise
    that replica from the median computations. In the simulation the attack
    "works" exactly as Sec. IX fears — at Dom0 saturation the loaded
    replica's proposals stop being adopted and the medians track the
    victim-coresident replica — but it also floods the synchrony-violation
    detector (paper footnote 4), supporting the paper's argument that the
    attack is hard to mount quietly. The defence's answer is more replicas:
    with five, marginalising one barely moves the median. *)

type row = {
  label : string;
  replicas : int;
  colluder : bool;
  observations : (float * float) list;
      (** (confidence, observations needed) to detect the victim. *)
  divergences : int;
  loaded_replica_share : float;
      (** Fraction of medians contributed by the colluder-loaded replica
          (1/m expected when unloaded; below that = marginalised). *)
}

(** [table ?duration ?ping_rate ?seed ()] runs the three comparisons:
    3 replicas without collusion, 3 with, 5 with. Each entry needs two
    simulations (victim present / absent). *)
val table :
  ?duration:Sw_sim.Time.t ->
  ?ping_rate:float ->
  ?seed:int64 ->
  unit ->
  row list
