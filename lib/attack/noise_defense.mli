(** The uniform-noise alternative defence and its comparison against
    StopWatch at equal protection (paper Appendix, Fig. 8).

    The alternative adds noise XN ~ U(0, b) to each event timing instead of
    replicating VMs. For a fair comparison the paper fixes the number of
    observations the attacker needs under StopWatch (to distinguish victim
    from no-victim at a given confidence) and finds the minimum [b] giving
    the attacker the same confidence after the same number of observations;
    expected delays of the two defences are then compared. *)

type row = {
  confidence : float;
  observations : float;  (** Observations needed under StopWatch. *)
  b : float;  (** Minimum uniform-noise bound matching that protection. *)
  delay_stopwatch : float;  (** E[X_(2:3) + delta_n], no victim. *)
  delay_stopwatch_victim : float;  (** E[X'_(2:3) + delta_n]. *)
  delay_noise : float;  (** E[X_1 + XN]. *)
  delay_noise_victim : float;  (** E[X'_1 + XN]. *)
}

(** [delta_n_for ~lambda ~lambda' ~coverage] is the smallest d with
    P(|X1 - X'1| <= d) >= coverage for X1 ~ Exp(lambda), X'1 ~ Exp(lambda')
    independent — the paper sets coverage = 0.9999. *)
val delta_n_for : lambda:float -> lambda':float -> coverage:float -> float

(** [compare ~lambda ~lambda' ?bins ?confidences ()] computes one row per
    confidence (default: the paper's grid for Fig. 8). *)
val compare :
  lambda:float ->
  lambda':float ->
  ?bins:int ->
  ?confidences:float list ->
  unit ->
  row list
