(** The front service guest application: a KV/content server behind the
    tiered {!Cache}, spoken over {!Sw_apps.Tcp_guest} keep-alive
    connections.

    One request class is a [(cls, cached, resp_bytes)] triple chosen by the
    client; the request names a key (Zipf-drawn client-side). A cached
    class consults the {!Cache}: a hit answers after the tier's hit cost, a
    miss pays the origin round-trip and then a disk read of the response
    body — so hit/miss asymmetry flows through the disk model and the
    StopWatch Δd offsets exactly like any other guest I/O. Uncached
    classes (large file fetches) go straight to disk.

    Deterministic by construction: state depends only on the delivered
    event stream, so all replicas of the service stay in lockstep. *)

type Sw_net.Packet.payload +=
  | Wl_get of {
      cls : int;  (** Request-class index (client-side mix position). *)
      key : int;
      seq : int;  (** Client-chosen correlation id, echoed back. *)
      resp_bytes : int;  (** Response body size. *)
      cached : bool;  (** Whether this class goes through the cache. *)
    }
  | Wl_resp of { seq : int; tier : int }
      (** [tier >= 0]: served from that cache tier; [-1]: origin (miss or
          uncached class). *)

type config = {
  cache : Cache.config;
  compute_branches : int64;  (** Per-request CPU cost (request parsing). *)
  header_bytes : int;  (** Response header overhead on the wire. *)
  tcp : Sw_apps.Tcp.config option;  (** [None] = {!Sw_apps.Tcp.default_config}. *)
}

val default_config : config

(** [server config] builds the guest application factory. *)
val server : config -> Sw_vm.App.factory
