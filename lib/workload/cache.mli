(** A tiered LRU front cache with asymmetric hit/miss service costs.

    Tier 0 is the smallest and fastest; an access that hits tier [i] pays
    that tier's [hit_cost] and promotes the key to the head of tier 0,
    with LRU overflow cascading down the tiers ([tier 0]'s tail demotes to
    [tier 1]'s head, and so on; the last tier's tail falls out entirely).
    A miss pays [origin_cost] {e before} the origin fetch itself (the
    guest models the fetch as a disk read), then inserts at tier 0.

    The hit/miss cost asymmetry is deliberate and documented as a timing
    channel of its own: a co-resident observer that can tell hits from
    misses learns which keys other tenants keep warm. The workload engine
    exposes exactly that asymmetry to the attack library.

    The cache is pure state machine — no randomness, no ambient time — so
    replicas driving one from identical event streams stay identical. *)

type tier = { capacity : int; hit_cost : Sw_sim.Time.t }

type config = {
  tiers : tier list;  (** Fastest first; must be non-empty. *)
  origin_cost : Sw_sim.Time.t;
      (** Origin round-trip paid on a miss before the backing fetch. *)
}

(** Raises [Invalid_argument] on an empty tier list, non-positive
    capacities, or negative costs. *)
val validate_config : config -> unit

type t

type outcome =
  | Hit of { tier : int; cost : Sw_sim.Time.t }
  | Miss of { cost : Sw_sim.Time.t }  (** [cost] is [origin_cost]. *)

val create : config -> t

(** [access t key] looks [key] up, updates recency/tier state, and reports
    where it was found. *)
val access : t -> int -> outcome

val hits : t -> int
val misses : t -> int

(** Currently resident keys, over all tiers. *)
val population : t -> int
