module Time = Sw_sim.Time
module Prng = Sw_sim.Prng

type t =
  | Constant of { rate_per_s : float }
  | Poisson of { rate_per_s : float }
  | Diurnal of { base_per_s : float; amplitude : float; period : Time.t }
  | Flash of {
      base_per_s : float;
      peak_per_s : float;
      at : Time.t;
      ramp : Time.t;
      hold : Time.t;
    }
  | Replay of { points : (Time.t * float) list }

let pi = 4. *. atan 1.

let validate = function
  | Constant { rate_per_s } | Poisson { rate_per_s } ->
      if rate_per_s < 0. then invalid_arg "Arrival: negative rate"
  | Diurnal { base_per_s; amplitude; period } ->
      if base_per_s < 0. then invalid_arg "Arrival: negative base rate";
      if amplitude < 0. || amplitude > 1. then
        invalid_arg "Arrival: amplitude outside [0, 1]";
      if Time.compare period Time.zero <= 0 then
        invalid_arg "Arrival: non-positive period"
  | Flash { base_per_s; peak_per_s; at; ramp; hold } ->
      if base_per_s < 0. then invalid_arg "Arrival: negative base rate";
      if peak_per_s < base_per_s then invalid_arg "Arrival: peak below base";
      if Time.is_negative at || Time.is_negative ramp || Time.is_negative hold
      then invalid_arg "Arrival: negative flash span"
  | Replay { points } ->
      let rec go = function
        | [] -> ()
        | (t, r) :: rest ->
            if Time.is_negative t then invalid_arg "Arrival: negative instant";
            if r < 0. then invalid_arg "Arrival: negative rate";
            (match rest with
            | (t', _) :: _ when Time.compare t' t <= 0 ->
                invalid_arg "Arrival: replay table not strictly increasing"
            | _ -> ());
            go rest
      in
      go points

(* The flash-crowd shape in [0, 1]: linear ramp up, plateau, symmetric ramp
   down. *)
let flash_shape ~at ~ramp ~hold t =
  let s = Time.to_float_s t in
  let t0 = Time.to_float_s at and r = Time.to_float_s ramp in
  let h = Time.to_float_s hold in
  if s <= t0 then 0.
  else if r > 0. && s < t0 +. r then (s -. t0) /. r
  else if s <= t0 +. r +. h then 1.
  else if r > 0. && s < t0 +. r +. h +. r then
    1. -. ((s -. (t0 +. r +. h)) /. r)
  else 0.

let rate_at t now =
  match t with
  | Constant { rate_per_s } | Poisson { rate_per_s } -> rate_per_s
  | Diurnal { base_per_s; amplitude; period } ->
      let x = Time.to_float_s now /. Time.to_float_s period in
      base_per_s *. (1. +. (amplitude *. sin (2. *. pi *. x)))
  | Flash { base_per_s; peak_per_s; at; ramp; hold } ->
      base_per_s
      +. ((peak_per_s -. base_per_s) *. flash_shape ~at ~ramp ~hold now)
  | Replay { points } ->
      let rec go rate = function
        | (from, r) :: rest when Time.compare from now <= 0 -> go r rest
        | _ -> rate
      in
      go 0. points

let peak_rate = function
  | Constant { rate_per_s } | Poisson { rate_per_s } -> rate_per_s
  | Diurnal { base_per_s; amplitude; _ } -> base_per_s *. (1. +. amplitude)
  | Flash { peak_per_s; _ } -> peak_per_s
  | Replay { points } -> List.fold_left (fun m (_, r) -> Float.max m r) 0. points

(* Integral over [0, horizon] of one linear segment [(t0, v0) -> (t1, v1)],
   clipped. All in seconds. *)
let clip_trapezoid ~horizon (t0, t1, v0, v1) =
  let lo = Float.max t0 0. and hi = Float.min t1 horizon in
  if hi <= lo then 0.
  else
    let v at =
      if t1 = t0 then v0 else v0 +. ((v1 -. v0) *. (at -. t0) /. (t1 -. t0))
    in
    (v lo +. v hi) /. 2. *. (hi -. lo)

let mean_count t ~until =
  let horizon = Time.to_float_s until in
  match t with
  | Constant { rate_per_s } | Poisson { rate_per_s } -> rate_per_s *. horizon
  | Diurnal { base_per_s; amplitude; period } ->
      let p = Time.to_float_s period in
      let swing =
        base_per_s *. amplitude *. (p /. (2. *. pi))
        *. (1. -. cos (2. *. pi *. horizon /. p))
      in
      (base_per_s *. horizon) +. swing
  | Flash { base_per_s; peak_per_s; at; ramp; hold } ->
      let t0 = Time.to_float_s at and r = Time.to_float_s ramp in
      let h = Time.to_float_s hold in
      let d = peak_per_s -. base_per_s in
      let pulse =
        [
          (t0, t0 +. r, 0., d);
          (t0 +. r, t0 +. r +. h, d, d);
          (t0 +. r +. h, t0 +. r +. h +. r, d, 0.);
        ]
      in
      (base_per_s *. horizon)
      +. List.fold_left (fun acc seg -> acc +. clip_trapezoid ~horizon seg) 0. pulse
  | Replay { points } ->
      let rec go acc = function
        | [] -> acc
        | (from, r) :: rest ->
            let from = Time.to_float_s from in
            let upto =
              match rest with
              | (t', _) :: _ -> Time.to_float_s t'
              | [] -> Float.max horizon from
            in
            go (acc +. clip_trapezoid ~horizon (from, upto, r, r)) rest
      in
      go 0. points

type gen = {
  arr : t;
  rng : Prng.t;
  until : Time.t;
  envelope : float;  (** Thinning envelope; 0 means a dead process. *)
  mutable now : Time.t;
  mutable live : bool;
}

let generator arr ~rng ~until =
  validate arr;
  { arr; rng; until; envelope = peak_rate arr; now = Time.zero; live = true }

let next g =
  if (not g.live) || g.envelope <= 0. then None
  else
    let stop () =
      g.live <- false;
      None
    in
    match g.arr with
    | Constant { rate_per_s } ->
        let gap = Time.of_float_s (1. /. rate_per_s) in
        g.now <- Time.add g.now gap;
        if Time.compare g.now g.until >= 0 then stop () else Some g.now
    | Poisson { rate_per_s } ->
        let gap = Prng.exponential g.rng ~rate:rate_per_s in
        g.now <- Time.add g.now (Time.of_float_s gap);
        if Time.compare g.now g.until >= 0 then stop () else Some g.now
    | _ ->
        (* Lewis–Shedler thinning: candidates from a homogeneous process at
           the envelope rate, each kept with probability rate/envelope. *)
        let rec refine () =
          let gap = Prng.exponential g.rng ~rate:g.envelope in
          g.now <- Time.add g.now (Time.of_float_s gap);
          if Time.compare g.now g.until >= 0 then stop ()
          else if Prng.float g.rng *. g.envelope <= rate_at g.arr g.now then
            Some g.now
          else refine ()
        in
        refine ()
