(** Compile-and-run driver for [kind = "workload"] scenarios.

    Builds the cloud described by a {!Dsl.workload} — StopWatch replicas or
    an unmodified-Xen baseline, the {!Kv} front service, the {!Flowgen}
    open-loop client, optional co-resident attack probe, fault schedule,
    trace/profile instrumentation — advances the simulation for the
    scenario's duration plus a fixed drain window, and distils the
    [workload.*] metrics into a result record.

    Deterministic: every generator is seeded from [w.seed] alone, so equal
    workload values produce byte-identical results (the property the runner
    relies on to shard load-multiplier sweeps across [-j N] domains). *)

type result = {
  issued : int;  (** Requests offered by the open-loop client. *)
  completed : int;  (** Responses received before the drain window closed. *)
  hits : int;
  misses : int;
  p50_ms : float;  (** Response-time quantiles read off the bucket ladder. *)
  p99_ms : float;
  attacker_inter_delivery_ms : float array;
      (** Virtual inter-delivery times at the co-resident probe; empty
          without an [attack] clause. *)
  leak_series : (string * float array) list;
      (** Leak-observation series recorded under [leak_audit]: the probe's
          ["attacker/inter-delivery"] series plus one
          ["vm<i>/<mechanism>"] series per lineage observation — the input
          an [Sw_leak.Audit] pairs across two configurations. Empty unless
          the scenario set [leak_audit]. *)
  trace : Sw_obs.Trace.t option;
      (** The cloud-wide trace sink, when the scenario asked for one. *)
  metrics : Sw_obs.Snapshot.t;
  fired : int;
      (** Engine events fired across all shards — the numerator of the
          events/s throughput the shard-scale bench reports. *)
  cross_shard : int;  (** Messages exchanged at shard barriers; 0 unsharded. *)
}

(** [quantile_ms snapshot name q] reads the [q]-quantile (in ms) of a
    histogram out of a snapshot: the upper bound of the first bucket whose
    cumulative count reaches [q], clamped to the observed min/max. [0.]
    when the histogram is absent or empty. *)
val quantile_ms : Sw_obs.Snapshot.t -> string -> float -> float

(** A built-but-not-yet-run scenario: the cloud with all guests, clients,
    probes, and fault schedules installed, the time the load (plus drain)
    ends, and a [finish] thunk that distils the result once the simulation
    has been advanced to [until]. The handle is exactly what a checkpoint
    captures: [Cloud.checkpoint cloud ~extra:handle] serializes the pair
    with their sharing intact ([finish]'s environment closes over the
    cloud), so a restored handle's [finish] reads the restored cloud. The
    soak driver ([Sw_ckpt.Soak]) runs handles in checkpointed slices;
    {!run} is the one-shot form. *)
type handle = {
  cloud : Stopwatch.Cloud.t;
  until : Sw_sim.Time.t;  (** Scenario duration plus the drain window. *)
  finish : unit -> result;  (** Call once the cloud has reached [until]. *)
  observe : unit -> (string * float array) list;
      (** Snapshot the leak-observation series accumulated so far; safe
          mid-run (the soak driver calls it at every checkpoint grid
          point). Empty unless the scenario set [leak_audit]. *)
}

(** The cell-level communication graph of the scenario's topology block:
    one node per service cell, one edge per east-west flow (weight = its
    arrival rate). The input {!Sw_placement.Affinity.partition} consumes,
    and the graph the bench prices contiguous-vs-affinity cuts against. A
    scenario without a topology block yields the trivial 1-cell graph. *)
val traffic_graph : Dsl.workload -> Sw_placement.Affinity.graph

(** [prepare ?shards ?partition ?lookahead w] builds the scenario without
    advancing it; see {!run} for the scenario semantics and {!handle} for
    what to do next. *)
val prepare :
  ?shards:int ->
  ?partition:[ `Contiguous | `Affinity | `Assign of int array ] ->
  ?lookahead:[ `Global | `Pairwise ] ->
  Dsl.workload ->
  handle

(** Runs the scenario. Without a [topology] block this is the single-cell
    path above. With one, the cloud is [topology.hosts] machines carved
    into [hosts/replicas] service cells (each its own replica group, KV
    server, client host, and optional east-west flow toward the cell
    [east_west_stride] further on), simulated over [topology.shards]
    conservative shards — [?shards] overrides the block's count from the
    command line, [?partition] likewise overrides the block's cell
    placement ([`Assign a] additionally accepts an arbitrary explicit
    cell-to-shard map — the hook the partition-independence property test
    drives with random maps), and [?lookahead] selects the conductor's
    bound ({!Stopwatch.Cloud.create}'s parameter; default pairwise). The
    scenario is zero-draw (no jitter, no loss, no disk seek) and every
    generator is key-derived, so the result is byte-identical across
    shard counts, partitions, and lookahead modes outside the [sim.*]
    metric namespace. Raises [Invalid_argument] when
    {!Dsl.check_topology} rejects the (possibly overridden) block or an
    [`Assign] map is malformed. *)
val run :
  ?shards:int ->
  ?partition:[ `Contiguous | `Affinity | `Assign of int array ] ->
  ?lookahead:[ `Global | `Pairwise ] ->
  Dsl.workload ->
  result
