(** Zipfian key popularity — the hot-key skew of a production KV service.

    Key [k] (0-based) is drawn with probability proportional to
    [1 / (k + 1) ^ theta]; [theta = 0] is uniform, [theta ~ 1] the classic
    web/memcached skew, larger values hotter heads. The distribution is
    precomputed at construction, so sampling is a [float] draw plus a
    binary search — cheap enough for per-request use. *)

type t

(** Raises [Invalid_argument] when [keys <= 0] or [theta < 0]. *)
val create : keys:int -> theta:float -> t

val keys : t -> int
val theta : t -> float

(** Normalised probability of key [k]. Raises [Invalid_argument] out of
    range. *)
val weight : t -> int -> float

(** Draws a key in [[0, keys)]. *)
val sample : t -> Sw_sim.Prng.t -> int
