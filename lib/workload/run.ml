module Time = Sw_sim.Time
module Prng = Sw_sim.Prng
module Cloud = Stopwatch.Cloud
module Host = Stopwatch.Host
module Probe = Sw_apps.Probe
module Snapshot = Sw_obs.Snapshot

type result = {
  issued : int;
  completed : int;
  hits : int;
  misses : int;
  p50_ms : float;
  p99_ms : float;
  attacker_inter_delivery_ms : float array;
  trace : Sw_obs.Trace.t option;
  metrics : Snapshot.t;
}

let quantile_ms snapshot name q =
  match Snapshot.histogram snapshot name with
  | None -> 0.
  | Some h when h.Snapshot.count = 0 -> 0.
  | Some h ->
      let target =
        let t = int_of_float (ceil (q *. float_of_int h.Snapshot.count)) in
        if t < 1 then 1 else if t > h.Snapshot.count then h.Snapshot.count else t
      in
      let rec walk cum = function
        | [] -> h.Snapshot.max
        | (idx, n) :: rest ->
            let cum = cum + n in
            if cum >= target then Sw_obs.Buckets.bound idx else walk cum rest
      in
      let bound = walk 0 h.Snapshot.buckets in
      let bound = Int64.max h.Snapshot.min (Int64.min h.Snapshot.max bound) in
      Time.to_float_ms bound

(* Everything in flight when the offered load stops gets this long to
   drain before we snapshot. *)
let drain = Time.ms 500

let run (w : Dsl.workload) =
  let m = w.replicas in
  let config = { Sw_vmm.Config.default with Sw_vmm.Config.replicas = m } in
  let machines = if w.stopwatch then m else 1 in
  let profile = if w.profile then Some (Sw_obs.Profile.create ()) else None in
  let cloud = Cloud.create ~config ~seed:w.seed ?profile ~machines () in
  let trace =
    if not w.trace then None
    else begin
      let tr = Sw_obs.Trace.create ~metrics:(Cloud.metrics cloud) () in
      Cloud.attach_trace cloud tr;
      Sw_obs.Trace.enable tr;
      Some tr
    end
  in
  let deploy_guest ~app =
    if w.stopwatch then
      Cloud.deploy cloud ~on:(List.init m (fun i -> i)) ~app
    else Cloud.deploy_baseline cloud ~on:0 ~app
  in
  let kv_config =
    {
      Kv.cache = w.cache;
      compute_branches = Int64.of_int w.compute_branches;
      header_bytes = w.header_bytes;
      tcp = None;
    }
  in
  let service = deploy_guest ~app:(Kv.server kv_config) in
  (* Optional attack placement: the Fig. 4 receiver co-resident with the
     service (same machines, so its replicas time-share with the service's),
     pinged from an external host and echoing to an external observer. *)
  let probe =
    match w.attack with
    | None -> None
    | Some { Dsl.ping_rate_per_s } ->
        let pinger = Cloud.add_host cloud () in
        let observer = Cloud.add_host cloud () in
        let attacker =
          deploy_guest
            ~app:(Probe.receiver ~echo_to:(Host.address observer) ~echo_every:1 ())
        in
        let rng = Prng.create (Int64.add w.seed 17L) in
        let attacker_addr = Cloud.vm_address attacker in
        let count = ref 0 in
        let rec ping () =
          let gap = Prng.exponential rng ~rate:ping_rate_per_s in
          Host.after pinger (Time.of_float_s gap) (fun () ->
              incr count;
              Host.send pinger ~dst:attacker_addr ~size:100
                (Probe.Probe_ping !count);
              ping ())
        in
        ping ();
        Some attacker
  in
  if w.faults <> [] then ignore (Cloud.install_faults cloud w.faults);
  let client = Cloud.add_host cloud () in
  let flow =
    Flowgen.launch ~host:client ~dst:(Cloud.vm_address service)
      ~registry:(Cloud.metrics cloud)
      ~rng:(Prng.create (Int64.add w.seed 29L))
      {
        Flowgen.arrival = w.arrival;
        classes = w.classes;
        keyspace = Keyspace.create ~keys:w.keys ~theta:w.theta;
        pool = w.pool;
        max_per_conn = w.max_per_conn;
        request_bytes = w.request_bytes;
        until = w.duration;
      }
  in
  Cloud.run cloud ~until:(Time.add w.duration drain);
  let metrics = Cloud.metrics_snapshot cloud in
  let attacker_inter_delivery_ms =
    match probe with
    | None -> [||]
    | Some attacker ->
        let observed_machine = if w.stopwatch then m - 1 else 0 in
        let instance =
          match Cloud.replica_on attacker ~machine:observed_machine with
          | Some i -> i
          | None -> List.hd (Cloud.replicas attacker)
        in
        Sw_vmm.Vmm.inter_delivery_virts_ms instance
  in
  {
    issued = Flowgen.issued flow;
    completed = Flowgen.completed flow;
    hits = Flowgen.hits flow;
    misses = Flowgen.misses flow;
    p50_ms = quantile_ms metrics "workload.response_ns" 0.5;
    p99_ms = quantile_ms metrics "workload.response_ns" 0.99;
    attacker_inter_delivery_ms;
    trace;
    metrics;
  }
