module Time = Sw_sim.Time
module Prng = Sw_sim.Prng
module Affinity = Sw_placement.Affinity
module Cloud = Stopwatch.Cloud
module Host = Stopwatch.Host
module Probe = Sw_apps.Probe
module Snapshot = Sw_obs.Snapshot

type result = {
  issued : int;
  completed : int;
  hits : int;
  misses : int;
  p50_ms : float;
  p99_ms : float;
  attacker_inter_delivery_ms : float array;
  leak_series : (string * float array) list;
  trace : Sw_obs.Trace.t option;
  metrics : Snapshot.t;
  fired : int;
  cross_shard : int;
}

let quantile_ms snapshot name q =
  match Snapshot.histogram snapshot name with
  | None -> 0.
  | Some h when h.Snapshot.count = 0 -> 0.
  | Some h ->
      let target =
        let t = int_of_float (ceil (q *. float_of_int h.Snapshot.count)) in
        if t < 1 then 1 else if t > h.Snapshot.count then h.Snapshot.count else t
      in
      let rec walk cum = function
        | [] -> h.Snapshot.max
        | (idx, n) :: rest ->
            let cum = cum + n in
            if cum >= target then Sw_obs.Buckets.bound idx else walk cum rest
      in
      let bound = walk 0 h.Snapshot.buckets in
      let bound = Int64.max h.Snapshot.min (Int64.min h.Snapshot.max bound) in
      Time.to_float_ms bound

(* Everything in flight when the offered load stops gets this long to
   drain before we snapshot. *)
let drain = Time.ms 500

type handle = {
  cloud : Cloud.t;
  until : Time.t;
  finish : unit -> result;
  observe : unit -> (string * float array) list;
}

let prepare_single (w : Dsl.workload) =
  let m = w.replicas in
  let config = { Sw_vmm.Config.default with Sw_vmm.Config.replicas = m } in
  let machines = if w.stopwatch then m else 1 in
  let profile = if w.profile then Some (Sw_obs.Profile.create ()) else None in
  let cloud = Cloud.create ~config ~seed:w.seed ?profile ~machines () in
  let trace =
    if not (w.trace || w.leak_audit) then None
    else begin
      let tr = Sw_obs.Trace.create ~metrics:(Cloud.metrics cloud) () in
      Cloud.attach_trace cloud tr;
      Sw_obs.Trace.enable tr;
      Some tr
    end
  in
  let deploy_guest ~app =
    if w.stopwatch then
      Cloud.deploy cloud ~on:(List.init m (fun i -> i)) ~app
    else Cloud.deploy_baseline cloud ~on:0 ~app
  in
  let kv_config =
    {
      Kv.cache = w.cache;
      compute_branches = Int64.of_int w.compute_branches;
      header_bytes = w.header_bytes;
      tcp = None;
    }
  in
  let service = deploy_guest ~app:(Kv.server kv_config) in
  (* Optional attack placement: the Fig. 4 receiver co-resident with the
     service (same machines, so its replicas time-share with the service's),
     pinged from an external host and echoing to an external observer. *)
  let probe =
    match w.attack with
    | None -> None
    | Some { Dsl.ping_rate_per_s } ->
        let pinger = Cloud.add_host cloud () in
        let observer = Cloud.add_host cloud () in
        let attacker =
          deploy_guest
            ~app:(Probe.receiver ~echo_to:(Host.address observer) ~echo_every:1 ())
        in
        let rng = Prng.create (Int64.add w.seed 17L) in
        let attacker_addr = Cloud.vm_address attacker in
        let count = ref 0 in
        let rec ping () =
          let gap = Prng.exponential rng ~rate:ping_rate_per_s in
          Host.after pinger (Time.of_float_s gap) (fun () ->
              incr count;
              Host.send pinger ~dst:attacker_addr ~size:100
                (Probe.Probe_ping !count);
              ping ())
        in
        ping ();
        Some attacker
  in
  if w.faults <> [] then ignore (Cloud.install_faults cloud w.faults);
  let client = Cloud.add_host cloud () in
  let flow =
    Flowgen.launch ~host:client ~dst:(Cloud.vm_address service)
      ~registry:(Cloud.metrics cloud)
      ~rng:(Prng.create (Int64.add w.seed 29L))
      {
        Flowgen.arrival = w.arrival;
        classes = w.classes;
        keyspace = Keyspace.create ~keys:w.keys ~theta:w.theta;
        pool = w.pool;
        max_per_conn = w.max_per_conn;
        request_bytes = w.request_bytes;
        until = w.duration;
      }
  in
  let attacker_series () =
    match probe with
    | None -> [||]
    | Some attacker ->
        let observed_machine = if w.stopwatch then m - 1 else 0 in
        let instance =
          match Cloud.replica_on attacker ~machine:observed_machine with
          | Some i -> i
          | None -> List.hd (Cloud.replicas attacker)
        in
        Sw_vmm.Vmm.inter_delivery_virts_ms instance
  in
  (* The leak-observation extraction: the probe's guest-visible series plus
     every per-(vm, mechanism) lineage series, keyed for attribution. Safe
     to call mid-run (the soak driver samples it at checkpoint points). *)
  let observe () =
    if not w.leak_audit then []
    else begin
      let lineage_series =
        match trace with
        | None -> []
        | Some tr ->
            List.map
              (fun ((vm, mech), xs) ->
                ( Printf.sprintf "vm%d/%s" vm
                    (Sw_obs.Lineage.mechanism_label mech),
                  xs ))
              (Sw_obs.Lineage.observations (Sw_obs.Lineage.of_trace tr))
      in
      let head =
        match attacker_series () with
        | [||] -> []
        | xs -> [ ("attacker/inter-delivery", xs) ]
      in
      head @ lineage_series
    end
  in
  let finish () =
    let metrics = Cloud.metrics_snapshot cloud in
    let attacker_inter_delivery_ms = attacker_series () in
    {
      issued = Flowgen.issued flow;
      completed = Flowgen.completed flow;
      hits = Flowgen.hits flow;
      misses = Flowgen.misses flow;
      p50_ms = quantile_ms metrics "workload.response_ns" 0.5;
      p99_ms = quantile_ms metrics "workload.response_ns" 0.99;
      attacker_inter_delivery_ms;
      leak_series = observe ();
      trace;
      metrics;
      fired = Cloud.total_fired cloud;
      cross_shard = Cloud.cross_shard_exchanged cloud;
    }
  in
  { cloud; until = Time.add w.duration drain; finish; observe }

(* The cell-level communication graph of a topology scenario: one node per
   service cell, one weighted edge per east-west flow (cell c talks to cell
   (c + stride) mod cells at the configured rate). Intra-cell replica
   traffic never appears — replica groups are partition atoms, so only
   inter-cell edges can ever be cut. *)
let traffic_graph (w : Dsl.workload) =
  match w.Dsl.topology with
  | None -> { Affinity.cells = 1; edges = [] }
  | Some topo ->
      let cells = topo.Dsl.hosts / w.replicas in
      let edges =
        if topo.Dsl.east_west_rate_per_s <= 0. || cells < 2 then []
        else
          List.init cells (fun c ->
              {
                Affinity.a = c;
                b = (c + topo.Dsl.east_west_stride) mod cells;
                weight = topo.Dsl.east_west_rate_per_s;
              })
      in
      { Affinity.cells; edges }

(* Datacenter-scale topology runs: [hosts] machines carved into
   [hosts/replicas] independent service cells, each with its own replica
   group, open-loop client, and (optionally) a low-rate east-west flow
   toward the cell [east_west_stride] further on — genuine cross-shard
   traffic under [shards > 1].

   The scenario is configured so that the shard count cannot change any
   result byte: links carry zero jitter and zero loss and disks zero
   seek/rotation, so no event consults the legacy shared-stream generator
   (the one whose draw order is partition-dependent); every client
   generator is derived from [(seed, purpose, cell)] alone. The remaining
   cross-shard reordering is between same-instant events of *different*
   cells, which share no state. *)
let prepare_datacenter ?shards ?partition ?lookahead (w : Dsl.workload)
    (topo : Dsl.topology) =
  let topo =
    match shards with
    | None -> topo
    | Some s -> { topo with Dsl.shards = s }
  in
  let topo =
    match partition with
    | None | Some (`Assign _) -> topo
    | Some `Contiguous -> { topo with Dsl.partition = Dsl.Contiguous }
    | Some `Affinity -> { topo with Dsl.partition = Dsl.Affinity }
  in
  let w = { w with Dsl.topology = Some topo } in
  (match Dsl.check_topology w with
  | Ok () -> ()
  | Error e -> invalid_arg ("Run: " ^ e));
  let r = w.replicas in
  let cells = topo.Dsl.hosts / r in
  let config =
    {
      Sw_vmm.Config.default with
      Sw_vmm.Config.replicas = r;
      disk =
        {
          Sw_disk.Disk.default_params with
          Sw_disk.Disk.max_seek = Time.zero;
          max_rotation = Time.zero;
        };
    }
  in
  (* The topology may coarsen the scheduler quantum: at the 10k-host scale
     the per-slice events of idle guests are the simulation's whole cost,
     and the traffic under study disappears into them at the default
     200 us. Uniform across machines, so shard count and partition still
     never change the bytes. *)
  let config =
    match topo.Dsl.quantum_us with
    | None -> config
    | Some us ->
        { config with Sw_vmm.Config.quantum = Time.of_float_s (us *. 1e-6) }
  in
  (* Fleet-wide fabric hop: every access link in the datacenter crosses the
     aggregation layer, so it carries the same 500 us propagation delay as
     the client links below. Zero jitter keeps the scenario draw-free (the
     determinism contract), and the uniform 500 us floor is also the
     conservative lookahead the sharded conductor derives — windows wide
     enough that per-shard compute dwarfs the barrier cost. *)
  let default_link =
    {
      Sw_net.Network.lan with
      Sw_net.Network.latency = Time.us 500;
      jitter = Time.zero;
    }
  in
  let client_link =
    {
      Sw_net.Network.latency = Time.us 500;
      jitter = Time.zero;
      bandwidth_bps = 0;
      loss = 0.;
    }
  in
  (* Cell-to-shard assignment, expanded to the machine map Cloud.create
     takes (machine m belongs to cell m / r, and cells are atoms). [`Assign]
     is the test hook: any explicit cell map, e.g. a random one from the
     partition-independence property test. *)
  let cell_assign =
    match partition with
    | Some (`Assign a) ->
        if Array.length a <> cells then
          invalid_arg
            (Printf.sprintf
               "Run: partition assigns %d cells, topology has %d"
               (Array.length a) cells);
        Some (Array.copy a)
    | _ -> (
        match topo.Dsl.partition with
        | Dsl.Contiguous -> None
        | Dsl.Affinity ->
            let plan = Affinity.partition (traffic_graph w) ~shards:topo.Dsl.shards in
            Some plan.Affinity.shard_of_cell)
  in
  let cloud_partition =
    match cell_assign with
    | None -> `Contiguous
    | Some assign -> `Affinity (Array.init topo.Dsl.hosts (fun m -> assign.(m / r)))
  in
  let cloud =
    Cloud.create ~config ~seed:w.seed ~default_link ~machines:topo.Dsl.hosts
      ~shards:topo.Dsl.shards ~partition:cloud_partition ?lookahead ()
  in
  (* The rack-local replica interconnect: a fast directed link for every
     ordered VMM pair inside a cell, installed before any deployment sends a
     byte (link parameters latch at first use). Cells are partition atoms,
     so these overrides are intra-shard on every fabric and — by
     construction of Network.min_latency_to — never lower a cross-shard
     lookahead floor. *)
  (match topo.Dsl.replica_link_us with
  | None -> ()
  | Some us ->
      let fast =
        {
          Sw_net.Network.latency = Time.of_float_s (us *. 1e-6);
          jitter = Time.zero;
          bandwidth_bps = default_link.Sw_net.Network.bandwidth_bps;
          loss = 0.;
        }
      in
      for c = 0 to cells - 1 do
        for i = 0 to r - 1 do
          for j = 0 to r - 1 do
            if i <> j then
              Cloud.set_pair_link cloud
                ~src:(Sw_net.Address.Vmm ((c * r) + i))
                ~dst:(Sw_net.Address.Vmm ((c * r) + j))
                fast
          done
        done
      done);
  let kv_config =
    {
      Kv.cache = w.cache;
      compute_branches = Int64.of_int w.compute_branches;
      header_bytes = w.header_bytes;
      tcp = None;
    }
  in
  let services =
    Array.init cells (fun c ->
        Cloud.deploy cloud
          ~on:(List.init r (fun i -> (c * r) + i))
          ~app:(Kv.server kv_config))
  in
  let flow_config ~arrival =
    {
      Flowgen.arrival;
      classes = w.classes;
      keyspace = Keyspace.create ~keys:w.keys ~theta:w.theta;
      pool = w.pool;
      max_per_conn = w.max_per_conn;
      request_bytes = w.request_bytes;
      until = w.duration;
    }
  in
  let flows = ref [] in
  for c = 0 to cells - 1 do
    let shard = Cloud.shard_of_machine cloud (c * r) in
    let registry = Cloud.shard_registry cloud shard in
    let client = Cloud.add_host cloud ~link:client_link ~shard () in
    let own =
      Flowgen.launch
        ~prefix:(Printf.sprintf "workload.cell%d" c)
        ~host:client
        ~dst:(Cloud.vm_address services.(c))
        ~registry
        ~rng:(Prng.derive ~seed:w.seed [ 0x29L; Int64.of_int c ])
        (flow_config ~arrival:w.arrival)
    in
    flows := own :: !flows;
    if topo.Dsl.east_west_rate_per_s > 0. && cells > 1 then begin
      (* A separate host per flow: each Flowgen owns its TCP adapter. *)
      let ew_host = Cloud.add_host cloud ~link:client_link ~shard () in
      let ew =
        Flowgen.launch
          ~prefix:(Printf.sprintf "workload.ew%d" c)
          ~host:ew_host
          ~dst:(Cloud.vm_address services.((c + topo.Dsl.east_west_stride) mod cells))
          ~registry
          ~rng:(Prng.derive ~seed:w.seed [ 0x2AL; Int64.of_int c ])
          (flow_config
             ~arrival:
               (Arrival.Poisson { rate_per_s = topo.Dsl.east_west_rate_per_s }))
      in
      flows := ew :: !flows
    end
  done;
  let finish () =
    let metrics = Cloud.metrics_snapshot cloud in
    (* Cell response times live under per-cell names; fold them into one
       cloud-wide histogram for the headline quantiles. *)
    let merged =
      Snapshot.merge_all
        (List.filter_map
           (fun c ->
             match
               Snapshot.histogram metrics
                 (Printf.sprintf "workload.cell%d.response_ns" c)
             with
             | None -> None
             | Some h ->
                 Some
                   (Snapshot.of_list
                      [ ("workload.response_ns", Snapshot.Histogram h) ]))
           (List.init cells Fun.id))
    in
    let sum f = List.fold_left (fun acc fl -> acc + f fl) 0 !flows in
    {
      issued = sum Flowgen.issued;
      completed = sum Flowgen.completed;
      hits = sum Flowgen.hits;
      misses = sum Flowgen.misses;
      p50_ms = quantile_ms merged "workload.response_ns" 0.5;
      p99_ms = quantile_ms merged "workload.response_ns" 0.99;
      attacker_inter_delivery_ms = [||];
      leak_series = [];
      trace = None;
      metrics;
      fired = Cloud.total_fired cloud;
      cross_shard = Cloud.cross_shard_exchanged cloud;
    }
  in
  { cloud; until = Time.add w.duration drain; finish; observe = (fun () -> []) }

let prepare ?shards ?partition ?lookahead (w : Dsl.workload) =
  match w.topology with
  | Some topo -> prepare_datacenter ?shards ?partition ?lookahead w topo
  | None -> prepare_single w

let run ?shards ?partition ?lookahead (w : Dsl.workload) =
  let h = prepare ?shards ?partition ?lookahead w in
  Cloud.run h.cloud ~until:h.until;
  h.finish ()
