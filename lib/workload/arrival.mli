(** Open-loop arrival processes.

    An arrival process describes {e offered} load: request instants are
    drawn independently of the system's response times (open loop), so a
    slow server faces a growing backlog instead of silently throttling its
    own load — the regime where mitigation overhead actually shows
    (ROADMAP item 2's "fig9"-class curves).

    Every process is a deterministic function of its parameters and the
    supplied generator: equal [(process, seed)] pairs enumerate equal
    arrival instants, the property the DSL's [-j N] byte-identity contract
    rests on. Time-varying processes (diurnal, flash crowd, trace replay)
    are inhomogeneous Poisson processes sampled by Lewis–Shedler thinning
    against their peak rate. *)

type t =
  | Constant of { rate_per_s : float }
      (** Evenly spaced arrivals, period [1/rate]. *)
  | Poisson of { rate_per_s : float }
      (** Homogeneous Poisson (exponential gaps). *)
  | Diurnal of {
      base_per_s : float;
      amplitude : float;  (** Relative swing in [0, 1]. *)
      period : Sw_sim.Time.t;
    }
      (** Sinusoidal rate [base * (1 + amplitude * sin (2 pi t / period))] —
          a day-night load curve compressed to simulation scale. *)
  | Flash of {
      base_per_s : float;
      peak_per_s : float;
      at : Sw_sim.Time.t;  (** Spike onset. *)
      ramp : Sw_sim.Time.t;  (** Linear ramp up (and back down). *)
      hold : Sw_sim.Time.t;  (** Plateau at [peak_per_s]. *)
    }
      (** Flash crowd: base load, then a linear ramp to [peak_per_s], a
          plateau, and a symmetric ramp back down. *)
  | Replay of { points : (Sw_sim.Time.t * float) list }
      (** Piecewise-constant rate table [(from, rate_per_s)]: the rate is 0
          before the first point and [rate i] from [from i] (inclusive) to
          the next point. Points must be strictly increasing in time. *)

(** Raises [Invalid_argument] on negative rates, amplitude outside [0, 1],
    [peak < base], negative spans, or a non-increasing replay table. *)
val validate : t -> unit

(** Instantaneous rate (arrivals per second) at instant [t]. *)
val rate_at : t -> Sw_sim.Time.t -> float

(** The least upper bound of [rate_at] — the thinning envelope. *)
val peak_rate : t -> float

(** [mean_count t ~until] is the exact expected number of arrivals in
    [[0, until)) — the analytic integral of [rate_at], the reference the
    property tests compare sampled counts against. *)
val mean_count : t -> until:Sw_sim.Time.t -> float

(** A stateful enumerator of arrival instants. *)
type gen

(** [generator t ~rng ~until] starts enumerating from time 0; the
    generator owns [rng] from then on. *)
val generator : t -> rng:Sw_sim.Prng.t -> until:Sw_sim.Time.t -> gen

(** The next arrival instant, strictly increasing across calls; [None]
    once the next arrival would land at or past [until]. *)
val next : gen -> Sw_sim.Time.t option
