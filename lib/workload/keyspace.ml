type t = { keys : int; theta : float; cdf : float array }

let create ~keys ~theta =
  if keys <= 0 then invalid_arg "Keyspace.create: keys <= 0";
  if theta < 0. then invalid_arg "Keyspace.create: negative theta";
  let cdf = Array.make keys 0. in
  let acc = ref 0. in
  for k = 0 to keys - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (k + 1)) theta);
    cdf.(k) <- !acc
  done;
  let total = !acc in
  for k = 0 to keys - 1 do
    cdf.(k) <- cdf.(k) /. total
  done;
  { keys; theta; cdf }

let keys t = t.keys
let theta t = t.theta

let weight t k =
  if k < 0 || k >= t.keys then invalid_arg "Keyspace.weight: out of range";
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)

let sample t rng =
  let u = Sw_sim.Prng.float rng in
  (* Smallest k with cdf.(k) > u. *)
  let lo = ref 0 and hi = ref (t.keys - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
