(** The open-loop traffic engine: drives an {!Arrival} process of requests
    from an external host into a front-service VM over a pool of keep-alive
    TCP connections.

    Open loop means arrivals never wait for responses: the offered rate is
    what the scenario says, regardless of how the service keeps up —
    backlog and latency inflation are the measurement, not an accident.

    Connections are multiplexed round-robin from a fixed pool; a
    connection that has carried [max_per_conn] requests is retired once
    its in-flight responses drain, and a fresh one takes its slot
    (connection churn is itself part of realistic traffic). Requests carry
    a Zipf-drawn key and a weight-drawn service class.

    Per-flow measurements land in the simulation's {!Sw_obs.Registry}
    under [workload.*] — response-time histograms on the shared
    {!Sw_obs.Buckets} ladder (total, hit-only, miss-only, and per class),
    issue/completion/hit/miss counters, per-tier hit counters, a
    connection-churn counter, and an in-flight watermark gauge — so runner
    merging, JSON export, lineage, and Chrome export all work unchanged.

    Determinism: all randomness comes from the supplied generator, drawn
    only inside the (totally ordered) arrival chain, so equal
    [(config, seed)] pairs produce byte-identical metric snapshots under
    any [-j] level. *)

type cls = {
  name : string;  (** Metric label ([workload.cls.<name>.response_ns]). *)
  weight : float;  (** Relative draw weight; need not be normalised. *)
  resp_bytes : int;
  cached : bool;  (** Route through the server's front cache? *)
}

type config = {
  arrival : Arrival.t;
  classes : cls list;
  keyspace : Keyspace.t;
  pool : int;  (** Keep-alive connections (>= 1). *)
  max_per_conn : int;  (** Requests per connection before churn; 0 = never. *)
  request_bytes : int;  (** Request wire size. *)
  until : Sw_sim.Time.t;  (** Stop offering load at this instant. *)
}

(** Raises [Invalid_argument] on an empty/non-positive mix or pool. *)
val validate : config -> unit

type t

(** [launch ?prefix ~host ~dst ~registry ~rng config] attaches a TCP
    adapter to [host], registers the [<prefix>.*] instruments (default
    prefix ["workload"]), and schedules the first arrival; the run itself
    happens when the caller advances the simulation. The engine owns [rng]
    from here on. Multi-cell runs give every cell its own prefix (e.g.
    ["workload.cell3"]) so per-cell gauges and histograms keep distinct
    names — a requirement for partition-independent snapshot merges, since
    same-named gauges merge by max across shard registries. *)
val launch :
  ?prefix:string ->
  host:Stopwatch.Host.t ->
  dst:Sw_net.Address.t ->
  registry:Sw_obs.Registry.t ->
  rng:Sw_sim.Prng.t ->
  config ->
  t

val issued : t -> int
val completed : t -> int

(** Responses whose tier was [>= 0] / [-1] (see {!Kv.Wl_resp}). *)
val hits : t -> int

val misses : t -> int
