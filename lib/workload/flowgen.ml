module Time = Sw_sim.Time
module Prng = Sw_sim.Prng
module Host = Stopwatch.Host
module Tcp_host = Sw_apps.Tcp_host
module Registry = Sw_obs.Registry

type cls = { name : string; weight : float; resp_bytes : int; cached : bool }

type config = {
  arrival : Arrival.t;
  classes : cls list;
  keyspace : Keyspace.t;
  pool : int;
  max_per_conn : int;
  request_bytes : int;
  until : Time.t;
}

let validate config =
  Arrival.validate config.arrival;
  if config.pool < 1 then invalid_arg "Flowgen: pool < 1";
  if config.max_per_conn < 0 then invalid_arg "Flowgen: negative max_per_conn";
  if config.request_bytes <= 0 then invalid_arg "Flowgen: request_bytes <= 0";
  if config.classes = [] then invalid_arg "Flowgen: empty service mix";
  List.iter
    (fun c ->
      if c.weight < 0. then invalid_arg "Flowgen: negative class weight";
      if c.resp_bytes <= 0 then invalid_arg "Flowgen: resp_bytes <= 0")
    config.classes;
  if List.for_all (fun c -> c.weight = 0.) config.classes then
    invalid_arg "Flowgen: all class weights zero"

(* One keep-alive pool slot. [retiring] is set once the slot has carried its
   request budget; the connection is actually closed (and the slot freed for
   a fresh one) only when its last in-flight response has drained, so churn
   never loses responses. *)
type slot = {
  mutable conn : Tcp_host.conn option;
  mutable established : bool;
  mutable used : int;
  mutable inflight : int;
  mutable retiring : bool;
  backlog : (Sw_net.Packet.payload * int) Queue.t;
}

type meters = {
  prefix : string;
  c_issued : Registry.Counter.t;
  c_completed : Registry.Counter.t;
  c_hits : Registry.Counter.t;
  c_misses : Registry.Counter.t;
  c_conns : Registry.Counter.t;
  g_inflight : Registry.Gauge.t;
  h_resp : Registry.Histogram.t;
  h_hit : Registry.Histogram.t;
  h_miss : Registry.Histogram.t;
  h_cls : Registry.Histogram.t array;
  tier_hits : (int, Registry.Counter.t) Hashtbl.t;
  registry : Registry.t;
}

type t = {
  host : Host.t;
  dst : Sw_net.Address.t;
  tcp : Tcp_host.t;
  config : config;
  classes : cls array;
  cum_weights : float array;
  rng : Prng.t;
  gen : Arrival.gen;
  slots : slot array;
  inflight : (int, Time.t * int * int) Hashtbl.t;
      (** seq -> (issue instant, class index, slot index). *)
  m : meters;
  mutable next_seq : int;
  mutable issued : int;
  mutable completed : int;
  mutable hits : int;
  mutable misses : int;
}

let meters registry ~prefix classes =
  let c name = Registry.counter registry (prefix ^ name)
  and h name = Registry.histogram registry (prefix ^ name) in
  {
    prefix;
    c_issued = c ".issued";
    c_completed = c ".completed";
    c_hits = c ".hits";
    c_misses = c ".misses";
    c_conns = c ".conns_opened";
    g_inflight = Registry.gauge registry (prefix ^ ".inflight");
    h_resp = h ".response_ns";
    h_hit = h ".response_hit_ns";
    h_miss = h ".response_miss_ns";
    h_cls =
      Array.map
        (fun cl -> h (Printf.sprintf ".cls.%s.response_ns" cl.name))
        classes;
    tier_hits = Hashtbl.create 4;
    registry;
  }

let tier_counter m tier =
  match Hashtbl.find_opt m.tier_hits tier with
  | Some c -> c
  | None ->
      let c =
        Registry.counter m.registry
          (Printf.sprintf "%s.hits.tier%d" m.prefix tier)
      in
      Hashtbl.replace m.tier_hits tier c;
      c

let on_response t ~seq ~tier =
  match Hashtbl.find_opt t.inflight seq with
  | None -> ()
  | Some (issued_at, cls_idx, slot_idx) ->
      Hashtbl.remove t.inflight seq;
      t.completed <- t.completed + 1;
      let lat = Time.sub (Host.now t.host) issued_at in
      if Registry.enabled t.m.registry then begin
        Registry.Counter.incr t.m.c_completed;
        Registry.Histogram.observe t.m.h_resp lat;
        Registry.Histogram.observe t.m.h_cls.(cls_idx) lat;
        if tier >= 0 then begin
          Registry.Counter.incr t.m.c_hits;
          Registry.Counter.incr (tier_counter t.m tier);
          Registry.Histogram.observe t.m.h_hit lat
        end
        else begin
          Registry.Counter.incr t.m.c_misses;
          Registry.Histogram.observe t.m.h_miss lat
        end
      end;
      if tier >= 0 then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
      let s = t.slots.(slot_idx) in
      s.inflight <- s.inflight - 1;
      if s.retiring && s.inflight = 0 then begin
        Option.iter Tcp_host.close s.conn;
        s.conn <- None;
        s.established <- false;
        s.retiring <- false;
        s.used <- 0
      end

let handle_msg t ~payload ~bytes:_ =
  match payload with
  | Kv.Wl_resp { seq; tier } -> on_response t ~seq ~tier
  | _ -> ()

let open_slot t s =
  if Registry.enabled t.m.registry then Registry.Counter.incr t.m.c_conns;
  let conn =
    Tcp_host.connect t.tcp ~dst:t.dst
      ~on_connected:(fun () ->
        s.established <- true;
        Queue.iter
          (fun (payload, bytes) ->
            match s.conn with
            | Some c -> Tcp_host.send c ~payload ~bytes
            | None -> ())
          s.backlog;
        Queue.clear s.backlog)
      ~on_msg:(fun ~payload ~bytes -> handle_msg t ~payload ~bytes)
      ()
  in
  s.conn <- Some conn

let pick_class t =
  let total = t.cum_weights.(Array.length t.cum_weights - 1) in
  let u = Prng.float t.rng *. total in
  let n = Array.length t.cum_weights in
  let i = ref 0 in
  while !i < n - 1 && t.cum_weights.(!i) <= u do
    incr i
  done;
  !i

let issue t =
  let cls_idx = pick_class t in
  let cl = t.classes.(cls_idx) in
  let key = Keyspace.sample t.config.keyspace t.rng in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let slot_idx = seq mod t.config.pool in
  let s = t.slots.(slot_idx) in
  let payload =
    Kv.Wl_get
      { cls = cls_idx; key; seq; resp_bytes = cl.resp_bytes; cached = cl.cached }
  in
  t.issued <- t.issued + 1;
  Hashtbl.replace t.inflight seq (Host.now t.host, cls_idx, slot_idx);
  if Registry.enabled t.m.registry then begin
    Registry.Counter.incr t.m.c_issued;
    Registry.Gauge.observe_int t.m.g_inflight (Hashtbl.length t.inflight)
  end;
  s.inflight <- s.inflight + 1;
  s.used <- s.used + 1;
  if s.conn = None then open_slot t s;
  (match s.conn with
  | Some c when s.established -> Tcp_host.send c ~payload ~bytes:t.config.request_bytes
  | _ -> Queue.add (payload, t.config.request_bytes) s.backlog);
  if t.config.max_per_conn > 0 && s.used >= t.config.max_per_conn then
    s.retiring <- true

let rec schedule t =
  match Arrival.next t.gen with
  | None -> ()
  | Some at ->
      let gap = Time.sub at (Host.now t.host) in
      let gap = if Time.is_negative gap then Time.zero else gap in
      Host.after t.host gap (fun () ->
          issue t;
          schedule t)

let launch ?(prefix = "workload") ~host ~dst ~registry ~rng config =
  validate config;
  let classes = Array.of_list config.classes in
  let cum_weights =
    let acc = ref 0. in
    Array.map
      (fun c ->
        acc := !acc +. c.weight;
        !acc)
      classes
  in
  let t =
    {
      host;
      dst;
      tcp = Tcp_host.attach host ();
      config;
      classes;
      cum_weights;
      rng;
      gen = Arrival.generator config.arrival ~rng ~until:config.until;
      slots =
        Array.init config.pool (fun _ ->
            {
              conn = None;
              established = false;
              used = 0;
              inflight = 0;
              retiring = false;
              backlog = Queue.create ();
            });
      inflight = Hashtbl.create 256;
      m = meters registry ~prefix classes;
      next_seq = 0;
      issued = 0;
      completed = 0;
      hits = 0;
      misses = 0;
    }
  in
  schedule t;
  t

let issued t = t.issued
let completed t = t.completed
let hits t = t.hits
let misses t = t.misses
