module App = Sw_vm.App
module Time = Sw_sim.Time
module Tcp_guest = Sw_apps.Tcp_guest

type Sw_net.Packet.payload +=
  | Wl_get of {
      cls : int;
      key : int;
      seq : int;
      resp_bytes : int;
      cached : bool;
    }
  | Wl_resp of { seq : int; tier : int }

type config = {
  cache : Cache.config;
  compute_branches : int64;
  header_bytes : int;
  tcp : Sw_apps.Tcp.config option;
}

let default_config =
  {
    cache =
      {
        Cache.tiers =
          [
            { Cache.capacity = 64; hit_cost = Time.us 50 };
            { Cache.capacity = 512; hit_cost = Time.us 400 };
          ];
        origin_cost = Time.ms 2;
      };
    compute_branches = 20_000L;
    header_bytes = 64;
    tcp = None;
  }

(* A request's position in its service pipeline, keyed by its timer/disk
   tag. *)
type phase =
  | Hit_wait of int  (** Timer pending for a tier hit; payload = tier. *)
  | Origin_wait  (** Timer pending for the origin round-trip. *)
  | Reading  (** Disk read of the response body in flight. *)

type pending = {
  conn : Tcp_guest.conn_key;
  seq : int;
  resp_bytes : int;
  mutable phase : phase;
}

type state = {
  tcp : Tcp_guest.t;
  cache : Cache.t;
  pending : (int, pending) Hashtbl.t;
  mutable next_tag : int;
  config : config;
}

(* Distinct classes must not share cache lines even when key ranges
   overlap. *)
let cache_key ~cls ~key = (cls lsl 40) lxor key

let server (config : config) () =
  Cache.validate_config config.cache;
  let st =
    {
      tcp = Tcp_guest.create ?config:config.tcp ();
      cache = Cache.create config.cache;
      pending = Hashtbl.create 64;
      next_tag = 0;
      config;
    }
  in
  let fresh_tag p =
    let tag = st.next_tag in
    (* Stay below [Tcp_guest.tag_base]; at one slot per in-flight request a
       collision would need ~10^6 simultaneous requests. *)
    st.next_tag <- (tag + 1) mod Tcp_guest.tag_base;
    Hashtbl.replace st.pending tag p;
    tag
  in
  let respond tag p ~tier =
    Hashtbl.remove st.pending tag;
    Tcp_guest.send st.tcp p.conn
      ~payload:(Wl_resp { seq = p.seq; tier })
      ~bytes:(p.resp_bytes + st.config.header_bytes)
  in
  let start conn (cls, key, seq, resp_bytes, cached) =
    let p = { conn; seq; resp_bytes; phase = Reading } in
    let parse = App.Compute st.config.compute_branches in
    if not cached then begin
      let tag = fresh_tag p in
      [ parse; App.Disk_read { bytes = resp_bytes; sequential = true; tag } ]
    end
    else
      match Cache.access st.cache (cache_key ~cls ~key) with
      | Cache.Hit { tier; cost } ->
          p.phase <- Hit_wait tier;
          let tag = fresh_tag p in
          [ parse; App.Set_timer { after = cost; tag } ]
      | Cache.Miss { cost } ->
          p.phase <- Origin_wait;
          let tag = fresh_tag p in
          [ parse; App.Set_timer { after = cost; tag } ]
  in
  let handle_conn_event = function
    | Tcp_guest.Msg { key; payload = Wl_get { cls; key = k; seq; resp_bytes; cached }; _ }
      ->
        start key (cls, k, seq, resp_bytes, cached)
    | Tcp_guest.Msg _ | Tcp_guest.Accepted _ | Tcp_guest.Conn_closed _ -> []
  in
  let own_event = function
    | App.Timer { tag } -> (
        match Hashtbl.find_opt st.pending tag with
        | None -> []
        | Some p -> (
            match p.phase with
            | Hit_wait tier -> respond tag p ~tier
            | Origin_wait ->
                p.phase <- Reading;
                [
                  App.Disk_read
                    { bytes = p.resp_bytes; sequential = false; tag };
                ]
            | Reading -> []))
    | App.Disk_done { tag } -> (
        match Hashtbl.find_opt st.pending tag with
        | Some ({ phase = Reading; _ } as p) -> respond tag p ~tier:(-1)
        | Some _ | None -> [])
    | _ -> []
  in
  {
    App.handle =
      (fun ~virt_now:_ event ->
        match Tcp_guest.handle st.tcp event with
        | Some (conn_events, actions) ->
            actions @ List.concat_map handle_conn_event conn_events
        | None -> own_event event);
  }

let () =
  List.iter Sw_sim.Graft.register
    [ [%extension_constructor Wl_get]; [%extension_constructor Wl_resp] ]
