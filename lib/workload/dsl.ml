module Json = Sw_obs.Json
module Time = Sw_sim.Time
module Scenario = Sw_attack.Scenario

type attack_variant = {
  key : string;
  baseline : bool;
  victim : bool;
  colluder : bool;
}

type attack = {
  seed : int64;
  duration : Time.t;
  replicas : int;
  ping_rate_per_s : float;
  colluder_burst : int;
  background_rate_per_s : float;
  variants : attack_variant list;
}

type attack_probe = { ping_rate_per_s : float }

type partition = Contiguous | Affinity

type topology = {
  hosts : int;
  shards : int;
  east_west_rate_per_s : float;
  east_west_stride : int;
  partition : partition;
  replica_link_us : float option;
  quantum_us : float option;
}

type workload = {
  seed : int64;
  duration : Time.t;
  replicas : int;
  stopwatch : bool;
  arrival : Arrival.t;
  classes : Flowgen.cls list;
  keys : int;
  theta : float;
  cache : Cache.config;
  pool : int;
  max_per_conn : int;
  request_bytes : int;
  compute_branches : int;
  header_bytes : int;
  faults : Sw_fault.Schedule.t;
  attack : attack_probe option;
  topology : topology option;
  load_multipliers : float list;
  trace : bool;
  leak_audit : bool;
  profile : bool;
}

type kind = Attack of attack | Workload of workload
type t = { name : string; kind : kind }

(* --- Decoding helpers ---------------------------------------------------- *)

exception Bad of string

let bad path msg = raise (Bad (Printf.sprintf "%s: %s" path msg))

let as_obj path = function
  | Json.Object fields -> fields
  | _ -> bad path "expected an object"

let as_num path = function
  | Json.Number f -> f
  | _ -> bad path "expected a number"

let as_bool path = function
  | Json.Bool b -> b
  | _ -> bad path "expected true or false"

let as_str path = function
  | Json.String s -> s
  | _ -> bad path "expected a string"

let as_arr path = function
  | Json.Array items -> items
  | _ -> bad path "expected an array"

let as_int path v =
  let f = as_num path v in
  if Float.is_integer f then int_of_float f else bad path "expected an integer"

(* Seeds: a JSON number (exact below 2^53), or a string accepted by
   [Int64.of_string] — so full-width hex seeds like "0xDEADBEEFCAFEF00D"
   stay representable. *)
let as_seed path = function
  | Json.Number f ->
      if Float.is_integer f && Float.abs f < 9.007199254740992e15 then
        Int64.of_float f
      else bad path "seed must be an integer below 2^53 (or a string)"
  | Json.String s -> (
      match Int64.of_string_opt s with
      | Some v -> v
      | None -> bad path "unparsable seed string")
  | _ -> bad path "expected a seed (number or string)"

let field fields name = List.assoc_opt name fields

let req fields path name decode =
  match field fields name with
  | Some v -> decode (path ^ "." ^ name) v
  | None -> bad path (Printf.sprintf "missing required field %S" name)

let opt fields path name ~default decode =
  match field fields name with
  | Some v -> decode (path ^ "." ^ name) v
  | None -> default

let time_of_s f = Time.of_float_s f
let time_of_ms f = Time.of_float_ms f
let time_of_us f = Time.of_float_s (f /. 1e6)

(* --- Arrival ------------------------------------------------------------- *)

let arrival_of_json path v =
  let fields = as_obj path v in
  let num name ~default = opt fields path name ~default as_num in
  let tspan name ~default =
    opt fields path name ~default (fun p v -> time_of_s (as_num p v))
  in
  match req fields path "process" as_str with
  | "constant" ->
      Arrival.Constant { rate_per_s = req fields path "rate_per_s" as_num }
  | "poisson" ->
      Arrival.Poisson { rate_per_s = req fields path "rate_per_s" as_num }
  | "diurnal" ->
      Arrival.Diurnal
        {
          base_per_s = req fields path "base_per_s" as_num;
          amplitude = num "amplitude" ~default:0.5;
          period = tspan "period_s" ~default:(Time.s 10);
        }
  | "flash" ->
      Arrival.Flash
        {
          base_per_s = req fields path "base_per_s" as_num;
          peak_per_s = req fields path "peak_per_s" as_num;
          at = req fields path "at_s" (fun p v -> time_of_s (as_num p v));
          ramp = tspan "ramp_s" ~default:Time.zero;
          hold = tspan "hold_s" ~default:Time.zero;
        }
  | "replay" ->
      let points =
        List.mapi
          (fun i point ->
            let p = Printf.sprintf "%s.points[%d]" path i in
            match point with
            | Json.Array [ at; rate ] ->
                (time_of_s (as_num p at), as_num p rate)
            | _ -> bad p "expected a [seconds, rate_per_s] pair")
          (req fields path "points" as_arr)
      in
      Arrival.Replay { points }
  | p -> bad (path ^ ".process") (Printf.sprintf "unknown process %S" p)

let arrival_to_json = function
  | Arrival.Constant { rate_per_s } ->
      Json.Object
        [ ("process", String "constant"); ("rate_per_s", Number rate_per_s) ]
  | Arrival.Poisson { rate_per_s } ->
      Json.Object
        [ ("process", String "poisson"); ("rate_per_s", Number rate_per_s) ]
  | Arrival.Diurnal { base_per_s; amplitude; period } ->
      Json.Object
        [
          ("process", String "diurnal");
          ("base_per_s", Number base_per_s);
          ("amplitude", Number amplitude);
          ("period_s", Number (Time.to_float_s period));
        ]
  | Arrival.Flash { base_per_s; peak_per_s; at; ramp; hold } ->
      Json.Object
        [
          ("process", String "flash");
          ("base_per_s", Number base_per_s);
          ("peak_per_s", Number peak_per_s);
          ("at_s", Number (Time.to_float_s at));
          ("ramp_s", Number (Time.to_float_s ramp));
          ("hold_s", Number (Time.to_float_s hold));
        ]
  | Arrival.Replay { points } ->
      Json.Object
        [
          ("process", String "replay");
          ( "points",
            Array
              (List.map
                 (fun (at, r) ->
                   Json.Array [ Number (Time.to_float_s at); Number r ])
                 points) );
        ]

(* --- Faults -------------------------------------------------------------- *)

let target_of_json path = function
  | Json.Null -> None
  | Json.String "ingress" -> Some Sw_net.Address.Ingress
  | Json.String "egress" -> Some Sw_net.Address.Egress
  | _ -> bad path {|expected "ingress", "egress" or null|}

let target_to_json = function
  | None -> Json.Null
  | Some Sw_net.Address.Ingress -> Json.String "ingress"
  | Some Sw_net.Address.Egress -> Json.String "egress"
  | Some _ -> Json.Null

let fault_of_json path fields =
  let num name = req fields path name as_num in
  let int name = req fields path name as_int in
  let target = opt fields path "target" ~default:None target_of_json in
  match req fields path "kind" as_str with
  | "link-loss" -> Sw_fault.Fault.Link_loss { target; p = num "p" }
  | "link-latency" ->
      Sw_fault.Fault.Link_latency { target; extra = time_of_us (num "extra_us") }
  | "machine-stall" -> Sw_fault.Fault.Machine_stall { machine = int "machine" }
  | "machine-slowdown" ->
      Sw_fault.Fault.Machine_slowdown
        { machine = int "machine"; factor = num "factor" }
  | "dom0-pause" -> Sw_fault.Fault.Dom0_pause { machine = int "machine" }
  | "mcast-partition" ->
      Sw_fault.Fault.Mcast_partition { vm = int "vm"; replica = int "replica" }
  | "replica-crash" ->
      let restart_after =
        opt fields path "restart_after_ms" ~default:None (fun p v ->
            Some (time_of_ms (as_num p v)))
      in
      Sw_fault.Fault.Replica_crash
        { vm = int "vm"; replica = int "replica"; restart_after }
  | k -> bad (path ^ ".kind") (Printf.sprintf "unknown fault kind %S" k)

let fault_to_json = function
  | Sw_fault.Fault.Link_loss { target; p } ->
      [ ("kind", Json.String "link-loss"); ("target", target_to_json target);
        ("p", Json.Number p) ]
  | Sw_fault.Fault.Link_latency { target; extra } ->
      [ ("kind", Json.String "link-latency"); ("target", target_to_json target);
        ("extra_us", Json.Number (Time.to_float_us extra)) ]
  | Sw_fault.Fault.Machine_stall { machine } ->
      [ ("kind", Json.String "machine-stall");
        ("machine", Json.Number (float_of_int machine)) ]
  | Sw_fault.Fault.Machine_slowdown { machine; factor } ->
      [ ("kind", Json.String "machine-slowdown");
        ("machine", Json.Number (float_of_int machine));
        ("factor", Json.Number factor) ]
  | Sw_fault.Fault.Dom0_pause { machine } ->
      [ ("kind", Json.String "dom0-pause");
        ("machine", Json.Number (float_of_int machine)) ]
  | Sw_fault.Fault.Mcast_partition { vm; replica } ->
      [ ("kind", Json.String "mcast-partition");
        ("vm", Json.Number (float_of_int vm));
        ("replica", Json.Number (float_of_int replica)) ]
  | Sw_fault.Fault.Replica_crash { vm; replica; restart_after } ->
      [ ("kind", Json.String "replica-crash");
        ("vm", Json.Number (float_of_int vm));
        ("replica", Json.Number (float_of_int replica)) ]
      @
      (match restart_after with
      | None -> []
      | Some t -> [ ("restart_after_ms", Json.Number (Time.to_float_ms t)) ])

let schedule_of_json path v =
  List.mapi
    (fun i w ->
      let p = Printf.sprintf "%s[%d]" path i in
      let fields = as_obj p w in
      {
        Sw_fault.Schedule.at =
          time_of_ms (req fields p "at_ms" as_num);
        span = time_of_ms (opt fields p "span_ms" ~default:0. as_num);
        fault = fault_of_json p fields;
      })
    (as_arr path v)

let schedule_to_json schedule =
  Json.Array
    (List.map
       (fun (w : Sw_fault.Schedule.spec) ->
         Json.Object
           ([
              ("at_ms", Json.Number (Time.to_float_ms w.Sw_fault.Schedule.at));
              ("span_ms", Json.Number (Time.to_float_ms w.span));
            ]
           @ fault_to_json w.fault))
       schedule)

(* --- Workload ------------------------------------------------------------ *)

let class_of_json path v =
  let fields = as_obj path v in
  {
    Flowgen.name = req fields path "name" as_str;
    weight = opt fields path "weight" ~default:1. as_num;
    resp_bytes = req fields path "resp_bytes" as_int;
    cached = opt fields path "cached" ~default:true as_bool;
  }

let class_to_json (c : Flowgen.cls) =
  Json.Object
    [
      ("name", String c.Flowgen.name);
      ("weight", Number c.weight);
      ("resp_bytes", Number (float_of_int c.resp_bytes));
      ("cached", Bool c.cached);
    ]

let cache_of_json path v =
  let fields = as_obj path v in
  let tiers =
    List.mapi
      (fun i t ->
        let p = Printf.sprintf "%s.tiers[%d]" path i in
        let tf = as_obj p t in
        {
          Cache.capacity = req tf p "capacity" as_int;
          hit_cost = time_of_us (req tf p "hit_us" as_num);
        })
      (req fields path "tiers" as_arr)
  in
  {
    Cache.tiers;
    origin_cost = time_of_us (req fields path "origin_us" as_num);
  }

let cache_to_json (c : Cache.config) =
  Json.Object
    [
      ( "tiers",
        Array
          (List.map
             (fun (t : Cache.tier) ->
               Json.Object
                 [
                   ("capacity", Number (float_of_int t.Cache.capacity));
                   ("hit_us", Number (Time.to_float_us t.hit_cost));
                 ])
             c.Cache.tiers) );
      ("origin_us", Number (Time.to_float_us c.origin_cost));
    ]

let default_classes =
  [ { Flowgen.name = "kv"; weight = 1.; resp_bytes = 2048; cached = true } ]

let workload_of_json path fields =
  let service =
    match field fields "service" with
    | Some v -> as_obj (path ^ ".service") v
    | None -> []
  in
  let spath = path ^ ".service" in
  let conns =
    match field fields "connections" with
    | Some v -> as_obj (path ^ ".connections") v
    | None -> []
  in
  let cpath = path ^ ".connections" in
  {
    seed = opt fields path "seed" ~default:0xA77ACCL as_seed;
    duration =
      time_of_s (opt fields path "duration_s" ~default:10. as_num);
    replicas = opt fields path "replicas" ~default:3 as_int;
    stopwatch = opt fields path "stopwatch" ~default:true as_bool;
    arrival = req fields path "arrival" arrival_of_json;
    classes =
      (match field service "classes" with
      | None -> default_classes
      | Some v ->
          List.mapi
            (fun i c -> class_of_json (Printf.sprintf "%s.classes[%d]" spath i) c)
            (as_arr (spath ^ ".classes") v));
    keys = opt service spath "keys" ~default:256 as_int;
    theta = opt service spath "zipf_theta" ~default:1.1 as_num;
    cache =
      opt fields path "cache" ~default:Kv.default_config.Kv.cache cache_of_json;
    pool = opt conns cpath "pool" ~default:8 as_int;
    max_per_conn = opt conns cpath "max_per_conn" ~default:64 as_int;
    request_bytes = opt service spath "request_bytes" ~default:120 as_int;
    compute_branches = opt service spath "compute_branches" ~default:20_000 as_int;
    header_bytes = opt service spath "header_bytes" ~default:64 as_int;
    faults = opt fields path "faults" ~default:[] schedule_of_json;
    attack =
      opt fields path "attack" ~default:None (fun p v ->
          let af = as_obj p v in
          Some { ping_rate_per_s = opt af p "ping_rate_per_s" ~default:40. as_num });
    topology =
      opt fields path "topology" ~default:None (fun p v ->
          let tf = as_obj p v in
          Some
            {
              hosts = req tf p "hosts" as_int;
              shards = opt tf p "shards" ~default:1 as_int;
              east_west_rate_per_s =
                opt tf p "east_west_rate_per_s" ~default:0. as_num;
              east_west_stride = opt tf p "east_west_stride" ~default:1 as_int;
              partition =
                opt tf p "partition" ~default:Contiguous (fun pp v ->
                    match as_str pp v with
                    | "contiguous" -> Contiguous
                    | "affinity" -> Affinity
                    | s ->
                        bad pp
                          (Printf.sprintf
                             {|unknown partition %S (want "contiguous" or "affinity")|}
                             s));
              replica_link_us =
                opt tf p "replica_link_us" ~default:None (fun pp v ->
                    Some (as_num pp v));
              quantum_us =
                opt tf p "quantum_us" ~default:None (fun pp v ->
                    Some (as_num pp v));
            });
    load_multipliers =
      opt fields path "load_multipliers" ~default:[ 1. ] (fun p v ->
          List.map (as_num p) (as_arr p v));
    trace = opt fields path "trace" ~default:false as_bool;
    leak_audit = opt fields path "leak_audit" ~default:false as_bool;
    profile = opt fields path "profile" ~default:false as_bool;
  }

let workload_to_json (w : workload) =
  [
    ("seed", Json.Number (Int64.to_float w.seed));
    ("duration_s", Json.Number (Time.to_float_s w.duration));
    ("replicas", Json.Number (float_of_int w.replicas));
    ("stopwatch", Json.Bool w.stopwatch);
    ("arrival", arrival_to_json w.arrival);
    ( "service",
      Json.Object
        [
          ("classes", Array (List.map class_to_json w.classes));
          ("keys", Number (float_of_int w.keys));
          ("zipf_theta", Number w.theta);
          ("request_bytes", Number (float_of_int w.request_bytes));
          ("compute_branches", Number (float_of_int w.compute_branches));
          ("header_bytes", Number (float_of_int w.header_bytes));
        ] );
    ("cache", cache_to_json w.cache);
    ( "connections",
      Json.Object
        [
          ("pool", Number (float_of_int w.pool));
          ("max_per_conn", Number (float_of_int w.max_per_conn));
        ] );
    ("load_multipliers", Json.Array (List.map (fun m -> Json.Number m) w.load_multipliers));
    ("faults", schedule_to_json w.faults);
  ]
  @ (match w.attack with
    | None -> []
    | Some a ->
        [
          ( "attack",
            Json.Object [ ("ping_rate_per_s", Number a.ping_rate_per_s) ] );
        ])
  @ (match w.topology with
    | None -> []
    | Some t ->
        [
          ( "topology",
            Json.Object
              ([
                 ("hosts", Json.Number (float_of_int t.hosts));
                 ("shards", Json.Number (float_of_int t.shards));
                 ("east_west_rate_per_s", Json.Number t.east_west_rate_per_s);
                 ( "east_west_stride",
                   Json.Number (float_of_int t.east_west_stride) );
                 ( "partition",
                   Json.String
                     (match t.partition with
                     | Contiguous -> "contiguous"
                     | Affinity -> "affinity") );
               ]
              @
              (match t.replica_link_us with
              | None -> []
              | Some us -> [ ("replica_link_us", Json.Number us) ])
              @
              match t.quantum_us with
              | None -> []
              | Some us -> [ ("quantum_us", Json.Number us) ]) );
        ])
  @ [
      ("trace", Json.Bool w.trace);
      ("leak_audit", Json.Bool w.leak_audit);
      ("profile", Json.Bool w.profile);
    ]

(* --- Attack -------------------------------------------------------------- *)

let attack_of_json path fields =
  let d = Scenario.default in
  {
    seed = opt fields path "seed" ~default:d.Scenario.seed as_seed;
    duration =
      time_of_s (opt fields path "duration_s" ~default:60. as_num);
    replicas =
      opt fields path "replicas"
        ~default:d.Scenario.config.Sw_vmm.Config.replicas as_int;
    ping_rate_per_s =
      opt fields path "ping_rate_per_s" ~default:d.Scenario.ping_rate_per_s
        as_num;
    colluder_burst =
      opt fields path "colluder_burst" ~default:d.Scenario.colluder_burst as_int;
    background_rate_per_s =
      opt fields path "background_rate_per_s"
        ~default:d.Scenario.background_rate_per_s as_num;
    variants =
      List.mapi
        (fun i v ->
          let p = Printf.sprintf "%s.variants[%d]" path i in
          let vf = as_obj p v in
          {
            key = req vf p "key" as_str;
            baseline = opt vf p "baseline" ~default:false as_bool;
            victim = opt vf p "victim" ~default:false as_bool;
            colluder = opt vf p "colluder" ~default:false as_bool;
          })
        (req fields path "variants" as_arr);
  }

let attack_to_json (a : attack) =
  [
    ("seed", Json.Number (Int64.to_float a.seed));
    ("duration_s", Json.Number (Time.to_float_s a.duration));
    ("replicas", Json.Number (float_of_int a.replicas));
    ("ping_rate_per_s", Json.Number a.ping_rate_per_s);
    ("colluder_burst", Json.Number (float_of_int a.colluder_burst));
    ("background_rate_per_s", Json.Number a.background_rate_per_s);
    ( "variants",
      Json.Array
        (List.map
           (fun v ->
             Json.Object
               [
                 ("key", String v.key);
                 ("baseline", Bool v.baseline);
                 ("victim", Bool v.victim);
                 ("colluder", Bool v.colluder);
               ])
           a.variants) );
  ]

(* --- Top level ----------------------------------------------------------- *)

let of_json json =
  match
    let fields = as_obj "scenario" json in
    let name = req fields "scenario" "name" as_str in
    let kind =
      match req fields "scenario" "kind" as_str with
      | "workload" -> Workload (workload_of_json "scenario" fields)
      | "attack" -> Attack (attack_of_json "scenario" fields)
      | k -> bad "scenario.kind" (Printf.sprintf "unknown kind %S" k)
    in
    { name; kind }
  with
  | t -> Ok t
  | exception Bad msg -> Error msg

let to_json t =
  let kind, rest =
    match t.kind with
    | Workload w -> ("workload", workload_to_json w)
    | Attack a -> ("attack", attack_to_json a)
  in
  Json.Object
    ((("name", Json.String t.name) :: ("kind", Json.String kind) :: []) @ rest)

let parse s = Result.bind (Json.parse s) of_json
let print t = Json.to_string (to_json t)

let load_file file =
  match In_channel.with_open_bin file In_channel.input_all with
  | contents -> (
      match parse contents with
      | Ok t -> Ok t
      | Error e -> Error (Printf.sprintf "%s: %s" file e))
  | exception Sys_error e -> Error e

(* --- Compilation --------------------------------------------------------- *)

let attack_specs (a : attack) =
  let base =
    Scenario.with_replicas
      {
        Scenario.default with
        Scenario.duration = a.duration;
        seed = a.seed;
        ping_rate_per_s = a.ping_rate_per_s;
        colluder_burst = a.colluder_burst;
        background_rate_per_s = a.background_rate_per_s;
      }
      a.replicas
  in
  List.map
    (fun v ->
      ( v.key,
        {
          base with
          Scenario.baseline = v.baseline;
          victim = v.victim;
          colluder = v.colluder;
        } ))
    a.variants

(* The shard partition rule, checked before any cloud is built: cells
   (one replica group + its client hosts) are the partition atoms, and
   Cloud.create's contiguous machine blocks align with cell boundaries
   exactly when cells divide evenly into shards. *)
let check_topology (w : workload) =
  match w.topology with
  | None -> Ok ()
  | Some t ->
      if not w.stopwatch then
        Error "topology: requires stopwatch = true (baseline is single-machine)"
      else if w.attack <> None then
        Error "topology: attack probes are not supported on a datacenter run"
      else if t.hosts < w.replicas then
        Error
          (Printf.sprintf "topology.hosts: %d hosts cannot place %d replicas"
             t.hosts w.replicas)
      else if t.hosts mod w.replicas <> 0 then
        Error
          (Printf.sprintf
             "topology.hosts: %d is not a multiple of replicas (%d)" t.hosts
             w.replicas)
      else if t.shards < 1 then Error "topology.shards: must be >= 1"
      else if t.hosts / w.replicas mod t.shards <> 0 then
        Error
          (Printf.sprintf
             "topology.shards: %d cells (hosts/replicas) do not divide into \
              %d shards; replica groups would cross shard blocks"
             (t.hosts / w.replicas) t.shards)
      else if t.east_west_rate_per_s < 0. then
        Error "topology.east_west_rate_per_s: must be >= 0"
      else if t.east_west_stride < 1 then
        Error "topology.east_west_stride: must be >= 1"
      else if
        match t.replica_link_us with Some us -> us <= 0. | None -> false
      then Error "topology.replica_link_us: must be > 0"
      else if match t.quantum_us with Some us -> us <= 0. | None -> false
      then Error "topology.quantum_us: must be > 0"
      else if t.shards > 1 && w.faults <> [] then
        Error "topology: fault schedules are not supported on a sharded run"
      else if t.shards > 1 && w.trace then
        Error "topology: tracing is not supported on a sharded run"
      else if t.shards > 1 && w.leak_audit then
        Error
          "topology: leak audits (which trace) are not supported on a \
           sharded run"
      else Ok ()

let scaled w m =
  let arrival =
    match w.arrival with
    | Arrival.Constant { rate_per_s } ->
        Arrival.Constant { rate_per_s = rate_per_s *. m }
    | Arrival.Poisson { rate_per_s } ->
        Arrival.Poisson { rate_per_s = rate_per_s *. m }
    | Arrival.Diurnal { base_per_s; amplitude; period } ->
        Arrival.Diurnal { base_per_s = base_per_s *. m; amplitude; period }
    | Arrival.Flash { base_per_s; peak_per_s; at; ramp; hold } ->
        Arrival.Flash
          {
            base_per_s = base_per_s *. m;
            peak_per_s = peak_per_s *. m;
            at;
            ramp;
            hold;
          }
    | Arrival.Replay { points } ->
        Arrival.Replay
          { points = List.map (fun (t, r) -> (t, r *. m)) points }
  in
  { w with arrival }

let workload_variants ~name w =
  match w.load_multipliers with
  | [] | [ 1. ] -> [ (name, w) ]
  | multipliers ->
      List.mapi
        (fun i m ->
          let seed =
            Int64.add w.seed (Int64.mul (Int64.of_int i) 0x9E3779B97F4A7C15L)
          in
          ( Printf.sprintf "%s/x%g" name m,
            { (scaled w m) with seed; load_multipliers = [ m ] } ))
        multipliers
