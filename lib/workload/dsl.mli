(** The declarative scenario DSL: [.scn] files.

    A [.scn] file is one JSON object (parsed with the dependency-free
    {!Sw_obs.Json} reader, so malformed files report line/column) that
    describes a complete scenario as data — arrival process, service mix,
    cache tiers, connection policy, fault schedule, attack placement,
    trace/profile flags, duration — and compiles into the existing
    in-tree spec types. Two kinds exist:

    - [kind = "workload"]: an open-loop traffic scenario compiled into a
      {!Flowgen.config} + {!Kv.config} cloud run (see [Run]). An optional
      ["load_multipliers"] list expands the scenario into one run per
      multiplier (arrival rates scaled), which is what [-j N] shards.
    - [kind = "attack"]: a Fig.-4-style attack scenario family compiled
      into {!Sw_attack.Scenario.spec} values, one per ["variants"] entry —
      proving the hand-coded figure benches are representable as data
      ([examples/fig4.scn] reproduces [bench/fig4.ml] byte-identically).

    Omitted fields take documented defaults, so minimal files stay small;
    {!to_json} always re-emits every field, and [parse -> print -> parse]
    is the identity (the round-trip property the tests pin). *)

type attack_variant = {
  key : string;  (** Runner job key, e.g. ["fig4/sw/victim"]. *)
  baseline : bool;
  victim : bool;
  colluder : bool;
}

type attack = {
  seed : int64;
  duration : Sw_sim.Time.t;
  replicas : int;
  ping_rate_per_s : float;
  colluder_burst : int;
  background_rate_per_s : float;
  variants : attack_variant list;
}

(** Attack placement inside a workload scenario: a co-resident observer VM
    (the Fig. 4 receiver) deployed on the service's machines, pinged from
    an external host — pointing the attack library at the workload's
    cache-asymmetry channel. *)
type attack_probe = { ping_rate_per_s : float }

(** How the shard partitioner assigns cells to shards: [Contiguous] cuts
    static contiguous blocks, [Affinity] runs {!Sw_placement.Affinity}
    over the cell traffic graph (east-west flows are the edge weights) so
    chatty cells land co-shard. Either way the report bytes are identical
    — the partition is an execution detail. *)
type partition = Contiguous | Affinity

(** Datacenter-scale topology: [hosts] machines carved into
    [hosts/replicas] service cells (one replica group + one client host +
    one east-west host each), simulated over [shards] conservative
    shards ({!Stopwatch.Cloud.create}'s [?shards]). [east_west_rate_per_s]
    adds a low-rate flow from every cell toward the cell
    [east_west_stride] further on (mod the cell count; default 1, the
    neighbour ring) — genuine cross-shard traffic when shards > 1, and
    with a stride spanning contiguous blocks, exactly the chatty-but-
    splittable pattern affinity partitioning repairs. [replica_link_us],
    when set, gives every cell's intra-cell VMM pairs a fast rack-local
    interconnect at that latency (zero jitter) below the 500 us fabric
    default — the per-pair lookahead matrix keeps such links from
    throttling cross-shard windows. [quantum_us], when set, overrides the
    VMM scheduler quantum (default 200 us) for every machine in the
    topology: 10k-host sweeps use a coarser quantum so simulation cost is
    dominated by the traffic under study rather than by idle scheduler
    slices. A fidelity knob, applied uniformly — shard count and partition
    still never change the report bytes. *)
type topology = {
  hosts : int;
  shards : int;
  east_west_rate_per_s : float;
  east_west_stride : int;
  partition : partition;
  replica_link_us : float option;
  quantum_us : float option;
}

type workload = {
  seed : int64;
  duration : Sw_sim.Time.t;
  replicas : int;
  stopwatch : bool;  (** [false] = unmodified-Xen baseline. *)
  arrival : Arrival.t;
  classes : Flowgen.cls list;
  keys : int;
  theta : float;  (** Zipf exponent of the key popularity. *)
  cache : Cache.config;
  pool : int;
  max_per_conn : int;
  request_bytes : int;
  compute_branches : int;
  header_bytes : int;
  faults : Sw_fault.Schedule.t;
  attack : attack_probe option;
  topology : topology option;
  load_multipliers : float list;
  trace : bool;
  leak_audit : bool;
      (** Record leak-observation series during the run: forces the trace
          sink on and fills {!Run.result}'s [leak_series] from the lineage
          [observations] fold plus the attack probe's inter-delivery
          series. *)
  profile : bool;
}

type kind = Attack of attack | Workload of workload
type t = { name : string; kind : kind }

(** Structured decode with field-path error context (e.g.
    ["arrival.process: unknown process \"diurnl\""]). *)
val of_json : Sw_obs.Json.t -> (t, string) result

(** Re-emits every field explicitly (defaults included). *)
val to_json : t -> Sw_obs.Json.t

(** [parse s] = JSON parse (line/column errors) + {!of_json}. *)
val parse : string -> (t, string) result

(** [print t] = [Sw_obs.Json.to_string (to_json t)]. *)
val print : t -> string

(** Reads and parses a file; errors are prefixed with the path. *)
val load_file : string -> (t, string) result

(** Compile an attack scenario family into runner-keyed specs, in variant
    order. *)
val attack_specs : attack -> (string * Sw_attack.Scenario.spec) list

(** Validates the topology block against the partition rule (hosts a
    multiple of replicas; cells dividing evenly into shards; no faults,
    trace, or attack probe on a sharded run). [Ok ()] when there is no
    topology block. *)
val check_topology : workload -> (unit, string) result

(** [scaled w m] multiplies every arrival rate by [m]. *)
val scaled : workload -> float -> workload

(** [workload_variants ~name w] expands [w.load_multipliers] into one
    scaled run per multiplier, keyed ["<name>/x<mult>"], each with a seed
    derived deterministically from [w.seed] and its position. A singleton
    [1.0] sweep yields exactly [(name, w)]. *)
val workload_variants : name:string -> workload -> (string * workload) list
