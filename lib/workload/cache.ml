module Time = Sw_sim.Time

type tier = { capacity : int; hit_cost : Time.t }
type config = { tiers : tier list; origin_cost : Time.t }

let validate_config { tiers; origin_cost } =
  if tiers = [] then invalid_arg "Cache: no tiers";
  List.iter
    (fun t ->
      if t.capacity <= 0 then invalid_arg "Cache: non-positive tier capacity";
      if Time.is_negative t.hit_cost then invalid_arg "Cache: negative hit cost")
    tiers;
  if Time.is_negative origin_cost then invalid_arg "Cache: negative origin cost"

(* One intrusive doubly-linked LRU list per tier: head = most recent. *)
type node = {
  key : int;
  mutable tier : int;
  mutable prev : node option;
  mutable next : node option;
}

type dll = {
  mutable head : node option;
  mutable tail : node option;
  mutable size : int;
}

type t = {
  tiers : tier array;
  lists : dll array;
  index : (int, node) Hashtbl.t;
  origin_cost : Time.t;
  mutable hits : int;
  mutable misses : int;
}

type outcome = Hit of { tier : int; cost : Time.t } | Miss of { cost : Time.t }

let create config =
  validate_config config;
  let tiers = Array.of_list config.tiers in
  {
    tiers;
    lists = Array.init (Array.length tiers) (fun _ -> { head = None; tail = None; size = 0 });
    index = Hashtbl.create 256;
    origin_cost = config.origin_cost;
    hits = 0;
    misses = 0;
  }

let unlink l n =
  (match n.prev with Some p -> p.next <- n.next | None -> l.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> l.tail <- n.prev);
  n.prev <- None;
  n.next <- None;
  l.size <- l.size - 1

let push_front l n =
  n.prev <- None;
  n.next <- l.head;
  (match l.head with Some h -> h.prev <- Some n | None -> l.tail <- Some n);
  l.head <- Some n;
  l.size <- l.size + 1

let pop_tail l =
  match l.tail with
  | None -> None
  | Some n ->
      unlink l n;
      Some n

(* Restore every tier's capacity invariant: each overfull tier demotes its
   LRU tail to the head of the next tier; the last tier's tail is evicted
   outright. *)
let cascade t =
  let last = Array.length t.tiers - 1 in
  for i = 0 to last do
    while t.lists.(i).size > t.tiers.(i).capacity do
      match pop_tail t.lists.(i) with
      | None -> assert false
      | Some n ->
          if i = last then Hashtbl.remove t.index n.key
          else begin
            n.tier <- i + 1;
            push_front t.lists.(i + 1) n
          end
    done
  done

let access t key =
  match Hashtbl.find_opt t.index key with
  | Some n ->
      let found = n.tier in
      unlink t.lists.(found) n;
      n.tier <- 0;
      push_front t.lists.(0) n;
      cascade t;
      t.hits <- t.hits + 1;
      Hit { tier = found; cost = t.tiers.(found).hit_cost }
  | None ->
      let n = { key; tier = 0; prev = None; next = None } in
      Hashtbl.replace t.index key n;
      push_front t.lists.(0) n;
      cascade t;
      t.misses <- t.misses + 1;
      Miss { cost = t.origin_cost }

let hits t = t.hits
let misses t = t.misses
let population t = Hashtbl.length t.index
