(** Coordination state for the replicas of one guest VM: virtual-time skew
    limiting ("slow the fastest replica"), epoch-based virtual-clock
    resynchronisation, and divergence accounting.

    The group object is shared by the VMMs hosting the replicas, but all
    inter-replica information flow it models (epoch reports) still travels as
    real network messages; the shared object only holds each member's locally
    known state. *)

type mode = Stopwatch | Baseline

type t
type member

(** [create ?metrics ~vm ~config ~mode ()] registers the group's divergence
    and skew-block counters ([vm<id>.divergences], [vm<id>.skew_blocks]) in
    [metrics] — the simulation registry when deployed by the cloud, a private
    one when omitted (standalone tests). *)
val create :
  ?metrics:Sw_obs.Registry.t -> vm:int -> config:Config.t -> mode:mode -> unit -> t
val vm : t -> int
val mode : t -> mode
val config : t -> Config.t

(** [add_member t ~machine ~wake ~apply_slope ~send_report] registers the
    next replica (ids assigned 0, 1, ...). [wake] re-polls the hosting
    machine's scheduler; [apply_slope] re-parameterises the local guest's
    virtual clock; [send_report] transmits an epoch report payload to the
    peer VMMs. Raises when the group is already full. *)
val add_member :
  t ->
  machine:int ->
  wake:(unit -> unit) ->
  apply_slope:(at_instr:int64 -> slope_ns_per_branch:float -> unit) ->
  send_report:(epoch:int -> d:Sw_sim.Time.t -> r:Sw_sim.Time.t -> unit) ->
  member

val replica_id : member -> int
val machine_of : member -> int

(** The member with the given replica id, if registered. *)
val member_by_id : t -> int -> member option

(** Latest virtual time reported by this member (its last VM exit). *)
val member_virt : member -> Sw_sim.Time.t

(** Whether the group has all [config.replicas] members. *)
val complete : t -> bool

(** [note_exit t m ~now ~virt ~instr] records a VM exit: updates skew
    blocking across the group and, when [instr] crosses an epoch boundary,
    emits this member's epoch report and blocks it until the epoch
    resolves. *)
val note_exit :
  t -> member -> now:Sw_sim.Time.t -> virt:Sw_sim.Time.t -> instr:int64 -> unit

(** True when the member must not run (skew-blocked or epoch-blocked). *)
val blocked : t -> member -> bool

(** Delivery of a peer's epoch report at this member's VMM. *)
val receive_report :
  t ->
  at:member ->
  from_replica:int ->
  epoch:int ->
  d:Sw_sim.Time.t ->
  r:Sw_sim.Time.t ->
  unit

(** Records a synchrony violation (a median delivery time already passed —
    paper footnote 4). *)
val record_divergence : t -> unit

val divergences : t -> int

(** Epochs fully resolved so far (minimum over members). *)
val epochs_resolved : t -> int

(** Times the skew limiter has descheduled a (newly) fastest replica. *)
val skew_blocks : t -> int

(** Median of an odd-length array of times. *)
val median_time : Sw_sim.Time.t array -> Sw_sim.Time.t

(** {1 Graceful degradation}

    The watchdog ejects unresponsive members; the group then votes over the
    largest odd quorum the survivors can field (the active members with the
    lowest replica ids) instead of wedging on the missing reports. A
    restarted replica rejoins through {!reinstate} after its VMM has resynced
    its state from a survivor. *)

(** Whether the member is a group participant (not ejected). *)
val active : member -> bool

(** Real time of the member's last sign of life (VM exit, heartbeat, or
    coordination message observed by a peer). *)
val last_seen : member -> Sw_sim.Time.t

(** [note_seen t m ~now] advances [m]'s liveness timestamp (monotone). *)
val note_seen : t -> member -> now:Sw_sim.Time.t -> unit

val active_count : t -> int

(** Current voting-population size: the largest odd number of active
    members ([0] when none are active). *)
val quorum : t -> int

(** Replica ids of the current voters — the [quorum t] active members with
    the lowest ids, ascending. *)
val quorum_ids : t -> int list

(** Whether this member currently votes. *)
val in_quorum : t -> member -> bool

(** [eject t m ~now] removes [m] from the voting population: recomputes skew
    over the survivors, re-attempts epoch resolution over the new quorum, and
    notifies {!on_membership_change} listeners. Idempotent. *)
val eject : t -> member -> now:Sw_sim.Time.t -> unit

(** [reinstate t m ~now ~virt ~like] returns an ejected member to the
    group at virtual time [virt], adopting the epoch position and report
    buffer of the active survivor [like] (the resync barrier — the caller
    must already have rebuilt the member's guest to match). Raises if [m] is
    active or [like] is not. *)
val reinstate :
  t -> member -> now:Sw_sim.Time.t -> virt:Sw_sim.Time.t -> like:member -> unit

(** [on_membership_change t f] registers [f] to run after every {!eject} /
    {!reinstate}, once group state is consistent. Listeners run in
    registration order. *)
val on_membership_change : t -> (unit -> unit) -> unit

(** Members ejected so far ([vm<id>.ejections]). *)
val ejections : t -> int

(** Members reinstated so far ([vm<id>.reintegrations]). *)
val reintegrations : t -> int

(** Total real time the group has spent with at least one ejected member,
    in nanoseconds, including the currently open window (the closed-window
    total lives in the [vm<id>.degraded_ns] sum). *)
val degraded_ns : t -> now:Sw_sim.Time.t -> float
