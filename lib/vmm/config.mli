(** StopWatch configuration.

    The two central offsets mirror the paper (Sec. VII-A): [delta_n], the
    virtual-time offset added to a guest's last-exit virtual time to form a
    network-interrupt delivery proposal (translating to 7–12 ms of real time
    on the paper's platform), and [delta_d], the offset for disk/DMA
    interrupts (8–15 ms). *)

type epoch = {
  interval_branches : int64;
      (** The paper's I: branches per resynchronisation epoch. *)
  slope_l : float;  (** Lower clamp for the adjusted slope (ns/branch). *)
  slope_u : float;  (** Upper clamp. *)
}

(** Liveness watchdog parameters (graceful degradation). *)
type watchdog = {
  timeout : Sw_sim.Time.t;
      (** A replica unheard-from for this long is suspected dead. Must
          exceed [vmm_heartbeat]. *)
  period : Sw_sim.Time.t;  (** How often the watchdog sweeps the group. *)
  retries : int;
      (** Suspicions tolerated before ejection: the replica is ejected on
          the [retries + 1]-th consecutive suspicious sweep. *)
}

type t = {
  quantum : Sw_sim.Time.t;
      (** Scheduler slice; guest-caused VM exits occur at slice ends. *)
  branches_per_ns : float;  (** Guest instruction retirement rate. *)
  slope_ns_per_branch : float;  (** Initial virtual-clock slope. *)
  delta_n : Sw_sim.Time.t;  (** Network-interrupt virtual offset. *)
  delta_d : Sw_sim.Time.t;  (** Disk/DMA-interrupt virtual offset. *)
  skew_bound : Sw_sim.Time.t;
      (** Max allowed virtual-time lead of the fastest replica over the
          second fastest; the fastest is descheduled beyond this. *)
  pit_period : Sw_sim.Time.t option;  (** Guest PIT tick (250 Hz = 4 ms). *)
  epoch : epoch option;  (** Virtual-time resync; [None] free-runs. *)
  replicas : int;  (** Replicas per guest VM (odd; the paper uses 3). *)
  dom0_per_packet : Sw_sim.Time.t;
      (** Device-model CPU cost a machine pays per packet in or out, and per
          disk request/completion. QEMU's emulated RTL-8139 path costs tens
          of microseconds per packet; the default is 50 us. *)
  baseline_inject_delay : Sw_sim.Time.t;
      (** Emulation latency for interrupt delivery on unmodified Xen. *)
  proposal_size : int;  (** Wire size of proposal / epoch messages. *)
  mcast_nak_delay : Sw_sim.Time.t;
      (** Receiver NAK delay of the PGM-style multicast used for inbound
          replication and VMM coordination. *)
  mcast_nak_retries : int;
      (** NAK re-sends (exponential backoff) before a receiver abandons a
          gap instead of stalling; default 5. *)
  mcast_heartbeat : Sw_sim.Time.t option;
      (** Sender heartbeat period enabling tail-loss recovery; [None] (the
          default) suits a lossless fabric. *)
  nic_bps : int;  (** Machine NIC serialisation rate. *)
  dma_bps : int;  (** DMA engine transfer rate (one engine per machine). *)
  replay_log : bool;
      (** Record each replica's execution history (slices, injections, clock
          re-parameterisations) so a diverged replica can be rebuilt by
          deterministic replay ({!Vmm.rebuild}; paper footnote 4). Off by
          default: the log grows with the run. *)
  disk : Sw_disk.Disk.params;
  vmm_heartbeat : Sw_sim.Time.t option;
      (** Period of per-replica liveness heartbeats multicast to the group.
          Scheduled by the hosting VMM independently of guest execution, so
          an epoch-blocked (but live) replica keeps heartbeating. [None]
          (the default) disables them. *)
  watchdog : watchdog option;
      (** Liveness watchdog ejecting unresponsive replicas so the group
          degrades to a smaller odd quorum instead of wedging. Requires
          [vmm_heartbeat]. [None] (the default) disables it. *)
  egress_vote_expiry : Sw_sim.Time.t option;
      (** Retire incomplete egress vote entries this long after their median
          copy released (bounds egress memory under tunnel loss); [None]
          (the default) keeps entries until all copies arrive. *)
}

(** Slice length in branches ([quantum * branches_per_ns]). *)
val slice_branches : t -> int64

val default : t

(** [validate t] checks invariants (odd replicas, positive quantum, ...);
    raises [Invalid_argument] with a reason. *)
val validate : t -> unit
