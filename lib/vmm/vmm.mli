(** The per-machine StopWatch VMM: hosts guest VM replicas, drives their
    slices, and implements the device models.

    Network device model (paper Sec. V-B): inbound guest packets (replicated
    by the ingress) are buffered hidden from the guest; the VMM proposes
    [last-exit virtual time + delta_n] as the delivery time, exchanges
    proposals with the peer VMMs, adopts the median, and injects the
    interrupt at the first guest-caused VM exit whose virtual time has
    reached it. Disk device model: completion interrupts are injected at
    [issue virtual time + delta_d] once the (real) transfer has finished.
    Output packets are tunnelled to the egress node, which releases each on
    its median-timed copy.

    In [Baseline] mode (unmodified Xen), packets route directly to the
    hosting machine and interrupts are injected at the first exit after a
    small emulation delay; no replication machinery runs. *)

type t

(** One hosted guest VM replica. *)
type instance

(** [create machine] registers the VMM as the network handler of the
    machine's address. *)
val create : Machine.t -> t

val machine : t -> Machine.t

(** [host ?channel t ~group ~app ~peers] starts the next replica of
    [group]'s VM on this machine. [peers] are the other replicas' VMM
    addresses (empty in baseline mode). When [channel] (the VM's PGM-style
    multicast group, shared with the peers and the ingress) is given,
    proposals and epoch reports travel over it — reliable under fabric loss,
    as the paper's OpenPGM usage provides; otherwise they go as plain
    unicast packets. The guest boots immediately at the current time. *)
val host :
  ?channel:Sw_net.Multicast.group ->
  ?start:Sw_sim.Time.t ->
  t ->
  group:Replica_group.t ->
  app:Sw_vm.App.factory ->
  peers:Sw_net.Address.t list ->
  instance

val instance_of_vm : t -> int -> instance option

(** The registry path prefix this replica's metrics live under:
    ["vmm.<machine>.vm<vm>"] (e.g. [<prefix>.net_deliveries],
    [<prefix>.median.source.r<k>]) — for reading them back out of a
    {!Sw_obs.Snapshot.t}. *)
val metric_prefix : instance -> string

val vm : instance -> int
val replica : instance -> int
val guest : instance -> Sw_vm.Guest.t

(** Network interrupts injected into this replica. *)
val net_deliveries : instance -> int

(** Disk interrupts injected into this replica (Fig. 7(b)'s quantity). *)
val disk_interrupts : instance -> int

(** DMA-completion interrupts injected into this replica. *)
val dma_interrupts : instance -> int

(** Virtual inter-delivery times of network interrupts, in ms — the
    attacker-observable quantity of Fig. 4(a). *)
val inter_delivery_virts_ms : instance -> float array

(** Times data was not ready by its virtual disk-delivery time. *)
val delta_d_violations : instance -> int

(** Per replica id, how many network-interrupt medians adopted that
    replica's proposal (ties split evenly). A collaborating attacker loading
    one machine tries to push that replica out of this distribution
    (paper Sec. IX). *)
val median_source_counts : instance -> float array

(** Packets this VMM could not attribute to a hosted guest. *)
val unknown_packets : t -> int

(** [set_trace i tr] makes the replica emit typed protocol events
    ({!Sw_obs.Event.Packet_proposed}, [Median_adopted], [Packet_delivered],
    [Vm_exit], [Disk_irq]/[Dma_irq], [Divergence]) into [tr] — used by the
    Fig. 2 reproduction and by protocol tests. Emission is lazy: with no
    sink attached, or the sink disabled, nothing is allocated or formatted.
    ([Sw_sim.Trace.t] is an alias of [Sw_obs.Trace.t], so sinks from either
    API work.) *)
val set_trace : instance -> Sw_obs.Trace.t -> unit

(** [rebuild i] reconstructs the replica's guest by deterministic replay of
    its recorded history (requires [Config.replay_log]); the clone's branch
    counter, virtual clock, application state and packet numbering all match
    the live guest — the recovery mechanism of paper footnote 4. Returns the
    clone without installing it. *)
val rebuild : instance -> Sw_vm.Guest.t

(** [recover i] rebuilds and swaps the clone in as the live guest. *)
val recover : instance -> unit

(** {1 Crash and restart (fault injection / graceful degradation)} *)

(** This replica's group membership handle (liveness and quorum queries). *)
val member : instance -> Replica_group.member

(** The replica's PGM endpoint on the VM's multicast channel, when hosted
    with one — the partition hook fault injection cuts. *)
val channel_endpoint : instance -> Sw_net.Multicast.endpoint option

(** [crash i] kills the replica process: its guest stops receiving slices,
    its heartbeats stop, and packets addressed to it are dropped. The VMM
    and machine keep running (process death, not machine death). Idempotent.
    Emits {!Sw_obs.Event.Fault_replica_crash} when traced. *)
val crash : instance -> unit

val crashed : instance -> bool

(** [reintegrate i ~from] restarts a crashed replica behind a resync
    barrier: rebuilds its guest by deterministic replay of the surviving
    peer replica [from]'s history (requires [Config.replay_log]), copies
    [from]'s pending-delivery horizon, and reinstates the member in the
    group ({!Replica_group.reinstate}) — quorum grows back and the watchdog
    resumes monitoring it. In-flight DMA completions are not recoverable
    across the barrier (in-flight disk completions are). Raises unless [i]
    is crashed and [from] is a live peer replica of the same VM. *)
val reintegrate : instance -> from:instance -> unit
