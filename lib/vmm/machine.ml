module Time = Sw_sim.Time
module Engine = Sw_sim.Engine
module Registry = Sw_obs.Registry

type resident = {
  name : string;
  runnable : unit -> bool;
  on_slice_end : slice_start:Sw_sim.Time.t -> unit;
}

type resident_state = { r : resident; mutable running : bool }

type t = {
  engine : Engine.t;
  network : Sw_net.Network.t;
  id : int;
  config : Config.t;
  slice_wall : Time.t;  (** Wall-clock duration of one guest slice. *)
  clock_offset : Time.t;
  disk : Sw_disk.Disk.t;
  mutable residents : resident_state array;
  mutable dom0_busy_until : Time.t;
  mutable nic_busy_until : Time.t;
  mutable dma_busy_until : Time.t;
  (* Fault-injection state: a stall freezes everything the machine would do
     until the given instant; a slowdown stretches guest slices by a factor.
     Both default to the identity and cost nothing when unused. *)
  mutable stalled_until : Time.t;
  mutable slowdown : float;
  m_slices : Registry.Counter.t;
  m_dom0_ns : Registry.Counter.t;
}

let create engine network ~id ~config ?(rate_multiplier = 1.0)
    ?(clock_offset = Time.zero) () =
  Config.validate config;
  if rate_multiplier <= 0. then
    invalid_arg "Machine.create: rate_multiplier must be positive";
  let metrics = Engine.metrics engine in
  {
    engine;
    network;
    id;
    config;
    slice_wall = Time.scale config.Config.quantum (1. /. rate_multiplier);
    clock_offset;
    disk =
      Sw_disk.Disk.create engine ~params:config.Config.disk
        ~path:(Printf.sprintf "vmm.%d.disk" id) ();
    residents = [||];
    dom0_busy_until = Time.zero;
    nic_busy_until = Time.zero;
    dma_busy_until = Time.zero;
    stalled_until = Time.zero;
    slowdown = 1.0;
    m_slices = Registry.counter metrics (Printf.sprintf "vmm.%d.slices" id);
    m_dom0_ns = Registry.counter metrics (Printf.sprintf "vmm.%d.dom0_ns" id);
  }

let id t = t.id
let config t = t.config
let local_time t = Time.add (Engine.now t.engine) t.clock_offset
let address t = Sw_net.Address.Vmm t.id
let engine t = t.engine
let network t = t.network
let disk t = t.disk
let slices t = Registry.Counter.value t.m_slices
let dom0_time t = Time.ns (Registry.Counter.value t.m_dom0_ns)

(* Each guest has its own core (the paper's machines have 16 cores for at
   most (n-1)/2 guests), so resident slice loops run independently; a
   resident's loop parks itself when the replica group blocks it and is
   restarted by [wake]. *)
let rec slice_loop t rs =
  if rs.r.runnable () then begin
    rs.running <- true;
    let slice_start = Engine.now t.engine in
    Registry.Counter.incr t.m_slices;
    let wall =
      if t.slowdown = 1.0 then t.slice_wall else Time.scale t.slice_wall t.slowdown
    in
    let finish = Time.add (Time.max slice_start t.stalled_until) wall in
    ignore
      (Engine.schedule_at ~kind:"vmm.slice" t.engine finish (fun () ->
           rs.r.on_slice_end ~slice_start;
           slice_loop t rs))
  end
  else rs.running <- false

let attach t r =
  let rs = { r; running = false } in
  t.residents <- Array.append t.residents [| rs |];
  slice_loop t rs

let wake t =
  Array.iter (fun rs -> if not rs.running then slice_loop t rs) t.residents

(* Freeze the whole machine — guest cores, Dom0, NIC, DMA — until [until].
   Slices already in flight complete at their scheduled instant (the
   simulation has no preemption); everything that would start meanwhile is
   pushed past the stall. *)
let stall t ~until =
  if Time.(until > t.stalled_until) then t.stalled_until <- until;
  if Time.(until > t.dom0_busy_until) then t.dom0_busy_until <- until;
  if Time.(until > t.nic_busy_until) then t.nic_busy_until <- until;
  if Time.(until > t.dma_busy_until) then t.dma_busy_until <- until

(* Dom0-only pause: guest cores keep retiring branches but device models
   (packet and disk processing) queue behind the pause — the paper's Dom0
   contention, made injectable. *)
let pause_dom0 t ~until =
  if Time.(until > t.dom0_busy_until) then t.dom0_busy_until <- until

let set_slowdown t factor =
  if factor < 1.0 then invalid_arg "Machine.set_slowdown: factor must be >= 1";
  t.slowdown <- factor

let slowdown t = t.slowdown
let stalled_until t = t.stalled_until

(* Dom0 runs the device models for every resident on one shared thread; work
   is served FIFO — the queueing delay coresident VMs impose on each other
   here is a key source of the access-driven timing channel. *)
let dom0_execute t ~cost k =
  let now = Engine.now t.engine in
  let start = Time.max now t.dom0_busy_until in
  let finish = Time.add start cost in
  t.dom0_busy_until <- finish;
  Registry.Counter.add t.m_dom0_ns (Int64.to_int cost);
  ignore (Engine.schedule_at ~kind:"vmm.dom0" t.engine finish k)

let dom0_work t span = dom0_execute t ~cost:span (fun () -> ())

let transmit t pkt =
  dom0_execute t ~cost:t.config.Config.dom0_per_packet (fun () ->
      let now = Engine.now t.engine in
      let serialisation =
        let bps = t.config.Config.nic_bps in
        if bps <= 0 then Time.zero
        else
          Time.ns
            (int_of_float
               (Float.round
                  (float_of_int (pkt.Sw_net.Packet.size * 8) *. 1e9 /. float_of_int bps)))
      in
      let depart = Time.add (Time.max now t.nic_busy_until) serialisation in
      t.nic_busy_until <- depart;
      ignore
        (Engine.schedule_at t.engine depart (fun () ->
             Sw_net.Network.send t.network pkt)))

let account_inbound t = dom0_work t t.config.Config.dom0_per_packet

let dma_execute t ~bytes k =
  if bytes <= 0 then invalid_arg "Machine.dma_execute: bytes must be positive";
  let now = Engine.now t.engine in
  let transfer =
    Time.ns
      (int_of_float
         (Float.round
            (float_of_int (bytes * 8) *. 1e9 /. float_of_int t.config.Config.dma_bps)))
  in
  let finish = Time.add (Time.max now t.dma_busy_until) transfer in
  t.dma_busy_until <- finish;
  ignore (Engine.schedule_at t.engine finish k)
