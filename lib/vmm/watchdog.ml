module Time = Sw_sim.Time
module Engine = Sw_sim.Engine
module Event = Sw_obs.Event

(* Per-member suspicion state: consecutive suspicious sweeps observed. *)
type t = {
  engine : Engine.t;
  group : Replica_group.t;
  params : Config.watchdog;
  suspicions : (int, int) Hashtbl.t;
  mutable stopped : bool;
  mutable trace : Sw_obs.Trace.t option;
  mutable on_eject : (Replica_group.member -> unit) list;
}

let trace_on t = Sw_obs.Trace.active t.trace

let emit t event =
  match t.trace with
  | None -> ()
  | Some tr -> Sw_obs.Trace.emit tr ~at_ns:(Engine.now t.engine) event

let suspicion t id =
  Option.value (Hashtbl.find_opt t.suspicions id) ~default:0

let sweep t =
  let now = Engine.now t.engine in
  let vm = Replica_group.vm t.group in
  for id = 0 to (Replica_group.config t.group).Config.replicas - 1 do
    match Replica_group.member_by_id t.group id with
    | None -> ()
    | Some m ->
        if Replica_group.active m then begin
          let silent = Time.sub now (Replica_group.last_seen m) in
          if Time.(silent > t.params.Config.timeout) then begin
            let attempt = suspicion t id + 1 in
            Hashtbl.replace t.suspicions id attempt;
            if trace_on t then
              emit t (Event.Degrade_suspected { vm; replica = id; attempt });
            (* Never eject the last active member: a one-member group still
               delivers, and a future restart needs a live resync source. *)
            if
              attempt > t.params.Config.retries
              && Replica_group.active_count t.group > 1
            then begin
              Replica_group.eject t.group m ~now;
              Hashtbl.remove t.suspicions id;
              if trace_on t then
                emit t
                  (Event.Degrade_ejected
                     { vm; replica = id; quorum = Replica_group.quorum t.group });
              List.iter (fun f -> f m) (List.rev t.on_eject)
            end
          end
          else Hashtbl.remove t.suspicions id
        end
        else
          (* Reinstated members return with a fresh [last_seen]; ejected ones
             carry no suspicion state while out of the group. *)
          Hashtbl.remove t.suspicions id
  done

let create engine group =
  let config = Replica_group.config group in
  match config.Config.watchdog with
  | None -> invalid_arg "Watchdog.create: Config.watchdog is not set"
  | Some params ->
      let t =
        {
          engine;
          group;
          params;
          suspicions = Hashtbl.create 8;
          stopped = false;
          trace = None;
          on_eject = [];
        }
      in
      let rec tick () =
        ignore
          (Engine.schedule_after ~kind:"vmm.watchdog" engine
             params.Config.period (fun () ->
               if not t.stopped then begin
                 sweep t;
                 tick ()
               end))
      in
      tick ();
      t

let set_trace t tr = t.trace <- Some tr
let on_eject t f = t.on_eject <- f :: t.on_eject
let stop t = t.stopped <- true
