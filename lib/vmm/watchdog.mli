(** Liveness watchdog for a replica group (graceful degradation).

    Sweeps the group every [Config.watchdog.period]: an active member whose
    last sign of life ({!Replica_group.last_seen} — VM exits, VMM heartbeats,
    coordination messages observed by peers) is older than the timeout
    accumulates a suspicion ({!Sw_obs.Event.Degrade_suspected}); after
    [retries] tolerated suspicious sweeps it is ejected
    ({!Replica_group.eject}, {!Sw_obs.Event.Degrade_ejected}) so the group
    degrades to a smaller odd quorum instead of wedging on a dead replica.
    A member seen again before ejection resets its suspicion count; the last
    active member is never ejected. Reintegration is the VMM's job
    ({!Vmm.reintegrate}) — the watchdog simply resumes monitoring reinstated
    members.

    Distinguishing dead from blocked relies on [Config.vmm_heartbeat]:
    heartbeats are engine-driven, so a skew- or epoch-blocked replica keeps
    beating while a crashed one falls silent. *)

type t

(** [create engine group] starts the sweep loop. Raises unless the group's
    config has [watchdog] set (validation already requires [vmm_heartbeat]
    alongside it). *)
val create : Sw_sim.Engine.t -> Replica_group.t -> t

(** Emit [Degrade_*] events into [tr]. *)
val set_trace : t -> Sw_obs.Trace.t -> unit

(** [on_eject t f] registers [f] to run after each ejection (after group
    listeners), e.g. to schedule a restart. *)
val on_eject : t -> (Replica_group.member -> unit) -> unit

(** Consecutive suspicious sweeps currently held against replica [id]. *)
val suspicion : t -> int -> int

(** Stops the sweep loop permanently. *)
val stop : t -> unit
