module Time = Sw_sim.Time

type epoch = {
  interval_branches : int64;
  slope_l : float;
  slope_u : float;
}

type watchdog = {
  timeout : Time.t;
  period : Time.t;
  retries : int;
}

type t = {
  quantum : Time.t;
  branches_per_ns : float;
  slope_ns_per_branch : float;
  delta_n : Time.t;
  delta_d : Time.t;
  skew_bound : Time.t;
  pit_period : Time.t option;
  epoch : epoch option;
  replicas : int;
  dom0_per_packet : Time.t;
  baseline_inject_delay : Time.t;
  proposal_size : int;
  mcast_nak_delay : Time.t;
  mcast_nak_retries : int;
  mcast_heartbeat : Time.t option;
  nic_bps : int;
  dma_bps : int;
  replay_log : bool;
  disk : Sw_disk.Disk.params;
  vmm_heartbeat : Time.t option;
  watchdog : watchdog option;
  egress_vote_expiry : Time.t option;
}

let slice_branches t =
  Int64.of_float (Float.round (Int64.to_float t.quantum *. t.branches_per_ns))

let default =
  {
    quantum = Time.us 200;
    branches_per_ns = 1.0;
    slope_ns_per_branch = 1.0;
    delta_n = Time.ms 10;
    delta_d = Time.ms 12;
    skew_bound = Time.ms 2;
    pit_period = Some (Time.ms 4);
    epoch = None;
    replicas = 3;
    dom0_per_packet = Time.us 50;
    baseline_inject_delay = Time.us 150;
    proposal_size = 80;
    mcast_nak_delay = Time.us 300;
    mcast_nak_retries = 5;
    mcast_heartbeat = None;
    nic_bps = 1_000_000_000;
    dma_bps = 8_000_000_000;
    replay_log = false;
    disk = Sw_disk.Disk.default_params;
    vmm_heartbeat = None;
    watchdog = None;
    egress_vote_expiry = None;
  }

let validate t =
  if Time.(t.quantum <= Time.zero) then invalid_arg "Config: quantum must be positive";
  if t.branches_per_ns <= 0. then invalid_arg "Config: branches_per_ns must be positive";
  if t.slope_ns_per_branch <= 0. then
    invalid_arg "Config: slope_ns_per_branch must be positive";
  if t.replicas < 1 || t.replicas mod 2 = 0 then
    invalid_arg "Config: replicas must be odd and positive";
  if Time.(t.delta_n <= Time.zero) then invalid_arg "Config: delta_n must be positive";
  if Time.(t.delta_d <= Time.zero) then invalid_arg "Config: delta_d must be positive";
  if Time.(t.skew_bound <= Time.zero) then
    invalid_arg "Config: skew_bound must be positive";
  if t.proposal_size <= 0 then invalid_arg "Config: proposal_size must be positive";
  (match t.epoch with
  | Some e ->
      if Int64.compare e.interval_branches 1L < 0 then
        invalid_arg "Config: epoch interval must be positive";
      if e.slope_l <= 0. || e.slope_u < e.slope_l then
        invalid_arg "Config: epoch slope bounds must satisfy 0 < l <= u"
  | None -> ());
  if t.mcast_nak_retries < 1 then
    invalid_arg "Config: mcast_nak_retries must be positive";
  (match t.vmm_heartbeat with
  | Some p when Time.(p <= Time.zero) ->
      invalid_arg "Config: vmm_heartbeat must be positive"
  | _ -> ());
  (match t.watchdog with
  | Some w -> (
      if Time.(w.timeout <= Time.zero) then
        invalid_arg "Config: watchdog timeout must be positive";
      if Time.(w.period <= Time.zero) then
        invalid_arg "Config: watchdog period must be positive";
      if w.retries < 0 then invalid_arg "Config: watchdog retries must be >= 0";
      match t.vmm_heartbeat with
      | None -> invalid_arg "Config: watchdog requires vmm_heartbeat"
      | Some hb ->
          if Time.(w.timeout <= hb) then
            invalid_arg "Config: watchdog timeout must exceed vmm_heartbeat")
  | None -> ());
  (match t.egress_vote_expiry with
  | Some e when Time.(e <= Time.zero) ->
      invalid_arg "Config: egress_vote_expiry must be positive"
  | _ -> ());
  if slice_branches t < 1L then invalid_arg "Config: slice shorter than one branch"
