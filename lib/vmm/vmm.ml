module Time = Sw_sim.Time
module Engine = Sw_sim.Engine
module Registry = Sw_obs.Registry
module Event = Sw_obs.Event
module Packet = Sw_net.Packet
module Address = Sw_net.Address

(* Interrupt classes give a fixed injection order among interrupts that
   become deliverable at the same exit (net before disk, then key order);
   any fixed rule works, it only has to be identical across replicas. *)
type pending = {
  delivery : Time.t;
  cls : int;
  key : int;
  event : Sw_vm.App.event;
}

type inbound_entry = {
  mutable packet : Packet.t option;
  mutable proposals : (int * Time.t) list;  (** (replica_id, proposed virt) *)
}

type disk_entry = {
  tag : int;
  delivery_virt : Time.t;
  mutable ready : bool;
}

(* Execution history for deterministic replay: exactly the operations the
   VMM performed on the guest, in order. *)
type log_entry =
  | L_slice
  | L_inject of Sw_vm.App.event
  | L_timers
  | L_slope of int64 * float

(* Liveness heartbeat multicast by each replica's VMM to the group: the
   watchdog distinguishes a dead replica from a merely blocked one by these,
   since an epoch-blocked guest stops exiting but its VMM keeps beating. *)
type Packet.payload += Vmm_alive of { vm : int; replica : int }

type instance = {
  vm_id : int;
  group : Replica_group.t;
  member : Replica_group.member;
  mutable guest : Sw_vm.Guest.t;
  mutable vt : Sw_vm.Virtual_time.t;
  mutable crashed : bool;
      (** A crashed replica stops slicing, heartbeating, and reacting to
          packets; its VMM and machine keep running (process death, not
          machine death). *)
  app_factory : Sw_vm.App.factory;
  sinks : Sw_vm.Guest.sinks;
  vt_start : Time.t;
  mutable log_rev : log_entry list;
  peers : Address.t list;
  mutable channel : Sw_net.Multicast.endpoint option;
      (** PGM endpoint shared with the peer VMMs and the ingress. *)
  mach : Machine.t;
  config : Config.t;
  inbound : (int, inbound_entry) Hashtbl.t;
  mutable pending : pending list;  (** Sorted by (delivery, cls, key). *)
  mutable disk_waiting : disk_entry list;
  m_net : Registry.Counter.t;
  m_disk_irq : Registry.Counter.t;
  m_dma_irq : Registry.Counter.t;
  m_delta_d : Registry.Counter.t;
  mutable last_net_virt : Time.t option;
  inter_delivery : Sw_sim.Samples.t;
  h_inter : Registry.Histogram.t;
  mutable trace : Sw_obs.Trace.t option;
  m_median_sources : Registry.Sum.t array;
      (** Per replica id: medians credited to its proposal (ties split). *)
  p_median : Sw_obs.Profile.timer;
}

type t = {
  mach : Machine.t;
  instances : (int, instance) Hashtbl.t;
  mcast_routes : (int, Sw_net.Multicast.endpoint) Hashtbl.t;
      (** Multicast group id -> endpoint, for inbound demux. *)
  m_unknown : Registry.Counter.t;
}

let machine t = t.mach
let vm i = i.vm_id
let replica i = Replica_group.replica_id i.member
let member i = i.member
let channel_endpoint i = i.channel
let guest i = i.guest
let metric_prefix (i : instance) =
  Printf.sprintf "vmm.%d.vm%d" (Machine.id i.mach) i.vm_id

let net_deliveries i = Registry.Counter.value i.m_net
let disk_interrupts i = Registry.Counter.value i.m_disk_irq
let dma_interrupts i = Registry.Counter.value i.m_dma_irq
let inter_delivery_virts_ms i = Sw_sim.Samples.to_array i.inter_delivery
let delta_d_violations i = Registry.Counter.value i.m_delta_d
let unknown_packets t = Registry.Counter.value t.m_unknown
let instance_of_vm t vm = Hashtbl.find_opt t.instances vm
let set_trace i tr = i.trace <- Some tr

let log_op i entry =
  if i.config.Config.replay_log then i.log_rev <- entry :: i.log_rev

let median_source_counts i = Array.map Registry.Sum.value i.m_median_sources

(* Guard every emission with [trace_on] so a disabled (or absent) sink costs
   one branch: no event payload is allocated and nothing is formatted. *)
let trace_on i = Sw_obs.Trace.active i.trace

let emit i event =
  match i.trace with
  | None -> ()
  | Some tr ->
      Sw_obs.Trace.emit tr ~at_ns:(Engine.now (Machine.engine i.mach)) event

let insert_pending i entry =
  let precedes a b =
    match Time.compare a.delivery b.delivery with
    | 0 -> if a.cls <> b.cls then a.cls < b.cls else a.key < b.key
    | c -> c < 0
  in
  let rec insert = function
    | [] -> [ entry ]
    | hd :: rest -> if precedes entry hd then entry :: hd :: rest else hd :: insert rest
  in
  i.pending <- insert i.pending

let is_stopwatch i =
  match Replica_group.mode i.group with
  | Replica_group.Stopwatch -> true
  | Replica_group.Baseline -> false

(* --- Network device model ------------------------------------------- *)

(* A delivery time resolves once every current quorum voter has proposed;
   the median is taken over the voters' proposals only. With a full group
   that is all replicas, as in the paper; a degraded group medians over the
   surviving odd quorum, and proposals from ejected (non-voting) members are
   recorded but carry no vote. *)
let complete_inbound i ~ingress_seq entry =
  let voters = Replica_group.quorum_ids i.group in
  let votes =
    List.filter (fun (who, _) -> List.mem who voters) entry.proposals
  in
  match entry.packet with
  | Some inner when voters <> [] && List.length votes = List.length voters ->
      Sw_obs.Profile.time
        (Engine.profile (Machine.engine i.mach))
        i.p_median
        (fun () ->
      Hashtbl.remove i.inbound ingress_seq;
      let delivery =
        (* Three voters is the steady state (paper Sec. IV); take its median
           straight off the list through the branch network. Other quorum
           sizes fill one array in a single pass. *)
        match votes with
        | [ (_, a); (_, b); (_, c) ] ->
            Sw_stats.Order_stats.median3_int64 a b c
        | _ ->
            let arr = Array.make (List.length votes) Time.zero in
            List.iteri (fun k (_, v) -> arr.(k) <- v) votes;
            Replica_group.median_time arr
      in
      (* Credit the proposers whose value the median adopted, splitting ties
         evenly — Sec. IX's marginalisation is visible here: a loaded
         replica's (late, hence larger) proposals stop being adopted. *)
      let winners =
        List.filter (fun (_, v) -> Time.equal v delivery) votes
      in
      let credit = 1. /. float_of_int (List.length winners) in
      List.iter
        (fun (who, _) -> Registry.Sum.add i.m_median_sources.(who) credit)
        winners;
      if trace_on i then
        emit i
          (Event.Median_adopted
             {
               vm = i.vm_id;
               replica = Replica_group.replica_id i.member;
               ingress_seq;
               virt_ns = delivery;
               proposals = entry.proposals;
             });
      if Time.(delivery < Replica_group.member_virt i.member) then begin
        Replica_group.record_divergence i.group;
        if trace_on i then
          emit i
            (Event.Divergence
               {
                 vm = i.vm_id;
                 replica = Replica_group.replica_id i.member;
                 kind = Event.Late_median;
               })
      end;
      insert_pending i
        { delivery; cls = 0; key = ingress_seq; event = Sw_vm.App.Packet_in inner })
  | _ -> ()

let inbound_entry i ingress_seq =
  match Hashtbl.find_opt i.inbound ingress_seq with
  | Some e -> e
  | None ->
      let e = { packet = None; proposals = [] } in
      Hashtbl.add i.inbound ingress_seq e;
      e

(* After a membership change, deliveries that were waiting on a dead voter's
   proposal may already satisfy the new quorum — rescan the buffered table.
   Keys are collected (sorted, for a deterministic completion order) before
   completing, since completion removes entries. *)
let rescan_inbound i =
  if not i.crashed then begin
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) i.inbound [] in
    List.iter
      (fun k ->
        match Hashtbl.find_opt i.inbound k with
        | Some entry -> complete_inbound i ~ingress_seq:k entry
        | None -> ())
      (List.sort compare keys)
  end

let add_proposal entry ~proposer ~virt =
  if not (List.mem_assoc proposer entry.proposals) then
    entry.proposals <- (proposer, virt) :: entry.proposals

let on_guest_bound i ~ingress_seq ~(inner : Packet.t) =
  if is_stopwatch i then begin
    let entry = inbound_entry i ingress_seq in
    entry.packet <- Some inner;
    (* Propose: the guest's virtual time as of its last VM exit, plus
       delta_n. The proposal is multicast to the peer VMMs. *)
    let proposed =
      Time.add (Replica_group.member_virt i.member) i.config.Config.delta_n
    in
    let my_id = Replica_group.replica_id i.member in
    if trace_on i then
      emit i
        (Event.Packet_proposed
           {
             vm = i.vm_id;
             observer = my_id;
             proposer = my_id;
             ingress_seq;
             virt_ns = proposed;
           });
    add_proposal entry ~proposer:my_id ~virt:proposed;
    let payload =
      Packet.Proposal { vm = i.vm_id; ingress_seq; proposer = my_id; virt = proposed }
    in
    (match i.channel with
    | Some ep -> Sw_net.Multicast.publish ep ~size:i.config.Config.proposal_size payload
    | None ->
        List.iter
          (fun peer ->
            let pkt =
              Packet.make
                ~src:(Machine.address i.mach)
                ~dst:peer ~size:i.config.Config.proposal_size
                ~seq:(Sw_net.Network.fresh_seq (Machine.network i.mach))
                payload
            in
            Machine.transmit i.mach pkt)
          i.peers);
    complete_inbound i ~ingress_seq entry
  end
  else begin
    (* Baseline: deliver after the emulation delay at the next exit. The
       arrival doubles as the chain's ingress stamp — there is no
       replicating ingress on the baseline path, so the hosting VMM is the
       edge that first sees the packet. *)
    if trace_on i then
      emit i
        (Event.Ingress_replicated
           {
             vm = i.vm_id;
             ingress_seq;
             copies = 1;
             size = inner.Packet.size;
           });
    let delivery =
      Time.add
        (Replica_group.member_virt i.member)
        i.config.Config.baseline_inject_delay
    in
    insert_pending i
      { delivery; cls = 0; key = ingress_seq; event = Sw_vm.App.Packet_in inner }
  end

let on_proposal i ~ingress_seq ~proposer ~virt =
  if trace_on i then
    emit i
      (Event.Packet_proposed
         {
           vm = i.vm_id;
           observer = Replica_group.replica_id i.member;
           proposer;
           ingress_seq;
           virt_ns = virt;
         });
  let entry = inbound_entry i ingress_seq in
  add_proposal entry ~proposer ~virt;
  complete_inbound i ~ingress_seq entry

(* --- Guest sinks ------------------------------------------------------ *)

let make_sinks mach group_ref member_ref vm_id disk_cb dma_cb =
  let send ~seq ~instr:_ ~dst ~size ~payload =
    let inner = Packet.make ~src:(Address.Vm vm_id) ~dst ~size ~seq payload in
    let stopwatch =
      match Replica_group.mode !group_ref with
      | Replica_group.Stopwatch -> true
      | Replica_group.Baseline -> false
    in
    if stopwatch then begin
      let tunnel =
        Packet.make
          ~src:(Machine.address mach)
          ~dst:Address.Egress ~size:(size + 48)
          ~seq:(Sw_net.Network.fresh_seq (Machine.network mach))
          (Packet.Egress_tunnel
             { vm = vm_id; replica = Replica_group.replica_id !member_ref; inner })
      in
      Machine.transmit mach tunnel
    end
    else Machine.transmit mach inner
  in
  let disk ~kind ~bytes ~sequential ~tag ~instr:_ = disk_cb ~kind ~bytes ~sequential ~tag in
  let dma ~bytes ~tag ~instr:_ = dma_cb ~bytes ~tag in
  { Sw_vm.Guest.send; disk; dma }

(* --- Slice handling --------------------------------------------------- *)

let deliver_due i =
  let virt = Sw_vm.Guest.virt_now i.guest in
  let rec loop () =
    match i.pending with
    | hd :: rest when Time.(hd.delivery <= virt) ->
        i.pending <- rest;
        log_op i (L_inject hd.event);
        (match hd.event with
        | Sw_vm.App.Packet_in _ ->
            if trace_on i then
              emit i
                (Event.Packet_delivered
                   {
                     vm = i.vm_id;
                     replica = Replica_group.replica_id i.member;
                     seq = hd.key;
                     virt_ns = virt;
                   });
            Registry.Counter.incr i.m_net;
            (match i.last_net_virt with
            | Some prev ->
                let gap = Time.sub virt prev in
                Sw_sim.Samples.add i.inter_delivery (Time.to_float_ms gap);
                Registry.Histogram.observe i.h_inter gap
            | None -> ());
            i.last_net_virt <- Some virt
        | Sw_vm.App.Disk_done { tag } ->
            Registry.Counter.incr i.m_disk_irq;
            if trace_on i then
              emit i
                (Event.Disk_irq
                   {
                     vm = i.vm_id;
                     replica = Replica_group.replica_id i.member;
                     tag;
                     virt_ns = virt;
                   })
        | Sw_vm.App.Dma_done { tag } ->
            Registry.Counter.incr i.m_dma_irq;
            if trace_on i then
              emit i
                (Event.Dma_irq
                   {
                     vm = i.vm_id;
                     replica = Replica_group.replica_id i.member;
                     tag;
                     virt_ns = virt;
                   })
        | _ -> ());
        Sw_vm.Guest.inject i.guest hd.event;
        loop ()
    | _ -> ()
  in
  loop ();
  log_op i L_timers;
  Sw_vm.Guest.deliver_due_timers i.guest

let on_slice_end t i ~slice_start:_ =
  if i.crashed then ()
  else begin
  let branches = Config.slice_branches i.config in
  log_op i L_slice;
  Sw_vm.Guest.run_branches i.guest branches;
  (* Exits report the machine's own clock reading, as the real VMM would. *)
  let now = Machine.local_time t.mach in
  let virt = Sw_vm.Guest.virt_now i.guest in
  Replica_group.note_exit i.group i.member ~now ~virt ~instr:(Sw_vm.Guest.instr i.guest);
  if trace_on i then
    emit i
      (Event.Vm_exit
         {
           vm = i.vm_id;
           replica = Replica_group.replica_id i.member;
           machine = Machine.id t.mach;
           virt_ns = virt;
           instr = Sw_vm.Guest.instr i.guest;
         });
  deliver_due i
  end

(* --- Disk device model ------------------------------------------------ *)

let on_disk_request t i ~kind ~bytes ~sequential ~tag =
  (* The disk device model's request and completion handling also run on the
     machine's Dom0 thread. *)
  Machine.dom0_work t.mach (Machine.config t.mach).Config.dom0_per_packet;
  let virt_issue = Sw_vm.Guest.virt_now i.guest in
  let offset =
    if is_stopwatch i then i.config.Config.delta_d
    else i.config.Config.baseline_inject_delay
  in
  let entry = { tag; delivery_virt = Time.add virt_issue offset; ready = false } in
  i.disk_waiting <- i.disk_waiting @ [ entry ];
  let disk_kind =
    match kind with `Read -> Sw_disk.Disk.Read | `Write -> Sw_disk.Disk.Write
  in
  Sw_disk.Disk.submit (Machine.disk t.mach) ~vm:i.vm_id ~kind:disk_kind ~bytes
    ~sequential (fun () ->
      Machine.dom0_work t.mach (Machine.config t.mach).Config.dom0_per_packet;
      entry.ready <- true;
      (* The transfer must have completed by the virtual delivery time; if
         the guest's clock has already passed it, that's a Δd violation. *)
      if
        (not i.crashed)
        && is_stopwatch i
        && Time.(Sw_vm.Guest.virt_now i.guest > entry.delivery_virt)
      then begin
        Registry.Counter.incr i.m_delta_d;
        Replica_group.record_divergence i.group;
        if trace_on i then
          emit i
            (Event.Divergence
               {
                 vm = i.vm_id;
                 replica = Replica_group.replica_id i.member;
                 kind = Event.Delta_d_violation;
               })
      end;
      i.disk_waiting <- List.filter (fun e -> e.tag <> entry.tag) i.disk_waiting;
      if not i.crashed then
        insert_pending i
          {
            delivery = entry.delivery_virt;
            cls = 1;
            key = entry.tag;
            event = Sw_vm.App.Disk_done { tag = entry.tag };
          })

let on_dma_request t i ~bytes ~tag =
  Machine.dom0_work t.mach (Machine.config t.mach).Config.dom0_per_packet;
  let virt_issue = Sw_vm.Guest.virt_now i.guest in
  let offset =
    if is_stopwatch i then i.config.Config.delta_d
    else i.config.Config.baseline_inject_delay
  in
  let delivery_virt = Time.add virt_issue offset in
  Machine.dma_execute t.mach ~bytes (fun () ->
      if i.crashed then ()
      else begin
      if is_stopwatch i && Time.(Sw_vm.Guest.virt_now i.guest > delivery_virt) then begin
        Registry.Counter.incr i.m_delta_d;
        Replica_group.record_divergence i.group;
        if trace_on i then
          emit i
            (Event.Divergence
               {
                 vm = i.vm_id;
                 replica = Replica_group.replica_id i.member;
                 kind = Event.Delta_d_violation;
               })
      end;
      insert_pending i
        {
          delivery = delivery_virt;
          cls = 2;
          key = tag;
          event = Sw_vm.App.Dma_done { tag };
        }
      end)

(* --- Construction ----------------------------------------------------- *)

(* Any coordination message from a peer is a sign of life for the watchdog,
   whichever VMM observes it — the group's liveness state is shared. *)
let note_peer_seen i replica =
  match Replica_group.member_by_id i.group replica with
  | Some m ->
      Replica_group.note_seen i.group m ~now:(Engine.now (Machine.engine i.mach))
  | None -> ()

let handle_packet t (pkt : Packet.t) =
  match pkt.Packet.payload with
  | _ when Sw_net.Multicast.is_mcast pkt -> (
      match Sw_net.Multicast.group_of_packet pkt with
      | Some gid -> (
          match Hashtbl.find_opt t.mcast_routes gid with
          | Some ep -> Sw_net.Multicast.handle ep pkt
          | None -> Registry.Counter.incr t.m_unknown)
      | None -> Registry.Counter.incr t.m_unknown)
  | Packet.Guest_bound { vm; ingress_seq; inner } -> (
      match Hashtbl.find_opt t.instances vm with
      | Some i when not i.crashed -> on_guest_bound i ~ingress_seq ~inner
      | Some _ -> ()
      | None -> Registry.Counter.incr t.m_unknown)
  | Packet.Proposal { vm; ingress_seq; proposer; virt } -> (
      match Hashtbl.find_opt t.instances vm with
      | Some i ->
          note_peer_seen i proposer;
          if not i.crashed then on_proposal i ~ingress_seq ~proposer ~virt
      | None -> Registry.Counter.incr t.m_unknown)
  | Packet.Epoch_report { vm; replica; epoch; d; r } -> (
      match Hashtbl.find_opt t.instances vm with
      | Some i ->
          note_peer_seen i replica;
          if not i.crashed then
            Replica_group.receive_report i.group ~at:i.member
              ~from_replica:replica ~epoch ~d ~r
      | None -> Registry.Counter.incr t.m_unknown)
  | Vmm_alive { vm; replica } -> (
      match Hashtbl.find_opt t.instances vm with
      | Some i -> note_peer_seen i replica
      | None -> Registry.Counter.incr t.m_unknown)
  | _ -> (
      (* Baseline-mode guests receive their traffic directly. *)
      match pkt.Packet.dst with
      | Address.Vm vm -> (
          match Hashtbl.find_opt t.instances vm with
          | Some i when not (is_stopwatch i) ->
              on_guest_bound i ~ingress_seq:pkt.Packet.seq ~inner:pkt
          | _ -> Registry.Counter.incr t.m_unknown)
      | _ -> Registry.Counter.incr t.m_unknown)

(* Rebuild the replica's guest by deterministic replay of its logged
   history (paper footnote 4: recovering a diverged replica). The clone is
   built muted — its sends and device requests are suppressed, since they
   already happened — then unmuted and swapped in. *)
let rebuild_with_vt i =
  if not i.config.Config.replay_log then
    invalid_arg "Vmm.rebuild: enable Config.replay_log to record history";
  let vt =
    Sw_vm.Virtual_time.create ~start:i.vt_start
      ~slope_ns_per_branch:i.config.Config.slope_ns_per_branch ()
  in
  let guest =
    Sw_vm.Guest.create ~app:(i.app_factory ()) ~vt
      ?pit_period:i.config.Config.pit_period ~sinks:i.sinks ()
  in
  Sw_vm.Guest.set_muted guest true;
  Sw_vm.Guest.boot guest;
  let branches = Config.slice_branches i.config in
  List.iter
    (fun entry ->
      match entry with
      | L_slice -> Sw_vm.Guest.run_branches guest branches
      | L_inject ev -> Sw_vm.Guest.inject guest ev
      | L_timers -> Sw_vm.Guest.deliver_due_timers guest
      | L_slope (at_instr, slope_ns_per_branch) ->
          Sw_vm.Virtual_time.set_slope vt ~at_instr ~slope_ns_per_branch)
    (List.rev i.log_rev);
  Sw_vm.Guest.set_muted guest false;
  (guest, vt)

let rebuild i = fst (rebuild_with_vt i)

(* Swap the rebuilt clone in as the live guest (the clone's clock becomes
   the live clock, so later epoch slope adjustments land on it). *)
let recover i =
  let guest, vt = rebuild_with_vt i in
  i.guest <- guest;
  i.vt <- vt

(* --- Crash, restart, liveness heartbeats ------------------------------ *)

let crashed i = i.crashed

let crash i =
  if not i.crashed then begin
    i.crashed <- true;
    if trace_on i then
      emit i
        (Event.Fault_replica_crash
           { vm = i.vm_id; replica = Replica_group.replica_id i.member })
  end

let reintegrate i ~from =
  if not i.crashed then invalid_arg "Vmm.reintegrate: replica is not crashed";
  if from.crashed then invalid_arg "Vmm.reintegrate: resync source is crashed";
  if from.vm_id <> i.vm_id || from == i then
    invalid_arg "Vmm.reintegrate: resync source must be a peer replica";
  if not i.config.Config.replay_log then
    invalid_arg "Vmm.reintegrate: enable Config.replay_log to resync";
  let now = Engine.now (Machine.engine i.mach) in
  (* Restarts can race the watchdog: if the crashed member was never ejected,
     eject it now so the reinstate below starts from consistent group state
     (and so the degradation metrics record the outage either way). *)
  if Replica_group.active i.member then Replica_group.eject i.group i.member ~now;
  (* Resync barrier: deterministic replay of the survivor's history — the
     replicas' logs are identical, so the rebuilt guest matches the
     survivor's bit for bit. *)
  i.log_rev <- from.log_rev;
  let guest, vt = rebuild_with_vt i in
  i.guest <- guest;
  i.vt <- vt;
  (* Copy the survivor's delivery horizon: agreed future injections,
     half-gathered proposal entries, and delivery-gap continuity. Entries are
     cloned where mutable. *)
  i.pending <- from.pending;
  Hashtbl.reset i.inbound;
  Hashtbl.iter
    (fun k (e : inbound_entry) ->
      Hashtbl.replace i.inbound k { packet = e.packet; proposals = e.proposals })
    from.inbound;
  i.last_net_virt <- from.last_net_virt;
  (* The survivor's in-flight disk transfers have deterministic virtual
     delivery slots — mirror them directly so both replicas inject the same
     interrupts at the same virtual times. (In-flight DMA completions carry
     no waiting record and are not recoverable; guests with outstanding DMA
     across a crash-restart boundary will diverge.) *)
  i.disk_waiting <- [];
  List.iter
    (fun (e : disk_entry) ->
      insert_pending i
        {
          delivery = e.delivery_virt;
          cls = 1;
          key = e.tag;
          event = Sw_vm.App.Disk_done { tag = e.tag };
        })
    from.disk_waiting;
  i.crashed <- false;
  let virt = Sw_vm.Guest.virt_now guest in
  Replica_group.reinstate i.group i.member ~now ~virt ~like:from.member;
  if trace_on i then begin
    emit i
      (Event.Fault_replica_restart
         { vm = i.vm_id; replica = Replica_group.replica_id i.member });
    emit i
      (Event.Degrade_reintegrated
         {
           vm = i.vm_id;
           replica = Replica_group.replica_id i.member;
           quorum = Replica_group.quorum i.group;
         })
  end;
  Machine.wake i.mach

(* Liveness heartbeats are engine-scheduled, independent of guest slices: an
   epoch- or skew-blocked replica stops exiting but keeps beating, so the
   watchdog only fires on genuinely dead (or unreachable) replicas. The tick
   keeps running across a crash window — muted while crashed — so a restarted
   replica resumes beating without re-arming. *)
let start_heartbeat (i : instance) period =
  let engine = Machine.engine i.mach in
  let my_id = Replica_group.replica_id i.member in
  let rec tick () =
    ignore
      (Engine.schedule_after ~kind:"vmm.heartbeat" engine period (fun () ->
           if not i.crashed then begin
             let payload = Vmm_alive { vm = i.vm_id; replica = my_id } in
             (match i.channel with
             | Some ep -> Sw_net.Multicast.publish ep ~size:64 payload
             | None ->
                 List.iter
                   (fun peer ->
                     let pkt =
                       Packet.make ~src:(Machine.address i.mach) ~dst:peer
                         ~size:64
                         ~seq:(Sw_net.Network.fresh_seq (Machine.network i.mach))
                         payload
                     in
                     Machine.transmit i.mach pkt)
                   i.peers);
             Replica_group.note_seen i.group i.member ~now:(Engine.now engine)
           end;
           tick ()))
  in
  tick ()

let create mach =
  let t =
    {
      mach;
      instances = Hashtbl.create 8;
      mcast_routes = Hashtbl.create 8;
      m_unknown =
        Registry.counter
          (Engine.metrics (Machine.engine mach))
          (Printf.sprintf "vmm.%d.unknown_packets" (Machine.id mach));
    }
  in
  let per_packet = (Machine.config mach).Config.dom0_per_packet in
  (* Every inbound packet's device-model work queues on the machine's Dom0
     thread before the VMM acts on it — coresident VMs' traffic therefore
     delays each other's interrupt handling, which is the contention the
     proposal/median machinery has to mask. *)
  Sw_net.Network.register (Machine.network mach) (Machine.address mach)
    (fun pkt ->
      Machine.dom0_execute mach ~cost:per_packet (fun () -> handle_packet t pkt));
  t

let host ?channel ?start t ~group ~app ~peers =
  let config = Replica_group.config group in
  let vm_id = Replica_group.vm group in
  if Hashtbl.mem t.instances vm_id then
    invalid_arg "Vmm.host: this machine already hosts a replica of that VM";
  (* The virtual clock starts at the median of the hosting VMMs' clock
     readings (Sec. IV-A), negotiated by the deployer; a lone replica starts
     at its own clock. *)
  let start = match start with Some s -> s | None -> Machine.local_time t.mach in
  let vt =
    Sw_vm.Virtual_time.create ~start
      ~slope_ns_per_branch:config.Config.slope_ns_per_branch ()
  in
  (* The guest, member and instance reference each other; tie the knot with
     forward references resolved after creation. *)
  let group_ref = ref group in
  let member_holder = ref None in
  let instance_holder = ref None in
  let disk_cb ~kind ~bytes ~sequential ~tag =
    match !instance_holder with
    | Some i -> on_disk_request t i ~kind ~bytes ~sequential ~tag
    | None -> invalid_arg "Vmm: disk request before instance ready"
  in
  let dma_cb ~bytes ~tag =
    match !instance_holder with
    | Some i -> on_dma_request t i ~bytes ~tag
    | None -> invalid_arg "Vmm: dma request before instance ready"
  in
  let member_ref =
    ref
      (Replica_group.add_member group ~machine:(Machine.id t.mach)
         ~wake:(fun () -> Machine.wake t.mach)
         ~apply_slope:(fun ~at_instr ~slope_ns_per_branch ->
           (* Through the instance once it exists: after a recovery the live
              clock is the rebuilt one, not the boot-time [vt]. *)
           match !instance_holder with
           | Some i ->
               log_op i (L_slope (at_instr, slope_ns_per_branch));
               Sw_vm.Virtual_time.set_slope i.vt ~at_instr ~slope_ns_per_branch
           | None ->
               Sw_vm.Virtual_time.set_slope vt ~at_instr ~slope_ns_per_branch)
         ~send_report:(fun ~epoch ~d ~r ->
           let payload =
             Packet.Epoch_report
               {
                 vm = vm_id;
                 replica =
                   (match !member_holder with
                   | Some m -> Replica_group.replica_id m
                   | None -> 0);
                 epoch;
                 d;
                 r;
               }
           in
           match !instance_holder with
           | Some { channel = Some ep; _ } ->
               Sw_net.Multicast.publish ep ~size:config.Config.proposal_size payload
           | _ ->
               List.iter
                 (fun peer ->
                   let pkt =
                     Packet.make
                       ~src:(Machine.address t.mach)
                       ~dst:peer ~size:config.Config.proposal_size
                       ~seq:(Sw_net.Network.fresh_seq (Machine.network t.mach))
                       payload
                   in
                   Machine.transmit t.mach pkt)
                 peers))
  in
  member_holder := Some !member_ref;
  let sinks = make_sinks t.mach group_ref member_ref vm_id disk_cb dma_cb in
  let guest =
    Sw_vm.Guest.create ~app:(app ()) ~vt ?pit_period:config.Config.pit_period
      ~sinks ()
  in
  let metrics = Engine.metrics (Machine.engine t.mach) in
  (* The prefix keys on (machine, vm): each replica of a VM lives on its own
     machine, so paths stay unique and deterministic. *)
  let prefix = Printf.sprintf "vmm.%d.vm%d" (Machine.id t.mach) vm_id in
  let i =
    {
      vm_id;
      group;
      member = !member_ref;
      guest;
      vt;
      crashed = false;
      app_factory = app;
      sinks;
      vt_start = start;
      log_rev = [];
      peers;
      mach = t.mach;
      config;
      inbound = Hashtbl.create 32;
      pending = [];
      disk_waiting = [];
      m_net = Registry.counter metrics (prefix ^ ".net_deliveries");
      m_disk_irq = Registry.counter metrics (prefix ^ ".disk_interrupts");
      m_dma_irq = Registry.counter metrics (prefix ^ ".dma_interrupts");
      m_delta_d = Registry.counter metrics (prefix ^ ".delta_d_violations");
      channel = None;
      last_net_virt = None;
      inter_delivery = Sw_sim.Samples.create ();
      h_inter = Registry.histogram metrics (prefix ^ ".inter_delivery_ns");
      trace = None;
      m_median_sources =
        Array.init config.Config.replicas (fun k ->
            Registry.sum metrics (Printf.sprintf "%s.median.source.r%d" prefix k));
      p_median =
        Sw_obs.Profile.timer
          (Engine.profile (Machine.engine t.mach))
          "vmm.median";
    }
  in
  instance_holder := Some i;
  (match channel with
  | Some g ->
      let ep =
        Sw_net.Multicast.endpoint g ~self:(Machine.address t.mach)
          ~transmit:(Machine.transmit t.mach)
          ~deliver:(fun pkt -> handle_packet t pkt)
          ()
      in
      i.channel <- Some ep;
      Hashtbl.replace t.mcast_routes (Sw_net.Multicast.group_id g) ep
  | None -> ());
  Hashtbl.add t.instances vm_id i;
  (* Membership changes can complete deliveries this replica was holding for
     a now-dead voter's proposal. *)
  Replica_group.on_membership_change group (fun () -> rescan_inbound i);
  Sw_vm.Guest.boot guest;
  Machine.attach t.mach
    {
      Machine.name = Printf.sprintf "vm%d/r%d" vm_id (Replica_group.replica_id i.member);
      runnable =
        (fun () -> (not i.crashed) && not (Replica_group.blocked group i.member));
      on_slice_end = (fun ~slice_start -> on_slice_end t i ~slice_start);
    };
  Option.iter (start_heartbeat i) config.Config.vmm_heartbeat;
  i

let () = Sw_sim.Graft.register [%extension_constructor Vmm_alive]
