(** A physical machine: many-core CPU (each uniprocessor guest gets its own
    core, as on the paper's 16-core testbed machines), an outbound NIC with
    FIFO serialisation, a disk, and a single Dom0 device-model thread that
    serves all residents' I/O work FIFO.

    The Dom0 serialisation and the NIC/disk queues are what make coresident
    VMs' observable timings interdependent — the raw material of the
    access-driven timing channel StopWatch defends against. *)

type t

type resident = {
  name : string;  (** For diagnostics. *)
  runnable : unit -> bool;
      (** Polled when the scheduler picks the next slice's owner. *)
  on_slice_end : slice_start:Sw_sim.Time.t -> unit;
      (** Invoked at the end of each of this resident's slices (the
          guest-caused VM exit point). *)
}

(** [create engine network ~id ~config ?rate_multiplier ?clock_offset ()]:
    [rate_multiplier] scales this machine's execution speed (guest slices
    still retire [Config.slice_branches] branches — the guest-deterministic
    VM-exit grid — but take [quantum / rate_multiplier] of wall time, so
    replicas on machines of different speeds skew in real time exactly as on
    heterogeneous hardware). [clock_offset] models the machine's real-time
    clock error (NTP-scale); it offsets {!local_time}. *)
val create :
  Sw_sim.Engine.t ->
  Sw_net.Network.t ->
  id:int ->
  config:Config.t ->
  ?rate_multiplier:float ->
  ?clock_offset:Sw_sim.Time.t ->
  unit ->
  t

val id : t -> int
val config : t -> Config.t

(** This machine's reading of real time (engine time plus its clock error) —
    what its VMM reports in epoch messages and start negotiation. *)
val local_time : t -> Sw_sim.Time.t
val address : t -> Sw_net.Address.t
val engine : t -> Sw_sim.Engine.t
val network : t -> Sw_net.Network.t
val disk : t -> Sw_disk.Disk.t

(** [attach t r] adds a scheduling client. *)
val attach : t -> resident -> unit

(** [wake t] restarts the slice loop of any parked resident that has become
    runnable — call after any state change that may unblock one. *)
val wake : t -> unit

(** [dom0_execute t ~cost k] enqueues device-model work on the Dom0 thread;
    [k] runs when the work completes (FIFO behind earlier work). *)
val dom0_execute : t -> cost:Sw_sim.Time.t -> (unit -> unit) -> unit

(** [dom0_work t span] charges Dom0 time with no completion action. *)
val dom0_work : t -> Sw_sim.Time.t -> unit

(** [transmit t pkt] runs the send-path device model on Dom0, then
    serialises the packet out of the NIC FIFO. *)
val transmit : t -> Sw_net.Packet.t -> unit

(** Charges Dom0 for an inbound packet (the VMM's receive-path work). *)
val account_inbound : t -> unit

(** [dma_execute t ~bytes k] queues a transfer on the machine's DMA engine
    (FIFO, [dma_bps]); [k] runs at completion. Coresident VMs' transfers
    queue behind each other, like the disk. *)
val dma_execute : t -> bytes:int -> (unit -> unit) -> unit

(** Guest slices granted so far. *)
val slices : t -> int

(** Total Dom0 CPU time consumed. *)
val dom0_time : t -> Sw_sim.Time.t

(** {1 Fault-injection hooks}

    Used by the [sw_fault] injector to model machine-level disturbances;
    all default to the identity and cost nothing when unused. *)

(** [stall t ~until] freezes the machine — new guest slices, Dom0 work, NIC
    serialisation and DMA transfers all start no earlier than [until].
    Slices already in flight still complete at their scheduled instant.
    Monotone: never shortens an existing stall. *)
val stall : t -> until:Sw_sim.Time.t -> unit

(** [pause_dom0 t ~until] pauses only the Dom0 device-model thread — guests
    keep executing, but packet/disk processing queues behind the pause. *)
val pause_dom0 : t -> until:Sw_sim.Time.t -> unit

(** [set_slowdown t f] stretches subsequent guest slices to [f * quantum]
    of wall time ([f >= 1]; [1.0] restores full speed). Branches retired per
    slice are unchanged, so guest-visible determinism is preserved — the
    machine merely takes longer, exactly like a contended host. *)
val set_slowdown : t -> float -> unit

val slowdown : t -> float
val stalled_until : t -> Sw_sim.Time.t
