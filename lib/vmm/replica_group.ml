module Time = Sw_sim.Time
module Registry = Sw_obs.Registry

type mode = Stopwatch | Baseline

type report = { d : Time.t; r : Time.t }

type member = {
  replica_id : int;
  machine : int;
  wake : unit -> unit;
  apply_slope : at_instr:int64 -> slope_ns_per_branch:float -> unit;
  send_report : epoch:int -> d:Time.t -> r:Time.t -> unit;
  mutable virt : Time.t;
  mutable blocked_skew : bool;
  (* Epoch state *)
  mutable epoch_index : int;  (** Next epoch boundary to cross. *)
  mutable epoch_start_real : Time.t;
  mutable blocked_epoch : bool;
  mutable pending_boundary : (int64 * Time.t) option;
      (** (exit instr, virt) at the boundary crossing awaiting resolution. *)
  reports : (int * int, report) Hashtbl.t;
      (** Reports received at this member, keyed by (epoch, replica). *)
}

type t = {
  vm : int;
  config : Config.t;
  mode : mode;
  mutable members : member array;
  m_divergences : Registry.Counter.t;
  m_skew_blocks : Registry.Counter.t;
}

let create ?metrics ~vm ~config ~mode () =
  Config.validate config;
  (* Standalone groups (unit tests) get a private registry; the cloud passes
     its simulation-wide one. *)
  let metrics =
    match metrics with Some m -> m | None -> Registry.create ()
  in
  {
    vm;
    config;
    mode;
    members = [||];
    m_divergences =
      Registry.counter metrics (Printf.sprintf "vm%d.divergences" vm);
    m_skew_blocks =
      Registry.counter metrics (Printf.sprintf "vm%d.skew_blocks" vm);
  }

let vm t = t.vm
let mode t = t.mode
let config t = t.config
let replica_id m = m.replica_id
let machine_of m = m.machine
let member_virt m = m.virt
let complete t = Array.length t.members = t.config.Config.replicas

let add_member t ~machine ~wake ~apply_slope ~send_report =
  if complete t then invalid_arg "Replica_group.add_member: group is full";
  let m =
    {
      replica_id = Array.length t.members;
      machine;
      wake;
      apply_slope;
      send_report;
      virt = Time.zero;
      blocked_skew = false;
      epoch_index = 0;
      epoch_start_real = Time.zero;
      blocked_epoch = false;
      pending_boundary = None;
      reports = Hashtbl.create 8;
    }
  in
  t.members <- Array.append t.members [| m |];
  m

let median_time times =
  let n = Array.length times in
  if n mod 2 = 0 then invalid_arg "Replica_group.median_time: even count";
  let sorted = Array.copy times in
  Array.sort Time.compare sorted;
  sorted.(n / 2)

let blocked _t m = m.blocked_skew || m.blocked_epoch

(* Deschedule the strictly fastest member when it leads the second fastest
   by more than the bound; everyone else runs. *)
let update_skew t =
  let n = Array.length t.members in
  if n >= 2 then begin
    let virts = Array.map (fun m -> m.virt) t.members in
    Array.sort (fun a b -> Time.compare b a) virts;
    let fastest = virts.(0) and second = virts.(1) in
    let limit = t.config.Config.skew_bound in
    Array.iter
      (fun m ->
        let should_block =
          Time.equal m.virt fastest
          && Time.(Time.sub fastest second > limit)
        in
        if m.blocked_skew && not should_block then begin
          m.blocked_skew <- false;
          m.wake ()
        end
        else begin
          if should_block && not m.blocked_skew then
            Registry.Counter.incr t.m_skew_blocks;
          m.blocked_skew <- should_block
        end)
      t.members
  end

(* Try to resolve the epoch this member is blocked on: needs its own
   boundary crossing recorded and all replicas' reports. *)
let current_reports t m =
  let n = t.config.Config.replicas in
  let found =
    Array.init n (fun from -> Hashtbl.find_opt m.reports (m.epoch_index, from))
  in
  if Array.for_all Option.is_some found then Some (Array.map Option.get found)
  else None

let try_resolve_epoch t m =
  match (m.pending_boundary, t.config.Config.epoch, current_reports t m) with
  | Some (boundary_instr, boundary_virt), Some e, Some reports ->
      let r_star = median_time (Array.map (fun rep -> rep.r) reports) in
      (* D* comes from the machine contributing the median real time; ties
         resolve to the lowest replica id for determinism. *)
      let d_star =
        let rec find i =
          if Time.equal reports.(i).r r_star then reports.(i).d else find (i + 1)
        in
        find 0
      in
      let raw_slope =
        Time.to_float_s (Time.add (Time.sub r_star boundary_virt) d_star)
        *. 1e9
        /. Int64.to_float e.Config.interval_branches
      in
      let slope =
        Sw_vm.Virtual_time.clamped_slope ~l:e.Config.slope_l ~u:e.Config.slope_u
          raw_slope
      in
      m.apply_slope ~at_instr:boundary_instr ~slope_ns_per_branch:slope;
      m.pending_boundary <- None;
      for from = 0 to t.config.Config.replicas - 1 do
        Hashtbl.remove m.reports (m.epoch_index, from)
      done;
      m.epoch_index <- m.epoch_index + 1;
      m.blocked_epoch <- false;
      m.wake ()
  | _ -> ()

let note_epoch_crossing t m ~now ~virt ~instr =
  match t.config.Config.epoch with
  | None -> ()
  | Some e ->
      let boundary =
        Int64.mul (Int64.of_int (m.epoch_index + 1)) e.Config.interval_branches
      in
      if Int64.compare instr boundary >= 0 && m.pending_boundary = None then begin
        let d = Time.sub now m.epoch_start_real in
        m.epoch_start_real <- now;
        m.pending_boundary <- Some (instr, virt);
        m.blocked_epoch <- true;
        (* Record our own report locally and multicast it to the peers. *)
        Hashtbl.replace m.reports (m.epoch_index, m.replica_id) { d; r = now };
        m.send_report ~epoch:m.epoch_index ~d ~r:now;
        try_resolve_epoch t m
      end

let note_exit t m ~now ~virt ~instr =
  m.virt <- virt;
  match t.mode with
  | Baseline -> ()
  | Stopwatch ->
      update_skew t;
      note_epoch_crossing t m ~now ~virt ~instr

let receive_report t ~at ~from_replica ~epoch ~d ~r =
  match t.mode with
  | Baseline -> ()
  | Stopwatch ->
      (* Reports for already-resolved epochs are stale duplicates; future
         epochs (a fast peer racing ahead) are buffered until this member
         catches up. *)
      if epoch >= at.epoch_index then begin
        Hashtbl.replace at.reports (epoch, from_replica) { d; r };
        try_resolve_epoch t at
      end

let record_divergence t = Registry.Counter.incr t.m_divergences
let skew_blocks t = Registry.Counter.value t.m_skew_blocks
let divergences t = Registry.Counter.value t.m_divergences

let epochs_resolved t =
  if Array.length t.members = 0 then 0
  else
    Array.fold_left (fun acc m -> Stdlib.min acc m.epoch_index) max_int t.members
