module Time = Sw_sim.Time
module Registry = Sw_obs.Registry

type mode = Stopwatch | Baseline

type report = { d : Time.t; r : Time.t }

type member = {
  replica_id : int;
  machine : int;
  wake : unit -> unit;
  apply_slope : at_instr:int64 -> slope_ns_per_branch:float -> unit;
  send_report : epoch:int -> d:Time.t -> r:Time.t -> unit;
  mutable virt : Time.t;
  mutable blocked_skew : bool;
  mutable active : bool;
      (** False once ejected by the watchdog; inactive members neither vote
          in medians nor gate epoch resolution. *)
  mutable last_seen : Time.t;
      (** Real time of the last sign of life (exit, heartbeat, report). *)
  (* Epoch state *)
  mutable epoch_index : int;  (** Next epoch boundary to cross. *)
  mutable epoch_start_real : Time.t;
  mutable blocked_epoch : bool;
  mutable pending_boundary : (int64 * Time.t) option;
      (** (exit instr, virt) at the boundary crossing awaiting resolution. *)
  reports : (int * int, report) Hashtbl.t;
      (** Reports received at this member, keyed by (epoch, replica). *)
}

type t = {
  vm : int;
  config : Config.t;
  mode : mode;
  mutable members : member array;
  mutable on_membership_change : (unit -> unit) list;
  mutable degraded_since : Time.t option;
      (** Set while the group runs with at least one ejected member. *)
  m_divergences : Registry.Counter.t;
  m_skew_blocks : Registry.Counter.t;
  m_ejections : Registry.Counter.t;
  m_reintegrations : Registry.Counter.t;
  m_degraded_ns : Registry.Sum.t;
}

let create ?metrics ~vm ~config ~mode () =
  Config.validate config;
  (* Standalone groups (unit tests) get a private registry; the cloud passes
     its simulation-wide one. *)
  let metrics =
    match metrics with Some m -> m | None -> Registry.create ()
  in
  {
    vm;
    config;
    mode;
    members = [||];
    on_membership_change = [];
    degraded_since = None;
    m_divergences =
      Registry.counter metrics (Printf.sprintf "vm%d.divergences" vm);
    m_skew_blocks =
      Registry.counter metrics (Printf.sprintf "vm%d.skew_blocks" vm);
    m_ejections = Registry.counter metrics (Printf.sprintf "vm%d.ejections" vm);
    m_reintegrations =
      Registry.counter metrics (Printf.sprintf "vm%d.reintegrations" vm);
    m_degraded_ns = Registry.sum metrics (Printf.sprintf "vm%d.degraded_ns" vm);
  }

let vm t = t.vm
let mode t = t.mode
let config t = t.config
let replica_id m = m.replica_id
let machine_of m = m.machine
let member_virt m = m.virt
let complete t = Array.length t.members = t.config.Config.replicas

let member_by_id t id =
  if id >= 0 && id < Array.length t.members then Some t.members.(id) else None

let add_member t ~machine ~wake ~apply_slope ~send_report =
  if complete t then invalid_arg "Replica_group.add_member: group is full";
  let m =
    {
      replica_id = Array.length t.members;
      machine;
      wake;
      apply_slope;
      send_report;
      virt = Time.zero;
      blocked_skew = false;
      active = true;
      last_seen = Time.zero;
      epoch_index = 0;
      epoch_start_real = Time.zero;
      blocked_epoch = false;
      pending_boundary = None;
      reports = Hashtbl.create 8;
    }
  in
  t.members <- Array.append t.members [| m |];
  m

(* Vote counts are 3 (or 5 with spares) per replicated interrupt, so this
   sits on the delivery hot path; the branch networks in [Order_stats] take
   the small odd cases without copying or sorting. *)
let median_time times =
  if Array.length times mod 2 = 0 then
    invalid_arg "Replica_group.median_time: even count";
  Sw_stats.Order_stats.median_int64 times

let active m = m.active
let last_seen m = m.last_seen
let note_seen _t m ~now = if Time.(now > m.last_seen) then m.last_seen <- now

let active_count t =
  Array.fold_left (fun acc m -> if m.active then acc + 1 else acc) 0 t.members

(* The group degrades to the largest odd quorum the active members can
   field; the voters are the active members with the lowest replica ids, so
   every VMM derives the same voter set from the same membership view. *)
let quorum t =
  let n = active_count t in
  if n = 0 then 0 else if n mod 2 = 1 then n else n - 1

let quorum_ids t =
  let q = quorum t in
  let ids = ref [] and taken = ref 0 in
  Array.iter
    (fun m ->
      if m.active && !taken < q then begin
        ids := m.replica_id :: !ids;
        incr taken
      end)
    t.members;
  List.rev !ids

let in_quorum t m = m.active && List.mem m.replica_id (quorum_ids t)

let blocked _t m = m.blocked_skew || m.blocked_epoch

(* Deschedule the strictly fastest member when it leads the second fastest
   by more than the bound; everyone else runs. Only active members take part:
   a crashed replica's frozen virtual time must not pin the survivors, and an
   ejected-but-live member free-runs as a non-voting bystander. *)
let update_skew t =
  (* Runs on every VM exit, so the two largest virtual times come from a
     single scan over the members — no intermediate list, array or sort.
     Duplicated maxima land in both [fastest] and [second], exactly as the
     two head elements of a descending sort would. *)
  let live = ref 0 in
  let fastest = ref Time.zero and second = ref Time.zero in
  Array.iter
    (fun m ->
      if m.active then begin
        incr live;
        if !live = 1 then fastest := m.virt
        else if Time.(m.virt > !fastest) then begin
          second := !fastest;
          fastest := m.virt
        end
        else if !live = 2 then second := m.virt
        else if Time.(m.virt > !second) then second := m.virt
      end)
    t.members;
  if !live >= 2 then begin
    let fastest = !fastest and second = !second in
    let limit = t.config.Config.skew_bound in
    Array.iter
      (fun m ->
        if m.active then begin
          let should_block =
            Time.equal m.virt fastest
            && Time.(Time.sub fastest second > limit)
          in
          if m.blocked_skew && not should_block then begin
            m.blocked_skew <- false;
            m.wake ()
          end
          else begin
            if should_block && not m.blocked_skew then
              Registry.Counter.incr t.m_skew_blocks;
            m.blocked_skew <- should_block
          end
        end)
      t.members
  end

(* Try to resolve the epoch this member is blocked on: needs its own
   boundary crossing recorded and the reports of every quorum voter. A full
   group's quorum is all replicas; a degraded group resolves over the
   surviving odd quorum so the epoch machinery keeps making progress. *)
let current_reports t m =
  match quorum_ids t with
  | [] -> None
  | voters ->
      let found =
        List.map (fun from -> Hashtbl.find_opt m.reports (m.epoch_index, from)) voters
      in
      if List.for_all Option.is_some found then
        Some (Array.of_list (List.map Option.get found))
      else None

let try_resolve_epoch t m =
  match (m.pending_boundary, t.config.Config.epoch, current_reports t m) with
  | Some (boundary_instr, boundary_virt), Some e, Some reports ->
      let r_star = median_time (Array.map (fun rep -> rep.r) reports) in
      (* D* comes from the machine contributing the median real time; ties
         resolve to the lowest replica id for determinism. *)
      let d_star =
        let rec find i =
          if Time.equal reports.(i).r r_star then reports.(i).d else find (i + 1)
        in
        find 0
      in
      let raw_slope =
        Time.to_float_s (Time.add (Time.sub r_star boundary_virt) d_star)
        *. 1e9
        /. Int64.to_float e.Config.interval_branches
      in
      let slope =
        Sw_vm.Virtual_time.clamped_slope ~l:e.Config.slope_l ~u:e.Config.slope_u
          raw_slope
      in
      m.apply_slope ~at_instr:boundary_instr ~slope_ns_per_branch:slope;
      m.pending_boundary <- None;
      for from = 0 to t.config.Config.replicas - 1 do
        Hashtbl.remove m.reports (m.epoch_index, from)
      done;
      m.epoch_index <- m.epoch_index + 1;
      m.blocked_epoch <- false;
      m.wake ()
  | _ -> ()

let note_epoch_crossing t m ~now ~virt ~instr =
  match t.config.Config.epoch with
  | None -> ()
  | Some e ->
      let boundary =
        Int64.mul (Int64.of_int (m.epoch_index + 1)) e.Config.interval_branches
      in
      if Int64.compare instr boundary >= 0 && m.pending_boundary = None then begin
        let d = Time.sub now m.epoch_start_real in
        m.epoch_start_real <- now;
        m.pending_boundary <- Some (instr, virt);
        m.blocked_epoch <- true;
        (* Record our own report locally and multicast it to the peers. *)
        Hashtbl.replace m.reports (m.epoch_index, m.replica_id) { d; r = now };
        m.send_report ~epoch:m.epoch_index ~d ~r:now;
        try_resolve_epoch t m
      end

let note_exit t m ~now ~virt ~instr =
  m.virt <- virt;
  note_seen t m ~now;
  match t.mode with
  | Baseline -> ()
  | Stopwatch ->
      update_skew t;
      note_epoch_crossing t m ~now ~virt ~instr

let receive_report t ~at ~from_replica ~epoch ~d ~r =
  match t.mode with
  | Baseline -> ()
  | Stopwatch ->
      (* Reports for already-resolved epochs are stale duplicates; future
         epochs (a fast peer racing ahead) are buffered until this member
         catches up. *)
      if epoch >= at.epoch_index then begin
        Hashtbl.replace at.reports (epoch, from_replica) { d; r };
        try_resolve_epoch t at
      end

let record_divergence t = Registry.Counter.incr t.m_divergences
let skew_blocks t = Registry.Counter.value t.m_skew_blocks
let divergences t = Registry.Counter.value t.m_divergences

let epochs_resolved t =
  let resolved = ref max_int and any = ref false in
  Array.iter
    (fun m ->
      if m.active then begin
        any := true;
        resolved := Stdlib.min !resolved m.epoch_index
      end)
    t.members;
  if !any then !resolved else 0

let on_membership_change t f =
  t.on_membership_change <- f :: t.on_membership_change

(* Open or close the degraded-mode window; the sum only accumulates closed
   windows, so [degraded_ns] adds the still-open one on read. *)
let note_degraded_transition t ~now =
  let degraded = active_count t < Array.length t.members in
  match (t.degraded_since, degraded) with
  | None, true -> t.degraded_since <- Some now
  | Some since, false ->
      Registry.Sum.add t.m_degraded_ns (Int64.to_float (Time.sub now since));
      t.degraded_since <- None
  | _ -> ()

let degraded_ns t ~now =
  let closed = Registry.Sum.value t.m_degraded_ns in
  match t.degraded_since with
  | Some since -> closed +. Int64.to_float (Time.sub now since)
  | None -> closed

(* After any membership change the survivors must re-evaluate everything the
   old membership was gating: the skew frontier shrank or grew, and epochs
   waiting on a dead voter's report may now resolve over the new quorum.
   External listeners (VMM median rescans, egress population) run last, once
   the group state is consistent. *)
let fire_membership_change t =
  update_skew t;
  Array.iter (fun m -> if m.active then try_resolve_epoch t m) t.members;
  List.iter (fun f -> f ()) (List.rev t.on_membership_change)

let eject t m ~now =
  if m.active then begin
    m.active <- false;
    Registry.Counter.incr t.m_ejections;
    (* A live-but-ejected bystander must not stay parked on group decisions
       it no longer participates in. *)
    if m.blocked_skew || m.blocked_epoch then begin
      m.blocked_skew <- false;
      m.blocked_epoch <- false;
      m.wake ()
    end;
    note_degraded_transition t ~now;
    fire_membership_change t
  end

let reinstate t m ~now ~virt ~like =
  if m.active then invalid_arg "Replica_group.reinstate: member is active";
  if not like.active then
    invalid_arg "Replica_group.reinstate: resync source must be active";
  m.active <- true;
  Registry.Counter.incr t.m_reintegrations;
  m.virt <- virt;
  m.last_seen <- now;
  m.blocked_skew <- false;
  m.blocked_epoch <- false;
  m.pending_boundary <- None;
  (* Resync barrier: adopt the survivor's epoch position and report buffer so
     the rejoined member neither re-votes resolved epochs nor waits on
     reports that were consumed before it returned. *)
  m.epoch_index <- like.epoch_index;
  m.epoch_start_real <- like.epoch_start_real;
  Hashtbl.reset m.reports;
  Hashtbl.iter (fun k v -> Hashtbl.replace m.reports k v) like.reports;
  note_degraded_transition t ~now;
  fire_membership_change t

let ejections t = Registry.Counter.value t.m_ejections
let reintegrations t = Registry.Counter.value t.m_reintegrations
