type t = {
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  workers : int;
  escaped : int Atomic.t;
}

let workers t = t.workers
let escaped_exceptions t = Atomic.get t.escaped

let recommended_workers () = max 1 (Domain.recommended_domain_count ())

let worker_loop t =
  let rec next () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.work_available t.mutex
    done;
    match Queue.take_opt t.queue with
    | None ->
        (* Closed and drained. *)
        Mutex.unlock t.mutex
    | Some task ->
        Mutex.unlock t.mutex;
        (try task () with _ -> Atomic.incr t.escaped);
        next ()
  in
  next ()

let create ~workers:n () =
  if n < 1 then invalid_arg "Pool.create: need >= 1 worker";
  let t =
    {
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      closed = false;
      domains = [];
      workers = n;
      escaped = Atomic.make 0;
    }
  in
  t.domains <- List.init n (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t task =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task t.queue;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~workers f =
  let t = create ~workers () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
