let default_base = 0x57_0D_Ca7cL (* "StopWatch" *)

(* SplitMix64 finaliser, the same mixer Sw_sim.Prng uses. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let fnv64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let of_key ?(base = default_base) key = mix64 (Int64.logxor base (fnv64 key))
let nth seed i = mix64 (Int64.add seed (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L))
