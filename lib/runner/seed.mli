(** Deterministic per-job seed derivation.

    A job's seed is a pure function of its key (and an optional base seed),
    never of scheduling order, worker identity, or wall-clock time — the
    invariant that makes parallel and sequential sweeps aggregate to
    identical results. *)

(** The base seed used when a sweep doesn't supply one. *)
val default_base : int64

(** [of_key ?base key] hashes [key] (FNV-1a 64) and finalises it with the
    SplitMix64 mixer against [base]. Equal keys and bases give equal seeds;
    distinct keys give independent-looking seeds. *)
val of_key : ?base:int64 -> string -> int64

(** [nth seed i] derives the seed for the [i]-th replicate of a job family,
    e.g. run [i] of a replicated measurement. *)
val nth : int64 -> int -> int64
