module Wall = Sw_sim.Wall

type reason = Exn of string | Timed_out of float
type failure = { key : string; attempts : int; reason : reason }
type 'a outcome = ('a, failure) result

let pp_reason fmt = function
  | Exn msg -> Format.fprintf fmt "raised %s" msg
  | Timed_out s -> Format.fprintf fmt "timed out after %.2f s" s

let pp_failure fmt f =
  Format.fprintf fmt "job %s failed after %d attempt%s: %a" f.key f.attempts
    (if f.attempts = 1 then "" else "s")
    pp_reason f.reason

type event =
  | Started of { index : int; key : string; attempt : int }
  | Attempt_failed of {
      index : int;
      key : string;
      attempt : int;
      reason : reason;
      will_retry : bool;
    }
  | Finished of { index : int; key : string; attempt : int; wall_s : float }

let progress_printer ?(out = stderr) ~total () =
  let done_count = ref 0 in
  fun event ->
    match event with
    | Started _ -> ()
    | Attempt_failed { key; attempt; reason; will_retry; _ } ->
        Printf.fprintf out "  [runner] %s attempt %d %s%s\n%!" key attempt
          (Format.asprintf "%a" pp_reason reason)
          (if will_retry then "; retrying" else "; giving up")
    | Finished { key; attempt; wall_s; _ } ->
        incr done_count;
        Printf.fprintf out "  [runner %d/%d] %s (%.2f s%s)\n%!" !done_count
          total key wall_s
          (if attempt > 1 then Printf.sprintf "; attempt %d" attempt else "")

(* One job, all its attempts. Runs on a worker domain; everything it
   touches is either owned by the job or the serialised [emit]. *)
let run_one ~emit ~timeout_s ~retries ~backoff_s index job =
  let key = Job.key job in
  let rec attempt k =
    emit (Started { index; key; attempt = k });
    let t0 = Wall.now_s () in
    let result =
      try Ok (Job.run_attempt job ~attempt:k)
      with e -> Error (Exn (Printexc.to_string e))
    in
    let wall_s = Wall.elapsed_s t0 in
    let status =
      match result with
      | Error _ -> result
      | Ok _ -> (
          match timeout_s with
          | Some limit when wall_s > limit -> Error (Timed_out wall_s)
          | _ -> result)
    in
    match status with
    | Ok v ->
        emit (Finished { index; key; attempt = k; wall_s });
        Ok v
    | Error reason ->
        let will_retry = k <= retries in
        emit (Attempt_failed { index; key; attempt = k; reason; will_retry });
        if will_retry then begin
          if backoff_s > 0. then
            Unix.sleepf (backoff_s *. (2. ** float_of_int (k - 1)));
          attempt (k + 1)
        end
        else Error { key; attempts = k; reason }
  in
  attempt 1

let map ?pool ?timeout_s ?(retries = 1) ?(backoff_s = 0.05) ?on_event jobs =
  if retries < 0 then invalid_arg "Runner.map: retries must be >= 0";
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let event_mutex = Mutex.create () in
  let emit =
    match on_event with
    | None -> fun _ -> ()
    | Some f ->
        fun e ->
          Mutex.lock event_mutex;
          Fun.protect ~finally:(fun () -> Mutex.unlock event_mutex) (fun () ->
              f e)
  in
  match pool with
  | None ->
      Array.to_list
        (Array.mapi
           (fun i job -> run_one ~emit ~timeout_s ~retries ~backoff_s i job)
           jobs)
  | Some pool ->
      let results = Array.make n None in
      let remaining = ref n in
      let done_mutex = Mutex.create () in
      let all_done = Condition.create () in
      Array.iteri
        (fun i job ->
          Pool.submit pool (fun () ->
              let outcome =
                run_one ~emit ~timeout_s ~retries ~backoff_s i job
              in
              Mutex.lock done_mutex;
              results.(i) <- Some outcome;
              decr remaining;
              if !remaining = 0 then Condition.broadcast all_done;
              Mutex.unlock done_mutex))
        jobs;
      Mutex.lock done_mutex;
      while !remaining > 0 do
        Condition.wait all_done done_mutex
      done;
      Mutex.unlock done_mutex;
      Array.to_list
        (Array.map
           (function
             | Some o -> o
             | None -> assert false (* remaining = 0 implies every slot set *))
           results)

let map_groups ?pool ?timeout_s ?retries ?backoff_s ?on_event groups =
  let flat = List.concat_map snd groups in
  let outcomes = ref (map ?pool ?timeout_s ?retries ?backoff_s ?on_event flat) in
  List.map
    (fun (tag, jobs) ->
      let k = List.length jobs in
      let mine = List.filteri (fun i _ -> i < k) !outcomes in
      outcomes := List.filteri (fun i _ -> i >= k) !outcomes;
      (tag, mine))
    groups

let successes outcomes =
  List.filter_map (function Ok v -> Some v | Error _ -> None) outcomes

let failures outcomes =
  List.filter_map (function Ok _ -> None | Error f -> Some f) outcomes

let merge_summaries outcomes =
  List.fold_left Sw_sim.Summary.merge (Sw_sim.Summary.create ())
    (successes outcomes)

let get = function
  | Ok v -> v
  | Error f -> failwith (Format.asprintf "%a" pp_failure f)
