(** A unit of work for the runner: a stable key, a seed derived from it,
    and a closure that performs one deterministic simulation.

    The key names the job in progress reports, failure records, and JSON
    output, and is the sole input to seed derivation — so a job's result
    is a function of its spec alone, independent of which worker domain
    runs it or in what order. The closure must be self-contained: it may
    not share mutable state (in particular {!Sw_sim.Prng} generators, see
    that interface's domain-ownership note) with any other job. *)

type 'a t

(** [make ?seed ~key f] builds a job. [seed] defaults to
    [Seed.of_key key]; pass it explicitly to reproduce a historical
    seeding scheme. *)
val make : ?seed:int64 -> key:string -> (seed:int64 -> 'a) -> 'a t

(** [make_resumable ?seed ~key f] builds a job whose closure also learns
    which attempt is running (1 on the first). A job that persists
    progress — a checkpointing soak ([Sw_ckpt.Soak]) being the canonical
    case — uses [attempt > 1] to resume from its saved state instead of
    restarting, turning the runner's crash-retry loop into crash
    {e recovery}. *)
val make_resumable :
  ?seed:int64 -> key:string -> (seed:int64 -> attempt:int -> 'a) -> 'a t

val key : 'a t -> string
val seed : 'a t -> int64

(** [run t] performs one attempt, passing the job its seed. Exceptions
    propagate to the caller (the runner turns them into structured
    failures). Equivalent to [run_attempt t ~attempt:1]. *)
val run : 'a t -> 'a

(** [run_attempt t ~attempt] performs one attempt, telling the job which
    one it is — what the runner's retry loop calls. *)
val run_attempt : 'a t -> attempt:int -> 'a

(** [map f t] post-processes the job's result with [f] (applied on the
    worker, as part of the job). *)
val map : ('a -> 'b) -> 'a t -> 'b t
