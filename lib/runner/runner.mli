(** Orchestration of simulation-job fleets: dispatch over a {!Pool},
    per-job timeout and bounded retry with exponential backoff, crash
    isolation, live progress events, and order-stable result collection.

    Determinism contract: results come back in job-list order and each
    job's seed is fixed before dispatch ({!Job}), so the outcome list —
    and anything aggregated from it — is byte-identical whether the fleet
    runs on 1 worker or 16. Only wall-clock fields ([wall_s]) vary. *)

(** Why a job (after all its attempts) was abandoned. *)
type reason =
  | Exn of string  (** The attempt raised; the printed exception. *)
  | Timed_out of float
      (** The attempt's wall-clock seconds exceeded the timeout. Detected
          when the attempt returns — OCaml domains cannot be preempted, so
          an over-budget attempt runs to completion, its result is
          discarded, and the job is retried or failed. *)

type failure = { key : string; attempts : int; reason : reason }

(** A job's final status: [Ok v], or a structured failure that did not
    abort the rest of the fleet. *)
type 'a outcome = ('a, failure) result

val pp_failure : Format.formatter -> failure -> unit

(** Progress events, emitted serialised (never concurrently). [index] is
    the job's position in the submitted list. *)
type event =
  | Started of { index : int; key : string; attempt : int }
  | Attempt_failed of {
      index : int;
      key : string;
      attempt : int;
      reason : reason;
      will_retry : bool;
    }
  | Finished of { index : int; key : string; attempt : int; wall_s : float }

(** [progress_printer ~total ()] is an [on_event] callback printing
    one line per finished/failed job to [stderr]. *)
val progress_printer : ?out:out_channel -> total:int -> unit -> event -> unit

(** [map ?pool ?timeout_s ?retries ?backoff_s ?on_event jobs] runs every
    job and returns their outcomes in submission order.

    Without [pool] (or on a 1-worker pool) jobs run inline, sequentially.
    [retries] (default 1) is the number of {e re}-attempts after the
    first; attempt [k]'s failure backs off [backoff_s * 2^(k-1)] seconds
    (default 0.05) before retrying. Each attempt is told its number
    ({!Job.run_attempt}), so jobs built with {!Job.make_resumable} — e.g.
    checkpointing soaks — recover from where the crashed attempt left off
    rather than restarting. [timeout_s] bounds each attempt as described
    under {!Timed_out}. An exception in one job never propagates: it
    becomes that job's [Error]. *)
val map :
  ?pool:Pool.t ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?on_event:(event -> unit) ->
  'a Job.t list ->
  'a outcome list

(** [map_groups ?pool ... groups] flattens tagged job groups into one
    fleet — so small groups share the pool instead of each paying a
    dispatch barrier — and re-associates outcomes per group, in order. *)
val map_groups :
  ?pool:Pool.t ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?on_event:(event -> unit) ->
  ('g * 'a Job.t list) list ->
  ('g * 'a outcome list) list

(** Successful results, dropped failures. *)
val successes : 'a outcome list -> 'a list

val failures : 'a outcome list -> failure list

(** [merge_summaries outcomes] folds {!Sw_sim.Summary.merge} over the
    successful per-job summaries — the parallel aggregation path. *)
val merge_summaries : Sw_sim.Summary.t outcome list -> Sw_sim.Summary.t

(** [get outcome] unwraps, raising [Failure] with the formatted failure —
    for callers whose jobs must not fail (e.g. regression drivers). *)
val get : 'a outcome -> 'a
