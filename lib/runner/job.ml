type 'a t = { key : string; seed : int64; f : seed:int64 -> attempt:int -> 'a }

let make ?seed ~key f =
  let seed = match seed with Some s -> s | None -> Seed.of_key key in
  { key; seed; f = (fun ~seed ~attempt:_ -> f ~seed) }

let make_resumable ?seed ~key f =
  let seed = match seed with Some s -> s | None -> Seed.of_key key in
  { key; seed; f }

let key t = t.key
let seed t = t.seed
let run_attempt t ~attempt = t.f ~seed:t.seed ~attempt
let run t = run_attempt t ~attempt:1
let map g t = { t with f = (fun ~seed ~attempt -> g (t.f ~seed ~attempt)) }
