type 'a t = { key : string; seed : int64; f : seed:int64 -> 'a }

let make ?seed ~key f =
  let seed = match seed with Some s -> s | None -> Seed.of_key key in
  { key; seed; f }

let key t = t.key
let seed t = t.seed
let run t = t.f ~seed:t.seed
let map g t = { t with f = (fun ~seed -> g (t.f ~seed)) }
