(** Minimal deterministic JSON emission for machine-readable benchmark
    results ([BENCH_results.json]).

    No external JSON dependency; the serializer is deliberately tiny and —
    important for the runner's determinism contract — byte-stable: equal
    values always serialise to equal strings, so parallel and sequential
    sweeps can be compared with [String.equal]. Non-finite floats (which
    JSON cannot carry) serialise as the strings ["nan"] / ["inf"] /
    ["-inf"]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) serialisation. *)
val to_string : t -> string

(** [write path json] writes [to_string json] plus a trailing newline. *)
val write : string -> t -> unit

(** Summary statistics as an object:
    [{"count", "mean", "stddev", "min", "max", "total"}] (min/max [Null]
    when empty). *)
val of_summary : Sw_sim.Summary.t -> t

(** A structured failure as an object:
    [{"key", "status", "attempts", ..., "reason"}] — [status] is
    ["crashed"] (with the printed exception under ["exn"]) or
    ["timed_out"] (with the budget under ["timeout_s"]), [attempts] the
    number of attempts spent; ["reason"] keeps the legacy one-line
    rendering. *)
val of_failure : Runner.failure -> t

(** [of_outcome value outcome] renders a job's final status:
    [{"status": "ok", "value": ...}] on success (via [value]), else
    {!of_failure}'s object. *)
val of_outcome : ('a -> t) -> 'a Runner.outcome -> t

(** One metrics snapshot as an object keyed by metric path; each value is
    [{"kind", "value"}] (counter/sum/gauge) or the histogram object
    [{"kind","count","total","min","max","buckets"}], with buckets as
    [[upper_bound_ns, count]] pairs (the catch-all bound is [Null]). Same
    schema as [Sw_obs.Export.to_json_string], so equal snapshots serialise
    to equal bytes either way. *)
val of_metrics : Sw_obs.Snapshot.t -> t

(** [bench_file ?metrics ?perf ~workers ~wall_s ~timings ~experiments ()]
    assembles the [BENCH_results.json] document. Everything under
    ["experiments"] — and ["metrics"], when a merged snapshot is supplied —
    is deterministic (same bytes for any worker count); worker count,
    wall-clock readings and the engine micro-benchmark's throughput rows
    (["perf"], one object per workload) live under ["workers"] / ["timing"]
    / ["perf"] so consumers — and the determinism test — can split the
    two. *)
val bench_file :
  ?metrics:Sw_obs.Snapshot.t ->
  ?perf:(string * t) list ->
  workers:int ->
  wall_s:float ->
  timings:(string * float) list ->
  experiments:(string * t) list ->
  unit ->
  t
