(** Minimal deterministic JSON emission for machine-readable benchmark
    results ([BENCH_results.json]).

    No external JSON dependency; the serializer is deliberately tiny and —
    important for the runner's determinism contract — byte-stable: equal
    values always serialise to equal strings, so parallel and sequential
    sweeps can be compared with [String.equal]. Non-finite floats (which
    JSON cannot carry) serialise as the strings ["nan"] / ["inf"] /
    ["-inf"]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) serialisation. *)
val to_string : t -> string

(** [write path json] writes [to_string json] plus a trailing newline. *)
val write : string -> t -> unit

(** Summary statistics as an object:
    [{"count", "mean", "stddev", "min", "max", "total"}] (min/max [Null]
    when empty). *)
val of_summary : Sw_sim.Summary.t -> t

(** A structured failure as an object: [{"key", "attempts", "reason"}]. *)
val of_failure : Runner.failure -> t

(** [bench_file ~workers ~wall_s ~timings ~experiments] assembles the
    [BENCH_results.json] document. Everything under ["experiments"] is
    deterministic (same bytes for any worker count); worker count and
    wall-clock readings live under ["workers"] / ["timing"] so consumers —
    and the determinism test — can split the two. *)
val bench_file :
  workers:int ->
  wall_s:float ->
  timings:(string * float) list ->
  experiments:(string * t) list ->
  t
