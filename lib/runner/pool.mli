(** A fixed-size worker pool on OCaml 5 [Domain]s with a shared FIFO work
    queue.

    The pool is task-agnostic (it runs [unit -> unit] thunks); {!Runner}
    layers job semantics — seeding, retry, timeout, result collection — on
    top. Tasks must not raise: a task that does is swallowed (the worker
    survives) but the escape is counted in {!escaped_exceptions} so bugs in
    the wrapping layer can't hide. Submitting from inside a task is
    permitted (the queue is unbounded), but waiting from inside a task for
    another task's completion can deadlock a 1-worker pool. *)

type t

(** [create ~workers ()] spawns [workers] domains (>= 1). Keep one pool
    per process near [Domain.recommended_domain_count]; domains are not
    cheap threads. *)
val create : workers:int -> unit -> t

val workers : t -> int

(** A sensible worker count for this machine. *)
val recommended_workers : unit -> int

(** [submit t task] enqueues [task]. Raises [Invalid_argument] after
    {!shutdown}. *)
val submit : t -> (unit -> unit) -> unit

(** [shutdown t] stops accepting work, drains the queue, and joins all
    worker domains. Idempotent. *)
val shutdown : t -> unit

(** Tasks whose exceptions reached the worker loop (always 0 when driven
    by {!Runner}, which catches per-attempt). *)
val escaped_exceptions : t -> int

(** [with_pool ~workers f] runs [f pool] and guarantees shutdown. *)
val with_pool : workers:int -> (t -> 'a) -> 'a
