type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f then "\"nan\""
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else
    (* Shortest representation that round-trips, so serialisation is a
       function of the float's bits alone. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 1024 in
  emit buf json;
  Buffer.contents buf

let write path json =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string json);
      output_char oc '\n')

let of_summary s =
  let module Summary = Sw_sim.Summary in
  let bound f = if Summary.count s = 0 then Null else Float (f s) in
  Obj
    [
      ("count", Int (Summary.count s));
      ("mean", Float (Summary.mean s));
      ("stddev", Float (Summary.stddev s));
      ("min", bound Summary.min);
      ("max", bound Summary.max);
      ("total", Float (Summary.total s));
    ]

let of_failure (f : Runner.failure) =
  let status, detail, reason =
    match f.Runner.reason with
    | Runner.Exn msg ->
        ("crashed", [ ("exn", String msg) ], String ("exn: " ^ msg))
    | Runner.Timed_out s ->
        ( "timed_out",
          [ ("timeout_s", Float s) ],
          String (Printf.sprintf "timeout after %.2f s" s) )
  in
  Obj
    ([
       ("key", String f.Runner.key);
       ("status", String status);
       ("attempts", Int f.Runner.attempts);
     ]
    @ detail
    @ [ ("reason", reason) ])

let of_outcome value = function
  | Ok v -> Obj [ ("status", String "ok"); ("value", value v) ]
  | Error f -> of_failure f

let of_metrics snapshot =
  let module Snapshot = Sw_obs.Snapshot in
  let histogram (h : Snapshot.histogram) =
    let bound v = if h.Snapshot.count = 0 then Null else Int (Int64.to_int v) in
    Obj
      [
        ("kind", String "histogram");
        ("count", Int h.Snapshot.count);
        ("total", Int (Int64.to_int h.Snapshot.total));
        ("min", bound h.Snapshot.min);
        ("max", bound h.Snapshot.max);
        ( "buckets",
          List
            (List.map
               (fun (i, n) ->
                 let b = Sw_obs.Buckets.bound i in
                 List
                   [
                     (if Int64.equal b Int64.max_int then Null
                      else Int (Int64.to_int b));
                     Int n;
                   ])
               h.Snapshot.buckets) );
      ]
  in
  let data = function
    | Snapshot.Counter v ->
        Obj [ ("kind", String "counter"); ("value", Int v) ]
    | Snapshot.Sum v -> Obj [ ("kind", String "sum"); ("value", Float v) ]
    | Snapshot.Gauge v -> Obj [ ("kind", String "gauge"); ("value", Float v) ]
    | Snapshot.Histogram h -> histogram h
  in
  Obj (List.map (fun (name, d) -> (name, data d)) (Snapshot.to_list snapshot))

let bench_file ?metrics ?perf ~workers ~wall_s ~timings ~experiments () =
  let metrics_field =
    match metrics with
    | None -> []
    | Some snapshot -> [ ("metrics", of_metrics snapshot) ]
  in
  let perf_field =
    match perf with None -> [] | Some rows -> [ ("perf", Obj rows) ]
  in
  Obj
    ([
       ("schema", String "stopwatch-bench/1");
       ("workers", Int workers);
       ("experiments", Obj experiments);
     ]
    @ metrics_field @ perf_field
    @ [
        ( "timing",
          Obj
            (("total_wall_s", Float wall_s)
            :: List.map (fun (name, s) -> (name, Float s)) timings) );
      ])
