module Counter = struct
  type t = { mutable v : int }

  let[@inline] incr t = t.v <- t.v + 1
  let[@inline] add t n = t.v <- t.v + n
  let value t = t.v
  let reset t = t.v <- 0
end

module Sum = struct
  type t = { mutable v : float }

  let add t x = t.v <- t.v +. x
  let value t = t.v
end

module Gauge = struct
  (* Two watermarks, merged on read: [v] for float observations and [vi] for
     the unboxed int fast path ([observe_int] is a compare and a store —
     no float boxing on the scheduling hot loop). *)
  type t = { mutable v : float; mutable vi : int }

  let observe t x = if x > t.v then t.v <- x
  let[@inline] observe_int t x = if x > t.vi then t.vi <- x
  let value t = Float.max t.v (float_of_int t.vi)
end

module Histogram = struct
  type t = {
    buckets : int array;
    mutable count : int;
    mutable total : int64;
    mutable min : int64;
    mutable max : int64;
  }

  let make () =
    {
      buckets = Array.make Buckets.count 0;
      count = 0;
      total = 0L;
      min = Int64.max_int;
      max = Int64.min_int;
    }

  let observe t v =
    let i = Buckets.index v in
    t.buckets.(i) <- t.buckets.(i) + 1;
    t.count <- t.count + 1;
    t.total <- Int64.add t.total v;
    if Int64.compare v t.min < 0 then t.min <- v;
    if Int64.compare v t.max > 0 then t.max <- v

  let count t = t.count
  let total t = t.total
  let max t = t.max
  let min t = t.min
end

type metric =
  | M_counter of Counter.t
  | M_sum of Sum.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

(* [on] is the hot-path master switch: producers that batch several updates
   behind one branch (e.g. the engine's per-event accounting) test it once
   per operation instead of paying each instrument unconditionally. *)
type t = { metrics : (string, metric) Hashtbl.t; mutable on : bool }

let create () = { metrics = Hashtbl.create 64; on = true }
let[@inline] enabled t = t.on
let set_enabled t on = t.on <- on

let valid_path_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
  | _ -> false

let validate_path path =
  if String.length path = 0 then invalid_arg "Registry: empty metric path";
  String.iter
    (fun c ->
      if not (valid_path_char c) then
        invalid_arg
          (Printf.sprintf "Registry: invalid character %C in metric path %S" c
             path))
    path

let kind_name = function
  | M_counter _ -> "counter"
  | M_sum _ -> "sum"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

let register t path ~kind ~make ~cast =
  validate_path path;
  match Hashtbl.find_opt t.metrics path with
  | None ->
      let m = make () in
      Hashtbl.add t.metrics path m;
      (match cast m with Some h -> h | None -> assert false)
  | Some m -> (
      match cast m with
      | Some h -> h
      | None ->
          invalid_arg
            (Printf.sprintf "Registry: %s already registered as a %s, not a %s"
               path (kind_name m) kind))

let counter t path =
  register t path ~kind:"counter"
    ~make:(fun () -> M_counter { Counter.v = 0 })
    ~cast:(function M_counter c -> Some c | _ -> None)

let sum t path =
  register t path ~kind:"sum"
    ~make:(fun () -> M_sum { Sum.v = 0. })
    ~cast:(function M_sum s -> Some s | _ -> None)

let gauge t path =
  register t path ~kind:"gauge"
    ~make:(fun () -> M_gauge { Gauge.v = 0.; vi = 0 })
    ~cast:(function M_gauge g -> Some g | _ -> None)

let histogram t path =
  register t path ~kind:"histogram"
    ~make:(fun () -> M_histogram (Histogram.make ()))
    ~cast:(function M_histogram h -> Some h | _ -> None)

let data_of_metric = function
  | M_counter c -> Snapshot.Counter c.Counter.v
  | M_sum s -> Snapshot.Sum s.Sum.v
  | M_gauge g -> Snapshot.Gauge (Gauge.value g)
  | M_histogram h ->
      let buckets = ref [] in
      for i = Buckets.count - 1 downto 0 do
        if h.Histogram.buckets.(i) > 0 then
          buckets := (i, h.Histogram.buckets.(i)) :: !buckets
      done;
      Snapshot.Histogram
        {
          Snapshot.count = h.Histogram.count;
          total = h.Histogram.total;
          min = h.Histogram.min;
          max = h.Histogram.max;
          buckets = !buckets;
        }

let snapshot t =
  Snapshot.of_list
    (Hashtbl.fold
       (fun name m acc -> (name, data_of_metric m) :: acc)
       t.metrics [])
