(* Chrome trace-event ("Trace Event Format") JSON emitter, loadable by
   ui.perfetto.dev and chrome://tracing.

   Track model:
   - each guest VM is a process ([pid = vm + 1], named "vm<N>"), each of
     its replicas a thread ([tid = replica + 1], named "r<N>");
   - the edge nodes share the synthetic "net" process (ingress / egress
     threads); fault windows and spans get their own processes, so they
     never interleave with guest tracks;
   - profile timers render as counter tracks under the "profile" process.

   Protocol steps (proposal, median, delivery, ingress stamp, egress
   release) are thin duration events so flow arrows have slices to bind
   to; everything else is an instant. Lineage becomes flow arrows: one
   s→f edge per causal hop (ingress→proposal, proposal→median,
   median→delivery), ids assigned in emission order, so a run's export is
   a pure function of its trace. *)

let vm_pid vm = vm + 1
let net_pid = 9000
let fault_pid = 9001
let span_pid = 9002
let profile_pid = 9990
let ingress_tid = 1
let egress_tid = 2

let add_ts buf ns =
  (* Microseconds with nanosecond precision, as a decimal literal. *)
  Buffer.add_string buf
    (Printf.sprintf "%Ld.%03Ld" (Int64.div ns 1000L) (Int64.rem ns 1000L))

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

type emitter = { buf : Buffer.t; mutable first : bool }

let event em fields =
  if em.first then em.first <- false else Buffer.add_char em.buf ',';
  Buffer.add_char em.buf '{';
  List.iteri
    (fun i (k, emit_v) ->
      if i > 0 then Buffer.add_char em.buf ',';
      add_escaped em.buf k;
      Buffer.add_char em.buf ':';
      emit_v em.buf)
    fields;
  Buffer.add_char em.buf '}'

let str s buf = add_escaped buf s
let int n buf = Buffer.add_string buf (string_of_int n)
let i64 n buf = Buffer.add_string buf (Int64.to_string n)
let ts ns buf = add_ts buf ns
let raw s buf = Buffer.add_string buf s

let args fields buf =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, emit_v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_escaped buf k;
      Buffer.add_char buf ':';
      emit_v buf)
    fields;
  Buffer.add_char buf '}'

let metadata em ~name ~pid ?tid ~value () =
  let tid_field = match tid with None -> [] | Some t -> [ ("tid", int t) ] in
  event em
    ([ ("name", str name); ("ph", str "M"); ("pid", int pid) ]
    @ tid_field
    @ [ ("args", args [ ("name", str value) ]) ])

(* Thin slice a flow arrow can bind to. *)
let slice em ~name ~at ~pid ~tid a =
  event em
    [
      ("name", str name);
      ("ph", str "X");
      ("ts", ts at);
      ("dur", raw "1");
      ("pid", int pid);
      ("tid", int tid);
      ("args", args a);
    ]

let instant em ~name ~at ~pid ~tid a =
  event em
    [
      ("name", str name);
      ("ph", str "i");
      ("ts", ts at);
      ("pid", int pid);
      ("tid", int tid);
      ("s", str "t");
      ("args", args a);
    ]

(* One lineage hop: a flow start bound to the source slice and a flow end
   bound to the destination slice, under a per-edge id. *)
let flow_edge em ~id ~src:(s_at, s_pid, s_tid) ~dst:(d_at, d_pid, d_tid) =
  event em
    [
      ("name", str "pkt");
      ("cat", str "lineage");
      ("ph", str "s");
      ("ts", ts s_at);
      ("pid", int s_pid);
      ("tid", int s_tid);
      ("id", int id);
    ];
  event em
    [
      ("name", str "pkt");
      ("cat", str "lineage");
      ("ph", str "f");
      ("bp", str "e");
      ("ts", ts d_at);
      ("pid", int d_pid);
      ("tid", int d_tid);
      ("id", int id);
    ]

module Key = struct
  type t = int * int * int (* vm, ingress_seq, replica *)
end

let to_json ?meta ?profile entries =
  let em = { buf = Buffer.create 4096; first = true } in
  Buffer.add_string em.buf "{\"traceEvents\":[";
  (* First pass: the causal anchors flow arrows attach to, and the tracks
     that need naming. *)
  let own_proposal : (Key.t, int64) Hashtbl.t = Hashtbl.create 256 in
  let adoption_at : (Key.t, int64) Hashtbl.t = Hashtbl.create 256 in
  let ingress_at : (int * int, int64) Hashtbl.t = Hashtbl.create 256 in
  let vm_tracks : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let used_net = ref false and used_fault = ref false in
  let used_span = ref false in
  let remember tbl k at = if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k at in
  List.iter
    (fun (e : Trace.entry) ->
      let at = e.Trace.at_ns in
      (match e.Trace.event with
      | Event.Packet_proposed { vm; observer; proposer; ingress_seq; _ } ->
          if observer = proposer then
            remember own_proposal (vm, ingress_seq, proposer) at
      | Event.Median_adopted { vm; replica; ingress_seq; _ } ->
          remember adoption_at (vm, ingress_seq, replica) at
      | Event.Ingress_replicated { vm; ingress_seq; _ } ->
          remember ingress_at (vm, ingress_seq) at
      | _ -> ());
      (match (Event.vm_of e.Trace.event, Event.replica_of e.Trace.event) with
      | Some vm, Some r -> remember vm_tracks (vm, r) ()
      | Some vm, None -> remember vm_tracks (vm, -1) ()
      | None, _ -> ());
      match e.Trace.event with
      | Event.Ingress_replicated _ | Event.Egress_released _ -> used_net := true
      | Event.Fault_injected _ | Event.Fault_cleared _ -> used_fault := true
      | Event.Span_begin _ | Event.Span_end _ | Event.Message _ ->
          used_span := true
      | _ -> ())
    entries;
  (* Track-naming metadata, in sorted track order. *)
  let tracks =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) vm_tracks [])
  in
  let named_vms = ref [] in
  List.iter
    (fun (vm, r) ->
      if not (List.mem vm !named_vms) then begin
        named_vms := vm :: !named_vms;
        metadata em ~name:"process_name" ~pid:(vm_pid vm)
          ~value:(Printf.sprintf "vm%d" vm) ()
      end;
      if r >= 0 then
        metadata em ~name:"thread_name" ~pid:(vm_pid vm) ~tid:(r + 1)
          ~value:(Printf.sprintf "r%d" r) ())
    tracks;
  if !used_net then begin
    metadata em ~name:"process_name" ~pid:net_pid ~value:"net" ();
    metadata em ~name:"thread_name" ~pid:net_pid ~tid:ingress_tid
      ~value:"ingress" ();
    metadata em ~name:"thread_name" ~pid:net_pid ~tid:egress_tid ~value:"egress"
      ()
  end;
  if !used_fault then
    metadata em ~name:"process_name" ~pid:fault_pid ~value:"faults" ();
  if !used_span then
    metadata em ~name:"process_name" ~pid:span_pid ~value:"spans" ();
  (* Second pass: the events themselves, in emission order, with flow
     edges emitted at each hop's destination (both endpoints known). *)
  let next_flow = ref 0 in
  let edge ~src ~dst =
    let id = !next_flow in
    incr next_flow;
    flow_edge em ~id ~src ~dst
  in
  let last_ts = ref 0L in
  List.iter
    (fun (e : Trace.entry) ->
      let at = e.Trace.at_ns in
      if Int64.compare at !last_ts > 0 then last_ts := at;
      match e.Trace.event with
      | Event.Packet_proposed { vm; observer; proposer; ingress_seq; virt_ns }
        ->
          let pid = vm_pid vm and tid = observer + 1 in
          slice em ~name:"proposal" ~at ~pid ~tid
            [
              ("proposer", int proposer);
              ("ingress_seq", int ingress_seq);
              ("virt_ns", i64 virt_ns);
            ];
          if observer = proposer then
            Option.iter
              (fun t0 ->
                edge
                  ~src:(t0, net_pid, ingress_tid)
                  ~dst:(at, pid, tid))
              (Hashtbl.find_opt ingress_at (vm, ingress_seq))
      | Event.Median_adopted { vm; replica; ingress_seq; virt_ns; proposals }
        ->
          let pid = vm_pid vm and tid = replica + 1 in
          slice em ~name:"median" ~at ~pid ~tid
            [
              ("ingress_seq", int ingress_seq);
              ("virt_ns", i64 virt_ns);
              ("voters", int (List.length proposals));
            ];
          List.iter
            (fun (proposer, _) ->
              Option.iter
                (fun t0 ->
                  edge
                    ~src:(t0, vm_pid vm, proposer + 1)
                    ~dst:(at, pid, tid))
                (Hashtbl.find_opt own_proposal (vm, ingress_seq, proposer)))
            (List.sort compare proposals)
      | Event.Packet_delivered { vm; replica; seq; virt_ns } ->
          let pid = vm_pid vm and tid = replica + 1 in
          slice em ~name:"deliver" ~at ~pid ~tid
            [ ("ingress_seq", int seq); ("virt_ns", i64 virt_ns) ];
          Option.iter
            (fun t0 -> edge ~src:(t0, pid, tid) ~dst:(at, pid, tid))
            (Hashtbl.find_opt adoption_at (vm, seq, replica))
      | Event.Ingress_replicated { vm; ingress_seq; copies; size } ->
          slice em ~name:"ingress-rep" ~at ~pid:net_pid ~tid:ingress_tid
            [
              ("vm", int vm);
              ("ingress_seq", int ingress_seq);
              ("copies", int copies);
              ("size", int size);
            ]
      | Event.Egress_released { vm; seq; rank; copies } ->
          slice em ~name:"egress-release" ~at ~pid:net_pid ~tid:egress_tid
            [
              ("vm", int vm);
              ("seq", int seq);
              ("rank", int rank);
              ("copies", int copies);
            ]
      | Event.Divergence { vm; replica; kind } ->
          instant em ~name:"divergence" ~at ~pid:(vm_pid vm) ~tid:(replica + 1)
            [
              ( "kind",
                str
                  (match kind with
                  | Event.Late_median -> "late-median"
                  | Event.Delta_d_violation -> "delta-d-violation") );
            ]
      | Event.Vm_exit { vm; replica; machine; virt_ns; instr } ->
          instant em ~name:"vm-exit" ~at ~pid:(vm_pid vm) ~tid:(replica + 1)
            [
              ("machine", int machine);
              ("virt_ns", i64 virt_ns);
              ("instr", i64 instr);
            ]
      | Event.Disk_irq { vm; replica; tag; virt_ns } ->
          instant em ~name:"disk-irq" ~at ~pid:(vm_pid vm) ~tid:(replica + 1)
            [ ("tag", int tag); ("virt_ns", i64 virt_ns) ]
      | Event.Dma_irq { vm; replica; tag; virt_ns } ->
          instant em ~name:"dma-irq" ~at ~pid:(vm_pid vm) ~tid:(replica + 1)
            [ ("tag", int tag); ("virt_ns", i64 virt_ns) ]
      | Event.Fault_injected { fault; target; span_ns } ->
          instant em ~name:"fault-inject" ~at ~pid:fault_pid ~tid:1
            [ ("fault", str fault); ("target", str target); ("span_ns", i64 span_ns) ]
      | Event.Fault_cleared { fault; target } ->
          instant em ~name:"fault-clear" ~at ~pid:fault_pid ~tid:1
            [ ("fault", str fault); ("target", str target) ]
      | Event.Fault_replica_crash { vm; replica } ->
          instant em ~name:"crash" ~at ~pid:(vm_pid vm) ~tid:(replica + 1) []
      | Event.Fault_replica_restart { vm; replica } ->
          instant em ~name:"restart" ~at ~pid:(vm_pid vm) ~tid:(replica + 1) []
      | Event.Degrade_suspected { vm; replica; attempt } ->
          instant em ~name:"suspected" ~at ~pid:(vm_pid vm) ~tid:(replica + 1)
            [ ("attempt", int attempt) ]
      | Event.Degrade_ejected { vm; replica; quorum } ->
          instant em ~name:"ejected" ~at ~pid:(vm_pid vm) ~tid:(replica + 1)
            [ ("quorum", int quorum) ]
      | Event.Degrade_reintegrated { vm; replica; quorum } ->
          instant em ~name:"reintegrated" ~at ~pid:(vm_pid vm) ~tid:(replica + 1)
            [ ("quorum", int quorum) ]
      | Event.Span_begin { name } ->
          event em
            [
              ("name", str name);
              ("ph", str "B");
              ("ts", ts at);
              ("pid", int span_pid);
              ("tid", int 1);
            ]
      | Event.Span_end { name; elapsed_ns } ->
          event em
            [
              ("name", str name);
              ("ph", str "E");
              ("ts", ts at);
              ("pid", int span_pid);
              ("tid", int 1);
              ("args", args [ ("elapsed_ns", i64 elapsed_ns) ]);
            ]
      | Event.Message { label; text } ->
          instant em ~name:label ~at ~pid:span_pid ~tid:1
            [ ("text", str text) ])
    entries;
  (* Profile counter tracks: one cumulative sample per timer at the end of
     the trace. Wall-clock data — keep out of byte-compared exports. *)
  (match profile with
  | None -> ()
  | Some p ->
      let timers = Profile.to_list p in
      if timers <> [] then begin
        metadata em ~name:"process_name" ~pid:profile_pid ~value:"profile" ();
        List.iter
          (fun (name, total_ns, calls) ->
            event em
              [
                ("name", str name);
                ("ph", str "C");
                ("ts", ts !last_ts);
                ("pid", int profile_pid);
                ( "args",
                  args [ ("total_ns", int total_ns); ("calls", int calls) ] );
              ])
          timers
      end);
  Buffer.add_string em.buf "],\"displayTimeUnit\":\"ms\"";
  (match meta with
  | None -> ()
  | Some m ->
      Buffer.add_string em.buf ",\"otherData\":";
      Buffer.add_string em.buf (Export.meta_json m));
  Buffer.add_string em.buf "}";
  Buffer.contents em.buf
