(* 1-2-5 per decade, 1 ns .. 10^12 ns, then a catch-all. The ladder is a
   compile-time constant so histograms from different simulations (and
   different worker domains) always merge bucket-for-bucket. *)

let bounds =
  let decades = 13 (* 10^0 .. 10^12 *) in
  let b = Array.make ((3 * decades) + 1) 0L in
  let v = ref 1L in
  for d = 0 to decades - 1 do
    b.((3 * d) + 0) <- !v;
    b.((3 * d) + 1) <- Int64.mul 2L !v;
    b.((3 * d) + 2) <- Int64.mul 5L !v;
    v := Int64.mul 10L !v
  done;
  b.(3 * decades) <- Int64.max_int;
  b

let count = Array.length bounds

let bound i =
  if i < 0 || i >= count then invalid_arg "Buckets.bound: index out of range";
  bounds.(i)

let index v =
  (* Binary search for the first bound >= v. *)
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if Int64.compare bounds.(mid) v >= 0 then go lo mid else go (mid + 1) hi
    end
  in
  if Int64.compare v 1L <= 0 then 0 else go 0 (count - 1)
