(** The fixed log-spaced bucket ladder shared by every {!Registry.Histogram}.

    Buckets follow a 1-2-5 progression per decade from 1 ns up to 10^12 ns
    (~16.7 simulated minutes), with a final catch-all bucket whose upper bound
    is [Int64.max_int]. Because the ladder is identical for all histograms,
    merging two histograms is exact bucket-wise addition — the property the
    runner's deterministic [-j N] aggregation relies on. *)

(** Number of buckets, catch-all included. *)
val count : int

(** [bound i] is the inclusive upper bound (in ns) of bucket [i];
    [bound (count - 1)] is [Int64.max_int]. Raises [Invalid_argument] out of
    range. *)
val bound : int -> int64

(** [index v] is the bucket holding [v]: the smallest [i] with
    [v <= bound i]. Negative values land in bucket 0. *)
val index : int64 -> int
