(** Structured trace events.

    Each event is a typed variant carrying the identifying fields of the
    protocol step it records; nothing is formatted at emission time.
    Rendering happens only when a consumer prints the event (e.g. the Fig. 2
    protocol trace), so emitting into a disabled {!Trace} costs a branch and
    no allocation at well-written call sites (guard with {!Trace.active}
    before constructing the payload). Timestamps are int64 nanoseconds — the
    representation of [Sw_sim.Time.t]. *)

type divergence_kind =
  | Late_median  (** The adopted median was already in this replica's past. *)
  | Delta_d_violation  (** A disk/DMA transfer missed its [virt + Δd] slot. *)

type t =
  | Packet_proposed of {
      vm : int;
      observer : int;  (** Replica at which the proposal was recorded. *)
      proposer : int;
      ingress_seq : int;
      virt_ns : int64;
    }
  | Median_adopted of {
      vm : int;
      replica : int;
      ingress_seq : int;
      virt_ns : int64;
      proposals : (int * int64) list;  (** (proposer, proposed virt). *)
    }
  | Packet_delivered of { vm : int; replica : int; seq : int; virt_ns : int64 }
  | Ingress_replicated of { vm : int; ingress_seq : int; copies : int; size : int }
      (** The ingress stamped an inbound guest packet with [ingress_seq] and
          replicated it toward the VM's [copies] replica VMMs. The root of a
          delivery lineage chain. *)
  | Egress_released of { vm : int; seq : int; rank : int; copies : int }
      (** The egress forwarded the guest packet with sequence [seq] on the
          arrival of its [rank]-th copy (the median output timing) out of
          [copies] voters. *)
  | Divergence of { vm : int; replica : int; kind : divergence_kind }
  | Vm_exit of {
      vm : int;
      replica : int;
      machine : int;
      virt_ns : int64;
      instr : int64;
    }
  | Disk_irq of { vm : int; replica : int; tag : int; virt_ns : int64 }
  | Dma_irq of { vm : int; replica : int; tag : int; virt_ns : int64 }
  | Fault_injected of { fault : string; target : string; span_ns : int64 }
      (** An injected fault window opened ([fault] is the primitive's kind
          tag, [target] a rendered link/machine/replica description). *)
  | Fault_cleared of { fault : string; target : string }
  | Fault_replica_crash of { vm : int; replica : int }
  | Fault_replica_restart of { vm : int; replica : int }
  | Degrade_suspected of { vm : int; replica : int; attempt : int }
      (** The watchdog missed this replica's heartbeats for a timeout window
          ([attempt] counts the bounded retries before ejection). *)
  | Degrade_ejected of { vm : int; replica : int; quorum : int }
      (** The replica was ejected; the group now runs on [quorum] members. *)
  | Degrade_reintegrated of { vm : int; replica : int; quorum : int }
      (** A restarted replica resynced and rejoined; quorum restored. *)
  | Span_begin of { name : string }
  | Span_end of { name : string; elapsed_ns : int64 }
  | Message of { label : string; text : string }
      (** Freeform legacy entry (the [Sw_sim.Trace] shim emits these). *)

(** Short kind tag, e.g. ["proposal"], ["median"], ["vm-exit"]. *)
val label : t -> string

(** The guest VM an event concerns, when it concerns exactly one — [None]
    for fabric-wide and bookkeeping events (fault windows, spans,
    messages). *)
val vm_of : t -> int option

(** The replica an event was recorded at ([observer] for proposals); [None]
    for events that happen off the replicas (ingress, egress, faults,
    spans). *)
val replica_of : t -> int option

(** Adaptive-unit nanosecond printer (["1.500ms"]), for rendering. *)
val pp_ns : Format.formatter -> int64 -> unit

val pp : Format.formatter -> t -> unit
