(** Deterministic JSON rendering of a {!Snapshot}.

    The output is a pure function of the snapshot's contents: metric names
    appear in ascending order, integers print exactly, and floats use the
    shortest representation that round-trips. Two registries that merged to
    equal snapshots therefore serialise byte-identically — the property the
    bench [-j 1] vs [-j N] comparison relies on.

    Schema: a single object mapping each metric path to
    {v
      {"kind":"counter","value":N}
      {"kind":"sum","value":X}
      {"kind":"gauge","value":X}
      {"kind":"histogram","count":N,"total":T,"min":M,"max":M,
       "buckets":[[bound_ns,count],...]}
    v}
    where histogram [buckets] lists only non-empty buckets as
    [[upper bound in ns, count]] pairs in ascending bound order; the
    catch-all bucket's bound prints as [null]. [min]/[max] are [null] when
    [count = 0]. *)

(** Self-description for exported artifacts: which run produced the bytes.
    Every field is optional; absent fields are omitted from the JSON. *)
type meta = {
  seed : int64 option;
  scenario : string option;
  trace_capacity : int option;
  trace_dropped : int option;
      (** Entries the trace ring overwrote — nonzero means the exported
          trace is a suffix of the run ({!Trace.dropped}). *)
  registry_enabled : bool option;
}

val meta :
  ?seed:int64 ->
  ?scenario:string ->
  ?trace_capacity:int ->
  ?trace_dropped:int ->
  ?registry_enabled:bool ->
  unit ->
  meta

(** The meta object alone, rendered canonically (fields in declaration
    order, [None]s omitted) — shared with {!Chrome}'s [otherData]. *)
val meta_json : meta -> string

(** Canonical JSON for one snapshot (no trailing newline). Without [meta]
    the output is the flat metric object documented above; with [meta] it
    becomes [{"meta":{...},"metrics":{<flat object>}}], so artifacts carry
    their seed, scenario and truncation state. *)
val to_json_string : ?meta:meta -> Snapshot.t -> string

(** [float_repr f] is the shortest decimal representation of [f] that parses
    back to the same float ("nan"/"inf" quoted). Exposed so other emitters
    can match this module byte-for-byte. *)
val float_repr : float -> string
