(** Deterministic JSON rendering of a {!Snapshot}.

    The output is a pure function of the snapshot's contents: metric names
    appear in ascending order, integers print exactly, and floats use the
    shortest representation that round-trips. Two registries that merged to
    equal snapshots therefore serialise byte-identically — the property the
    bench [-j 1] vs [-j N] comparison relies on.

    Schema: a single object mapping each metric path to
    {v
      {"kind":"counter","value":N}
      {"kind":"sum","value":X}
      {"kind":"gauge","value":X}
      {"kind":"histogram","count":N,"total":T,"min":M,"max":M,
       "buckets":[[bound_ns,count],...]}
    v}
    where histogram [buckets] lists only non-empty buckets as
    [[upper bound in ns, count]] pairs in ascending bound order; the
    catch-all bucket's bound prints as [null]. [min]/[max] are [null] when
    [count = 0]. *)

(** Canonical JSON for one snapshot (no trailing newline). *)
val to_json_string : Snapshot.t -> string

(** [float_repr f] is the shortest decimal representation of [f] that parses
    back to the same float ("nan"/"inf" quoted). Exposed so other emitters
    can match this module byte-for-byte. *)
val float_repr : float -> string
