(** Wall-clock self-profiling: per-subsystem accumulating timers.

    Where {!Registry} measures the simulated world (counters and histograms
    of simulated nanoseconds), [Profile] measures the simulator itself:
    real time spent in engine dispatch, network delivery, the VMM's median
    machinery, disk completions. Each subsystem obtains a named {!timer}
    at construction and wraps its hot section in {!time}.

    Profiling is {b off} by default and follows the same master-switch
    contract as {!Registry.enabled}: a disabled profile costs one load and
    one branch per wrapped call — no clock read, no accumulation. Because
    the clock is the wall clock ([Unix.gettimeofday]), profile data is
    inherently non-deterministic and must never feed byte-compared exports;
    {!Chrome.to_json} renders it as separate counter tracks, and the
    deterministic golden tests leave profiling disabled. *)

type t

(** One named accumulator: total wall nanoseconds and call count. *)
type timer

(** [create ()] makes a profile, disabled unless [enabled] is [true]. *)
val create : ?enabled:bool -> unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** [timer t name] returns the accumulator registered at [name], creating
    it on first use (names follow the {!Registry} path alphabet
    [A-Za-z0-9._-]). Handles are create-or-return: same name, same cell. *)
val timer : t -> string -> timer

(** [time t tm f] runs [f ()], adding its wall-clock duration to [tm] when
    [t] is enabled; a bare call to [f] otherwise. The duration is recorded
    even when [f] raises. *)
val time : t -> timer -> (unit -> 'a) -> 'a

(** [record_ns tm ns] adds an externally measured duration (one call). *)
val record_ns : timer -> int -> unit

val total_ns : timer -> int
val count : timer -> int

(** All timers as [(name, total_ns, count)], ascending name order. *)
val to_list : t -> (string * int * int) list

(** Zero every accumulator in place (handles stay valid). *)
val reset : t -> unit

val pp : Format.formatter -> t -> unit
