(** Chrome trace-event ("Trace Event Format") export, loadable in
    ui.perfetto.dev or chrome://tracing.

    Track model: each guest VM is a process named ["vm<N>"] with one thread
    per replica (["r<N>"]); ingress/egress share a synthetic ["net"]
    process; fault-schedule events, spans and messages get their own
    processes so they never interleave with guest tracks; {!Profile} timers
    render as counter tracks under ["profile"].

    Protocol steps (proposal, median, delivery, ingress stamp, egress
    release) become thin duration events ([ph:"X"], 1 µs) so flow arrows
    have slices to bind to; other typed events become instants with their
    payloads as [args]. Causal lineage becomes flow arrows ([ph:"s"]/
    [ph:"f"]) — one edge per hop: ingress→own proposal, each recorded
    proposal→median adoption, adoption→delivery — with ids assigned in
    emission order.

    Determinism: timestamps are simulated nanoseconds printed as exact
    microsecond decimals, flow ids are assigned by a deterministic walk of
    the entries, and object fields print in fixed order — so the export is
    a pure function of the trace (plus [profile], which carries wall-clock
    data and must be [None] for byte-compared artifacts). *)

(** [to_json ?meta ?profile entries] renders the entries (in emission
    order, e.g. {!Trace.entries}) as a complete JSON trace object:
    [{"traceEvents":[...],"displayTimeUnit":"ms","otherData":{meta}}].
    [meta] (see {!Export.meta}) lands under [otherData]; [profile] appends
    one cumulative counter sample per timer. *)
val to_json :
  ?meta:Export.meta -> ?profile:Profile.t -> Trace.entry list -> string
