type timer = {
  name : string;
  mutable total_ns : int;
  mutable count : int;
}

type t = {
  mutable enabled : bool;
  timers : (string, timer) Hashtbl.t;
}

let create ?(enabled = false) () = { enabled; timers = Hashtbl.create 8 }
let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let validate_name name =
  if name = "" then invalid_arg "Profile: empty timer name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> ()
      | _ -> invalid_arg ("Profile: invalid timer name: " ^ name))
    name

let timer t name =
  match Hashtbl.find_opt t.timers name with
  | Some tm -> tm
  | None ->
      validate_name name;
      let tm = { name; total_ns = 0; count = 0 } in
      Hashtbl.add t.timers name tm;
      tm

let record_ns tm ns =
  tm.total_ns <- tm.total_ns + ns;
  tm.count <- tm.count + 1

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let time t tm f =
  (* One load and one branch when profiling is off: no clock read, no
     accumulator update. *)
  if not t.enabled then f ()
  else begin
    let t0 = now_ns () in
    let finish v =
      record_ns tm (max 0 (now_ns () - t0));
      v
    in
    match f () with
    | v -> finish v
    | exception e ->
        ignore (finish ());
        raise e
  end

let total_ns tm = tm.total_ns
let count tm = tm.count

let to_list t =
  List.sort
    (fun (a, _, _) (b, _, _) -> String.compare a b)
    (Hashtbl.fold
       (fun name tm acc -> (name, tm.total_ns, tm.count) :: acc)
       t.timers [])

let reset t =
  Hashtbl.iter
    (fun _ tm ->
      tm.total_ns <- 0;
      tm.count <- 0)
    t.timers

let pp fmt t =
  List.iter
    (fun (name, total, count) ->
      let mean = if count = 0 then 0. else float_of_int total /. float_of_int count in
      Format.fprintf fmt "%-24s %10.3f ms over %8d calls (%7.0f ns/call)@."
        name
        (float_of_int total /. 1e6)
        count mean)
    (to_list t)
