type proposal = {
  observer : int;
  proposer : int;
  at_ns : int64;
  virt_ns : int64;
}

type adoption = {
  replica : int;
  at_ns : int64;
  virt_ns : int64;
  proposals : (int * int64) list;
}

type delivery = { replica : int; at_ns : int64; virt_ns : int64 }

type chain = {
  vm : int;
  ingress_seq : int;
  ingress_at_ns : int64 option;
  proposals : proposal list;
  adoptions : adoption list;
  deliveries : delivery list;
}

type orphan_kind = Unadopted_proposal | Unmatched_delivery

type orphan = {
  o_vm : int;
  o_ingress_seq : int;
  o_replica : int;
  kind : orphan_kind;
}

let orphan_kind_label = function
  | Unadopted_proposal -> "unadopted-proposal"
  | Unmatched_delivery -> "unmatched-delivery"

type hist = {
  count : int;
  total_ns : int64;
  min_ns : int64;  (** Meaningless when [count = 0]. *)
  max_ns : int64;  (** Meaningless when [count = 0]. *)
  buckets : (int64 * int) list;
}

let empty_hist =
  {
    count = 0;
    total_ns = 0L;
    min_ns = Int64.max_int;
    max_ns = Int64.min_int;
    buckets = [];
  }

let hist_of_lags lags =
  let counts = Array.make Buckets.count 0 in
  let h =
    List.fold_left
      (fun h v ->
        let i = Buckets.index v in
        counts.(i) <- counts.(i) + 1;
        {
          h with
          count = h.count + 1;
          total_ns = Int64.add h.total_ns v;
          min_ns = (if Int64.compare v h.min_ns < 0 then v else h.min_ns);
          max_ns = (if Int64.compare v h.max_ns > 0 then v else h.max_ns);
        })
      empty_hist lags
  in
  let buckets = ref [] in
  for i = Buckets.count - 1 downto 0 do
    if counts.(i) > 0 then buckets := (Buckets.bound i, counts.(i)) :: !buckets
  done;
  { h with buckets = !buckets }

let hist_mean_ns h =
  if h.count = 0 then 0. else Int64.to_float h.total_ns /. float_of_int h.count

type mechanism =
  | Median_adoption
  | Delivery_gap
  | Egress_release
  | Ingress_latency

let mechanism_label = function
  | Median_adoption -> "median-adoption"
  | Delivery_gap -> "delivery-gap"
  | Egress_release -> "egress-release"
  | Ingress_latency -> "ingress-latency"

let ms_of_ns v = Int64.to_float v /. 1e6

(* --- Reconstruction ----------------------------------------------------- *)

type builder = {
  b_vm : int;
  b_seq : int;
  mutable b_ingress : int64 option;
  mutable b_proposals : proposal list;  (** reversed *)
  mutable b_adoptions : adoption list;  (** reversed *)
  mutable b_deliveries : delivery list;  (** reversed *)
}

type t = {
  chains : chain list;
  orphans : orphan list;
  total : int;
  complete : int;
  in_flight : int;
  propose_to_adopt : hist;
  adopt_to_deliver : hist;
  median_credits : (int * float) list;
  skew_series : (int64 * int64) list;
  negative_lags : int;
  dropped : int;
  pa_ms_by_vm : (int * float array) list;
  egress_gap_ms_by_vm : (int * float array) list;
}

let of_entries ?(dropped = 0) entries =
  let builders : (int * int, builder) Hashtbl.t = Hashtbl.create 256 in
  let builder vm seq =
    match Hashtbl.find_opt builders (vm, seq) with
    | Some b -> b
    | None ->
        let b =
          {
            b_vm = vm;
            b_seq = seq;
            b_ingress = None;
            b_proposals = [];
            b_adoptions = [];
            b_deliveries = [];
          }
        in
        Hashtbl.add builders (vm, seq) b;
        b
  in
  (* Per-VM accumulators outside the chain structure: egress release
     instants (which have no ingress_seq) and propose->adopt lags. *)
  let egress_at : (int, int64 list ref) Hashtbl.t = Hashtbl.create 8 in
  let pa_vm : (int, int64 list ref) Hashtbl.t = Hashtbl.create 8 in
  let vm_push tbl vm v =
    let cell =
      match Hashtbl.find_opt tbl vm with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add tbl vm c;
          c
    in
    cell := v :: !cell
  in
  List.iter
    (fun (e : Trace.entry) ->
      let at_ns = e.Trace.at_ns in
      match e.Trace.event with
      | Event.Ingress_replicated { vm; ingress_seq; _ } ->
          let b = builder vm ingress_seq in
          if b.b_ingress = None then b.b_ingress <- Some at_ns
      | Event.Packet_proposed { vm; observer; proposer; ingress_seq; virt_ns }
        ->
          let b = builder vm ingress_seq in
          b.b_proposals <-
            { observer; proposer; at_ns; virt_ns } :: b.b_proposals
      | Event.Median_adopted { vm; replica; ingress_seq; virt_ns; proposals }
        ->
          let b = builder vm ingress_seq in
          b.b_adoptions <-
            { replica; at_ns; virt_ns; proposals } :: b.b_adoptions
      | Event.Packet_delivered { vm; replica; seq; virt_ns } ->
          let b = builder vm seq in
          b.b_deliveries <- { replica; at_ns; virt_ns } :: b.b_deliveries
      | Event.Egress_released { vm; _ } -> vm_push egress_at vm at_ns
      | _ -> ())
    entries;
  let chains =
    List.sort
      (fun a b -> compare (a.vm, a.ingress_seq) (b.vm, b.ingress_seq))
      (Hashtbl.fold
         (fun _ b acc ->
           {
             vm = b.b_vm;
             ingress_seq = b.b_seq;
             ingress_at_ns = b.b_ingress;
             proposals = List.rev b.b_proposals;
             adoptions = List.rev b.b_adoptions;
             deliveries = List.rev b.b_deliveries;
           }
           :: acc)
         builders [])
  in
  (* Fold every chain once for orphans, lags, credits and skew. *)
  let orphans = ref [] in
  let complete = ref 0 in
  let in_flight = ref 0 in
  let pa_lags = ref [] in
  let ad_lags = ref [] in
  let negative = ref 0 in
  let credits : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
  let skew = ref [] in
  let lag_push acc a b =
    let d = Int64.sub b a in
    if Int64.compare d 0L < 0 then incr negative else acc := d :: !acc
  in
  List.iter
    (fun c ->
      let replicas_of f l =
        List.sort_uniq compare (List.filter_map f l)
      in
      let observers =
        replicas_of (fun (p : proposal) -> Some p.observer) c.proposals
      in
      let adopters =
        replicas_of (fun (a : adoption) -> Some a.replica) c.adoptions
      in
      let deliverers =
        replicas_of (fun (d : delivery) -> Some d.replica) c.deliveries
      in
      if c.adoptions <> [] && c.deliveries <> [] then incr complete
      else if c.adoptions <> [] && c.deliveries = [] then incr in_flight;
      let orphan replica kind =
        orphans :=
          { o_vm = c.vm; o_ingress_seq = c.ingress_seq; o_replica = replica; kind }
          :: !orphans
      in
      List.iter
        (fun r -> if not (List.mem r adopters) then orphan r Unadopted_proposal)
        observers;
      List.iter
        (fun r ->
          if not (List.mem r adopters) then orphan r Unmatched_delivery)
        deliverers;
      (* propose -> adopt lag, anchored at the replica's own proposal (its
         first observed one when the own proposal fell out of the ring). *)
      List.iter
        (fun (a : adoption) ->
          let anchor =
            match
              List.find_opt
                (fun (p : proposal) ->
                  p.observer = a.replica && p.proposer = a.replica)
                c.proposals
            with
            | Some p -> Some p.at_ns
            | None -> (
                match
                  List.find_opt
                    (fun (p : proposal) -> p.observer = a.replica)
                    c.proposals
                with
                | Some p -> Some p.at_ns
                | None -> None)
          in
          (match anchor with
          | Some t0 ->
              let d = Int64.sub a.at_ns t0 in
              if Int64.compare d 0L < 0 then incr negative
              else begin
                pa_lags := d :: !pa_lags;
                vm_push pa_vm c.vm d
              end
          | None -> ());
          (* Median-win credit, ties split evenly — the marginalisation view
             of Sec. IX, recomputed from the trace alone. *)
          let winners =
            List.filter (fun (_, v) -> Int64.equal v a.virt_ns) a.proposals
          in
          let share =
            match winners with
            | [] -> 0.
            | ws -> 1. /. float_of_int (List.length ws)
          in
          List.iter
            (fun (who, _) ->
              let cell =
                match Hashtbl.find_opt credits who with
                | Some c -> c
                | None ->
                    let c = ref 0. in
                    Hashtbl.add credits who c;
                    c
              in
              cell := !cell +. share)
            winners)
        c.adoptions;
      (* adopt -> deliver lag, per replica. *)
      List.iter
        (fun (d : delivery) ->
          match
            List.find_opt (fun (a : adoption) -> a.replica = d.replica) c.adoptions
          with
          | Some a -> lag_push ad_lags a.at_ns d.at_ns
          | None -> ())
        c.deliveries;
      (* One skew point per chain: the spread of the proposal virtual times
         the first adoption saw, stamped with that adoption's instant. *)
      match c.adoptions with
      | ({ proposals = (_, v0) :: rest; at_ns; _ } : adoption) :: _ ->
          let lo, hi =
            List.fold_left
              (fun (lo, hi) (_, v) ->
                ( (if Int64.compare v lo < 0 then v else lo),
                  if Int64.compare v hi > 0 then v else hi ))
              (v0, v0) rest
          in
          skew := (at_ns, Int64.sub hi lo) :: !skew
      | _ -> ())
    chains;
  let orphans =
    List.sort
      (fun a b ->
        compare
          (a.o_vm, a.o_ingress_seq, a.o_replica, a.kind)
          (b.o_vm, b.o_ingress_seq, b.o_replica, b.kind))
      !orphans
  in
  {
    chains;
    orphans;
    total = List.length chains;
    complete = !complete;
    in_flight = !in_flight;
    propose_to_adopt = hist_of_lags !pa_lags;
    adopt_to_deliver = hist_of_lags !ad_lags;
    median_credits =
      List.sort compare
        (Hashtbl.fold (fun who c acc -> (who, !c) :: acc) credits []);
    skew_series = List.rev !skew;
    negative_lags = !negative;
    dropped;
    pa_ms_by_vm =
      (let acc =
         Hashtbl.fold
           (fun vm cell acc ->
             (vm, Array.of_list (List.rev_map ms_of_ns !cell)) :: acc)
           pa_vm []
       in
       List.sort compare acc);
    egress_gap_ms_by_vm =
      (let gaps l =
         let rec walk acc = function
           | a :: (b :: _ as rest) -> walk (ms_of_ns (Int64.sub b a) :: acc) rest
           | _ -> List.rev acc
         in
         Array.of_list (walk [] l)
       in
       let acc =
         Hashtbl.fold
           (fun vm cell acc -> (vm, gaps (List.rev !cell)) :: acc)
           egress_at []
       in
       List.sort compare acc);
  }

let of_trace tr = of_entries ~dropped:(Trace.dropped tr) (Trace.entries tr)

let chains t = t.chains
let orphans t = t.orphans
let total t = t.total
let complete t = t.complete
let in_flight t = t.in_flight
let propose_to_adopt t = t.propose_to_adopt
let adopt_to_deliver t = t.adopt_to_deliver
let negative_lags t = t.negative_lags
let skew_series t = t.skew_series
let dropped t = t.dropped

let mechanism_rank = function
  | Median_adoption -> 0
  | Delivery_gap -> 1
  | Egress_release -> 2
  | Ingress_latency -> 3

let observations t =
  (* Delivery gaps: per VM, successive differences of each chain's first
     delivery virtual time, in ingress order (chains are already sorted by
     (vm, ingress_seq)). This is the inter-delivery series the co-resident
     observer measures, rebuilt from the trace. *)
  let delivery_gaps =
    let by_vm : (int, float list ref) Hashtbl.t = Hashtbl.create 8 in
    let last : (int, int64) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun c ->
        match c.deliveries with
        | [] -> ()
        | { virt_ns; _ } :: _ ->
            (match Hashtbl.find_opt last c.vm with
            | Some prev ->
                let cell =
                  match Hashtbl.find_opt by_vm c.vm with
                  | Some l -> l
                  | None ->
                      let l = ref [] in
                      Hashtbl.add by_vm c.vm l;
                      l
                in
                cell := ms_of_ns (Int64.sub virt_ns prev) :: !cell
            | None -> ());
            Hashtbl.replace last c.vm virt_ns)
      t.chains;
    Hashtbl.fold
      (fun vm cell acc -> (vm, Array.of_list (List.rev !cell)) :: acc)
      by_vm []
  in
  (* Ingress latency: per VM, ingress stamp to first delivery (virtual
     delivery instant), one sample per chain that carries both ends. The
     pinger side of the probe knows its own send times, so this series is
     observable by the attack apparatus even though the ingress stamp is
     not guest-visible. *)
  let ingress_latency =
    let by_vm : (int, float list ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun c ->
        match (c.ingress_at_ns, c.deliveries) with
        | Some t0, { virt_ns; _ } :: _ ->
            let cell =
              match Hashtbl.find_opt by_vm c.vm with
              | Some l -> l
              | None ->
                  let l = ref [] in
                  Hashtbl.add by_vm c.vm l;
                  l
            in
            cell := ms_of_ns (Int64.sub virt_ns t0) :: !cell
        | _ -> ())
      t.chains;
    Hashtbl.fold
      (fun vm cell acc -> (vm, Array.of_list (List.rev !cell)) :: acc)
      by_vm []
  in
  let tag m series =
    List.filter_map
      (fun (vm, xs) -> if Array.length xs = 0 then None else Some ((vm, m), xs))
      series
  in
  let all =
    tag Median_adoption t.pa_ms_by_vm
    @ tag Delivery_gap delivery_gaps
    @ tag Egress_release t.egress_gap_ms_by_vm
    @ tag Ingress_latency ingress_latency
  in
  List.sort
    (fun ((va, ma), _) ((vb, mb), _) ->
      compare (va, mechanism_rank ma) (vb, mechanism_rank mb))
    all

let median_wins t =
  let total = List.fold_left (fun acc (_, c) -> acc +. c) 0. t.median_credits in
  List.map
    (fun (who, c) -> (who, if total = 0. then 0. else c /. total))
    t.median_credits

let pp_hist fmt name h =
  if h.count = 0 then Format.fprintf fmt "  %-16s (no samples)@." name
  else
    Format.fprintf fmt "  %-16s n=%-6d mean=%a  min=%a  max=%a@." name h.count
      Event.pp_ns
      (Int64.of_float (hist_mean_ns h))
      Event.pp_ns h.min_ns Event.pp_ns h.max_ns

let pp_summary fmt t =
  Format.fprintf fmt
    "lineage: %d chains (%d complete, %d in flight at end of trace), %d orphans@."
    t.total t.complete t.in_flight
    (List.length t.orphans);
  if t.dropped > 0 then
    Format.fprintf fmt
      "  WARNING: trace ring dropped %d entries; the trace is a suffix of \
       the run and early chains may appear orphaned@."
      t.dropped;
  pp_hist fmt "propose->adopt" t.propose_to_adopt;
  pp_hist fmt "adopt->deliver" t.adopt_to_deliver;
  if t.negative_lags > 0 then
    Format.fprintf fmt "  NEGATIVE LAGS: %d (protocol bug: effect before cause)@."
      t.negative_lags;
  (match median_wins t with
  | [] -> ()
  | wins ->
      Format.fprintf fmt "  median wins:     %s@."
        (String.concat "  "
           (List.map
              (fun (who, share) -> Printf.sprintf "r%d %.1f%%" who (100. *. share))
              wins)));
  (match t.skew_series with
  | [] -> ()
  | series ->
      let n = List.length series in
      let sum =
        List.fold_left (fun acc (_, s) -> Int64.add acc s) 0L series
      in
      let max_skew =
        List.fold_left
          (fun acc (_, s) -> if Int64.compare s acc > 0 then s else acc)
          0L series
      in
      Format.fprintf fmt "  proposal skew:   mean=%a  max=%a  (%d points)@."
        Event.pp_ns
        (Int64.div sum (Int64.of_int n))
        Event.pp_ns max_skew n);
  List.iteri
    (fun i o ->
      if i < 12 then
        Format.fprintf fmt "  orphan: vm%d pkt #%d at r%d — %s@." o.o_vm
          o.o_ingress_seq o.o_replica (orphan_kind_label o.kind)
      else if i = 12 then
        Format.fprintf fmt "  ... %d more orphans@." (List.length t.orphans - 12))
    t.orphans
