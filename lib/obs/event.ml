type divergence_kind = Late_median | Delta_d_violation

type t =
  | Packet_proposed of {
      vm : int;
      observer : int;
      proposer : int;
      ingress_seq : int;
      virt_ns : int64;
    }
  | Median_adopted of {
      vm : int;
      replica : int;
      ingress_seq : int;
      virt_ns : int64;
      proposals : (int * int64) list;
    }
  | Packet_delivered of { vm : int; replica : int; seq : int; virt_ns : int64 }
  | Ingress_replicated of { vm : int; ingress_seq : int; copies : int; size : int }
  | Egress_released of { vm : int; seq : int; rank : int; copies : int }
  | Divergence of { vm : int; replica : int; kind : divergence_kind }
  | Vm_exit of {
      vm : int;
      replica : int;
      machine : int;
      virt_ns : int64;
      instr : int64;
    }
  | Disk_irq of { vm : int; replica : int; tag : int; virt_ns : int64 }
  | Dma_irq of { vm : int; replica : int; tag : int; virt_ns : int64 }
  | Fault_injected of { fault : string; target : string; span_ns : int64 }
  | Fault_cleared of { fault : string; target : string }
  | Fault_replica_crash of { vm : int; replica : int }
  | Fault_replica_restart of { vm : int; replica : int }
  | Degrade_suspected of { vm : int; replica : int; attempt : int }
  | Degrade_ejected of { vm : int; replica : int; quorum : int }
  | Degrade_reintegrated of { vm : int; replica : int; quorum : int }
  | Span_begin of { name : string }
  | Span_end of { name : string; elapsed_ns : int64 }
  | Message of { label : string; text : string }

let label = function
  | Packet_proposed _ -> "proposal"
  | Median_adopted _ -> "median"
  | Packet_delivered _ -> "deliver"
  | Ingress_replicated _ -> "ingress-rep"
  | Egress_released _ -> "egress-release"
  | Divergence _ -> "divergence"
  | Vm_exit _ -> "vm-exit"
  | Disk_irq _ -> "disk-irq"
  | Dma_irq _ -> "dma-irq"
  | Fault_injected _ -> "fault-inject"
  | Fault_cleared _ -> "fault-clear"
  | Fault_replica_crash _ -> "fault-crash"
  | Fault_replica_restart _ -> "fault-restart"
  | Degrade_suspected _ -> "degrade-suspect"
  | Degrade_ejected _ -> "degrade-eject"
  | Degrade_reintegrated _ -> "degrade-reintegrate"
  | Span_begin _ -> "span-begin"
  | Span_end _ -> "span-end"
  | Message _ -> "message"

let vm_of = function
  | Packet_proposed { vm; _ }
  | Median_adopted { vm; _ }
  | Packet_delivered { vm; _ }
  | Ingress_replicated { vm; _ }
  | Egress_released { vm; _ }
  | Divergence { vm; _ }
  | Vm_exit { vm; _ }
  | Disk_irq { vm; _ }
  | Dma_irq { vm; _ }
  | Fault_replica_crash { vm; _ }
  | Fault_replica_restart { vm; _ }
  | Degrade_suspected { vm; _ }
  | Degrade_ejected { vm; _ }
  | Degrade_reintegrated { vm; _ } ->
      Some vm
  | Fault_injected _ | Fault_cleared _ | Span_begin _ | Span_end _ | Message _
    ->
      None

let replica_of = function
  | Packet_proposed { observer; _ } -> Some observer
  | Median_adopted { replica; _ }
  | Packet_delivered { replica; _ }
  | Divergence { replica; _ }
  | Vm_exit { replica; _ }
  | Disk_irq { replica; _ }
  | Dma_irq { replica; _ }
  | Fault_replica_crash { replica; _ }
  | Fault_replica_restart { replica; _ }
  | Degrade_suspected { replica; _ }
  | Degrade_ejected { replica; _ }
  | Degrade_reintegrated { replica; _ } ->
      Some replica
  | Ingress_replicated _ | Egress_released _ | Fault_injected _
  | Fault_cleared _ | Span_begin _ | Span_end _ | Message _ ->
      None

let pp_ns fmt t =
  let f = Int64.to_float t in
  let af = Float.abs f in
  if af < 1e3 then Format.fprintf fmt "%Ldns" t
  else if af < 1e6 then Format.fprintf fmt "%.3fus" (f /. 1e3)
  else if af < 1e9 then Format.fprintf fmt "%.3fms" (f /. 1e6)
  else Format.fprintf fmt "%.3fs" (f /. 1e9)

let pp fmt = function
  | Packet_proposed { vm; observer; proposer; ingress_seq; virt_ns } ->
      if observer = proposer then
        Format.fprintf fmt "vm%d/r%d proposes virt=%a for pkt #%d" vm proposer
          pp_ns virt_ns ingress_seq
      else
        Format.fprintf fmt "vm%d/r%d records r%d's proposal virt=%a for pkt #%d"
          vm observer proposer pp_ns virt_ns ingress_seq
  | Median_adopted { vm; replica; ingress_seq; virt_ns; proposals } ->
      Format.fprintf fmt "vm%d/r%d adopts median virt=%a for pkt #%d (%s)" vm
        replica pp_ns virt_ns ingress_seq
        (String.concat ", "
           (List.map
              (fun (r, v) -> Format.asprintf "r%d:%a" r pp_ns v)
              (List.sort Stdlib.compare proposals)))
  | Packet_delivered { vm; replica; seq; virt_ns } ->
      Format.fprintf fmt "vm%d/r%d delivers pkt #%d to guest at virt=%a" vm
        replica seq pp_ns virt_ns
  | Ingress_replicated { vm; ingress_seq; copies; size } ->
      Format.fprintf fmt "ingress replicates pkt #%d (%d B) for vm%d to %d VMMs"
        ingress_seq size vm copies
  | Egress_released { vm; seq; rank; copies } ->
      Format.fprintf fmt
        "egress releases vm%d pkt #%d on copy %d of %d (median output timing)"
        vm seq rank copies
  | Divergence { vm; replica; kind } ->
      Format.fprintf fmt "vm%d/r%d diverged (%s)" vm replica
        (match kind with
        | Late_median -> "median in the past"
        | Delta_d_violation -> "delta_d violation")
  | Vm_exit { vm; replica; machine; virt_ns; instr } ->
      Format.fprintf fmt "vm%d/r%d@m%d exit at virt=%a instr=%Ld" vm replica
        machine pp_ns virt_ns instr
  | Disk_irq { vm; replica; tag; virt_ns } ->
      Format.fprintf fmt "vm%d/r%d disk irq tag=%d at virt=%a" vm replica tag
        pp_ns virt_ns
  | Dma_irq { vm; replica; tag; virt_ns } ->
      Format.fprintf fmt "vm%d/r%d dma irq tag=%d at virt=%a" vm replica tag
        pp_ns virt_ns
  | Fault_injected { fault; target; span_ns } ->
      Format.fprintf fmt "fault %s injected at %s for %a" fault target pp_ns
        span_ns
  | Fault_cleared { fault; target } ->
      Format.fprintf fmt "fault %s cleared at %s" fault target
  | Fault_replica_crash { vm; replica } ->
      Format.fprintf fmt "vm%d/r%d crashed" vm replica
  | Fault_replica_restart { vm; replica } ->
      Format.fprintf fmt "vm%d/r%d restarted" vm replica
  | Degrade_suspected { vm; replica; attempt } ->
      Format.fprintf fmt "vm%d/r%d suspected dead (attempt %d)" vm replica
        attempt
  | Degrade_ejected { vm; replica; quorum } ->
      Format.fprintf fmt "vm%d/r%d ejected; group degrades to quorum %d" vm
        replica quorum
  | Degrade_reintegrated { vm; replica; quorum } ->
      Format.fprintf fmt "vm%d/r%d reintegrated; group back to quorum %d" vm
        replica quorum
  | Span_begin { name } -> Format.fprintf fmt "span %s begins" name
  | Span_end { name; elapsed_ns } ->
      Format.fprintf fmt "span %s ends after %a" name pp_ns elapsed_ns
  | Message { label; text } -> Format.fprintf fmt "%-18s %s" label text
