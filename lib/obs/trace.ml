type entry = { at_ns : int64; event : Event.t }

type t = {
  capacity : int;
  buffer : entry option array;
  mutable next : int;
  mutable count : int;
  mutable enabled : bool;
  mutable dropped : int;
  m_dropped : Registry.Counter.t option;
}

let create ?(capacity = 65536) ?metrics () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    capacity;
    buffer = Array.make capacity None;
    next = 0;
    count = 0;
    enabled = false;
    dropped = 0;
    m_dropped = Option.map (fun r -> Registry.counter r "trace.dropped") metrics;
  }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let enabled t = t.enabled
let active = function Some t -> t.enabled | None -> false

let emit t ~at_ns event =
  if t.enabled then begin
    if t.count = t.capacity then begin
      (* The ring overwrites its oldest entry; count the loss so a truncated
         trace is never mistaken for a complete one. *)
      t.dropped <- t.dropped + 1;
      match t.m_dropped with
      | Some c -> Registry.Counter.incr c
      | None -> ()
    end;
    t.buffer.(t.next) <- Some { at_ns; event };
    t.next <- (t.next + 1) mod t.capacity;
    if t.count < t.capacity then t.count <- t.count + 1
  end

let iter t f =
  let start = if t.count < t.capacity then 0 else t.next in
  for i = 0 to t.count - 1 do
    match t.buffer.((start + i) mod t.capacity) with
    | None -> ()
    | Some e -> f e
  done

let fold f acc t =
  let r = ref acc in
  iter t (fun e -> r := f !r e);
  !r

let entries t = List.rev (fold (fun acc e -> e :: acc) [] t)

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.next <- 0;
  t.count <- 0;
  t.dropped <- 0;
  (* Keep the registry mirror in lockstep with the ring counter: a cleared
     ring that leaves the mirror standing makes post-restore lineage
     reconstruction report drops that never reached the surviving ring. *)
  match t.m_dropped with
  | Some c -> Registry.Counter.reset c
  | None -> ()

let length t = t.count
let capacity t = t.capacity
let dropped t = t.dropped

let span t ~now ~name f =
  if not t.enabled then f ()
  else begin
    let start = now () in
    emit t ~at_ns:start (Event.Span_begin { name });
    let finish result =
      let stop = now () in
      emit t ~at_ns:stop
        (Event.Span_end { name; elapsed_ns = Int64.sub stop start });
      result
    in
    match f () with
    | v -> finish v
    | exception e ->
        ignore (finish ());
        raise e
  end

let pp_entry fmt e =
  Format.fprintf fmt "[%a] %-10s %a" Event.pp_ns e.at_ns
    (Event.label e.event) Event.pp e.event
