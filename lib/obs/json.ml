type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Error of string

type state = { src : string; mutable pos : int }

(* Line/column of the failure point, computed only on the error path (the
   happy path never pays for position tracking). Both are 1-based. *)
let position src pos =
  let line = ref 1 and bol = ref 0 in
  for i = 0 to Stdlib.min pos (String.length src) - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, pos - !bol + 1)

let fail st msg =
  let line, col = position st.src st.pos in
  raise
    (Error
       (Printf.sprintf "%s at line %d, column %d (offset %d)" msg line col
          st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected '%s'" word)

let parse_string_body st =
  (* Called with pos just past the opening quote. *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  fail st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail st "bad \\u escape"
                in
                st.pos <- st.pos + 4;
                (* Keep it simple: encode the code point as UTF-8; surrogate
                   pairs in test artifacts are out of scope, stored raw. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | _ -> fail st "bad escape");
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Number f
  | None -> fail st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Object []
      end
      else begin
        let members = ref [] in
        let rec member () =
          skip_ws st;
          expect st '"';
          let key = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          members := (key, v) :: !members;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              member ()
          | Some '}' -> advance st
          | _ -> fail st "expected ',' or '}'"
        in
        member ();
        Object (List.rev !members)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Array []
      end
      else begin
        let items = ref [] in
        let rec item () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              item ()
          | Some ']' -> advance st
          | _ -> fail st "expected ',' or ']'"
        in
        item ();
        Array (List.rev !items)
      end
  | Some '"' ->
      advance st;
      String (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let parse s =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Error msg -> Error msg

let member name = function
  | Object fields -> List.assoc_opt name fields
  | _ -> None

let to_list = function Array items -> Some items | _ -> None
let as_string = function String s -> Some s | _ -> None
let to_number = function Number f -> Some f | _ -> None

(* --- Writer ------------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips, so serialisation is a
       function of the float's bits alone (same discipline as
       [Sw_runner.Report]). *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Number f -> Buffer.add_string buf (number_repr f)
  | String s -> escape buf s
  | Array items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Object fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  emit buf json;
  Buffer.contents buf
