type histogram = {
  count : int;
  total : int64;
  min : int64;
  max : int64;
  buckets : (int * int) list;
}

type data =
  | Counter of int
  | Sum of float
  | Gauge of float
  | Histogram of histogram

type t = (string * data) list (* sorted by name, unique *)

let empty = []

let of_list entries =
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) entries
  in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg ("Snapshot.of_list: duplicate metric " ^ a);
        check rest
    | _ -> ()
  in
  check sorted;
  sorted

let to_list t = t
let is_empty t = t = []
let find t name = List.assoc_opt name t

let counter t name =
  match find t name with
  | None -> 0
  | Some (Counter v) -> v
  | Some _ -> invalid_arg ("Snapshot.counter: " ^ name ^ " is not a counter")

let sum t name =
  match find t name with
  | None -> 0.
  | Some (Sum v) -> v
  | Some _ -> invalid_arg ("Snapshot.sum: " ^ name ^ " is not a sum")

let gauge t name =
  match find t name with
  | None -> 0.
  | Some (Gauge v) -> v
  | Some _ -> invalid_arg ("Snapshot.gauge: " ^ name ^ " is not a gauge")

let histogram t name =
  match find t name with
  | None -> None
  | Some (Histogram h) -> Some h
  | Some _ -> invalid_arg ("Snapshot.histogram: " ^ name ^ " is not a histogram")

let merge_buckets a b =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (ia, ca) :: ta, (ib, cb) :: tb ->
        if ia = ib then (ia, ca + cb) :: go ta tb
        else if ia < ib then (ia, ca) :: go ta b
        else (ib, cb) :: go a tb
  in
  go a b

let merge_histogram a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else
    {
      count = a.count + b.count;
      total = Int64.add a.total b.total;
      min = (if Int64.compare a.min b.min <= 0 then a.min else b.min);
      max = (if Int64.compare a.max b.max >= 0 then a.max else b.max);
      buckets = merge_buckets a.buckets b.buckets;
    }

let merge_data name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Sum x, Sum y -> Sum (x +. y)
  | Gauge x, Gauge y -> Gauge (Float.max x y)
  | Histogram x, Histogram y -> Histogram (merge_histogram x y)
  | _ -> invalid_arg ("Snapshot.merge: metric kind mismatch at " ^ name)

(* Sorted-list merge-join: names on one side pass through, shared names
   combine. *)
let merge a b =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (na, da) :: ta, (nb, db) :: tb ->
        let c = String.compare na nb in
        if c = 0 then (na, merge_data na da db) :: go ta tb
        else if c < 0 then (na, da) :: go ta b
        else (nb, db) :: go a tb
  in
  go a b

let merge_all = List.fold_left merge empty
let filter t ~f = List.filter (fun (name, _) -> f name) t

let pp_data fmt = function
  | Counter v -> Format.fprintf fmt "%d" v
  | Sum v -> Format.fprintf fmt "%g" v
  | Gauge v -> Format.fprintf fmt "%g (gauge)" v
  | Histogram h ->
      if h.count = 0 then Format.fprintf fmt "histogram n=0"
      else
        Format.fprintf fmt "histogram n=%d total=%Ldns min=%Ldns max=%Ldns"
          h.count h.total h.min h.max

let pp fmt t =
  List.iter
    (fun (name, data) -> Format.fprintf fmt "%-48s %a@." name pp_data data)
    t
