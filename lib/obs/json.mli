(** Minimal recursive-descent JSON reader and writer.

    Exists so exported artifacts ({!Export}, {!Chrome}) can be structurally
    validated — by tests and the CLI's [--smoke] mode — and so declarative
    scenario files ([.scn], see [Sw_workload.Dsl]) can be read and
    round-tripped without an external JSON dependency. It parses the full
    value grammar (numbers land in one [float]; [\u] escapes outside the BMP
    are out of scope) and offers just enough accessors to walk a parsed
    tree. Not a general-purpose codec. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

(** [parse s] parses exactly one JSON value spanning all of [s]
    (surrounding whitespace allowed); [Error msg] carries the 1-based line
    and column — and the byte offset — of the failure, e.g.
    ["expected ',' or '}' at line 3, column 7 (offset 41)"]. *)
val parse : string -> (t, string) result

(** [member name v] is field [name] when [v] is an object containing it. *)
val member : string -> t -> t option

val to_list : t -> t list option
val as_string : t -> string option
val to_number : t -> float option

(** [to_string v] serialises [v] compactly (single line). Deterministic:
    equal values always produce equal bytes — integral numbers print
    without a fractional part, everything else as the shortest
    representation that round-trips — so parse/print/parse is the identity
    on trees this module produced. *)
val to_string : t -> string
