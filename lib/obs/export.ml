let float_repr f =
  if Float.is_nan f then "\"nan\""
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else
    (* Shortest representation that round-trips, so serialisation is a
       function of the float's bits alone. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let emit_data buf (data : Snapshot.data) =
  match data with
  | Snapshot.Counter v ->
      Buffer.add_string buf "{\"kind\":\"counter\",\"value\":";
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf '}'
  | Snapshot.Sum v ->
      Buffer.add_string buf "{\"kind\":\"sum\",\"value\":";
      Buffer.add_string buf (float_repr v);
      Buffer.add_char buf '}'
  | Snapshot.Gauge v ->
      Buffer.add_string buf "{\"kind\":\"gauge\",\"value\":";
      Buffer.add_string buf (float_repr v);
      Buffer.add_char buf '}'
  | Snapshot.Histogram h ->
      Buffer.add_string buf "{\"kind\":\"histogram\",\"count\":";
      Buffer.add_string buf (string_of_int h.Snapshot.count);
      Buffer.add_string buf ",\"total\":";
      Buffer.add_string buf (Int64.to_string h.Snapshot.total);
      let bound name v =
        Buffer.add_string buf (Printf.sprintf ",%S:" name);
        if h.Snapshot.count = 0 then Buffer.add_string buf "null"
        else Buffer.add_string buf (Int64.to_string v)
      in
      bound "min" h.Snapshot.min;
      bound "max" h.Snapshot.max;
      Buffer.add_string buf ",\"buckets\":[";
      List.iteri
        (fun i (idx, n) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '[';
          let b = Buckets.bound idx in
          if Int64.equal b Int64.max_int then Buffer.add_string buf "null"
          else Buffer.add_string buf (Int64.to_string b);
          Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int n);
          Buffer.add_char buf ']')
        h.Snapshot.buckets;
      Buffer.add_string buf "]}"

type meta = {
  seed : int64 option;
  scenario : string option;
  trace_capacity : int option;
  trace_dropped : int option;
  registry_enabled : bool option;
}

let meta ?seed ?scenario ?trace_capacity ?trace_dropped ?registry_enabled () =
  { seed; scenario; trace_capacity; trace_dropped; registry_enabled }

let emit_meta buf m =
  let first = ref true in
  let field name emit_value =
    if !first then first := false else Buffer.add_char buf ',';
    escape buf name;
    Buffer.add_char buf ':';
    emit_value ()
  in
  Buffer.add_char buf '{';
  (match m.seed with
  | Some s -> field "seed" (fun () -> Buffer.add_string buf (Int64.to_string s))
  | None -> ());
  (match m.scenario with
  | Some s -> field "scenario" (fun () -> escape buf s)
  | None -> ());
  (match m.trace_capacity with
  | Some c ->
      field "trace_capacity" (fun () -> Buffer.add_string buf (string_of_int c))
  | None -> ());
  (match m.trace_dropped with
  | Some d ->
      field "trace_dropped" (fun () -> Buffer.add_string buf (string_of_int d))
  | None -> ());
  (match m.registry_enabled with
  | Some b ->
      field "registry_enabled" (fun () ->
          Buffer.add_string buf (if b then "true" else "false"))
  | None -> ());
  Buffer.add_char buf '}'

let meta_json m =
  let buf = Buffer.create 128 in
  emit_meta buf m;
  Buffer.contents buf

let emit_snapshot buf snapshot =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, data) ->
      if i > 0 then Buffer.add_char buf ',';
      escape buf name;
      Buffer.add_char buf ':';
      emit_data buf data)
    (Snapshot.to_list snapshot);
  Buffer.add_char buf '}'

let to_json_string ?meta snapshot =
  let buf = Buffer.create 1024 in
  (match meta with
  | None -> emit_snapshot buf snapshot
  | Some m ->
      (* Self-describing form: the metric object moves under "metrics" and
         the run's identity rides along. *)
      Buffer.add_string buf "{\"meta\":";
      emit_meta buf m;
      Buffer.add_string buf ",\"metrics\":";
      emit_snapshot buf snapshot;
      Buffer.add_char buf '}');
  Buffer.contents buf
