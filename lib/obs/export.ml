let float_repr f =
  if Float.is_nan f then "\"nan\""
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else
    (* Shortest representation that round-trips, so serialisation is a
       function of the float's bits alone. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let emit_data buf (data : Snapshot.data) =
  match data with
  | Snapshot.Counter v ->
      Buffer.add_string buf "{\"kind\":\"counter\",\"value\":";
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf '}'
  | Snapshot.Sum v ->
      Buffer.add_string buf "{\"kind\":\"sum\",\"value\":";
      Buffer.add_string buf (float_repr v);
      Buffer.add_char buf '}'
  | Snapshot.Gauge v ->
      Buffer.add_string buf "{\"kind\":\"gauge\",\"value\":";
      Buffer.add_string buf (float_repr v);
      Buffer.add_char buf '}'
  | Snapshot.Histogram h ->
      Buffer.add_string buf "{\"kind\":\"histogram\",\"count\":";
      Buffer.add_string buf (string_of_int h.Snapshot.count);
      Buffer.add_string buf ",\"total\":";
      Buffer.add_string buf (Int64.to_string h.Snapshot.total);
      let bound name v =
        Buffer.add_string buf (Printf.sprintf ",%S:" name);
        if h.Snapshot.count = 0 then Buffer.add_string buf "null"
        else Buffer.add_string buf (Int64.to_string v)
      in
      bound "min" h.Snapshot.min;
      bound "max" h.Snapshot.max;
      Buffer.add_string buf ",\"buckets\":[";
      List.iteri
        (fun i (idx, n) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '[';
          let b = Buckets.bound idx in
          if Int64.equal b Int64.max_int then Buffer.add_string buf "null"
          else Buffer.add_string buf (Int64.to_string b);
          Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int n);
          Buffer.add_char buf ']')
        h.Snapshot.buckets;
      Buffer.add_string buf "]}"

let to_json_string snapshot =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, data) ->
      if i > 0 then Buffer.add_char buf ',';
      escape buf name;
      Buffer.add_char buf ':';
      emit_data buf data)
    (Snapshot.to_list snapshot);
  Buffer.add_char buf '}';
  Buffer.contents buf
