(** Bounded ring of structured trace events.

    Replaces the string-blob trace: components emit {!Event.t} variants and
    consumers pattern-match or pretty-print them. Tracing is disabled by
    default; the supported emission idiom is

    {[
      if Trace.active trace then
        Trace.emit_exn tr ~at_ns (Event.Packet_delivered { ... })
    ]}

    (for an [t option] field) or {!emit} on a known sink — so a disabled or
    absent sink costs one branch, with no payload allocation and no string
    formatting. *)

type t

type entry = { at_ns : int64; event : Event.t }

(** [create ~capacity ()] keeps at most [capacity] most-recent entries
    (default 65536). With [metrics], overwrites of the oldest entry at
    capacity are additionally counted in a [trace.dropped] registry counter,
    so exports built from that registry are self-describing about
    truncation. *)
val create : ?capacity:int -> ?metrics:Registry.t -> unit -> t

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

(** [active trace] is true when a sink is attached and enabled — the guard
    call sites use before building an event payload. *)
val active : t option -> bool

(** [emit t ~at_ns ev] appends when [t] is enabled, else does nothing. *)
val emit : t -> at_ns:int64 -> Event.t -> unit

val iter : t -> (entry -> unit) -> unit
val fold : ('acc -> entry -> 'acc) -> 'acc -> t -> 'acc

(** Entries in emission order (oldest first); a thin wrapper over {!fold}. *)
val entries : t -> entry list

(** [clear t] empties the ring and zeroes the drop accounting — both the
    ring's own counter and its ["trace.dropped"] registry mirror, so the
    two never disagree after a checkpoint restore. *)
val clear : t -> unit

val length : t -> int

(** The ring's fixed capacity. *)
val capacity : t -> int

(** Entries lost to ring overwrites since creation (or the last {!clear}).
    A consumer seeing [dropped t > 0] must treat the trace as a suffix of
    the run, not the whole run — lineage reconstruction, for example, will
    report chains whose proposals predate the ring's oldest entry as
    orphans. *)
val dropped : t -> int

(** [span t ~now ~name f] emits [Span_begin] before and [Span_end] (with the
    elapsed simulated time) after running [f]; the span is recorded even when
    [f] raises. [now] supplies the current simulated time in ns. *)
val span : t -> now:(unit -> int64) -> name:string -> (unit -> 'a) -> 'a

val pp_entry : Format.formatter -> entry -> unit
