(** Immutable point-in-time view of a {!Registry}.

    A snapshot is the unit the runner aggregates: each job returns the
    snapshot of its simulation's registry, and the driver merges them in job
    order. Merging is exact (integer sums, float sums in a fixed order,
    watermark maxima, bucket-wise histogram addition), so a [-j N] sweep
    merges to byte-identical results with a [-j 1] run — the same contract as
    [Sw_sim.Summary.merge]. *)

type histogram = {
  count : int;
  total : int64;  (** Sum of observed values, ns. *)
  min : int64;  (** Meaningless when [count = 0]. *)
  max : int64;  (** Meaningless when [count = 0]. *)
  buckets : (int * int) list;
      (** Sparse [(bucket index, count)] pairs, ascending index; see
          {!Buckets}. *)
}

type data =
  | Counter of int
  | Sum of float
  | Gauge of float
  | Histogram of histogram

type t

val empty : t

(** [of_list entries] sorts [entries] by name. Raises [Invalid_argument] on
    duplicate names. *)
val of_list : (string * data) list -> t

(** Entries in ascending name order. *)
val to_list : t -> (string * data) list

val is_empty : t -> bool
val find : t -> string -> data option

(** [counter t name] is the counter's value, or [0] when absent. Raises
    [Invalid_argument] when [name] holds a different metric kind. *)
val counter : t -> string -> int

(** [sum t name] is the float accumulator's value, or [0.] when absent. *)
val sum : t -> string -> float

(** [gauge t name] is the watermark value, or [0.] when absent. *)
val gauge : t -> string -> float

val histogram : t -> string -> histogram option

(** [merge a b] combines per-name: counters and sums add, gauges take the
    max, histograms add bucket-wise (min/max/total folded in). Names present
    on one side only pass through. Raises [Invalid_argument] when the two
    sides disagree on a name's metric kind. *)
val merge : t -> t -> t

val merge_all : t list -> t

(** [filter t ~f] keeps the metrics whose name satisfies [f]. Determinism
    comparisons across shard layouts use this to drop [sim.*] — the
    execution substrate's own bookkeeping (queue-depth watermarks,
    per-kind scheduling-delay histograms), which legitimately depends on
    how the one logical run is partitioned into engines. *)
val filter : t -> f:(string -> bool) -> t

val pp : Format.formatter -> t -> unit
