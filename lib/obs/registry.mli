(** Per-simulation metrics registry.

    One registry per simulation (the engine owns it); every component
    registers its instruments at construction under a hierarchical dotted
    path — ["vmm.0.vm0.disk.interrupts"], ["net.ingress.replicated"] — and
    bumps them through the returned handle, which is a single mutable cell
    (no name lookup on the hot path).

    Metric kinds and their merge semantics (see {!Snapshot.merge}):
    - {b counter}: monotone int event count; merge adds.
    - {b sum}: float accumulator (e.g. fractional median credits); merge adds.
    - {b gauge}: high-watermark float (queue depths, maxima); merge takes max.
    - {b histogram}: int64-ns values over the fixed log ladder of {!Buckets};
      merge adds bucket-wise.

    Registries are single-domain objects: a simulation's registry lives and
    dies with its job, and only {!Snapshot} values cross domains. *)

type t

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int

  (** Reset to zero (for measurement-window style uses, e.g.
      [Network.reset_counters]). *)
  val reset : t -> unit
end

module Sum : sig
  type t

  val add : t -> float -> unit
  val value : t -> float
end

module Gauge : sig
  type t

  (** [observe g v] raises the watermark to [v] when [v] is larger. *)
  val observe : t -> float -> unit

  (** Unboxed fast path: like {!observe} but an int compare-and-store, no
      float conversion or boxing. The watermark reported by {!value} is the
      max across both paths. *)
  val observe_int : t -> int -> unit

  val value : t -> float
end

module Histogram : sig
  type t

  (** [observe h v] records the int64-ns value [v]. *)
  val observe : t -> int64 -> unit

  val count : t -> int
  val total : t -> int64

  (** Largest observed value; [Int64.min_int] before any observation. *)
  val max : t -> int64

  (** Smallest observed value; [Int64.max_int] before any observation. *)
  val min : t -> int64
end

val create : unit -> t

(** Hot-path master switch, [true] at creation. Producers with several
    instrument updates per operation test [enabled] once and skip the whole
    block when the registry is off — one load and one branch instead of
    unconditional metric work. Instruments obtained from a disabled registry
    still work if bumped directly; the switch is a contract between producer
    and registry, not a lock. *)
val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** [counter t path] returns the counter registered at [path], creating it on
    first use. Raises [Invalid_argument] when [path] is empty, contains
    characters outside [A-Za-z0-9._-], or is already registered as another
    metric kind. Same contract for {!sum}, {!gauge} and {!histogram}. *)
val counter : t -> string -> Counter.t

val sum : t -> string -> Sum.t
val gauge : t -> string -> Gauge.t
val histogram : t -> string -> Histogram.t

(** Deterministic point-in-time view, sorted by path. *)
val snapshot : t -> Snapshot.t
