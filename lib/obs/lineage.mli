(** Causal lineage reconstruction over the replicated interrupt pipeline.

    The StopWatch delivery protocol leaves a typed event trail:
    [Ingress_replicated] (the ingress stamps and fans an inbound packet out)
    → [Packet_proposed]{^ ×m} (each replica proposes [virt + Δn] and
    records its peers' proposals) → [Median_adopted] (a replica's quorum
    completes; the median becomes the delivery time) → [Packet_delivered]
    (the guest sees the interrupt at the agreed virtual instant).

    This module folds a {!Trace} into one {!chain} per [(vm, ingress_seq)]
    and derives the diagnosis data the raw ring cannot give directly:

    - {b lag histograms} — propose→adopt (quorum gathering time) and
      adopt→deliver (virtual-time wait), on the {!Buckets} ladder;
    - {b median-win shares} — which replica's proposal the median adopted
      (ties split), the observable of Sec. IX's marginalisation attack;
    - {b skew series} — the spread of proposal virtual times per chain over
      time, the protocol-level view of replica skew;
    - {b orphans} — protocol violations surfaced as data: a replica that
      recorded proposals but never adopted a median
      ([Unadopted_proposal] — a crashed or quorum-starved replica), or a
      delivery with no recorded median ([Unmatched_delivery] — an emission
      gap or a truncated ring).

    A chain that was adopted but not yet delivered when the run ended is
    {e in flight}, not an orphan: the agreed virtual delivery instant
    simply lies beyond the end of the trace. *)

type proposal = {
  observer : int;  (** Replica at which the proposal was recorded. *)
  proposer : int;
  at_ns : int64;  (** Simulated instant of the record. *)
  virt_ns : int64;  (** Proposed virtual delivery time. *)
}

type adoption = {
  replica : int;
  at_ns : int64;
  virt_ns : int64;  (** The adopted median. *)
  proposals : (int * int64) list;  (** The proposals it was taken over. *)
}

type delivery = { replica : int; at_ns : int64; virt_ns : int64 }

type chain = {
  vm : int;
  ingress_seq : int;
  ingress_at_ns : int64 option;
      (** When the ingress stamped the packet, when that event is in the
          trace. *)
  proposals : proposal list;  (** In emission order. *)
  adoptions : adoption list;
  deliveries : delivery list;
}

type orphan_kind =
  | Unadopted_proposal
      (** The replica recorded proposals for this packet but never adopted
          a median — it crashed, or its quorum never completed. *)
  | Unmatched_delivery
      (** The replica delivered the packet without a recorded median — an
          event-coverage gap or ring truncation. *)

type orphan = {
  o_vm : int;
  o_ingress_seq : int;
  o_replica : int;
  kind : orphan_kind;
}

val orphan_kind_label : orphan_kind -> string

(** The delivery-pipeline mechanism a timing series is attributed to —
    the "which masking layer failed" axis of a leak audit. *)
type mechanism =
  | Median_adoption  (** Propose→adopt lags: quorum gathering time. *)
  | Delivery_gap
      (** Virtual inter-delivery gaps between successive chains — what the
          guest-visible interrupt clock exposes. *)
  | Egress_release  (** Gaps between egress release instants. *)
  | Ingress_latency
      (** Ingress stamp → first delivery (virtual instant), per chain. The
          sender side of a probe stream knows its own send times, so this
          end-to-end latency is observable by an attack apparatus that
          controls the traffic source. *)

val mechanism_label : mechanism -> string

(** Lag histogram on the {!Buckets} ladder; [buckets] pairs each non-empty
    bucket's upper bound (ns) with its count, ascending. *)
type hist = {
  count : int;
  total_ns : int64;
  min_ns : int64;  (** Meaningless when [count = 0]. *)
  max_ns : int64;  (** Meaningless when [count = 0]. *)
  buckets : (int64 * int) list;
}

val hist_mean_ns : hist -> float

type t

(** [of_entries entries] reconstructs chains from entries in emission
    order. [dropped] (default 0) records how many entries the source ring
    lost; it is carried into {!dropped} and the summary's truncation
    warning. *)
val of_entries : ?dropped:int -> Trace.entry list -> t

(** [of_trace tr] = [of_entries ~dropped:(Trace.dropped tr) (Trace.entries tr)]. *)
val of_trace : Trace.t -> t

(** Chains sorted by [(vm, ingress_seq)]. *)
val chains : t -> chain list

(** Orphans sorted by [(vm, ingress_seq, replica)]; empty on a fault-free,
    untruncated run. *)
val orphans : t -> orphan list

val total : t -> int
val complete : t -> int

(** Chains adopted but not delivered when the trace ended. *)
val in_flight : t -> int

val propose_to_adopt : t -> hist
val adopt_to_deliver : t -> hist

(** Lag samples that came out negative — always [0] unless the protocol
    (or the trace) is broken; surfaced rather than silently clamped. *)
val negative_lags : t -> int

(** [(replica, share)] of median adoptions credited to each replica's
    proposal, shares summing to 1 (ties split). *)
val median_wins : t -> (int * float) list

(** [(at_ns, spread_ns)] per chain: the proposal spread its first adoption
    saw, in time order. *)
val skew_series : t -> (int64 * int64) list

(** Ring drops carried from the source trace. *)
val dropped : t -> int

(** Per-[(vm, mechanism)] timing series (milliseconds, in trace order),
    ready for a leak detector: propose→adopt lags, inter-delivery gaps
    (successive chains' first delivery virtual times), and egress release
    gaps. Empty series are omitted; sorted by [(vm, mechanism)]. This is
    the one extraction point — callers should not re-fold the trace
    ring. *)
val observations : t -> ((int * mechanism) * float array) list

val pp_summary : Format.formatter -> t -> unit
