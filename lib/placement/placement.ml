type plan = {
  machines : int;
  capacity : int;
  placements : Triangle.t list;
}

let theorem2_bound ~n ~c =
  match c mod 3 with
  | 0 | 1 -> c * n / 3
  | _ -> ((c - 1) * n / 3) + ((n - 3) / 6)

let theorem2_place ~n ~c ~k =
  if n < 9 || n mod 6 <> 3 then
    Error (Printf.sprintf "theorem2_place: n = %d is not 3 mod 6 (>= 9)" n)
  else if c < 1 || c > (n - 1) / 2 then
    Error (Printf.sprintf "theorem2_place: c = %d out of [1, %d]" c ((n - 1) / 2))
  else begin
    let bound = theorem2_bound ~n ~c in
    if k < 0 || k > bound then
      Error (Printf.sprintf "theorem2_place: k = %d exceeds bound %d" k bound)
    else begin
      let v = (n - 3) / 6 in
      let groups = Steiner.groups ~v in
      let full_groups upto = List.concat_map (fun t -> groups.(t)) (List.init upto (fun i -> i + 1)) in
      let available =
        match c mod 3 with
        | 0 -> full_groups (c / 3)
        | 1 -> groups.(0) @ full_groups ((c - 1) / 3)
        | _ -> groups.(0) @ full_groups ((c - 2) / 3) @ Steiner.partial_gv ~v
      in
      let placements = List.filteri (fun i _ -> i < k) available in
      Ok { machines = n; capacity = c; placements }
    end
  end

let greedy_place ~n ~c ~k =
  if n < 3 then invalid_arg "Placement.greedy_place: need n >= 3";
  if c < 1 then invalid_arg "Placement.greedy_place: need c >= 1";
  let used = Hashtbl.create 64 in
  let load = Array.make n 0 in
  let free (x, y) = not (Hashtbl.mem used (x, y)) in
  let fits t =
    List.for_all free (Triangle.edges t)
    && List.for_all (fun x -> load.(x) < c) (Triangle.vertices t)
  in
  let take t =
    List.iter (fun e -> Hashtbl.add used e ()) (Triangle.edges t);
    List.iter (fun x -> load.(x) <- load.(x) + 1) (Triangle.vertices t)
  in
  let placements = ref [] in
  let placed = ref 0 in
  (try
     for a = 0 to n - 3 do
       for b = a + 1 to n - 2 do
         for v = b + 1 to n - 1 do
           if !placed < k then begin
             let t = Triangle.make a b v in
             if fits t then begin
               take t;
               placements := t :: !placements;
               incr placed
             end
           end
           else raise Exit
         done
       done
     done
   with Exit -> ());
  { machines = n; capacity = c; placements = List.rev !placements }

let loads plan =
  let load = Array.make plan.machines 0 in
  List.iter
    (fun t -> List.iter (fun x -> load.(x) <- load.(x) + 1) (Triangle.vertices t))
    plan.placements;
  load

let verify plan =
  let out_of_range =
    List.exists
      (fun t -> List.exists (fun x -> x < 0 || x >= plan.machines) (Triangle.vertices t))
      plan.placements
  in
  if out_of_range then Error "placement references a machine out of range"
  else if not (Triangle.edge_disjoint plan.placements) then
    Error "placements share a machine pair (coresidency sets overlap)"
  else begin
    let load = loads plan in
    let over = ref None in
    Array.iteri
      (fun i l -> if l > plan.capacity && !over = None then over := Some (i, l))
      load;
    match !over with
    | Some (i, l) ->
        Error
          (Printf.sprintf "machine %d holds %d guests, capacity is %d" i l
             plan.capacity)
    | None -> Ok ()
  end

let utilization plan =
  let slots = plan.machines * plan.capacity in
  if slots = 0 then 0.
  else float_of_int (3 * List.length plan.placements) /. float_of_int slots

let isolation_bound ~n = n
