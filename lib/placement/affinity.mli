(** Placement-aware shard partitioning over a cell-level traffic graph.

    Cells — one replica group plus its client hosts — are the partition
    atoms, so a cell-to-shard assignment can never split a replica group.
    [partition] packs heavily-communicating cells onto the same shard under
    a hard balance bound, which shrinks the cross-shard message rate the
    sharded conductor pays for at every lookahead barrier.

    Deterministic: the plan is a pure function of the graph and shard
    count — every greedy tie breaks on the lower cell/shard index. *)

(** A directed or undirected traffic edge; [weight] is the expected message
    rate between the two cells (any consistent unit). Self-edges are
    ignored. *)
type edge = { a : int; b : int; weight : float }

type graph = { cells : int; edges : edge list }

type plan = {
  shards : int;  (** Effective shard count (clamped to [cells]). *)
  shard_of_cell : int array;
  cut_weight : float;
      (** Total weight of edges crossing shards — the expected cross-shard
          message rate, in the unit the edge weights were given in. *)
  total_weight : float;  (** All non-self edge weight, cut or not. *)
  moved_cells : int;
      (** Cells assigned differently than {!contiguous} would — the
          migration churn of adopting this plan over the static split. *)
}

(** The static contiguous block split (sizes as even as possible, low
    shards first) — the pre-affinity default, exposed for comparison. *)
val contiguous : cells:int -> shards:int -> int array

(** [partition g ~shards] greedily clusters cells along their heaviest
    edges under the balance bound [ceil (cells / shards)] — no shard is
    ever assigned more than that many cells — then packs clusters
    largest-first into shards. Raises [Invalid_argument] on an edge out of
    range, a negative weight, or [shards < 1]. *)
val partition : graph -> shards:int -> plan

(** [cut_weight g assign] is the total weight crossing shards under an
    arbitrary assignment (length must equal [g.cells]). *)
val cut_weight : graph -> int array -> float

(** Total non-self edge weight of the graph. *)
val total_weight : graph -> float
