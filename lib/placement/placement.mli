(** Replica placement under the StopWatch constraint (paper Sec. VIII).

    A placement plan assigns each guest VM a triangle of machines; the plan
    is valid when triangles are pairwise edge-disjoint (the nonoverlapping-
    coresidency constraint) and no machine exceeds its guest capacity. *)

type plan = {
  machines : int;  (** n *)
  capacity : int;  (** c, guest VMs a machine can run simultaneously *)
  placements : Triangle.t list;  (** one triangle per guest VM *)
}

(** Number of guest VMs Thm. 2 guarantees for [n = 3 mod 6] and
    [c <= (n-1)/2]: [c*n/3] when [c = 0 or 1 mod 3], else
    [(c-1)*n/3 + (n-3)/6]. *)
val theorem2_bound : n:int -> c:int -> int

(** [theorem2_place ~n ~c ~k] runs the constructive algorithm from the
    Thm. 2 proof. Requires [n = 3 mod 6], [n >= 9], [1 <= c <= (n-1)/2], and
    [0 <= k <= theorem2_bound ~n ~c]; returns [Error _] otherwise. *)
val theorem2_place : n:int -> c:int -> k:int -> (plan, string) result

(** [greedy_place ~n ~c ~k] places up to [k] VMs on any [n >= 3] by greedy
    scan under both constraints; the returned plan may hold fewer than [k]
    placements when the greedy packing saturates. *)
val greedy_place : n:int -> c:int -> k:int -> plan

(** Full validity check: vertex range, pairwise edge-disjointness, capacity.
    [Error] carries a human-readable reason. *)
val verify : plan -> (unit, string) result

(** Per-machine number of resident guest replicas. *)
val loads : plan -> int array

(** Fraction of total guest-slot capacity ([c * n]) in use, counting each
    VM's three replicas. *)
val utilization : plan -> float

(** Guest VMs runnable when forgoing StopWatch and isolating each VM on its
    own machine — the baseline the paper compares against (n). *)
val isolation_bound : n:int -> int
