(** Bose's construction of Steiner triple systems on [n = 6v + 3] points
    (paper Thm. 2 proof), organised into the triangle groups G_0 .. G_v used
    by the capacity-constrained placement algorithm. *)

(** [node ~v ~a ~layer] is the machine index of point [(a, layer)] in
    [Q x {0,1,2}], with [a] in [[0, 2v]] and [layer] in [[0, 2]]. *)
val node : v:int -> a:int -> layer:int -> int

(** [groups ~v] returns [[| G_0; G_1; ...; G_v |]]:
    - [G_0] has [2v + 1] triangles, visiting every node exactly once;
    - each [G_t], [t >= 1], has [6v + 3] triangles, visiting every node
      exactly three times;
    - all triangles across all groups are pairwise edge-disjoint.
    Raises [Invalid_argument] for [v < 1]. *)
val groups : v:int -> Triangle.t list array

(** The full Steiner triple system on [n = 6v + 3] points: the union of all
    groups, [n (n - 1) / 6] triples covering every edge exactly once. *)
val system : v:int -> Triangle.t list

(** [partial_gv ~v] is the sub-family of [G_v] from the Thm. 2 proof's
    [c = 2 mod 3] case: [v] triangles that visit each node at most once. *)
val partial_gv : v:int -> Triangle.t list
