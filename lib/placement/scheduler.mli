(** Online replica placement — the operational counterpart of Sec. VIII's
    offline constructions: guest VMs arrive and depart over time, and each
    arrival must be assigned a machine triangle that is edge-disjoint from
    every currently running VM's triangle and respects machine capacities.

    The scheduler is greedy and load-balancing: it considers machines in
    ascending load order and takes the first feasible triangle. Departures
    return their edges and slots, so a long-running cloud converges to a
    maintainable packing rather than fragmenting monotonically. *)

type t

val create : machines:int -> capacity:int -> t

(** [place t] assigns a triangle to the next arriving VM, or [Error] when no
    feasible triangle exists under the current residents. *)
val place : t -> (Triangle.t, string) result

(** [remove t tri] releases a previously placed triangle. Raises
    [Invalid_argument] if [tri] is not currently placed. *)
val remove : t -> Triangle.t -> unit

(** Currently running VMs. *)
val placed : t -> int

(** Per-machine resident replica counts. *)
val load : t -> int array

(** All currently placed triangles. *)
val residents : t -> Triangle.t list

(** Internal-consistency check (edge-disjointness + capacity); [Error]
    indicates a scheduler bug. *)
val check : t -> (unit, string) result
