(** Edge-disjoint triangle packings of the complete graph K_n. *)

(** Size of a maximum packing of K_n with pairwise edge-disjoint triangles
    (paper Thm. 1, after Horsley):
    - odd [n]: the largest [k] with [3k <= C(n,2)] and
      [C(n,2) - 3k not in (1, 2)];
    - even [n]: the largest [k] with [3k <= C(n,2) - n/2].
    Raises [Invalid_argument] for [n < 3]. *)
val max_packing_size : int -> int

(** [greedy n] builds an edge-disjoint triangle packing of K_n by greedy
    lexicographic scan — the simple practical algorithm a cloud scheduler
    could run for arbitrary [n]. The result is edge-disjoint but not always
    maximum. *)
val greedy : int -> Triangle.t list

(** Number of unordered vertex pairs, C(n, 2). *)
val edge_count : int -> int
