(* Placement-aware shard partitioning: pack chatty cells co-shard.

   The input is a cell-level traffic graph (cells are the partition atoms —
   one replica group plus its client hosts — so replica groups can never be
   split by construction). Partitioning is two deterministic greedy passes:

   1. Clustering: walk the edges heaviest-first and union the endpoint
      clusters whenever the merged size stays within the balance bound
      [ceil (cells / shards)] — a Kruskal-style pass that swallows the
      heaviest traffic inside clusters.
   2. Packing: place clusters largest-first into the emptiest-fitting shard
      (first fit over shards in index order). A cluster that no shard can
      hold whole — pure bin-packing fragmentation, the bound guarantees the
      total always fits — is split cell by cell onto the least-loaded
      shard, so the balance bound holds unconditionally.

   Every tie (equal edge weights, equal cluster sizes, equal loads) breaks
   on the lower cell/shard index, so the plan is a pure function of the
   graph — the determinism contract the sharded cloud needs. *)

type edge = { a : int; b : int; weight : float }
type graph = { cells : int; edges : edge list }

type plan = {
  shards : int;
  shard_of_cell : int array;
  cut_weight : float;
  total_weight : float;
  moved_cells : int;
}

let contiguous ~cells ~shards =
  let shards = if shards > cells then cells else shards in
  let base = cells / shards and rem = cells mod shards in
  let assign = Array.make cells 0 in
  let c = ref 0 in
  for s = 0 to shards - 1 do
    let size = base + if s < rem then 1 else 0 in
    for _ = 1 to size do
      assign.(!c) <- s;
      incr c
    done
  done;
  assign

let check_graph g =
  if g.cells < 1 then invalid_arg "Affinity: graph needs at least one cell";
  List.iter
    (fun e ->
      if e.a < 0 || e.a >= g.cells || e.b < 0 || e.b >= g.cells then
        invalid_arg "Affinity: edge endpoint out of range";
      if e.weight < 0. then invalid_arg "Affinity: edge weight must be >= 0")
    g.edges

let cut_weight g assign =
  check_graph g;
  if Array.length assign <> g.cells then
    invalid_arg "Affinity.cut_weight: assignment length <> cells";
  List.fold_left
    (fun acc e ->
      if e.a <> e.b && assign.(e.a) <> assign.(e.b) then acc +. e.weight
      else acc)
    0. g.edges

let total_weight g =
  List.fold_left (fun acc e -> if e.a <> e.b then acc +. e.weight else acc) 0. g.edges

(* Union-find keyed so that the representative is always the smallest cell
   id in the cluster — path-independent, hence deterministic. *)
let find parent c =
  let rec root c = if parent.(c) = c then c else root parent.(c) in
  let r = root c in
  let rec compress c =
    if parent.(c) <> r then begin
      let next = parent.(c) in
      parent.(c) <- r;
      compress next
    end
  in
  compress c;
  r

let partition g ~shards =
  check_graph g;
  if shards < 1 then invalid_arg "Affinity.partition: shards must be >= 1";
  let cells = g.cells in
  let shards = if shards > cells then cells else shards in
  let cap = (cells + shards - 1) / shards in
  (* Pass 1: cluster under the balance bound, heaviest edges first. *)
  let parent = Array.init cells Fun.id in
  let size = Array.make cells 1 in
  let edges =
    List.sort
      (fun x y ->
        let c = compare y.weight x.weight in
        if c <> 0 then c
        else
          let c = compare x.a y.a in
          if c <> 0 then c else compare x.b y.b)
      (List.filter (fun e -> e.a <> e.b) g.edges)
  in
  List.iter
    (fun e ->
      let ra = find parent e.a and rb = find parent e.b in
      if ra <> rb && size.(ra) + size.(rb) <= cap then begin
        let keep = if ra < rb then ra else rb in
        let drop = if ra < rb then rb else ra in
        parent.(drop) <- keep;
        size.(keep) <- size.(keep) + size.(drop)
      end)
    edges;
  (* Gather clusters as (size, min cell, members-in-id-order). *)
  let members = Hashtbl.create 64 in
  for c = cells - 1 downto 0 do
    let r = find parent c in
    let tail = match Hashtbl.find_opt members r with Some l -> l | None -> [] in
    Hashtbl.replace members r (c :: tail)
  done;
  let clusters =
    Hashtbl.fold (fun r l acc -> (List.length l, r, l) :: acc) members []
    |> List.sort (fun (sx, rx, _) (sy, ry, _) ->
           let c = compare sy sx in
           if c <> 0 then c else compare rx ry)
  in
  (* Pass 2: first-fit-decreasing under the cap; fragmented leftovers go
     cell by cell onto the least-loaded shard. *)
  let load = Array.make shards 0 in
  let assign = Array.make cells (-1) in
  let place_cell c =
    let best = ref 0 in
    for s = 1 to shards - 1 do
      if load.(s) < load.(!best) then best := s
    done;
    assign.(c) <- !best;
    load.(!best) <- load.(!best) + 1
  in
  List.iter
    (fun (sz, _, members) ->
      let fit = ref (-1) in
      for s = shards - 1 downto 0 do
        if load.(s) + sz <= cap then fit := s
      done;
      match !fit with
      | -1 -> List.iter place_cell members
      | s ->
          List.iter (fun c -> assign.(c) <- s) members;
          load.(s) <- load.(s) + sz)
    clusters;
  let base = contiguous ~cells ~shards in
  let moved = ref 0 in
  Array.iteri (fun c s -> if base.(c) <> s then incr moved) assign;
  {
    shards;
    shard_of_cell = assign;
    cut_weight = cut_weight g assign;
    total_weight = total_weight g;
    moved_cells = !moved;
  }
