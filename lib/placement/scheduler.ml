type t = {
  machines : int;
  capacity : int;
  used_edges : (int * int, unit) Hashtbl.t;
  mutable residents : Triangle.t list;
  load : int array;
}

let create ~machines ~capacity =
  if machines < 3 then invalid_arg "Scheduler.create: need >= 3 machines";
  if capacity < 1 then invalid_arg "Scheduler.create: need capacity >= 1";
  {
    machines;
    capacity;
    used_edges = Hashtbl.create 64;
    residents = [];
    load = Array.make machines 0;
  }

let edge_free t e = not (Hashtbl.mem t.used_edges e)

let feasible t tri =
  List.for_all (edge_free t) (Triangle.edges tri)
  && List.for_all (fun m -> t.load.(m) < t.capacity) (Triangle.vertices tri)

let take t tri =
  List.iter (fun e -> Hashtbl.add t.used_edges e ()) (Triangle.edges tri);
  List.iter (fun m -> t.load.(m) <- t.load.(m) + 1) (Triangle.vertices tri);
  t.residents <- tri :: t.residents

let place t =
  (* Scan machines in ascending-load order so replicas spread out; the first
     feasible triangle wins. *)
  let order = Array.init t.machines (fun i -> i) in
  Array.sort (fun a b -> compare (t.load.(a), a) (t.load.(b), b)) order;
  let n = t.machines in
  let found = ref None in
  (try
     for ai = 0 to n - 3 do
       for bi = ai + 1 to n - 2 do
         for ci = bi + 1 to n - 1 do
           if !found = None then begin
             let tri = Triangle.make order.(ai) order.(bi) order.(ci) in
             if feasible t tri then begin
               found := Some tri;
               raise Exit
             end
           end
         done
       done
     done
   with Exit -> ());
  match !found with
  | Some tri ->
      take t tri;
      Ok tri
  | None -> Error "no feasible triangle (edges or capacity exhausted)"

let remove t tri =
  if not (List.exists (Triangle.equal tri) t.residents) then
    invalid_arg "Scheduler.remove: triangle not placed";
  t.residents <-
    (let removed = ref false in
     List.filter
       (fun r ->
         if (not !removed) && Triangle.equal r tri then begin
           removed := true;
           false
         end
         else true)
       t.residents);
  List.iter (fun e -> Hashtbl.remove t.used_edges e) (Triangle.edges tri);
  List.iter (fun m -> t.load.(m) <- t.load.(m) - 1) (Triangle.vertices tri)

let placed t = List.length t.residents
let load t = Array.copy t.load
let residents t = t.residents

let check t =
  if not (Triangle.edge_disjoint t.residents) then
    Error "residents share a machine pair"
  else begin
    let recount = Array.make t.machines 0 in
    List.iter
      (fun tri ->
        List.iter (fun m -> recount.(m) <- recount.(m) + 1) (Triangle.vertices tri))
      t.residents;
    if recount <> t.load then Error "load accounting out of sync"
    else if Array.exists (fun l -> l > t.capacity) recount then
      Error "capacity exceeded"
    else Ok ()
  end
