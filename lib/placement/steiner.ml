let node ~v ~a ~layer =
  let q = (2 * v) + 1 in
  if a < 0 || a >= q then invalid_arg "Steiner.node: point out of range";
  if layer < 0 || layer > 2 then invalid_arg "Steiner.node: layer out of range";
  (layer * q) + a

let groups ~v =
  if v < 1 then invalid_arg "Steiner.groups: v must be >= 1";
  let q = (2 * v) + 1 in
  let qg = Quasigroup.create q in
  let g0 =
    List.init q (fun a ->
        Triangle.make (node ~v ~a ~layer:0) (node ~v ~a ~layer:1)
          (node ~v ~a ~layer:2))
  in
  let gt t =
    List.concat_map
      (fun layer ->
        List.init q (fun i ->
            let j = (i + t) mod q in
            Triangle.make
              (node ~v ~a:i ~layer)
              (node ~v ~a:j ~layer)
              (node ~v ~a:(Quasigroup.op qg i j) ~layer:((layer + 1) mod 3))))
      [ 0; 1; 2 ]
  in
  Array.init (v + 1) (fun t -> if t = 0 then g0 else gt t)

let system ~v = List.concat (Array.to_list (groups ~v))

let partial_gv ~v =
  if v < 1 then invalid_arg "Steiner.partial_gv: v must be >= 1";
  let q = (2 * v) + 1 in
  let qg = Quasigroup.create q in
  List.init v (fun i ->
      let j = i + v in
      Triangle.make (node ~v ~a:i ~layer:0) (node ~v ~a:j ~layer:0)
        (node ~v ~a:(Quasigroup.op qg i j) ~layer:1))
