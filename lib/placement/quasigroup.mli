(** Idempotent commutative quasigroups of odd order, the ingredient of
    Bose's Steiner-triple-system construction (paper Sec. VIII, Thm. 2). *)

type t

(** [create n] builds the standard idempotent commutative quasigroup on
    [Z_n] for odd [n]: [x * y = ((x + y) * (n + 1) / 2) mod n]. Raises
    [Invalid_argument] for even or non-positive [n]. *)
val create : int -> t

val order : t -> int

(** [op q x y] applies the quasigroup operation. Arguments must lie in
    [[0, order)]. *)
val op : t -> int -> int -> int

(** Structural checks (each element once per row/column, commutative,
    idempotent) — used by tests and by {!create}'s own assertion. *)
val is_idempotent : t -> bool

val is_commutative : t -> bool
val is_latin_square : t -> bool
