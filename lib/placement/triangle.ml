type t = { a : int; b : int; c : int }

let make x y z =
  if x = y || y = z || x = z then
    invalid_arg "Triangle.make: vertices must be distinct";
  let a = Stdlib.min x (Stdlib.min y z) in
  let c = Stdlib.max x (Stdlib.max y z) in
  let b = x + y + z - a - c in
  { a; b; c }

let vertices t = [ t.a; t.b; t.c ]
let edges t = [ (t.a, t.b); (t.a, t.c); (t.b, t.c) ]
let mem v t = v = t.a || v = t.b || v = t.c
let equal t1 t2 = t1.a = t2.a && t1.b = t2.b && t1.c = t2.c
let compare = Stdlib.compare

let edge_disjoint ts =
  let seen = Hashtbl.create 64 in
  let rec check = function
    | [] -> true
    | t :: rest ->
        let fresh =
          List.for_all
            (fun e ->
              if Hashtbl.mem seen e then false
              else begin
                Hashtbl.add seen e ();
                true
              end)
            (edges t)
        in
        fresh && check rest
  in
  check ts

let pp fmt t = Format.fprintf fmt "{%d,%d,%d}" t.a t.b t.c
