(** Triangles (3-subsets of machine indices) and their edges.

    A triangle records where the three replicas of one guest VM live; the
    StopWatch constraint — replicas of a VM coreside with nonoverlapping sets
    of (replicas of) other VMs — is exactly pairwise edge-disjointness of the
    triangles. *)

type t = private { a : int; b : int; c : int }
(** Invariant: [a < b < c]. *)

(** Raises [Invalid_argument] when vertices are not pairwise distinct. *)
val make : int -> int -> int -> t

val vertices : t -> int list

(** The three edges, each as an ordered pair [(lo, hi)]. *)
val edges : t -> (int * int) list

val mem : int -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

(** [edge_disjoint ts] checks pairwise edge-disjointness of a whole list in
    O(total edges). *)
val edge_disjoint : t list -> bool

val pp : Format.formatter -> t -> unit
