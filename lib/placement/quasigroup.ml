type t = { n : int; half : int }

let create n =
  if n <= 0 || n mod 2 = 0 then
    invalid_arg "Quasigroup.create: order must be odd and positive";
  (* (n + 1) / 2 is the multiplicative inverse of 2 mod n. *)
  { n; half = (n + 1) / 2 }

let order t = t.n

let op t x y =
  if x < 0 || x >= t.n || y < 0 || y >= t.n then
    invalid_arg "Quasigroup.op: element out of range";
  (x + y) * t.half mod t.n

let is_idempotent t =
  let ok = ref true in
  for x = 0 to t.n - 1 do
    if op t x x <> x then ok := false
  done;
  !ok

let is_commutative t =
  let ok = ref true in
  for x = 0 to t.n - 1 do
    for y = 0 to t.n - 1 do
      if op t x y <> op t y x then ok := false
    done
  done;
  !ok

let is_latin_square t =
  let ok = ref true in
  for x = 0 to t.n - 1 do
    let row_seen = Array.make t.n false and col_seen = Array.make t.n false in
    for y = 0 to t.n - 1 do
      let r = op t x y and c = op t y x in
      if row_seen.(r) then ok := false else row_seen.(r) <- true;
      if col_seen.(c) then ok := false else col_seen.(c) <- true
    done
  done;
  !ok
