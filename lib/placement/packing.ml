let edge_count n = n * (n - 1) / 2

let max_packing_size n =
  if n < 3 then invalid_arg "Packing.max_packing_size: need n >= 3";
  let e = edge_count n in
  if n mod 2 = 1 then begin
    (* Largest k with 3k <= e and e - 3k not in {1, 2}. Since leftovers
       cycle mod 3, step k down until the leftover is acceptable. *)
    let rec fit k =
      if k < 0 then 0
      else begin
        let leftover = e - (3 * k) in
        if leftover <> 1 && leftover <> 2 then k else fit (k - 1)
      end
    in
    fit (e / 3)
  end
  else (e - (n / 2)) / 3

let greedy n =
  if n < 3 then invalid_arg "Packing.greedy: need n >= 3";
  let used = Hashtbl.create (edge_count n) in
  let free (x, y) = not (Hashtbl.mem used (x, y)) in
  let take (x, y) = Hashtbl.add used (x, y) () in
  let triangles = ref [] in
  for a = 0 to n - 3 do
    for b = a + 1 to n - 2 do
      if free (a, b) then begin
        (* Find the first c completing an all-free triangle on (a, b). *)
        let rec find c =
          if c >= n then None
          else if free (a, c) && free (b, c) then Some c
          else find (c + 1)
        in
        match find (b + 1) with
        | None -> ()
        | Some c ->
            take (a, b);
            take (a, c);
            take (b, c);
            triangles := Triangle.make a b c :: !triangles
      end
    done
  done;
  List.rev !triangles
