(** NFS-like RPC service over {!Tcp} and an nhfsstone-style load generator
    (paper Fig. 6).

    The client side runs [procs] processes, each with its own connection,
    issuing operations at a constant aggregate rate with the paper's measured
    operation mix; it records per-operation latency. Packets per operation
    come from the network's per-pair counters. *)

type op = Setattr | Lookup | Write | Getattr | Read | Create

(** The paper's extracted mix: 11.37% setattr, 24.07% lookup, 11.92% write,
    7.93% getattr, 32.34% read, 12.37% create. *)
val paper_mix : (op * float) list

type Sw_net.Packet.payload +=
  | Nfs_call of { xid : int; op : op }
  | Nfs_reply of { xid : int; op : op }

(** Server guest application. Reads fetch 8 KiB from disk on a buffer-cache
    miss (70% hit rate, deterministic per xid); writes/creates/setattrs
    journal their payload sequentially and reply write-behind;
    lookups/getattrs are compute-only. *)
val server : ?tcp:Tcp.config -> unit -> Sw_vm.App.factory

(** Default server TCP configuration (immediate ACKs). *)
val server_tcp_config : Tcp.config

(** Recommended client TCP configuration: Nagle enabled, so small RPC calls
    coalesce under load — the mechanism behind Fig. 6(b)'s falling
    client-to-server packet count. *)
val client_tcp_config : Tcp.config

type client_stats = {
  issued : int;
  completed : int;
  latencies_ms : float array;  (** Per completed op. *)
}

(** [run_client t ~dst ~rate_per_s ~procs ~ops ~mix ~seed ()] starts the
    load: [ops] operations spread over [procs] connections at aggregate
    [rate_per_s], ops drawn from [mix] with a deterministic PRNG seeded by
    [seed]. Returns a handle to poll after the simulation has run. *)
val run_client :
  Tcp_host.t ->
  dst:Sw_net.Address.t ->
  rate_per_s:float ->
  procs:int ->
  ops:int ->
  ?mix:(op * float) list ->
  ?seed:int64 ->
  unit ->
  (unit -> client_stats)
