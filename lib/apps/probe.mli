(** Attack-scenario guest applications (paper Sec. III, V-B, IX).

    [receiver] plays the attacker VM of Fig. 4: it consumes a packet stream
    and measures inter-delivery times on its (virtual) clock — the
    measurement itself is taken by the VMM instrumentation
    ({!Sw_vmm.Vmm.inter_delivery_virts_ms}). With [echo_to], every [echo_every]-th
    delivery triggers an outbound packet, giving an external observer a
    real-time channel to measure (Sec. VI).

    [streamer] plays the victim VM "continuously serving a file": on each
    timer tick it reads from disk and pushes datagrams to a sink, loading its
    machine's CPU, disk, and NIC. *)

type Sw_net.Packet.payload += Probe_ping of int | Probe_echo of int | Stream_data of int

(** [receiver ?echo_to ?echo_every ()] builds the attacker guest app. *)
val receiver :
  ?echo_to:Sw_net.Address.t -> ?echo_every:int -> unit -> Sw_vm.App.factory

(** [streamer ~sink ~period ~burst ~bytes_per_packet ?disk_every ()] builds
    the victim guest app: every [period] (virtual) it sends [burst] packets
    of [bytes_per_packet] to [sink], reading 64 KiB from disk every
    [disk_every]-th burst (0 disables disk load). *)
val streamer :
  sink:Sw_net.Address.t ->
  period:Sw_sim.Time.t ->
  burst:int ->
  bytes_per_packet:int ->
  ?disk_every:int ->
  unit ->
  Sw_vm.App.factory

(** A compute-spinning guest used as a collaborating attacker (Sec. IX): it
    simply burns CPU, slowing coresident replicas. Note that under the
    simulator's always-runnable guests this adds no *scheduling* load beyond
    an idle guest; its effect comes from the disk/NIC load options. *)
val load_generator :
  ?sink:Sw_net.Address.t ->
  ?period:Sw_sim.Time.t ->
  ?burst:int ->
  ?disk_every:int ->
  unit ->
  Sw_vm.App.factory
