module App = Sw_vm.App
module Packet = Sw_net.Packet

type Packet.payload += Probe_ping of int | Probe_echo of int | Stream_data of int

let receiver ?echo_to ?(echo_every = 1) () () =
  if echo_every < 1 then invalid_arg "Probe.receiver: echo_every must be >= 1";
  let count = ref 0 in
  {
    App.handle =
      (fun ~virt_now:_ event ->
        match event with
        | App.Packet_in _ -> (
            incr count;
            match echo_to with
            | Some dst when !count mod echo_every = 0 ->
                [
                  App.Compute 20_000L;
                  App.Send { dst; size = 100; payload = Probe_echo !count };
                ]
            | _ -> [ App.Compute 20_000L ])
        | _ -> []);
  }

let timer_tag = 7

let streamer ~sink ~period ~burst ~bytes_per_packet ?(disk_every = 4) () () =
  if burst < 1 then invalid_arg "Probe.streamer: burst must be >= 1";
  let bursts = ref 0 in
  let sends n =
    List.concat
      (List.init n (fun i ->
           [
             App.Compute 5_000L;
             App.Send { dst = sink; size = bytes_per_packet; payload = Stream_data i };
           ]))
  in
  {
    App.handle =
      (fun ~virt_now:_ event ->
        match event with
        | App.Boot -> [ App.Set_timer { after = period; tag = timer_tag } ]
        | App.Timer { tag } when tag = timer_tag ->
            incr bursts;
            let disk =
              if disk_every > 0 && !bursts mod disk_every = 0 then
                [ App.Disk_read { bytes = 65536; sequential = true; tag = 100 + !bursts } ]
              else []
            in
            (App.Set_timer { after = period; tag = timer_tag } :: disk) @ sends burst
        | _ -> []);
  }

let load_generator ?sink ?(period = Sw_sim.Time.ms 5) ?(burst = 8) ?(disk_every = 2)
    () () =
  let bursts = ref 0 in
  {
    App.handle =
      (fun ~virt_now:_ event ->
        match event with
        | App.Boot -> [ App.Set_timer { after = period; tag = timer_tag } ]
        | App.Timer { tag } when tag = timer_tag ->
            incr bursts;
            let disk =
              if disk_every > 0 && !bursts mod disk_every = 0 then
                [ App.Disk_read { bytes = 65536; sequential = false; tag = 100 + !bursts } ]
              else []
            in
            let net =
              match sink with
              | Some dst ->
                  List.init burst (fun i ->
                      App.Send { dst; size = 1400; payload = Stream_data i })
              | None -> []
            in
            (App.Set_timer { after = period; tag = timer_tag } :: disk) @ net
        | _ -> []);
  }

let () =
  List.iter Sw_sim.Graft.register
    [
      [%extension_constructor Probe_ping];
      [%extension_constructor Probe_echo];
      [%extension_constructor Stream_data];
    ]
