(** Adapter running {!Tcp} endpoints on an external host (client side).

    Attach once per host; it takes over the host's packet handler, routing
    TCP segments to their connections and everything else to [fallback]. *)

type t
type conn

val attach :
  Stopwatch.Host.t ->
  ?config:Tcp.config ->
  ?fallback:(Sw_net.Packet.t -> unit) ->
  unit ->
  t

val host : t -> Stopwatch.Host.t

(** [connect t ~dst ~on_msg ()] actively opens a connection to [dst]
    (normally a VM address). Callbacks fire as the connection progresses. *)
val connect :
  t ->
  dst:Sw_net.Address.t ->
  ?on_connected:(unit -> unit) ->
  ?on_closed:(unit -> unit) ->
  on_msg:(payload:Sw_net.Packet.payload -> bytes:int -> unit) ->
  unit ->
  conn

val send : conn -> payload:Sw_net.Packet.payload -> bytes:int -> unit
val close : conn -> unit
val is_established : conn -> bool
val conn_id : conn -> int
