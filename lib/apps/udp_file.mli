(** UDP file transfer with NAK-based recovery — the paper's alternative
    transport that minimises client-to-server packets and so recovers most of
    StopWatch's file-download cost (Fig. 5's "UDP" curves).

    The client sends one request; the server reads the file and streams
    datagrams; the client NAKs only on detected gaps (go-back-N resend). *)

type Sw_net.Packet.payload +=
  | Udp_request of { file : int; size : int }
  | Udp_data of { file : int; offset : int; len : int; last : bool }
  | Udp_nak of { file : int; from_offset : int }

(** Datagram payload bytes per packet. *)
val datagram_bytes : int

(** [server ?chunk_bytes ?inter_send_branches ()] builds the server guest
    application. [inter_send_branches] models the per-datagram send-loop CPU
    cost (default 2000). *)
val server : ?chunk_bytes:int -> ?inter_send_branches:int64 -> unit -> Sw_vm.App.factory

(** [fetch host ~dst ~file ~size ~on_done ()] requests the file and calls
    [on_done ~elapsed_ms ~naks] when all bytes have arrived. Gaps are NAKed
    after [nak_delay] (default 20 ms). *)
val fetch :
  Stopwatch.Host.t ->
  dst:Sw_net.Address.t ->
  file:int ->
  size:int ->
  ?nak_delay:Sw_sim.Time.t ->
  on_done:(elapsed_ms:float -> naks:int -> unit) ->
  unit ->
  unit
