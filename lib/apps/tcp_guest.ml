module App = Sw_vm.App
module Address = Sw_net.Address
module Packet = Sw_net.Packet

type conn_key = { peer : Address.t; conn : int }

type conn_event =
  | Accepted of conn_key
  | Msg of { key : conn_key; payload : Packet.payload; bytes : int }
  | Conn_closed of conn_key

let tag_base = 1_000_000

type t = {
  config : Tcp.config;
  conns : (conn_key, Tcp.t) Hashtbl.t;
  timers : (int, conn_key * int) Hashtbl.t;  (** guest tag -> (conn, tcp id) *)
  mutable next_tag : int;
}

let create ?(config = Tcp.default_config) () =
  { config; conns = Hashtbl.create 8; timers = Hashtbl.create 8; next_tag = tag_base }

let open_conns t = Hashtbl.length t.conns

(* Translate TCP outputs into guest actions + connection events. *)
let run_outputs t key outputs =
  let events = ref [] and actions = ref [] in
  List.iter
    (fun output ->
      match output with
      | Tcp.Emit seg ->
          actions :=
            App.Send
              { dst = key.peer; size = Tcp.seg_size t.config seg; payload = Tcp.Tcp seg }
            :: !actions
      | Tcp.Deliver { payload; bytes } -> events := Msg { key; payload; bytes } :: !events
      | Tcp.Set_timer { id; after } ->
          let tag = t.next_tag in
          t.next_tag <- tag + 1;
          Hashtbl.replace t.timers tag (key, id);
          actions := App.Set_timer { after; tag } :: !actions
      | Tcp.Connected -> events := Accepted key :: !events
      | Tcp.Closed ->
          Hashtbl.remove t.conns key;
          events := Conn_closed key :: !events)
    outputs;
  (List.rev !events, List.rev !actions)

let endpoint_for t key ~create_passive =
  match Hashtbl.find_opt t.conns key with
  | Some ep -> Some ep
  | None ->
      if create_passive then begin
        let ep = Tcp.create ~config:t.config ~conn:key.conn ~initiator:false in
        Hashtbl.add t.conns key ep;
        Some ep
      end
      else None

let handle t event =
  match event with
  | App.Packet_in pkt -> (
      match pkt.Packet.payload with
      | Tcp.Tcp seg -> (
          let key = { peer = pkt.Packet.src; conn = seg.Tcp.conn } in
          match endpoint_for t key ~create_passive:(seg.Tcp.kind = Tcp.Syn) with
          | None -> Some ([], [])
          | Some ep -> Some (run_outputs t key (Tcp.step ep (Tcp.Seg_in seg))))
      | _ -> None)
  | App.Timer { tag } -> (
      match Hashtbl.find_opt t.timers tag with
      | None -> if tag >= tag_base then Some ([], []) else None
      | Some (key, id) -> (
          Hashtbl.remove t.timers tag;
          match Hashtbl.find_opt t.conns key with
          | None -> Some ([], [])
          | Some ep -> Some (run_outputs t key (Tcp.step ep (Tcp.Timer_fired id)))))
  | App.Boot | App.Disk_done _ | App.Dma_done _ | App.Tick -> None

let send t key ~payload ~bytes =
  match Hashtbl.find_opt t.conns key with
  | None -> invalid_arg "Tcp_guest.send: unknown connection"
  | Some ep -> snd (run_outputs t key (Tcp.step ep (Tcp.Send_msg { payload; bytes })))

let close t key =
  match Hashtbl.find_opt t.conns key with
  | None -> []
  | Some ep -> snd (run_outputs t key (Tcp.step ep Tcp.Close))
