module Host = Stopwatch.Host
module Packet = Sw_net.Packet

type conn = {
  registry : t;
  id : int;
  dst : Sw_net.Address.t;
  ep : Tcp.t;
  on_connected : unit -> unit;
  on_closed : unit -> unit;
  on_msg : payload:Packet.payload -> bytes:int -> unit;
}

and t = {
  host : Host.t;
  config : Tcp.config;
  fallback : Packet.t -> unit;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
}

let rec run_outputs c outputs =
  List.iter
    (fun output ->
      match output with
      | Tcp.Emit seg ->
          Host.send c.registry.host ~dst:c.dst
            ~size:(Tcp.seg_size c.registry.config seg)
            (Tcp.Tcp seg)
      | Tcp.Deliver { payload; bytes } -> c.on_msg ~payload ~bytes
      | Tcp.Set_timer { id; after } ->
          Host.after c.registry.host after (fun () ->
              run_outputs c (Tcp.step c.ep (Tcp.Timer_fired id)))
      | Tcp.Connected -> c.on_connected ()
      | Tcp.Closed ->
          Hashtbl.remove c.registry.conns c.id;
          c.on_closed ())
    outputs

let handle t pkt =
  match pkt.Packet.payload with
  | Tcp.Tcp seg -> (
      match Hashtbl.find_opt t.conns seg.Tcp.conn with
      | Some c -> run_outputs c (Tcp.step c.ep (Tcp.Seg_in seg))
      | None -> () (* Late segment for a closed connection. *))
  | _ -> t.fallback pkt

let attach host ?(config = Tcp.default_config) ?(fallback = fun _ -> ()) () =
  let t = { host; config; fallback; conns = Hashtbl.create 8; next_conn = 1 } in
  Host.set_handler host (handle t);
  t

let host t = t.host

let connect t ~dst ?(on_connected = fun () -> ()) ?(on_closed = fun () -> ())
    ~on_msg () =
  let id = t.next_conn in
  t.next_conn <- id + 1;
  let ep = Tcp.create ~config:t.config ~conn:id ~initiator:true in
  let c = { registry = t; id; dst; ep; on_connected; on_closed; on_msg } in
  Hashtbl.add t.conns id c;
  run_outputs c (Tcp.step ep Tcp.Open);
  c

let send c ~payload ~bytes = run_outputs c (Tcp.step c.ep (Tcp.Send_msg { payload; bytes }))
let close c = run_outputs c (Tcp.step c.ep Tcp.Close)
let is_established c = Tcp.is_established c.ep
let conn_id c = c.id
