(** A TCP-like reliable byte-stream transport as a pure state machine.

    The same machine runs inside deterministic guest applications (via
    {!Tcp_guest}) and on external hosts (via {!Tcp_host}); it communicates
    with its environment only through explicit inputs and outputs, never
    through ambient time or randomness, so guest replicas stay in lockstep.

    Modelled behaviour — the parts that matter for StopWatch's costs:
    three-way handshake; segmentation at the MSS; a congestion window opening
    from [init_cwnd_segs] by slow start up to [max_window]; cumulative
    acknowledgements with delayed ACKs (every [ack_every] segments or after
    [delayed_ack]); optional Nagle coalescing of sub-MSS messages; in-order
    delivery with a reordering buffer. Loss recovery is not modelled: the
    simulated fabric is lossless and FIFO per link (jitter can still reorder
    packets across links, hence the buffer).

    Application payloads ride the stream as sized messages: a message's
    payload is attached to the segment carrying its last byte and delivered
    when the receive stream reaches it. *)

type config = {
  mss : int;
  header : int;  (** Per-segment wire overhead. *)
  max_window : int;  (** Send-window cap in bytes. *)
  init_cwnd_segs : int;
  ack_every : int;  (** ACK after this many unacknowledged segments. *)
  delayed_ack : Sw_sim.Time.t;  (** Delayed-ACK timeout. *)
  nagle : bool;
}

val default_config : config

type kind = Syn | Synack | Data | Ack | Fin | Finack

type seg = {
  conn : int;
  kind : kind;
  seq : int;  (** First data byte (Data). *)
  len : int;
  ack : int;  (** Cumulative ACK, piggybacked on everything after Syn. *)
  msg_end : Sw_net.Packet.payload option;
      (** Message completing at [seq + len]. *)
}

type Sw_net.Packet.payload += Tcp of seg

(** Wire size of a segment. *)
val seg_size : config -> seg -> int

type input =
  | Open  (** Active open (initiator side). *)
  | Seg_in of seg
  | Send_msg of { payload : Sw_net.Packet.payload; bytes : int }
  | Timer_fired of int
  | Close

type output =
  | Emit of seg
  | Deliver of { payload : Sw_net.Packet.payload; bytes : int }
  | Set_timer of { id : int; after : Sw_sim.Time.t }
  | Connected
  | Closed

type t

(** [create ~config ~conn ~initiator] makes one endpoint of connection
    [conn]. Exactly one side must be the initiator. *)
val create : config:config -> conn:int -> initiator:bool -> t

val conn : t -> int
val is_established : t -> bool
val bytes_delivered : t -> int
val bytes_acked : t -> int

(** Drive the machine; outputs must be performed in order. *)
val step : t -> input -> output list
