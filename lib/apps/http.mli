(** HTTP-like file service over {!Tcp} — the paper's Apache file-download
    workload (Fig. 5).

    The server reads the requested file from disk in chunks (cold cache, as
    in the paper) and streams the response over the connection. The client
    measures wall-clock retrieval time at an external host. *)

type Sw_net.Packet.payload +=
  | Http_get of { file : int; size : int }
  | Http_response of { file : int }

(** [server ?tcp ?chunk_bytes ()] builds the server guest application.
    [chunk_bytes] is the disk-read granularity (default 1 MiB). *)
val server : ?tcp:Tcp.config -> ?chunk_bytes:int -> unit -> Sw_vm.App.factory

(** [download t ~dst ~file ~size ~on_done ()] opens a connection, requests
    the file, and calls [on_done ~elapsed_ms] when the full response has
    arrived. *)
val download :
  Tcp_host.t ->
  dst:Sw_net.Address.t ->
  file:int ->
  size:int ->
  on_done:(elapsed_ms:float -> unit) ->
  unit ->
  unit
