(** Adapter running {!Tcp} endpoints inside a deterministic guest
    application.

    A guest app owns one [Tcp_guest.t], forwards every {!Sw_vm.App.event} to
    {!handle}, and reacts to the returned connection events. All effects come
    back as guest actions to append to the app's action list. Timer tags at
    or above {!tag_base} are reserved for this adapter. *)

type conn_key = { peer : Sw_net.Address.t; conn : int }

type conn_event =
  | Accepted of conn_key  (** A passive-open connection completed. *)
  | Msg of { key : conn_key; payload : Sw_net.Packet.payload; bytes : int }
  | Conn_closed of conn_key

type t

val create : ?config:Tcp.config -> unit -> t
val tag_base : int

(** [handle t ev] consumes a guest event. [None] means the event does not
    belong to the TCP adapter (the app should process it itself); otherwise
    the connection events and the actions to emit. Unknown-connection [Syn]
    segments create passive endpoints automatically. *)
val handle : t -> Sw_vm.App.event -> (conn_event list * Sw_vm.App.action list) option

(** [send t key ~payload ~bytes] enqueues an application message. *)
val send : t -> conn_key -> payload:Sw_net.Packet.payload -> bytes:int -> Sw_vm.App.action list

val close : t -> conn_key -> Sw_vm.App.action list

(** Open connections (for tests/diagnostics). *)
val open_conns : t -> int
