module App = Sw_vm.App
module Packet = Sw_net.Packet
module Time = Sw_sim.Time
module Host = Stopwatch.Host

type Packet.payload +=
  | Udp_request of { file : int; size : int }
  | Udp_data of { file : int; offset : int; len : int; last : bool }
  | Udp_nak of { file : int; from_offset : int }

let datagram_bytes = 1400
let header = 28

type transfer = {
  client : Sw_net.Address.t;
  file : int;
  size : int;
  mutable read_offset : int;  (** Bytes read from disk so far. *)
  mutable sent_offset : int;  (** Bytes already streamed out. *)
}

type state = {
  transfers : (int, transfer) Hashtbl.t;  (** keyed by disk tag *)
  mutable next_tag : int;
  chunk_bytes : int;
  inter_send_branches : int64;
}

(* Emit the stream of datagrams for byte range [from, upto). *)
let stream st tr ~from ~upto =
  let rec go offset acc =
    if offset >= upto then List.rev acc
    else begin
      let len = Stdlib.min datagram_bytes (upto - offset) in
      let last = offset + len >= tr.size in
      let send =
        App.Send
          {
            dst = tr.client;
            size = len + header;
            payload = Udp_data { file = tr.file; offset; len; last };
          }
      in
      go (offset + len) (send :: App.Compute st.inter_send_branches :: acc)
    end
  in
  go from []

let server ?(chunk_bytes = 256 * 1024) ?(inter_send_branches = 2000L) () () =
  let st =
    {
      transfers = Hashtbl.create 8;
      next_tag = 0;
      chunk_bytes;
      inter_send_branches;
    }
  in
  (* Transfers kept (also after completion) for NAK-triggered resends. *)
  let by_file : (int, transfer) Hashtbl.t = Hashtbl.create 8 in
  (* A chunk is in: stream it out and start the next read, overlapping disk
     and network. *)
  let continue_read tag =
    match Hashtbl.find_opt st.transfers tag with
    | None -> []
    | Some tr ->
        let sends = stream st tr ~from:tr.sent_offset ~upto:tr.read_offset in
        tr.sent_offset <- tr.read_offset;
        if tr.read_offset < tr.size then begin
          let chunk = Stdlib.min (tr.size - tr.read_offset) st.chunk_bytes in
          tr.read_offset <- tr.read_offset + chunk;
          App.Disk_read { bytes = chunk; sequential = true; tag } :: sends
        end
        else begin
          Hashtbl.remove st.transfers tag;
          sends
        end
  in
  {
    App.handle =
      (fun ~virt_now:_ event ->
        match event with
        | App.Packet_in pkt -> (
            match pkt.Packet.payload with
            | Udp_request { file; size } ->
                let tag = st.next_tag in
                st.next_tag <- tag + 1;
                let tr =
                  { client = pkt.Packet.src; file; size; read_offset = 0; sent_offset = 0 }
                in
                let chunk = Stdlib.min size st.chunk_bytes in
                tr.read_offset <- chunk;
                Hashtbl.replace st.transfers tag tr;
                Hashtbl.replace by_file file tr;
                [ App.Disk_read { bytes = chunk; sequential = false; tag } ]
            | Udp_nak { file; from_offset } -> (
                (* Resend whatever has already been read. *)
                match Hashtbl.find_opt by_file file with
                | Some tr when tr.sent_offset > from_offset ->
                    stream st tr ~from:from_offset ~upto:tr.sent_offset
                | _ -> [])
            | _ -> [])
        | App.Disk_done { tag } -> continue_read tag
        | _ -> []);
  }

let fetch host ~dst ~file ~size ?(nak_delay = Time.ms 20) ~on_done () =
  let started = Host.now host in
  let next_expected = ref 0 in
  let naks = ref 0 in
  let finished = ref false in
  (* Received-but-not-yet-contiguous datagrams: offset -> end offset. *)
  let stashed : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec advance () =
    match Hashtbl.find_opt stashed !next_expected with
    | Some stop ->
        Hashtbl.remove stashed !next_expected;
        next_expected := stop;
        advance ()
    | None -> ()
  in
  let rec watchdog expected_at_arm =
    Host.after host nak_delay (fun () ->
        if (not !finished) && !next_expected = expected_at_arm then begin
          incr naks;
          Host.send host ~dst ~size:64 (Udp_nak { file; from_offset = !next_expected });
          watchdog !next_expected
        end)
  in
  Host.set_handler host (fun pkt ->
      match pkt.Packet.payload with
      | Udp_data { file = f; offset; len; _ } when f = file && not !finished ->
          if offset > !next_expected then begin
            Hashtbl.replace stashed offset
              (Stdlib.max (offset + len)
                 (match Hashtbl.find_opt stashed offset with Some e -> e | None -> 0));
            watchdog !next_expected
          end
          else if offset + len > !next_expected then begin
            next_expected := offset + len;
            advance ()
          end;
          if !next_expected >= size then begin
            finished := true;
            let elapsed_ms = Time.to_float_ms (Time.sub (Host.now host) started) in
            on_done ~elapsed_ms ~naks:!naks
          end
      | _ -> ());
  Host.send host ~dst ~size:(64 + header) (Udp_request { file; size })

let () =
  List.iter Sw_sim.Graft.register
    [
      [%extension_constructor Udp_request];
      [%extension_constructor Udp_data];
      [%extension_constructor Udp_nak];
    ]
