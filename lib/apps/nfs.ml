module App = Sw_vm.App
module Packet = Sw_net.Packet
module Time = Sw_sim.Time
module Host = Stopwatch.Host

type op = Setattr | Lookup | Write | Getattr | Read | Create

let paper_mix =
  [
    (Setattr, 0.1137);
    (Lookup, 0.2407);
    (Write, 0.1192);
    (Getattr, 0.0793);
    (Read, 0.3234);
    (Create, 0.1237);
  ]

type Packet.payload +=
  | Nfs_call of { xid : int; op : op }
  | Nfs_reply of { xid : int; op : op }

let transfer_bytes = 8192

let call_bytes = function
  | Write -> transfer_bytes + 200
  | _ -> 160

let reply_bytes = function
  | Read -> transfer_bytes + 200
  | _ -> 160

let compute_of_op = function Lookup | Getattr -> 80_000L | _ -> 30_000L

(* Deterministic per-xid hash in [0, 1) — identical across replicas. *)
let xid_hash xid = float_of_int (xid * 2654435761 land 0xFFFFF) /. 1048576.

(* Buffer-cache hit rate for reads; misses go to the platter. *)
let read_cache_hit_rate = 0.7

type pending_op = { key : Tcp_guest.conn_key; xid : int; op : op }

(* The server ACKs every segment: RPC calls are latency-critical and an ACK
   unblocks the client's Nagle-held batch immediately. *)
let server_tcp_config = { Tcp.default_config with Tcp.ack_every = 1 }

let server ?(tcp = server_tcp_config) () () =
  let tcpd = Tcp_guest.create ~config:tcp () in
  let pending : (int, pending_op) Hashtbl.t = Hashtbl.create 16 in
  let next_tag = ref 0 in
  let reply p =
    Tcp_guest.send tcpd p.key
      ~payload:(Nfs_reply { xid = p.xid; op = p.op })
      ~bytes:(reply_bytes p.op)
  in
  (* Server model mirrors a real NFS server's I/O behaviour: reads hit the
     buffer cache most of the time and block on disk otherwise; writes,
     creates and setattrs persist via the journal (sequential, write-behind)
     and reply without waiting for the platter. *)
  let handle_call key xid op =
    let p = { key; xid; op } in
    let compute = App.Compute (compute_of_op op) in
    match op with
    | Read when xid_hash xid >= read_cache_hit_rate ->
        let tag = !next_tag in
        incr next_tag;
        Hashtbl.replace pending tag p;
        [ compute; App.Disk_read { bytes = transfer_bytes; sequential = false; tag } ]
    | Read -> compute :: reply p
    | Write | Create | Setattr ->
        let tag = !next_tag in
        incr next_tag;
        let bytes = if op = Write then transfer_bytes else 512 in
        (compute :: App.Disk_write { bytes; sequential = true; tag } :: reply p)
    | Lookup | Getattr -> compute :: reply p
  in
  let handle_conn_event = function
    | Tcp_guest.Msg { key; payload = Nfs_call { xid; op }; _ } -> handle_call key xid op
    | Tcp_guest.Msg _ | Tcp_guest.Accepted _ | Tcp_guest.Conn_closed _ -> []
  in
  {
    App.handle =
      (fun ~virt_now:_ event ->
        match Tcp_guest.handle tcpd event with
        | Some (conn_events, actions) ->
            actions @ List.concat_map handle_conn_event conn_events
        | None -> (
            match event with
            | App.Disk_done { tag } -> (
                match Hashtbl.find_opt pending tag with
                | Some p ->
                    Hashtbl.remove pending tag;
                    reply p
                | None -> [])
            | _ -> []));
  }

let client_tcp_config = { Tcp.default_config with Tcp.nagle = true }

type client_stats = {
  issued : int;
  completed : int;
  latencies_ms : float array;
}

let pick_op rng mix =
  let u = Sw_sim.Prng.float rng in
  let rec walk acc = function
    | [] -> Read
    | (op, w) :: rest -> if u < acc +. w then op else walk (acc +. w) rest
  in
  walk 0. mix

let run_client t ~dst ~rate_per_s ~procs ~ops ?(mix = paper_mix) ?(seed = 0x4E_F5L)
    () =
  if rate_per_s <= 0. then invalid_arg "Nfs.run_client: rate must be positive";
  if procs < 1 then invalid_arg "Nfs.run_client: need >= 1 process";
  let host = Tcp_host.host t in
  let rng = Sw_sim.Prng.create seed in
  let issued = ref 0 and completed = ref 0 in
  let latencies = Sw_sim.Samples.create () in
  let starts : (int, Time.t) Hashtbl.t = Hashtbl.create 64 in
  let conns =
    Array.init procs (fun _ ->
        Tcp_host.connect t ~dst
          ~on_msg:(fun ~payload ~bytes:_ ->
            match payload with
            | Nfs_reply { xid; _ } -> (
                match Hashtbl.find_opt starts xid with
                | Some t0 ->
                    Hashtbl.remove starts xid;
                    incr completed;
                    Sw_sim.Samples.add latencies
                      (Time.to_float_ms (Time.sub (Host.now host) t0))
                | None -> ())
            | _ -> ())
          ())
  in
  let gap = Time.of_float_s (1. /. rate_per_s) in
  let rec issue n =
    if n < ops then
      Host.after host gap (fun () ->
          let xid = n in
          let op = pick_op rng mix in
          let conn = conns.(n mod procs) in
          Hashtbl.replace starts xid (Host.now host);
          incr issued;
          Tcp_host.send conn ~payload:(Nfs_call { xid; op }) ~bytes:(call_bytes op);
          issue (n + 1))
  in
  issue 0;
  fun () ->
    {
      issued = !issued;
      completed = !completed;
      latencies_ms = Sw_sim.Samples.to_array latencies;
    }

let () =
  List.iter Sw_sim.Graft.register
    [ [%extension_constructor Nfs_call]; [%extension_constructor Nfs_reply] ]
