(** PARSEC-like computational workloads (paper Sec. VII-D, Fig. 7).

    The real PARSEC binaries cannot run on a simulated CPU, so each
    application is modelled as the paper characterises it: a total amount of
    computation interleaved with a measured number of disk I/Os (Fig. 7(b)).
    The compute totals are calibrated so that the simulated baseline runtimes
    land near the paper's Fig. 7(a) baseline bars; StopWatch's overhead then
    emerges from the disk-interrupt delivery machinery (delta_d), which is
    the paper's explanation of the overhead.

    The app signals completion by sending a [Job_done] packet to a collector
    host, so experiments measure completion in real time — through the
    egress median in StopWatch mode, exactly like an external observer. *)

type profile = {
  name : string;
  compute_branches : int64;  (** Total computation (1 branch = 1 ns here). *)
  io_count : int;  (** Disk interrupts during the run (Fig. 7(b)). *)
  io_bytes : int;  (** Bytes per disk request. *)
  random_io_fraction : float;  (** Fraction of non-sequential requests. *)
  write_fraction : float;  (** Fraction of writes among requests. *)
}

type Sw_net.Packet.payload += Job_done of { name : string }

(** The five applications used in the paper, with Fig. 7(b)'s interrupt
    counts: ferret 31, blackscholes 38, canneal 183, dedup 293,
    streamcluster 27. *)
val ferret : profile

val blackscholes : profile
val canneal : profile
val dedup : profile
val streamcluster : profile
val all_profiles : profile list

(** [app profile ~collector] builds the guest application: it starts at
    boot, alternates compute phases with disk I/O, and reports to
    [collector] when done. *)
val app : profile -> collector:Sw_net.Address.t -> Sw_vm.App.factory
