module Time = Sw_sim.Time

type config = {
  mss : int;
  header : int;
  max_window : int;
  init_cwnd_segs : int;
  ack_every : int;
  delayed_ack : Time.t;
  nagle : bool;
}

let default_config =
  {
    mss = 1460;
    header = 40;
    max_window = 65536;
    init_cwnd_segs = 2;
    ack_every = 2;
    delayed_ack = Time.ms 40;
    nagle = false;
  }

type kind = Syn | Synack | Data | Ack | Fin | Finack

type seg = {
  conn : int;
  kind : kind;
  seq : int;
  len : int;
  ack : int;
  msg_end : Sw_net.Packet.payload option;
}

type Sw_net.Packet.payload += Tcp of seg

let seg_size config seg = config.header + seg.len

type input =
  | Open
  | Seg_in of seg
  | Send_msg of { payload : Sw_net.Packet.payload; bytes : int }
  | Timer_fired of int
  | Close

type output =
  | Emit of seg
  | Deliver of { payload : Sw_net.Packet.payload; bytes : int }
  | Set_timer of { id : int; after : Sw_sim.Time.t }
  | Connected
  | Closed

type t = {
  config : config;
  conn : int;
  initiator : bool;
  mutable established : bool;
  mutable closed : bool;
  (* Send side *)
  mutable snd_enqueued : int;  (** Stream bytes accepted from the app. *)
  mutable snd_sent : int;  (** Stream bytes emitted in segments. *)
  mutable snd_una : int;  (** Lowest unacknowledged byte. *)
  mutable cwnd : int;
  mutable msg_ends : (int * Sw_net.Packet.payload) list;
      (** Pending message boundaries (stream offset, payload), ascending. *)
  mutable fin_pending : bool;
  mutable fin_sent : bool;
  (* Receive side *)
  mutable rcv_next : int;
  mutable ooo : seg list;  (** Out-of-order segments, ascending by seq. *)
  mutable rcv_msg_start : int;  (** Start offset of the message in progress. *)
  mutable unacked_segs : int;
  mutable ack_timer : int option;  (** Pending delayed-ACK timer id. *)
  mutable next_timer_id : int;
}

let create ~config ~conn ~initiator =
  {
    config;
    conn;
    initiator;
    established = false;
    closed = false;
    snd_enqueued = 0;
    snd_sent = 0;
    snd_una = 0;
    cwnd = config.init_cwnd_segs * config.mss;
    msg_ends = [];
    fin_pending = false;
    fin_sent = false;
    rcv_next = 0;
    ooo = [];
    rcv_msg_start = 0;
    unacked_segs = 0;
    ack_timer = None;
    next_timer_id = 0;
  }

let conn t = t.conn
let is_established t = t.established
let bytes_delivered t = t.rcv_next
let bytes_acked t = t.snd_una

let mk t kind ~seq ~len ~msg_end =
  { conn = t.conn; kind; seq; len; ack = t.rcv_next; msg_end }

(* Emit as many data segments as the window allows. *)
let pump t =
  let outputs = ref [] in
  let continue = ref t.established in
  while !continue do
    let window = Stdlib.min t.cwnd t.config.max_window in
    let in_flight = t.snd_sent - t.snd_una in
    let available = t.snd_enqueued - t.snd_sent in
    let len = Stdlib.min t.config.mss (Stdlib.min available (window - in_flight)) in
    let nagle_hold =
      t.config.nagle && len < t.config.mss && len = available && in_flight > 0
    in
    if len <= 0 || nagle_hold then continue := false
    else begin
      (* Never let a segment span past a message boundary: truncate so the
         boundary's payload marker rides the segment ending exactly there.
         Pending boundaries always lie strictly beyond snd_sent. *)
      let seg_end = t.snd_sent + len in
      let len, msg_end =
        match t.msg_ends with
        | (off, payload) :: rest when off <= seg_end ->
            t.msg_ends <- rest;
            (off - t.snd_sent, Some payload)
        | _ -> (len, None)
      in
      outputs := mk t Data ~seq:t.snd_sent ~len ~msg_end :: !outputs;
      t.snd_sent <- t.snd_sent + len
    end
  done;
  (* Send FIN once everything is out and acknowledged. *)
  if
    t.fin_pending && (not t.fin_sent) && t.established
    && t.snd_sent = t.snd_enqueued
    && t.snd_una = t.snd_sent
  then begin
    t.fin_sent <- true;
    outputs := mk t Fin ~seq:t.snd_sent ~len:0 ~msg_end:None :: !outputs
  end;
  List.rev !outputs

let handle_ack t ack =
  if ack > t.snd_una then begin
    let newly = ack - t.snd_una in
    t.snd_una <- ack;
    (* Slow start: grow by one MSS per MSS acknowledged, up to the cap. *)
    t.cwnd <- Stdlib.min t.config.max_window (t.cwnd + Stdlib.min newly t.config.mss)
  end

(* Deliver message payloads whose boundary we have now passed; in-order
   segments carry their own marker. *)
let deliver_marker t seg outputs =
  match seg.msg_end with
  | Some payload ->
      let bytes = seg.seq + seg.len - t.rcv_msg_start in
      t.rcv_msg_start <- seg.seq + seg.len;
      outputs @ [ Deliver { payload; bytes } ]
  | None -> outputs

let rec drain_ooo t outputs =
  match t.ooo with
  | seg :: rest when seg.seq <= t.rcv_next ->
      t.ooo <- rest;
      if seg.seq + seg.len > t.rcv_next then begin
        t.rcv_next <- seg.seq + seg.len;
        let outputs = deliver_marker t seg outputs in
        drain_ooo t outputs
      end
      else drain_ooo t outputs
  | _ -> outputs

let insert_ooo t seg =
  let rec insert = function
    | [] -> [ seg ]
    | hd :: rest -> if seg.seq < hd.seq then seg :: hd :: rest else hd :: insert rest
  in
  t.ooo <- insert t.ooo

let ack_policy t outputs =
  t.unacked_segs <- t.unacked_segs + 1;
  if t.unacked_segs >= t.config.ack_every then begin
    t.unacked_segs <- 0;
    t.ack_timer <- None;
    outputs @ [ Emit (mk t Ack ~seq:0 ~len:0 ~msg_end:None) ]
  end
  else begin
    match t.ack_timer with
    | Some _ -> outputs
    | None ->
        let id = t.next_timer_id in
        t.next_timer_id <- id + 1;
        t.ack_timer <- Some id;
        outputs @ [ Set_timer { id; after = t.config.delayed_ack } ]
  end

let on_data t seg =
  handle_ack t seg.ack;
  let outputs = [] in
  let outputs =
    if seg.seq = t.rcv_next then begin
      t.rcv_next <- seg.seq + seg.len;
      let outputs = deliver_marker t seg outputs in
      drain_ooo t outputs
    end
    else if seg.seq > t.rcv_next then begin
      insert_ooo t seg;
      outputs
    end
    else outputs (* Duplicate; the ACK below covers it. *)
  in
  let outputs = ack_policy t outputs in
  outputs @ List.map (fun s -> Emit s) (pump t)

let step t input =
  if t.closed then []
  else
    match input with
    | Open ->
        if not t.initiator then invalid_arg "Tcp.step: Open on passive endpoint";
        [ Emit (mk t Syn ~seq:0 ~len:0 ~msg_end:None) ]
    | Send_msg { payload; bytes } ->
        if bytes <= 0 then invalid_arg "Tcp.step: message must have bytes";
        t.snd_enqueued <- t.snd_enqueued + bytes;
        t.msg_ends <- t.msg_ends @ [ (t.snd_enqueued, payload) ];
        List.map (fun seg -> Emit seg) (pump t)
    | Close ->
        t.fin_pending <- true;
        List.map (fun seg -> Emit seg) (pump t)
    | Timer_fired id -> (
        match t.ack_timer with
        | Some pending when pending = id ->
            t.ack_timer <- None;
            t.unacked_segs <- 0;
            [ Emit (mk t Ack ~seq:0 ~len:0 ~msg_end:None) ]
        | _ -> [])
    | Seg_in seg -> (
        match seg.kind with
        | Syn ->
            if t.initiator then []
            else [ Emit (mk t Synack ~seq:0 ~len:0 ~msg_end:None) ]
        | Synack ->
            if t.established then []
            else begin
              t.established <- true;
              Connected
              :: Emit (mk t Ack ~seq:0 ~len:0 ~msg_end:None)
              :: List.map (fun s -> Emit s) (pump t)
            end
        | Ack ->
            let was_established = t.established in
            if not t.established then t.established <- true;
            handle_ack t seg.ack;
            let outputs = List.map (fun s -> Emit s) (pump t) in
            let outputs =
              if (not was_established) && not t.initiator then Connected :: outputs
              else outputs
            in
            if t.fin_sent && t.snd_una = t.snd_sent && seg.ack >= t.snd_sent then begin
              t.closed <- true;
              outputs @ [ Closed ]
            end
            else outputs
        | Data -> on_data t seg
        | Fin ->
            handle_ack t seg.ack;
            t.closed <- true;
            [ Emit (mk t Finack ~seq:0 ~len:0 ~msg_end:None); Closed ]
        | Finack ->
            if t.fin_sent then begin
              t.closed <- true;
              [ Closed ]
            end
            else [])

let () = Sw_sim.Graft.register [%extension_constructor Tcp]
