module App = Sw_vm.App
module Packet = Sw_net.Packet
module Time = Sw_sim.Time

type Packet.payload +=
  | Http_get of { file : int; size : int }
  | Http_response of { file : int }

type request = {
  key : Tcp_guest.conn_key;
  file : int;
  size : int;
  mutable read_offset : int;  (** Bytes read from disk so far. *)
  mutable sent_offset : int;  (** Bytes already handed to TCP. *)
}

type state = {
  tcp : Tcp_guest.t;
  requests : (int, request) Hashtbl.t;  (** keyed by disk tag *)
  mutable next_tag : int;
  chunk_bytes : int;
}

let header_bytes = 200

let server ?tcp ?(chunk_bytes = 256 * 1024) () () =
  let st =
    {
      tcp = Tcp_guest.create ?config:tcp ();
      requests = Hashtbl.create 8;
      next_tag = 0;
      chunk_bytes;
    }
  in
  let start_request key file size =
    let tag = st.next_tag in
    st.next_tag <- tag + 1;
    let req = { key; file; size; read_offset = 0; sent_offset = 0 } in
    Hashtbl.replace st.requests tag req;
    let chunk = Stdlib.min size st.chunk_bytes in
    req.read_offset <- chunk;
    [ App.Disk_read { bytes = chunk; sequential = false; tag } ]
  in
  (* A chunk has arrived from disk: hand it to TCP immediately and start the
     next read, overlapping disk and network (as a real server does). *)
  let continue_request tag =
    match Hashtbl.find_opt st.requests tag with
    | None -> []
    | Some req ->
        let chunk_len = req.read_offset - req.sent_offset in
        let first = req.sent_offset = 0 in
        req.sent_offset <- req.read_offset;
        let send =
          Tcp_guest.send st.tcp req.key
            ~payload:(Http_response { file = req.file })
            ~bytes:(chunk_len + if first then header_bytes else 0)
        in
        if req.read_offset < req.size then begin
          let chunk = Stdlib.min (req.size - req.read_offset) st.chunk_bytes in
          req.read_offset <- req.read_offset + chunk;
          App.Disk_read { bytes = chunk; sequential = true; tag } :: send
        end
        else begin
          Hashtbl.remove st.requests tag;
          send
        end
  in
  let handle_conn_event ev =
    match ev with
    | Tcp_guest.Msg { key; payload = Http_get { file; size }; _ } ->
        start_request key file size
    | Tcp_guest.Msg _ | Tcp_guest.Accepted _ | Tcp_guest.Conn_closed _ -> []
  in
  {
    App.handle =
      (fun ~virt_now:_ event ->
        match Tcp_guest.handle st.tcp event with
        | Some (conn_events, actions) ->
            actions @ List.concat_map handle_conn_event conn_events
        | None -> (
            match event with
            | App.Disk_done { tag } -> continue_request tag
            | _ -> []));
  }

let download t ~dst ~file ~size ~on_done () =
  let host = Tcp_host.host t in
  let started = Stopwatch.Host.now host in
  let conn_ref = ref None in
  let received = ref 0 in
  let on_msg ~payload ~bytes =
    match payload with
    | Http_response { file = f } when f = file ->
        received := !received + bytes;
        if !received >= size + header_bytes then begin
          let elapsed_ms =
            Time.to_float_ms (Time.sub (Stopwatch.Host.now host) started)
          in
          Option.iter Tcp_host.close !conn_ref;
          on_done ~elapsed_ms
        end
    | _ -> ()
  in
  let conn =
    Tcp_host.connect t ~dst
      ~on_connected:(fun () ->
        match !conn_ref with
        | Some c ->
            Tcp_host.send c ~payload:(Http_get { file; size }) ~bytes:header_bytes
        | None -> ())
      ~on_msg ()
  in
  conn_ref := Some conn

let () =
  List.iter Sw_sim.Graft.register
    [
      [%extension_constructor Http_get]; [%extension_constructor Http_response];
    ]
