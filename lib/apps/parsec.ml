module App = Sw_vm.App

type profile = {
  name : string;
  compute_branches : int64;
  io_count : int;
  io_bytes : int;
  random_io_fraction : float;
  write_fraction : float;
}

type Sw_net.Packet.payload += Job_done of { name : string }

(* compute_branches are calibrated so the simulated baseline runtimes land
   near Fig. 7(a)'s baseline bars (171/177/1530/3730/290 ms) given the
   default disk model (avg random access ~3.7 ms, sequential ~0.25 ms);
   see bench/fig7. *)
let ferret =
  {
    name = "ferret";
    compute_branches = 120_000_000L;
    io_count = 31;
    io_bytes = 16384;
    random_io_fraction = 0.3;
    write_fraction = 0.1;
  }

let blackscholes =
  { ferret with name = "blackscholes"; compute_branches = 114_000_000L; io_count = 38 }

let canneal =
  {
    ferret with
    name = "canneal";
    compute_branches = 1_228_000_000L;
    io_count = 183;
  }

let dedup =
  {
    ferret with
    name = "dedup";
    compute_branches = 3_246_000_000L;
    io_count = 293;
    write_fraction = 0.4;
  }

let streamcluster =
  {
    ferret with
    name = "streamcluster";
    compute_branches = 245_000_000L;
    io_count = 27;
  }

let all_profiles = [ ferret; blackscholes; canneal; dedup; streamcluster ]

(* Deterministic pseudo-random decision for phase i — identical across
   replicas by construction. *)
let phase_hash i = i * 2654435761 land 0x3FFFFFFF

let app profile ~collector () =
  if profile.io_count < 0 then invalid_arg "Parsec.app: negative io_count";
  let phase = ref 0 in
  let compute_per_phase =
    if profile.io_count = 0 then profile.compute_branches
    else Int64.div profile.compute_branches (Int64.of_int profile.io_count)
  in
  let next_actions () =
    let i = !phase in
    incr phase;
    if i < profile.io_count then begin
      let h = phase_hash i in
      let random = float_of_int (h mod 1000) /. 1000. < profile.random_io_fraction in
      let write =
        float_of_int (h / 1000 mod 1000) /. 1000. < profile.write_fraction
      in
      let io =
        if write then
          App.Disk_write
            { bytes = profile.io_bytes; sequential = not random; tag = i }
        else
          App.Disk_read
            { bytes = profile.io_bytes; sequential = not random; tag = i }
      in
      [ App.Compute compute_per_phase; io ]
    end
    else if i = profile.io_count then
      [
        App.Compute
          (Int64.sub profile.compute_branches
             (Int64.mul compute_per_phase (Int64.of_int profile.io_count)));
        App.Send
          { dst = collector; size = 64; payload = Job_done { name = profile.name } };
      ]
    else []
  in
  {
    App.handle =
      (fun ~virt_now:_ event ->
        match event with
        | App.Boot -> next_actions ()
        | App.Disk_done _ -> next_actions ()
        | _ -> []);
  }

let () = Sw_sim.Graft.register [%extension_constructor Job_done]
