module Time = Sw_sim.Time
module Engine = Sw_sim.Engine
module Conductor = Sw_sim.Conductor
module Address = Sw_net.Address

type deployment = {
  vm : int;
  shard : int;
  group : Sw_vmm.Replica_group.t;
  instances : (int * Sw_vmm.Vmm.instance) list;  (** (machine id, instance) *)
  watchdog : Sw_vmm.Watchdog.t option;
}

(* One shard: an engine with its own registry, the network fabric for the
   shard's machines, and the shard's edge nodes. A single-shard cloud is
   one of these, built exactly as the pre-shard code did. *)
type shard_ctx = {
  sh_engine : Engine.t;
  sh_network : Sw_net.Network.t;
  sh_ingress : Sw_net.Ingress.t;
  sh_egress : Sw_net.Egress.t;
}

type t = {
  seed : int64;
  config : Sw_vmm.Config.t;
  shards : shard_ctx array;
  parallel : bool;
  lookahead_mode : [ `Global | `Pairwise ];
  block : int array;  (* machine id -> owning shard *)
  machines : Sw_vmm.Machine.t array;
  vmms : Sw_vmm.Vmm.t array;
  rng : Sw_sim.Prng.t;  (* single-shard background stream (legacy split) *)
  vm_shard : (int, int) Hashtbl.t;
  host_shard : (int, int) Hashtbl.t;
  mutable conductor : Conductor.t option;  (* built lazily at first run *)
  mutable next_vm : int;
  mutable next_host : int;
  mutable deployments : deployment list;
  mutable trace : Sw_obs.Trace.t option;
}

let sharded t = Array.length t.shards > 1

(* Contiguous machine blocks, sizes as even as possible, low shards first. *)
let contiguous_partition ~machines ~shards =
  let base = machines / shards and rem = machines mod shards in
  let block = Array.make machines 0 in
  let m = ref 0 in
  for s = 0 to shards - 1 do
    let size = base + if s < rem then 1 else 0 in
    for _ = 1 to size do
      block.(!m) <- s;
      incr m
    done
  done;
  block

(* Domain-per-shard only pays off with a core per shard; on a single-core
   host the workers just time-slice through the barrier, so default to the
   sequential windowed driver there. Byte-identical either way. *)
let default_parallel = lazy (Domain.recommended_domain_count () > 1)

(* Owning shard of a delivery target, as seen from shard [self]: per-shard
   addresses (Ingress, Egress, broadcast) and unknown ids resolve to
   [self]. Shared by the cross-shard send path, the lookahead matrix, and
   pair-link installation, so all three agree on ownership. *)
let locate t self = function
  | Address.Vmm m -> t.block.(m)
  | Address.Vm v -> (
      match Hashtbl.find_opt t.vm_shard v with Some sh -> sh | None -> self)
  | Address.Host h -> (
      match Hashtbl.find_opt t.host_shard h with Some sh -> sh | None -> self)
  | Address.Ingress | Address.Egress | Address.Broadcast_addr -> self

(* An explicit machine-to-shard assignment (the affinity partitioner's
   output, or any caller-supplied map). Every machine must be mapped and
   every shard index in range; replica-group atomicity is enforced where it
   always was, at [deploy] time. *)
let check_assignment assign ~machines ~shards =
  if Array.length assign <> machines then
    invalid_arg
      (Printf.sprintf
         "Cloud.create: partition assigns %d machines, cloud has %d"
         (Array.length assign) machines);
  Array.iteri
    (fun m sh ->
      if sh < 0 || sh >= shards then
        invalid_arg
          (Printf.sprintf
             "Cloud.create: partition puts machine %d on shard %d (of %d)" m
             sh shards))
    assign;
  Array.copy assign

let create ?(config = Sw_vmm.Config.default) ?(seed = 0x57094A7CL)
    ?(default_link = Sw_net.Network.lan) ?(rate_spread = 0.)
    ?(clock_spread = Time.zero) ?profile ?(shards = 1) ?parallel
    ?(partition = `Contiguous) ?(lookahead = `Pairwise) ~machines () =
  let parallel =
    match parallel with Some p -> p | None -> Lazy.force default_parallel
  in
  if machines < 1 then invalid_arg "Cloud.create: need at least one machine";
  if shards < 1 then invalid_arg "Cloud.create: need at least one shard";
  if rate_spread < 0. || rate_spread >= 1. then
    invalid_arg "Cloud.create: rate_spread must be in [0, 1)";
  Sw_vmm.Config.validate config;
  let shards = Stdlib.min shards machines in
  if shards = 1 then begin
    (* Single shard: the historical construction, component for component
       and PRNG split for split, so existing seeds reproduce byte for
       byte. *)
    let metrics = Sw_obs.Registry.create () in
    let engine = Engine.create ~seed ~metrics ?profile () in
    let hw_rng = Engine.rng engine in
    let network = Sw_net.Network.create engine ~default:default_link in
    let machine_arr =
      Array.init machines (fun id ->
          let rate_multiplier =
            if rate_spread = 0. then 1.0
            else
              Sw_sim.Prng.uniform hw_rng ~lo:(1. -. rate_spread)
                ~hi:(1. +. rate_spread)
          in
          let clock_offset =
            if Time.equal clock_spread Time.zero then Time.zero
            else begin
              let bound = Int64.to_int clock_spread in
              Time.ns (Sw_sim.Prng.int hw_rng ((2 * bound) + 1) - bound)
            end
          in
          Sw_vmm.Machine.create engine network ~id ~config ~rate_multiplier
            ~clock_offset ())
    in
    let vmms = Array.map Sw_vmm.Vmm.create machine_arr in
    let shard =
      {
        sh_engine = engine;
        sh_network = network;
        sh_ingress = Sw_net.Ingress.create network;
        sh_egress =
          Sw_net.Egress.create
            ?vote_expiry:config.Sw_vmm.Config.egress_vote_expiry network;
      }
    in
    {
      seed;
      config;
      shards = [| shard |];
      parallel;
      lookahead_mode = lookahead;
      block = Array.make machines 0;
      machines = machine_arr;
      vmms;
      rng = Engine.rng engine;
      vm_shard = Hashtbl.create 16;
      host_shard = Hashtbl.create 16;
      conductor = None;
      next_vm = 0;
      next_host = 0;
      deployments = [];
      trace = None;
    }
  end
  else begin
    (* Sharded: per-shard engines/registries/fabrics/edges, and every
       stochastic stream key-derived so that no draw order depends on the
       partition. Hardware spreads draw from one cloud-level keyed stream
       in machine-id order. *)
    let block =
      match partition with
      | `Contiguous -> contiguous_partition ~machines ~shards
      | `Affinity assign -> check_assignment assign ~machines ~shards
    in
    let shard_arr =
      Array.init shards (fun i ->
          let metrics = Sw_obs.Registry.create () in
          let engine =
            Engine.create
              ~seed:(Sw_sim.Prng.mix (Sw_sim.Prng.mix seed 0x5A4DL) (Int64.of_int i))
              ~metrics
              ?profile:(if i = 0 then profile else None)
              ()
          in
          let network =
            Sw_net.Network.create ~stream_seed:seed engine ~default:default_link
          in
          {
            sh_engine = engine;
            sh_network = network;
            sh_ingress = Sw_net.Ingress.create network;
            sh_egress =
              Sw_net.Egress.create
                ?vote_expiry:config.Sw_vmm.Config.egress_vote_expiry network;
          })
    in
    let hw_rng = Sw_sim.Prng.derive ~seed [ 0x11A6L ] in
    let machine_arr =
      Array.init machines (fun id ->
          let rate_multiplier =
            if rate_spread = 0. then 1.0
            else
              Sw_sim.Prng.uniform hw_rng ~lo:(1. -. rate_spread)
                ~hi:(1. +. rate_spread)
          in
          let clock_offset =
            if Time.equal clock_spread Time.zero then Time.zero
            else begin
              let bound = Int64.to_int clock_spread in
              Time.ns (Sw_sim.Prng.int hw_rng ((2 * bound) + 1) - bound)
            end
          in
          let sh = shard_arr.(block.(id)) in
          Sw_vmm.Machine.create sh.sh_engine sh.sh_network ~id ~config
            ~rate_multiplier ~clock_offset ())
    in
    let vmms = Array.map Sw_vmm.Vmm.create machine_arr in
    let t =
      {
        seed;
        config;
        shards = shard_arr;
        parallel;
        lookahead_mode = lookahead;
        block;
        machines = machine_arr;
        vmms;
        rng = Sw_sim.Prng.derive ~seed [ 0xB469L ];
        vm_shard = Hashtbl.create 16;
        host_shard = Hashtbl.create 16;
        conductor = None;
        next_vm = 0;
        next_host = 0;
        deployments = [];
        trace = None;
      }
    in
    (* Wire the cross-shard path: each network resolves a delivery target
       to its owning shard; remote arrivals go through the conductor
       mailbox and are injected on the owner's engine. The conductor is
       built lazily (its lookahead depends on links installed after
       creation), so the post hook late-binds through [t]. *)
    Array.iteri
      (fun self sh ->
        Sw_net.Network.set_remote sh.sh_network ~shard:self ~locate:(locate t self)
          ~post:(fun ~dst ~at ~target pkt ->
            match t.conductor with
            | Some c ->
                Conductor.post c ~src:self ~dst ~at (fun () ->
                    Sw_net.Network.inject t.shards.(dst).sh_network ~target pkt)
            | None ->
                invalid_arg
                  "Cloud: cross-shard send outside Cloud.run (no conductor)"))
      shard_arr;
    t
  end

let shard_count t = Array.length t.shards
let shard_of_machine t m = t.block.(m)
let shard_registry t i = Engine.metrics t.shards.(i).sh_engine
let shard_engine t i = t.shards.(i).sh_engine

let cross_shard_exchanged t =
  match t.conductor with Some c -> Conductor.exchanged c | None -> 0

let total_fired t =
  Array.fold_left (fun acc sh -> acc + Engine.fired sh.sh_engine) 0 t.shards

(* One sink for the whole cloud: the edge nodes and every replica VMM —
   current and future deployments alike — emit into it, so lineage
   reconstruction sees the full ingress → proposal → median → delivery →
   egress chain. Single-shard only: a trace sink is one mutable buffer and
   per-shard domains would race on it. *)
let attach_trace t tr =
  if sharded t then
    invalid_arg "Cloud.attach_trace: not supported on a sharded cloud";
  t.trace <- Some tr;
  Sw_net.Ingress.set_trace t.shards.(0).sh_ingress tr;
  Sw_net.Egress.set_trace t.shards.(0).sh_egress tr;
  List.iter
    (fun d -> List.iter (fun (_, i) -> Sw_vmm.Vmm.set_trace i tr) d.instances)
    t.deployments

let trace t = t.trace

let engine t = t.shards.(0).sh_engine
let network t = t.shards.(0).sh_network
let metrics t = Engine.metrics (engine t)

let metrics_snapshot t =
  match t.shards with
  | [| sh |] -> Sw_obs.Registry.snapshot (Engine.metrics sh.sh_engine)
  | shards ->
      Sw_obs.Snapshot.merge_all
        (Array.to_list
           (Array.map
              (fun sh -> Sw_obs.Registry.snapshot (Engine.metrics sh.sh_engine))
              shards))

let config t = t.config

let machine t i =
  if i < 0 || i >= Array.length t.machines then
    invalid_arg "Cloud.machine: index out of range";
  t.machines.(i)

let machine_count t = Array.length t.machines
let ingress t = t.shards.(0).sh_ingress
let egress t = t.shards.(0).sh_egress

let fresh_vm_id t =
  let id = t.next_vm in
  t.next_vm <- id + 1;
  id

(* The partition rule: a replica group, its multicast channel, and its edge
   bookkeeping are one atom — every machine hosting a replica of the VM
   must sit in the same shard, so all intra-group traffic (proposals,
   epoch reports, ingress replication, egress voting) stays on one engine. *)
let deployment_shard t ~on =
  match on with
  | [] -> 0
  | m :: rest ->
      let s = t.block.(m) in
      List.iter
        (fun m' ->
          if t.block.(m') <> s then
            invalid_arg
              (Printf.sprintf
                 "Cloud.deploy: machines %d and %d are in different shards \
                  (%d vs %d); replica groups must not cross shards"
                 m m' s t.block.(m')))
        rest;
      s

let deploy ?config t ~on ~app =
  let config = match config with Some c -> c | None -> t.config in
  Sw_vmm.Config.validate config;
  if List.length on <> config.Sw_vmm.Config.replicas then
    invalid_arg
      (Printf.sprintf "Cloud.deploy: expected %d machines, got %d"
         config.Sw_vmm.Config.replicas (List.length on));
  if List.length (List.sort_uniq Stdlib.compare on) <> List.length on then
    invalid_arg "Cloud.deploy: machines must be distinct";
  List.iter (fun m -> ignore (machine t m)) on;
  let shard = deployment_shard t ~on in
  let sh = t.shards.(shard) in
  let vm = fresh_vm_id t in
  Hashtbl.replace t.vm_shard vm shard;
  let group =
    Sw_vmm.Replica_group.create ~metrics:(Engine.metrics sh.sh_engine) ~vm
      ~config ~mode:Sw_vmm.Replica_group.Stopwatch ()
  in
  (* The VM's PGM-style channel: the ingress replicates inbound packets over
     it, the VMMs exchange proposals and epoch reports on it. *)
  let channel =
    Sw_net.Multicast.group sh.sh_network
      ~members:(Address.Ingress :: List.map (fun m -> Address.Vmm m) on)
      ~nak_delay:config.Sw_vmm.Config.mcast_nak_delay
      ~nak_retries:config.Sw_vmm.Config.mcast_nak_retries
      ?heartbeat:config.Sw_vmm.Config.mcast_heartbeat ()
  in
  (* Start negotiation (Sec. IV-A): the hosting VMMs exchange their clock
     readings and every replica's virtual clock starts at the median. *)
  let start =
    Sw_vmm.Replica_group.median_time
      (Array.of_list (List.map (fun m -> Sw_vmm.Machine.local_time t.machines.(m)) on))
  in
  let instances =
    List.map
      (fun m ->
        let peers =
          List.filter_map
            (fun m' -> if m' = m then None else Some (Address.Vmm m'))
            on
        in
        (m, Sw_vmm.Vmm.host ~channel ~start t.vmms.(m) ~group ~app ~peers))
      on
  in
  Sw_net.Ingress.register_vm ~channel sh.sh_ingress ~vm
    ~replica_vmms:(List.map (fun m -> Address.Vmm m) on);
  Sw_net.Egress.register_vm sh.sh_egress ~vm
    ~replicas:config.Sw_vmm.Config.replicas;
  (* Degradation keeps the edge nodes in step with the group: the egress
     releases at the majority of the current quorum (not of the original m),
     and a unicast ingress stops replicating toward ejected members. *)
  Sw_vmm.Replica_group.on_membership_change group (fun () ->
      let q = Sw_vmm.Replica_group.quorum group in
      if q > 0 then Sw_net.Egress.set_replicas sh.sh_egress ~vm ~replicas:q;
      let live_vmms =
        List.filter_map
          (fun (m, inst) ->
            if Sw_vmm.Replica_group.active (Sw_vmm.Vmm.member inst) then
              Some (Address.Vmm m)
            else None)
          instances
      in
      if live_vmms <> [] then
        Sw_net.Ingress.set_replica_vmms sh.sh_ingress ~vm ~replica_vmms:live_vmms);
  let watchdog =
    match config.Sw_vmm.Config.watchdog with
    | None -> None
    | Some _ -> Some (Sw_vmm.Watchdog.create sh.sh_engine group)
  in
  let d = { vm; shard; group; instances; watchdog } in
  (match t.trace with
  | Some tr -> List.iter (fun (_, i) -> Sw_vmm.Vmm.set_trace i tr) instances
  | None -> ());
  t.deployments <- d :: t.deployments;
  d

let deploy_baseline ?config t ~on ~app =
  let config = match config with Some c -> c | None -> t.config in
  let config = { config with Sw_vmm.Config.replicas = 1 } in
  Sw_vmm.Config.validate config;
  ignore (machine t on);
  let shard = t.block.(on) in
  let sh = t.shards.(shard) in
  let vm = fresh_vm_id t in
  Hashtbl.replace t.vm_shard vm shard;
  let group =
    Sw_vmm.Replica_group.create ~metrics:(Engine.metrics sh.sh_engine) ~vm
      ~config ~mode:Sw_vmm.Replica_group.Baseline ()
  in
  let instance = Sw_vmm.Vmm.host t.vmms.(on) ~group ~app ~peers:[] in
  (* Baseline traffic routes straight to the hosting machine. *)
  Sw_net.Network.set_route sh.sh_network ~dst:(Address.Vm vm) ~via:(Address.Vmm on);
  let d = { vm; shard; group; instances = [ (on, instance) ]; watchdog = None } in
  (match t.trace with
  | Some tr -> Sw_vmm.Vmm.set_trace instance tr
  | None -> ());
  t.deployments <- d :: t.deployments;
  d

let deploy_plan t ~plan ~app =
  if plan.Sw_placement.Placement.machines > Array.length t.machines then
    invalid_arg "Cloud.deploy_plan: plan needs more machines than the cloud has";
  (match Sw_placement.Placement.verify plan with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Cloud.deploy_plan: invalid plan: " ^ reason));
  List.map
    (fun tri -> deploy t ~on:(Sw_placement.Triangle.vertices tri) ~app)
    plan.Sw_placement.Placement.placements

let vm_id d = d.vm
let vm_address d = Address.Vm d.vm
let shard_of d = d.shard
let replicas d = List.map snd d.instances

let replica_on d ~machine =
  List.assoc_opt machine d.instances

let group d = d.group
let watchdog d = d.watchdog
let divergences d = Sw_vmm.Replica_group.divergences d.group
let skew_blocks d = Sw_vmm.Replica_group.skew_blocks d.group

let add_host t ?(link = Sw_net.Network.wan) ?(shard = 0) () =
  if shard < 0 || shard >= Array.length t.shards then
    invalid_arg "Cloud.add_host: shard out of range";
  let id = t.next_host in
  t.next_host <- id + 1;
  Hashtbl.replace t.host_shard id shard;
  let host = Host.create t.shards.(shard).sh_network ~id ~link () in
  (* Every shard must see the host's access-link override: cross-shard
     sends compute the arrival on the *sender's* network, and a remote
     sender falling back to the fabric default would give the same packet
     a different latency than a local one. *)
  Array.iteri
    (fun i sh ->
      if i <> shard then
        Sw_net.Network.set_node_link sh.sh_network (Address.Host id) link)
    t.shards;
  host

(* A directed pair override lives on the fabric of the shard owning [src]:
   that is the only fabric that ever prices sends from [src], so no
   mirroring is needed — and *not* mirroring is what keeps an intra-shard
   fast link (rack-local replica interconnects) out of every other pair's
   lookahead floor. *)
let set_pair_link t ~src ~dst params =
  let owner = locate t 0 src in
  Sw_net.Network.set_link t.shards.(owner).sh_network ~src ~dst params

let start_background t ~rate_per_s ?(size = 64) () =
  if rate_per_s <= 0. then invalid_arg "Cloud.start_background: rate must be positive";
  (* Sharded clouds draw the arrival process from a keyed stream (the
     single-shard [t.rng] split is construction-order dependent) and emit
     from shard 0; packets to remote VMs take the cross-shard path. *)
  let rng =
    if sharded t then Sw_sim.Prng.derive ~seed:t.seed [ 0xB406L ] else t.rng
  in
  let sh = t.shards.(0) in
  let rec arrival () =
    let gap = Sw_sim.Prng.exponential rng ~rate:rate_per_s in
    ignore
      (Engine.schedule_after sh.sh_engine (Time.of_float_s gap) (fun () ->
           List.iter
             (fun d ->
               let pkt =
                 Sw_net.Packet.make ~src:Address.Broadcast_addr
                   ~dst:(Address.Vm d.vm) ~size
                   ~seq:(Sw_net.Network.fresh_seq sh.sh_network)
                   (Sw_net.Packet.Background (Sw_net.Network.fresh_seq sh.sh_network))
               in
               Sw_net.Network.send sh.sh_network pkt)
             t.deployments;
           arrival ()))
  in
  arrival ()

(* Lookahead for the conservative windows, computed when the conductor is
   first needed, so links installed after [create] (host access links,
   overrides) are accounted for; links added later may only violate the
   bound, which [Conductor.post] then reports.

   [`Global] is the legacy bound — the smallest propagation latency any
   link anywhere could impose on a hop, one scalar for every shard pair.
   [`Pairwise] (the default) asks each shard's fabric for its
   per-destination-shard floors instead ({!Sw_net.Network.min_latency_to}),
   so a fast rack-local link only tightens the windows of the pairs that
   can actually traverse it. *)
let conductor t =
  match t.conductor with
  | Some c -> c
  | None ->
      let engines = Array.map (fun sh -> sh.sh_engine) t.shards in
      let n = Array.length t.shards in
      let global =
        Array.fold_left
          (fun acc sh -> Time.min acc (Sw_net.Network.min_latency sh.sh_network))
          Int64.max_int t.shards
      in
      let c =
        match t.lookahead_mode with
        | `Global -> Conductor.create ~parallel:t.parallel ~lookahead:global engines
        | `Pairwise ->
            let matrix =
              Array.init n (fun j ->
                  Sw_net.Network.min_latency_to t.shards.(j).sh_network
                    ~locate:(locate t j) ~self:j ~shards:n)
            in
            Conductor.create ~parallel:t.parallel ~matrix ~lookahead:global
              engines
      in
      t.conductor <- Some c;
      c

let run t ~until =
  if sharded t then Conductor.run (conductor t) ~until
  else Engine.run ~until (engine t)

let run_span t span = run t ~until:(Time.add (Engine.now (engine t)) span)

(* --- Fault injection --------------------------------------------------- *)

let find_deployment t ~vm = List.find_opt (fun d -> d.vm = vm) t.deployments

let instance_of t ~vm ~replica =
  match find_deployment t ~vm with
  | None -> None
  | Some d ->
      List.find_map
        (fun (_, i) ->
          if Sw_vmm.Replica_group.replica_id (Sw_vmm.Vmm.member i) = replica
          then Some i
          else None)
        d.instances

(* Restart hook for [Fault.Replica_crash]: rebuild the crashed replica from
   any live peer and reinstate it. A no-op when nothing can be done — no
   deployment, replica already live, no survivor to resync from, or no
   replay log to rebuild the guest with. *)
let restart_replica t ~vm ~replica =
  match (find_deployment t ~vm, instance_of t ~vm ~replica) with
  | Some d, Some i
    when Sw_vmm.Vmm.crashed i
         && (Sw_vmm.Replica_group.config d.group).Sw_vmm.Config.replay_log -> (
      let survivor =
        List.find_map
          (fun (_, j) ->
            if
              (not (Sw_vmm.Vmm.crashed j))
              && Sw_vmm.Replica_group.active (Sw_vmm.Vmm.member j)
            then Some j
            else None)
          d.instances
      in
      match survivor with
      | Some from -> Sw_vmm.Vmm.reintegrate i ~from
      | None -> ())
  | _ -> ()

let install_faults ?trace t schedule =
  if sharded t then
    invalid_arg "Cloud.install_faults: not supported on a sharded cloud";
  (* Fault windows land in the cloud's attached trace unless the caller
     routes them elsewhere. *)
  let trace = match trace with Some _ -> trace | None -> t.trace in
  let env =
    {
      Sw_fault.Injector.engine = engine t;
      network = network t;
      machine_of =
        (fun m ->
          if m >= 0 && m < Array.length t.machines then Some t.machines.(m)
          else None);
      instance_of = (fun ~vm ~replica -> instance_of t ~vm ~replica);
      restart = (fun ~vm ~replica -> restart_replica t ~vm ~replica);
    }
  in
  Sw_fault.Injector.install ?trace env schedule

(* --- Checkpoint / restore ---------------------------------------------- *)

type restore_error =
  | Incompatible_image of string
  | Unregistered_extensions of string list

let pp_restore_error fmt = function
  | Incompatible_image msg -> Format.fprintf fmt "incompatible image: %s" msg
  | Unregistered_extensions names ->
      Format.fprintf fmt "image uses unregistered payload constructors: %s"
        (String.concat ", " names)

let checkpoint t ~extra =
  (* [Closures] serializes the event closures in the wheels (and everything
     they capture) by code pointer + environment; the runtime stamps the
     image with the binary's code digest, so a different build refuses to
     load it instead of jumping to stale addresses. *)
  Marshal.to_string (t, extra) [ Marshal.Closures ]

let restore bytes =
  match (Marshal.from_string bytes 0 : t * _) with
  | exception Failure msg -> Error (Incompatible_image msg)
  | root -> (
      (* Re-point every extension-constructor slot (packet payloads) at the
         live constructors: Marshal copies the slot blocks, and extensible-
         variant matching compares slots by physical identity, so without
         this pass every restored in-flight packet would silently fall into
         the [_ -> drop] arm of its handler. *)
      match Sw_sim.Graft.repair (Obj.repr root) with
      | Error names -> Error (Unregistered_extensions names)
      | Ok _ ->
          let t, extra = root in
          (* The multicast group-id allocator is process-global, outside
             the marshaled graph: advance it past every restored group so
             post-restore deployments cannot collide. *)
          Array.iter
            (fun sh ->
              Sw_net.Multicast.reserve_group_ids
                (Sw_net.Ingress.max_mcast_group sh.sh_ingress))
            t.shards;
          Ok (t, extra))
