module Time = Sw_sim.Time
module Engine = Sw_sim.Engine
module Address = Sw_net.Address

type deployment = {
  vm : int;
  group : Sw_vmm.Replica_group.t;
  instances : (int * Sw_vmm.Vmm.instance) list;  (** (machine id, instance) *)
  watchdog : Sw_vmm.Watchdog.t option;
}

type t = {
  engine : Engine.t;
  network : Sw_net.Network.t;
  config : Sw_vmm.Config.t;
  machines : Sw_vmm.Machine.t array;
  vmms : Sw_vmm.Vmm.t array;
  ingress : Sw_net.Ingress.t;
  egress : Sw_net.Egress.t;
  rng : Sw_sim.Prng.t;
  mutable next_vm : int;
  mutable next_host : int;
  mutable deployments : deployment list;
  mutable trace : Sw_obs.Trace.t option;
}

let create ?(config = Sw_vmm.Config.default) ?(seed = 0x57094A7CL)
    ?(default_link = Sw_net.Network.lan) ?(rate_spread = 0.)
    ?(clock_spread = Time.zero) ?profile ~machines () =
  if machines < 1 then invalid_arg "Cloud.create: need at least one machine";
  if rate_spread < 0. || rate_spread >= 1. then
    invalid_arg "Cloud.create: rate_spread must be in [0, 1)";
  Sw_vmm.Config.validate config;
  let metrics = Sw_obs.Registry.create () in
  let engine = Engine.create ~seed ~metrics ?profile () in
  let hw_rng = Engine.rng engine in
  let network = Sw_net.Network.create engine ~default:default_link in
  let machine_arr =
    Array.init machines (fun id ->
        let rate_multiplier =
          if rate_spread = 0. then 1.0
          else Sw_sim.Prng.uniform hw_rng ~lo:(1. -. rate_spread) ~hi:(1. +. rate_spread)
        in
        let clock_offset =
          if Time.equal clock_spread Time.zero then Time.zero
          else begin
            let bound = Int64.to_int clock_spread in
            Time.ns (Sw_sim.Prng.int hw_rng ((2 * bound) + 1) - bound)
          end
        in
        Sw_vmm.Machine.create engine network ~id ~config ~rate_multiplier
          ~clock_offset ())
  in
  let vmms = Array.map Sw_vmm.Vmm.create machine_arr in
  {
    engine;
    network;
    config;
    machines = machine_arr;
    vmms;
    ingress = Sw_net.Ingress.create network;
    egress =
      Sw_net.Egress.create
        ?vote_expiry:config.Sw_vmm.Config.egress_vote_expiry network;
    rng = Engine.rng engine;
    next_vm = 0;
    next_host = 0;
    deployments = [];
    trace = None;
  }

(* One sink for the whole cloud: the edge nodes and every replica VMM —
   current and future deployments alike — emit into it, so lineage
   reconstruction sees the full ingress → proposal → median → delivery →
   egress chain. *)
let attach_trace t tr =
  t.trace <- Some tr;
  Sw_net.Ingress.set_trace t.ingress tr;
  Sw_net.Egress.set_trace t.egress tr;
  List.iter
    (fun d -> List.iter (fun (_, i) -> Sw_vmm.Vmm.set_trace i tr) d.instances)
    t.deployments

let trace t = t.trace

let engine t = t.engine
let network t = t.network
let metrics t = Engine.metrics t.engine
let metrics_snapshot t = Sw_obs.Registry.snapshot (Engine.metrics t.engine)
let config t = t.config

let machine t i =
  if i < 0 || i >= Array.length t.machines then
    invalid_arg "Cloud.machine: index out of range";
  t.machines.(i)

let machine_count t = Array.length t.machines
let ingress t = t.ingress
let egress t = t.egress

let fresh_vm_id t =
  let id = t.next_vm in
  t.next_vm <- id + 1;
  id

let deploy ?config t ~on ~app =
  let config = match config with Some c -> c | None -> t.config in
  Sw_vmm.Config.validate config;
  if List.length on <> config.Sw_vmm.Config.replicas then
    invalid_arg
      (Printf.sprintf "Cloud.deploy: expected %d machines, got %d"
         config.Sw_vmm.Config.replicas (List.length on));
  if List.length (List.sort_uniq Stdlib.compare on) <> List.length on then
    invalid_arg "Cloud.deploy: machines must be distinct";
  List.iter (fun m -> ignore (machine t m)) on;
  let vm = fresh_vm_id t in
  let group =
    Sw_vmm.Replica_group.create ~metrics:(Engine.metrics t.engine) ~vm ~config
      ~mode:Sw_vmm.Replica_group.Stopwatch ()
  in
  (* The VM's PGM-style channel: the ingress replicates inbound packets over
     it, the VMMs exchange proposals and epoch reports on it. *)
  let channel =
    Sw_net.Multicast.group t.network
      ~members:(Address.Ingress :: List.map (fun m -> Address.Vmm m) on)
      ~nak_delay:config.Sw_vmm.Config.mcast_nak_delay
      ~nak_retries:config.Sw_vmm.Config.mcast_nak_retries
      ?heartbeat:config.Sw_vmm.Config.mcast_heartbeat ()
  in
  (* Start negotiation (Sec. IV-A): the hosting VMMs exchange their clock
     readings and every replica's virtual clock starts at the median. *)
  let start =
    Sw_vmm.Replica_group.median_time
      (Array.of_list (List.map (fun m -> Sw_vmm.Machine.local_time t.machines.(m)) on))
  in
  let instances =
    List.map
      (fun m ->
        let peers =
          List.filter_map
            (fun m' -> if m' = m then None else Some (Address.Vmm m'))
            on
        in
        (m, Sw_vmm.Vmm.host ~channel ~start t.vmms.(m) ~group ~app ~peers))
      on
  in
  Sw_net.Ingress.register_vm ~channel t.ingress ~vm
    ~replica_vmms:(List.map (fun m -> Address.Vmm m) on);
  Sw_net.Egress.register_vm t.egress ~vm ~replicas:config.Sw_vmm.Config.replicas;
  (* Degradation keeps the edge nodes in step with the group: the egress
     releases at the majority of the current quorum (not of the original m),
     and a unicast ingress stops replicating toward ejected members. *)
  Sw_vmm.Replica_group.on_membership_change group (fun () ->
      let q = Sw_vmm.Replica_group.quorum group in
      if q > 0 then Sw_net.Egress.set_replicas t.egress ~vm ~replicas:q;
      let live_vmms =
        List.filter_map
          (fun (m, inst) ->
            if Sw_vmm.Replica_group.active (Sw_vmm.Vmm.member inst) then
              Some (Address.Vmm m)
            else None)
          instances
      in
      if live_vmms <> [] then
        Sw_net.Ingress.set_replica_vmms t.ingress ~vm ~replica_vmms:live_vmms);
  let watchdog =
    match config.Sw_vmm.Config.watchdog with
    | None -> None
    | Some _ -> Some (Sw_vmm.Watchdog.create t.engine group)
  in
  let d = { vm; group; instances; watchdog } in
  (match t.trace with
  | Some tr -> List.iter (fun (_, i) -> Sw_vmm.Vmm.set_trace i tr) instances
  | None -> ());
  t.deployments <- d :: t.deployments;
  d

let deploy_baseline ?config t ~on ~app =
  let config = match config with Some c -> c | None -> t.config in
  let config = { config with Sw_vmm.Config.replicas = 1 } in
  Sw_vmm.Config.validate config;
  ignore (machine t on);
  let vm = fresh_vm_id t in
  let group =
    Sw_vmm.Replica_group.create ~metrics:(Engine.metrics t.engine) ~vm ~config
      ~mode:Sw_vmm.Replica_group.Baseline ()
  in
  let instance = Sw_vmm.Vmm.host t.vmms.(on) ~group ~app ~peers:[] in
  (* Baseline traffic routes straight to the hosting machine. *)
  Sw_net.Network.set_route t.network ~dst:(Address.Vm vm) ~via:(Address.Vmm on);
  let d = { vm; group; instances = [ (on, instance) ]; watchdog = None } in
  (match t.trace with
  | Some tr -> Sw_vmm.Vmm.set_trace instance tr
  | None -> ());
  t.deployments <- d :: t.deployments;
  d

let deploy_plan t ~plan ~app =
  if plan.Sw_placement.Placement.machines > Array.length t.machines then
    invalid_arg "Cloud.deploy_plan: plan needs more machines than the cloud has";
  (match Sw_placement.Placement.verify plan with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Cloud.deploy_plan: invalid plan: " ^ reason));
  List.map
    (fun tri -> deploy t ~on:(Sw_placement.Triangle.vertices tri) ~app)
    plan.Sw_placement.Placement.placements

let vm_id d = d.vm
let vm_address d = Address.Vm d.vm
let replicas d = List.map snd d.instances

let replica_on d ~machine =
  List.assoc_opt machine d.instances

let group d = d.group
let watchdog d = d.watchdog
let divergences d = Sw_vmm.Replica_group.divergences d.group
let skew_blocks d = Sw_vmm.Replica_group.skew_blocks d.group

let add_host t ?link () =
  let id = t.next_host in
  t.next_host <- id + 1;
  Host.create t.network ~id ?link ()

let start_background t ~rate_per_s ?(size = 64) () =
  if rate_per_s <= 0. then invalid_arg "Cloud.start_background: rate must be positive";
  let rec arrival () =
    let gap = Sw_sim.Prng.exponential t.rng ~rate:rate_per_s in
    ignore
      (Engine.schedule_after t.engine (Time.of_float_s gap) (fun () ->
           List.iter
             (fun d ->
               let pkt =
                 Sw_net.Packet.make ~src:Address.Broadcast_addr
                   ~dst:(Address.Vm d.vm) ~size
                   ~seq:(Sw_net.Network.fresh_seq t.network)
                   (Sw_net.Packet.Background (Sw_net.Network.fresh_seq t.network))
               in
               Sw_net.Network.send t.network pkt)
             t.deployments;
           arrival ()))
  in
  arrival ()

let run t ~until = Engine.run ~until t.engine
let run_span t span = Engine.run ~until:(Time.add (Engine.now t.engine) span) t.engine

(* --- Fault injection --------------------------------------------------- *)

let find_deployment t ~vm = List.find_opt (fun d -> d.vm = vm) t.deployments

let instance_of t ~vm ~replica =
  match find_deployment t ~vm with
  | None -> None
  | Some d ->
      List.find_map
        (fun (_, i) ->
          if Sw_vmm.Replica_group.replica_id (Sw_vmm.Vmm.member i) = replica
          then Some i
          else None)
        d.instances

(* Restart hook for [Fault.Replica_crash]: rebuild the crashed replica from
   any live peer and reinstate it. A no-op when nothing can be done — no
   deployment, replica already live, no survivor to resync from, or no
   replay log to rebuild the guest with. *)
let restart_replica t ~vm ~replica =
  match (find_deployment t ~vm, instance_of t ~vm ~replica) with
  | Some d, Some i
    when Sw_vmm.Vmm.crashed i
         && (Sw_vmm.Replica_group.config d.group).Sw_vmm.Config.replay_log -> (
      let survivor =
        List.find_map
          (fun (_, j) ->
            if
              (not (Sw_vmm.Vmm.crashed j))
              && Sw_vmm.Replica_group.active (Sw_vmm.Vmm.member j)
            then Some j
            else None)
          d.instances
      in
      match survivor with
      | Some from -> Sw_vmm.Vmm.reintegrate i ~from
      | None -> ())
  | _ -> ()

let install_faults ?trace t schedule =
  (* Fault windows land in the cloud's attached trace unless the caller
     routes them elsewhere. *)
  let trace = match trace with Some _ -> trace | None -> t.trace in
  let env =
    {
      Sw_fault.Injector.engine = t.engine;
      network = t.network;
      machine_of =
        (fun m ->
          if m >= 0 && m < Array.length t.machines then Some t.machines.(m)
          else None);
      instance_of = (fun ~vm ~replica -> instance_of t ~vm ~replica);
      restart = (fun ~vm ~replica -> restart_replica t ~vm ~replica);
    }
  in
  Sw_fault.Injector.install ?trace env schedule
