(** External hosts: clients and observers outside the cloud.

    A host has its own network address and an event handler; unlike guests it
    sees real (simulated) time directly — it is the "external observer" of
    the paper's Sec. VI. *)

type t

(** [create network ~id ~link ()] registers the host. [link] configures its
    access link in both directions (default {!Sw_net.Network.wan}). The
    handler is installed with {!set_handler} (hosts usually need a reference
    to themselves to reply). *)
val create :
  Sw_net.Network.t -> id:int -> ?link:Sw_net.Network.link_params -> unit -> t

val address : t -> Sw_net.Address.t
val network : t -> Sw_net.Network.t
val engine : t -> Sw_sim.Engine.t

(** Current real (simulated) time — what an external observer's clock
    reads. *)
val now : t -> Sw_sim.Time.t

val set_handler : t -> (Sw_net.Packet.t -> unit) -> unit

(** [send t ~dst ~size payload] emits a packet from this host. *)
val send : t -> dst:Sw_net.Address.t -> size:int -> Sw_net.Packet.payload -> unit

(** [after t span f] schedules [f] on the host (e.g. timeouts, open-loop
    load generation). *)
val after : t -> Sw_sim.Time.t -> (unit -> unit) -> unit

(** Packets received so far. *)
val received : t -> int

(** Real inter-arrival times (ms) of packets at this host — the external
    observer's measurements. *)
val inter_arrival_ms : t -> float array
