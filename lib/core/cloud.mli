(** The top-level StopWatch cloud: machines, ingress/egress nodes, VM
    deployment, and simulation control.

    Typical use:
    {[
      let cloud = Cloud.create ~machines:3 () in
      let vm = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:my_app in
      let client = Cloud.add_host cloud () in
      ...
      Cloud.run cloud ~until:(Sw_sim.Time.s 10)
    ]} *)

type t

type deployment

(** [create ?config ?seed ?default_link ?rate_spread ?clock_spread ?shards
    ~machines ()] builds a cloud of [machines] physical machines over
    [shards] simulation shards (default [1], clamped to [machines]).

    With one shard this is the historical construction — one engine, one
    fabric, one ingress/egress pair — byte-identical to pre-shard builds.
    With [shards >= 2] the machines are split across shards by
    [partition]: [`Contiguous] (the default) cuts contiguous machine
    blocks, [`Affinity assign] adopts an explicit machine-to-shard map —
    typically {!Sw_placement.Affinity}'s plan, which packs
    heavily-communicating cells co-shard (every machine mapped, shard
    indices in range; replica-group atomicity is enforced at {!deploy}
    as always). Each shard gets its own engine (and metric registry),
    network fabric, and ingress/egress pair, and {!run} drives the shards
    concurrently (one OCaml domain each; [parallel:false] runs the same
    windowed protocol round-robin, byte-identical; the default picks the
    round-robin driver when the host reports a single core, where a
    domain gang could only time-slice) under conservative lookahead
    synchronisation — see {!Sw_sim.Conductor}. [lookahead] picks how the
    conductor's bound is computed: [`Pairwise] (default) builds a
    per-shard-pair matrix from each fabric's
    {!Sw_net.Network.min_latency_to}, [`Global] the legacy single
    worst-case scalar. Neither partition nor lookahead mode can change
    results: per-link PRNG streams are key-derived so no draw depends on
    the partition; DESIGN.md "Sharded simulation" states the exact
    determinism contract. {!attach_trace} and {!install_faults} are
    single-shard-only.

    [rate_spread] gives each machine a uniformly drawn execution-speed
    multiplier in [1 ± rate_spread] (heterogeneous hardware; replicas then
    skew in real time and the skew limiter becomes active);
    [clock_spread] draws each machine's real-time-clock error uniformly
    from [± clock_spread]. Both default to zero (identical machines).
    [profile] hands the (first shard's) engine a wall-clock self-profiling
    instance (see {!Sw_sim.Engine.create}). *)
val create :
  ?config:Sw_vmm.Config.t ->
  ?seed:int64 ->
  ?default_link:Sw_net.Network.link_params ->
  ?rate_spread:float ->
  ?clock_spread:Sw_sim.Time.t ->
  ?profile:Sw_obs.Profile.t ->
  ?shards:int ->
  ?parallel:bool ->
  ?partition:[ `Contiguous | `Affinity of int array ] ->
  ?lookahead:[ `Global | `Pairwise ] ->
  machines:int ->
  unit ->
  t

(** Number of shards (1 for a legacy single-engine cloud). *)
val shard_count : t -> int

(** The shard owning a machine id (always 0 when unsharded). *)
val shard_of_machine : t -> int -> int

(** Shard [i]'s metric registry. Components driven by shard [i]'s engine —
    including {!Sw_workload.Flowgen} cells launched on hosts added with
    [add_host ~shard:i] — must record here, never into another shard's
    registry: registries are plain mutable cells and shards run on
    separate domains. *)
val shard_registry : t -> int -> Sw_obs.Registry.t

(** Shard [i]'s engine. Own it only between {!run} calls. *)
val shard_engine : t -> int -> Sw_sim.Engine.t

(** Cross-shard packets exchanged at barriers so far (0 when unsharded). *)
val cross_shard_exchanged : t -> int

(** Events fired across all shard engines. *)
val total_fired : t -> int

(** [attach_trace t tr] makes [tr] the cloud-wide trace sink: the ingress
    and egress nodes and every replica VMM — of deployments both existing
    and future — emit their typed events into it. The sink still starts
    disabled; call {!Sw_obs.Trace.enable} to record. *)
val attach_trace : t -> Sw_obs.Trace.t -> unit

(** The cloud-wide sink, when one was attached. *)
val trace : t -> Sw_obs.Trace.t option

(** Times the skew limiter has descheduled this VM's fastest replica. *)
val skew_blocks : deployment -> int

val engine : t -> Sw_sim.Engine.t
val network : t -> Sw_net.Network.t

(** The simulation-wide metrics registry (owned by the engine); every
    component of this cloud records into it. *)
val metrics : t -> Sw_obs.Registry.t

(** Deterministic snapshot of every metric in the cloud — the value the
    runner merges across jobs and the benches export. *)
val metrics_snapshot : t -> Sw_obs.Snapshot.t
val config : t -> Sw_vmm.Config.t
val machine : t -> int -> Sw_vmm.Machine.t
val machine_count : t -> int
val ingress : t -> Sw_net.Ingress.t
val egress : t -> Sw_net.Egress.t

(** [deploy t ?config ~on ~app] starts a guest VM under StopWatch with one
    replica per machine in [on] (length must equal the configured replica
    count, machines distinct). Returns the deployment handle; the VM's
    address is [Address.Vm (vm_id d)]. *)
val deploy :
  ?config:Sw_vmm.Config.t -> t -> on:int list -> app:Sw_vm.App.factory -> deployment

(** [deploy_baseline t ?config ~on ~app] starts an unreplicated guest on
    machine [on] over the unmodified-Xen baseline. *)
val deploy_baseline :
  ?config:Sw_vmm.Config.t -> t -> on:int -> app:Sw_vm.App.factory -> deployment

(** [deploy_plan t ~plan ~app] deploys one StopWatch VM per triangle of a
    placement plan (all with the same app factory); returns deployments in
    plan order. *)
val deploy_plan :
  t -> plan:Sw_placement.Placement.plan -> app:Sw_vm.App.factory -> deployment list

val vm_id : deployment -> int
val vm_address : deployment -> Sw_net.Address.t
val replicas : deployment -> Sw_vmm.Vmm.instance list

(** The replica on a given machine, if any. *)
val replica_on : deployment -> machine:int -> Sw_vmm.Vmm.instance option

val group : deployment -> Sw_vmm.Replica_group.t

(** The deployment's liveness watchdog — present iff the deploying config
    had [Config.watchdog] set (StopWatch deployments only; baselines never
    run one). *)
val watchdog : deployment -> Sw_vmm.Watchdog.t option

(** Synchrony violations recorded for this VM (paper footnote 4). *)
val divergences : deployment -> int

(** The shard a deployment's replica group lives on (0 when unsharded). *)
val shard_of : deployment -> int

(** [add_host t ?link ?shard ()] creates an external host with a fresh id,
    attached to [shard]'s fabric (default 0). Packets it sends to VMs or
    hosts owned by other shards take the cross-shard path. *)
val add_host :
  t -> ?link:Sw_net.Network.link_params -> ?shard:int -> unit -> Host.t

(** [set_pair_link t ~src ~dst params] overrides the directed link
    [src -> dst] on the fabric of the shard owning [src] — the only fabric
    that prices sends from [src], so unlike a host's access link the
    override is not mirrored. Use it for intra-shard fast paths (e.g. a
    rack-local replica interconnect below the fabric default): because it
    stays off every other fabric, it never drags another shard pair's
    lookahead floor down with it. Install before traffic first crosses the
    pair (link parameters are latched at first use). *)
val set_pair_link :
  t ->
  src:Sw_net.Address.t ->
  dst:Sw_net.Address.t ->
  Sw_net.Network.link_params ->
  unit

(** [start_background t ~rate_per_s ~size ()] emits ARP-like broadcast noise:
    Poisson arrivals addressed to every deployed VM (replicated through the
    ingress exactly like guest traffic, as in the paper's testbed). Runs for
    the rest of the simulation. *)
val start_background : t -> rate_per_s:float -> ?size:int -> unit -> unit

(** [install_faults ?trace t schedule] arms a deterministic fault schedule
    against this cloud (see {!Sw_fault.Schedule}): every window becomes an
    engine event, machines and replicas are resolved by id, and a
    [Replica_crash] with [restart_after] is restarted by resyncing from a
    live peer ({!Sw_vmm.Vmm.reintegrate} — requires [Config.replay_log];
    without it, or without a survivor, the restart silently stays down).
    Call after the relevant deployments exist. [trace] defaults to the
    cloud's {!attach_trace} sink. *)
val install_faults :
  ?trace:Sw_obs.Trace.t -> t -> Sw_fault.Schedule.t -> Sw_fault.Injector.t

(** [run t ~until] advances the simulation. *)
val run : t -> until:Sw_sim.Time.t -> unit

(** [run_span t span] advances by [span] from the current time. *)
val run_span : t -> Sw_sim.Time.t -> unit

(** {1 Checkpoint / restore}

    A quiescent cloud — between {!run} calls, never from inside an engine
    callback — serializes wholesale: timer wheels with their pending event
    closures, PRNG streams, replica groups and their pending/inbound/replay
    logs, in-flight packets, disk queues, caches, and (when sharded) the
    conductor's cross-shard inboxes. The image is produced by [Marshal]
    with closures, so it is only loadable by the {e same binary} that wrote
    it (the runtime's code digest enforces this); [Sw_ckpt.Image] wraps
    these bytes in a versioned, checksummed, atomically-written container
    and is what every tool above this layer uses. *)

type restore_error =
  | Incompatible_image of string
      (** The bytes were not produced by {!checkpoint} in this exact
          binary (or were truncated/corrupted past recognition). *)
  | Unregistered_extensions of string list
      (** The image contains packet-payload constructors this process
          never registered with [Sw_sim.Graft] — matching them would
          silently fail, so the restore is refused. *)

val pp_restore_error : Format.formatter -> restore_error -> unit

(** [checkpoint t ~extra] captures [t] and [extra] — anything sharing state
    with the cloud, typically a workload handle whose closures capture it;
    sharing is preserved, so the restored pair is wired together exactly as
    the live one was. *)
val checkpoint : t -> extra:'a -> string

(** [restore bytes] rebuilds the pair written by {!checkpoint}. The ['a]
    is trusted from the caller's context — feed this only bytes whose
    provenance (same binary, same scenario) has been checked, e.g. via
    [Sw_ckpt.Image]'s digest and metadata. On success the restored cloud
    is fully live: extension-constructor slots are re-grafted
    ([Sw_sim.Graft]) and the multicast group-id allocator advanced past
    every restored group. *)
val restore : string -> (t * 'a, restore_error) result
