module Time = Sw_sim.Time
module Engine = Sw_sim.Engine

type t = {
  network : Sw_net.Network.t;
  address : Sw_net.Address.t;
  mutable handler : Sw_net.Packet.t -> unit;
  m_received : Sw_obs.Registry.Counter.t;
  mutable last_arrival : Time.t option;
  inter_arrival : Sw_sim.Samples.t;
      (** Raw samples (not a metric): the attack distinguishers need the
          full empirical distribution, not bucketised counts. *)
}

let create network ~id ?(link = Sw_net.Network.wan) () =
  let address = Sw_net.Address.Host id in
  let metrics = Engine.metrics (Sw_net.Network.engine network) in
  let t =
    {
      network;
      address;
      handler = (fun _ -> ());
      m_received =
        Sw_obs.Registry.counter metrics
          (Printf.sprintf "host.%s.received" (Sw_net.Address.to_string address));
      last_arrival = None;
      inter_arrival = Sw_sim.Samples.create ();
    }
  in
  Sw_net.Network.set_node_link network address link;
  Sw_net.Network.register network address (fun pkt ->
      let now = Engine.now (Sw_net.Network.engine network) in
      Sw_obs.Registry.Counter.incr t.m_received;
      (match t.last_arrival with
      | Some prev -> Sw_sim.Samples.add t.inter_arrival (Time.to_float_ms (Time.sub now prev))
      | None -> ());
      t.last_arrival <- Some now;
      t.handler pkt);
  t

let address t = t.address
let network t = t.network
let engine t = Sw_net.Network.engine t.network
let now t = Engine.now (engine t)
let set_handler t h = t.handler <- h

let send t ~dst ~size payload =
  let pkt =
    Sw_net.Packet.make ~src:t.address ~dst ~size
      ~seq:(Sw_net.Network.fresh_seq t.network)
      payload
  in
  Sw_net.Network.send t.network pkt

let after t span f = ignore (Engine.schedule_after (engine t) span f)
let received t = Sw_obs.Registry.Counter.value t.m_received
let inter_arrival_ms t = Sw_sim.Samples.to_array t.inter_arrival
