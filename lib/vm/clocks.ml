module Time = Sw_sim.Time

type t = {
  tsc_hz : float;
  pit_hz : float;
  pit_reload : int;
}

let create ?(tsc_hz = 3.0e9) ?(pit_hz = 1_193_182.) ?(pit_reload = 4772) () =
  if tsc_hz <= 0. then invalid_arg "Clocks.create: tsc_hz must be positive";
  if pit_hz <= 0. then invalid_arg "Clocks.create: pit_hz must be positive";
  if pit_reload <= 0 then invalid_arg "Clocks.create: pit_reload must be positive";
  { tsc_hz; pit_hz; pit_reload }

let rdtsc t ~virt =
  (* floor(virt_s * tsc_hz); computed in integer arithmetic to stay exact
     across replicas: ticks = virt_ns * (tsc_hz / 1e9). With tsc_hz an
     integral number of kHz this is virt_ns * khz / 1e6. *)
  let khz = Int64.of_float (Float.round (t.tsc_hz /. 1e3)) in
  Int64.div (Int64.mul virt khz) 1_000_000L

let rtc_seconds _t ~virt = Int64.to_int (Int64.div virt 1_000_000_000L)

let pit_ticks t ~virt =
  (* Ticks elapsed = floor(virt_s * pit_hz), again in exact integer form:
     the i8254 rate is an integral Hz value. *)
  let hz = Int64.of_float (Float.round t.pit_hz) in
  Int64.div (Int64.mul virt hz) 1_000_000_000L

let pit_counter t ~virt =
  let ticks = pit_ticks t ~virt in
  let phase = Int64.to_int (Int64.rem ticks (Int64.of_int t.pit_reload)) in
  t.pit_reload - phase

let pit_interrupt_period t =
  Time.ns
    (int_of_float (Float.round (float_of_int t.pit_reload /. t.pit_hz *. 1e9)))
