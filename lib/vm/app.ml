type event =
  | Boot
  | Packet_in of Sw_net.Packet.t
  | Disk_done of { tag : int }
  | Dma_done of { tag : int }
  | Timer of { tag : int }
  | Tick

type action =
  | Compute of int64
  | Disk_read of { bytes : int; sequential : bool; tag : int }
  | Disk_write of { bytes : int; sequential : bool; tag : int }
  | Dma_transfer of { bytes : int; tag : int }
  | Send of { dst : Sw_net.Address.t; size : int; payload : Sw_net.Packet.payload }
  | Set_timer of { after : Sw_sim.Time.t; tag : int }

type t = { handle : virt_now:Sw_sim.Time.t -> event -> action list }

type factory = unit -> t

let idle () = { handle = (fun ~virt_now:_ _ -> []) }

let stateful ~init ~handle () =
  let state = ref init in
  {
    handle =
      (fun ~virt_now event ->
        let state', actions = handle !state ~virt_now event in
        state := state';
        actions);
  }
