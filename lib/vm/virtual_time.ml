module Time = Sw_sim.Time

let fp_bits = 20
let fp_scale = Float.of_int (1 lsl fp_bits)

type t = {
  mutable base_virt : Time.t;  (** virt at [base_instr]. *)
  mutable base_instr : int64;
  mutable slope_fp : int64;  (** ns per branch, scaled by 2^20. *)
}

let slope_to_fp slope_ns_per_branch =
  if slope_ns_per_branch < 0. then
    invalid_arg "Virtual_time: slope must be non-negative";
  Int64.of_float (Float.round (slope_ns_per_branch *. fp_scale))

let create ~start ~slope_ns_per_branch () =
  { base_virt = start; base_instr = 0L; slope_fp = slope_to_fp slope_ns_per_branch }

let virt_at t instr =
  if Int64.compare instr t.base_instr < 0 then
    invalid_arg "Virtual_time.virt_at: instr precedes current segment";
  let delta = Int64.sub instr t.base_instr in
  Time.add t.base_virt
    (Int64.shift_right_logical (Int64.mul delta t.slope_fp) fp_bits)

let slope_ns_per_branch t = Int64.to_float t.slope_fp /. fp_scale

let set_slope t ~at_instr ~slope_ns_per_branch =
  let base_virt = virt_at t at_instr in
  t.base_virt <- base_virt;
  t.base_instr <- at_instr;
  t.slope_fp <- slope_to_fp slope_ns_per_branch

let instr_for_virt t v =
  if Time.(v <= t.base_virt) then t.base_instr
  else if t.slope_fp = 0L then Int64.max_int
  else begin
    let delta_virt = Time.sub v t.base_virt in
    (* Smallest d with (d * slope_fp) >> fp_bits >= delta_virt: ceiling
       division of delta_virt << fp_bits by slope_fp. *)
    let num = Int64.shift_left delta_virt fp_bits in
    let d = Int64.div (Int64.add num (Int64.sub t.slope_fp 1L)) t.slope_fp in
    Int64.add t.base_instr d
  end

let clamped_slope ~l ~u x =
  if l > u then invalid_arg "Virtual_time.clamped_slope: l > u";
  Float.max l (Float.min u x)
