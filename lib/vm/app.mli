(** Guest applications as deterministic state machines.

    A guest application reacts to events (boot, delivered packets, disk
    completions, timers) with a list of actions. Determinism contract: the
    actions may depend only on the application's own state, the event, and
    the guest's virtual clock — never on real time or ambient randomness.
    StopWatch relies on this: replicas fed the same events at the same
    virtual times must emit identical action sequences (and hence identical
    output packets). *)

type event =
  | Boot  (** Delivered once when the guest starts. *)
  | Packet_in of Sw_net.Packet.t  (** A network interrupt's packet. *)
  | Disk_done of { tag : int }  (** Completion of a tagged disk request. *)
  | Dma_done of { tag : int }  (** Completion of a tagged DMA transfer. *)
  | Timer of { tag : int }  (** A one-shot timer set via {!Set_timer}. *)
  | Tick  (** Periodic PIT timer interrupt; most applications ignore it. *)

type action =
  | Compute of int64  (** Retire this many branches before later actions. *)
  | Disk_read of { bytes : int; sequential : bool; tag : int }
  | Disk_write of { bytes : int; sequential : bool; tag : int }
  | Dma_transfer of { bytes : int; tag : int }
      (** A device-memory DMA transfer; completes with [Dma_done]. *)
  | Send of { dst : Sw_net.Address.t; size : int; payload : Sw_net.Packet.payload }
  | Set_timer of { after : Sw_sim.Time.t; tag : int }
      (** Fire a [Timer] event once the guest's virtual clock has advanced by
          [after]. *)

type t = {
  handle : virt_now:Sw_sim.Time.t -> event -> action list;
      (** [virt_now] is the guest's virtual time at the injection point. *)
}

(** A factory builds one fresh application instance per VM replica. *)
type factory = unit -> t

(** An application that ignores every event (idle guest). *)
val idle : factory

(** [stateful ~init ~handle] builds a factory around a pure transition
    function — the recommended way to write applications. *)
val stateful :
  init:'s -> handle:('s -> virt_now:Sw_sim.Time.t -> event -> 's * action list) -> factory
