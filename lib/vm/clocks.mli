(** Guest-visible real-time clock interfaces (paper Sec. IV-B).

    On real hardware a guest can read time through several doors: the
    [rdtsc] instruction (time-stamp counter), the CMOS real-time clock
    (seconds granularity), and the Programmable Interval Timer's countdown
    register. Xen already emulates all three; StopWatch re-bases the
    emulations on the guest's *virtual* clock so that every value a guest can
    observe is a deterministic function of its own progress.

    A guest application holds a [Clocks.t] and evaluates these readings at
    the [virt_now] its event handler receives; because they all derive from
    virtual time, replicas reading at the same point of their execution
    obtain bit-identical values (tested), so no internal clock can serve as
    an independent reference for a timing attack. *)

type t

(** [create ~tsc_hz ~pit_hz ~pit_reload ()] describes the virtual platform's
    clocks: a TSC advancing at [tsc_hz] (default 3.0 GHz, the paper's
    Q9650), and a PIT at [pit_hz] (default 1.193182 MHz, the i8254 input
    clock) whose counter counts down from [pit_reload] (default 4772 — a
    250 Hz interrupt rate, the paper's guest configuration). *)
val create : ?tsc_hz:float -> ?pit_hz:float -> ?pit_reload:int -> unit -> t

(** [rdtsc t ~virt] is the time-stamp counter value a guest reads at virtual
    time [virt]: [floor (virt_seconds * tsc_hz)]. *)
val rdtsc : t -> virt:Sw_sim.Time.t -> int64

(** [rtc_seconds t ~virt] is the CMOS RTC reading (whole seconds of virtual
    time since guest start). *)
val rtc_seconds : t -> virt:Sw_sim.Time.t -> int

(** [pit_counter t ~virt] is the PIT countdown register: it decrements at
    [pit_hz] from [pit_reload] and reloads on reaching zero. *)
val pit_counter : t -> virt:Sw_sim.Time.t -> int

(** Interrupt period implied by the PIT programming ([pit_reload / pit_hz]),
    useful as the guest's [pit_period] configuration. *)
val pit_interrupt_period : t -> Sw_sim.Time.t
