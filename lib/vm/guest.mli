(** The guest VM runtime: executes an application's actions against a branch
    counter and the guest's virtual clock.

    The VMM drives a guest by alternating [run_branches] (one scheduler slice
    of execution) with injection calls at VM-exit points ([inject],
    [deliver_due_timers]). An idle guest spins: [run_branches] always
    advances the branch counter by the full slice, so virtual time never
    stalls and replicas retire identical branch counts at each exit.

    Outgoing packets are numbered by a deterministic per-guest sequence
    counter; replicas therefore assign identical sequence numbers to
    corresponding packets, which the egress node's median release relies
    on. *)

type sinks = {
  send :
    seq:int ->
    instr:int64 ->
    dst:Sw_net.Address.t ->
    size:int ->
    payload:Sw_net.Packet.payload ->
    unit;
      (** Called when the guest emits a packet, [instr] branches into its
          execution. *)
  disk :
    kind:[ `Read | `Write ] ->
    bytes:int ->
    sequential:bool ->
    tag:int ->
    instr:int64 ->
    unit;  (** Called when the guest issues a disk request. *)
  dma : bytes:int -> tag:int -> instr:int64 -> unit;
      (** Called when the guest starts a DMA transfer. *)
}

type t

(** [create ~app ~vt ?pit_period ~sinks ()] builds a guest. [pit_period]
    enables periodic {!App.Tick} events on the guest's virtual clock (the
    paper's guests use a 250 Hz PIT, i.e. 4 ms). *)
val create :
  app:App.t ->
  vt:Virtual_time.t ->
  ?pit_period:Sw_sim.Time.t ->
  sinks:sinks ->
  unit ->
  t

(** Injects {!App.Boot}; call once before the first slice. *)
val boot : t -> unit

val instr : t -> int64
val virt_now : t -> Sw_sim.Time.t
val vt : t -> Virtual_time.t

(** [run_branches t n] executes [n] branches' worth of guest work (compute
    actions, emitting sends/disk requests at their exact branch offsets;
    idle spinning when the action queue is empty). *)
val run_branches : t -> int64 -> unit

(** [inject t ev] delivers an interrupt's event to the application (at a VM
    exit). Immediate resulting actions (sends, disk requests, timers) execute
    at the current branch count. *)
val inject : t -> App.event -> unit

(** Earliest pending timer/tick deadline (virtual), if any. *)
val next_timer_virt : t -> Sw_sim.Time.t option

(** Delivers every timer and PIT tick whose deadline has been reached. *)
val deliver_due_timers : t -> unit

(** True when the guest has real work queued (as opposed to idle spin) —
    used for CPU accounting, never for scheduling decisions. *)
val has_work : t -> bool

(** Packets emitted so far. *)
val sent_packets : t -> int

(** [set_muted t true] suppresses the sinks (sends, disk, DMA requests do
    not reach the devices) while still advancing all internal state —
    including the outgoing sequence counter. Recovery replays a replica's
    logged history against a muted guest, then unmutes it. *)
val set_muted : t -> bool -> unit
