(** The guest's virtual clock (paper Sec. IV, Eqn. 1):

    virt(instr) = slope * instr + start

    computed in fixed point (nanoseconds scaled by 2^20 per branch) so that
    all replicas derive bit-identical virtual times from the same branch
    count. Epoch resynchronisation replaces the parameters at an exact
    branch-count boundary: the new [start] is the old clock's value there, so
    the clock stays continuous and monotone while [slope] is clamped to the
    configured [[l, u]] range. *)

type t

(** [create ~start ~slope_ns_per_branch ()] begins the clock at virtual time
    [start] for branch count 0. *)
val create : start:Sw_sim.Time.t -> slope_ns_per_branch:float -> unit -> t

(** Virtual time after retiring [instr] branches (monotone in [instr]).
    Raises [Invalid_argument] when [instr] precedes the instant of the last
    parameter change. *)
val virt_at : t -> int64 -> Sw_sim.Time.t

(** Current slope in ns/branch (after fixed-point rounding). *)
val slope_ns_per_branch : t -> float

(** [set_slope t ~at_instr ~slope_ns_per_branch] re-parameterises: the new
    segment starts at [at_instr] with [start = virt_at t at_instr]. Raises
    [Invalid_argument] when [at_instr] precedes the previous change. *)
val set_slope : t -> at_instr:int64 -> slope_ns_per_branch:float -> unit

(** [instr_for_virt t v] is the smallest branch count whose virtual time is
    [>= v], relative to the current parameter segment (used to plan wakeups). *)
val instr_for_virt : t -> Sw_sim.Time.t -> int64

(** [clamped_slope ~l ~u x] applies the paper's [[l, u]] clamp. *)
val clamped_slope : l:float -> u:float -> float -> float
