module Time = Sw_sim.Time

type sinks = {
  send :
    seq:int ->
    instr:int64 ->
    dst:Sw_net.Address.t ->
    size:int ->
    payload:Sw_net.Packet.payload ->
    unit;
  disk :
    kind:[ `Read | `Write ] ->
    bytes:int ->
    sequential:bool ->
    tag:int ->
    instr:int64 ->
    unit;
  dma : bytes:int -> tag:int -> instr:int64 -> unit;
}

type t = {
  app : App.t;
  vt : Virtual_time.t;
  sinks : sinks;
  actions : App.action Queue.t;
  mutable instr : int64;
  mutable out_seq : int;
  (* One-shot timers as a sorted association list (deadline, tag); guests set
     few timers, so a list is fine and keeps ordering explicit. *)
  mutable timers : (Time.t * int) list;
  mutable next_tick : Time.t option;
  pit_period : Time.t option;
  mutable sent : int;
  mutable muted : bool;
}

let create ~app ~vt ?pit_period ~sinks () =
  (match pit_period with
  | Some p when Time.(p <= Time.zero) ->
      invalid_arg "Guest.create: pit_period must be positive"
  | _ -> ());
  {
    app;
    vt;
    sinks;
    actions = Queue.create ();
    instr = 0L;
    out_seq = 0;
    timers = [];
    next_tick = None;
    pit_period;
    sent = 0;
    muted = false;
  }

let instr t = t.instr
let virt_now t = Virtual_time.virt_at t.vt t.instr
let vt t = t.vt

let insert_timer t deadline tag =
  let rec insert = function
    | [] -> [ (deadline, tag) ]
    | ((d, g) as hd) :: rest ->
        if Time.(deadline < d) || (Time.equal deadline d && tag < g) then
          (deadline, tag) :: hd :: rest
        else hd :: insert rest
  in
  t.timers <- insert t.timers

(* Execute queued actions that take no guest time, stopping at the first
   Compute (or when the queue empties). *)
let rec process_immediate t =
  match Queue.peek_opt t.actions with
  | None | Some (App.Compute _) -> ()
  | Some action ->
      ignore (Queue.pop t.actions);
      (match action with
      | App.Compute _ -> assert false
      | App.Send { dst; size; payload } ->
          let seq = t.out_seq in
          t.out_seq <- seq + 1;
          t.sent <- t.sent + 1;
          if not t.muted then t.sinks.send ~seq ~instr:t.instr ~dst ~size ~payload
      | App.Disk_read { bytes; sequential; tag } ->
          if not t.muted then
            t.sinks.disk ~kind:`Read ~bytes ~sequential ~tag ~instr:t.instr
      | App.Disk_write { bytes; sequential; tag } ->
          if not t.muted then
            t.sinks.disk ~kind:`Write ~bytes ~sequential ~tag ~instr:t.instr
      | App.Dma_transfer { bytes; tag } ->
          if not t.muted then t.sinks.dma ~bytes ~tag ~instr:t.instr
      | App.Set_timer { after; tag } ->
          if Time.is_negative after then
            invalid_arg "Guest: Set_timer with negative delay";
          insert_timer t (Time.add (virt_now t) after) tag);
      process_immediate t

let dispatch t event =
  let actions = t.app.App.handle ~virt_now:(virt_now t) event in
  List.iter (fun a -> Queue.push a t.actions) actions;
  process_immediate t

let boot t =
  (match t.pit_period with
  | Some p -> t.next_tick <- Some (Time.add (virt_now t) p)
  | None -> ());
  dispatch t App.Boot

let inject t event = dispatch t event

let run_branches t n =
  if Int64.compare n 0L < 0 then invalid_arg "Guest.run_branches: negative";
  let remaining = ref n in
  while Int64.compare !remaining 0L > 0 do
    match Queue.peek_opt t.actions with
    | Some (App.Compute c) ->
        let step = if Int64.compare c !remaining <= 0 then c else !remaining in
        t.instr <- Int64.add t.instr step;
        remaining := Int64.sub !remaining step;
        ignore (Queue.pop t.actions);
        let left = Int64.sub c step in
        if Int64.compare left 0L > 0 then begin
          (* Re-queue the unfinished compute at the head. *)
          let rest = Queue.create () in
          Queue.transfer t.actions rest;
          Queue.push (App.Compute left) t.actions;
          Queue.transfer rest t.actions
        end
        else process_immediate t
    | Some _ ->
        (* Defensive: immediate actions should have been drained. *)
        process_immediate t
    | None ->
        (* Idle spin: burn the rest of the slice. *)
        t.instr <- Int64.add t.instr !remaining;
        remaining := 0L
  done

let next_timer_virt t =
  let one_shot = match t.timers with [] -> None | (d, _) :: _ -> Some d in
  match (one_shot, t.next_tick) with
  | None, None -> None
  | Some d, None | None, Some d -> Some d
  | Some a, Some b -> Some (Time.min a b)

let deliver_due_timers t =
  let rec loop () =
    let now = virt_now t in
    let due_tick =
      match t.next_tick with Some d when Time.(d <= now) -> true | _ -> false
    in
    let due_timer =
      match t.timers with (d, _) :: _ when Time.(d <= now) -> true | _ -> false
    in
    (* Deliver in deadline order; ties go to the one-shot timer. *)
    if due_timer || due_tick then begin
      let timer_first =
        match (t.timers, t.next_tick) with
        | (d, _) :: _, Some tick -> due_timer && (Time.(d <= tick) || not due_tick)
        | _ :: _, None -> true
        | [], _ -> false
      in
      if timer_first then begin
        match t.timers with
        | (_, tag) :: rest ->
            t.timers <- rest;
            dispatch t (App.Timer { tag })
        | [] -> assert false
      end
      else begin
        (match (t.next_tick, t.pit_period) with
        | Some d, Some p -> t.next_tick <- Some (Time.add d p)
        | _ -> assert false);
        dispatch t App.Tick
      end;
      loop ()
    end
  in
  loop ()

let set_muted t muted = t.muted <- muted
let has_work t = not (Queue.is_empty t.actions)
let sent_packets t = t.sent
