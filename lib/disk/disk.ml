module Time = Sw_sim.Time
module Engine = Sw_sim.Engine

type params = {
  max_seek : Time.t;
  max_rotation : Time.t;
  transfer_bps : int;
  sequential_seek_fraction : float;
}

let default_params =
  {
    max_seek = Time.ms 3;
    max_rotation = Time.ms 4;
    transfer_bps = 100_000_000;
    sequential_seek_fraction = 0.05;
  }

let ssd_params =
  {
    max_seek = Time.us 60;
    max_rotation = Time.zero;
    transfer_bps = 500_000_000;
    sequential_seek_fraction = 1.0;
  }

type kind = Read | Write

type t = {
  engine : Engine.t;
  params : params;
  rng : Sw_sim.Prng.t;
  mutable free_at : Time.t;  (** When the head becomes available. *)
  mutable completed : int;
  per_vm : (int, int) Hashtbl.t;
  mutable busy_time : Time.t;
  mutable max_service : Time.t;
}

let create engine ?(params = default_params) () =
  {
    engine;
    params;
    rng = Engine.rng engine;
    free_at = Time.zero;
    completed = 0;
    per_vm = Hashtbl.create 8;
    busy_time = Time.zero;
    max_service = Time.zero;
  }

let draw_upto rng limit =
  if Time.equal limit Time.zero then Time.zero
  else Time.ns (Sw_sim.Prng.int rng (1 + Int64.to_int limit))

let service_time t ~bytes ~sequential =
  let p = t.params in
  let scale_seq full =
    if sequential then Time.scale full p.sequential_seek_fraction else full
  in
  (* Sequential requests continue on-track: both the seek and the rotational
     positioning shrink by the sequential fraction. *)
  let seek = scale_seq (draw_upto t.rng p.max_seek) in
  let rotation = scale_seq (draw_upto t.rng p.max_rotation) in
  let transfer =
    Time.ns
      (int_of_float
         (Float.round (float_of_int bytes *. 1e9 /. float_of_int p.transfer_bps)))
  in
  Time.add seek (Time.add rotation transfer)

let submit t ~vm ~kind:_ ~bytes ~sequential k =
  if bytes <= 0 then invalid_arg "Disk.submit: bytes must be positive";
  let now = Engine.now t.engine in
  let service = service_time t ~bytes ~sequential in
  let start = Time.max now t.free_at in
  let finish = Time.add start service in
  t.free_at <- finish;
  t.busy_time <- Time.add t.busy_time service;
  if Time.(service > t.max_service) then t.max_service <- service;
  ignore
    (Engine.schedule_at t.engine finish (fun () ->
         t.completed <- t.completed + 1;
         (match Hashtbl.find_opt t.per_vm vm with
         | Some n -> Hashtbl.replace t.per_vm vm (n + 1)
         | None -> Hashtbl.add t.per_vm vm 1);
         k ()))

let completed t = t.completed

let completed_for t ~vm =
  match Hashtbl.find_opt t.per_vm vm with Some n -> n | None -> 0

let busy_time t = t.busy_time
let max_service_time t = t.max_service
