module Time = Sw_sim.Time
module Engine = Sw_sim.Engine
module Registry = Sw_obs.Registry

type params = {
  max_seek : Time.t;
  max_rotation : Time.t;
  transfer_bps : int;
  sequential_seek_fraction : float;
}

let default_params =
  {
    max_seek = Time.ms 3;
    max_rotation = Time.ms 4;
    transfer_bps = 100_000_000;
    sequential_seek_fraction = 0.05;
  }

let ssd_params =
  {
    max_seek = Time.us 60;
    max_rotation = Time.zero;
    transfer_bps = 500_000_000;
    sequential_seek_fraction = 1.0;
  }

type kind = Read | Write

type t = {
  engine : Engine.t;
  params : params;
  path : string;
  rng : Sw_sim.Prng.t;
  mutable free_at : Time.t;  (** When the head becomes available. *)
  m_completed : Registry.Counter.t;
  per_vm : (int, Registry.Counter.t) Hashtbl.t;
  m_busy_ns : Registry.Counter.t;
  m_service : Registry.Histogram.t;
  p_complete : Sw_obs.Profile.timer;
}

let create engine ?(params = default_params) ?(path = "disk") () =
  let metrics = Engine.metrics engine in
  {
    engine;
    params;
    path;
    rng = Engine.rng engine;
    free_at = Time.zero;
    m_completed = Registry.counter metrics (path ^ ".completed");
    per_vm = Hashtbl.create 8;
    m_busy_ns = Registry.counter metrics (path ^ ".busy_ns");
    m_service = Registry.histogram metrics (path ^ ".service_ns");
    p_complete = Sw_obs.Profile.timer (Engine.profile engine) "disk.complete";
  }

let vm_counter t vm =
  match Hashtbl.find_opt t.per_vm vm with
  | Some c -> c
  | None ->
      let c =
        Registry.counter (Engine.metrics t.engine)
          (Printf.sprintf "%s.vm%d.completed" t.path vm)
      in
      Hashtbl.add t.per_vm vm c;
      c

let draw_upto rng limit =
  if Time.equal limit Time.zero then Time.zero
  else Time.ns (Sw_sim.Prng.int rng (1 + Int64.to_int limit))

let service_time t ~bytes ~sequential =
  let p = t.params in
  let scale_seq full =
    if sequential then Time.scale full p.sequential_seek_fraction else full
  in
  (* Sequential requests continue on-track: both the seek and the rotational
     positioning shrink by the sequential fraction. *)
  let seek = scale_seq (draw_upto t.rng p.max_seek) in
  let rotation = scale_seq (draw_upto t.rng p.max_rotation) in
  let transfer =
    Time.ns
      (int_of_float
         (Float.round (float_of_int bytes *. 1e9 /. float_of_int p.transfer_bps)))
  in
  Time.add seek (Time.add rotation transfer)

let submit t ~vm ~kind:_ ~bytes ~sequential k =
  if bytes <= 0 then invalid_arg "Disk.submit: bytes must be positive";
  let now = Engine.now t.engine in
  let service = service_time t ~bytes ~sequential in
  let start = Time.max now t.free_at in
  let finish = Time.add start service in
  t.free_at <- finish;
  (* [Time.t] is int64 nanoseconds; simulated durations fit OCaml's int. *)
  Registry.Counter.add t.m_busy_ns (Int64.to_int service);
  Registry.Histogram.observe t.m_service service;
  let vm_completed = vm_counter t vm in
  ignore
    (Engine.schedule_at ~kind:"disk.complete" t.engine finish (fun () ->
         Registry.Counter.incr t.m_completed;
         Registry.Counter.incr vm_completed;
         Sw_obs.Profile.time (Engine.profile t.engine) t.p_complete k))

let completed t = Registry.Counter.value t.m_completed

let completed_for t ~vm =
  match Hashtbl.find_opt t.per_vm vm with
  | Some c -> Registry.Counter.value c
  | None -> 0

let busy_time t = Time.ns (Registry.Counter.value t.m_busy_ns)

let max_service_time t =
  let m = Registry.Histogram.max t.m_service in
  if Int64.equal m Int64.min_int then Time.zero else m
