type t = { data : int array }

let create ~blocks =
  if blocks <= 0 then invalid_arg "Image.create: blocks must be positive";
  { data = Array.make blocks 0 }

let blocks t = Array.length t.data

let check t i =
  if i < 0 || i >= Array.length t.data then
    invalid_arg "Image: block index out of range"

let read t i =
  check t i;
  t.data.(i)

let write t i v =
  check t i;
  t.data.(i) <- v

let clone t = { data = Array.copy t.data }
let equal t1 t2 = t1.data = t2.data

let digest t =
  Array.fold_left (fun acc v -> (acc * 1_000_003) + v + 1) 0 t.data land max_int
