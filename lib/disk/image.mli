(** Guest disk images as block stores.

    StopWatch replicates a VM's entire disk image at start time so every
    replica sees identical disk contents; {!clone} models that copy. Blocks
    hold a small integer payload — enough to assert replica-state equality in
    tests without simulating real data. *)

type t

(** [create ~blocks] makes an image of [blocks] zeroed blocks. *)
val create : blocks:int -> t

val blocks : t -> int

(** Raises [Invalid_argument] on out-of-range block indices. *)
val read : t -> int -> int

val write : t -> int -> int -> unit

(** Deep copy. *)
val clone : t -> t

(** Structural equality of contents. *)
val equal : t -> t -> bool

(** A cheap content digest for divergence checks. *)
val digest : t -> int
