(** Rotating-disk model with a FIFO request queue.

    Service time per request is [seek + rotation + size/transfer_rate], with
    seek and rotational delay drawn uniformly up to their configured maxima;
    sequential requests scale both down by [sequential_seek_fraction]
    (continuing on-track costs almost no positioning). One request is in service at a
    time, so coresident VMs' requests queue behind each other — a timing-
    channel source the StopWatch disk offset Δd must cover. *)

type params = {
  max_seek : Sw_sim.Time.t;  (** Full-stroke seek (default 3 ms). *)
  max_rotation : Sw_sim.Time.t;  (** Full revolution (default 4 ms, 15k rpm). *)
  transfer_bps : int;  (** Media transfer rate (default 100 MB/s). *)
  sequential_seek_fraction : float;
      (** Seek scale when a request continues the previous one (default 0.05). *)
}

val default_params : params

(** Parameters resembling an SSD (tiny seek/rotation, fast transfer) — used
    by the Sec. VII-D conjecture bench about shrinking Δd. *)
val ssd_params : params

type t

(** [create engine ?params ?path ()] models one disk. [path] (default
    ["disk"]) prefixes the disk's metrics in the engine's registry:
    [<path>.completed], [<path>.vm<v>.completed], [<path>.busy_ns] and the
    [<path>.service_ns] histogram. *)
val create : Sw_sim.Engine.t -> ?params:params -> ?path:string -> unit -> t

type kind = Read | Write

(** [submit t ~vm ~kind ~bytes ~sequential k] enqueues a request and calls
    [k] at its completion time. [vm] tags the requester for accounting. *)
val submit :
  t -> vm:int -> kind:kind -> bytes:int -> sequential:bool -> (unit -> unit) -> unit

(** Completed request count. *)
val completed : t -> int

(** Completed request count for one VM. *)
val completed_for : t -> vm:int -> int

(** Time the disk has spent busy. *)
val busy_time : t -> Sw_sim.Time.t

(** Largest observed single-request service time (queueing excluded) — the
    quantity an operator would use to provision Δd. *)
val max_service_time : t -> Sw_sim.Time.t
