(** Additional distribution-distance measures, complementing
    {!Ks}: total variation and Kullback–Leibler divergence over binned
    distributions. Used to cross-check the chi-square distinguisher — a
    defence that only fooled one statistic would be weak. *)

(** [total_variation p q] = (1/2) sum |p_i - q_i| over probability vectors of
    equal length. *)
val total_variation : float array -> float array -> float

(** [kl p q] = sum p_i log (p_i / q_i); bins where [p_i = 0] contribute 0;
    [infinity] when some [p_i > 0] has [q_i = 0]. *)
val kl : float array -> float array -> float

(** [binned ?bins ~null ~alt ()] bins both distributions on [null]'s
    equiprobable quantiles and returns the probability vectors. *)
val binned :
  ?bins:int -> null:Dist.t -> alt:Dist.t -> unit -> float array * float array

(** Chernoff-Stein-style sample-complexity proxy: observations for a
    likelihood-ratio attacker to reach [confidence] is about
    [-ln(1 - confidence) / KL(alt || null)]; [infinity] when the divergence
    vanishes. *)
val kl_observations_needed :
  null:Dist.t -> alt:Dist.t -> ?bins:int -> confidence:float -> unit -> float
