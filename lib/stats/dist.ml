type t = {
  cdf : float -> float;
  sample : Sw_sim.Prng.t -> float;
  lo : float;
  hi : float;
}

let exponential ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  {
    cdf = (fun x -> if x <= 0. then 0. else 1. -. Float.exp (-.rate *. x));
    sample = (fun rng -> Sw_sim.Prng.exponential rng ~rate);
    lo = 0.;
    hi = Float.log 1e6 /. rate;
  }

let uniform ~lo ~hi =
  if hi <= lo then invalid_arg "Dist.uniform: empty support";
  {
    cdf =
      (fun x ->
        if x <= lo then 0. else if x >= hi then 1. else (x -. lo) /. (hi -. lo));
    sample = (fun rng -> Sw_sim.Prng.uniform rng ~lo ~hi);
    lo;
    hi;
  }

let constant c =
  {
    cdf = (fun x -> if x >= c then 1. else 0.);
    sample = (fun _ -> c);
    lo = c;
    hi = c;
  }

let shift d c =
  {
    cdf = (fun x -> d.cdf (x -. c));
    sample = (fun rng -> d.sample rng +. c);
    lo = d.lo +. c;
    hi = d.hi +. c;
  }

let add ?(steps = 512) d1 d2 =
  (* F_{X+Y}(z) = sum over a partition of Y's support of
     P(Y in bin) * F_X(z - y_mid). *)
  let width = (d2.hi -. d2.lo) /. float_of_int steps in
  let weights = Array.make steps 0. in
  let mids = Array.make steps 0. in
  for j = 0 to steps - 1 do
    let y0 = d2.lo +. (float_of_int j *. width) in
    let y1 = y0 +. width in
    weights.(j) <- d2.cdf y1 -. d2.cdf y0;
    mids.(j) <- (y0 +. y1) /. 2.
  done;
  (* Account for an atom at d2.lo (e.g. a point mass). *)
  let atom = d2.cdf d2.lo in
  let cdf z =
    let acc = ref (atom *. d1.cdf (z -. d2.lo)) in
    for j = 0 to steps - 1 do
      if weights.(j) > 0. then acc := !acc +. (weights.(j) *. d1.cdf (z -. mids.(j)))
    done;
    !acc
  in
  {
    cdf;
    sample = (fun rng -> d1.sample rng +. d2.sample rng);
    lo = d1.lo +. d2.lo;
    hi = d1.hi +. d2.hi;
  }

let of_samples samples =
  if Array.length samples = 0 then invalid_arg "Dist.of_samples: empty";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let cdf x =
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if sorted.(mid) <= x then search (mid + 1) hi else search lo mid
      end
    in
    float_of_int (search 0 n) /. float_of_int n
  in
  {
    cdf;
    sample = (fun rng -> sorted.(Sw_sim.Prng.int rng n));
    lo = sorted.(0);
    hi = sorted.(n - 1);
  }

let mean ?(steps = 4096) d =
  (* E[X] = lo + integral over [lo, hi] of (1 - F), for support in
     [lo, hi]. Trapezoidal rule. *)
  if d.hi <= d.lo then d.lo
  else begin
    let width = (d.hi -. d.lo) /. float_of_int steps in
    let acc = ref 0. in
    for i = 0 to steps - 1 do
      let x0 = d.lo +. (float_of_int i *. width) in
      let x1 = x0 +. width in
      acc := !acc +. (width *. (2. -. d.cdf x0 -. d.cdf x1) /. 2.)
    done;
    d.lo +. !acc
  end

let quantile d p =
  if p < 0. || p > 1. then invalid_arg "Dist.quantile: p out of range";
  let rec bisect lo hi iter =
    if iter = 0 then (lo +. hi) /. 2.
    else begin
      let mid = (lo +. hi) /. 2. in
      if d.cdf mid < p then bisect mid hi (iter - 1) else bisect lo mid (iter - 1)
    end
  in
  bisect d.lo d.hi 80
