(** Chi-square machinery: CDF, critical values, and the
    "observations needed to detect the victim" computation behind
    Figs. 1(b), 1(c) and 4(b). *)

(** [cdf ~df x] is the chi-square CDF with [df] degrees of freedom. *)
val cdf : df:int -> float -> float

(** [critical_value ~df ~confidence] is the smallest [x] with
    [cdf ~df x >= confidence] (found by bisection). *)
val critical_value : df:int -> confidence:float -> float

(** [statistic ~expected ~observed] is the Pearson goodness-of-fit statistic
    sum (o - e)^2 / e over bins with [e > 0]. Arrays must have equal
    length. *)
val statistic : expected:float array -> observed:float array -> float

(** [divergence ~null_probs ~alt_probs] is the per-observation noncentrality
    sum (q - p)^2 / p, where [p]/[q] are the bin probabilities under the null
    and the alternative. Bins with [p = 0] are skipped. *)
val divergence : null_probs:float array -> alt_probs:float array -> float

(** [observations_needed ~null_probs ~alt_probs ~confidence] is the expected
    number of observations a distinguisher drawing from the alternative needs
    before the Pearson statistic against the null exceeds the critical value
    at [confidence]: n such that n * divergence + df >= critical. Returns at
    least [1.]; [infinity] when the distributions coincide on the bins. *)
val observations_needed :
  null_probs:float array -> alt_probs:float array -> confidence:float -> float

(** Equal-probability bin edges for [n] bins of a distribution, i.e. its
    quantiles at 1/n, 2/n, ... (n-1)/n — a standard binning choice that keeps
    expected counts uniform under the null. *)
val equiprobable_edges : Dist.t -> bins:int -> float array

(** [empirical_edges samples ~bins] is the sample analogue of
    {!equiprobable_edges}: interior edges at the linearly interpolated
    sample quantiles 1/bins, ..., (bins-1)/bins. Requires a non-empty
    sample and at least 2 bins. *)
val empirical_edges : float array -> bins:int -> float array

(** [bin_probs ~edges cdf] turns bin edges (interior edges, length [b-1])
    into [b] bin probabilities under [cdf], including the two unbounded end
    bins. *)
val bin_probs : edges:float array -> (float -> float) -> float array

(** [bin_counts ~edges samples] bins raw observations with the same edge
    convention as {!bin_probs}. *)
val bin_counts : edges:float array -> float array -> float array

(** [goodness_of_fit ~edges ~null_probs ~samples] runs the Pearson test of
    [samples] against the binned null and returns the p-value
    (small = reject the null). *)
val goodness_of_fit :
  edges:float array -> null_probs:float array -> samples:float array -> float
