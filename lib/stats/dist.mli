(** Probability distributions as first-class values.

    A distribution packages a CDF together with a sampler; analytic
    experiments (Fig. 1, Fig. 8) use the CDFs, simulations use the
    samplers. *)

type t = {
  cdf : float -> float;
  sample : Sw_sim.Prng.t -> float;
  lo : float;  (** Lower end of (effective) support, for integration. *)
  hi : float;  (** Upper end of (effective) support, for integration. *)
}

(** Exponential with rate [lambda] (mean [1/lambda]); [hi] is set at the
    99.9999th percentile. *)
val exponential : rate:float -> t

val uniform : lo:float -> hi:float -> t

(** Point mass at [x]. *)
val constant : float -> t

(** [shift d c] is the distribution of [X + c] for [X ~ d]. *)
val shift : t -> float -> t

(** [add d1 d2] is the distribution of [X1 + X2] for independent Xi; the CDF
    is computed by numeric convolution on a grid of [steps] points
    (default 512). *)
val add : ?steps:int -> t -> t -> t

(** Empirical distribution of a sample (step CDF, resampling sampler). *)
val of_samples : float array -> t

val mean : ?steps:int -> t -> float
val quantile : t -> float -> float
