type t = {
  mi_bits : float;
  plugin_bits : float;
  plugin_nats : float;
  g_stat : float;
  df : int;
  p_value : float;
  n : int;
  bins : int;
}

(* Plugin MI of a contingency table (nats), plus the Miller–Madow corrected
   estimate: bias of the plugin is ~ (m_xy - m_x - m_y + 1) / 2N, where the
   m's count non-empty cells / rows / columns. *)
let of_counts ~bins counts =
  let rows = Array.length counts in
  let cols = if rows = 0 then 0 else Array.length counts.(0) in
  let row_tot = Array.make rows 0. and col_tot = Array.make cols 0. in
  let n = ref 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let c = counts.(i).(j) in
      row_tot.(i) <- row_tot.(i) +. c;
      col_tot.(j) <- col_tot.(j) +. c;
      n := !n +. c
    done
  done;
  let n = !n in
  if n <= 0. then invalid_arg "Mutual_info.of_counts: empty table";
  let plugin_nats = ref 0. in
  let m_xy = ref 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let c = counts.(i).(j) in
      if c > 0. then begin
        incr m_xy;
        plugin_nats :=
          !plugin_nats
          +. (c /. n *. Float.log (c *. n /. (row_tot.(i) *. col_tot.(j))))
      end
    done
  done;
  let plugin_nats = !plugin_nats in
  let m_x = Array.fold_left (fun a t -> if t > 0. then a + 1 else a) 0 row_tot in
  let m_y = Array.fold_left (fun a t -> if t > 0. then a + 1 else a) 0 col_tot in
  let correction =
    float_of_int (!m_xy - m_x - m_y + 1) /. (2. *. n)
  in
  let mm_nats = plugin_nats -. correction in
  let ln2 = Float.log 2. in
  (* G-test: G = 2 N * plugin MI (nats) ~ chi-square with
     (rows - 1)(cols - 1) df over the occupied rows/columns. *)
  let g_stat = 2. *. n *. plugin_nats in
  let df = max 1 ((max 1 (m_x - 1)) * max 1 (m_y - 1)) in
  let p_value = 1. -. Chi_square.cdf ~df g_stat in
  {
    mi_bits = mm_nats /. ln2;
    plugin_bits = plugin_nats /. ln2;
    plugin_nats;
    g_stat;
    df;
    p_value;
    n = int_of_float n;
    bins;
  }

let default_bins = 8

let against_labels ?(bins = default_bins) ~null ~alt () =
  if Array.length null = 0 || Array.length alt = 0 then
    invalid_arg "Mutual_info.against_labels: empty sample";
  (* Bin edges from the pooled sample so both labels see the same cells. *)
  let pooled = Array.append null alt in
  let edges = Chi_square.empirical_edges pooled ~bins in
  let counts =
    [| Chi_square.bin_counts ~edges null; Chi_square.bin_counts ~edges alt |]
  in
  of_counts ~bins counts

let paired ?(bins = default_bins) x y =
  let n = Array.length x in
  if n = 0 || Array.length y <> n then
    invalid_arg "Mutual_info.paired: need equal non-empty samples";
  let ex = Chi_square.empirical_edges x ~bins
  and ey = Chi_square.empirical_edges y ~bins in
  let index edges v =
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if edges.(mid) <= v then search (mid + 1) hi else search lo mid
      end
    in
    search 0 (Array.length edges)
  in
  let counts = Array.make_matrix bins bins 0. in
  for i = 0 to n - 1 do
    let a = index ex x.(i) and b = index ey y.(i) in
    counts.(a).(b) <- counts.(a).(b) +. 1.
  done;
  of_counts ~bins counts

let entropy_bits ?(bins = default_bins) x =
  if Array.length x = 0 then invalid_arg "Mutual_info.entropy_bits: empty sample";
  let edges = Chi_square.empirical_edges x ~bins in
  let counts = Chi_square.bin_counts ~edges x in
  let n = float_of_int (Array.length x) in
  let acc = ref 0. in
  Array.iter
    (fun c -> if c > 0. then acc := !acc -. (c /. n *. Float.log (c /. n)))
    counts;
  !acc /. Float.log 2.
