(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Special.log_gamma: requires x > 0";
  if x < 0.5 then
    (* Reflection formula. *)
    Float.log (Float.pi /. Float.sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. Float.log (2. *. Float.pi))
    +. ((x +. 0.5) *. Float.log t)
    -. t
    +. Float.log !acc
  end

(* Series expansion of P(a, x), valid for x < a + 1. *)
let gamma_p_series a x =
  let eps = 1e-14 in
  let rec loop n term sum =
    if Float.abs term < Float.abs sum *. eps || n > 1000 then sum
    else begin
      let term = term *. x /. (a +. float_of_int n) in
      loop (n + 1) term (sum +. term)
    end
  in
  let first = 1. /. a in
  let sum = loop 1 first first in
  sum *. Float.exp ((a *. Float.log x) -. x -. log_gamma a)

(* Continued fraction for Q(a, x), valid for x >= a + 1 (Lentz). *)
let gamma_q_cf a x =
  let eps = 1e-14 and tiny = 1e-300 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. tiny) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let continue = ref true in
  while !continue && !i <= 1000 do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.;
    d := (an *. !d) +. !b;
    if Float.abs !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1. /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if Float.abs (delta -. 1.) < eps then continue := false;
    incr i
  done;
  !h *. Float.exp ((a *. Float.log x) -. x -. log_gamma a)

let gamma_p a x =
  if a <= 0. then invalid_arg "Special.gamma_p: requires a > 0";
  if x < 0. then invalid_arg "Special.gamma_p: requires x >= 0";
  if x = 0. then 0.
  else if x < a +. 1. then gamma_p_series a x
  else 1. -. gamma_q_cf a x

let gamma_q a x = 1. -. gamma_p a x

(* Abramowitz & Stegun 7.1.26, max error 1.5e-7; adequate for tests. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let poly =
    t
    *. (0.254829592
       +. (t
          *. (-0.284496736
             +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  sign *. (1. -. (poly *. Float.exp (-.x *. x)))

let log_beta a b = log_gamma a +. log_gamma b -. log_gamma (a +. b)

(* Continued fraction for the incomplete beta (modified Lentz). *)
let beta_cf a b x =
  let eps = 1e-14 and tiny = 1e-300 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if Float.abs !d < tiny then d := tiny;
  d := 1. /. !d;
  let h = ref !d in
  let m = ref 1 in
  let continue = ref true in
  while !continue && !m <= 300 do
    let fm = float_of_int !m in
    let m2 = 2. *. fm in
    let aa = fm *. (b -. fm) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1. +. (aa *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := 1. +. (aa /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1. /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. fm) *. (qab +. fm) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1. +. (aa *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := 1. +. (aa /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1. /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if Float.abs (delta -. 1.) < eps then continue := false;
    incr m
  done;
  !h

let betai a b x =
  if a <= 0. || b <= 0. then invalid_arg "Special.betai: requires a, b > 0";
  if x < 0. || x > 1. then invalid_arg "Special.betai: requires x in [0, 1]";
  if x = 0. then 0.
  else if x = 1. then 1.
  else begin
    let front =
      Float.exp
        ((a *. Float.log x) +. (b *. Float.log (1. -. x)) -. log_beta a b)
    in
    (* The continued fraction converges fast only below the distribution's
       mode; use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) past it. *)
    if x < (a +. 1.) /. (a +. b +. 2.) then front *. beta_cf a b x /. a
    else 1. -. (front *. beta_cf b a (1. -. x) /. b)
  end

let norm_cdf x = 0.5 *. (1. +. erf (x /. Float.sqrt 2.))

let probit p =
  if p <= 0. || p >= 1. then invalid_arg "Special.probit: requires p in (0, 1)";
  (* Bisection against the erf-based CDF: slower than a rational
     approximation but trivially monotone and deterministic. *)
  let rec bisect lo hi iter =
    if iter = 0 then (lo +. hi) /. 2.
    else begin
      let mid = (lo +. hi) /. 2. in
      if norm_cdf mid < p then bisect mid hi (iter - 1)
      else bisect lo mid (iter - 1)
    end
  in
  bisect (-40.) 40. 200

let choose n k =
  if k < 0 || k > n then 0.
  else begin
    let k = Stdlib.min k (n - k) in
    let acc = ref 1. in
    for i = 0 to k - 1 do
      acc := !acc *. float_of_int (n - i) /. float_of_int (i + 1)
    done;
    Float.round !acc
  end
