let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Ttest.mean: empty sample";
  Array.fold_left ( +. ) 0. xs /. float_of_int n

(* Unbiased (n - 1) sample variance. *)
let variance xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Ttest.variance: need >= 2 samples";
  let m = mean xs in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
  acc /. float_of_int (n - 1)

type t = { t_stat : float; df : float; p_value : float }

let welch a b =
  let na = Array.length a and nb = Array.length b in
  if na < 2 || nb < 2 then invalid_arg "Ttest.welch: need >= 2 samples per side";
  let fa = float_of_int na and fb = float_of_int nb in
  let ma = mean a and mb = mean b in
  let va = variance a /. fa and vb = variance b /. fb in
  let se2 = va +. vb in
  if se2 <= 0. then begin
    (* Both sides constant: identical means are indistinguishable, distinct
       means are distinguished by a single observation. *)
    if ma = mb then { t_stat = 0.; df = fa +. fb -. 2.; p_value = 1. }
    else
      {
        t_stat = (if ma > mb then infinity else neg_infinity);
        df = fa +. fb -. 2.;
        p_value = 0.;
      }
  end
  else begin
    let t_stat = (ma -. mb) /. Float.sqrt se2 in
    (* Welch–Satterthwaite effective degrees of freedom. *)
    let df =
      se2 *. se2
      /. ((va *. va /. (fa -. 1.)) +. (vb *. vb /. (fb -. 1.)))
    in
    (* Two-sided: P(|T| > t) = I_{df/(df + t^2)}(df/2, 1/2). *)
    let p_value = Special.betai (df /. 2.) 0.5 (df /. (df +. (t_stat *. t_stat))) in
    { t_stat; df; p_value }
  end

let cohens_d a b =
  let na = Array.length a and nb = Array.length b in
  if na < 2 || nb < 2 then
    invalid_arg "Ttest.cohens_d: need >= 2 samples per side";
  let fa = float_of_int na and fb = float_of_int nb in
  let diff = mean a -. mean b in
  let pooled =
    (((fa -. 1.) *. variance a) +. ((fb -. 1.) *. variance b))
    /. (fa +. fb -. 2.)
  in
  if pooled <= 0. then begin
    if diff = 0. then 0. else if diff > 0. then infinity else neg_infinity
  end
  else diff /. Float.sqrt pooled
