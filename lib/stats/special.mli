(** Special functions needed by the statistical machinery. *)

(** Natural log of the gamma function (Lanczos approximation), for [x > 0]. *)
val log_gamma : float -> float

(** Regularised lower incomplete gamma [P(a, x)], for [a > 0], [x >= 0]. *)
val gamma_p : float -> float -> float

(** Regularised upper incomplete gamma [Q(a, x) = 1 - P(a, x)]. *)
val gamma_q : float -> float -> float

(** Error function. *)
val erf : float -> float

(** Binomial coefficient as a float (exact for small arguments). *)
val choose : int -> int -> float
