(** Special functions needed by the statistical machinery. *)

(** Natural log of the gamma function (Lanczos approximation), for [x > 0]. *)
val log_gamma : float -> float

(** Regularised lower incomplete gamma [P(a, x)], for [a > 0], [x >= 0]. *)
val gamma_p : float -> float -> float

(** Regularised upper incomplete gamma [Q(a, x) = 1 - P(a, x)]. *)
val gamma_q : float -> float -> float

(** Natural log of the (complete) beta function [B(a, b)]. *)
val log_beta : float -> float -> float

(** Regularised incomplete beta [I_x(a, b)] (continued fraction), for
    [a, b > 0] and [x] in [[0, 1]] — the tail function behind Student's t
    p-values. *)
val betai : float -> float -> float -> float

(** Error function. *)
val erf : float -> float

(** Standard normal CDF, via {!erf}. *)
val norm_cdf : float -> float

(** Standard normal quantile (inverse of {!norm_cdf}), for [p] in (0, 1);
    found by bisection, so exactly as accurate as the {!erf}
    approximation. *)
val probit : float -> float

(** Binomial coefficient as a float (exact for small arguments). *)
val choose : int -> int -> float
