(* Sum over all subsets I of {0..m-1} with |I| = l of prod_{i in I} f_i(x).
   Computed via the elementary symmetric polynomial recurrence: e_l of
   (v_0..v_{m-1}) in O(m^2), which is exact and far cheaper than enumerating
   subsets. *)
let elementary_symmetric values l =
  let m = Array.length values in
  let e = Array.make (l + 1) 0. in
  e.(0) <- 1.;
  for i = 0 to m - 1 do
    for j = Stdlib.min l (i + 1) downto 1 do
      e.(j) <- e.(j) +. (values.(i) *. e.(j - 1))
    done
  done;
  e.(l)

let cdf_rank ~cdfs ~r x =
  let m = Array.length cdfs in
  if r < 1 || r > m then invalid_arg "Order_stats.cdf_rank: rank out of range";
  let values = Array.map (fun f -> f x) cdfs in
  let acc = ref 0. in
  for l = r to m do
    let sign = if (l - r) mod 2 = 0 then 1. else -1. in
    let coeff = Special.choose (l - 1) (r - 1) in
    acc := !acc +. (sign *. coeff *. elementary_symmetric values l)
  done;
  (* Clamp tiny numeric excursions outside [0, 1]. *)
  Float.max 0. (Float.min 1. !acc)

let median3 f1 f2 f3 x =
  let a = f1 x and b = f2 x and c = f3 x in
  (a *. b) +. (a *. c) +. (b *. c) -. (2. *. a *. b *. c)

let median ~cdfs x =
  let m = Array.length cdfs in
  if m mod 2 = 0 then invalid_arg "Order_stats.median: even count";
  if m = 3 then median3 cdfs.(0) cdfs.(1) cdfs.(2) x
  else cdf_rank ~cdfs ~r:((m + 1) / 2) x

let sample_median samples =
  let n = Array.length samples in
  if n mod 2 = 0 then invalid_arg "Order_stats.sample_median: even count";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  sorted.(n / 2)

(* Allocation-free sample medians for the small odd vote counts the VMM
   takes per replicated interrupt (3 replicas, occasionally 5 with spares).
   Branch networks instead of copy + sort: a handful of compares, no
   intermediate array, no comparator closure. *)

let median3_int64 a b c =
  if a <= b then if b <= c then b else if a <= c then c else a
  else if a <= c then a
  else if b <= c then c
  else b

let median5_int64 a b c d e =
  (* Median of five via a 6-compare network: f is the larger of the two
     pairwise minima, g the smaller of the two pairwise maxima; the median
     of {e, f, g} is the median of all five. *)
  let f =
    let x = if a <= b then a else b and y = if c <= d then c else d in
    if x >= y then x else y
  in
  let g =
    let x = if a >= b then a else b and y = if c >= d then c else d in
    if x <= y then x else y
  in
  median3_int64 e f g

let median_int64 samples =
  let n = Array.length samples in
  if n mod 2 = 0 then invalid_arg "Order_stats.median_int64: even count";
  match n with
  | 1 -> samples.(0)
  | 3 -> median3_int64 samples.(0) samples.(1) samples.(2)
  | 5 ->
      median5_int64 samples.(0) samples.(1) samples.(2) samples.(3)
        samples.(4)
  | _ ->
      let sorted = Array.copy samples in
      Array.sort Int64.compare sorted;
      sorted.(n / 2)

let median_dist dists =
  let m = Array.length dists in
  if m mod 2 = 0 then invalid_arg "Order_stats.median_dist: even count";
  let cdfs = Array.map (fun (d : Dist.t) -> d.cdf) dists in
  let lo = Array.fold_left (fun acc (d : Dist.t) -> Float.min acc d.lo) infinity dists in
  let hi = Array.fold_left (fun acc (d : Dist.t) -> Float.max acc d.hi) neg_infinity dists in
  {
    Dist.cdf = median ~cdfs;
    sample = (fun rng -> sample_median (Array.map (fun (d : Dist.t) -> d.sample rng) dists));
    lo;
    hi;
  }
