(** Numeric integration helpers. *)

(** Composite Simpson's rule on [[a, b]] with [n] (even, >= 2) panels. *)
val simpson : ?n:int -> (float -> float) -> a:float -> b:float -> float

(** Trapezoidal rule. *)
val trapezoid : ?n:int -> (float -> float) -> a:float -> b:float -> float
