let distance ?(grid = 4096) ~lo ~hi f g =
  if hi <= lo then invalid_arg "Ks.distance: empty range";
  let width = (hi -. lo) /. float_of_int grid in
  let best = ref 0. in
  for i = 0 to grid do
    let x = lo +. (float_of_int i *. width) in
    let d = Float.abs (f x -. g x) in
    if d > !best then best := d
  done;
  !best

let kolmogorov_q lambda =
  if lambda <= 0. then 1.
  else begin
    (* Q(lambda) = 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2); terms
       decay doubly exponentially, so a short alternating sum suffices. *)
    let a2 = -2. *. lambda *. lambda in
    let acc = ref 0. and fac = ref 2. and prev = ref infinity in
    let j = ref 1 in
    let continue = ref true in
    while !continue && !j <= 100 do
      let term = !fac *. Float.exp (a2 *. float_of_int (!j * !j)) in
      acc := !acc +. term;
      let mag = Float.abs term in
      if mag <= 1e-3 *. !prev || mag <= 1e-12 *. Float.abs !acc then
        continue := false
      else begin
        fac := -. !fac;
        prev := mag;
        incr j
      end
    done;
    Float.max 0. (Float.min 1. !acc)
  end

let two_sample a b =
  if Array.length a = 0 || Array.length b = 0 then
    invalid_arg "Ks.two_sample: empty sample";
  let sa = Array.copy a and sb = Array.copy b in
  Array.sort Float.compare sa;
  Array.sort Float.compare sb;
  let na = Array.length sa and nb = Array.length sb in
  let fa = float_of_int na and fb = float_of_int nb in
  let rec walk i j best =
    if i >= na || j >= nb then begin
      let final =
        Float.abs ((float_of_int i /. fa) -. (float_of_int j /. fb))
      in
      Float.max best final
    end
    else begin
      (* Advance past ties on both sides so equal observations cancel. *)
      let i, j =
        if sa.(i) < sb.(j) then (i + 1, j)
        else if sa.(i) > sb.(j) then (i, j + 1)
        else (i + 1, j + 1)
      in
      let d = Float.abs ((float_of_int i /. fa) -. (float_of_int j /. fb)) in
      walk i j (Float.max best d)
    end
  in
  walk 0 0 0.

let p_value a b =
  let d = two_sample a b in
  let na = float_of_int (Array.length a) and nb = float_of_int (Array.length b) in
  (* Asymptotic two-sample p with the standard small-sample correction
     lambda = (sqrt ne + 0.12 + 0.11 / sqrt ne) * D, ne = na nb / (na + nb). *)
  let ne = Float.sqrt (na *. nb /. (na +. nb)) in
  kolmogorov_q ((ne +. 0.12 +. (0.11 /. ne)) *. d)
