let distance ?(grid = 4096) ~lo ~hi f g =
  if hi <= lo then invalid_arg "Ks.distance: empty range";
  let width = (hi -. lo) /. float_of_int grid in
  let best = ref 0. in
  for i = 0 to grid do
    let x = lo +. (float_of_int i *. width) in
    let d = Float.abs (f x -. g x) in
    if d > !best then best := d
  done;
  !best

let two_sample a b =
  if Array.length a = 0 || Array.length b = 0 then
    invalid_arg "Ks.two_sample: empty sample";
  let sa = Array.copy a and sb = Array.copy b in
  Array.sort Float.compare sa;
  Array.sort Float.compare sb;
  let na = Array.length sa and nb = Array.length sb in
  let fa = float_of_int na and fb = float_of_int nb in
  let rec walk i j best =
    if i >= na || j >= nb then begin
      let final =
        Float.abs ((float_of_int i /. fa) -. (float_of_int j /. fb))
      in
      Float.max best final
    end
    else begin
      (* Advance past ties on both sides so equal observations cancel. *)
      let i, j =
        if sa.(i) < sb.(j) then (i + 1, j)
        else if sa.(i) > sb.(j) then (i, j + 1)
        else (i + 1, j + 1)
      in
      let d = Float.abs ((float_of_int i /. fa) -. (float_of_int j /. fb)) in
      walk i j (Float.max best d)
    end
  in
  walk 0 0 0.
