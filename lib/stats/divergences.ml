let check_lengths p q name =
  if Array.length p <> Array.length q then invalid_arg (name ^ ": length mismatch")

let total_variation p q =
  check_lengths p q "Divergences.total_variation";
  let acc = ref 0. in
  Array.iteri (fun i pi -> acc := !acc +. Float.abs (pi -. q.(i))) p;
  !acc /. 2.

let kl p q =
  check_lengths p q "Divergences.kl";
  let acc = ref 0. in
  (try
     Array.iteri
       (fun i pi ->
         if pi > 0. then
           if q.(i) <= 0. then begin
             acc := infinity;
             raise Exit
           end
           else acc := !acc +. (pi *. Float.log (pi /. q.(i))))
       p
   with Exit -> ());
  !acc

let binned ?(bins = 10) ~null ~alt () =
  let edges = Chi_square.equiprobable_edges null ~bins in
  ( Chi_square.bin_probs ~edges null.Dist.cdf,
    Chi_square.bin_probs ~edges alt.Dist.cdf )

let kl_observations_needed ~null ~alt ?bins ~confidence () =
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Divergences.kl_observations_needed: confidence must be in (0, 1)";
  let p_null, p_alt = binned ?bins ~null ~alt () in
  let d = kl p_alt p_null in
  if d <= 0. then infinity else Float.max 1. (-.Float.log (1. -. confidence) /. d)
