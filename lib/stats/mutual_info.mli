(** Binned mutual-information estimation with the Miller–Madow bias
    correction, plus the G-test it induces.

    The leak-detection use is {!against_labels}: how much information the
    config label C (null vs alt) carries about an observed timing value X,
    I(C; X), estimated over a 2 × bins contingency table whose columns are
    pooled-sample quantile bins. The G statistic [2 N I_plugin] (nats) is
    asymptotically chi-square, which gives the p-value. *)

type t = {
  mi_bits : float;  (** Miller–Madow corrected estimate, bits. *)
  plugin_bits : float;  (** Uncorrected plugin estimate, bits. *)
  plugin_nats : float;
  g_stat : float;  (** [2 N * plugin_nats], the G-test statistic. *)
  df : int;  (** (occupied rows - 1)(occupied columns - 1), at least 1. *)
  p_value : float;
  n : int;  (** Total observations in the table. *)
  bins : int;
}

val default_bins : int

(** MI between the sample label and the observed value: columns are
    quantile bins of the pooled sample, rows are {null, alt}. *)
val against_labels : ?bins:int -> null:float array -> alt:float array -> unit -> t

(** MI between two paired series of equal length; each axis is binned by
    its own sample quantiles. *)
val paired : ?bins:int -> float array -> float array -> t

(** Plugin entropy (bits) of a sample under its own quantile binning —
    the H(X) that {!paired} of a stream with itself approaches. *)
val entropy_bits : ?bins:int -> float array -> float
