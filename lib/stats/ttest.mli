(** Two-sample location tests: Welch's unequal-variance t-test and the
    Cohen's d standardised effect size. *)

val mean : float array -> float

(** Unbiased (n-1) sample variance; requires at least two samples. *)
val variance : float array -> float

type t = {
  t_stat : float;
  df : float;  (** Welch–Satterthwaite effective degrees of freedom. *)
  p_value : float;  (** Two-sided, via the regularised incomplete beta. *)
}

(** [welch a b] tests whether the two samples share a mean without assuming
    equal variances. Requires at least two samples per side. Two constant
    samples degenerate cleanly: p = 1 when the means coincide, p = 0 (with
    an infinite statistic) when they differ. *)
val welch : float array -> float array -> t

(** [cohens_d a b] is (mean a - mean b) over the pooled standard deviation
    — the standardised effect size conventionally read as small/medium/
    large at 0.2/0.5/0.8. Signed infinity when the pooled variance is zero
    but the means differ; 0 when both are constant and equal. *)
val cohens_d : float array -> float array -> float
