let cdf ~df x =
  if df <= 0 then invalid_arg "Chi_square.cdf: df must be positive";
  if x <= 0. then 0. else Special.gamma_p (float_of_int df /. 2.) (x /. 2.)

let critical_value ~df ~confidence =
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Chi_square.critical_value: confidence must be in (0, 1)";
  let rec widen hi = if cdf ~df hi < confidence then widen (hi *. 2.) else hi in
  let hi = widen 1. in
  let rec bisect lo hi iter =
    if iter = 0 then (lo +. hi) /. 2.
    else begin
      let mid = (lo +. hi) /. 2. in
      if cdf ~df mid < confidence then bisect mid hi (iter - 1)
      else bisect lo mid (iter - 1)
    end
  in
  bisect 0. hi 100

let statistic ~expected ~observed =
  if Array.length expected <> Array.length observed then
    invalid_arg "Chi_square.statistic: length mismatch";
  let acc = ref 0. in
  Array.iteri
    (fun i e ->
      if e > 0. then begin
        let d = observed.(i) -. e in
        acc := !acc +. (d *. d /. e)
      end)
    expected;
  !acc

let divergence ~null_probs ~alt_probs =
  if Array.length null_probs <> Array.length alt_probs then
    invalid_arg "Chi_square.divergence: length mismatch";
  let acc = ref 0. in
  Array.iteri
    (fun i p ->
      if p > 0. then begin
        let d = alt_probs.(i) -. p in
        acc := !acc +. (d *. d /. p)
      end)
    null_probs;
  !acc

let observations_needed ~null_probs ~alt_probs ~confidence =
  let df = Array.length null_probs - 1 in
  if df < 1 then invalid_arg "Chi_square.observations_needed: need >= 2 bins";
  let delta = divergence ~null_probs ~alt_probs in
  if delta <= 0. then infinity
  else begin
    let crit = critical_value ~df ~confidence in
    (* Under the alternative, E[statistic after n obs] ~ n * delta + df. *)
    Float.max 1. ((crit -. float_of_int df) /. delta)
  end

let equiprobable_edges (d : Dist.t) ~bins =
  if bins < 2 then invalid_arg "Chi_square.equiprobable_edges: need >= 2 bins";
  Array.init (bins - 1) (fun i ->
      Dist.quantile d (float_of_int (i + 1) /. float_of_int bins))

let empirical_edges samples ~bins =
  if bins < 2 then invalid_arg "Chi_square.empirical_edges: need >= 2 bins";
  if Array.length samples = 0 then
    invalid_arg "Chi_square.empirical_edges: empty sample";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  Array.init (bins - 1) (fun i ->
      let pos =
        float_of_int (i + 1) /. float_of_int bins *. float_of_int (n - 1)
      in
      let j = int_of_float (Float.floor pos) in
      if j >= n - 1 then sorted.(n - 1)
      else begin
        let frac = pos -. float_of_int j in
        sorted.(j) +. (frac *. (sorted.(j + 1) -. sorted.(j)))
      end)

let bin_probs ~edges cdf =
  let b = Array.length edges + 1 in
  Array.init b (fun i ->
      let upper = if i = b - 1 then 1. else cdf edges.(i) in
      let lower = if i = 0 then 0. else cdf edges.(i - 1) in
      Float.max 0. (upper -. lower))

let bin_counts ~edges samples =
  let b = Array.length edges + 1 in
  let counts = Array.make b 0. in
  Array.iter
    (fun x ->
      (* Index of the first edge strictly greater than x. *)
      let rec search lo hi =
        if lo >= hi then lo
        else begin
          let mid = (lo + hi) / 2 in
          if edges.(mid) <= x then search (mid + 1) hi else search lo mid
        end
      in
      let i = search 0 (Array.length edges) in
      counts.(i) <- counts.(i) +. 1.)
    samples;
  counts

let goodness_of_fit ~edges ~null_probs ~samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Chi_square.goodness_of_fit: empty sample";
  let observed = bin_counts ~edges samples in
  let expected = Array.map (fun p -> p *. float_of_int n) null_probs in
  let stat = statistic ~expected ~observed in
  let df = Array.length null_probs - 1 in
  1. -. cdf ~df stat
