(** Order statistics of independent (not necessarily identical) random
    variables — the machinery behind StopWatch's median analysis
    (paper Appendix, citing Güngör et al., Result 2.4). *)

(** [cdf_rank ~cdfs ~r] is the CDF of the [r]-th smallest of the [m]
    independent variables whose CDFs are [cdfs] (1-indexed rank):

    F_(r:m)(x) = sum over l = r..m of (-1)^(l-r) C(l-1, r-1)
                 times the sum over size-l subsets I of prod_(i in I) F_i(x)

    Raises [Invalid_argument] unless [1 <= r <= m]. *)
val cdf_rank : cdfs:(float -> float) array -> r:int -> float -> float

(** Closed-form CDF of the median of three independent variables:
    F1 F2 + F1 F3 + F2 F3 - 2 F1 F2 F3. *)
val median3 :
  (float -> float) -> (float -> float) -> (float -> float) -> float -> float

(** [median ~cdfs] is the CDF of the median of an odd number of independent
    variables ([r = (m+1)/2]). Raises [Invalid_argument] for even [m]. *)
val median : cdfs:(float -> float) array -> float -> float

(** [median_dist dists] packages {!median} as a {!Dist.t} whose sampler draws
    from each component and takes the sample median. Odd length required. *)
val median_dist : Dist.t array -> Dist.t

(** Sample median of an odd-length array (does not modify its argument). *)
val sample_median : float array -> float
