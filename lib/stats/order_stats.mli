(** Order statistics of independent (not necessarily identical) random
    variables — the machinery behind StopWatch's median analysis
    (paper Appendix, citing Güngör et al., Result 2.4). *)

(** [cdf_rank ~cdfs ~r] is the CDF of the [r]-th smallest of the [m]
    independent variables whose CDFs are [cdfs] (1-indexed rank):

    F_(r:m)(x) = sum over l = r..m of (-1)^(l-r) C(l-1, r-1)
                 times the sum over size-l subsets I of prod_(i in I) F_i(x)

    Raises [Invalid_argument] unless [1 <= r <= m]. *)
val cdf_rank : cdfs:(float -> float) array -> r:int -> float -> float

(** Closed-form CDF of the median of three independent variables:
    F1 F2 + F1 F3 + F2 F3 - 2 F1 F2 F3. *)
val median3 :
  (float -> float) -> (float -> float) -> (float -> float) -> float -> float

(** [median ~cdfs] is the CDF of the median of an odd number of independent
    variables ([r = (m+1)/2]). Raises [Invalid_argument] for even [m]. *)
val median : cdfs:(float -> float) array -> float -> float

(** [median_dist dists] packages {!median} as a {!Dist.t} whose sampler draws
    from each component and takes the sample median. Odd length required. *)
val median_dist : Dist.t array -> Dist.t

(** Sample median of an odd-length array (does not modify its argument). *)
val sample_median : float array -> float

(** Median of three via a branch network (no allocation). *)
val median3_int64 : int64 -> int64 -> int64 -> int64

(** Median of five via a 6-compare network (no allocation). *)
val median5_int64 : int64 -> int64 -> int64 -> int64 -> int64 -> int64

(** Sample median of an odd-length int64 array. Lengths 1, 3 and 5 — the
    replica vote counts — go through the branch networks without touching
    the allocator; longer odd arrays fall back to copy + sort. Raises
    [Invalid_argument] for even lengths; does not modify its argument. *)
val median_int64 : int64 array -> int64
