(** Kolmogorov–Smirnov distance between distributions, the distinguishability
    measure used in the paper's Theorems 3 and 4. *)

(** [distance ?grid ~lo ~hi f g] approximates [max_x |f x - g x|] on a grid
    of [grid] points (default 4096) over [[lo, hi]]. *)
val distance :
  ?grid:int -> lo:float -> hi:float -> (float -> float) -> (float -> float) -> float

(** Two-sample KS statistic from raw observations. *)
val two_sample : float array -> float array -> float
