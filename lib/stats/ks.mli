(** Kolmogorov–Smirnov distance between distributions, the distinguishability
    measure used in the paper's Theorems 3 and 4. *)

(** [distance ?grid ~lo ~hi f g] approximates [max_x |f x - g x|] on a grid
    of [grid] points (default 4096) over [[lo, hi]]. *)
val distance :
  ?grid:int -> lo:float -> hi:float -> (float -> float) -> (float -> float) -> float

(** Two-sample KS statistic from raw observations. *)
val two_sample : float array -> float array -> float

(** Kolmogorov's limiting tail function
    [Q(lambda) = 2 sum_j (-1)^(j-1) exp(-2 j^2 lambda^2)] — the asymptotic
    probability of a KS statistic this large under the null. Clamped to
    [[0, 1]]; [1.] for [lambda <= 0]. *)
val kolmogorov_q : float -> float

(** Asymptotic two-sample p-value of {!two_sample}, with the standard
    finite-sample correction on the effective sample size. *)
val p_value : float array -> float array -> float
