let simpson ?(n = 2048) f ~a ~b =
  if n < 2 || n mod 2 <> 0 then invalid_arg "Integrate.simpson: n must be even >= 2";
  let h = (b -. a) /. float_of_int n in
  let acc = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let x = a +. (float_of_int i *. h) in
    let w = if i mod 2 = 1 then 4. else 2. in
    acc := !acc +. (w *. f x)
  done;
  !acc *. h /. 3.

let trapezoid ?(n = 2048) f ~a ~b =
  if n < 1 then invalid_arg "Integrate.trapezoid: n must be >= 1";
  let h = (b -. a) /. float_of_int n in
  let acc = ref ((f a +. f b) /. 2.) in
  for i = 1 to n - 1 do
    acc := !acc +. f (a +. (float_of_int i *. h))
  done;
  !acc *. h
