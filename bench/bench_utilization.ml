(* Sec. VIII under load: fill a 9-machine cloud toward the Theorem 2 bound
   (c = 4 -> 12 guest VMs, 36 replica slots) with HTTP-serving guests and
   measure what the growing coresidency costs. Isolation on the same
   hardware would cap out at 9 VMs. *)

open Sw_experiments

let run () =
  Tables.section "Utilisation under load (9 machines, capacity 4, HTTP 100 KB)";
  Tables.header ~width:12
    [ "VMs"; "replicas"; "downloads"; "mean ms"; "p95 ms"; "div" ];
  List.iter
    (fun vms ->
      let o =
        Utilization.run ~machines:9 ~capacity:4 ~vms ~file_bytes:102_400
          ~duration:(Sw_sim.Time.s 10) ()
      in
      Tables.row ~width:12
        [
          string_of_int o.Utilization.vms;
          string_of_int (3 * o.Utilization.vms);
          string_of_int o.Utilization.completed_downloads;
          Tables.f1 o.Utilization.mean_latency_ms;
          Tables.f1 o.Utilization.p95_latency_ms;
          string_of_int o.Utilization.divergences;
        ])
    [ 3; 6; 9; 12 ];
  print_endline
    "\n(12 VMs on 9 machines is beyond one-VM-per-machine isolation; Theorem 2\n\
     keeps every pair of VMs coresident on at most one machine.)"
