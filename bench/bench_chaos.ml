(* `main.exe chaos`: fault-rate sweep vs Fig.4-style distinguisher strength.

   Each level derives a deterministic fault schedule from a fixed seed
   (exponential renewal of link-loss bursts, latency spikes, tunnel drops,
   Dom0 pauses, machine slowdowns, multicast partitions, plus one replica
   crash-and-restart) and runs the Fig. 4 victim / no-victim scenario pair
   under it, with the degradation machinery armed (VMM heartbeats, watchdog,
   egress vote expiry, replay log). Reported per level: the KS observations
   needed to detect the victim at 0.95 — StopWatch's timing protection
   should not collapse just because the infrastructure is faulty — and the
   fault/degradation counters (injections, ejections, reintegrations,
   expired egress votes, abandoned multicast gaps, time degraded).

   Both scenarios of a level share one schedule, so the comparison isolates
   the victim's load from the injected chaos. [-quick] shrinks the sweep to
   a CI smoke (two levels, short duration). *)

open Sw_experiments
module Time = Sw_sim.Time
module Prng = Sw_sim.Prng
module Fault = Sw_fault.Fault
module Schedule = Sw_fault.Schedule
module Scenario = Sw_attack.Scenario
module Runner = Sw_runner.Runner
module Report = Sw_runner.Report
module Snapshot = Sw_obs.Snapshot

let quick = ref false

(* Degradation machinery on, sized so only a real crash (restarted after
   250 ms) trips the watchdog — transient Dom0 pauses and slowdowns keep
   the engine-driven heartbeats alive. *)
let chaos_config =
  {
    Sw_vmm.Config.default with
    Sw_vmm.Config.replay_log = true;
    vmm_heartbeat = Some (Time.ms 5);
    watchdog =
      Some
        { Sw_vmm.Config.timeout = Time.ms 50; period = Time.ms 20; retries = 2 };
    egress_vote_expiry = Some (Time.ms 500);
  }

let make_fault ~machines ~replicas rng =
  match Prng.int rng 8 with
  | 0 | 1 -> Fault.Link_loss { target = None; p = 0.05 +. (0.3 *. Prng.float rng) }
  | 2 ->
      Fault.Link_latency
        { target = None; extra = Time.us (100 + Prng.int rng 900) }
  | 3 -> Fault.ingress_drop ~p:(0.2 +. (0.5 *. Prng.float rng))
  | 4 -> Fault.egress_drop ~p:(0.2 +. (0.5 *. Prng.float rng))
  | 5 -> Fault.Dom0_pause { machine = Prng.int rng machines }
  | 6 ->
      Fault.Machine_slowdown
        { machine = Prng.int rng machines; factor = 1.05 +. (0.4 *. Prng.float rng) }
  | _ -> Fault.Mcast_partition { vm = 0; replica = Prng.int rng replicas }

(* The attacker VM (vm 0) loses replica 1 a third of the way in and gets it
   back 250 ms later: every chaos level past "none" exercises the full
   crash -> eject -> restart -> reintegrate lifecycle. *)
let schedule ~duration ~mean_gap ~mean_span =
  let m = chaos_config.Sw_vmm.Config.replicas in
  let machines = (3 * m) - 2 in
  let crash =
    Schedule.at
      (Int64.div duration 3L)
      (Fault.Replica_crash
         { vm = 0; replica = 1; restart_after = Some (Time.ms 250) })
  in
  crash
  :: Schedule.windows ~seed:0xC4A05FA0L ~until:duration ~mean_gap ~mean_span
       ~make:(make_fault ~machines ~replicas:m)

let levels ~duration =
  let windowed name ~gap_ms ~span_ms =
    ( name,
      schedule ~duration ~mean_gap:(Time.ms gap_ms) ~mean_span:(Time.ms span_ms)
    )
  in
  if !quick then
    [ ("none", Schedule.empty); windowed "heavy" ~gap_ms:150 ~span_ms:40 ]
  else
    [
      ("none", Schedule.empty);
      windowed "mild" ~gap_ms:2000 ~span_ms:30;
      windowed "moderate" ~gap_ms:500 ~span_ms:40;
      windowed "heavy" ~gap_ms:150 ~span_ms:40;
    ]

let sum_counters snapshot ~suffix =
  List.fold_left
    (fun acc (name, data) ->
      match data with
      | Snapshot.Counter v when String.ends_with ~suffix name -> acc + v
      | _ -> acc)
    0
    (Snapshot.to_list snapshot)

let run ?pool () =
  Tables.section
    (if !quick then "Chaos smoke (fault sweep, quick)"
     else "Chaos — fault rates vs distinguisher strength");
  let duration = if !quick then Time.s 4 else Time.s 20 in
  let base =
    { Scenario.default with Scenario.config = chaos_config; duration }
  in
  let levels = levels ~duration in
  let jobs =
    List.concat_map
      (fun (name, faults) ->
        List.map
          (fun victim ->
            let key =
              Printf.sprintf "chaos/%s/%s" name
                (if victim then "victim" else "no-victim")
            in
            Sw_runner.Job.make ~key (fun ~seed:_ ->
                Scenario.run { base with Scenario.victim; faults }))
          [ false; true ])
      levels
  in
  let on_event =
    match pool with
    | Some _ -> Some (Runner.progress_printer ~total:(List.length jobs) ())
    | None -> None
  in
  let results = List.map Runner.get (Runner.map ?pool ?on_event jobs) in
  let pairs =
    let rec pair = function
      | no :: yes :: rest -> (no, yes) :: pair rest
      | [] -> []
      | _ -> assert false
    in
    List.combine (List.map fst levels) (pair results)
  in
  Tables.header ~width:13
    [ "level"; "ks95 obs"; "deliveries"; "faults"; "eject"; "rejoin"; "deg ms" ];
  let entries =
    List.map
      (fun (name, (no_vic, vic)) ->
        let merged =
          Snapshot.merge no_vic.Scenario.metrics vic.Scenario.metrics
        in
        Bench_report.add_metrics merged;
        let ks =
          (Sw_leak.Detector.ks ()).Sw_leak.Detector.observations_needed
            ~null:no_vic.Scenario.attacker_inter_delivery_ms
            ~alt:vic.Scenario.attacker_inter_delivery_ms ~confidence:0.95
        in
        (* Degradation counters read from the victim run (both runs share
           the schedule; the victim one is the attacked configuration). *)
        let m = vic.Scenario.metrics in
        let injected = Snapshot.counter m "fault.injected" in
        let ejections = Snapshot.counter m "vm0.ejections" in
        let reintegrations = Snapshot.counter m "vm0.reintegrations" in
        let expired = Snapshot.counter m "net.egress.expired_votes" in
        let abandoned = sum_counters m ~suffix:".gaps_abandoned" in
        let degraded_ms = Snapshot.sum m "vm0.degraded_ns" /. 1e6 in
        Tables.row ~width:13
          [
            name;
            Tables.f0 ks;
            string_of_int vic.Scenario.deliveries;
            string_of_int injected;
            string_of_int ejections;
            string_of_int reintegrations;
            Tables.f1 degraded_ms;
          ];
        ( name,
          Report.Obj
            [
              ("ks95_observations", Report.Float ks);
              ("deliveries", Report.Int vic.Scenario.deliveries);
              ("divergences", Report.Int vic.Scenario.divergences);
              ("faults_injected", Report.Int injected);
              ("ejections", Report.Int ejections);
              ("reintegrations", Report.Int reintegrations);
              ("egress_expired_votes", Report.Int expired);
              ("mcast_gaps_abandoned", Report.Int abandoned);
              ("degraded_ms", Report.Float degraded_ms);
            ] ))
      pairs
  in
  (* The crash level must actually have cycled the lifecycle — fail the
     bench loudly if degradation never engaged (CI smoke relies on it). *)
  List.iter
    (fun (name, entry) ->
      match entry with
      | Report.Obj fields when name <> "none" ->
          let int k =
            match List.assoc k fields with Report.Int v -> v | _ -> 0
          in
          if int "ejections" = 0 || int "reintegrations" = 0 then
            failwith
              (Printf.sprintf
                 "chaos/%s: crash lifecycle did not complete (ejections=%d \
                  reintegrations=%d)"
                 name (int "ejections") (int "reintegrations"))
      | _ -> ())
    entries;
  Bench_report.add (if !quick then "chaos-quick" else "chaos")
    (Report.Obj entries)
