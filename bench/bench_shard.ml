(* Shard-scale sweep: one datacenter-sized cloud (hosts carved into
   3-replica service cells, east-west traffic at a stride that straddles
   contiguous shard boundaries, and a 100 us rack-local replica
   interconnect below the 500 us fabric) simulated across shard counts and
   partition/lookahead modes.

   The sweep is built to show exactly the two effects the conductor's fast
   path exists for:
   - the stride makes every east-west edge cross a contiguous block cut,
     while the affinity partitioner packs the stride cycles co-shard (cut
     weight 0) — so partition choice moves real cross-shard message load;
   - the fast replica links drag the legacy global lookahead to 100 us,
     while the per-pair matrix keeps every cross-shard floor at 500 us —
     5x wider windows, 5x fewer barriers.

   Two kinds of output, kept strictly apart:
   - "shard_scale" under "experiments": per configuration, the workload
     results, a byte-comparison of the contract metrics (everything
     outside [sim.*]) against the shards=1 run — the determinism claim of
     DESIGN.md's sharded-simulation section, machine-checked on every run —
     the contiguous-vs-affinity cut weights on the cell traffic graph, and
     the placement feasibility / co-residency numbers for the fleet size.
     All deterministic.
   - events/s, wall seconds, speedups, barrier-wait share, and warm-start
     build/restore times go to the "perf" object (non-deterministic by
     nature), along with the host's core count and the driver the cloud
     picked (parallel domains, or the sequential windowed fallback on a
     single-core box — same bytes, different floor). The @perf alias runs
     the quick form and fails if the guarded configuration drops more than
     5x below the floor recorded for that driver.

   The full form runs a 10,080-host topology and goes through the
   [Sw_ckpt.Warm] cache: the first invocation builds each configuration
   once and checkpoints it at t=0, then restores it back before running —
   so every full run exercises the restore path end-to-end and later
   invocations skip the build entirely. *)

open Sw_experiments
module Time = Sw_sim.Time
module Dsl = Sw_workload.Dsl
module Run = Sw_workload.Run
module Snapshot = Sw_obs.Snapshot
module Export = Sw_obs.Export
module Report = Sw_runner.Report
module Placement = Sw_placement.Placement
module Affinity = Sw_placement.Affinity
module Warm = Sw_ckpt.Warm
module Cloud = Stopwatch.Cloud

let quick = ref false

(* main.exe --shards N narrows the sweep to shard counts [1; N] (N > 1),
   e.g. to probe one machine's sweet spot without paying the full ladder. *)
let shards_override : int option ref = ref None

let replicas = 3
let warm_dir = "_warm"

(* Recorded floors (guarded configuration events/s, quick form), keyed by
   the driver the cloud picks for the machine: "parallel" when there are
   cores for a domain gang, "sequential" for the windowed round-robin
   fallback. The guard trips below floor/5. Update when the conductor
   materially changes. *)
let floors = [ ("sequential", 100_000.); ("parallel", 120_000.) ]
let driver () = if Domain.recommended_domain_count () > 1 then "parallel" else "sequential"

let classes =
  [
    { Sw_workload.Flowgen.name = "page"; weight = 0.8; resp_bytes = 2048; cached = true };
    { Sw_workload.Flowgen.name = "asset"; weight = 0.2; resp_bytes = 8192; cached = true };
  ]

let workload ?(east_west = 10.) ?(replica_link = 100.) ?quantum_us ~hosts
    ~stride ~duration () : Dsl.workload =
  {
    Dsl.seed = 0x5AA6DCL;
    duration;
    replicas;
    stopwatch = true;
    arrival = Sw_workload.Arrival.Poisson { rate_per_s = 30. };
    classes;
    keys = 256;
    theta = 1.1;
    cache = Sw_workload.Kv.default_config.Sw_workload.Kv.cache;
    pool = 4;
    max_per_conn = 32;
    request_bytes = 120;
    compute_branches = 20_000;
    header_bytes = 64;
    faults = [];
    attack = None;
    topology =
      Some
        {
          Dsl.hosts;
          shards = 1;
          east_west_rate_per_s = east_west;
          east_west_stride = stride;
          partition = Dsl.Contiguous;
          replica_link_us = Some replica_link;
          quantum_us;
        };
    load_multipliers = [ 1. ];
    trace = false;
    leak_audit = false;
    profile = false;
  }

let contract_bytes metrics =
  Export.to_json_string
    (Snapshot.filter metrics ~f:(fun name ->
         not (String.length name >= 4 && String.sub name 0 4 = "sim.")))

(* P(two uniformly random [replicas]-machine groups intersect) out of [n]
   machines — the attacker co-residency probability the paper's Sec. VIII
   placement analysis drives to ~0 at datacenter scale. *)
let co_residency_probability ~n =
  let r = replicas in
  if n < 2 * r then 1.
  else begin
    (* 1 - C(n-r, r) / C(n, r), computed as a running product to stay
       stable at large n. *)
    let miss = ref 1. in
    for i = 0 to r - 1 do
      miss :=
        !miss
        *. float_of_int (n - r - i)
        /. float_of_int (n - i)
    done;
    1. -. !miss
  end

let placement_report ~hosts ~cells =
  let c = 6 in
  let bound = Placement.theorem2_bound ~n:hosts ~c in
  let feasible = cells <= bound in
  let utilization =
    match Placement.theorem2_place ~n:hosts ~c ~k:(min cells bound) with
    | Ok plan -> Placement.utilization plan
    | Error _ -> 0.
  in
  ( feasible,
    bound,
    utilization,
    co_residency_probability ~n:hosts )

type config = {
  label : string;
  shards : int;
  partition : [ `Contiguous | `Affinity | `Assign of int array ];
  lookahead : [ `Global | `Pairwise ];
}

(* Per configuration: the baseline single shard, then for each shard count
   the legacy combination (contiguous blocks, one global lookahead scalar)
   against the fast path (affinity packing, per-pair matrix) — the speedup
   the perf block records is between those two at equal shard count. *)
let sweep () =
  let counts =
    match !shards_override with Some s when s > 1 -> [ s ] | _ -> [ 2; 4 ]
  in
  {
    label = "shards1";
    shards = 1;
    partition = `Contiguous;
    lookahead = `Pairwise;
  }
  :: List.concat_map
       (fun s ->
         [
           {
             label = Printf.sprintf "shards%d_contiguous" s;
             shards = s;
             partition = `Contiguous;
             lookahead = `Global;
           };
           {
             label = Printf.sprintf "shards%d_affinity" s;
             shards = s;
             partition = `Affinity;
             lookahead = `Pairwise;
           };
         ])
       counts

type outcome = {
  cfg : config;
  r : Run.result;
  prep_s : float;  (** Build (or build+checkpoint+restore) wall time. *)
  warm : string;  (** "cold" | "built" | "restored". *)
  run_s : float;
  eps : float;
  windows : int;
  barrier_share : float;
  bytes : string;
}

let run_config ~w (cfg : config) =
  let prepare () =
    Run.prepare ~shards:cfg.shards ~partition:cfg.partition
      ~lookahead:cfg.lookahead w
  in
  let t0 = Sw_sim.Wall.now_s () in
  let handle, warm =
    if !quick then (prepare (), "cold")
    else begin
      (* Identity of the cached image: everything that shapes the build. *)
      let key =
        Printf.sprintf "bench_shard:%s:%s"
          (Digest.to_hex
             (Digest.string
                (Dsl.print { Dsl.name = "bench_shard"; kind = Dsl.Workload w })))
          cfg.label
      in
      match
        Warm.load_or_build ~dir:warm_dir ~key ~seed:w.Dsl.seed
          ~shards:cfg.shards ~build:prepare
      with
      | Error e ->
          Printf.eprintf "shard-scale: warm-start cache unusable (%s)\n%!" e;
          (prepare (), "cold")
      | Ok (h, Warm.Restored) -> (h, "restored")
      | Ok (_, Warm.Built) -> (
          (* First build of this configuration: run from a restored copy so
             the full form always exercises the restore path end-to-end. *)
          match
            Warm.load_or_build ~dir:warm_dir ~key ~seed:w.Dsl.seed
              ~shards:cfg.shards ~build:prepare
          with
          | Ok (h, Warm.Restored) -> (h, "built")
          | Ok (h, Warm.Built) ->
              Printf.eprintf
                "shard-scale: image for %s did not restore; running the cold \
                 build\n\
                 %!"
                cfg.label;
              (h, "built")
          | Error e ->
              Printf.eprintf
                "shard-scale: warm-start cache unusable after build (%s)\n%!" e;
              (prepare (), "built"))
    end
  in
  let prep_s = Sw_sim.Wall.elapsed_s t0 in
  let t1 = Sw_sim.Wall.now_s () in
  Cloud.run handle.Run.cloud ~until:handle.Run.until;
  let run_s = Sw_sim.Wall.elapsed_s t1 in
  let r = handle.Run.finish () in
  let windows = Snapshot.counter r.Run.metrics "sim.shard.windows" in
  let barrier_share =
    match Snapshot.histogram r.Run.metrics "sim.shard.barrier_wait_ns" with
    | None -> 0.
    | Some h -> Int64.to_float h.Snapshot.total /. 1e9 /. run_s
  in
  {
    cfg;
    r;
    prep_s;
    warm;
    run_s;
    eps = float_of_int r.Run.fired /. run_s;
    windows;
    barrier_share;
    bytes = contract_bytes r.Run.metrics;
  }

(* Contiguous-vs-affinity cut weights on the cell traffic graph, per shard
   count — the deterministic half of the partition story. *)
let partition_stats g counts =
  List.map
    (fun s ->
      let contiguous =
        Affinity.cut_weight g (Affinity.contiguous ~cells:g.Affinity.cells ~shards:s)
      in
      let plan = Affinity.partition g ~shards:s in
      ( Printf.sprintf "shards%d" s,
        Report.Obj
          [
            ("contiguous_cut", Report.Float contiguous);
            ("affinity_cut", Report.Float plan.Affinity.cut_weight);
            ("total_weight", Report.Float plan.Affinity.total_weight);
            ("moved_cells", Report.Int plan.Affinity.moved_cells);
          ] ))
    counts

let run () =
  (* The sharded run puts several allocating domains on one major heap; with
     the default minor arenas every minor collection is a cross-domain
     stop-the-world sync, which swamps the window compute at this event
     rate. A 4 MB-per-domain nursery keeps the sync cadence sane. The full
     form also carries a ~0.5 GB live heap (10k hosts of VMM state); the
     default space_overhead of 120 re-marks it every few hundred MB of
     allocation, so give the major collector slack — wall time for memory
     on a box that has it. *)
  Gc.set
    {
      (Gc.get ()) with
      Gc.minor_heap_size = 4 * 1024 * 1024;
      space_overhead = 400;
    };
  let hosts = if !quick then 48 else 10_080 in
  let cells = hosts / replicas in
  (* Stride = cells/4: every east-west edge leaves its contiguous block at
     both swept shard counts, while the stride cycles (length 4) pack
     whole onto affinity shards — cut weight 0. *)
  let stride = cells / 4 in
  let duration = Time.ms 300 in
  (* Quick keeps the default 200 us quantum, the 100 us rack links, and a
     light east-west trickle (the windows/lookahead effect shows up cleanly
     at 48 hosts). The 10k-host form models the regime the fast path was
     built for: a 2 ms scheduler quantum so simulation cost follows the
     traffic under study rather than idle slices (at 200 us the fleet fires
     ~50M slice events over the 800 ms horizon and everything else vanishes
     into them), RDMA-class 2 us replica interconnects (which drag the
     legacy global-min lookahead to 2 us — 250x more barriers than the
     500 us cross-shard floor the per-pair matrix recovers), and enough
     east-west traffic that the partition choice moves real cross-shard
     message volume. *)
  let w =
    if !quick then workload ~hosts ~stride ~duration ()
    else
      workload ~east_west:100. ~replica_link:2. ~quantum_us:2000. ~hosts
        ~stride ~duration ()
  in
  let configs = sweep () in
  let counts =
    List.sort_uniq compare
      (List.filter_map
         (fun c -> if c.shards > 1 then Some c.shards else None)
         configs)
  in
  Tables.section
    (Printf.sprintf
       "Shard scale: %d hosts, %d cells x %d replicas, east-west stride %d"
       hosts cells replicas stride);
  Tables.header ~width:12
    [ "config"; "completed"; "xshard"; "windows"; "warm"; "wall s"; "ev/s"; "same" ];
  let outcomes = List.map (run_config ~w) configs in
  let baseline =
    match outcomes with o :: _ -> o | [] -> assert false
  in
  let rows =
    List.map
      (fun o ->
        let identical = String.equal o.bytes baseline.bytes in
        Tables.row ~width:12
          [
            o.cfg.label;
            string_of_int o.r.Run.completed;
            string_of_int o.r.Run.cross_shard;
            string_of_int o.windows;
            o.warm;
            Tables.f2 o.run_s;
            Tables.f0 o.eps;
            (if identical then "yes" else "NO");
          ];
        (o, identical))
      outcomes
  in
  let g = Run.traffic_graph w in
  let cuts = partition_stats g counts in
  let feasible, bound, utilization, co_res = placement_report ~hosts ~cells in
  Printf.printf
    "placement: %d cells vs Theorem-2 bound %d (c=6) -> %s, utilization %.2f\n"
    cells bound
    (if feasible then "feasible" else "infeasible")
    utilization;
  Printf.printf "co-residency probability at n=%d: %.6f\n" hosts co_res;
  List.iter
    (fun (o, identical) ->
      if not identical then
        Printf.eprintf
          "shard-scale: %s metrics differ from shards=1 outside sim.*\n%!"
          o.cfg.label)
    rows;
  (* Affinity + per-pair lookahead against contiguous + global scalar, at
     equal shard count — the headline number of the fast path. *)
  let affinity_speedups =
    List.filter_map
      (fun s ->
        let find label =
          List.find_opt (fun o -> o.cfg.label = label) outcomes
        in
        match
          ( find (Printf.sprintf "shards%d_contiguous" s),
            find (Printf.sprintf "shards%d_affinity" s) )
        with
        | Some c, Some a when c.eps > 0. ->
            Some (s, a.eps /. c.eps)
        | _ -> None)
      counts
  in
  List.iter
    (fun (s, ratio) ->
      Printf.printf "shards=%d: affinity+pairwise %.2fx contiguous+global\n" s
        ratio)
    affinity_speedups;
  Bench_report.add "shard_scale"
    (Report.Obj
       [
         ("hosts", Report.Int hosts);
         ("cells", Report.Int cells);
         ("replicas", Report.Int replicas);
         ("east_west_stride", Report.Int stride);
         ( "placement",
           Report.Obj
             [
               ("feasible", Report.Bool feasible);
               ("theorem2_bound", Report.Int bound);
               ("utilization", Report.Float utilization);
               ("co_residency_probability", Report.Float co_res);
             ] );
         ("partition", Report.Obj cuts);
         ( "runs",
           Report.Obj
             (List.map
                (fun (o, identical) ->
                  ( o.cfg.label,
                    Report.Obj
                      [
                        ("issued", Report.Int o.r.Run.issued);
                        ("completed", Report.Int o.r.Run.completed);
                        ("hits", Report.Int o.r.Run.hits);
                        ("misses", Report.Int o.r.Run.misses);
                        ("p50_ms", Report.Float o.r.Run.p50_ms);
                        ("p99_ms", Report.Float o.r.Run.p99_ms);
                        ("cross_shard", Report.Int o.r.Run.cross_shard);
                        ("windows", Report.Int o.windows);
                        ("identical_to_shards1", Report.Bool identical);
                      ] ))
                rows) );
       ]);
  Bench_report.add_perf "shard_scale"
    (Report.Obj
       ([
          ("cores", Report.Int (Domain.recommended_domain_count ()));
          ("driver", Report.String (driver ()));
        ]
       @ List.map
           (fun (s, ratio) ->
             ( Printf.sprintf "shards%d_affinity_speedup" s,
               Report.Float ratio ))
           affinity_speedups
       @ List.map
           (fun o ->
             ( o.cfg.label,
               Report.Obj
                 [
                   ("events", Report.Int o.r.Run.fired);
                   ("prep_s", Report.Float o.prep_s);
                   ("warm", Report.String o.warm);
                   ("wall_s", Report.Float o.run_s);
                   ("events_per_s", Report.Float o.eps);
                   ("speedup", Report.Float (o.eps /. baseline.eps));
                   ("barrier_wait_share", Report.Float o.barrier_share);
                 ] ))
           outcomes));
  let any_broken = List.exists (fun (_, id) -> not id) rows in
  if any_broken then begin
    Printf.eprintf "shard-scale FAILED: the configuration changed the results\n%!";
    exit 1
  end;
  (* Floor guard: the fast-path configuration at the highest swept shard
     count, against the floor recorded for this machine's driver. *)
  let guarded =
    match List.rev counts with
    | [] -> None
    | s :: _ ->
        List.find_opt
          (fun o -> o.cfg.label = Printf.sprintf "shards%d_affinity" s)
          outcomes
  in
  match (guarded, List.assoc_opt (driver ()) floors) with
  | Some o, Some floor when !quick && o.eps > 0. && o.eps *. 5. < floor ->
      Printf.eprintf
        "shard-scale perf regression: %s ran at %.0f events/s, more than 5x \
         below the %s-driver floor of %.0f events/s\n\
         %!"
        o.cfg.label o.eps (driver ()) floor;
      exit 1
  | _ -> ()
