(* Shard-scale sweep: one datacenter-sized cloud (hosts carved into
   3-replica service cells, east-west traffic between neighbouring cells)
   simulated at shard counts 1 / 2 / 4 over OCaml 5 domains.

   Two kinds of output, kept strictly apart:
   - "shard_scale" under "experiments": per shard count, the workload
     results plus a byte-comparison of the contract metrics (everything
     outside [sim.*]) against the shards=1 run — the determinism claim of
     DESIGN.md's sharded-simulation section, machine-checked on every run —
     and the replica-placement feasibility / attacker co-residency numbers
     for the same fleet size. All deterministic.
   - events/s, wall seconds, and speedups go to the "perf" object
     (non-deterministic by nature), along with the host's core count:
     parallel speedup needs a core per shard, and on a single-core box the
     cloud falls back to the sequential windowed driver (same bytes), so
     speedup there only measures windowing overhead. The @perf alias runs
     the quick form and fails if the shards=4 throughput drops more than 5x
     below the recorded floor, mirroring the engine micro-bench guard. *)

open Sw_experiments
module Time = Sw_sim.Time
module Dsl = Sw_workload.Dsl
module Run = Sw_workload.Run
module Snapshot = Sw_obs.Snapshot
module Export = Sw_obs.Export
module Report = Sw_runner.Report
module Placement = Sw_placement.Placement

let quick = ref false

(* main.exe --shards N narrows the sweep to [1; N] (N > 1), e.g. to probe
   one machine's sweet spot without paying for the full ladder. *)
let shards_override : int option ref = ref None

let replicas = 3

(* Recorded floor (shards=4 events/s, quick form) for the @perf guard; the
   guard trips below floor/5. Update when the conductor materially changes. *)
let shard4_floor = 100_000.

let classes =
  [
    { Sw_workload.Flowgen.name = "page"; weight = 0.8; resp_bytes = 2048; cached = true };
    { Sw_workload.Flowgen.name = "asset"; weight = 0.2; resp_bytes = 8192; cached = true };
  ]

let workload ~hosts ~duration : Dsl.workload =
  {
    Dsl.seed = 0x5AA6DCL;
    duration;
    replicas;
    stopwatch = true;
    arrival = Sw_workload.Arrival.Poisson { rate_per_s = 30. };
    classes;
    keys = 256;
    theta = 1.1;
    cache = Sw_workload.Kv.default_config.Sw_workload.Kv.cache;
    pool = 4;
    max_per_conn = 32;
    request_bytes = 120;
    compute_branches = 20_000;
    header_bytes = 64;
    faults = [];
    attack = None;
    topology = Some { Dsl.hosts; shards = 1; east_west_rate_per_s = 10. };
    load_multipliers = [ 1. ];
    trace = false;
    profile = false;
  }

let contract_bytes metrics =
  Export.to_json_string
    (Snapshot.filter metrics ~f:(fun name ->
         not (String.length name >= 4 && String.sub name 0 4 = "sim.")))

(* P(two uniformly random [replicas]-machine groups intersect) out of [n]
   machines — the attacker co-residency probability the paper's Sec. VIII
   placement analysis drives to ~0 at datacenter scale. *)
let co_residency_probability ~n =
  let r = replicas in
  if n < 2 * r then 1.
  else begin
    (* 1 - C(n-r, r) / C(n, r), computed as a running product to stay
       stable at large n. *)
    let miss = ref 1. in
    for i = 0 to r - 1 do
      miss :=
        !miss
        *. float_of_int (n - r - i)
        /. float_of_int (n - i)
    done;
    1. -. !miss
  end

let placement_report ~hosts ~cells =
  let c = 6 in
  let bound = Placement.theorem2_bound ~n:hosts ~c in
  let feasible = cells <= bound in
  let utilization =
    match Placement.theorem2_place ~n:hosts ~c ~k:(min cells bound) with
    | Ok plan -> Placement.utilization plan
    | Error _ -> 0.
  in
  ( feasible,
    bound,
    utilization,
    co_residency_probability ~n:hosts )

let run () =
  (* The sharded run puts 4 allocating domains on one major heap; with the
     default minor arenas every minor collection is a cross-domain
     stop-the-world sync, which swamps the window compute at this event
     rate. A 32 MB-per-domain nursery keeps the sync cadence sane. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let hosts = if !quick then 48 else 960 in
  let duration = if !quick then Time.ms 300 else Time.s 1 in
  let cells = hosts / replicas in
  let w = workload ~hosts ~duration in
  let sweep =
    match !shards_override with
    | Some s when s > 1 -> [ 1; s ]
    | _ -> [ 1; 2; 4 ]
  in
  Tables.section
    (Printf.sprintf
       "Shard scale: %d hosts, %d cells x %d replicas, east-west traffic"
       hosts cells replicas);
  Tables.header ~width:12
    [ "shards"; "issued"; "completed"; "p99 ms"; "xshard"; "wall s"; "ev/s"; "same" ];
  let runs =
    List.map
      (fun shards ->
        let t0 = Sw_sim.Wall.now_s () in
        let r = Run.run ~shards w in
        let wall = Sw_sim.Wall.elapsed_s t0 in
        (shards, r, wall, contract_bytes r.Run.metrics))
      sweep
  in
  let baseline_bytes =
    match runs with (_, _, _, b) :: _ -> b | [] -> assert false
  in
  let rows =
    List.map
      (fun (shards, r, wall, bytes) ->
        let identical = String.equal bytes baseline_bytes in
        let eps = float_of_int r.Run.fired /. wall in
        Tables.row ~width:12
          [
            string_of_int shards;
            string_of_int r.Run.issued;
            string_of_int r.Run.completed;
            Tables.f2 r.Run.p99_ms;
            string_of_int r.Run.cross_shard;
            Tables.f2 wall;
            Tables.f0 eps;
            (if identical then "yes" else "NO");
          ];
        (shards, r, wall, eps, identical))
      runs
  in
  let feasible, bound, utilization, co_res = placement_report ~hosts ~cells in
  Printf.printf
    "placement: %d cells vs Theorem-2 bound %d (c=6) -> %s, utilization %.2f\n"
    cells bound
    (if feasible then "feasible" else "infeasible")
    utilization;
  Printf.printf "co-residency probability at n=%d: %.6f\n" hosts co_res;
  List.iter
    (fun (shards, _, _, _, identical) ->
      if not identical then
        Printf.eprintf
          "shard-scale: shards=%d metrics differ from shards=1 outside sim.*\n%!"
          shards)
    rows;
  Bench_report.add "shard_scale"
    (Report.Obj
       [
         ("hosts", Report.Int hosts);
         ("cells", Report.Int cells);
         ("replicas", Report.Int replicas);
         ( "placement",
           Report.Obj
             [
               ("feasible", Report.Bool feasible);
               ("theorem2_bound", Report.Int bound);
               ("utilization", Report.Float utilization);
               ("co_residency_probability", Report.Float co_res);
             ] );
         ( "runs",
           Report.Obj
             (List.map
                (fun (shards, r, _, _, identical) ->
                  ( Printf.sprintf "shards%d" shards,
                    Report.Obj
                      [
                        ("issued", Report.Int r.Run.issued);
                        ("completed", Report.Int r.Run.completed);
                        ("hits", Report.Int r.Run.hits);
                        ("misses", Report.Int r.Run.misses);
                        ("p50_ms", Report.Float r.Run.p50_ms);
                        ("p99_ms", Report.Float r.Run.p99_ms);
                        ("cross_shard", Report.Int r.Run.cross_shard);
                        ("identical_to_shards1", Report.Bool identical);
                      ] ))
                rows) );
       ]);
  let base_eps =
    match rows with (_, _, _, eps, _) :: _ -> eps | [] -> assert false
  in
  Bench_report.add_perf "shard_scale"
    (Report.Obj
       (("cores", Report.Int (Domain.recommended_domain_count ()))
       :: List.map
            (fun (shards, r, wall, eps, _) ->
              ( Printf.sprintf "shards%d" shards,
                Report.Obj
                  [
                    ("events", Report.Int r.Run.fired);
                    ("wall_s", Report.Float wall);
                    ("events_per_s", Report.Float eps);
                    ("speedup", Report.Float (eps /. base_eps));
                  ] ))
            rows));
  let any_broken = List.exists (fun (_, _, _, _, id) -> not id) rows in
  let shard4_eps =
    List.fold_left
      (fun acc (shards, _, _, eps, _) -> if shards = 4 then eps else acc)
      0. rows
  in
  if any_broken then begin
    Printf.eprintf "shard-scale FAILED: shard count changed the results\n%!";
    exit 1
  end;
  if !quick && shard4_eps > 0. && shard4_eps *. 5. < shard4_floor then begin
    Printf.eprintf
      "shard-scale perf regression: shards=4 ran at %.0f events/s, more than \
       5x below the recorded floor of %.0f events/s\n%!"
      shard4_eps shard4_floor;
    exit 1
  end
