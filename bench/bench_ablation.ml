(* Ablations over StopWatch's design parameters (DESIGN.md's ablation index):
   the delta_n / delta_d offsets, the scheduler quantum, the replica count,
   and epoch-based virtual-clock resynchronisation.

   Every sweep point is an independent simulation with a seed fixed in its
   job spec, so the whole ablation grid runs as one runner fleet under -j
   with output identical to the sequential run. *)

open Sw_experiments
module Time = Sw_sim.Time
module Config = Sw_vmm.Config
module Cloud = Stopwatch.Cloud
module Job = Sw_runner.Job
module Runner = Sw_runner.Runner

let http_latency ~config ~seed =
  let o =
    File_transfer.run ~config ~seed ~protocol:File_transfer.Http ~stopwatch:true
      ~size_bytes:102_400 ~runs:2 ()
  in
  (o.File_transfer.elapsed_ms, o.File_transfer.divergences)

(* Default seed of the pre-runner sequential harness, kept bit-compatible. *)
let ft_seed = 0xF16_5L

let delta_n_jobs =
  List.map
    (fun ms ->
      Job.make
        ~key:(Printf.sprintf "ablation/delta_n/%dms" ms)
        (fun ~seed:_ ->
          let config = { Config.default with Config.delta_n = Time.ms ms } in
          let latency, div = http_latency ~config ~seed:ft_seed in
          [ string_of_int ms; Tables.f1 latency; string_of_int div ]))
    [ 2; 5; 10; 20 ]

let delta_d_jobs =
  List.map
    (fun ms ->
      Job.make
        ~key:(Printf.sprintf "ablation/delta_d/%dms" ms)
        (fun ~seed:_ ->
          let config = { Config.default with Config.delta_d = Time.ms ms } in
          let o = Parsec_bench.run ~config ~stopwatch:true Sw_apps.Parsec.ferret in
          [
            string_of_int ms;
            Tables.f0 o.Parsec_bench.runtime_ms;
            string_of_int o.Parsec_bench.delta_d_violations;
          ]))
    [ 4; 8; 12; 20 ]

let quantum_jobs =
  List.map
    (fun us ->
      Job.make
        ~key:(Printf.sprintf "ablation/quantum/%dus" us)
        (fun ~seed:_ ->
          let config = { Config.default with Config.quantum = Time.us us } in
          let latency, div = http_latency ~config ~seed:ft_seed in
          [ string_of_int us; Tables.f1 latency; string_of_int div ]))
    [ 50; 100; 200; 500; 1000 ]

let replica_jobs =
  List.map
    (fun m ->
      Job.make
        ~key:(Printf.sprintf "ablation/replicas/%d" m)
        (fun ~seed:_ ->
          let config = { Config.default with Config.replicas = m } in
          let cloud = Cloud.create ~config ~machines:m () in
          let d =
            Cloud.deploy cloud
              ~on:(List.init m (fun i -> i))
              ~app:(Sw_apps.Http.server ())
          in
          let client = Cloud.add_host cloud () in
          let tcp = Sw_apps.Tcp_host.attach client () in
          let result = ref nan in
          Sw_apps.Http.download tcp ~dst:(Cloud.vm_address d) ~file:1 ~size:102_400
            ~on_done:(fun ~elapsed_ms -> result := elapsed_ms)
            ();
          Cloud.run cloud ~until:(Time.s 30);
          [ string_of_int m; Tables.f1 !result ]))
    [ 1; 3; 5; 7 ]

let hardware_spread_jobs =
  List.map
    (fun spread ->
      Job.make
        ~key:(Printf.sprintf "ablation/spread/%.3f" spread)
        (fun ~seed:_ ->
          let cloud =
            Cloud.create ~seed:31L ~rate_spread:spread ~clock_spread:(Time.ms 1)
              ~machines:3 ()
          in
          let d =
            Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:(Sw_apps.Probe.receiver ())
          in
          let client = Cloud.add_host cloud () in
          let rec ping n =
            if n <= 100 then
              Stopwatch.Host.after client (Time.ms 50) (fun () ->
                  Stopwatch.Host.send client ~dst:(Cloud.vm_address d) ~size:100
                    (Sw_apps.Probe.Probe_ping n);
                  ping (n + 1))
          in
          ping 1;
          Cloud.run cloud ~until:(Time.s 5);
          [
            Printf.sprintf "%.1f" (spread *. 100.);
            string_of_int (Cloud.skew_blocks d);
            string_of_int (Cloud.divergences d);
          ]))
    [ 0.0; 0.001; 0.01; 0.03 ]

(* A guest whose virtual clock runs 10% fast drifts from real time without
   resynchronisation; the epoch protocol pulls the slope back toward the
   median machine's real rate (Sec. IV-A). *)
let epoch_drift epoch =
  let config =
    {
      Config.default with
      Config.slope_ns_per_branch = 1.1;
      epoch;
    }
  in
  let cloud = Cloud.create ~config ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:Sw_vm.App.idle in
  Cloud.run cloud ~until:(Time.s 5);
  let inst = List.hd (Cloud.replicas d) in
  let virt = Sw_vm.Guest.virt_now (Sw_vmm.Vmm.guest inst) in
  let drift_ms = Float.abs (Time.to_float_ms (Time.sub virt (Time.s 5))) in
  (drift_ms, Sw_vmm.Replica_group.epochs_resolved (Cloud.group d))

let epoch_jobs =
  Job.make ~key:"ablation/epoch/off" (fun ~seed:_ ->
      let drift, _ = epoch_drift None in
      [ "off"; Tables.f1 drift; "0" ])
  :: List.map
       (fun interval ->
         Job.make
           ~key:(Printf.sprintf "ablation/epoch/%d" interval)
           (fun ~seed:_ ->
             let d, epochs =
               epoch_drift
                 (Some
                    {
                      Config.interval_branches = Int64.of_int interval;
                      slope_l = 0.9;
                      slope_u = 1.1;
                    })
             in
             [ string_of_int interval; Tables.f1 d; string_of_int epochs ]))
       [ 100_000_000; 500_000_000; 2_000_000_000 ]

let sweeps =
  [
    ( "delta_n sweep (HTTP 100 KB latency under StopWatch)",
      [ "delta_n (ms)"; "latency ms"; "divergences" ],
      14,
      delta_n_jobs );
    ( "delta_d sweep (ferret runtime under StopWatch)",
      [ "delta_d (ms)"; "runtime ms"; "dd violations" ],
      14,
      delta_d_jobs );
    ( "scheduler quantum sweep (HTTP 100 KB latency under StopWatch)",
      [ "quantum (us)"; "latency ms"; "divergences" ],
      14,
      quantum_jobs );
    ( "replica count sweep (HTTP 100 KB latency)",
      [ "replicas"; "latency ms" ],
      14,
      replica_jobs );
    ( "machine speed spread (echo RTT; skew limiter activity over 5 s)",
      [ "spread %"; "skew blocks"; "divergences" ],
      14,
      hardware_spread_jobs );
    ( "epoch resynchronisation (guest clock 10% fast, 5 s run)",
      [ "epoch I (branches)"; "|virt - real| ms"; "epochs" ],
      20,
      epoch_jobs );
  ]

let run ?pool () =
  Tables.section "Ablations";
  let groups = List.map (fun (title, _, _, jobs) -> (title, jobs)) sweeps in
  let total = List.fold_left (fun n (_, js) -> n + List.length js) 0 groups in
  let on_event =
    match pool with
    | Some _ -> Some (Runner.progress_printer ~total ())
    | None -> None
  in
  let collected = Runner.map_groups ?pool ?on_event groups in
  List.iter
    (fun (title, header, width, _) ->
      Tables.subsection title;
      Tables.header ~width header;
      List.iter
        (fun row -> Tables.row ~width (Runner.get row))
        (List.assoc title collected))
    sweeps
