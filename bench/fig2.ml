(* Fig. 2: the packet-delivery protocol, reproduced as an execution trace of
   one inbound packet: arrival at each VMM, the three proposals, the median
   selection, and the delivery to the guest replicas. *)

module Time = Sw_sim.Time
module Cloud = Stopwatch.Cloud

let run () =
  Sw_experiments.Tables.section
    "Fig. 2 — delivering one packet to guest VM replicas (protocol trace)";
  let cloud = Cloud.create ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:(Sw_apps.Probe.receiver ()) in
  let trace = Sw_sim.Trace.create () in
  Sw_sim.Trace.enable trace;
  List.iter (fun inst -> Sw_vmm.Vmm.set_trace inst trace) (Cloud.replicas d);
  let client = Cloud.add_host cloud () in
  Stopwatch.Host.after client (Time.ms 100) (fun () ->
      Stopwatch.Host.send client ~dst:(Cloud.vm_address d) ~size:100
        (Sw_apps.Probe.Probe_ping 1));
  Cloud.run cloud ~until:(Time.ms 400);
  List.iter
    (fun e -> Format.printf "%a@." Sw_sim.Trace.pp_entry e)
    (Sw_sim.Trace.entries trace)
