(* Fig. 2: the packet-delivery protocol, reproduced as an execution trace of
   one inbound packet: arrival at each VMM, the three proposals, the median
   selection, and the delivery to the guest replicas.

   This figure doubles as the demo of the typed trace: the VMMs emit
   structured [Sw_obs.Event.t] values, and the consumer pattern-matches to
   keep only the protocol steps — no string parsing. *)

module Time = Sw_sim.Time
module Cloud = Stopwatch.Cloud
module Trace = Sw_obs.Trace
module Event = Sw_obs.Event

let run () =
  Sw_experiments.Tables.section
    "Fig. 2 — delivering one packet to guest VM replicas (protocol trace)";
  let cloud = Cloud.create ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:(Sw_apps.Probe.receiver ()) in
  let trace = Trace.create () in
  Trace.enable trace;
  (* Cloud-wide attachment: the ingress and egress edge nodes emit too, so
     the printed trace starts at the replication fan-out. *)
  Cloud.attach_trace cloud trace;
  let client = Cloud.add_host cloud () in
  Stopwatch.Host.after client (Time.ms 100) (fun () ->
      Stopwatch.Host.send client ~dst:(Cloud.vm_address d) ~size:100
        (Sw_apps.Probe.Probe_ping 1));
  let now () = Sw_sim.Engine.now (Cloud.engine cloud) in
  Trace.span trace ~now ~name:"fig2.simulation" (fun () ->
      Cloud.run cloud ~until:(Time.ms 400));
  (* Keep the protocol steps (proposals, median adoption, delivery) and the
     surrounding span; drop device interrupts and free-form messages. *)
  Trace.iter trace (fun entry ->
      match entry.Trace.event with
      | Event.Packet_proposed _ | Event.Median_adopted _
      | Event.Packet_delivered _ | Event.Ingress_replicated _
      | Event.Egress_released _ | Event.Divergence _ | Event.Span_begin _
      | Event.Span_end _ ->
          Format.printf "%a@." Trace.pp_entry entry
      | Event.Vm_exit _ | Event.Disk_irq _ | Event.Dma_irq _ | Event.Message _
      | Event.Fault_injected _ | Event.Fault_cleared _
      | Event.Fault_replica_crash _ | Event.Fault_replica_restart _
      | Event.Degrade_suspected _ | Event.Degrade_ejected _
      | Event.Degrade_reintegrated _ ->
          ())
