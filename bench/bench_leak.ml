(* `main.exe leak`: the Fig. 4 distinguisher grid through the sw_leak audit.

   Runs the victim / no-victim scenario pair once under StopWatch and once
   under the baseline VMM, extracts every lineage-attributed observation
   series (Scenario.leak_series), and sweeps the full detector battery over
   each pair. Printed per config: the guest-visible verdict (detectors
   flagging any attacker-observable series) and per-series p-values; the
   full audit lands in BENCH_results.json under "leakage". [-quick]
   shrinks the runs to the CI smoke duration. *)

open Sw_experiments
module Time = Sw_sim.Time
module Scenario = Sw_attack.Scenario
module Runner = Sw_runner.Runner
module Detector = Sw_leak.Detector
module Audit = Sw_leak.Audit

let quick = ref false

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let guest_leaking (a : Audit.t) =
  List.sort_uniq compare
    (List.concat_map
       (fun (f : Audit.finding) ->
         if starts_with "attacker/" f.Audit.f_key then f.Audit.leaking else [])
       a.Audit.findings)

let p_cell p =
  if Float.is_nan p then "-"
  else if p < 1e-4 then Printf.sprintf "%.0e" p
  else Printf.sprintf "%.4f" p

let run ?pool () =
  Tables.section
    (if !quick then "Leak audit (fig4 grid, quick)"
     else "Leak audit — fig4 grid through the detector battery");
  let duration = if !quick then Time.s 2 else Time.s 20 in
  let base = { Scenario.default with Scenario.duration } in
  let jobs =
    List.concat_map
      (fun baseline ->
        List.map
          (fun victim ->
            let key =
              Printf.sprintf "leak/%s/%s"
                (if baseline then "base" else "sw")
                (if victim then "victim" else "no-victim")
            in
            Sw_runner.Job.make ~key (fun ~seed:_ ->
                Scenario.leak_series { base with Scenario.baseline; victim }))
          [ false; true ])
      [ false; true ]
  in
  let results = List.map Runner.get (Runner.map ?pool jobs) in
  let registry = Sw_obs.Registry.create () in
  let paired null alt =
    List.filter_map
      (fun (key, null_xs) ->
        Option.map
          (fun alt_xs -> { Audit.key; null = null_xs; alt = alt_xs })
          (List.assoc_opt key alt))
      null
  in
  let audits =
    match results with
    | [ sw_null; sw_alt; base_null; base_alt ] ->
        [
          Audit.run ~registry ~label:"stopwatch" (paired sw_null sw_alt);
          Audit.run ~registry ~label:"baseline" (paired base_null base_alt);
        ]
    | _ -> []
  in
  let detector_names =
    List.map (fun (d : Detector.t) -> d.Detector.name) Detector.all
  in
  List.iter
    (fun (a : Audit.t) ->
      Tables.subsection
        (Printf.sprintf "%s: %s" a.Audit.label
           (match guest_leaking a with
           | [] -> "guest-visible channel clean"
           | ds ->
               Printf.sprintf "guest-visible channel LEAKS (%s)"
                 (String.concat ", " ds)));
      Tables.header ~width:13 ("series" :: detector_names);
      List.iter
        (fun (f : Audit.finding) ->
          Tables.row ~width:13
            (f.Audit.f_key
            :: List.map
                 (fun (r : Detector.report) ->
                   let cell = p_cell r.Detector.p_value in
                   if r.Detector.leak then cell ^ "*" else cell)
                 f.Audit.reports))
        a.Audit.findings;
      print_endline "  (*: detector flags leakage at its threshold)")
    audits;
  Bench_report.add "leakage"
    (Sw_runner.Report.List (List.map Audit.to_report audits));
  Bench_report.add_metrics (Sw_obs.Registry.snapshot registry)
