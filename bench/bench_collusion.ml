(* Sec. IX: collaborating attacker VMs. A colluder loads one of the attacker
   replicas' machines to marginalise it from the median; increasing the
   replica count from 3 to 5 blunts the technique. *)

open Sw_experiments

let run () =
  Tables.section "Sec. IX — collaborating attacker VMs (simulated)";
  let rows = Sw_attack.Collusion.table ~duration:(Sw_sim.Time.s 25) () in
  Tables.header ~width:12 [ "conf"; "r=3"; "r=3+col"; "r=5+col" ];
  (match rows with
  | [ a; b; c ] ->
      List.iteri
        (fun i (conf, obs_a) ->
          let _, obs_b = List.nth b.Sw_attack.Collusion.observations i in
          let _, obs_c = List.nth c.Sw_attack.Collusion.observations i in
          Tables.row ~width:12
            [ Tables.f2 conf; Tables.f0 obs_a; Tables.f0 obs_b; Tables.f0 obs_c ])
        a.Sw_attack.Collusion.observations
  | _ -> print_endline "unexpected collusion table shape");
  Tables.subsection
    "Marginalisation: loaded replica's share of adopted medians (1/m if unloaded)";
  List.iter
    (fun (r : Sw_attack.Collusion.row) ->
      Printf.printf "  %-42s %.3f (uniform would be %.3f)
"
        r.Sw_attack.Collusion.label r.Sw_attack.Collusion.loaded_replica_share
        (1. /. float_of_int r.Sw_attack.Collusion.replicas))
    rows
