(* Simulator scalability: a 33-machine cloud filled by the Theorem 2
   construction, everyone echoing pings. Reports simulated-vs-wall time and
   engine throughput — a performance-regression canary for the simulator
   itself. *)

open Sw_experiments
module Time = Sw_sim.Time
module Cloud = Stopwatch.Cloud
module Host = Stopwatch.Host

let run () =
  Tables.section "Scale: 33 machines, Theorem 2 placement, echo traffic";
  Tables.header ~width:12 [ "VMs"; "sim s"; "wall s"; "events"; "ev/s"; "pings" ];
  List.iter
    (fun vms ->
      let plan =
        match Sw_placement.Placement.theorem2_place ~n:33 ~c:6 ~k:vms with
        | Ok plan -> plan
        | Error e -> failwith e
      in
      let cloud = Cloud.create ~machines:33 () in
      let deployments = Cloud.deploy_plan cloud ~plan ~app:(Sw_apps.Probe.receiver ()) in
      let client = Cloud.add_host cloud () in
      Host.set_handler client (fun _ -> ());
      let pings_sent = ref 0 in
      List.iter
        (fun d ->
          let rec ping n =
            if n <= 40 then
              Host.after client (Time.ms 25) (fun () ->
                  incr pings_sent;
                  Host.send client ~dst:(Cloud.vm_address d) ~size:100
                    (Sw_apps.Probe.Probe_ping n);
                  ping (n + 1))
          in
          ping 1)
        deployments;
      (* Wall clock, not Sys.time: CPU time overcounts under Domains. *)
      let t0 = Sw_sim.Wall.now_s () in
      Cloud.run cloud ~until:(Time.s 2);
      let wall = Sw_sim.Wall.elapsed_s t0 in
      let events = Sw_sim.Engine.fired (Cloud.engine cloud) in
      Tables.row ~width:12
        [
          string_of_int vms;
          "2.0";
          Tables.f2 wall;
          string_of_int events;
          Tables.f0 (float_of_int events /. wall);
          string_of_int !pings_sent;
        ])
    [ 11; 33; 66 ]
