(* Fig. 5: HTTP and UDP file-retrieval latency, baseline vs StopWatch,
   1 KB .. 10 MB. Paper reference points (their testbed, wireless client):
   HTTP loses < 2.8x for >= 100 KB; UDP over StopWatch is competitive with
   baseline for >= 100 KB.

   The 2 protocols x 5 sizes x 2 modes x [runs] replicated downloads are
   independent simulations; they run as one flat job fleet on the runner,
   so `main.exe fig5 -j N` shards them across N domains with output
   identical to the sequential run. *)

open Sw_experiments
module Ft = File_transfer
module Runner = Sw_runner.Runner
module Report = Sw_runner.Report

let runs = 3

type group = { protocol : Ft.protocol; size : int; stopwatch : bool }

let groups =
  List.concat_map
    (fun protocol ->
      List.concat_map
        (fun size ->
          List.map
            (fun stopwatch ->
              ( { protocol; size; stopwatch },
                Ft.jobs ~protocol ~stopwatch ~size_bytes:size ~runs () ))
            [ false; true ])
        Ft.paper_sizes)
    [ Ft.Http; Ft.Udp ]

let print_rows label rows =
  Tables.subsection label;
  Tables.header ~width:12 [ "size (KB)"; "baseline ms"; "stopwatch ms"; "ratio"; "div" ];
  List.iter
    (fun (size, (b : Ft.outcome), (s : Ft.outcome)) ->
      Tables.row ~width:12
        [
          string_of_int (size / 1024);
          Tables.f1 b.Ft.elapsed_ms;
          Tables.f1 s.Ft.elapsed_ms;
          Tables.f2 (s.Ft.elapsed_ms /. b.Ft.elapsed_ms);
          string_of_int s.Ft.divergences;
        ])
    rows

let json_rows rows =
  Report.List
    (List.concat_map
       (fun (protocol, per_size) ->
         List.map
           (fun (size, (b : Ft.outcome), (s : Ft.outcome)) ->
             Report.Obj
               [
                 ("protocol", Report.String protocol);
                 ("size_bytes", Report.Int size);
                 ("baseline_ms", Report.Float b.Ft.elapsed_ms);
                 ("stopwatch_ms", Report.Float s.Ft.elapsed_ms);
                 ("ratio", Report.Float (s.Ft.elapsed_ms /. b.Ft.elapsed_ms));
                 ("divergences", Report.Int s.Ft.divergences);
               ])
           per_size)
       rows)

let run ?pool () =
  Tables.section "Fig. 5 — HTTP and UDP file-retrieval latency";
  let total = List.fold_left (fun n (_, js) -> n + List.length js) 0 groups in
  let on_event =
    match pool with
    | Some _ -> Some (Runner.progress_printer ~total ())
    | None -> None
  in
  let collected =
    List.map
      (fun (g, outcomes) -> (g, Ft.collect outcomes))
      (Runner.map_groups ?pool ?on_event groups)
  in
  let rows_for protocol =
    List.filter_map
      (fun size ->
        let find stopwatch =
          List.assoc_opt { protocol; size; stopwatch } collected
        in
        match (find false, find true) with
        | Some b, Some s -> Some (size, b, s)
        | _ -> None)
      Ft.paper_sizes
  in
  let http = rows_for Ft.Http and udp = rows_for Ft.Udp in
  Bench_report.add_metrics
    (Sw_obs.Snapshot.merge_all
       (List.map (fun (_, (o : Ft.outcome)) -> o.Ft.metrics) collected));
  print_rows "HTTP (TCP; each average of 3 runs)" http;
  print_rows "UDP with NAK-based reliability" udp;
  let failures =
    List.concat_map (fun (_, (o : Ft.outcome)) -> o.Ft.failed_runs) collected
  in
  if failures <> [] then begin
    Tables.subsection "Failed runs (excluded from the means)";
    List.iter
      (fun f -> Printf.printf "  %s\n" (Format.asprintf "%a" Runner.pp_failure f))
      failures
  end;
  Bench_report.add "fig5"
    (Report.Obj
       [
         ("rows", json_rows [ ("http", http); ("udp", udp) ]);
         ("failures", Bench_report.failures_json failures);
       ])
