(* Fig. 5: HTTP and UDP file-retrieval latency, baseline vs StopWatch,
   1 KB .. 10 MB. Paper reference points (their testbed, wireless client):
   HTTP loses < 2.8x for >= 100 KB; UDP over StopWatch is competitive with
   baseline for >= 100 KB. *)

open Sw_experiments
module Ft = File_transfer

let runs = 3

let sweep protocol =
  List.map
    (fun size ->
      let baseline = Ft.run ~protocol ~stopwatch:false ~size_bytes:size ~runs () in
      let stopwatch = Ft.run ~protocol ~stopwatch:true ~size_bytes:size ~runs () in
      (size, baseline, stopwatch))
    Ft.paper_sizes

let print_rows label rows =
  Tables.subsection label;
  Tables.header ~width:12 [ "size (KB)"; "baseline ms"; "stopwatch ms"; "ratio"; "div" ];
  List.iter
    (fun (size, (b : Ft.outcome), (s : Ft.outcome)) ->
      Tables.row ~width:12
        [
          string_of_int (size / 1024);
          Tables.f1 b.Ft.elapsed_ms;
          Tables.f1 s.Ft.elapsed_ms;
          Tables.f2 (s.Ft.elapsed_ms /. b.Ft.elapsed_ms);
          string_of_int s.Ft.divergences;
        ])
    rows

let run () =
  Tables.section "Fig. 5 — HTTP and UDP file-retrieval latency";
  print_rows "HTTP (TCP; each average of 3 runs)" (sweep Ft.Http);
  print_rows "UDP with NAK-based reliability" (sweep Ft.Udp)
