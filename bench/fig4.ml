(* Fig. 4: virtual inter-packet delivery times at an attacker VM's replicas
   with a coresident file-serving victim vs without, from full simulations;
   and the observations needed to distinguish the two, with and without
   StopWatch.

   The four 60 s scenario simulations are independent; they run as one
   runner fleet (sharded under -j), each job's seed fixed in its spec.

   The scenario family itself is data: examples/fig4.scn, loaded through the
   sw_workload DSL — the compiled specs are structurally identical to the
   hand-built list this file used to carry, so the bench output is unchanged
   byte for byte. *)

open Sw_experiments
module Scenario = Sw_attack.Scenario
module Runner = Sw_runner.Runner
module Report = Sw_runner.Report

(* The bench runs from the repo root under `dune exec` and from
   _build/default/bench under aliases; probe both, plus the executable's own
   location for out-of-tree invocations. *)
let scn_path file =
  let exe_dir = Filename.dirname Sys.executable_name in
  let candidates =
    [
      Filename.concat "examples" file;
      Filename.concat "../examples" file;
      Filename.concat "../../examples" file;
      Filename.concat exe_dir (Filename.concat "../examples" file);
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith (Printf.sprintf "fig4: cannot locate examples/%s" file)

let load_specs () =
  match Sw_workload.Dsl.load_file (scn_path "fig4.scn") with
  | Error e -> failwith e
  | Ok { Sw_workload.Dsl.kind = Sw_workload.Dsl.Attack a; _ } ->
      Sw_workload.Dsl.attack_specs a
  | Ok _ -> failwith "fig4.scn: expected kind = \"attack\""

let cdf_table sw_no sw_yes =
  Tables.subsection
    "Fig. 4(a): CDF of virtual inter-packet delivery times (StopWatch, ms)";
  let ecdf samples x =
    let n = Array.length samples in
    let c = Array.fold_left (fun acc v -> if v <= x then acc + 1 else acc) 0 samples in
    float_of_int c /. float_of_int n
  in
  Tables.header ~width:12 [ "ms"; "3 baselines"; "2 base+1vic" ];
  List.iter
    (fun x ->
      Tables.row ~width:12
        [ Tables.f0 x; Tables.f2 (ecdf sw_no x); Tables.f2 (ecdf sw_yes x) ])
    [ 5.; 10.; 20.; 30.; 40.; 60.; 80. ]

let run ?pool () =
  Tables.section "Fig. 4 — attacker observations under a coresident victim (simulated)";
  let specs = load_specs () in
  let jobs =
    List.map
      (fun (key, spec) ->
        (* The scenario's seed lives in its spec; the runner seed is unused
           so output stays bit-compatible with the sequential harness. *)
        Sw_runner.Job.make ~key (fun ~seed:_ -> Scenario.run spec))
      specs
  in
  let on_event =
    match pool with
    | Some _ -> Some (Runner.progress_printer ~total:(List.length jobs) ())
    | None -> None
  in
  let results = List.map Runner.get (Runner.map ?pool ?on_event jobs) in
  let sw_no, sw_yes, bl_no, bl_yes =
    match results with
    | [ a; b; c; d ] -> (a, b, c, d)
    | _ -> assert false
  in
  (* One merged snapshot over the four scenario clouds; merge is exact, so
     the bytes in BENCH_results.json are worker-count independent. *)
  Bench_report.add_metrics
    (Sw_obs.Snapshot.merge_all
       (List.map (fun r -> r.Scenario.metrics) results));
  cdf_table sw_no.Scenario.attacker_inter_delivery_ms
    sw_yes.Scenario.attacker_inter_delivery_ms;
  Tables.subsection "Fig. 4(b): observations needed to detect the victim (chi-square)";
  Tables.header ~width:12 [ "confidence"; "with SW"; "without SW" ];
  let sw =
    Sw_attack.Distinguisher.sweep_empirical
      ~null:sw_no.Scenario.attacker_inter_delivery_ms
      ~alt:sw_yes.Scenario.attacker_inter_delivery_ms ()
  in
  let bl =
    Sw_attack.Distinguisher.sweep_empirical
      ~null:bl_no.Scenario.attacker_inter_delivery_ms
      ~alt:bl_yes.Scenario.attacker_inter_delivery_ms ()
  in
  List.iter2
    (fun (c, w) (_, wo) ->
      Tables.row ~width:12 [ Tables.f2 c; Tables.f0 w; Tables.f0 wo ])
    sw bl;
  Tables.subsection "Cross-check: Kolmogorov-Smirnov distinguisher at 0.95";
  let ks null alt =
    Sw_attack.Distinguisher.ks_observations_needed
      ~null:null.Scenario.attacker_inter_delivery_ms
      ~alt:alt.Scenario.attacker_inter_delivery_ms ~confidence:0.95
  in
  let ks_sw = ks sw_no sw_yes and ks_bl = ks bl_no bl_yes in
  Printf.printf "  with StopWatch: %.0f observations; without: %.0f\n" ks_sw ks_bl;
  Tables.subsection
    "External observer (Sec. VI): real inter-arrival times of attacker output";
  let ks_ext null alt =
    Sw_attack.Distinguisher.ks_observations_needed
      ~null:null.Scenario.observer_inter_arrival_ms
      ~alt:alt.Scenario.observer_inter_arrival_ms ~confidence:0.95
  in
  let chi_ext null alt =
    Sw_attack.Distinguisher.empirical
      ~null:null.Scenario.observer_inter_arrival_ms
      ~alt:alt.Scenario.observer_inter_arrival_ms ~confidence:0.95 ()
  in
  Printf.printf
    "  chi-square@0.95: with SW %.0f obs, without %.0f; KS@0.95: with %.0f, \
     without %.0f\n"
    (chi_ext sw_no sw_yes) (chi_ext bl_no bl_yes) (ks_ext sw_no sw_yes)
    (ks_ext bl_no bl_yes);
  Printf.printf "\n(divergences: sw=%d / %d deliveries; samples n=%d)\n"
    sw_yes.Scenario.divergences sw_yes.Scenario.deliveries
    (Array.length sw_yes.Scenario.attacker_inter_delivery_ms);
  Bench_report.add "fig4"
    (Report.Obj
       [
         ("deliveries", Report.Int sw_yes.Scenario.deliveries);
         ("divergences", Report.Int sw_yes.Scenario.divergences);
         ("ks95_with_stopwatch", Report.Float ks_sw);
         ("ks95_without_stopwatch", Report.Float ks_bl);
       ])
