(* Fig. 9-style overhead-vs-load sweep: client-observed response times of
   the sw_workload KV service under StopWatch vs unmodified Xen, as the
   offered (open-loop) load scales across a multiplier ladder, for two
   arrival shapes (diurnal sinusoid and flash crowd).

   Every point is an independent simulation built from a Dsl.workload value
   whose seed is fixed in the spec before dispatch, so the sweep shards
   across -j N with byte-identical BENCH_results.json output. Quantiles are
   read off the shared Buckets ladder of the workload.response_ns
   histogram. *)

open Sw_experiments
module Runner = Sw_runner.Runner
module Report = Sw_runner.Report
module Dsl = Sw_workload.Dsl
module Run = Sw_workload.Run
module Arrival = Sw_workload.Arrival
module Time = Sw_sim.Time

let quick = ref false

let classes =
  [
    { Sw_workload.Flowgen.name = "page"; weight = 0.8; resp_bytes = 2048; cached = true };
    { Sw_workload.Flowgen.name = "asset"; weight = 0.2; resp_bytes = 8192; cached = true };
  ]

let workload ~arrival ~stopwatch ~duration ~multipliers : Dsl.workload =
  {
    Dsl.seed = 0xF19ACCL;
    duration;
    replicas = 3;
    stopwatch;
    arrival;
    classes;
    keys = 512;
    theta = 1.1;
    cache = Sw_workload.Kv.default_config.Sw_workload.Kv.cache;
    pool = 6;
    max_per_conn = 64;
    request_bytes = 120;
    compute_branches = 20_000;
    header_bytes = 64;
    faults = [];
    attack = None;
    topology = None;
    load_multipliers = multipliers;
    trace = false;
    leak_audit = false;
    profile = false;
  }

let shapes duration =
  [
    ( "diurnal",
      Arrival.Diurnal
        { base_per_s = 50.; amplitude = 0.6; period = Time.scale duration 0.5 }
    );
    ( "flash",
      Arrival.Flash
        {
          base_per_s = 30.;
          peak_per_s = 300.;
          at = Time.scale duration 0.4;
          ramp = Time.scale duration 0.05;
          hold = Time.scale duration 0.2;
        } );
  ]

let run ?pool () =
  Tables.section
    "Fig. 9 — response-time overhead vs offered load (workload engine)";
  let duration = if !quick then Time.of_float_s 1.5 else Time.s 3 in
  let multipliers = if !quick then [ 1. ] else [ 0.5; 1.; 2.; 4. ] in
  let variants =
    List.concat_map
      (fun (shape, arrival) ->
        List.concat_map
          (fun (backend, stopwatch) ->
            Dsl.workload_variants
              ~name:(Printf.sprintf "fig9/%s/%s" shape backend)
              (workload ~arrival ~stopwatch ~duration ~multipliers))
          [ ("sw", true); ("base", false) ])
      (shapes duration)
  in
  let jobs =
    List.map
      (fun (key, w) ->
        (* The workload's seed is fixed in its spec; the runner seed is
           unused so output is worker-count independent. *)
        Sw_runner.Job.make ~key (fun ~seed:_ -> Run.run w))
      variants
  in
  let on_event =
    match pool with
    | Some _ -> Some (Runner.progress_printer ~total:(List.length jobs) ())
    | None -> None
  in
  let results =
    List.map2
      (fun (key, _) r -> (key, Runner.get r))
      variants
      (Runner.map ?pool ?on_event jobs)
  in
  Bench_report.add_metrics
    (Sw_obs.Snapshot.merge_all (List.map (fun (_, r) -> r.Run.metrics) results));
  Tables.header ~width:12
    [ "shape"; "xload"; "base p50"; "base p99"; "sw p50"; "sw p99"; "ovh p50%" ];
  List.iter
    (fun (shape, _) ->
      List.iter
        (fun m ->
          let find backend =
            let key =
              if multipliers = [ 1. ] then
                Printf.sprintf "fig9/%s/%s" shape backend
              else Printf.sprintf "fig9/%s/%s/x%g" shape backend m
            in
            List.assoc key results
          in
          let sw = find "sw" and base = find "base" in
          let overhead =
            if base.Run.p50_ms > 0. then
              100. *. ((sw.Run.p50_ms /. base.Run.p50_ms) -. 1.)
            else 0.
          in
          Tables.row ~width:12
            [
              shape;
              Tables.f2 m;
              Tables.f2 base.Run.p50_ms;
              Tables.f2 base.Run.p99_ms;
              Tables.f2 sw.Run.p50_ms;
              Tables.f2 sw.Run.p99_ms;
              Tables.f0 overhead;
            ])
        multipliers)
    (shapes duration);
  Bench_report.add "fig9"
    (Report.Obj
       (List.map
          (fun (key, r) ->
            ( key,
              Report.Obj
                [
                  ("issued", Report.Int r.Run.issued);
                  ("completed", Report.Int r.Run.completed);
                  ("hits", Report.Int r.Run.hits);
                  ("misses", Report.Int r.Run.misses);
                  ("p50_ms", Report.Float r.Run.p50_ms);
                  ("p99_ms", Report.Float r.Run.p99_ms);
                ] ))
          results))
