(* Sec. VIII: replica placement. Theorem 1's maximum edge-disjoint triangle
   packing sizes, Theorem 2's constructive capacity-constrained placement,
   the greedy practical algorithm, and the utilization comparison against
   running each guest VM in isolation (Theta(cn) vs n). *)

open Sw_experiments
module P = Sw_placement.Placement
module Pk = Sw_placement.Packing

let theorem1 () =
  Tables.subsection "Theorem 1: maximum packing of K_n with edge-disjoint triangles";
  Tables.header ~width:10 [ "n"; "max k"; "greedy k"; "edges"; "3k" ];
  List.iter
    (fun n ->
      let k = Pk.max_packing_size n in
      let greedy = List.length (Pk.greedy n) in
      Tables.row ~width:10
        [
          string_of_int n;
          string_of_int k;
          string_of_int greedy;
          string_of_int (Pk.edge_count n);
          string_of_int (3 * k);
        ])
    [ 3; 4; 5; 6; 7; 8; 9; 10; 12; 15; 21; 33; 45; 60 ]

let theorem2 () =
  Tables.subsection
    "Theorem 2: capacity-constrained placement for n = 3 mod 6 (k VMs placed, all verified)";
  Tables.header ~width:10 [ "n"; "c"; "bound"; "placed"; "valid"; "util"; "isol." ];
  List.iter
    (fun n ->
      let cs = [ 1; 2; 3; (n - 1) / 4; (n - 1) / 2 ] in
      List.iter
        (fun c ->
          if c >= 1 then begin
            let bound = P.theorem2_bound ~n ~c in
            match P.theorem2_place ~n ~c ~k:bound with
            | Error e -> Printf.printf "n=%d c=%d ERROR: %s\n" n c e
            | Ok plan ->
                let valid =
                  match P.verify plan with Ok () -> "yes" | Error _ -> "NO"
                in
                Tables.row ~width:10
                  [
                    string_of_int n;
                    string_of_int c;
                    string_of_int bound;
                    string_of_int (List.length plan.P.placements);
                    valid;
                    Tables.f2 (P.utilization plan);
                    string_of_int (P.isolation_bound ~n);
                  ]
          end)
        (List.sort_uniq compare cs))
    [ 9; 15; 21; 27; 33 ]

let scaling () =
  Tables.subsection "Guest VMs runnable: StopWatch Theta(cn) vs isolation (n)";
  Tables.header ~width:12 [ "n"; "c"; "stopwatch"; "isolation"; "factor" ];
  List.iter
    (fun n ->
      let c = (n - 1) / 2 in
      let k = P.theorem2_bound ~n ~c in
      Tables.row ~width:12
        [
          string_of_int n;
          string_of_int c;
          string_of_int k;
          string_of_int n;
          Tables.f1 (float_of_int k /. float_of_int n);
        ])
    [ 9; 15; 21; 33; 45; 63; 99; 201 ]

let run () =
  Tables.section "Sec. VIII — replica placement in the cloud";
  theorem1 ();
  theorem2 ();
  scaling ()
