(* Fig. 1: analytic justification for the median. Baseline timings are
   Exp(lambda = 1); the victim induces Exp(lambda'). (a) compares the median
   distributions with and without one victim-influenced replica; (b)/(c) give
   the observations an attacker needs for a chi-square rejection. *)

open Sw_experiments

let lambda = 1.0

let dists ~lambda' =
  let base = Sw_stats.Dist.exponential ~rate:lambda in
  let victim = Sw_stats.Dist.exponential ~rate:lambda' in
  let median_baselines = Sw_stats.Order_stats.median_dist [| base; base; base |] in
  let median_victim = Sw_stats.Order_stats.median_dist [| victim; base; base |] in
  (base, victim, median_baselines, median_victim)

let subfig_a () =
  Tables.subsection "Fig. 1(a): CDFs (lambda = 1, lambda' = 1/2)";
  let base, victim, med3, med2v = dists ~lambda':0.5 in
  Tables.header ~width:10
    [ "x"; "baseline"; "victim"; "med-3base"; "med-2b+1v" ];
  List.iter
    (fun x ->
      Tables.row ~width:10
        [
          Tables.f1 x;
          Tables.f2 (base.Sw_stats.Dist.cdf x);
          Tables.f2 (victim.Sw_stats.Dist.cdf x);
          Tables.f2 (med3.Sw_stats.Dist.cdf x);
          Tables.f2 (med2v.Sw_stats.Dist.cdf x);
        ])
    [ 0.25; 0.5; 1.0; 1.5; 2.0; 3.0; 4.0; 5.0; 6.0 ]

let observations_table ~lambda' ~label =
  Tables.subsection label;
  let base, victim, med3, med2v = dists ~lambda' in
  Tables.header ~width:12 [ "confidence"; "with SW"; "without SW"; "ratio" ];
  List.iter
    (fun confidence ->
      let with_sw =
        Sw_attack.Distinguisher.analytic ~null:med3 ~alt:med2v ~confidence ()
      in
      let without_sw =
        Sw_attack.Distinguisher.analytic ~null:base ~alt:victim ~confidence ()
      in
      Tables.row ~width:12
        [
          Tables.f2 confidence;
          Tables.f1 with_sw;
          Tables.f1 without_sw;
          Tables.f1 (with_sw /. without_sw);
        ])
    Sw_attack.Distinguisher.confidence_grid

let run () =
  Tables.section "Fig. 1 — justification for the median (analytic)";
  subfig_a ();
  observations_table ~lambda':0.5
    ~label:"Fig. 1(b): observations to detect victim; lambda' = 1/2";
  observations_table ~lambda':(10. /. 11.)
    ~label:"Fig. 1(c): observations to detect victim; lambda' = 10/11"
