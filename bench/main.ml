(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index), plus ablations and
   bechamel micro-benchmarks.

   Usage: main.exe [-j N] [-quick] [--shards N] [experiment ...]
   where experiment is one of fig1 fig2 fig4 fig5 fig6 fig7 fig8 fig9
   placement utilization theorems collusion ablation scale shard micro ckpt
   chaos leak quick, or nothing / "all" for everything except chaos and quick.
   [-quick] shrinks the chaos, engine, fig9, leak, and shard sweeps to their
   CI smoke forms.

   -j / --jobs N shards each experiment's independent simulations across N
   worker domains via sw_runner; results are identical to -j 1 (per-job
   seeds are derived before dispatch), only faster. --shards N narrows the
   shard experiment's conservative-parallel sweep to [1; N] (each variant's
   cloud then runs on N engine domains — composes with -j, which
   parallelises across variants). Every invocation also writes
   machine-readable results to BENCH_results.json. *)

let experiments =
  [
    ("fig1", fun ~pool:_ -> Fig1.run ());
    ("fig2", fun ~pool:_ -> Fig2.run ());
    ("fig4", fun ~pool -> Fig4.run ?pool ());
    ("fig5", fun ~pool -> Fig5.run ?pool ());
    ("fig6", fun ~pool -> Fig6.run ?pool ());
    ("fig7", fun ~pool -> Fig7.run ?pool ());
    ("fig8", fun ~pool:_ -> Fig8.run ());
    ("fig9", fun ~pool -> Fig9.run ?pool ());
    ("placement", fun ~pool:_ -> Bench_placement.run ());
    ("utilization", fun ~pool:_ -> Bench_utilization.run ());
    ("theorems", fun ~pool:_ -> Bench_theorems.run ());
    ("collusion", fun ~pool:_ -> Bench_collusion.run ());
    ("ablation", fun ~pool -> Bench_ablation.run ?pool ());
    ("scale", fun ~pool:_ -> Bench_scale.run ());
    ("shard", fun ~pool:_ -> Bench_shard.run ());
    ("micro", fun ~pool:_ -> Bench_micro.run ());
    ("engine", fun ~pool:_ -> Bench_engine.run ());
    ("ckpt", fun ~pool:_ -> Bench_ckpt.run ());
    ("chaos", fun ~pool -> Bench_chaos.run ?pool ());
    ("leak", fun ~pool -> Bench_leak.run ?pool ());
    ("quick", fun ~pool -> Bench_quick.run ?pool ());
  ]

let default_set =
  List.filter (fun (name, _) -> name <> "quick" && name <> "chaos") experiments
  |> List.map fst

let usage () =
  Printf.eprintf
    "usage: main.exe [-j N] [-quick] [--shards N] [experiment ...]\navailable: %s\n"
    (String.concat ", " (List.map fst experiments));
  exit 2

let parse_args () =
  let jobs = ref 1 in
  let names = ref [] in
  let rec go = function
    | [] -> ()
    | ("-j" | "--jobs") :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 1 ->
            jobs := v;
            go rest
        | _ ->
            Printf.eprintf "-j expects a positive integer, got %S\n" n;
            exit 2)
    | ("-j" | "--jobs") :: [] ->
        Printf.eprintf "-j expects a worker count\n";
        exit 2
    | ("-quick" | "--quick") :: rest ->
        Bench_chaos.quick := true;
        Bench_engine.quick := true;
        Bench_shard.quick := true;
        Bench_leak.quick := true;
        Fig9.quick := true;
        go rest
    | "--shards" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 1 ->
            Bench_shard.shards_override := Some v;
            go rest
        | _ ->
            Printf.eprintf "--shards expects a positive integer, got %S\n" n;
            exit 2)
    | "--shards" :: [] ->
        Printf.eprintf "--shards expects a shard count\n";
        exit 2
    | name :: rest ->
        names := name :: !names;
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  let requested =
    match List.rev !names with [] | [ "all" ] -> default_set | l -> l
  in
  List.iter
    (fun name -> if not (List.mem_assoc name experiments) then usage ())
    requested;
  (!jobs, requested)

let () =
  let jobs, requested = parse_args () in
  let pool =
    if jobs > 1 then Some (Sw_runner.Pool.create ~workers:jobs ()) else None
  in
  if jobs > 1 then Printf.printf "[running on %d worker domains]\n%!" jobs;
  let t0 = Sw_sim.Wall.now_s () in
  List.iter
    (fun name ->
      let f = List.assoc name experiments in
      let t = Sw_sim.Wall.now_s () in
      f ~pool;
      let wall = Sw_sim.Wall.elapsed_s t in
      Bench_report.add_timing name wall;
      Printf.printf "\n[%s done in %.1f s]\n%!" name wall)
    requested;
  let total = Sw_sim.Wall.elapsed_s t0 in
  Option.iter Sw_runner.Pool.shutdown pool;
  Printf.printf "\nTotal: %.1f s\n" total;
  Bench_report.write ~workers:jobs ~wall_s:total
