(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index), plus ablations and
   bechamel micro-benchmarks.

   Usage: main.exe [experiment ...]
   where experiment is one of fig1 fig2 fig4 fig5 fig6 fig7 fig8 placement
   theorems collusion ablation micro, or nothing / "all" for everything. *)

let experiments =
  [
    ("fig1", Fig1.run);
    ("fig2", Fig2.run);
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8.run);
    ("placement", Bench_placement.run);
    ("utilization", Bench_utilization.run);
    ("theorems", Bench_theorems.run);
    ("collusion", Bench_collusion.run);
    ("ablation", Bench_ablation.run);
    ("scale", Bench_scale.run);
    ("micro", Bench_micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: rest when rest <> [] && rest <> [ "all" ] -> rest
    | _ -> List.map fst experiments
  in
  let t0 = Sys.time () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          let t = Sys.time () in
          f ();
          Printf.printf "\n[%s done in %.1f s]\n%!" name (Sys.time () -. t)
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 2)
    requested;
  Printf.printf "\nTotal: %.1f s\n" (Sys.time () -. t0)
