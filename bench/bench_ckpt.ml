(* Checkpoint/restore cost canary: capture and restore a mid-flight
   scenario at a few sizes, report image bytes and wall time for each
   phase, and assert the determinism contract the whole subsystem rests on
   (the restored run finishes byte-identical to the uninterrupted one).

   The numbers are wall-clock and machine-dependent; what the bench pins
   is that a checkpoint stays (a) cheap relative to re-simulation and
   (b) correct. *)

module Time = Sw_sim.Time
module Cloud = Stopwatch.Cloud
module Dsl = Sw_workload.Dsl
module Run = Sw_workload.Run
module Export = Sw_obs.Export
open Sw_experiments

let scn_path file =
  let exe_dir = Filename.dirname Sys.executable_name in
  let candidates =
    [
      Filename.concat "examples" file;
      Filename.concat "../examples" file;
      Filename.concat "../../examples" file;
      Filename.concat exe_dir (Filename.concat "../examples" file);
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith (Printf.sprintf "ckpt: cannot locate examples/%s" file)

let workload duration_ms =
  match Dsl.load_file (scn_path "kv_skew.scn") with
  | Ok { Dsl.kind = Dsl.Workload w; _ } ->
      { w with Dsl.duration = Time.ms duration_ms; load_multipliers = [ 1. ] }
  | Ok _ -> failwith "kv_skew.scn: expected kind = \"workload\""
  | Error e -> failwith e

let bytes_of (r : Run.result) = Export.to_json_string r.Run.metrics

let run () =
  Tables.section "Checkpoint/restore: capture cost vs simulation state size";
  Tables.header ~width:12
    [ "sim ms"; "image KB"; "ckpt ms"; "restore ms"; "resume" ];
  let rows =
    List.map
      (fun duration_ms ->
        let w = workload duration_ms in
        let straight =
          let h = Run.prepare w in
          Cloud.run h.Run.cloud ~until:h.Run.until;
          bytes_of (h.Run.finish ())
        in
        let h = Run.prepare w in
        Cloud.run h.Run.cloud ~until:(Time.scale h.Run.until 0.5);
        let t0 = Sw_sim.Wall.now_s () in
        let image = Cloud.checkpoint h.Run.cloud ~extra:h in
        let ckpt_ms = 1000. *. Sw_sim.Wall.elapsed_s t0 in
        let t1 = Sw_sim.Wall.now_s () in
        let h' =
          match Cloud.restore image with
          | Ok (_, (h' : Run.handle)) -> h'
          | Error e ->
              failwith (Format.asprintf "%a" Cloud.pp_restore_error e)
        in
        let restore_ms = 1000. *. Sw_sim.Wall.elapsed_s t1 in
        Cloud.run h'.Run.cloud ~until:h'.Run.until;
        let resumed = bytes_of (h'.Run.finish ()) in
        if resumed <> straight then
          failwith
            (Printf.sprintf
               "ckpt: resumed %d ms run diverged from the straight one"
               duration_ms);
        let kb = float_of_int (String.length image) /. 1024. in
        Tables.row ~width:12
          [
            string_of_int duration_ms; Tables.f1 kb; Tables.f2 ckpt_ms;
            Tables.f2 restore_ms; "exact";
          ];
        (duration_ms, kb, ckpt_ms, restore_ms))
      [ 250; 1000; 2000 ]
  in
  Bench_report.add "ckpt"
    (Sw_runner.Report.Obj
       (List.map
          (fun (ms, kb, ckpt_ms, restore_ms) ->
            ( Printf.sprintf "sim_%dms" ms,
              Sw_runner.Report.Obj
                [
                  ("image_kb", Sw_runner.Report.Float kb);
                  ("checkpoint_ms", Sw_runner.Report.Float ckpt_ms);
                  ("restore_ms", Sw_runner.Report.Float restore_ms);
                ] ))
          rows))
