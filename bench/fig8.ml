(* Fig. 8: expected delay of StopWatch vs adding uniformly random noise, at
   equal defensive strength. Paper: the noise bound b (hence E[X + XN]) grows
   steeply with the attacker's required confidence and with the victim's
   distinctiveness, while StopWatch's delay stays flat (dominated by
   delta_n, set so P(|X1 - X'1| <= delta_n) >= 0.9999). *)

open Sw_experiments
module Nd = Sw_attack.Noise_defense

let table ~lambda' ~label =
  Tables.subsection label;
  Tables.header ~width:12
    [ "confidence"; "E[X+XN]"; "E[X'+XN]"; "E[X23+Dn]"; "E[X'23+Dn]"; "b"; "obs" ];
  List.iter
    (fun (r : Nd.row) ->
      Tables.row ~width:12
        [
          Tables.f2 r.Nd.confidence;
          Tables.f1 r.Nd.delay_noise;
          Tables.f1 r.Nd.delay_noise_victim;
          Tables.f1 r.Nd.delay_stopwatch;
          Tables.f1 r.Nd.delay_stopwatch_victim;
          Tables.f1 r.Nd.b;
          Tables.f0 r.Nd.observations;
        ])
    (Nd.compare ~lambda:1.0 ~lambda' ())

let run () =
  Tables.section
    "Fig. 8 — expected delay: StopWatch vs uniform noise (equal protection)";
  table ~lambda':0.5 ~label:"(a) lambda' = 1/2  (delays in virtual time units)";
  table ~lambda':(10. /. 11.) ~label:"(b) lambda' = 10/11"
