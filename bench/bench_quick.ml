(* `main.exe quick`: a down-scaled subset of the headline experiments run
   through the runner, fast enough to sit alongside `dune runtest` (the
   @bench-quick alias), writing the same BENCH_results.json so CI gets a
   perf/regression data point from every build.

   Every job carries [(latency_ms, metrics snapshot)]; the snapshots merge
   into the run's top-level "metrics" object, so quick mode also exercises
   the observability export end to end. *)

open Sw_experiments
module Ft = File_transfer
module Runner = Sw_runner.Runner
module Report = Sw_runner.Report
module Snapshot = Sw_obs.Snapshot

let ft_group ~protocol ~stopwatch =
  ( Printf.sprintf "download/%s/%s"
      (match protocol with Ft.Http -> "http" | Ft.Udp -> "udp")
      (if stopwatch then "sw" else "base"),
    List.map
      (Sw_runner.Job.map (fun (ms, _div, metrics) -> (ms, metrics)))
      (Ft.jobs ~protocol ~stopwatch ~size_bytes:102_400 ~runs:2 ()) )

let nfs_group ~stopwatch =
  ( Printf.sprintf "nfs/%s" (if stopwatch then "sw" else "base"),
    [
      Sw_runner.Job.map
        (fun (o : Nfs_bench.outcome) ->
          (o.Nfs_bench.mean_latency_ms, o.Nfs_bench.metrics))
        (Nfs_bench.job ~stopwatch ~rate_per_s:100. ~ops:150 ());
    ] )

let parsec_group ~stopwatch =
  ( Printf.sprintf "parsec-ferret/%s" (if stopwatch then "sw" else "base"),
    [
      Sw_runner.Job.map
        (fun (o : Parsec_bench.outcome) ->
          (o.Parsec_bench.runtime_ms, o.Parsec_bench.metrics))
        (Parsec_bench.job ~stopwatch Sw_apps.Parsec.ferret);
    ] )

let groups =
  [
    ft_group ~protocol:Ft.Http ~stopwatch:false;
    ft_group ~protocol:Ft.Http ~stopwatch:true;
    ft_group ~protocol:Ft.Udp ~stopwatch:false;
    ft_group ~protocol:Ft.Udp ~stopwatch:true;
    nfs_group ~stopwatch:false;
    nfs_group ~stopwatch:true;
    parsec_group ~stopwatch:false;
    parsec_group ~stopwatch:true;
  ]

let run ?pool () =
  Tables.section "Quick bench (down-scaled subset via the runner)";
  let total = List.fold_left (fun n (_, js) -> n + List.length js) 0 groups in
  let on_event =
    match pool with
    | Some _ -> Some (Runner.progress_printer ~total ())
    | None -> None
  in
  let collected = Runner.map_groups ?pool ?on_event groups in
  Tables.header ~width:24 [ "experiment"; "mean ms"; "runs"; "failed" ];
  let entries =
    List.map
      (fun (name, outcomes) ->
        (* Aggregate replicated runs with Summary.merge — the same path a
           sharded sweep uses, so quick mode also guards that plumbing. *)
        let summary =
          Runner.merge_summaries
            (List.map
               (fun o ->
                 Result.map
                   (fun (ms, _metrics) ->
                     let s = Sw_sim.Summary.create () in
                     Sw_sim.Summary.add s ms;
                     s)
                   o)
               outcomes)
        in
        Bench_report.add_metrics
          (Snapshot.merge_all
             (List.map snd (Runner.successes outcomes)));
        let failures = Runner.failures outcomes in
        Tables.row ~width:24
          [
            name;
            Tables.f1 (Sw_sim.Summary.mean summary);
            string_of_int (Sw_sim.Summary.count summary);
            string_of_int (List.length failures);
          ];
        ( name,
          Report.Obj
            [
              ("latency_ms", Report.of_summary summary);
              ("failures", Bench_report.failures_json failures);
            ] ))
      collected
  in
  Bench_report.add "quick" (Report.Obj entries)
