(* Appendix Theorems 3 and 4: the median contracts the Kolmogorov-Smirnov
   distance between the victim-influenced and victim-free views; with iid
   X2, X3 the contraction is at least 1/2. Verified numerically over several
   distribution families. *)

open Sw_experiments
module Dist = Sw_stats.Dist
module Os = Sw_stats.Order_stats
module Ks = Sw_stats.Ks

let cases =
  [
    ( "Exp(1) vs Exp(0.5); X2,X3 ~ Exp(1)",
      Dist.exponential ~rate:1.,
      Dist.exponential ~rate:0.5,
      Dist.exponential ~rate:1.,
      Dist.exponential ~rate:1. );
    ( "Exp(1) vs Exp(10/11); X2,X3 ~ Exp(1)",
      Dist.exponential ~rate:1.,
      Dist.exponential ~rate:(10. /. 11.),
      Dist.exponential ~rate:1.,
      Dist.exponential ~rate:1. );
    ( "U(0,1) vs U(0.2,1.2); X2,X3 ~ U(0,1)",
      Dist.uniform ~lo:0. ~hi:1.,
      Dist.uniform ~lo:0.2 ~hi:1.2,
      Dist.uniform ~lo:0. ~hi:1.,
      Dist.uniform ~lo:0. ~hi:1. );
    ( "Exp(1) vs Exp(0.5); X2 ~ Exp(2), X3 ~ U(0,3) (heterogeneous)",
      Dist.exponential ~rate:1.,
      Dist.exponential ~rate:0.5,
      Dist.exponential ~rate:2.,
      Dist.uniform ~lo:0. ~hi:3. );
  ]

let run () =
  Tables.section "Appendix — Theorems 3/4: KS-distance contraction by the median";
  Tables.header ~width:12 [ "D(F1,F1')"; "D(F23,F23')"; "ratio"; "iid?" ];
  List.iter
    (fun (label, f1, f1', f2, f3) ->
      let lo = 0. and hi = 12. in
      let d1 = Ks.distance ~lo ~hi f1.Dist.cdf f1'.Dist.cdf in
      let med = Os.median3 f1.Dist.cdf f2.Dist.cdf f3.Dist.cdf in
      let med' = Os.median3 f1'.Dist.cdf f2.Dist.cdf f3.Dist.cdf in
      let d23 = Ks.distance ~lo ~hi med med' in
      let iid = f2 == f3 || (f2.Dist.cdf 1.3 = f3.Dist.cdf 1.3 && f2.Dist.cdf 0.4 = f3.Dist.cdf 0.4) in
      Printf.printf "%s\n" label;
      Tables.row ~width:12
        [
          Tables.f2 d1;
          Tables.f2 d23;
          Tables.f2 (d23 /. d1);
          (if iid then "yes (<=0.5 required)" else "no (<1 required)");
        ])
    cases
