(* Bechamel micro-benchmarks of the core primitives: per-operation cost of
   the event engine, the median machinery, the statistical kernels, and the
   Steiner-system construction used by the placement planner. *)

open Bechamel
module Toolkit = Bechamel.Toolkit

let engine_events n () =
  let engine = Sw_sim.Engine.create () in
  for i = 1 to n do
    ignore (Sw_sim.Engine.schedule_at engine (Sw_sim.Time.us i) (fun () -> ()))
  done;
  Sw_sim.Engine.run engine

let median3_eval =
  let e = Sw_stats.Dist.exponential ~rate:1. in
  let cdf =
    Sw_stats.Order_stats.median3 e.Sw_stats.Dist.cdf e.Sw_stats.Dist.cdf
      e.Sw_stats.Dist.cdf
  in
  fun () -> ignore (cdf 1.234)

let median_time_3 =
  let times = [| Sw_sim.Time.ms 3; Sw_sim.Time.ms 1; Sw_sim.Time.ms 2 |] in
  fun () -> ignore (Sw_vmm.Replica_group.median_time times)

let chi_square_critical () =
  ignore (Sw_stats.Chi_square.critical_value ~df:9 ~confidence:0.95)

let bose_sts () = ignore (Sw_placement.Steiner.system ~v:5)

let prng =
  let rng = Sw_sim.Prng.create 42L in
  fun () -> ignore (Sw_sim.Prng.exponential rng ~rate:1.)

(* The observability spine's hot-path guarantee: with no sink attached (or a
   disabled one), an instrumentation site costs one branch — no event
   payload is allocated and nothing is formatted. The benchmark mirrors the
   guarded emission idiom used inside the VMM. *)
let trace_emit_disabled =
  let trace = Sw_obs.Trace.create ~capacity:16 () in
  let sink = Some trace in
  fun () ->
    if Sw_obs.Trace.active sink then
      Sw_obs.Trace.emit trace ~at_ns:0L
        (Sw_obs.Event.Packet_delivered
           { vm = 0; replica = 1; seq = 2; virt_ns = 3L })

let trace_emit_absent =
  let sink : Sw_obs.Trace.t option = None in
  fun () ->
    if Sw_obs.Trace.active sink then
      Sw_obs.Trace.emit (Option.get sink) ~at_ns:0L
        (Sw_obs.Event.Packet_delivered
           { vm = 0; replica = 1; seq = 2; virt_ns = 3L })

let counter_incr =
  let registry = Sw_obs.Registry.create () in
  let c = Sw_obs.Registry.counter registry "bench.counter" in
  fun () -> Sw_obs.Registry.Counter.incr c

let histogram_observe =
  let registry = Sw_obs.Registry.create () in
  let h = Sw_obs.Registry.histogram registry "bench.histogram" in
  fun () -> Sw_obs.Registry.Histogram.observe h 12_345L

let ping_cloud () =
  (* One full StopWatch delivery round trip. *)
  let cloud = Stopwatch.Cloud.create ~machines:3 () in
  let d =
    Stopwatch.Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:(Sw_apps.Probe.receiver ())
  in
  let client = Stopwatch.Cloud.add_host cloud () in
  Stopwatch.Host.send client ~dst:(Stopwatch.Cloud.vm_address d) ~size:100
    (Sw_apps.Probe.Probe_ping 1);
  Stopwatch.Cloud.run cloud ~until:(Sw_sim.Time.ms 100)

let tests =
  Test.make_grouped ~name:"stopwatch"
    [
      Test.make ~name:"engine/1k-events" (Staged.stage (engine_events 1000));
      Test.make ~name:"stats/median3-cdf" (Staged.stage median3_eval);
      Test.make ~name:"vmm/median-of-3-times" (Staged.stage median_time_3);
      Test.make ~name:"stats/chi2-critical" (Staged.stage chi_square_critical);
      Test.make ~name:"placement/bose-sts-v5" (Staged.stage bose_sts);
      Test.make ~name:"sim/prng-exponential" (Staged.stage prng);
      Test.make ~name:"obs/emit-disabled-sink" (Staged.stage trace_emit_disabled);
      Test.make ~name:"obs/emit-absent-sink" (Staged.stage trace_emit_absent);
      Test.make ~name:"obs/counter-incr" (Staged.stage counter_incr);
      Test.make ~name:"obs/histogram-observe" (Staged.stage histogram_observe);
      Test.make ~name:"cloud/one-delivery-round" (Staged.stage ping_cloud);
    ]

let run () =
  Sw_experiments.Tables.section "Micro-benchmarks (bechamel)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Sw_experiments.Tables.header ~width:16 [ "test"; "ns/run" ];
  List.iter
    (fun (name, result) ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some (e :: _) -> Printf.sprintf "%.1f" e
        | _ -> "n/a"
      in
      Printf.printf "%-40s %16s\n" name estimate)
    rows
