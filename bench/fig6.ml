(* Fig. 6: NFS under an nhfsstone-style load: (a) average latency per
   operation vs offered load; (b) TCP packets per operation by direction.
   Paper: StopWatch <= 2.7x baseline, latency growing roughly
   logarithmically; client-to-server packets per op fall as load grows.

   Each (rate, mode) point is an independent simulation; the 5x2 sweep runs
   as one runner fleet, sharded under -j. *)

open Sw_experiments
module Nb = Nfs_bench
module Runner = Sw_runner.Runner
module Report = Sw_runner.Report

let ops = 600

let run ?pool () =
  Tables.section "Fig. 6 — NFS server under nhfsstone load";
  let groups =
    List.map
      (fun rate ->
        ( rate,
          [
            Nb.job ~stopwatch:false ~rate_per_s:rate ~ops ();
            Nb.job ~stopwatch:true ~rate_per_s:rate ~ops ();
          ] ))
      Nb.paper_rates
  in
  let on_event =
    match pool with
    | Some _ ->
        Some (Runner.progress_printer ~total:(2 * List.length groups) ())
    | None -> None
  in
  let rows =
    List.map
      (fun (rate, outcomes) ->
        match List.map Runner.get outcomes with
        | [ b; s ] -> (rate, b, s)
        | _ -> assert false)
      (Runner.map_groups ?pool ?on_event groups)
  in
  Bench_report.add_metrics
    (Sw_obs.Snapshot.merge_all
       (List.concat_map
          (fun (_, (b : Nb.outcome), (s : Nb.outcome)) ->
            [ b.Nb.metrics; s.Nb.metrics ])
          rows));
  Tables.subsection "Fig. 6(a): average latency per operation (ms)";
  Tables.header ~width:12 [ "ops/s"; "baseline"; "stopwatch"; "ratio"; "done(sw)" ];
  List.iter
    (fun (rate, (b : Nb.outcome), (s : Nb.outcome)) ->
      Tables.row ~width:12
        [
          Tables.f0 rate;
          Tables.f2 b.Nb.mean_latency_ms;
          Tables.f2 s.Nb.mean_latency_ms;
          Tables.f2 (s.Nb.mean_latency_ms /. b.Nb.mean_latency_ms);
          Printf.sprintf "%d/%d" s.Nb.completed s.Nb.issued;
        ])
    rows;
  Tables.subsection "Fig. 6(b): TCP packets per operation (StopWatch run)";
  Tables.header ~width:16 [ "ops/s"; "client->server"; "server->client" ];
  List.iter
    (fun (rate, _, (s : Nb.outcome)) ->
      Tables.row ~width:16
        [
          Tables.f0 rate;
          Tables.f2 s.Nb.client_to_server_per_op;
          Tables.f2 s.Nb.server_to_client_per_op;
        ])
    rows;
  Bench_report.add "fig6"
    (Report.List
       (List.map
          (fun (rate, (b : Nb.outcome), (s : Nb.outcome)) ->
            Report.Obj
              [
                ("rate_per_s", Report.Float rate);
                ("baseline_ms", Report.Float b.Nb.mean_latency_ms);
                ("stopwatch_ms", Report.Float s.Nb.mean_latency_ms);
                ("ratio", Report.Float (s.Nb.mean_latency_ms /. b.Nb.mean_latency_ms));
                ("c2s_per_op", Report.Float s.Nb.client_to_server_per_op);
                ("s2c_per_op", Report.Float s.Nb.server_to_client_per_op);
              ])
          rows))
