(* Fig. 6: NFS under an nhfsstone-style load: (a) average latency per
   operation vs offered load; (b) TCP packets per operation by direction.
   Paper: StopWatch <= 2.7x baseline, latency growing roughly
   logarithmically; client-to-server packets per op fall as load grows. *)

open Sw_experiments
module Nb = Nfs_bench

let ops = 600

let run () =
  Tables.section "Fig. 6 — NFS server under nhfsstone load";
  let rows =
    List.map
      (fun rate ->
        let b = Nb.run ~stopwatch:false ~rate_per_s:rate ~ops () in
        let s = Nb.run ~stopwatch:true ~rate_per_s:rate ~ops () in
        (rate, b, s))
      Nb.paper_rates
  in
  Tables.subsection "Fig. 6(a): average latency per operation (ms)";
  Tables.header ~width:12 [ "ops/s"; "baseline"; "stopwatch"; "ratio"; "done(sw)" ];
  List.iter
    (fun (rate, (b : Nb.outcome), (s : Nb.outcome)) ->
      Tables.row ~width:12
        [
          Tables.f0 rate;
          Tables.f2 b.Nb.mean_latency_ms;
          Tables.f2 s.Nb.mean_latency_ms;
          Tables.f2 (s.Nb.mean_latency_ms /. b.Nb.mean_latency_ms);
          Printf.sprintf "%d/%d" s.Nb.completed s.Nb.issued;
        ])
    rows;
  Tables.subsection "Fig. 6(b): TCP packets per operation (StopWatch run)";
  Tables.header ~width:16 [ "ops/s"; "client->server"; "server->client" ];
  List.iter
    (fun (rate, _, (s : Nb.outcome)) ->
      Tables.row ~width:16
        [
          Tables.f0 rate;
          Tables.f2 s.Nb.client_to_server_per_op;
          Tables.f2 s.Nb.server_to_client_per_op;
        ])
    rows
