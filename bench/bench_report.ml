(* Collector for the machine-readable side of a bench run. Figures register
   deterministic result entries — and merged metric snapshots — as they
   complete; [write] assembles them with the (non-deterministic) wall-clock
   timings into BENCH_results.json, the artefact that makes the perf
   trajectory trackable across PRs. *)

module Report = Sw_runner.Report
module Snapshot = Sw_obs.Snapshot

let entries : (string * Report.t) list ref = ref []
let timings : (string * float) list ref = ref []
let metrics : Snapshot.t ref = ref Snapshot.empty
let perf : (string * Report.t) list ref = ref []

let add name json = entries := (name, json) :: !entries
let add_timing name wall_s = timings := (name, wall_s) :: !timings

(* Wall-clock throughput rows (events/sec) from the engine micro-benchmark;
   non-deterministic, so they live in their own top-level "perf" object next
   to "timing", never under "experiments". *)
let add_perf name json = perf := (name, json) :: !perf

(* Merging is associative and exact, so the figures can contribute their
   per-job snapshots in any registration order across a run — the merged
   result depends only on the multiset of snapshots. *)
let add_metrics snapshot = metrics := Snapshot.merge !metrics snapshot

let failures_json fs = Report.List (List.map Report.of_failure fs)

let path = "BENCH_results.json"

let write ~workers ~wall_s =
  let metrics =
    if Snapshot.is_empty !metrics then None else Some !metrics
  in
  let perf = match List.rev !perf with [] -> None | l -> Some l in
  Report.write path
    (Report.bench_file ?metrics ?perf ~workers ~wall_s
       ~timings:(List.rev !timings) ~experiments:(List.rev !entries) ());
  Printf.printf "\n[results written to %s]\n%!" path
