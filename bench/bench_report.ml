(* Collector for the machine-readable side of a bench run. Figures register
   deterministic result entries as they complete; [write] assembles them with
   the (non-deterministic) wall-clock timings into BENCH_results.json, the
   artefact that makes the perf trajectory trackable across PRs. *)

module Report = Sw_runner.Report

let entries : (string * Report.t) list ref = ref []
let timings : (string * float) list ref = ref []

let add name json = entries := (name, json) :: !entries
let add_timing name wall_s = timings := (name, wall_s) :: !timings

let failures_json fs = Report.List (List.map Report.of_failure fs)

let path = "BENCH_results.json"

let write ~workers ~wall_s =
  Report.write path
    (Report.bench_file ~workers ~wall_s ~timings:(List.rev !timings)
       ~experiments:(List.rev !entries));
  Printf.printf "\n[results written to %s]\n%!" path
