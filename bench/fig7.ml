(* Fig. 7: PARSEC applications — average runtimes over unmodified Xen vs
   StopWatch, and the disk-interrupt counts the overhead correlates with.
   Paper reference: baseline {171, 177, 1530, 3730, 290} ms, StopWatch
   {350, 401, 3230, 5754, 382} ms, interrupts {31, 38, 183, 293, 27};
   max overhead 2.3x (blackscholes).

   The 5 apps x 2 modes run as one runner fleet, sharded under -j. *)

open Sw_experiments
module Pb = Parsec_bench
module Runner = Sw_runner.Runner
module Report = Sw_runner.Report

let paper_values =
  [
    ("ferret", 171., 350.);
    ("blackscholes", 177., 401.);
    ("canneal", 1530., 3230.);
    ("dedup", 3730., 5754.);
    ("streamcluster", 290., 382.);
  ]

let run ?pool () =
  Tables.section "Fig. 7 — PARSEC application runtimes and disk interrupts";
  let groups =
    List.map
      (fun (profile : Sw_apps.Parsec.profile) ->
        (profile, [ Pb.job ~stopwatch:false profile; Pb.job ~stopwatch:true profile ]))
      Sw_apps.Parsec.all_profiles
  in
  let on_event =
    match pool with
    | Some _ ->
        Some (Runner.progress_printer ~total:(2 * List.length groups) ())
    | None -> None
  in
  let rows =
    List.map
      (fun (profile, outcomes) ->
        match List.map Runner.get outcomes with
        | [ b; s ] -> (profile, b, s)
        | _ -> assert false)
      (Runner.map_groups ?pool ?on_event groups)
  in
  Bench_report.add_metrics
    (Sw_obs.Snapshot.merge_all
       (List.concat_map
          (fun (_, (b : Pb.outcome), (s : Pb.outcome)) ->
            [ b.Pb.metrics; s.Pb.metrics ])
          rows));
  Tables.header ~width:13
    [ "app"; "base ms"; "sw ms"; "ratio"; "ints"; "paper b"; "paper sw"; "viol" ];
  List.iter
    (fun ((profile : Sw_apps.Parsec.profile), (b : Pb.outcome), (s : Pb.outcome)) ->
      let paper_b, paper_s =
        match List.assoc_opt profile.Sw_apps.Parsec.name
                (List.map (fun (n, b, s) -> (n, (b, s))) paper_values)
        with
        | Some (b, s) -> (b, s)
        | None -> (nan, nan)
      in
      Tables.row ~width:13
        [
          profile.Sw_apps.Parsec.name;
          Tables.f0 b.Pb.runtime_ms;
          Tables.f0 s.Pb.runtime_ms;
          Tables.f2 (s.Pb.runtime_ms /. b.Pb.runtime_ms);
          string_of_int s.Pb.disk_interrupts;
          Tables.f0 paper_b;
          Tables.f0 paper_s;
          string_of_int s.Pb.delta_d_violations;
        ])
    rows;
  Bench_report.add "fig7"
    (Report.List
       (List.map
          (fun ((profile : Sw_apps.Parsec.profile), (b : Pb.outcome), (s : Pb.outcome)) ->
            Report.Obj
              [
                ("app", Report.String profile.Sw_apps.Parsec.name);
                ("baseline_ms", Report.Float b.Pb.runtime_ms);
                ("stopwatch_ms", Report.Float s.Pb.runtime_ms);
                ("ratio", Report.Float (s.Pb.runtime_ms /. b.Pb.runtime_ms));
                ("disk_interrupts", Report.Int s.Pb.disk_interrupts);
                ("delta_d_violations", Report.Int s.Pb.delta_d_violations);
              ])
          rows))
