(* Scheduling-core micro-benchmark: events/sec through the public Engine API
   on the three workload shapes that dominate the experiments — pure-periodic
   timers (slices, heartbeats, Δd/Δn deliveries), a mixed stream with
   exponential jitter and a far-future tail that exercises the overflow
   tier, and a cancel-heavy stream (retransmission timers that almost always
   get cancelled).

   Throughput is wall-clock dependent, so the numbers land in the
   non-deterministic "perf" object of BENCH_results.json (next to "timing"),
   never under "experiments". The @perf alias runs this in -quick form as a
   coarse regression guard: it only fails when pure-periodic throughput
   drops more than 5x below the recorded floor, a margin wide enough to
   survive machine-to-machine variance while still catching an accidental
   return to per-event O(log n) + allocation costs. *)

module Time = Sw_sim.Time
module Engine = Sw_sim.Engine
module Prng = Sw_sim.Prng
module Report = Sw_runner.Report

let quick = ref false

(* Recorded floor (pure-periodic events/sec) for the @perf guard. The wheel
   engine measures 7-8M events/s on the dev container (the heap engine it
   replaced did ~3.6M); the guard trips below floor/5 = 1.4M. Update when
   the engine gets materially faster or slower on purpose. *)
let periodic_floor = 7_000_000.

let timers = 1024

(* Uniform periods in the range the experiments actually schedule: 200us VM
   slices, 10-100us device completions, heartbeats. *)
let periods = [| Time.us 10; Time.us 50; Time.us 100; Time.us 200 |]

(* [n] self-rescheduling timer pops across [timers] periodic timers: the
   workload where a wheel's O(1) insert beats a binary heap. *)
let pure_periodic n =
  let e = Engine.create () in
  let fired = ref 0 in
  for i = 0 to timers - 1 do
    let period = periods.(i mod Array.length periods) in
    let rec tick () =
      incr fired;
      if !fired < n then ignore (Engine.schedule_after e period tick)
    in
    ignore (Engine.schedule_after e period tick)
  done;
  Engine.run e;
  !fired

(* Periodic backbone plus one exponential one-shot per pop, with every 64th
   one-shot landing ~30 simulated seconds out so the far-future overflow
   tier stays on the measured path. *)
let mixed n =
  let e = Engine.create () in
  let rng = Engine.rng e in
  let fired = ref 0 in
  let shots = ref 0 in
  for i = 0 to timers - 1 do
    let period = periods.(i mod Array.length periods) in
    let rec tick () =
      incr fired;
      if !fired < n then begin
        incr shots;
        let delay =
          if !shots mod 64 = 0 then Time.s 30
          else Time.of_float_ms (Prng.exponential rng ~rate:0.5)
        in
        ignore (Engine.schedule_after e delay (fun () -> incr fired));
        ignore (Engine.schedule_after e period tick)
      end
    in
    ignore (Engine.schedule_after e period tick)
  done;
  Engine.run e;
  !fired

(* Each pop arms a victim timer and disarms it before it can fire, plus a
   late cancel on an already-fired event (which must be a no-op). *)
let cancel_heavy n =
  let e = Engine.create () in
  let fired = ref 0 in
  let last = ref None in
  let rec tick () =
    incr fired;
    (match !last with Some id -> Engine.cancel e id | None -> ());
    if !fired < n then begin
      let victim = Engine.schedule_after e (Time.us 20) (fun () -> ()) in
      let driver = Engine.schedule_after e (Time.us 10) tick in
      Engine.cancel e victim;
      last := Some driver
    end
  in
  ignore (Engine.schedule_after e (Time.us 10) tick);
  Engine.run e;
  !fired

let measure name n run =
  (* A small warm-up run keeps allocator/GC start-up noise out of the
     measured window. *)
  ignore (run (n / 20));
  let t0 = Sw_sim.Wall.now_s () in
  let fired = run n in
  let wall = Sw_sim.Wall.elapsed_s t0 in
  let eps = float_of_int fired /. wall in
  Printf.printf "  %-13s %9d events  %7.3f s  %11.0f events/s\n%!" name fired
    wall eps;
  (name, fired, wall, eps)

let run ?pool:_ () =
  let n = if !quick then 400_000 else 4_000_000 in
  Printf.printf "Engine micro-benchmark (%d events per workload):\n%!" n;
  (* Explicit lets force left-to-right evaluation (and output) order. *)
  let periodic = measure "pure-periodic" n pure_periodic in
  let mix = measure "mixed" n mixed in
  let cancels = measure "cancel-heavy" n cancel_heavy in
  let rows = [ periodic; mix; cancels ] in
  List.iter
    (fun (name, fired, wall, eps) ->
      Bench_report.add_perf name
        (Report.Obj
           [
             ("events", Report.Int fired);
             ("wall_s", Report.Float wall);
             ("events_per_s", Report.Float eps);
           ]))
    rows;
  let _, _, _, periodic_eps = List.hd rows in
  if periodic_eps *. 5. < periodic_floor then begin
    Printf.eprintf
      "PERF REGRESSION: pure-periodic %.0f events/s is more than 5x below \
       the recorded floor of %.0f events/s\n%!"
      periodic_eps periodic_floor;
    exit 1
  end
