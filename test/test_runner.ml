(* Tests for sw_runner: deterministic seed derivation, the domain pool,
   crash isolation / retry / timeout semantics, parallel-vs-sequential
   determinism (results and aggregated JSON), cross-domain PRNG ownership,
   and the Summary.merge partition property that parallel aggregation
   leans on. *)

module Seed = Sw_runner.Seed
module Job = Sw_runner.Job
module Pool = Sw_runner.Pool
module Runner = Sw_runner.Runner
module Report = Sw_runner.Report
module Prng = Sw_sim.Prng
module Summary = Sw_sim.Summary

(* --- Seed ---------------------------------------------------------------- *)

let test_seed_deterministic () =
  Alcotest.(check int64) "same key same seed" (Seed.of_key "a") (Seed.of_key "a");
  if Seed.of_key "a" = Seed.of_key "b" then
    Alcotest.fail "distinct keys must give distinct seeds";
  if Seed.of_key ~base:1L "a" = Seed.of_key ~base:2L "a" then
    Alcotest.fail "distinct bases must give distinct seeds";
  if Seed.nth (Seed.of_key "a") 0 = Seed.nth (Seed.of_key "a") 1 then
    Alcotest.fail "distinct replicate indices must give distinct seeds"

let test_job_seed_from_key () =
  let j = Job.make ~key:"k" (fun ~seed -> seed) in
  Alcotest.(check int64) "derived" (Seed.of_key "k") (Job.seed j);
  Alcotest.(check int64) "passed to the closure" (Seed.of_key "k") (Job.run j);
  let j' = Job.make ~seed:42L ~key:"k" (fun ~seed -> seed) in
  Alcotest.(check int64) "explicit seed wins" 42L (Job.run j')

(* --- Pool ---------------------------------------------------------------- *)

let test_pool_runs_all_tasks () =
  let n = 50 in
  let counter = Atomic.make 0 in
  Pool.with_pool ~workers:4 (fun pool ->
      let remaining = Atomic.make n in
      let m = Mutex.create () in
      let c = Condition.create () in
      for _ = 1 to n do
        Pool.submit pool (fun () ->
            Atomic.incr counter;
            if Atomic.fetch_and_add remaining (-1) = 1 then begin
              Mutex.lock m;
              Condition.broadcast c;
              Mutex.unlock m
            end)
      done;
      Mutex.lock m;
      while Atomic.get remaining > 0 do
        Condition.wait c m
      done;
      Mutex.unlock m);
  Alcotest.(check int) "all tasks ran" n (Atomic.get counter)

let test_pool_shutdown_drains () =
  let counter = Atomic.make 0 in
  let pool = Pool.create ~workers:2 () in
  for _ = 1 to 20 do
    Pool.submit pool (fun () -> Atomic.incr counter)
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "queued tasks ran before join" 20 (Atomic.get counter);
  Alcotest.(check bool) "submit after shutdown rejected" true
    (try
       Pool.submit pool (fun () -> ());
       false
     with Invalid_argument _ -> true)

(* --- Runner semantics ----------------------------------------------------- *)

let int_jobs n = List.init n (fun i -> Job.make ~key:(Printf.sprintf "job%d" i) (fun ~seed:_ -> i))

let test_map_order_stable () =
  Pool.with_pool ~workers:4 (fun pool ->
      let out = Runner.map ~pool (int_jobs 32) in
      Alcotest.(check (list int)) "submission order" (List.init 32 Fun.id)
        (Runner.successes out))

let test_crash_isolation_and_retry () =
  let attempts = Atomic.make 0 in
  let jobs =
    [
      Job.make ~key:"ok" (fun ~seed:_ -> 1);
      Job.make ~key:"boom" (fun ~seed:_ ->
          Atomic.incr attempts;
          failwith "simulated crash");
      Job.make ~key:"also-ok" (fun ~seed:_ -> 3);
    ]
  in
  Pool.with_pool ~workers:2 (fun pool ->
      let out = Runner.map ~pool ~retries:2 ~backoff_s:0. jobs in
      Alcotest.(check (list int)) "other jobs unaffected" [ 1; 3 ]
        (Runner.successes out);
      match Runner.failures out with
      | [ f ] ->
          Alcotest.(check string) "failure names the job" "boom" f.Runner.key;
          Alcotest.(check int) "initial attempt + 2 retries" 3 f.Runner.attempts;
          Alcotest.(check int) "closure really ran 3 times" 3 (Atomic.get attempts);
          (match f.Runner.reason with
          | Runner.Exn msg ->
              if not (String.length msg > 0) then Alcotest.fail "empty reason"
          | Runner.Timed_out _ -> Alcotest.fail "expected Exn reason")
      | fs -> Alcotest.failf "expected exactly 1 failure, got %d" (List.length fs))

let test_retry_recovers () =
  let attempts = Atomic.make 0 in
  let jobs =
    [
      Job.make ~key:"flaky" (fun ~seed:_ ->
          if Atomic.fetch_and_add attempts 1 = 0 then failwith "transient";
          "recovered");
    ]
  in
  let out = Runner.map ~retries:1 ~backoff_s:0. jobs in
  Alcotest.(check (list string)) "second attempt succeeded" [ "recovered" ]
    (Runner.successes out);
  Alcotest.(check int) "exactly two attempts" 2 (Atomic.get attempts)

let test_timeout_detected () =
  let jobs =
    [
      Job.make ~key:"slow" (fun ~seed:_ -> Unix.sleepf 0.05);
      Job.make ~key:"fast" (fun ~seed:_ -> ());
    ]
  in
  let out = Runner.map ~timeout_s:0.01 ~retries:0 jobs in
  (match out with
  | [ Error { key = "slow"; attempts = 1; reason = Runner.Timed_out t }; Ok () ] ->
      if t < 0.01 then Alcotest.failf "reported %.3f s below the limit" t
  | _ -> Alcotest.fail "expected slow to time out and fast to succeed");
  (* Without a timeout the same job is fine. *)
  match Runner.map [ List.hd jobs ] with
  | [ Ok () ] -> ()
  | _ -> Alcotest.fail "no-timeout run should succeed"

let test_events_reported () =
  let events = ref [] in
  let jobs =
    [
      Job.make ~key:"a" (fun ~seed:_ -> ());
      Job.make ~key:"b" (fun ~seed:_ -> failwith "x");
    ]
  in
  Pool.with_pool ~workers:2 (fun pool ->
      ignore
        (Runner.map ~pool ~retries:0 ~on_event:(fun e -> events := e :: !events)
           jobs));
  let finished =
    List.filter (function Runner.Finished _ -> true | _ -> false) !events
  in
  let failed =
    List.filter (function Runner.Attempt_failed _ -> true | _ -> false) !events
  in
  Alcotest.(check int) "one finish" 1 (List.length finished);
  Alcotest.(check int) "one failed attempt" 1 (List.length failed)

(* --- Determinism: -j 1 and -j 4 agree, byte for byte ---------------------- *)

(* Pseudo-simulations: each job runs a PRNG-driven accumulation whose result
   depends only on its pre-dispatch seed. Cheap, but exercises exactly the
   contract real simulations rely on. *)
let sim_jobs =
  List.init 24 (fun i ->
      Job.make ~key:(Printf.sprintf "sim/%d" i) (fun ~seed ->
          let rng = Prng.create seed in
          let s = Summary.create () in
          for _ = 1 to 500 do
            Summary.add s (Prng.exponential rng ~rate:2.)
          done;
          s))

let json_of_outcomes outcomes =
  Report.to_string
    (Report.Obj
       [
         ("merged", Report.of_summary (Runner.merge_summaries outcomes));
         ( "per_job",
           Report.List
             (List.map
                (function
                  | Ok s -> Report.of_summary s
                  | Error f -> Report.of_failure f)
                outcomes) );
       ])

let test_parallel_equals_sequential () =
  let sequential = Runner.map sim_jobs in
  let parallel =
    Pool.with_pool ~workers:4 (fun pool -> Runner.map ~pool sim_jobs)
  in
  (* Byte-identical aggregated JSON: the runner's output carries no
     wall-clock or scheduling artefacts. *)
  Alcotest.(check string) "aggregated JSON identical under -j 4"
    (json_of_outcomes sequential) (json_of_outcomes parallel);
  (* And a 1-worker pool also matches the inline path. *)
  let one_worker =
    Pool.with_pool ~workers:1 (fun pool -> Runner.map ~pool sim_jobs)
  in
  Alcotest.(check string) "1-worker pool matches inline"
    (json_of_outcomes sequential) (json_of_outcomes one_worker)

let test_experiment_jobs_deterministic () =
  (* The real Fig. 5 driver, smallest size: parallel and sequential collect
     to identical outcomes. *)
  let module Ft = Sw_experiments.File_transfer in
  let jobs () =
    Ft.jobs ~protocol:Ft.Http ~stopwatch:false ~size_bytes:1024 ~runs:3 ()
  in
  let seq = Ft.collect (Runner.map (jobs ())) in
  let par =
    Pool.with_pool ~workers:3 (fun pool -> Runner.map ~pool (jobs ()))
    |> Ft.collect
  in
  Alcotest.(check (list (float 0.))) "per-run times identical" seq.Ft.runs
    par.Ft.runs;
  Alcotest.(check int) "divergences identical" seq.Ft.divergences
    par.Ft.divergences

(* --- PRNG cross-domain ownership ----------------------------------------- *)

let test_prng_sibling_splits_across_domains () =
  (* Two generators derived by [split] before dispatch must produce, when
     drawn concurrently on two domains, exactly the sequences they produce
     sequentially — i.e. sibling splits share no state. *)
  let draws = 10_000 in
  let sequence g = Array.init draws (fun _ -> Prng.next_int64 g) in
  let root = Prng.create 0xD0_0D_1EL in
  let g1 = Prng.split root in
  let g2 = Prng.split root in
  let expect1 = sequence (Prng.copy g1) in
  let expect2 = sequence (Prng.copy g2) in
  let d1 = Domain.spawn (fun () -> sequence g1) in
  let d2 = Domain.spawn (fun () -> sequence g2) in
  let got1 = Domain.join d1 and got2 = Domain.join d2 in
  Alcotest.(check bool) "domain 1 sequence unperturbed" true (expect1 = got1);
  Alcotest.(check bool) "domain 2 sequence unperturbed" true (expect2 = got2);
  Alcotest.(check bool) "siblings are independent streams" false
    (expect1 = expect2)

(* --- Summary.merge: arbitrary partitions --------------------------------- *)

let prop_summary_merge_partitions =
  QCheck.Test.make ~count:300
    ~name:"merging any partition of a stream equals the single-stream summary"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 60) (float_bound_inclusive 1000.))
        (list_of_size Gen.(0 -- 6) (int_bound 10)))
    (fun (xs, cut_sizes) ->
      (* Split xs into chunks sized by cut_sizes (remainder in a tail
         chunk), summarise each independently, merge left to right. *)
      let whole = Summary.create () in
      List.iter (Summary.add whole) xs;
      let chunks =
        let rec take n = function
          | [] -> ([], [])
          | l when n = 0 -> ([], l)
          | x :: tl ->
              let a, b = take (n - 1) tl in
              (x :: a, b)
        in
        let rec go rest = function
          | [] -> [ rest ]
          | n :: ns ->
              let chunk, rest = take n rest in
              chunk :: go rest ns
        in
        go xs cut_sizes
      in
      let merged =
        List.fold_left
          (fun acc chunk ->
            let s = Summary.create () in
            List.iter (Summary.add s) chunk;
            Summary.merge acc s)
          (Summary.create ()) chunks
      in
      let close a b = Float.abs (a -. b) <= 1e-6 *. (1. +. Float.abs a) in
      Summary.count merged = Summary.count whole
      && close (Summary.mean merged) (Summary.mean whole)
      && close (Summary.variance merged) (Summary.variance whole)
      && close (Summary.total merged) (Summary.total whole)
      && Summary.min merged = Summary.min whole
      && Summary.max merged = Summary.max whole)

(* --- Report JSON ---------------------------------------------------------- *)

let test_report_json () =
  let json =
    Report.Obj
      [
        ("s", Report.String "a\"b\\c\nd");
        ("i", Report.Int (-3));
        ("f", Report.Float 1.5);
        ("nan", Report.Float Float.nan);
        ("l", Report.List [ Report.Bool true; Report.Null ]);
      ]
  in
  Alcotest.(check string) "escaping and shape"
    "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":-3,\"f\":1.5,\"nan\":\"nan\",\"l\":[true,null]}"
    (Report.to_string json);
  (* Float serialisation must round-trip (it feeds byte-equality checks). *)
  List.iter
    (fun f ->
      match Report.to_string (Report.Float f) with
      | s when float_of_string s = f -> ()
      | s -> Alcotest.failf "%h serialised lossily as %s" f s)
    [ 0.1; 1. /. 3.; 1e-300; 123456.789; Float.pi ]

let test_bench_file_shape () =
  let doc =
    Report.bench_file ~workers:4 ~wall_s:1.25
      ~timings:[ ("fig5", 1.25) ]
      ~experiments:[ ("fig5", Report.Obj [ ("rows", Report.List []) ]) ]
      ()
  in
  Alcotest.(check string) "document layout"
    "{\"schema\":\"stopwatch-bench/1\",\"workers\":4,\"experiments\":{\"fig5\":{\"rows\":[]}},\"timing\":{\"total_wall_s\":1.25,\"fig5\":1.25}}"
    (Report.to_string doc)

let () =
  Alcotest.run "sw_runner"
    [
      ( "seed",
        [
          Alcotest.test_case "derivation deterministic" `Quick test_seed_deterministic;
          Alcotest.test_case "job seed from key" `Quick test_job_seed_from_key;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs all tasks" `Quick test_pool_runs_all_tasks;
          Alcotest.test_case "shutdown drains" `Quick test_pool_shutdown_drains;
        ] );
      ( "runner",
        [
          Alcotest.test_case "order stable" `Quick test_map_order_stable;
          Alcotest.test_case "crash isolation + retry" `Quick
            test_crash_isolation_and_retry;
          Alcotest.test_case "retry recovers" `Quick test_retry_recovers;
          Alcotest.test_case "timeout detected" `Quick test_timeout_detected;
          Alcotest.test_case "events reported" `Quick test_events_reported;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "-j 1 equals -j 4 (JSON bytes)" `Quick
            test_parallel_equals_sequential;
          Alcotest.test_case "fig5 jobs parallel = sequential" `Slow
            test_experiment_jobs_deterministic;
          Alcotest.test_case "prng sibling splits across domains" `Quick
            test_prng_sibling_splits_across_domains;
        ] );
      ( "aggregation",
        [ QCheck_alcotest.to_alcotest prop_summary_merge_partitions ] );
      ( "report",
        [
          Alcotest.test_case "json emission" `Quick test_report_json;
          Alcotest.test_case "bench file shape" `Quick test_bench_file_shape;
        ] );
    ]
