(* Tests for the simulation substrate: time arithmetic, the event heap, the
   PRNG, the engine's ordering guarantees, and the statistics collectors. *)

module Time = Sw_sim.Time
module Heap = Sw_sim.Heap
module Prng = Sw_sim.Prng
module Engine = Sw_sim.Engine

let check_float = Alcotest.(check (float 1e-9))

(* --- Time --------------------------------------------------------------- *)

let test_time_units () =
  Alcotest.(check int64) "us" 1_000L (Time.us 1);
  Alcotest.(check int64) "ms" 1_000_000L (Time.ms 1);
  Alcotest.(check int64) "s" 1_000_000_000L (Time.s 1);
  Alcotest.(check int64) "of_float_s" 1_500_000_000L (Time.of_float_s 1.5);
  check_float "to_float_ms" 1.5 (Time.to_float_ms (Time.us 1500))

let test_time_arith () =
  let a = Time.ms 5 and b = Time.ms 3 in
  Alcotest.(check int64) "add" (Time.ms 8) (Time.add a b);
  Alcotest.(check int64) "sub" (Time.ms 2) (Time.sub a b);
  Alcotest.(check int64) "mul_int" (Time.ms 15) (Time.mul_int a 3);
  Alcotest.(check int64) "div_int" (Time.ms 1) (Time.div_int b 3);
  Alcotest.(check int64) "scale" (Time.ms 10) (Time.scale a 2.0);
  Alcotest.(check bool) "lt" true Time.(b < a);
  Alcotest.(check bool) "min" true (Time.equal b (Time.min a b));
  Alcotest.(check bool) "negative" true (Time.is_negative (Time.sub b a))

let test_time_pp () =
  Alcotest.(check string) "ns" "500ns" (Time.to_string (Time.ns 500));
  Alcotest.(check string) "ms" "1.500ms" (Time.to_string (Time.us 1500))

(* --- Heap --------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iteri
    (fun i k -> Heap.push h ~key:(Int64.of_int k) ~seq:i i)
    [ 5; 1; 4; 1; 3 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | None -> ()
    | Some (k, _, _) ->
        order := k :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list int64)) "sorted" [ 1L; 1L; 3L; 4L; 5L ] (List.rev !order)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~key:7L ~seq:i i
  done;
  let out = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | None -> ()
    | Some (_, _, v) ->
        out := v :: !out;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !out)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:(Int64.of_int k) ~seq:i ()) keys;
      let rec drain last =
        match Heap.pop_min h with
        | None -> true
        | Some (k, _, ()) -> Int64.compare last k <= 0 && drain k
      in
      drain Int64.min_int)

(* --- Prng --------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let root = Prng.create 42L in
  let a = Prng.split root in
  let b = Prng.split root in
  Alcotest.(check bool) "split streams differ" true
    (Prng.next_int64 a <> Prng.next_int64 b)

let test_prng_float_range () =
  let rng = Prng.create 7L in
  for _ = 1 to 10_000 do
    let x = Prng.float rng in
    if x < 0. || x >= 1. then Alcotest.fail "float out of [0,1)"
  done

let test_prng_exponential_mean () =
  let rng = Prng.create 9L in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential rng ~rate:2.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.02 then
    Alcotest.failf "exponential mean %f too far from 0.5" mean

let test_prng_normal_moments () =
  let rng = Prng.create 3L in
  let s = Sw_sim.Summary.create () in
  for _ = 1 to 50_000 do
    Sw_sim.Summary.add s (Prng.normal rng ~mean:5. ~stddev:2.)
  done;
  if Float.abs (Sw_sim.Summary.mean s -. 5.) > 0.05 then
    Alcotest.failf "normal mean %f" (Sw_sim.Summary.mean s);
  if Float.abs (Sw_sim.Summary.stddev s -. 2.) > 0.05 then
    Alcotest.failf "normal stddev %f" (Sw_sim.Summary.stddev s)

let test_prng_shuffle_permutes () =
  let rng = Prng.create 4L in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 (fun i -> i)) sorted;
  Alcotest.(check bool) "actually permuted" true (a <> Array.init 100 (fun i -> i))

let test_prng_choose () =
  let rng = Prng.create 5L in
  for _ = 1 to 100 do
    let x = Prng.choose rng [ 1; 2; 3 ] in
    if x < 1 || x > 3 then Alcotest.fail "choose out of list"
  done;
  Alcotest.check_raises "empty" (Invalid_argument "x") (fun () ->
      try ignore (Prng.choose rng ([] : int list)) with
      | Invalid_argument _ -> raise (Invalid_argument "x"))

let prop_prng_int_bound =
  QCheck.Test.make ~name:"Prng.int respects bound" ~count:500
    QCheck.(int_range 1 1_000_000)
    (fun n ->
      let rng = Prng.create (Int64.of_int n) in
      let x = Prng.int rng n in
      x >= 0 && x < n)

(* --- Engine ------------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule_at e (Time.ms 2) (fun () -> log := 2 :: !log));
  ignore (Engine.schedule_at e (Time.ms 1) (fun () -> log := 1 :: !log));
  ignore (Engine.schedule_at e (Time.ms 3) (fun () -> log := 3 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int64) "clock at last event" (Time.ms 3) (Engine.now e)

let test_engine_same_instant_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (Engine.schedule_at e (Time.ms 1) (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule_at e (Time.ms 1) (fun () -> fired := true) in
  Engine.cancel e id;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired;
  Alcotest.(check int) "pending" 0 (Engine.pending e)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule_at e (Time.ms i) (fun () -> incr count))
  done;
  Engine.run ~until:(Time.ms 5) e;
  Alcotest.(check int) "events at <= until fire" 5 !count;
  Alcotest.(check int64) "clock parked at until" (Time.ms 5) (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "rest fire" 10 !count

let test_engine_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e (Time.ms 5) (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past scheduling" (Invalid_argument "x") (fun () ->
      try ignore (Engine.schedule_at e (Time.ms 1) (fun () -> ())) with
      | Invalid_argument _ -> raise (Invalid_argument "x"))

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule_at e (Time.ms 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule_after e (Time.ms 1) (fun () -> log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log)

let test_engine_late_cancel_after_fire () =
  (* Regression: cancelling an event that already fired must be a no-op —
     in particular it must not decrement the pending count again. *)
  let e = Engine.create () in
  let id = Engine.schedule_at e (Time.ms 1) (fun () -> ()) in
  ignore (Engine.schedule_at e (Time.ms 2) (fun () -> ()));
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Engine.pending e);
  Engine.cancel e id;
  Engine.cancel e id;
  Alcotest.(check int) "late cancel keeps pending at 0" 0 (Engine.pending e);
  (* Double cancel of a still-pending event decrements exactly once. *)
  let id2 = Engine.schedule_after e (Time.ms 1) (fun () -> ()) in
  Engine.cancel e id2;
  Engine.cancel e id2;
  Alcotest.(check int) "double cancel counts once" 0 (Engine.pending e);
  (* The engine still works normally afterwards. *)
  let fired = ref false in
  ignore (Engine.schedule_after e (Time.ms 1) (fun () -> fired := true));
  Engine.run e;
  Alcotest.(check bool) "still fires" true !fired

let test_engine_far_future () =
  (* Events beyond the wheel's ~550 s span take the overflow tier; ordering
     and the FIFO tiebreak must hold across tiers, including an equal-key
     pair where one event was filed far (overflow) and the other near. *)
  let e = Engine.create () in
  let log = ref [] in
  let far = Time.s 3600 in
  ignore (Engine.schedule_at e far (fun () -> log := "far0" :: !log));
  ignore (Engine.schedule_at e (Time.ms 1) (fun () -> log := "near" :: !log));
  ignore
    (Engine.schedule_at e (Time.ms 1) (fun () ->
         ignore (Engine.schedule_at e far (fun () -> log := "far1" :: !log))));
  Engine.run e;
  Alcotest.(check (list string))
    "across tiers" [ "near"; "far0"; "far1" ] (List.rev !log);
  Alcotest.(check int64) "clock at far event" far (Engine.now e)

let test_engine_span_boundary () =
  (* The wheel files keys in [horizon, horizon + span); an event exactly AT
     the boundary takes the overflow tier. Regression: the boundary pair
     must still fire in (time, seq) order — including a same-instant pair
     split across the tiers' re-injection. *)
  let span = Int64.shift_left 1L 39 in
  let e = Engine.create () in
  let log = ref [] in
  let at t tag = ignore (Engine.schedule_at e t (fun () -> log := tag :: !log)) in
  at (Int64.sub span 1L) "in-span";
  at span "boundary0";
  at span "boundary1";
  at (Int64.add span 1L) "beyond";
  Engine.run e;
  Alcotest.(check (list string))
    "span-boundary order"
    [ "in-span"; "boundary0"; "boundary1"; "beyond" ]
    (List.rev !log);
  Alcotest.(check int64) "clock" (Int64.add span 1L) (Engine.now e)

let test_engine_park_advances_wheel () =
  (* Shard barriers park an idle engine at every window end (run ~until on
     an empty queue). The wheel horizon must follow the clock: an event
     scheduled after a long idle park, within ~550 s of *now* but beyond
     the original span, files and fires normally, and same-instant FIFO
     still holds. *)
  let e = Engine.create () in
  (* Thousands of empty windows, as a conductor would drive them. *)
  for i = 1 to 1000 do
    Engine.run ~until:(Time.ms i) e
  done;
  Engine.run ~until:(Time.s 100) e;
  Alcotest.(check int64) "parked" (Time.s 100) (Engine.now e);
  let log = ref [] in
  let at t tag = ignore (Engine.schedule_at e t (fun () -> log := tag :: !log)) in
  (* 640 s is beyond the span as seen from 0, inside it as seen from 100 s. *)
  at (Time.s 640) "a0";
  at (Time.s 640) "a1";
  at (Time.s 649) "b";
  Engine.run e;
  Alcotest.(check (list string)) "post-park order" [ "a0"; "a1"; "b" ] (List.rev !log);
  Alcotest.(check int64) "clock" (Time.s 649) (Engine.now e)

let test_engine_depth_gauge () =
  (* sim.queue.depth is a high-watermark over the live count, kept accurate
     through schedule, fire and cancel. *)
  let e = Engine.create () in
  let g = Sw_obs.Registry.gauge (Engine.metrics e) "sim.queue.depth" in
  let ids = List.init 5 (fun i -> Engine.schedule_at e (Time.ms (i + 1)) (fun () -> ())) in
  Alcotest.(check (float 0.)) "peak after schedules" 5. (Sw_obs.Registry.Gauge.value g);
  Engine.cancel e (List.hd ids);
  Engine.run e;
  Alcotest.(check (float 0.)) "watermark survives drain" 5. (Sw_obs.Registry.Gauge.value g);
  Alcotest.(check int) "drained" 0 (Engine.pending e)

(* Model test: the wheel + overflow engine against a naive sorted-list
   scheduler, over random interleavings of schedule (near and far), cancel
   (including stale ones), step, and bounded run. Firing order, final clock
   and pending count must agree exactly. *)
let prop_engine_matches_model =
  let open QCheck in
  QCheck.Test.make ~name:"engine matches sorted-list model" ~count:120
    (list_of_size Gen.(int_range 1 120) (pair (int_bound 5) (int_bound 1_000_000)))
    (fun ops ->
      let e = Engine.create () in
      let elog = ref [] and mlog = ref [] in
      let mnow = ref 0L in
      (* Model queue: (key, id) pending, FIFO by id on equal keys since ids
         are issued in schedule order. *)
      let mq = ref [] in
      let issued = ref [||] in
      let next_id = ref 0 in
      let mpop () =
        let min =
          List.fold_left
            (fun acc (k, i) ->
              match acc with
              | None -> Some (k, i)
              | Some (k', i') ->
                  if k < k' || (k = k' && i < i') then Some (k, i) else acc)
            None !mq
        in
        match min with
        | None -> None
        | Some (k, i) ->
            mq := List.filter (fun (_, j) -> j <> i) !mq;
            mnow := k;
            mlog := i :: !mlog;
            Some k
      in
      List.iter
        (fun (tag, payload) ->
          match tag with
          | 0 | 1 ->
              (* Near schedule: up to 2 ms out. Far schedule: whole seconds,
                 up to 700 s so the overflow tier participates. *)
              let delay =
                if tag = 1 && payload mod 7 = 0 then
                  Time.s (1 + (payload mod 700))
                else Int64.of_int (payload mod 2_000_000)
              in
              let at = Int64.add (Engine.now e) delay in
              let id = !next_id in
              incr next_id;
              let h = Engine.schedule_at e at (fun () -> elog := id :: !elog) in
              issued := Array.append !issued [| h |];
              mq := (at, id) :: !mq
          | 2 ->
              if Array.length !issued > 0 then begin
                let k = payload mod Array.length !issued in
                Engine.cancel e !issued.(k);
                mq := List.filter (fun (_, j) -> j <> k) !mq
              end
          | 3 ->
              ignore (Engine.step e);
              ignore (mpop ())
          | _ ->
              let lim = Int64.add (Engine.now e) (Int64.of_int payload) in
              Engine.run ~until:lim e;
              let rec go () =
                match
                  List.fold_left
                    (fun acc (k, i) ->
                      match acc with
                      | None -> Some (k, i)
                      | Some (k', i') ->
                          if k < k' || (k = k' && i < i') then Some (k, i)
                          else acc)
                    None !mq
                with
                | Some (k, i) when k <= lim ->
                    mq := List.filter (fun (_, j) -> j <> i) !mq;
                    mnow := k;
                    mlog := i :: !mlog;
                    go ()
                | _ -> ()
              in
              go ();
              if lim > !mnow then mnow := lim)
        ops;
      Engine.run e;
      let rec drain () = match mpop () with Some _ -> drain () | None -> () in
      drain ();
      List.rev !elog = List.rev !mlog
      && Engine.pending e = 0
      && Engine.now e = !mnow)

(* --- Summary / Samples --------------------------------------------------- *)

let test_summary_basic () =
  let s = Sw_sim.Summary.create () in
  List.iter (Sw_sim.Summary.add s) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Sw_sim.Summary.count s);
  check_float "mean" 2.5 (Sw_sim.Summary.mean s);
  check_float "min" 1. (Sw_sim.Summary.min s);
  check_float "max" 4. (Sw_sim.Summary.max s);
  check_float "total" 10. (Sw_sim.Summary.total s);
  Alcotest.(check (float 1e-9)) "variance" (5. /. 3.) (Sw_sim.Summary.variance s)

let prop_summary_merge =
  QCheck.Test.make ~name:"Summary.merge equals combined stream" ~count:200
    QCheck.(pair (list (float_bound_inclusive 100.)) (list (float_bound_inclusive 100.)))
    (fun (xs, ys) ->
      QCheck.assume (xs <> [] && ys <> []);
      let a = Sw_sim.Summary.create () and b = Sw_sim.Summary.create () in
      let c = Sw_sim.Summary.create () in
      List.iter
        (fun x ->
          Sw_sim.Summary.add a x;
          Sw_sim.Summary.add c x)
        xs;
      List.iter
        (fun y ->
          Sw_sim.Summary.add b y;
          Sw_sim.Summary.add c y)
        ys;
      let m = Sw_sim.Summary.merge a b in
      Float.abs (Sw_sim.Summary.mean m -. Sw_sim.Summary.mean c) < 1e-6
      && Float.abs (Sw_sim.Summary.variance m -. Sw_sim.Summary.variance c) < 1e-6
      && Sw_sim.Summary.count m = Sw_sim.Summary.count c)

let test_samples_percentiles () =
  let s = Sw_sim.Samples.create () in
  for i = 1 to 100 do
    Sw_sim.Samples.add s (float_of_int i)
  done;
  check_float "median" 50.5 (Sw_sim.Samples.median s);
  check_float "p0" 1. (Sw_sim.Samples.percentile s 0.);
  check_float "p100" 100. (Sw_sim.Samples.percentile s 1.);
  check_float "ecdf" 0.5 (Sw_sim.Samples.ecdf s 50.)

let test_samples_histogram () =
  let s = Sw_sim.Samples.create () in
  List.iter (Sw_sim.Samples.add s) [ 0.1; 0.2; 0.6; 0.9; 1.5; -3. ];
  let h = Sw_sim.Samples.histogram s ~bins:2 ~lo:0. ~hi:1. in
  (* Outliers clamp into end bins. *)
  Alcotest.(check (array int)) "bins" [| 3; 3 |] h

(* --- Trace --------------------------------------------------------------- *)

let test_trace_disabled_noop () =
  let tr = Sw_sim.Trace.create () in
  Sw_sim.Trace.emit tr ~at:Time.zero ~label:"x" "hello";
  Alcotest.(check int) "disabled" 0 (Sw_sim.Trace.length tr)

let test_trace_ring () =
  let tr = Sw_sim.Trace.create ~capacity:3 () in
  Sw_sim.Trace.enable tr;
  for i = 1 to 5 do
    Sw_sim.Trace.emit tr ~at:(Time.ms i) ~label:"t" (string_of_int i)
  done;
  let messages = List.map (fun e -> e.Sw_sim.Trace.message) (Sw_sim.Trace.entries tr) in
  Alcotest.(check (list string)) "last 3 kept" [ "3"; "4"; "5" ] messages

let test_trace_iter_fold_shim () =
  (* The legacy module is a shim over Sw_obs.Trace ([t] is the same type):
     typed events emitted through sw_obs read back here as rendered
     strings, and iter/fold agree with entries. *)
  let tr = Sw_sim.Trace.create () in
  Sw_sim.Trace.enable tr;
  Sw_sim.Trace.emit tr ~at:(Time.ms 1) ~label:"legacy" "one";
  Sw_obs.Trace.emit tr ~at_ns:(Time.ms 2)
    (Sw_obs.Event.Message { label = "typed"; text = "two" });
  let n = Sw_sim.Trace.fold (fun acc _ -> acc + 1) 0 tr in
  Alcotest.(check int) "fold count" 2 n;
  let labels = ref [] in
  Sw_sim.Trace.iter tr (fun e -> labels := e.Sw_sim.Trace.label :: !labels);
  Alcotest.(check (list string)) "iter order (oldest first)"
    [ "legacy"; "typed" ] (List.rev !labels);
  Alcotest.(check (list string)) "entries agree with iter"
    [ "one"; "two" ]
    (List.map (fun e -> e.Sw_sim.Trace.message) (Sw_sim.Trace.entries tr))

(* --- Conductor ----------------------------------------------------------- *)

module Conductor = Sw_sim.Conductor

let test_conductor_validation () =
  Alcotest.check_raises "no shards"
    (Invalid_argument "Conductor.create: no shards") (fun () ->
      ignore (Conductor.create ~lookahead:(Time.ms 1) [||]));
  Alcotest.check_raises "zero lookahead"
    (Invalid_argument "Conductor.create: lookahead must be positive")
    (fun () ->
      ignore
        (Conductor.create ~lookahead:Time.zero
           [| Engine.create (); Engine.create () |]));
  (* A single shard never windows, so any lookahead is fine. *)
  ignore (Conductor.create ~lookahead:Time.zero [| Engine.create () |])

let test_conductor_matrix_validation () =
  let engines () = [| Engine.create (); Engine.create () |] in
  Alcotest.check_raises "wrong shape"
    (Invalid_argument "Conductor.create: lookahead matrix must be n x n")
    (fun () ->
      ignore
        (Conductor.create ~matrix:[| [| Time.ms 1 |] |] ~lookahead:(Time.ms 1)
           (engines ())));
  Alcotest.check_raises "non-positive off-diagonal"
    (Invalid_argument
       "Conductor.create: lookahead matrix entries must be positive off the \
        diagonal")
    (fun () ->
      ignore
        (Conductor.create
           ~matrix:
             [| [| Time.zero; Time.ms 1 |]; [| Time.zero; Time.zero |] |]
           ~lookahead:(Time.ms 1) (engines ())));
  (* Asymmetric entries are the point of the matrix; the diagonal is unused
     and may be anything. The conductor answers with the installed bound and
     keeps its own defensive copy. *)
  let m = [| [| Time.zero; Time.ms 2 |]; [| Time.us 300; Time.zero |] |] in
  let c = Conductor.create ~matrix:m ~lookahead:(Time.ms 1) (engines ()) in
  m.(0).(1) <- Time.us 1;
  Alcotest.(check int64) "L(0,1)" (Time.ms 2) (Conductor.lookahead c ~src:0 ~dst:1);
  Alcotest.(check int64) "L(1,0)" (Time.us 300) (Conductor.lookahead c ~src:1 ~dst:0)

(* The violation report must name the offending pair and both instants —
   that is what makes a late-installed fast link debuggable. *)
let test_conductor_post_violation_names_pair () =
  let engines = [| Engine.create (); Engine.create () |] in
  let c = Conductor.create ~parallel:false ~lookahead:(Time.ms 1) engines in
  let message = ref "" in
  ignore
    (Engine.schedule_at engines.(0) (Time.us 100) (fun () ->
         try Conductor.post c ~src:0 ~dst:1 ~at:(Time.us 500) ignore
         with Invalid_argument m -> message := m));
  Conductor.run c ~until:(Time.ms 1);
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec at i = i + ln <= lh && (String.sub hay i ln = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "message %S mentions %S" !message needle)
        true (contains !message needle))
    [ "shard 0 -> shard 1"; "arrival 500.000us"; "window end 1.000ms" ]

(* The parallel-matches-sequential contract again, under an asymmetric
   per-pair matrix: each direction posts at its own bound, windows differ
   per pair, and the domain gang must still reproduce the round-robin
   driver's firing order exactly. *)
let test_conductor_matrix_parallel_matches_sequential () =
  let n = 3 in
  let matrix =
    [|
      [| Time.zero; Time.us 200; Time.ms 5 |];
      [| Time.ms 2; Time.zero; Time.us 700 |];
      [| Time.us 400; Time.ms 1; Time.zero |];
    |]
  in
  let horizon = Time.ms 30 in
  let build ~parallel =
    let engines = Array.init n (fun _ -> Engine.create ()) in
    let c = Conductor.create ~parallel ~matrix ~lookahead:(Time.us 200) engines in
    let logs = Array.make n [] in
    let rng = Prng.create 0xA51DE5L in
    for src = 0 to n - 1 do
      for k = 0 to 29 do
        let at = Time.us (10 + Prng.int rng 29_000) in
        let tag = Printf.sprintf "s%de%d" src k in
        ignore
          (Engine.schedule_at engines.(src) at (fun () ->
               logs.(src) <- (Engine.now engines.(src), tag) :: logs.(src);
               if k mod 2 = 0 then begin
                 let dst = (src + 1 + (k mod (n - 1))) mod n in
                 let arrival =
                   Time.add (Engine.now engines.(src)) matrix.(src).(dst)
                 in
                 Conductor.post c ~src ~dst ~at:arrival (fun () ->
                     logs.(dst) <-
                       (Engine.now engines.(dst), tag ^ "x") :: logs.(dst))
               end))
      done
    done;
    Conductor.run c ~until:horizon;
    (logs, Conductor.exchanged c, Array.map Engine.now engines)
  in
  let logs_p, exch_p, now_p = build ~parallel:true in
  let logs_s, exch_s, now_s = build ~parallel:false in
  Alcotest.(check int) "messages exchanged" exch_s exch_p;
  Alcotest.(check bool) "some cross-shard traffic" true (exch_s > 0);
  Alcotest.(check (array int64)) "clocks parked" now_s now_p;
  for i = 0 to n - 1 do
    Alcotest.(check (list (pair int64 string)))
      (Printf.sprintf "shard %d firing order" i)
      logs_s.(i) logs_p.(i)
  done

(* Messages from both shards landing at the same destination instant must
   fire in (arrival, source shard, source sequence) order, regardless of
   which shard ran its window first. *)
let test_conductor_exchange_order () =
  let engines = [| Engine.create (); Engine.create () |] in
  let c = Conductor.create ~parallel:false ~lookahead:(Time.ms 1) engines in
  let log = ref [] in
  let post_from src tags =
    ignore
      (Engine.schedule_at engines.(src) (Time.us 500) (fun () ->
           List.iter
             (fun tag ->
               Conductor.post c ~src ~dst:0 ~at:(Time.ms 2) (fun () ->
                   log := tag :: !log))
             tags))
  in
  (* Shard 1 posts before shard 0 in wall order (sequential driver runs
     shard 0 first, but the sort must not care). *)
  post_from 1 [ "b0"; "b1" ];
  post_from 0 [ "a0"; "a1" ];
  Conductor.run c ~until:(Time.ms 3);
  Alcotest.(check (list string)) "exchange total order"
    [ "a0"; "a1"; "b0"; "b1" ] (List.rev !log);
  Alcotest.(check int) "exchanged" 4 (Conductor.exchanged c);
  Alcotest.(check int64) "clock" (Time.ms 3) (Engine.now engines.(0))

let test_conductor_post_lookahead_violation () =
  let engines = [| Engine.create (); Engine.create () |] in
  let c = Conductor.create ~parallel:false ~lookahead:(Time.ms 1) engines in
  let violated = ref false in
  ignore
    (Engine.schedule_at engines.(0) (Time.us 100) (fun () ->
         match Conductor.post c ~src:0 ~dst:1 ~at:(Time.us 500) ignore with
         | () -> ()
         | exception Invalid_argument _ -> violated := true));
  Conductor.run c ~until:(Time.ms 1);
  Alcotest.(check bool) "post inside the window rejected" true !violated

(* The heart of the determinism contract: a web of cross-shard traffic run
   by the domain-per-shard driver fires in exactly the order the sequential
   round-robin driver produces. Event plans are drawn up front from a seed;
   handlers touch only their own shard's log cell, so the parallel run is
   race-free and any divergence is a protocol bug, not a test artifact. *)
let test_conductor_parallel_matches_sequential () =
  let n = 4 in
  let lookahead = Time.ms 1 in
  let horizon = Time.ms 40 in
  let build ~parallel =
    let engines = Array.init n (fun _ -> Engine.create ()) in
    let c = Conductor.create ~parallel ~lookahead engines in
    let logs = Array.make n [] in
    let rng = Prng.create 0xC0D0C7L in
    for src = 0 to n - 1 do
      for k = 0 to 39 do
        let at = Time.us (10 + Prng.int rng 39_000) in
        let tag = Printf.sprintf "s%de%d" src k in
        ignore
          (Engine.schedule_at engines.(src) at (fun () ->
               logs.(src) <- (Engine.now engines.(src), tag) :: logs.(src);
               if k mod 2 = 0 then begin
                 let dst = (src + 1 + (k mod (n - 1))) mod n in
                 let arrival = Time.add (Engine.now engines.(src)) lookahead in
                 Conductor.post c ~src ~dst ~at:arrival (fun () ->
                     logs.(dst) <-
                       (Engine.now engines.(dst), tag ^ "x") :: logs.(dst))
               end))
      done
    done;
    Conductor.run c ~until:horizon;
    let fired = Array.map Engine.fired engines in
    (logs, Conductor.exchanged c, fired, Array.map Engine.now engines)
  in
  let logs_p, exch_p, fired_p, now_p = build ~parallel:true in
  let logs_s, exch_s, fired_s, now_s = build ~parallel:false in
  Alcotest.(check int) "messages exchanged" exch_s exch_p;
  Alcotest.(check bool) "some cross-shard traffic" true (exch_s > 0);
  Alcotest.(check (array int)) "events fired per shard" fired_s fired_p;
  Alcotest.(check (array int64)) "clocks parked" now_s now_p;
  for i = 0 to n - 1 do
    Alcotest.(check (list (pair int64 string)))
      (Printf.sprintf "shard %d firing order" i)
      logs_s.(i) logs_p.(i)
  done

let () =
  Alcotest.run "sw_sim"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "arithmetic" `Quick test_time_arith;
          Alcotest.test_case "pretty-printing" `Quick test_time_pp;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          QCheck_alcotest.to_alcotest prop_heap_sorted;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_prng_normal_moments;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "choose" `Quick test_prng_choose;
          QCheck_alcotest.to_alcotest prop_prng_int_bound;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "same-instant fifo" `Quick test_engine_same_instant_fifo;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_schedule;
          Alcotest.test_case "late cancel after fire" `Quick
            test_engine_late_cancel_after_fire;
          Alcotest.test_case "far-future overflow tier" `Quick
            test_engine_far_future;
          Alcotest.test_case "span boundary across tiers" `Quick
            test_engine_span_boundary;
          Alcotest.test_case "park advances wheel horizon" `Quick
            test_engine_park_advances_wheel;
          Alcotest.test_case "queue depth gauge" `Quick test_engine_depth_gauge;
          QCheck_alcotest.to_alcotest prop_engine_matches_model;
        ] );
      ( "collectors",
        [
          Alcotest.test_case "summary basic" `Quick test_summary_basic;
          QCheck_alcotest.to_alcotest prop_summary_merge;
          Alcotest.test_case "samples percentiles" `Quick test_samples_percentiles;
          Alcotest.test_case "samples histogram" `Quick test_samples_histogram;
        ] );
      ( "conductor",
        [
          Alcotest.test_case "creation validation" `Quick
            test_conductor_validation;
          Alcotest.test_case "matrix validation" `Quick
            test_conductor_matrix_validation;
          Alcotest.test_case "violation names the pair" `Quick
            test_conductor_post_violation_names_pair;
          Alcotest.test_case "exchange total order" `Quick
            test_conductor_exchange_order;
          Alcotest.test_case "post inside window rejected" `Quick
            test_conductor_post_lookahead_violation;
          Alcotest.test_case "parallel matches sequential" `Quick
            test_conductor_parallel_matches_sequential;
          Alcotest.test_case "matrix parallel matches sequential" `Quick
            test_conductor_matrix_parallel_matches_sequential;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled is noop" `Quick test_trace_disabled_noop;
          Alcotest.test_case "ring keeps most recent" `Quick test_trace_ring;
          Alcotest.test_case "iter/fold over the sw_obs shim" `Quick
            test_trace_iter_fold_shim;
        ] );
    ]
