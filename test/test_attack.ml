(* Tests for the attack library: the chi-square distinguisher, the noise
   defence's closed forms, and (smoke-level) the full attack scenario. *)

module Time = Sw_sim.Time
module Dist = Sw_stats.Dist
module D = Sw_attack.Distinguisher
module Nd = Sw_attack.Noise_defense

let test_analytic_monotone_in_confidence () =
  let null = Dist.exponential ~rate:1. in
  let alt = Dist.exponential ~rate:0.7 in
  let n1 = D.analytic ~null ~alt ~confidence:0.7 () in
  let n2 = D.analytic ~null ~alt ~confidence:0.99 () in
  if not (n2 > n1) then Alcotest.fail "more confidence, more observations"

let test_analytic_harder_for_similar () =
  let null = Dist.exponential ~rate:1. in
  let strong = D.analytic ~null ~alt:(Dist.exponential ~rate:0.5) ~confidence:0.9 () in
  let weak =
    D.analytic ~null ~alt:(Dist.exponential ~rate:(10. /. 11.)) ~confidence:0.9 ()
  in
  if not (weak > 10. *. strong) then
    Alcotest.failf "similar victim must need far more observations (%f vs %f)" weak
      strong

let test_median_raises_observations () =
  (* The core StopWatch claim, analytically: distinguishing the medians takes
     more observations than distinguishing the raw distributions. *)
  let base = Dist.exponential ~rate:1. in
  let victim = Dist.exponential ~rate:0.5 in
  let med3 = Sw_stats.Order_stats.median_dist [| base; base; base |] in
  let med2v = Sw_stats.Order_stats.median_dist [| victim; base; base |] in
  let raw = D.analytic ~null:base ~alt:victim ~confidence:0.9 () in
  let med = D.analytic ~null:med3 ~alt:med2v ~confidence:0.9 () in
  if not (med > 3. *. raw) then
    Alcotest.failf "median must dampen distinguishability (%f vs %f)" med raw

let test_empirical_roundtrip () =
  let rng = Sw_sim.Prng.create 5L in
  let sample rate n = Array.init n (fun _ -> Sw_sim.Prng.exponential rng ~rate) in
  let null = sample 1.0 5000 in
  let alt = sample 0.5 5000 in
  let n = D.empirical ~null ~alt ~confidence:0.9 () in
  if n > 100. then Alcotest.failf "clearly distinct samples: %f too large" n;
  let null2 = sample 1.0 5000 in
  let same = D.empirical ~null ~alt:null2 ~confidence:0.9 () in
  if not (same > 5. *. n) then Alcotest.fail "same distribution must look similar"

let test_sweep_shapes () =
  let grid = D.confidence_grid in
  Alcotest.(check int) "grid size" 7 (List.length grid);
  let null = Dist.exponential ~rate:1. in
  let alt = Dist.exponential ~rate:0.6 in
  let sweep = D.sweep_analytic ~null ~alt () in
  let values = List.map snd sweep in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "nondecreasing in confidence" true (increasing values)

(* --- Noise defence ------------------------------------------------------------ *)

let test_abs_diff_cdf_properties () =
  let d9999 = Nd.delta_n_for ~lambda:1. ~lambda':0.5 ~coverage:0.9999 in
  let d99 = Nd.delta_n_for ~lambda:1. ~lambda':0.5 ~coverage:0.99 in
  if not (d9999 > d99) then Alcotest.fail "more coverage needs larger delta_n";
  (* Monte-Carlo check of the closed form. *)
  let rng = Sw_sim.Prng.create 11L in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    let x = Sw_sim.Prng.exponential rng ~rate:1. in
    let x' = Sw_sim.Prng.exponential rng ~rate:0.5 in
    if Float.abs (x -. x') <= d99 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  if Float.abs (p -. 0.99) > 0.005 then
    Alcotest.failf "closed form disagrees with simulation: %f" p

let test_exp_plus_uniform_mean () =
  let rows = Nd.compare ~lambda:1. ~lambda':0.5 ~confidences:[ 0.9 ] () in
  match rows with
  | [ r ] ->
      (* E[X1 + XN] = 1/lambda + b/2. *)
      Alcotest.(check (float 1e-6)) "noise delay formula"
        (1. +. (r.Nd.b /. 2.))
        r.Nd.delay_noise;
      if r.Nd.b <= 0. then Alcotest.fail "noise bound must be positive";
      if not (r.Nd.delay_stopwatch_victim >= r.Nd.delay_stopwatch) then
        Alcotest.fail "victim median delay should not be smaller"
  | _ -> Alcotest.fail "one row expected"

let test_noise_bound_grows_with_distinctness () =
  let b_strong =
    match Nd.compare ~lambda:1. ~lambda':0.5 ~confidences:[ 0.9 ] () with
    | [ r ] -> r.Nd.b
    | _ -> nan
  in
  let b_weak =
    match Nd.compare ~lambda:1. ~lambda':(10. /. 11.) ~confidences:[ 0.9 ] () with
    | [ r ] -> r.Nd.b
    | _ -> nan
  in
  if not (b_strong > b_weak) then
    Alcotest.failf "more distinct victim needs more noise (%f vs %f)" b_strong b_weak

(* --- Scenario (smoke) ------------------------------------------------------------ *)

let test_scenario_smoke () =
  let spec =
    {
      Sw_attack.Scenario.default with
      Sw_attack.Scenario.duration = Time.s 5;
      ping_rate_per_s = 50.;
      victim = true;
    }
  in
  let r = Sw_attack.Scenario.run spec in
  if r.Sw_attack.Scenario.deliveries < 100 then
    Alcotest.failf "too few deliveries: %d" r.Sw_attack.Scenario.deliveries;
  Alcotest.(check int) "no divergences" 0 r.Sw_attack.Scenario.divergences;
  let obs = r.Sw_attack.Scenario.attacker_inter_delivery_ms in
  Array.iter (fun x -> if x < 0. then Alcotest.fail "negative inter-delivery") obs

let test_scenario_baseline_smoke () =
  let spec =
    {
      Sw_attack.Scenario.default with
      Sw_attack.Scenario.duration = Time.s 5;
      baseline = true;
      victim = true;
      colluder = true;
    }
  in
  let r = Sw_attack.Scenario.run spec in
  if r.Sw_attack.Scenario.deliveries < 100 then Alcotest.fail "too few deliveries"

(* A fig4-style spec asking for shards is clamped back to one: the attack
   layout (attacker sharing machines with victim and colluder) is a single
   partition atom, so the run must be byte-identical to the unsharded one. *)
let test_scenario_shard_clamp () =
  let spec =
    {
      Sw_attack.Scenario.default with
      Sw_attack.Scenario.duration = Time.s 2;
      ping_rate_per_s = 50.;
      victim = true;
    }
  in
  let sharded = { spec with Sw_attack.Scenario.shards = 4 } in
  Alcotest.(check int) "clamped to one shard" 1
    (Sw_attack.Scenario.effective_shards sharded);
  let r1 = Sw_attack.Scenario.run spec in
  let r4 = Sw_attack.Scenario.run sharded in
  Alcotest.(check int) "deliveries" r1.Sw_attack.Scenario.deliveries
    r4.Sw_attack.Scenario.deliveries;
  Alcotest.(check int) "divergences" r1.Sw_attack.Scenario.divergences
    r4.Sw_attack.Scenario.divergences;
  Alcotest.(check (array (float 0.))) "inter-delivery observations"
    r1.Sw_attack.Scenario.attacker_inter_delivery_ms
    r4.Sw_attack.Scenario.attacker_inter_delivery_ms;
  Alcotest.(check string) "metrics bytes"
    (Sw_obs.Export.to_json_string r1.Sw_attack.Scenario.metrics)
    (Sw_obs.Export.to_json_string r4.Sw_attack.Scenario.metrics)

let test_scenario_five_replicas () =
  let spec =
    Sw_attack.Scenario.with_replicas
      { Sw_attack.Scenario.default with Sw_attack.Scenario.duration = Time.s 5 }
      5
  in
  let r = Sw_attack.Scenario.run spec in
  if r.Sw_attack.Scenario.deliveries < 100 then Alcotest.fail "too few deliveries"

let () =
  Alcotest.run "sw_attack"
    [
      ( "distinguisher",
        [
          Alcotest.test_case "monotone in confidence" `Quick
            test_analytic_monotone_in_confidence;
          Alcotest.test_case "similarity hardness" `Quick
            test_analytic_harder_for_similar;
          Alcotest.test_case "median dampens" `Quick test_median_raises_observations;
          Alcotest.test_case "empirical" `Quick test_empirical_roundtrip;
          Alcotest.test_case "sweep" `Quick test_sweep_shapes;
        ] );
      ( "noise-defence",
        [
          Alcotest.test_case "delta_n closed form" `Quick test_abs_diff_cdf_properties;
          Alcotest.test_case "delay formulas" `Quick test_exp_plus_uniform_mean;
          Alcotest.test_case "noise grows with distinctness" `Quick
            test_noise_bound_grows_with_distinctness;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "stopwatch smoke" `Quick test_scenario_smoke;
          Alcotest.test_case "baseline + colluder smoke" `Quick
            test_scenario_baseline_smoke;
          Alcotest.test_case "five replicas" `Quick test_scenario_five_replicas;
          Alcotest.test_case "shard request clamps to one" `Slow
            test_scenario_shard_clamp;
        ] );
    ]
