(* Tests for the disk model (service times, FIFO queueing) and disk images
   (replication semantics). *)

module Time = Sw_sim.Time
module Engine = Sw_sim.Engine
module Disk = Sw_disk.Disk
module Image = Sw_disk.Image

let no_seek =
  {
    Disk.max_seek = Time.zero;
    max_rotation = Time.zero;
    transfer_bps = 1_000_000;
    sequential_seek_fraction = 1.0;
  }

let test_transfer_time () =
  let engine = Engine.create () in
  let disk = Disk.create engine ~params:no_seek () in
  let finished = ref Time.zero in
  (* 1000 bytes at 1 MB/s = 1 ms. *)
  Disk.submit disk ~vm:0 ~kind:Disk.Read ~bytes:1000 ~sequential:false (fun () ->
      finished := Engine.now engine);
  Engine.run engine;
  Alcotest.(check int64) "pure transfer" (Time.ms 1) !finished

let test_fifo_queueing () =
  let engine = Engine.create () in
  let disk = Disk.create engine ~params:no_seek () in
  let finishes = ref [] in
  for i = 1 to 3 do
    Disk.submit disk ~vm:i ~kind:Disk.Read ~bytes:1000 ~sequential:false (fun () ->
        finishes := (i, Engine.now engine) :: !finishes)
  done;
  Engine.run engine;
  Alcotest.(check (list (pair int int64)))
    "requests queue one at a time"
    [ (1, Time.ms 1); (2, Time.ms 2); (3, Time.ms 3) ]
    (List.rev !finishes)

let test_sequential_cheaper () =
  let engine = Engine.create () in
  let disk = Disk.create engine () in
  let seq = Sw_sim.Summary.create () and random = Sw_sim.Summary.create () in
  let t0 = ref Time.zero in
  let rec submit i =
    if i < 400 then begin
      t0 := Engine.now engine;
      let sequential = i mod 2 = 0 in
      Disk.submit disk ~vm:0 ~kind:Disk.Read ~bytes:4096 ~sequential (fun () ->
          let elapsed = Time.to_float_ms (Time.sub (Engine.now engine) !t0) in
          Sw_sim.Summary.add (if sequential then seq else random) elapsed;
          submit (i + 1))
    end
  in
  submit 0;
  Engine.run engine;
  if Sw_sim.Summary.mean seq >= Sw_sim.Summary.mean random then
    Alcotest.failf "sequential (%.3f ms) should beat random (%.3f ms)"
      (Sw_sim.Summary.mean seq) (Sw_sim.Summary.mean random)

let test_accounting () =
  let engine = Engine.create () in
  let disk = Disk.create engine ~params:no_seek () in
  Disk.submit disk ~vm:3 ~kind:Disk.Write ~bytes:500 ~sequential:true (fun () -> ());
  Disk.submit disk ~vm:3 ~kind:Disk.Read ~bytes:500 ~sequential:true (fun () -> ());
  Disk.submit disk ~vm:4 ~kind:Disk.Read ~bytes:500 ~sequential:true (fun () -> ());
  Engine.run engine;
  Alcotest.(check int) "completed" 3 (Disk.completed disk);
  Alcotest.(check int) "per-vm" 2 (Disk.completed_for disk ~vm:3);
  Alcotest.(check int64) "busy time" (Time.us 1500) (Disk.busy_time disk);
  Alcotest.(check int64) "max service" (Time.us 500) (Disk.max_service_time disk)

let test_rejects_zero_bytes () =
  let engine = Engine.create () in
  let disk = Disk.create engine () in
  Alcotest.check_raises "zero bytes" (Invalid_argument "x") (fun () ->
      try Disk.submit disk ~vm:0 ~kind:Disk.Read ~bytes:0 ~sequential:false (fun () -> ())
      with Invalid_argument _ -> raise (Invalid_argument "x"))

(* --- Image ---------------------------------------------------------------- *)

let test_image_rw () =
  let img = Image.create ~blocks:8 in
  Alcotest.(check int) "blocks" 8 (Image.blocks img);
  Alcotest.(check int) "zeroed" 0 (Image.read img 3);
  Image.write img 3 42;
  Alcotest.(check int) "written" 42 (Image.read img 3)

let test_image_clone_is_deep () =
  let img = Image.create ~blocks:4 in
  Image.write img 0 7;
  let copy = Image.clone img in
  Alcotest.(check bool) "equal after clone" true (Image.equal img copy);
  Image.write copy 0 9;
  Alcotest.(check int) "original untouched" 7 (Image.read img 0);
  Alcotest.(check bool) "diverged" false (Image.equal img copy)

let test_image_digest () =
  let a = Image.create ~blocks:16 and b = Image.create ~blocks:16 in
  Image.write a 5 1;
  Image.write b 5 1;
  Alcotest.(check int) "same content same digest" (Image.digest a) (Image.digest b);
  Image.write b 6 1;
  Alcotest.(check bool) "different content" true (Image.digest a <> Image.digest b)

let test_image_bounds () =
  let img = Image.create ~blocks:2 in
  Alcotest.check_raises "oob" (Invalid_argument "x") (fun () ->
      try ignore (Image.read img 2) with
      | Invalid_argument _ -> raise (Invalid_argument "x"))

let prop_clone_equal =
  QCheck.Test.make ~name:"clone equals source for any writes" ~count:100
    QCheck.(list (pair (int_bound 31) (int_bound 1000)))
    (fun writes ->
      let img = Image.create ~blocks:32 in
      List.iter (fun (i, v) -> Image.write img i v) writes;
      let copy = Image.clone img in
      Image.equal img copy && Image.digest img = Image.digest copy)

let () =
  Alcotest.run "sw_disk"
    [
      ( "disk",
        [
          Alcotest.test_case "transfer time" `Quick test_transfer_time;
          Alcotest.test_case "fifo queueing" `Quick test_fifo_queueing;
          Alcotest.test_case "sequential cheaper" `Quick test_sequential_cheaper;
          Alcotest.test_case "accounting" `Quick test_accounting;
          Alcotest.test_case "rejects zero bytes" `Quick test_rejects_zero_bytes;
        ] );
      ( "image",
        [
          Alcotest.test_case "read/write" `Quick test_image_rw;
          Alcotest.test_case "clone is deep" `Quick test_image_clone_is_deep;
          Alcotest.test_case "digest" `Quick test_image_digest;
          Alcotest.test_case "bounds" `Quick test_image_bounds;
          QCheck_alcotest.to_alcotest prop_clone_equal;
        ] );
    ]
