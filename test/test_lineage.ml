(* Tests for the causal trace pipeline: the mini JSON reader, the trace
   ring's drop accounting, export meta, lineage reconstruction (a qcheck
   property on synthetic well-formed streams, plus end-to-end runs with and
   without a replica crash), chrome-export determinism under -j 1 vs -j 4,
   and the wall-clock profile. *)

module Time = Sw_sim.Time
module Trace = Sw_obs.Trace
module Event = Sw_obs.Event
module Lineage = Sw_obs.Lineage
module Export = Sw_obs.Export
module Chrome = Sw_obs.Chrome
module Json = Sw_obs.Json
module Profile = Sw_obs.Profile
module Registry = Sw_obs.Registry
module Scenario = Sw_attack.Scenario

(* --- Json ----------------------------------------------------------------- *)

let test_json_parse () =
  (match Json.parse {| {"a":[1,2.5,-3e2],"b":"x\n\"y","c":true,"d":null} |} with
  | Error e -> Alcotest.fail ("valid JSON rejected: " ^ e)
  | Ok v ->
      (match Option.bind (Json.member "a" v) Json.to_list with
      | Some [ x; y; z ] ->
          Alcotest.(check (option (float 0.))) "int" (Some 1.) (Json.to_number x);
          Alcotest.(check (option (float 0.))) "frac" (Some 2.5) (Json.to_number y);
          Alcotest.(check (option (float 0.))) "exp" (Some (-300.))
            (Json.to_number z)
      | _ -> Alcotest.fail "array shape");
      Alcotest.(check (option string)) "escapes" (Some "x\n\"y")
        (Option.bind (Json.member "b" v) Json.as_string);
      Alcotest.(check bool) "bool member" true
        (Json.member "c" v = Some (Json.Bool true));
      Alcotest.(check bool) "null member" true (Json.member "d" v = Some Json.Null));
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" bad)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_json_roundtrips_export () =
  (* The reader accepts what our own emitters produce. *)
  let r = Registry.create () in
  Registry.Counter.add (Registry.counter r "net.delivered") 3;
  Registry.Histogram.observe (Registry.histogram r "lat") 12_345L;
  let meta = Export.meta ~seed:42L ~scenario:"t" ~trace_dropped:0 () in
  let s = Export.to_json_string ~meta (Registry.snapshot r) in
  match Json.parse s with
  | Error e -> Alcotest.fail ("export does not parse: " ^ e)
  | Ok v ->
      Alcotest.(check (option (float 0.))) "meta.seed" (Some 42.)
        (Option.bind (Json.member "meta" v) (fun m ->
             Option.bind (Json.member "seed" m) Json.to_number));
      Alcotest.(check bool) "metrics present" true
        (Option.is_some
           (Option.bind (Json.member "metrics" v) (Json.member "net.delivered")))

(* --- Trace drops ---------------------------------------------------------- *)

let delivered seq =
  Event.Packet_delivered
    { vm = 0; replica = 0; seq; virt_ns = Int64.of_int (seq * 1000) }

let test_trace_dropped () =
  let r = Registry.create () in
  let tr = Trace.create ~capacity:4 ~metrics:r () in
  Trace.enable tr;
  Alcotest.(check int) "capacity" 4 (Trace.capacity tr);
  for seq = 1 to 10 do
    Trace.emit tr ~at_ns:(Int64.of_int seq) (delivered seq)
  done;
  Alcotest.(check int) "dropped counts overwrites" 6 (Trace.dropped tr);
  Alcotest.(check int) "registry mirror" 6
    (Sw_obs.Snapshot.counter (Registry.snapshot r) "trace.dropped");
  Trace.clear tr;
  Alcotest.(check int) "clear resets dropped" 0 (Trace.dropped tr);
  (* The truncation state rides into lineage and its summary. *)
  Trace.emit tr ~at_ns:1L (delivered 1);
  let l = Lineage.of_trace tr in
  Alcotest.(check int) "lineage carries dropped" 0 (Lineage.dropped l)

(* --- Export meta ---------------------------------------------------------- *)

let test_export_meta_shape () =
  let m =
    Export.meta ~seed:7L ~scenario:"x" ~trace_capacity:16 ~trace_dropped:2
      ~registry_enabled:true ()
  in
  Alcotest.(check string) "meta object, declaration order"
    "{\"seed\":7,\"scenario\":\"x\",\"trace_capacity\":16,\"trace_dropped\":2,\"registry_enabled\":true}"
    (Export.meta_json m);
  Alcotest.(check string) "absent fields omitted" "{}"
    (Export.meta_json (Export.meta ()));
  let r = Registry.create () in
  Registry.Counter.incr (Registry.counter r "a");
  let flat = Export.to_json_string (Registry.snapshot r) in
  Alcotest.(check string) "no meta: flat object unchanged"
    "{\"a\":{\"kind\":\"counter\",\"value\":1}}" flat;
  Alcotest.(check string) "with meta: wrapped"
    (Printf.sprintf "{\"meta\":%s,\"metrics\":%s}" (Export.meta_json m) flat)
    (Export.to_json_string ~meta:m (Registry.snapshot r))

(* --- Lineage: synthetic well-formed streams -------------------------------- *)

(* A well-formed chain: ingress stamp, every replica proposes and records
   its peers, every replica adopts a median over all proposals, every
   replica delivers — all at non-decreasing instants. *)
let emit_chain tr ~vm ~seq ~t0 ~g1 ~g2 ~g3 =
  let t = Int64.of_int in
  Trace.emit tr ~at_ns:(t t0)
    (Event.Ingress_replicated { vm; ingress_seq = seq; copies = 3; size = 100 });
  let virt r = Int64.of_int ((1000 * seq) + r) in
  for r = 0 to 2 do
    Trace.emit tr ~at_ns:(t (t0 + g1))
      (Event.Packet_proposed
         { vm; observer = r; proposer = r; ingress_seq = seq; virt_ns = virt r })
  done;
  for observer = 0 to 2 do
    for proposer = 0 to 2 do
      if observer <> proposer then
        Trace.emit tr ~at_ns:(t (t0 + g1 + g2))
          (Event.Packet_proposed
             { vm; observer; proposer; ingress_seq = seq; virt_ns = virt proposer })
    done
  done;
  let proposals = [ (0, virt 0); (1, virt 1); (2, virt 2) ] in
  for r = 0 to 2 do
    Trace.emit tr ~at_ns:(t (t0 + g1 + g2))
      (Event.Median_adopted
         { vm; replica = r; ingress_seq = seq; virt_ns = virt 1; proposals })
  done;
  for r = 0 to 2 do
    Trace.emit tr ~at_ns:(t (t0 + g1 + g2 + g3))
      (Event.Packet_delivered { vm; replica = r; seq; virt_ns = virt 1 })
  done

let prop_wellformed_stream_no_orphans =
  QCheck.Test.make ~count:200
    ~name:"well-formed stream: no orphans, lags non-negative, all complete"
    QCheck.(
      pair (1 -- 20)
        (list_of_size Gen.(return 3) (triple (0 -- 1000) (0 -- 1000) (0 -- 1000))))
    (fun (chains, gap_seed) ->
      let tr = Trace.create () in
      Trace.enable tr;
      let gaps k =
        match List.nth_opt gap_seed (k mod List.length gap_seed) with
        | Some g -> g
        | None -> (1, 1, 1)
      in
      for k = 0 to chains - 1 do
        let g1, g2, g3 = gaps k in
        emit_chain tr ~vm:(k mod 2) ~seq:k ~t0:(k * 10_000) ~g1 ~g2 ~g3
      done;
      let l = Lineage.of_trace tr in
      let pa = Lineage.propose_to_adopt l in
      let ad = Lineage.adopt_to_deliver l in
      Lineage.orphans l = []
      && Lineage.negative_lags l = 0
      && Lineage.total l = chains
      && Lineage.complete l = chains
      && Lineage.in_flight l = 0
      && pa.Lineage.count = 3 * chains
      && ad.Lineage.count = 3 * chains
      && (pa.Lineage.count = 0 || Int64.compare pa.Lineage.min_ns 0L >= 0)
      && (ad.Lineage.count = 0 || Int64.compare ad.Lineage.min_ns 0L >= 0)
      &&
      let shares = List.map snd (Lineage.median_wins l) in
      Float.abs (List.fold_left ( +. ) 0. shares -. 1.) < 1e-9)

let test_lineage_in_flight_not_orphan () =
  (* Adopted but not delivered when the trace ends: in flight, not broken. *)
  let tr = Trace.create () in
  Trace.enable tr;
  Trace.emit tr ~at_ns:10L
    (Event.Packet_proposed
       { vm = 0; observer = 0; proposer = 0; ingress_seq = 0; virt_ns = 500L });
  Trace.emit tr ~at_ns:20L
    (Event.Median_adopted
       {
         vm = 0;
         replica = 0;
         ingress_seq = 0;
         virt_ns = 500L;
         proposals = [ (0, 500L) ];
       });
  let l = Lineage.of_trace tr in
  Alcotest.(check int) "no orphans" 0 (List.length (Lineage.orphans l));
  Alcotest.(check int) "one in flight" 1 (Lineage.in_flight l);
  Alcotest.(check int) "none complete" 0 (Lineage.complete l)

let test_lineage_orphan_kinds () =
  let tr = Trace.create () in
  Trace.enable tr;
  (* r0 proposes but never adopts; r1 delivers without a median. *)
  Trace.emit tr ~at_ns:10L
    (Event.Packet_proposed
       { vm = 3; observer = 0; proposer = 0; ingress_seq = 7; virt_ns = 100L });
  Trace.emit tr ~at_ns:20L
    (Event.Packet_delivered { vm = 3; replica = 1; seq = 7; virt_ns = 100L });
  match Lineage.orphans (Lineage.of_trace tr) with
  | [ a; b ] ->
      Alcotest.(check bool) "unadopted at r0" true
        (a.Lineage.o_replica = 0 && a.Lineage.kind = Lineage.Unadopted_proposal);
      Alcotest.(check bool) "unmatched at r1" true
        (b.Lineage.o_replica = 1 && b.Lineage.kind = Lineage.Unmatched_delivery)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 orphans, got %d" (List.length l))

(* --- End-to-end: traced scenario runs -------------------------------------- *)

let traced_spec ?(faults = Sw_fault.Schedule.empty) ~tr () =
  {
    Scenario.default with
    Scenario.duration = Time.s 1;
    ping_rate_per_s = 60.;
    faults;
    trace = Some tr;
  }

let test_scenario_fault_free_lineage () =
  let tr = Trace.create () in
  ignore (Scenario.run (traced_spec ~tr ()));
  let entries = Trace.entries tr in
  let has f = List.exists (fun (e : Trace.entry) -> f e.Trace.event) entries in
  Alcotest.(check bool) "ingress replication traced" true
    (has (function Event.Ingress_replicated _ -> true | _ -> false));
  Alcotest.(check bool) "egress median release traced" true
    (has (function Event.Egress_released _ -> true | _ -> false));
  let l = Lineage.of_trace tr in
  Alcotest.(check bool) "chains reconstructed" true (Lineage.total l > 0);
  Alcotest.(check int) "fault-free run: zero orphans" 0
    (List.length (Lineage.orphans l));
  Alcotest.(check int) "no causality inversions" 0 (Lineage.negative_lags l);
  Alcotest.(check bool) "roots carry the ingress stamp" true
    (List.for_all
       (fun (c : Lineage.chain) -> c.Lineage.ingress_at_ns <> None)
       (Lineage.chains l))

let test_scenario_crash_orphans () =
  let tr = Trace.create () in
  let faults =
    [
      Sw_fault.Schedule.at (Time.ms 250)
        (Sw_fault.Fault.Replica_crash { vm = 0; replica = 0; restart_after = None });
    ]
  in
  ignore (Scenario.run (traced_spec ~faults ~tr ()));
  let orphans = Lineage.orphans (Lineage.of_trace tr) in
  Alcotest.(check bool) "crash without restart orphans the survivors" true
    (List.length orphans > 0);
  Alcotest.(check bool) "all tagged unadopted-proposal" true
    (List.for_all
       (fun (o : Lineage.orphan) -> o.Lineage.kind = Lineage.Unadopted_proposal)
       orphans)

(* --- Chrome export: structure and -j determinism ---------------------------- *)

let chrome_of_run () =
  let tr = Trace.create () in
  ignore (Scenario.run (traced_spec ~tr ()));
  let meta =
    Export.meta ~seed:Scenario.default.Scenario.seed ~scenario:"test"
      ~trace_capacity:(Trace.capacity tr) ~trace_dropped:(Trace.dropped tr) ()
  in
  Chrome.to_json ~meta (Trace.entries tr)

let test_chrome_structure () =
  let json = chrome_of_run () in
  match Json.parse json with
  | Error e -> Alcotest.fail ("chrome export does not parse: " ^ e)
  | Ok root ->
      let events =
        match Option.bind (Json.member "traceEvents" root) Json.to_list with
        | Some l -> l
        | None -> Alcotest.fail "no traceEvents"
      in
      let ph p ev =
        match Option.bind (Json.member "ph" ev) Json.as_string with
        | Some x -> String.equal x p
        | None -> false
      in
      let count p = List.length (List.filter (ph p) events) in
      Alcotest.(check bool) "has process metadata" true (count "M" > 0);
      Alcotest.(check bool) "has protocol slices" true (count "X" > 0);
      let starts = count "s" and ends = count "f" in
      Alcotest.(check bool) "has flow arrows" true (starts > 0);
      Alcotest.(check int) "every flow start has its finish" starts ends;
      Alcotest.(check (option (float 0.))) "meta rides in otherData"
        (Some (Int64.to_float Scenario.default.Scenario.seed))
        (Option.bind (Json.member "otherData" root) (fun m ->
             Option.bind (Json.member "seed" m) Json.to_number))

let test_chrome_bytes_j1_j4 () =
  (* Four traced runs of one fixed-seed spec: the exports must be
     byte-identical to each other and across worker counts. *)
  let module Runner = Sw_runner.Runner in
  let module Pool = Sw_runner.Pool in
  let jobs () =
    List.map
      (fun k ->
        Sw_runner.Job.make ~key:(Printf.sprintf "trace/%d" k) (fun ~seed:_ ->
            chrome_of_run ()))
      [ 0; 1; 2; 3 ]
  in
  let seq = Runner.successes (Runner.map (jobs ())) in
  let par =
    Pool.with_pool ~workers:4 (fun pool ->
        Runner.successes (Runner.map ~pool (jobs ())))
  in
  Alcotest.(check int) "all jobs succeeded" 4 (List.length seq);
  Alcotest.(check int) "all parallel jobs succeeded" 4 (List.length par);
  match (seq, par) with
  | first :: _, _ ->
      List.iteri
        (fun k s ->
          Alcotest.(check bool)
            (Printf.sprintf "sequential run %d matches" k)
            true (String.equal first s))
        seq;
      List.iteri
        (fun k s ->
          Alcotest.(check bool)
            (Printf.sprintf "parallel run %d matches" k)
            true (String.equal first s))
        par
  | _ -> Alcotest.fail "no successes"

(* --- Profile ---------------------------------------------------------------- *)

let test_profile () =
  let p = Profile.create () in
  Alcotest.(check bool) "off by default" false (Profile.enabled p);
  let tm = Profile.timer p "engine.dispatch" in
  Alcotest.(check int) "disabled time records nothing" 17
    (Profile.time p tm (fun () -> 17));
  Alcotest.(check int) "no calls" 0 (Profile.count tm);
  Profile.set_enabled p true;
  ignore (Profile.time p tm (fun () -> 1));
  (try Profile.time p tm (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "records through raise" 2 (Profile.count tm);
  Alcotest.(check bool) "total non-negative" true (Profile.total_ns tm >= 0);
  Profile.record_ns tm 5;
  Alcotest.(check int) "external record" 3 (Profile.count tm);
  (match Profile.to_list p with
  | [ ("engine.dispatch", _, 3) ] -> ()
  | _ -> Alcotest.fail "to_list shape");
  Profile.reset p;
  Alcotest.(check int) "reset zeroes in place" 0 (Profile.count tm)

let test_profile_via_engine () =
  (* The engine times dispatches into the profile it was created with. *)
  let p = Profile.create ~enabled:true () in
  let e = Sw_sim.Engine.create ~profile:p () in
  ignore (Sw_sim.Engine.schedule_after e (Time.ms 1) (fun () -> ()));
  Sw_sim.Engine.run e;
  match Profile.to_list p with
  | [ ("engine.dispatch", _, 1) ] -> ()
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected one dispatch sample, got %d timers"
           (List.length l))

let () =
  Alcotest.run "sw_obs_lineage"
    [
      ( "json",
        [
          Alcotest.test_case "parse and access" `Quick test_json_parse;
          Alcotest.test_case "roundtrips our exports" `Quick
            test_json_roundtrips_export;
        ] );
      ( "trace",
        [ Alcotest.test_case "dropped accounting" `Quick test_trace_dropped ] );
      ( "export",
        [ Alcotest.test_case "meta shape" `Quick test_export_meta_shape ] );
      ( "lineage",
        [
          QCheck_alcotest.to_alcotest prop_wellformed_stream_no_orphans;
          Alcotest.test_case "in flight is not an orphan" `Quick
            test_lineage_in_flight_not_orphan;
          Alcotest.test_case "orphan kinds" `Quick test_lineage_orphan_kinds;
          Alcotest.test_case "fault-free scenario: complete chains" `Slow
            test_scenario_fault_free_lineage;
          Alcotest.test_case "crash schedule: tagged orphans" `Slow
            test_scenario_crash_orphans;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "structure" `Slow test_chrome_structure;
          Alcotest.test_case "bytes identical -j1 = -j4" `Slow
            test_chrome_bytes_j1_j4;
        ] );
      ( "profile",
        [
          Alcotest.test_case "accumulators" `Quick test_profile;
          Alcotest.test_case "engine dispatch timing" `Quick
            test_profile_via_engine;
        ] );
    ]
