(* Tests for the placement library: quasigroup structure, Bose's Steiner
   construction, Theorem 1 packing numbers against known maxima, and
   Theorem 2 placements validated against the StopWatch constraints. *)

module Q = Sw_placement.Quasigroup
module Tri = Sw_placement.Triangle
module St = Sw_placement.Steiner
module Pk = Sw_placement.Packing
module Pl = Sw_placement.Placement

(* --- Quasigroup ----------------------------------------------------------- *)

let test_quasigroup_basic () =
  let q = Q.create 7 in
  Alcotest.(check int) "order" 7 (Q.order q);
  Alcotest.(check bool) "idempotent" true (Q.is_idempotent q);
  Alcotest.(check bool) "commutative" true (Q.is_commutative q);
  Alcotest.(check bool) "latin" true (Q.is_latin_square q)

let test_quasigroup_even_rejected () =
  Alcotest.check_raises "even order" (Invalid_argument "x") (fun () ->
      try ignore (Q.create 4) with Invalid_argument _ -> raise (Invalid_argument "x"))

let prop_quasigroup_properties =
  QCheck.Test.make ~name:"odd-order quasigroups are idempotent commutative latin"
    ~count:30
    QCheck.(int_range 0 30)
    (fun k ->
      let n = (2 * k) + 1 in
      let q = Q.create n in
      Q.is_idempotent q && Q.is_commutative q && Q.is_latin_square q)

(* --- Triangle -------------------------------------------------------------- *)

let test_triangle_normalisation () =
  let t = Tri.make 5 1 3 in
  Alcotest.(check (list int)) "sorted vertices" [ 1; 3; 5 ] (Tri.vertices t);
  Alcotest.(check bool) "mem" true (Tri.mem 3 t);
  Alcotest.(check bool) "not mem" false (Tri.mem 2 t);
  Alcotest.(check int) "edges" 3 (List.length (Tri.edges t))

let test_triangle_degenerate () =
  Alcotest.check_raises "repeated vertex" (Invalid_argument "x") (fun () ->
      try ignore (Tri.make 1 1 2) with Invalid_argument _ -> raise (Invalid_argument "x"))

let test_edge_disjoint () =
  let a = Tri.make 0 1 2 and b = Tri.make 0 3 4 and c = Tri.make 1 3 5 in
  Alcotest.(check bool) "disjoint family" true (Tri.edge_disjoint [ a; b; c ]);
  let d = Tri.make 0 1 5 in
  Alcotest.(check bool) "shared edge 0-1" false (Tri.edge_disjoint [ a; d ])

(* --- Steiner --------------------------------------------------------------- *)

let sts_size n = n * (n - 1) / 6

let test_bose_sizes () =
  List.iter
    (fun v ->
      let n = (6 * v) + 3 in
      let sys = St.system ~v in
      Alcotest.(check int)
        (Printf.sprintf "STS(%d) size" n)
        (sts_size n) (List.length sys);
      Alcotest.(check bool) "edge disjoint" true (Tri.edge_disjoint sys))
    [ 1; 2; 3; 4 ]

let test_bose_covers_all_edges () =
  (* An STS is a perfect edge cover: every pair appears exactly once. *)
  let v = 2 in
  let n = 15 in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun t -> List.iter (fun e -> Hashtbl.replace seen e ()) (Tri.edges t))
    (St.system ~v);
  Alcotest.(check int) "all edges covered" (n * (n - 1) / 2) (Hashtbl.length seen)

let test_groups_structure () =
  let v = 3 in
  let groups = St.groups ~v in
  Alcotest.(check int) "group count" (v + 1) (Array.length groups);
  Alcotest.(check int) "G0 size" ((2 * v) + 1) (List.length groups.(0));
  for t = 1 to v do
    Alcotest.(check int)
      (Printf.sprintf "G%d size" t)
      ((6 * v) + 3)
      (List.length groups.(t))
  done;
  (* G0 visits each node exactly once; each Gt (t>=1) exactly three times. *)
  let visits group =
    let count = Array.make ((6 * v) + 3) 0 in
    List.iter
      (fun tri -> List.iter (fun x -> count.(x) <- count.(x) + 1) (Tri.vertices tri))
      group;
    count
  in
  Array.iter (fun c -> Alcotest.(check int) "G0 visit" 1 c) (visits groups.(0));
  Array.iter (fun c -> Alcotest.(check int) "G1 visits" 3 c) (visits groups.(1))

let test_partial_gv_node_disjoint () =
  let v = 4 in
  let p = St.partial_gv ~v in
  Alcotest.(check int) "size v" v (List.length p);
  let nodes = List.concat_map Tri.vertices p in
  Alcotest.(check int)
    "nodes distinct" (List.length nodes)
    (List.length (List.sort_uniq compare nodes))

let prop_bose_edge_disjoint =
  QCheck.Test.make ~name:"Bose STS is edge-disjoint for all v" ~count:8
    QCheck.(int_range 1 8)
    (fun v ->
      let sys = St.system ~v in
      Tri.edge_disjoint sys
      && List.length sys = sts_size ((6 * v) + 3))

(* --- Packing (Theorem 1) ---------------------------------------------------- *)

let test_theorem1_known_values () =
  (* Known maximum triangle packings: STS for n = 1,3 mod 6; leave(K_n)
     values otherwise. *)
  List.iter
    (fun (n, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "max packing K_%d" n)
        expected (Pk.max_packing_size n))
    [ (3, 1); (4, 1); (5, 2); (6, 4); (7, 7); (8, 8); (9, 12); (10, 13); (13, 26) ]

let test_greedy_valid () =
  List.iter
    (fun n ->
      let packing = Pk.greedy n in
      Alcotest.(check bool)
        (Printf.sprintf "greedy K_%d disjoint" n)
        true
        (Tri.edge_disjoint packing);
      if List.length packing > Pk.max_packing_size n then
        Alcotest.fail "greedy exceeds the maximum")
    [ 3; 5; 7; 9; 12; 20 ]

(* --- Placement (Theorem 2) --------------------------------------------------- *)

let test_theorem2_bounds () =
  Alcotest.(check int) "c=0 mod 3" 9 (Pl.theorem2_bound ~n:9 ~c:3);
  Alcotest.(check int) "c=1 mod 3" 12 (Pl.theorem2_bound ~n:9 ~c:4);
  Alcotest.(check int) "c=2 mod 3" ((1 * 15 / 3) + 2) (Pl.theorem2_bound ~n:15 ~c:2)

let test_theorem2_rejections () =
  (match Pl.theorem2_place ~n:10 ~c:2 ~k:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "n=10 must be rejected");
  (match Pl.theorem2_place ~n:9 ~c:5 ~k:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "c beyond (n-1)/2 must be rejected");
  match Pl.theorem2_place ~n:9 ~c:3 ~k:10 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "k beyond bound must be rejected"

let prop_theorem2_max_placements_valid =
  QCheck.Test.make ~name:"Theorem 2 placements at the bound verify" ~count:40
    QCheck.(pair (int_range 1 5) (int_range 1 100))
    (fun (v, c_seed) ->
      let n = (6 * v) + 3 in
      let c = 1 + (c_seed mod ((n - 1) / 2)) in
      let k = Pl.theorem2_bound ~n ~c in
      match Pl.theorem2_place ~n ~c ~k with
      | Error _ -> false
      | Ok plan -> (
          List.length plan.Pl.placements = k
          && match Pl.verify plan with Ok () -> true | Error _ -> false))

let test_verify_catches_violations () =
  let bad_edge =
    { Pl.machines = 6; capacity = 3; placements = [ Tri.make 0 1 2; Tri.make 0 1 3 ] }
  in
  (match Pl.verify bad_edge with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "shared edge must be rejected");
  let bad_capacity =
    {
      Pl.machines = 7;
      capacity = 1;
      placements = [ Tri.make 0 1 2; Tri.make 0 3 4 ];
    }
  in
  (match Pl.verify bad_capacity with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "capacity overflow must be rejected");
  let bad_range =
    { Pl.machines = 3; capacity = 1; placements = [ Tri.make 1 2 3 ] }
  in
  match Pl.verify bad_range with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range machine must be rejected"

let test_greedy_place () =
  let plan = Pl.greedy_place ~n:10 ~c:2 ~k:6 in
  (match Pl.verify plan with
  | Ok () -> ()
  | Error e -> Alcotest.failf "greedy plan invalid: %s" e);
  if List.length plan.Pl.placements > 6 then Alcotest.fail "greedy placed too many"

let test_utilization () =
  match Pl.theorem2_place ~n:9 ~c:4 ~k:12 with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      Alcotest.(check (float 1e-9)) "full utilization" 1.0 (Pl.utilization plan);
      let loads = Pl.loads plan in
      Array.iter (fun l -> Alcotest.(check int) "per-machine load" 4 l) loads

(* --- Online scheduler -------------------------------------------------------- *)

module Sched = Sw_placement.Scheduler

let test_scheduler_fill () =
  let t = Sched.create ~machines:9 ~capacity:4 in
  let placed = ref 0 in
  (try
     while true do
       match Sched.place t with
       | Ok _ -> incr placed
       | Error _ -> raise Exit
     done
   with Exit -> ());
  (* Theorem 2's bound for n=9, c=4 is 12; the greedy scheduler must get a
     decent fraction of it and never violate the constraints. *)
  (match Sched.check t with Ok () -> () | Error e -> Alcotest.fail e);
  if !placed < 8 then Alcotest.failf "greedy filled only %d of ~12" !placed

let test_scheduler_remove_reuses () =
  let t = Sched.create ~machines:6 ~capacity:2 in
  let first =
    match Sched.place t with Ok tri -> tri | Error e -> Alcotest.fail e
  in
  let occupancy = Sched.placed t in
  Sched.remove t first;
  Alcotest.(check int) "slot freed" (occupancy - 1) (Sched.placed t);
  (match Sched.place t with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "re-place after removal failed: %s" e);
  match Sched.check t with Ok () -> () | Error e -> Alcotest.fail e

let test_scheduler_remove_unknown () =
  let t = Sched.create ~machines:6 ~capacity:2 in
  Alcotest.check_raises "unknown triangle" (Invalid_argument "x") (fun () ->
      try Sched.remove t (Sw_placement.Triangle.make 0 1 2) with
      | Invalid_argument _ -> raise (Invalid_argument "x"))

let prop_scheduler_random_churn =
  QCheck.Test.make ~name:"scheduler invariants hold under random churn" ~count:60
    QCheck.(pair (int_range 6 15) (list_of_size Gen.(10 -- 60) (int_bound 99)))
    (fun (n, ops) ->
      let t = Sched.create ~machines:n ~capacity:3 in
      let live = ref [] in
      List.iter
        (fun op ->
          if op mod 3 = 0 && !live <> [] then begin
            (* departure of the (op mod k)-th resident *)
            let k = List.length !live in
            let victim = List.nth !live (op mod k) in
            Sched.remove t victim;
            live := List.filter (fun x -> not (Sw_placement.Triangle.equal x victim)) !live
          end
          else
            match Sched.place t with
            | Ok tri -> live := tri :: !live
            | Error _ -> ())
        ops;
      match Sched.check t with Ok () -> true | Error _ -> false)

(* --- Affinity ------------------------------------------------------------- *)

module Aff = Sw_placement.Affinity

let test_affinity_contiguous () =
  Alcotest.(check (array int)) "even blocks, low shards first"
    [| 0; 0; 0; 1; 1; 2; 2 |]
    (Aff.contiguous ~cells:7 ~shards:3);
  Alcotest.(check (array int)) "shards clamped to cells"
    [| 0; 1 |]
    (Aff.contiguous ~cells:2 ~shards:5)

(* The scenario the bench runs: a stride ring where every edge leaves its
   contiguous block, while the stride cycles fit whole under the balance
   bound — affinity must bring the cut to zero without unbalancing. *)
let test_affinity_beats_contiguous_on_stride () =
  let cells = 16 and stride = 4 and w = 10. in
  let g =
    {
      Aff.cells;
      edges =
        List.init cells (fun c ->
            { Aff.a = c; b = (c + stride) mod cells; weight = w });
    }
  in
  List.iter
    (fun shards ->
      let cap = (cells + shards - 1) / shards in
      let contiguous_cut = Aff.cut_weight g (Aff.contiguous ~cells ~shards) in
      let plan = Aff.partition g ~shards in
      Alcotest.(check bool)
        (Printf.sprintf "shards=%d: contiguous pays a cut" shards)
        true (contiguous_cut > 0.);
      Alcotest.(check (float 0.))
        (Printf.sprintf "shards=%d: affinity cut" shards)
        0. plan.Aff.cut_weight;
      Alcotest.(check (float 0.))
        (Printf.sprintf "shards=%d: total weight" shards)
        (w *. float_of_int cells)
        plan.Aff.total_weight;
      let load = Array.make shards 0 in
      Array.iter (fun s -> load.(s) <- load.(s) + 1) plan.Aff.shard_of_cell;
      Array.iteri
        (fun s l ->
          Alcotest.(check bool)
            (Printf.sprintf "shards=%d: shard %d within bound" shards s)
            true (l <= cap))
        load)
    [ 2; 4 ]

let prop_affinity_plan_valid =
  QCheck.Test.make
    ~name:"affinity plans respect the balance bound and price cuts honestly"
    ~count:100
    QCheck.(
      triple (int_range 1 24) (int_range 1 6)
        (small_list (triple (int_range 0 23) (int_range 0 23) (int_range 0 50))))
    (fun (cells, shards, raw_edges) ->
      let edges =
        List.filter_map
          (fun (a, b, w10) ->
            if a < cells && b < cells then
              Some { Aff.a; b; weight = float_of_int w10 /. 10. }
            else None)
          raw_edges
      in
      let g = { Aff.cells; edges } in
      let plan = Aff.partition g ~shards in
      let eff = min shards cells in
      let cap = (cells + eff - 1) / eff in
      let load = Array.make eff 0 in
      Array.iter (fun s -> load.(s) <- load.(s) + 1) plan.Aff.shard_of_cell;
      let balanced = Array.for_all (fun l -> l <= cap) load in
      let in_range =
        Array.for_all (fun s -> s >= 0 && s < eff) plan.Aff.shard_of_cell
      in
      let priced =
        Float.abs
          (plan.Aff.cut_weight -. Aff.cut_weight g plan.Aff.shard_of_cell)
        < 1e-9
      in
      let bounded = plan.Aff.cut_weight <= plan.Aff.total_weight +. 1e-9 in
      let deterministic =
        (Aff.partition g ~shards).Aff.shard_of_cell = plan.Aff.shard_of_cell
      in
      balanced && in_range && priced && bounded && deterministic)

let test_affinity_rejections () =
  let g = { Aff.cells = 4; edges = [ { Aff.a = 0; b = 9; weight = 1. } ] } in
  Alcotest.(check bool) "edge out of range rejected" true
    (match Aff.partition g ~shards:2 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "negative weight rejected" true
    (match
       Aff.partition
         { Aff.cells = 4; edges = [ { Aff.a = 0; b = 1; weight = -1. } ] }
         ~shards:2
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "shards < 1 rejected" true
    (match Aff.partition { Aff.cells = 4; edges = [] } ~shards:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "sw_placement"
    [
      ( "quasigroup",
        [
          Alcotest.test_case "order 7" `Quick test_quasigroup_basic;
          Alcotest.test_case "even rejected" `Quick test_quasigroup_even_rejected;
          QCheck_alcotest.to_alcotest prop_quasigroup_properties;
        ] );
      ( "triangle",
        [
          Alcotest.test_case "normalisation" `Quick test_triangle_normalisation;
          Alcotest.test_case "degenerate rejected" `Quick test_triangle_degenerate;
          Alcotest.test_case "edge disjointness" `Quick test_edge_disjoint;
        ] );
      ( "steiner",
        [
          Alcotest.test_case "Bose sizes" `Quick test_bose_sizes;
          Alcotest.test_case "perfect edge cover" `Quick test_bose_covers_all_edges;
          Alcotest.test_case "group structure" `Quick test_groups_structure;
          Alcotest.test_case "partial Gv" `Quick test_partial_gv_node_disjoint;
          QCheck_alcotest.to_alcotest prop_bose_edge_disjoint;
        ] );
      ( "packing",
        [
          Alcotest.test_case "Theorem 1 values" `Quick test_theorem1_known_values;
          Alcotest.test_case "greedy validity" `Quick test_greedy_valid;
        ] );
      ( "placement",
        [
          Alcotest.test_case "Theorem 2 bounds" `Quick test_theorem2_bounds;
          Alcotest.test_case "rejections" `Quick test_theorem2_rejections;
          QCheck_alcotest.to_alcotest prop_theorem2_max_placements_valid;
          Alcotest.test_case "verify catches violations" `Quick
            test_verify_catches_violations;
          Alcotest.test_case "greedy placement" `Quick test_greedy_place;
          Alcotest.test_case "utilization" `Quick test_utilization;
        ] );
      ( "affinity",
        [
          Alcotest.test_case "contiguous blocks" `Quick test_affinity_contiguous;
          Alcotest.test_case "beats contiguous on the stride ring" `Quick
            test_affinity_beats_contiguous_on_stride;
          Alcotest.test_case "rejections" `Quick test_affinity_rejections;
          QCheck_alcotest.to_alcotest prop_affinity_plan_valid;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "fill" `Quick test_scheduler_fill;
          Alcotest.test_case "remove & reuse" `Quick test_scheduler_remove_reuses;
          Alcotest.test_case "remove unknown" `Quick test_scheduler_remove_unknown;
          QCheck_alcotest.to_alcotest prop_scheduler_random_churn;
        ] );
    ]
