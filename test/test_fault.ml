(* sw_fault: schedule determinism, the crash -> eject -> restart ->
   reintegrate lifecycle, egress vote-table boundedness under sustained
   tunnel loss, and bounded multicast NAK recovery. *)

module Time = Sw_sim.Time
module Prng = Sw_sim.Prng
module Fault = Sw_fault.Fault
module Schedule = Sw_fault.Schedule
module Cloud = Stopwatch.Cloud
module Host = Stopwatch.Host
module Event = Sw_obs.Event
module Snapshot = Sw_obs.Snapshot
module Export = Sw_obs.Export

(* The degradation machinery used by every cloud test in this file. *)
let chaos_config =
  {
    Sw_vmm.Config.default with
    Sw_vmm.Config.replay_log = true;
    vmm_heartbeat = Some (Time.ms 5);
    watchdog =
      Some
        { Sw_vmm.Config.timeout = Time.ms 25; period = Time.ms 10; retries = 2 };
    egress_vote_expiry = Some (Time.ms 500);
  }

let make_fault ~machines ~replicas rng =
  match Prng.int rng 8 with
  | 0 | 1 -> Fault.Link_loss { target = None; p = 0.05 +. (0.3 *. Prng.float rng) }
  | 2 ->
      Fault.Link_latency
        { target = None; extra = Time.us (100 + Prng.int rng 900) }
  | 3 -> Fault.ingress_drop ~p:(0.2 +. (0.5 *. Prng.float rng))
  | 4 -> Fault.egress_drop ~p:(0.2 +. (0.5 *. Prng.float rng))
  | 5 -> Fault.Dom0_pause { machine = Prng.int rng machines }
  | 6 ->
      Fault.Machine_slowdown
        { machine = Prng.int rng machines; factor = 1.05 +. (0.4 *. Prng.float rng) }
  | _ -> Fault.Mcast_partition { vm = 0; replica = Prng.int rng replicas }

let windows ~seed =
  Schedule.windows ~seed ~until:(Time.s 2) ~mean_gap:(Time.ms 100)
    ~mean_span:(Time.ms 20)
    ~make:(make_fault ~machines:3 ~replicas:3)

(* --- Schedule determinism ------------------------------------------------- *)

let prop_windows_deterministic =
  QCheck.Test.make ~count:50 ~name:"Schedule.windows is a function of its seed"
    QCheck.int64 (fun seed ->
      let a = windows ~seed and b = windows ~seed in
      a = b)

let test_windows_seed_sensitivity () =
  Alcotest.(check bool)
    "different seeds give different schedules" false
    (windows ~seed:1L = windows ~seed:2L);
  Alcotest.(check bool)
    "schedules are non-trivial" true
    (List.length (windows ~seed:1L) > 3)

let test_sorted_stable () =
  let specs = windows ~seed:7L in
  let shuffled =
    let arr = Array.of_list specs in
    Prng.shuffle (Prng.create 99L) arr;
    Array.to_list arr
  in
  Alcotest.(check bool)
    "install order independent of build order" true
    (Schedule.sorted specs = Schedule.sorted shuffled)

(* --- Deterministic runs under faults --------------------------------------- *)

let chaos_spec ~victim =
  let module Scenario = Sw_attack.Scenario in
  {
    Scenario.default with
    Scenario.config = chaos_config;
    duration = Time.s 2;
    victim;
    faults =
      Schedule.at (Time.ms 600)
        (Fault.Replica_crash
           { vm = 0; replica = 1; restart_after = Some (Time.ms 300) })
      :: windows ~seed:0xC4A05L;
  }

let scenario_snapshot spec = (Sw_attack.Scenario.run spec).Sw_attack.Scenario.metrics

let test_same_seed_same_bytes () =
  let spec = chaos_spec ~victim:true in
  let a = Export.to_json_string (scenario_snapshot spec) in
  let b = Export.to_json_string (scenario_snapshot spec) in
  Alcotest.(check bool)
    "chaos run produced fault activity" true
    (Snapshot.counter (scenario_snapshot spec) "fault.injected" > 0);
  Alcotest.(check string) "same (seed, schedule) => identical bytes" a b

let test_chaos_snapshot_bytes_j1_j4 () =
  let module Runner = Sw_runner.Runner in
  let module Pool = Sw_runner.Pool in
  let jobs () =
    List.map
      (fun (key, victim) ->
        Sw_runner.Job.make ~key (fun ~seed:_ ->
            scenario_snapshot (chaos_spec ~victim)))
      [ ("chaos/no-victim", false); ("chaos/victim", true) ]
  in
  let export outcomes =
    Export.to_json_string (Snapshot.merge_all (Runner.successes outcomes))
  in
  let seq = export (Runner.map (jobs ())) in
  let par =
    export (Pool.with_pool ~workers:4 (fun pool -> Runner.map ~pool (jobs ())))
  in
  Alcotest.(check bool)
    "snapshot non-trivial" false
    (String.equal seq (Export.to_json_string Snapshot.empty));
  Alcotest.(check string) "chaos merged snapshot bytes identical under -j 4" seq par

(* --- Crash -> eject -> restart -> reintegrate lifecycle -------------------- *)

let test_crash_lifecycle () =
  let cloud = Cloud.create ~config:chaos_config ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:(Sw_apps.Probe.receiver ()) in
  let trace = Sw_obs.Trace.create () in
  Sw_obs.Trace.enable trace;
  List.iter (fun i -> Sw_vmm.Vmm.set_trace i trace) (Cloud.replicas d);
  Option.iter (fun w -> Sw_vmm.Watchdog.set_trace w trace) (Cloud.watchdog d);
  let injector =
    Cloud.install_faults ~trace cloud
      [
        Schedule.at (Time.ms 100)
          (Fault.Replica_crash
             { vm = 0; replica = 1; restart_after = Some (Time.ms 300) });
      ]
  in
  (* Steady inbound traffic so delivery progress is observable throughout. *)
  let client = Cloud.add_host cloud () in
  let n = ref 0 in
  let rec ping () =
    Host.after client (Time.ms 5) (fun () ->
        incr n;
        Host.send client ~dst:(Cloud.vm_address d) ~size:100
          (Sw_apps.Probe.Probe_ping !n);
        ping ())
  in
  ping ();
  let group = Cloud.group d in
  let deliveries () =
    let i = List.hd (Cloud.replicas d) in
    Snapshot.counter (Cloud.metrics_snapshot cloud)
      (Sw_vmm.Vmm.metric_prefix i ^ ".net_deliveries")
  in
  (* Crash at 100 ms; the watchdog (timeout 25 ms, period 10 ms, retries 2)
     ejects well before 250 ms. *)
  Cloud.run cloud ~until:(Time.ms 250);
  Alcotest.(check int) "ejected once" 1 (Sw_vmm.Replica_group.ejections group);
  Alcotest.(check int) "two members active" 2
    (Sw_vmm.Replica_group.active_count group);
  Alcotest.(check int) "degraded to quorum 1" 1
    (Sw_vmm.Replica_group.quorum group);
  let d1 = deliveries () in
  (* Still degraded (restart lands at 400 ms): the group must keep
     delivering rather than wedge on the dead member. *)
  Cloud.run cloud ~until:(Time.ms 380);
  let d2 = deliveries () in
  Alcotest.(check bool)
    (Printf.sprintf "keeps delivering while degraded (%d -> %d)" d1 d2)
    true (d2 > d1);
  Alcotest.(check bool) "time in degraded mode accounted" true
    (Sw_vmm.Replica_group.degraded_ns group ~now:(Time.ms 380) > 0.);
  (* Restart at 400 ms resyncs from a survivor and reinstates. *)
  Cloud.run cloud ~until:(Time.ms 600);
  Alcotest.(check int) "reintegrated once" 1
    (Sw_vmm.Replica_group.reintegrations group);
  Alcotest.(check int) "all members active again" 3
    (Sw_vmm.Replica_group.active_count group);
  Alcotest.(check int) "back to full quorum" 3 (Sw_vmm.Replica_group.quorum group);
  Alcotest.(check int) "one fault injected" 1 (Sw_fault.Injector.injected injector);
  (* The typed event sequence tells the whole story, in causal order. *)
  let labels =
    List.filter_map
      (fun (e : Sw_obs.Trace.entry) ->
        match e.Sw_obs.Trace.event with
        | Event.Fault_replica_crash _ -> Some "crash"
        | Event.Degrade_suspected _ -> Some "suspect"
        | Event.Degrade_ejected _ -> Some "eject"
        | Event.Fault_replica_restart _ -> Some "restart"
        | Event.Degrade_reintegrated _ -> Some "reintegrate"
        | _ -> None)
      (Sw_obs.Trace.entries trace)
  in
  let rec subsequence needle hay =
    match (needle, hay) with
    | [], _ -> true
    | _, [] -> false
    | n :: ns, h :: hs when n = h -> subsequence ns hs
    | ns, _ :: hs -> subsequence ns hs
  in
  Alcotest.(check bool)
    (Printf.sprintf "lifecycle events in order (got: %s)"
       (String.concat " " labels))
    true
    (subsequence [ "crash"; "suspect"; "eject"; "restart"; "reintegrate" ] labels)

(* --- Egress boundedness under sustained tunnel loss ------------------------ *)

let test_egress_bounded_under_total_loss () =
  let config =
    { chaos_config with Sw_vmm.Config.watchdog = None; vmm_heartbeat = None }
  in
  let cloud = Cloud.create ~config ~machines:3 () in
  let sink = Cloud.add_host cloud () in
  let d =
    Cloud.deploy cloud ~on:[ 0; 1; 2 ]
      ~app:
        (Sw_apps.Probe.receiver ~echo_to:(Host.address sink) ~echo_every:1 ())
  in
  (* Sustained heavy loss on every replica->egress tunnel from 50 ms to the
     end of the run: most packets land with fewer than 3 copies (many with
     exactly 1 — never releasing), so without expiry the vote table would
     grow for the whole run. *)
  ignore
    (Cloud.install_faults cloud
       [
         Schedule.at ~span:(Time.s 10) (Time.ms 50) (Fault.egress_drop ~p:0.7);
       ]);
  let client = Cloud.add_host cloud () in
  let n = ref 0 in
  let rec ping () =
    Host.after client (Time.ms 2) (fun () ->
        incr n;
        Host.send client ~dst:(Cloud.vm_address d) ~size:100
          (Sw_apps.Probe.Probe_ping !n);
        ping ())
  in
  ping ();
  Cloud.run cloud ~until:(Time.s 4);
  let egress = Cloud.egress cloud in
  let pending = Sw_net.Egress.pending_votes egress ~vm:(Cloud.vm_id d) in
  let expired = Sw_net.Egress.expired_votes egress in
  (* Bounded: only entries younger than the 500 ms expiry span can be live.
     At 500 pings/s that is at most ~250 entries; without expiry ~1750
     incomplete entries would have accumulated over the faulted 3.95 s. *)
  Alcotest.(check bool)
    (Printf.sprintf "vote table bounded (pending=%d)" pending)
    true
    (pending <= 300);
  Alcotest.(check bool)
    (Printf.sprintf "expiry engaged (expired=%d)" expired)
    true (expired > 0);
  Alcotest.(check bool) "egress still forwarded traffic" true
    (Sw_net.Egress.forwarded egress > 0)

(* --- Bounded NAK recovery -------------------------------------------------- *)

let test_nak_abandonment () =
  let engine = Sw_sim.Engine.create () in
  let network = Sw_net.Network.create engine ~default:Sw_net.Network.lan in
  let module Mc = Sw_net.Multicast in
  let module Addr = Sw_net.Address in
  let g =
    Mc.group network
      ~members:[ Addr.Vmm 0; Addr.Vmm 1 ]
      ~nak_delay:(Time.ms 2) ~nak_retries:3 ()
  in
  let got = ref [] in
  let e0 =
    Mc.endpoint g ~self:(Addr.Vmm 0)
      ~deliver:(fun pkt -> got := pkt.Sw_net.Packet.payload :: !got)
      ()
  in
  let e1 = Mc.endpoint g ~self:(Addr.Vmm 1) ~deliver:(fun _ -> ()) () in
  Sw_net.Network.register network (Addr.Vmm 0) (fun pkt -> Mc.handle e0 pkt);
  Sw_net.Network.register network (Addr.Vmm 1) (fun pkt -> Mc.handle e1 pkt);
  let send i = Mc.publish e1 ~size:64 (Sw_net.Packet.Background i) in
  send 0;
  Sw_sim.Engine.run engine ~until:(Time.ms 5);
  (* The receiver misses mseq 1 behind a partition window... *)
  Mc.set_partitioned e0 true;
  send 1;
  Sw_sim.Engine.run engine ~until:(Time.ms 10);
  (* ...heals, receives mseq 2, and detects the gap... *)
  Mc.set_partitioned e0 false;
  send 2;
  Sw_sim.Engine.run engine ~until:(Time.ms 11);
  (* ...then is cut off again for the whole NAK budget: its NAKs (and any
     retransmissions) are dropped, so after [nak_retries] unanswered
     attempts it must abandon the gap and deliver the buffered mseq 2
     instead of stalling forever. *)
  Mc.set_partitioned e0 true;
  Sw_sim.Engine.run engine ~until:(Time.ms 200);
  Alcotest.(check bool)
    (Printf.sprintf "gap abandoned (count=%d)" (Mc.gaps_abandoned e0))
    true
    (Mc.gaps_abandoned e0 >= 1);
  Alcotest.(check bool) "partition drops counted" true
    (Mc.partition_drops e0 > 0);
  Alcotest.(check bool)
    "delivery resumed past the abandoned gap" true
    (List.mem (Sw_net.Packet.Background 2) !got)

let () =
  Alcotest.run "sw_fault"
    [
      ( "schedule",
        [
          QCheck_alcotest.to_alcotest prop_windows_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick
            test_windows_seed_sensitivity;
          Alcotest.test_case "sorted is build-order independent" `Quick
            test_sorted_stable;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same (seed, schedule) => same bytes" `Slow
            test_same_seed_same_bytes;
          Alcotest.test_case "chaos merged snapshot -j1 = -j4" `Slow
            test_chaos_snapshot_bytes_j1_j4;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "crash -> eject -> restart -> reintegrate" `Quick
            test_crash_lifecycle;
        ] );
      ( "egress",
        [
          Alcotest.test_case "vote table bounded under tunnel loss" `Quick
            test_egress_bounded_under_total_loss;
        ] );
      ( "multicast",
        [
          Alcotest.test_case "NAK retries bounded, gap abandoned" `Quick
            test_nak_abandonment;
        ] );
    ]
